package malt_test

import (
	"os/exec"
	"strings"
	"testing"
)

// TestExamplesRun builds and runs every example with small parameters and
// checks each prints its success line — the examples are documentation and
// must not rot. Skipped in -short mode (each invocation compiles a binary).
func TestExamplesRun(t *testing.T) {
	if testing.Short() {
		t.Skip("examples skipped in -short mode")
	}
	cases := []struct {
		dir    string
		args   []string
		expect string
	}{
		{"./examples/quickstart", nil, "test accuracy:"},
		{"./examples/svm", []string{"-ranks", "2", "-epochs", "2"}, "wall-time ratio"},
		{"./examples/matrixfactorization", []string{"-ranks", "2", "-epochs", "2"}, "test RMSE:"},
		{"./examples/neuralnet", []string{"-ranks", "2", "-epochs", "1", "-dim", "1000"}, "test AUC:"},
		{"./examples/faulttolerance", []string{"-ranks", "4", "-kill", "2", "-epochs", "4"}, "test accuracy after recovery:"},
		{"./examples/kmeans", []string{"-ranks", "2", "-n", "5000", "-rounds", "4"}, "final inertia"},
	}
	for _, tc := range cases {
		tc := tc
		t.Run(strings.TrimPrefix(tc.dir, "./examples/"), func(t *testing.T) {
			args := append([]string{"run", tc.dir}, tc.args...)
			out, err := exec.Command("go", args...).CombinedOutput()
			if err != nil {
				t.Fatalf("example failed: %v\n%s", err, out)
			}
			if !strings.Contains(string(out), tc.expect) {
				t.Fatalf("output missing %q:\n%s", tc.expect, out)
			}
		})
	}
}
