.PHONY: all build test race lint fmt bench

all: build lint test

build:
	go build ./...

test:
	go test -shuffle=on ./...

race:
	go test -race ./...

# lint mirrors the CI gate: gofmt must be clean, go vet must pass, and
# maltlint (the project's own facts-based analyzers, including _test.go
# variants) must exit 0. Run `go run ./cmd/maltlint -json ./...` for
# machine-readable findings.
lint:
	test -z "$$(gofmt -l .)" || { gofmt -l .; exit 1; }
	go vet ./...
	go run ./cmd/maltlint ./...

fmt:
	gofmt -w .

bench:
	go test -run='^$$' -bench=. -benchtime=1x ./...
