.PHONY: all build test race lint fmt bench bench-baseline

all: build lint test

build:
	go build ./...

test:
	go test -shuffle=on ./...

race:
	go test -race ./...

# lint mirrors the CI gate: gofmt must be clean, go vet must pass, and
# maltlint (the project's own facts-based analyzers, including _test.go
# variants) must exit 0. Run `go run ./cmd/maltlint -json ./...` for
# machine-readable findings.
lint:
	test -z "$$(gofmt -l .)" || { gofmt -l .; exit 1; }
	go vet ./...
	go run ./cmd/maltlint ./...

fmt:
	gofmt -w .

bench:
	go test -run='^$$' -bench=. -benchtime=1x ./...

# The canonical -exp list for the CI bench-regression gate. Regenerate the
# checked-in baseline with this target when a change legitimately moves the
# modeled numbers, and review the diff: only the metrics your change
# explains should move (elapsed_sec and wall_* churn is expected — they are
# informational and never gated).
BENCH_EXPERIMENTS = pipeline,gather,fig13,saturation,saturation-wall,allreduce,ablation-queue,ablation-interleave,elastic,overlap,compression

bench-baseline:
	go run ./cmd/maltbench -exp $(BENCH_EXPERIMENTS) -json > BENCH_BASELINE.json
