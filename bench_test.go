// Benchmark harness: one testing.B benchmark per table and figure of the
// paper's evaluation (dispatching into internal/bench at Quick size; run
// `cmd/maltbench -exp <id>` for the full-size version and the formatted
// report), plus ablation micro-benchmarks for the design choices called
// out in DESIGN.md.
//
//	go test -bench=. -benchmem
//	go test -bench=BenchmarkFig13 -benchtime=1x
package malt_test

import (
	"fmt"
	"sync"
	"testing"

	"malt"

	"malt/internal/baseline/allreduce"
	"malt/internal/bench"
	"malt/internal/dataflow"
	"malt/internal/dstorm"
	"malt/internal/fabric"
	"malt/internal/vol"
)

// benchExperiment runs a registered experiment once per iteration and
// reports its headline metrics through testing.B.
func benchExperiment(b *testing.B, id string, keys ...string) {
	b.Helper()
	e, err := bench.Get(id)
	if err != nil {
		b.Fatal(err)
	}
	var last map[string]float64
	for i := 0; i < b.N; i++ {
		rep, err := e.Run(bench.Options{Quick: true})
		if err != nil {
			b.Fatal(err)
		}
		last = rep.Metrics
	}
	for _, k := range keys {
		if v, ok := last[k]; ok {
			b.ReportMetric(v, k)
		}
	}
}

// Table 2: dataset properties.
func BenchmarkTable2(b *testing.B) { benchExperiment(b, "table2") }

// Table 3: developer effort (MALT LOC per example).
func BenchmarkTable3(b *testing.B) { benchExperiment(b, "table3") }

// Fig 4: RCV1 convergence, MALT_all vs single-rank SGD.
func BenchmarkFig4(b *testing.B) {
	benchExperiment(b, "fig4", "speedup_iters", "speedup_time")
}

// Fig 5: MR-SVM vs MALT-SVM on PASCAL alpha.
func BenchmarkFig5(b *testing.B) {
	benchExperiment(b, "fig5", "speedup_malt", "speedup_mrsvm")
}

// Fig 6: SSI neural network AUC vs time.
func BenchmarkFig6(b *testing.B) {
	benchExperiment(b, "fig6", "speedup_cb20000")
}

// Fig 7: Netflix matrix factorization RMSE vs iterations.
func BenchmarkFig7(b *testing.B) {
	benchExperiment(b, "fig7", "speedup_fixed", "speedup_byiter")
}

// Fig 8: per-phase time breakdown, all vs Halton.
func BenchmarkFig8(b *testing.B) {
	benchExperiment(b, "fig8", "all_scatter_s", "halton_scatter_s")
}

// Fig 9: compute vs wait, MALT vs parameter server.
func BenchmarkFig9(b *testing.B) {
	benchExperiment(b, "fig9", "halton-gradavg_wait_s", "ps-gradavg_wait_s")
}

// Fig 10: BSP vs ASP vs SSP on splice-site.
func BenchmarkFig10(b *testing.B) {
	benchExperiment(b, "fig10", "speedup_ASYNC", "speedup_SSP")
}

// Fig 11: communication batch size sweep.
func BenchmarkFig11(b *testing.B) {
	benchExperiment(b, "fig11", "all_cb5000", "halton_cb5000")
}

// Fig 12: MALT_all vs MALT_Halton on splice-site.
func BenchmarkFig12(b *testing.B) {
	benchExperiment(b, "fig12", "bytes_ratio_all_vs_halton")
}

// Fig 13: network traffic vs rank count.
func BenchmarkFig13(b *testing.B) {
	benchExperiment(b, "fig13", "all_mb_n8", "halton_mb_n8", "paramserver_mb_n8")
}

// Fig 14: fault tolerance.
func BenchmarkFig14(b *testing.B) {
	benchExperiment(b, "fig14", "time_clean_s", "time_faulty_s", "acc_faulty")
}

// §6.2 network saturation.
func BenchmarkSaturation(b *testing.B) {
	benchExperiment(b, "saturation", "gbps_per_rank_n2")
}

// ---------------------------------------------------------------------------
// Ablations (DESIGN.md): micro-benchmarks for the design choices.
// ---------------------------------------------------------------------------

// BenchmarkScatterGather measures one scatter+gather round trip for a
// model-sized dense vector across dataflows — the core communication cost.
func BenchmarkScatterGather(b *testing.B) {
	for _, cfg := range []struct {
		name  string
		kind  dataflow.Kind
		ranks int
		dim   int
	}{
		{"all/8ranks/47k", dataflow.All, 8, 47152},
		{"halton/8ranks/47k", dataflow.Halton, 8, 47152},
		{"all/16ranks/47k", dataflow.All, 16, 47152},
		{"halton/16ranks/47k", dataflow.Halton, 16, 47152},
	} {
		b.Run(cfg.name, func(b *testing.B) {
			vecs := makeVectors(b, cfg.ranks, cfg.kind, vol.Dense, cfg.dim, vol.Options{QueueLen: 4})
			b.SetBytes(int64(8 * cfg.dim * len(vecs[0].Segment().SendPeers())))
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if _, err := vecs[0].Scatter(uint64(i + 1)); err != nil {
					b.Fatal(err)
				}
				// Peers gather locally (receiver-side cost is zero for the
				// scatter itself; this measures the local fold).
				if _, err := vecs[1].Gather(vol.Average); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkGatherAtomicVsWeak quantifies the cost of torn-read protection
// (seqlock retries) versus the unprotected gather.
func BenchmarkGatherAtomicVsWeak(b *testing.B) {
	const dim = 47152
	vecs := makeVectors(b, 2, dataflow.All, vol.Dense, dim, vol.Options{QueueLen: 4})
	for name, weak := range map[string]bool{"atomic": false, "weak": true} {
		b.Run(name, func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				if _, err := vecs[0].Scatter(uint64(i + 1)); err != nil {
					b.Fatal(err)
				}
				var err error
				if weak {
					_, err = vecs[1].GatherWeak(vol.Average)
				} else {
					_, err = vecs[1].Gather(vol.Average)
				}
				if err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkWireFormats compares dense and sparse scatters at different
// sparsity levels — the representation optimization of §3.2.
func BenchmarkWireFormats(b *testing.B) {
	const dim = 100000
	for _, tc := range []struct {
		name string
		typ  vol.Type
		nnz  int
	}{
		{"dense", vol.Dense, dim},
		{"sparse-1pct", vol.Sparse, dim / 100},
		{"sparse-10pct", vol.Sparse, dim / 10},
	} {
		b.Run(tc.name, func(b *testing.B) {
			vecs := makeVectors(b, 2, dataflow.All, tc.typ, dim, vol.Options{QueueLen: 4})
			d := vecs[0].Data()
			stride := dim / tc.nnz
			for i := 0; i < dim; i += stride {
				d[i] = 1.5
			}
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if _, err := vecs[0].Scatter(uint64(i + 1)); err != nil {
					b.Fatal(err)
				}
			}
			b.StopTimer()
			b.ReportMetric(float64(vecs[0].Segment().Options().ObjectSize), "objsize_bytes")
		})
	}
}

// BenchmarkAllReduceStrategies compares the naive, tree and butterfly
// all-reduce primitives (§3.4's alternatives to Halton dissemination).
func BenchmarkAllReduceStrategies(b *testing.B) {
	const ranks, dim = 8, 4096
	for _, s := range []allreduce.Strategy{allreduce.Naive, allreduce.Tree, allreduce.Butterfly} {
		b.Run(s.String(), func(b *testing.B) {
			f, err := fabric.New(fabric.Config{Ranks: ranks})
			if err != nil {
				b.Fatal(err)
			}
			cluster := dstorm.NewCluster(f)
			reducers := make([]*allreduce.Reducer, ranks)
			var wg sync.WaitGroup
			for r := 0; r < ranks; r++ {
				wg.Add(1)
				go func(r int) {
					defer wg.Done()
					red, err := allreduce.New(cluster.Node(r), s, dim)
					if err != nil {
						b.Error(err)
						return
					}
					reducers[r] = red
				}(r)
			}
			wg.Wait()
			if b.Failed() {
				b.FailNow()
			}
			xs := make([][]float64, ranks)
			for r := range xs {
				xs[r] = make([]float64, dim)
			}
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				var wg sync.WaitGroup
				for r := 0; r < ranks; r++ {
					wg.Add(1)
					go func(r int) {
						defer wg.Done()
						if err := reducers[r].Reduce(xs[r]); err != nil {
							b.Error(err)
						}
					}(r)
				}
				wg.Wait()
			}
			b.StopTimer()
			b.ReportMetric(float64(f.Stats().TotalMessages())/float64(b.N), "msgs/round")
		})
	}
}

// BenchmarkHaltonFanout measures the per-round update count of the
// pre-built dataflows as the cluster grows — the O(N²) vs O(N log N)
// argument of §3.4.
func BenchmarkHaltonFanout(b *testing.B) {
	for _, n := range []int{8, 16, 32, 64} {
		for _, kind := range []dataflow.Kind{dataflow.All, dataflow.Halton} {
			b.Run(fmt.Sprintf("%v/%d", kind, n), func(b *testing.B) {
				var edges int
				for i := 0; i < b.N; i++ {
					g, err := dataflow.New(kind, n)
					if err != nil {
						b.Fatal(err)
					}
					edges = g.Edges()
				}
				b.ReportMetric(float64(edges), "updates/round")
			})
		}
	}
}

// BenchmarkPublicAPIRound measures one full MALT superstep (scatter +
// barrier + gather + commit) through the public API under BSP.
func BenchmarkPublicAPIRound(b *testing.B) {
	for _, ranks := range []int{2, 4, 8} {
		b.Run(fmt.Sprintf("%dranks", ranks), func(b *testing.B) {
			cluster, err := malt.NewCluster(malt.Config{Ranks: ranks, Dataflow: malt.All, Sync: malt.BSP})
			if err != nil {
				b.Fatal(err)
			}
			const dim = 4096
			b.ResetTimer()
			res := cluster.Run(func(ctx *malt.Context) error {
				v, err := ctx.CreateVector("w", malt.Dense, dim)
				if err != nil {
					return err
				}
				for i := 0; i < b.N; i++ {
					ctx.SetIteration(uint64(i + 1))
					if err := ctx.Scatter(v); err != nil {
						return err
					}
					if err := ctx.Advance(v); err != nil {
						return err
					}
					if _, err := ctx.Gather(v, malt.Average); err != nil {
						return err
					}
					if err := ctx.Commit(v); err != nil {
						return err
					}
				}
				return nil
			})
			if err := res.FirstError(); err != nil {
				b.Fatal(err)
			}
		})
	}
}

// makeVectors builds a cluster of vectors for micro-benchmarks.
func makeVectors(b *testing.B, ranks int, kind dataflow.Kind, typ vol.Type, dim int, opts vol.Options) []*vol.Vector {
	b.Helper()
	f, err := fabric.New(fabric.Config{Ranks: ranks})
	if err != nil {
		b.Fatal(err)
	}
	cluster := dstorm.NewCluster(f)
	g, err := dataflow.New(kind, ranks)
	if err != nil {
		b.Fatal(err)
	}
	vecs := make([]*vol.Vector, ranks)
	errs := make([]error, ranks)
	var wg sync.WaitGroup
	for r := 0; r < ranks; r++ {
		wg.Add(1)
		go func(r int) {
			defer wg.Done()
			vecs[r], errs[r] = vol.Create(cluster.Node(r), "bench", typ, dim, g, opts)
		}(r)
	}
	wg.Wait()
	for _, err := range errs {
		if err != nil {
			b.Fatal(err)
		}
	}
	return vecs
}

// BenchmarkFetchAddVsQueues compares queue-based gradient averaging
// (scatter into per-sender queues, gather+fold) with the fetch-and-add
// extension from the paper's conclusion (remote adds merge at deposit
// time; drain is a scaled copy).
func BenchmarkFetchAddVsQueues(b *testing.B) {
	const ranks, dim = 8, 47152
	b.Run("queues", func(b *testing.B) {
		vecs := makeVectors(b, ranks, dataflow.All, vol.Dense, dim, vol.Options{QueueLen: 4})
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			for _, v := range vecs {
				if _, err := v.Scatter(uint64(i + 1)); err != nil {
					b.Fatal(err)
				}
			}
			for _, v := range vecs {
				if _, err := v.Gather(vol.Average); err != nil {
					b.Fatal(err)
				}
			}
		}
	})
	b.Run("fetchadd", func(b *testing.B) {
		f, err := fabric.New(fabric.Config{Ranks: ranks})
		if err != nil {
			b.Fatal(err)
		}
		cluster := dstorm.NewCluster(f)
		g, err := dataflow.New(dataflow.All, ranks)
		if err != nil {
			b.Fatal(err)
		}
		segs := make([]*dstorm.AddSegment, ranks)
		var wg sync.WaitGroup
		for r := 0; r < ranks; r++ {
			wg.Add(1)
			go func(r int) {
				defer wg.Done()
				s, err := cluster.Node(r).CreateAddSegment("bench", dim, g)
				if err != nil {
					b.Error(err)
					return
				}
				segs[r] = s
			}(r)
		}
		wg.Wait()
		if b.Failed() {
			b.FailNow()
		}
		vals := make([]float64, dim)
		avg := make([]float64, dim)
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			for _, s := range segs {
				//maltlint:allow bufretain -- steady-state benchmark re-posts one read-only buffer; Scatter encodes it synchronously
				if _, err := s.Scatter(vals, uint64(i+1)); err != nil {
					b.Fatal(err)
				}
			}
			for _, s := range segs {
				if _, err := s.Drain(avg); err != nil {
					b.Fatal(err)
				}
			}
		}
	})
}

// BenchmarkPerSenderQueuesVsLockedInbox justifies dstorm's per-sender
// receive queues: N concurrent senders into per-sender slots versus a
// single mutex-guarded inbox that every sender contends on.
func BenchmarkPerSenderQueuesVsLockedInbox(b *testing.B) {
	const senders, dim = 8, 4096
	payload := make([]byte, 8*dim)

	b.Run("per-sender-queues", func(b *testing.B) {
		f, err := fabric.New(fabric.Config{Ranks: senders + 1})
		if err != nil {
			b.Fatal(err)
		}
		cluster := dstorm.NewCluster(f)
		g, err := dataflow.New(dataflow.MasterSlave, senders+1)
		if err != nil {
			b.Fatal(err)
		}
		segs := make([]*dstorm.Segment, senders+1)
		var wg sync.WaitGroup
		for r := 0; r <= senders; r++ {
			wg.Add(1)
			go func(r int) {
				defer wg.Done()
				s, err := cluster.Node(r).CreateSegment("inbox", dstorm.SegmentOptions{
					ObjectSize: len(payload), Graph: g, QueueLen: 4,
				})
				if err != nil {
					b.Error(err)
					return
				}
				segs[r] = s
			}(r)
		}
		wg.Wait()
		if b.Failed() {
			b.FailNow()
		}
		b.ResetTimer()
		b.RunParallel(func(pb *testing.PB) {
			// Every parallel worker plays a sender pushing to rank 0.
			i := 0
			for pb.Next() {
				i++
				sender := segs[1+(i%senders)]
				//maltlint:allow bufretain -- incast benchmark re-posts one read-only buffer; ScatterTo encodes it synchronously
				if _, err := sender.ScatterTo([]int{0}, payload, uint64(i)); err != nil {
					b.Error(err)
					return
				}
			}
		})
	})

	b.Run("locked-inbox", func(b *testing.B) {
		// Strawman: one mutex-guarded buffer all senders write into.
		var mu sync.Mutex
		inbox := make([]byte, len(payload))
		f, err := fabric.New(fabric.Config{Ranks: senders + 1})
		if err != nil {
			b.Fatal(err)
		}
		if err := f.Register(0, "inbox", func(from int, p []byte) error {
			mu.Lock()
			copy(inbox, p)
			mu.Unlock()
			return nil
		}); err != nil {
			b.Fatal(err)
		}
		b.ResetTimer()
		b.RunParallel(func(pb *testing.PB) {
			i := 0
			for pb.Next() {
				i++
				//maltlint:allow bufretain -- raw-fabric baseline re-posts one read-only buffer; the fabric copies on deposit
				if err := f.Write(1+(i%senders), 0, "inbox", payload); err != nil {
					b.Error(err)
					return
				}
			}
		})
	})
}

// BenchmarkTransports compares the in-process fabric with the loopback TCP
// transport for a model-sized write.
func BenchmarkTransports(b *testing.B) {
	const dim = 47152
	payload := make([]byte, 8*dim)
	for _, tr := range []fabric.Delivery{fabric.InProc, fabric.TCP} {
		b.Run(tr.String(), func(b *testing.B) {
			f, err := fabric.New(fabric.Config{Ranks: 2, Delivery: tr})
			if err != nil {
				b.Fatal(err)
			}
			defer f.Close()
			sink := make([]byte, len(payload))
			if err := f.Register(1, "w", func(from int, p []byte) error {
				copy(sink, p)
				return nil
			}); err != nil {
				b.Fatal(err)
			}
			b.SetBytes(int64(len(payload)))
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				//maltlint:allow bufretain -- raw-fabric baseline re-posts one read-only buffer; the fabric copies on deposit
				if err := f.Write(0, 1, "w", payload); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkGradientCompression measures the traffic and time effect of
// top-K compressed scatters versus full sparse scatters on a
// webspam-shaped delta (§6.2's "compression and other filters").
func BenchmarkGradientCompression(b *testing.B) {
	const dim = 200000
	const touched = 4000 // coordinates the batch actually moved
	for _, tc := range []struct {
		name string
		k    int
	}{
		{"full", touched},
		{"top10pct", touched / 10},
		{"top1pct", touched / 100},
	} {
		b.Run(tc.name, func(b *testing.B) {
			vecs := makeVectors(b, 2, dataflow.All, vol.Sparse, dim, vol.Options{MaxNNZ: touched})
			delta := make([]float64, dim)
			for i := 0; i < touched; i++ {
				delta[i*(dim/touched)] = float64(i%17) - 8
			}
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				up := vol.TopK(delta, tc.k)
				if _, err := vecs[0].ScatterSparse(up, uint64(i+1)); err != nil {
					b.Fatal(err)
				}
			}
			b.StopTimer()
			per := float64(0)
			if b.N > 0 {
				per = float64(vecs[0].Segment().Node().Cluster().Fabric().Stats().TotalBytes()) / float64(b.N)
			}
			b.ReportMetric(per, "wire_bytes/op")
		})
	}
}
