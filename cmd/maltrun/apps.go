package main

import (
	"fmt"
	"sync"
	"time"

	"malt/internal/consistency"
	"malt/internal/core"
	"malt/internal/data"
	"malt/internal/dataflow"
	"malt/internal/ml/kmeans"
	"malt/internal/ml/linalg"
	"malt/internal/ml/mf"
	"malt/internal/ml/nn"
	"malt/internal/vol"
)

// runMF trains the Netflix-shaped matrix factorization with distributed
// Hogwild (sparse row scatters, coordinate replace) and prints RMSE.
func runMF(ranks, cb, epochs, scale int) error {
	spec := data.NetflixSpec(scale)
	ds, err := data.GenerateRatings(spec)
	if err != nil {
		return err
	}
	ds.SortByItem()
	cfg := mf.Config{Users: ds.Users, Items: ds.Items, Rank: ds.Rank, Eta0: 0.02}
	fmt.Printf("netflix-shaped: %d ratings over %dx%d, rank %d\n",
		len(ds.Train), ds.Users, ds.Items, ds.Rank)

	cluster, err := core.NewCluster(core.Config{
		Ranks: ranks, Dataflow: dataflow.All, Sync: consistency.ASP, QueueLen: 8,
	})
	if err != nil {
		return err
	}
	var mu sync.Mutex
	var rmse float64
	start := time.Now()
	res := cluster.Run(func(ctx *core.Context) error {
		uDim, vDim := cfg.Users*cfg.Rank, cfg.Items*cfg.Rank
		uVec, err := ctx.CreateVectorOpts("U", vol.Sparse, uDim, vol.Options{MaxNNZ: uDim})
		if err != nil {
			return err
		}
		vVec, err := ctx.CreateVectorOpts("V", vol.Sparse, vDim, vol.Options{MaxNNZ: vDim})
		if err != nil {
			return err
		}
		model, err := mf.NewOver(cfg, uVec.Data(), vVec.Data())
		if err != nil {
			return err
		}
		model.Init(31)
		if err := ctx.Barrier(uVec); err != nil {
			return err
		}
		lo, hi, err := ctx.Shard(len(ds.Train))
		if err != nil {
			return err
		}
		shard := ds.Train[lo:hi]
		touchedU := map[int32]bool{}
		touchedV := map[int32]bool{}
		iter := uint64(0)
		for epoch := 0; epoch < epochs; epoch++ {
			for at := 0; at+cb <= len(shard); at += cb {
				ctx.Compute(func() {
					for _, r := range shard[at : at+cb] {
						model.Step(r)
						touchedU[r.User] = true
						touchedV[r.Item] = true
					}
				})
				iter++
				ctx.SetIteration(iter)
				if err := scatterFactorRows(ctx, uVec, touchedU, cfg.Rank, iter); err != nil {
					return err
				}
				if err := scatterFactorRows(ctx, vVec, touchedV, cfg.Rank, iter); err != nil {
					return err
				}
				clear(touchedU)
				clear(touchedV)
				if _, err := ctx.Gather(uVec, vol.ReplaceCoords); err != nil {
					return err
				}
				if _, err := ctx.Gather(vVec, vol.ReplaceCoords); err != nil {
					return err
				}
			}
		}
		if ctx.Rank() == 0 {
			mu.Lock()
			rmse = model.RMSE(ds.Test)
			mu.Unlock()
		}
		return nil
	})
	if err := res.FirstError(); err != nil {
		return err
	}
	fmt.Printf("trained in %v; test RMSE %.4f (noise floor %.2f)\n",
		time.Since(start).Round(time.Millisecond), rmse, spec.Noise)
	return nil
}

func scatterFactorRows(ctx *core.Context, v *vol.Vector, touched map[int32]bool, rank int, iter uint64) error {
	if len(touched) == 0 {
		return nil
	}
	rows := make([]int32, 0, len(touched))
	for r := range touched {
		rows = append(rows, r)
	}
	for i := 1; i < len(rows); i++ {
		for j := i; j > 0 && rows[j] < rows[j-1]; j-- {
			rows[j], rows[j-1] = rows[j-1], rows[j]
		}
	}
	sv := &linalg.SparseVector{}
	buf := v.Data()
	for _, row := range rows {
		base := int(row) * rank
		for k := 0; k < rank; k++ {
			sv.Append(int32(base+k), buf[base+k])
		}
	}
	_, err := v.ScatterSparse(sv, iter)
	return err
}

// runNN trains the KDD12-shaped SSI network with per-layer vectors under
// BSP model averaging and prints the test AUC.
func runNN(ranks, cb, epochs, scale int) error {
	spec := data.KDD12Spec(scale)
	ds, err := data.GenerateClicks(spec)
	if err != nil {
		return err
	}
	cfg := nn.Config{Input: ds.Dim, H1: 64, H2: 32, Eta0: 0.1}
	sizes, err := nn.LayerSizes(cfg)
	if err != nil {
		return err
	}
	fmt.Printf("kdd12-shaped: %d examples, %d features, layers %v\n", len(ds.Train), ds.Dim, sizes)

	cluster, err := core.NewCluster(core.Config{Ranks: ranks, Dataflow: dataflow.All, Sync: consistency.BSP})
	if err != nil {
		return err
	}
	var mu sync.Mutex
	var auc float64
	start := time.Now()
	res := cluster.Run(func(ctx *core.Context) error {
		layers := make([]*vol.Vector, nn.NumLayers)
		bufs := make([][]float64, nn.NumLayers)
		for i := range layers {
			v, err := ctx.CreateVector(fmt.Sprintf("layer%d", i), vol.Dense, sizes[i])
			if err != nil {
				return err
			}
			layers[i] = v
			bufs[i] = v.Data()
		}
		net, err := nn.NewOver(cfg, bufs)
		if err != nil {
			return err
		}
		net.Init(42)
		if err := ctx.Barrier(layers[0]); err != nil {
			return err
		}
		iter := uint64(0)
		for epoch := 0; epoch < epochs; epoch++ {
			lo, hi, err := ctx.Shard(len(ds.Train))
			if err != nil {
				return err
			}
			shard := ds.Train[lo:hi]
			nBatches := len(ds.Train) / len(ctx.Survivors()) / cb
			for b := 0; b < nBatches; b++ {
				ctx.Compute(func() { net.TrainEpoch(shard[b*cb : (b+1)*cb]) })
				iter++
				ctx.SetIteration(iter)
				for _, v := range layers {
					if err := ctx.Scatter(v); err != nil {
						return err
					}
				}
				if err := ctx.Advance(layers[0]); err != nil {
					return err
				}
				for _, v := range layers {
					if _, err := ctx.Gather(v, vol.Average); err != nil {
						return err
					}
				}
				if err := ctx.Commit(layers[0]); err != nil {
					return err
				}
			}
		}
		if ctx.Rank() == 0 {
			mu.Lock()
			auc = net.AUC(ds.Test)
			mu.Unlock()
		}
		return nil
	})
	if err := res.FirstError(); err != nil {
		return err
	}
	fmt.Printf("trained in %v; test AUC %.4f\n", time.Since(start).Round(time.Millisecond), auc)
	return nil
}

// runKMeans clusters a Gaussian mixture with distributed Lloyd's and
// prints the final inertia.
func runKMeans(ranks, epochs, scale int) error {
	spec := data.ClusterSpec{Name: "mixture", K: 8, Dim: 32, Train: 40000 * scale, Spread: 0.2, Seed: 17}
	ds, _, err := data.GenerateClusters(spec)
	if err != nil {
		return err
	}
	fmt.Printf("mixture: %d points, %d dims, k=%d\n", len(ds.Train), spec.Dim, spec.K)

	cluster, err := core.NewCluster(core.Config{Ranks: ranks, Dataflow: dataflow.All, Sync: consistency.BSP})
	if err != nil {
		return err
	}
	var mu sync.Mutex
	var inertia float64
	start := time.Now()
	res := cluster.Run(func(ctx *core.Context) error {
		m, err := kmeans.New(kmeans.Config{K: spec.K, Dim: spec.Dim})
		if err != nil {
			return err
		}
		if err := m.Init(ds.Train, 5); err != nil {
			return err
		}
		stats, err := ctx.CreateVector("stats", vol.Dense, m.StatsLen())
		if err != nil {
			return err
		}
		lo, hi, err := ctx.Shard(len(ds.Train))
		if err != nil {
			return err
		}
		shard := ds.Train[lo:hi]
		for round := 0; round < epochs; round++ {
			ctx.SetIteration(uint64(round + 1))
			ctx.Compute(func() { _ = m.Accumulate(stats.Data(), shard) })
			if err := ctx.Scatter(stats); err != nil {
				return err
			}
			if err := ctx.Advance(stats); err != nil {
				return err
			}
			if _, err := ctx.Gather(stats, vol.Sum); err != nil {
				return err
			}
			if err := m.Update(stats.Data()); err != nil {
				return err
			}
			if err := ctx.Commit(stats); err != nil {
				return err
			}
		}
		if ctx.Rank() == 0 {
			mu.Lock()
			inertia = m.Inertia(ds.Train) / float64(len(ds.Train))
			mu.Unlock()
		}
		return nil
	})
	if err := res.FirstError(); err != nil {
		return err
	}
	fmt.Printf("clustered in %v; mean squared distance %.4f\n",
		time.Since(start).Round(time.Millisecond), inertia)
	return nil
}
