package main

import (
	"strings"
	"testing"
)

func TestValidateTransportFlags(t *testing.T) {
	peers := "127.0.0.1:7001,127.0.0.1:7002,127.0.0.1:7003"
	udsPeers := "/tmp/malt-r0.sock,/tmp/malt-r1.sock,/tmp/malt-r2.sock"
	cases := []struct {
		name    string
		kind    string
		listen  string
		peers   string
		chaos   string
		rejoin  bool
		winFr   int
		winBy   int
		wantErr string // substring of the error, empty = success
		rank    int
	}{
		{name: "inproc default", kind: "inproc"},
		{name: "inproc with listen", kind: "inproc", listen: "127.0.0.1:7001",
			wantErr: "only meaningful with -transport=tcp"},
		{name: "inproc with peers", kind: "inproc", peers: peers,
			wantErr: "only meaningful with -transport=tcp"},
		{name: "unknown transport", kind: "rdma",
			wantErr: "unknown -transport"},
		{name: "tcp without listen", kind: "tcp", peers: peers,
			wantErr: "-transport=tcp requires -listen"},
		{name: "tcp without peers", kind: "tcp", listen: "127.0.0.1:7001",
			wantErr: "-transport=tcp requires -peers"},
		{name: "tcp with chaos", kind: "tcp", listen: "127.0.0.1:7001", peers: peers,
			chaos:   "flaky=0.05",
			wantErr: "-chaos requires the simulated fabric"},
		{name: "duplicate peers", kind: "tcp", listen: "127.0.0.1:7001",
			peers:   "127.0.0.1:7001,127.0.0.1:7002,127.0.0.1:7001",
			wantErr: "duplicate -peers address"},
		{name: "empty peer entry", kind: "tcp", listen: "127.0.0.1:7001",
			peers:   "127.0.0.1:7001,,127.0.0.1:7003",
			wantErr: "entry 1 is empty"},
		{name: "listen not in peers", kind: "tcp", listen: "127.0.0.1:9999", peers: peers,
			wantErr: "does not appear in -peers"},
		{name: "rank 0", kind: "tcp", listen: "127.0.0.1:7001", peers: peers, rank: 0},
		{name: "rank 2", kind: "tcp", listen: "127.0.0.1:7003", peers: peers, rank: 2},
		{name: "peers with spaces", kind: "tcp", listen: "127.0.0.1:7002",
			peers: "127.0.0.1:7001, 127.0.0.1:7002, 127.0.0.1:7003", rank: 1},
		{name: "rejoin rank 2", kind: "tcp", listen: "127.0.0.1:7003", peers: peers,
			rejoin: true, rank: 2},
		{name: "rejoin rank 0", kind: "tcp", listen: "127.0.0.1:7001", peers: peers,
			rejoin:  true,
			wantErr: "-rejoin is only valid for a non-zero rank"},
		{name: "rejoin inproc", kind: "inproc", rejoin: true,
			wantErr: "-rejoin requires -transport=tcp"},
		{name: "uds rank 1", kind: "uds", listen: "/tmp/malt-r1.sock", peers: udsPeers, rank: 1},
		{name: "uds without listen", kind: "uds", peers: udsPeers,
			wantErr: "-transport=uds requires -listen"},
		{name: "uds without peers", kind: "uds", listen: "/tmp/malt-r0.sock",
			wantErr: "-transport=uds requires -peers"},
		{name: "uds with host:port peers", kind: "uds", listen: "/tmp/malt-r0.sock",
			peers:   "127.0.0.1:7001,127.0.0.1:7002",
			wantErr: "looks like a host:port"},
		{name: "uds listen not in peers", kind: "uds", listen: "/tmp/elsewhere.sock", peers: udsPeers,
			wantErr: "does not appear in -peers"},
		{name: "uds rejoin rank 2", kind: "uds", listen: "/tmp/malt-r2.sock", peers: udsPeers,
			rejoin: true, rank: 2},
		{name: "uds with chaos", kind: "uds", listen: "/tmp/malt-r0.sock", peers: udsPeers,
			chaos:   "flaky=0.05",
			wantErr: "-chaos requires the simulated fabric"},
		{name: "tcp with path peers", kind: "tcp", listen: "/tmp/malt-r0.sock",
			peers:   "/tmp/malt-r0.sock,/tmp/malt-r1.sock",
			wantErr: "has no port"},
		{name: "windowed tcp", kind: "tcp", listen: "127.0.0.1:7001", peers: peers,
			winFr: 32, winBy: 1 << 20, rank: 0},
		{name: "ack-per-frame tcp", kind: "tcp", listen: "127.0.0.1:7001", peers: peers,
			winFr: 1, rank: 0},
		{name: "negative windowFrames", kind: "tcp", listen: "127.0.0.1:7001", peers: peers,
			winFr:   -1,
			wantErr: "-windowFrames must be >= 0"},
		{name: "negative windowBytes", kind: "uds", listen: "/tmp/malt-r0.sock", peers: udsPeers,
			winBy:   -4096,
			wantErr: "-windowBytes must be >= 0"},
		{name: "window flags inproc", kind: "inproc", winFr: 8,
			wantErr: "only meaningful with -transport=tcp or -transport=uds"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			spec, err := validateTransportFlags(tc.kind, tc.listen, tc.peers, tc.chaos, tc.rejoin, tc.winFr, tc.winBy)
			if tc.wantErr != "" {
				if err == nil {
					t.Fatalf("want error containing %q, got nil", tc.wantErr)
				}
				if !strings.Contains(err.Error(), tc.wantErr) {
					t.Fatalf("error %q does not contain %q", err, tc.wantErr)
				}
				return
			}
			if err != nil {
				t.Fatalf("unexpected error: %v", err)
			}
			if spec.kind != tc.kind {
				t.Fatalf("kind = %q, want %q", spec.kind, tc.kind)
			}
			if tc.kind != "inproc" && spec.rank != tc.rank {
				t.Fatalf("rank = %d, want %d", spec.rank, tc.rank)
			}
			if spec.rejoin != tc.rejoin {
				t.Fatalf("rejoin = %v, want %v", spec.rejoin, tc.rejoin)
			}
			if spec.windowFrames != tc.winFr || spec.windowBytes != tc.winBy {
				t.Fatalf("window = %d frames / %d bytes, want %d/%d",
					spec.windowFrames, spec.windowBytes, tc.winFr, tc.winBy)
			}
		})
	}
}
