package main

import (
	"strings"
	"testing"
)

func TestValidateTransportFlags(t *testing.T) {
	peers := "127.0.0.1:7001,127.0.0.1:7002,127.0.0.1:7003"
	cases := []struct {
		name    string
		kind    string
		listen  string
		peers   string
		chaos   string
		rejoin  bool
		wantErr string // substring of the error, empty = success
		rank    int
	}{
		{name: "inproc default", kind: "inproc"},
		{name: "inproc with listen", kind: "inproc", listen: "127.0.0.1:7001",
			wantErr: "only meaningful with -transport=tcp"},
		{name: "inproc with peers", kind: "inproc", peers: peers,
			wantErr: "only meaningful with -transport=tcp"},
		{name: "unknown transport", kind: "rdma",
			wantErr: "unknown -transport"},
		{name: "tcp without listen", kind: "tcp", peers: peers,
			wantErr: "-transport=tcp requires -listen"},
		{name: "tcp without peers", kind: "tcp", listen: "127.0.0.1:7001",
			wantErr: "-transport=tcp requires -peers"},
		{name: "tcp with chaos", kind: "tcp", listen: "127.0.0.1:7001", peers: peers,
			chaos:   "flaky=0.05",
			wantErr: "-chaos requires the simulated fabric"},
		{name: "duplicate peers", kind: "tcp", listen: "127.0.0.1:7001",
			peers:   "127.0.0.1:7001,127.0.0.1:7002,127.0.0.1:7001",
			wantErr: "duplicate -peers address"},
		{name: "empty peer entry", kind: "tcp", listen: "127.0.0.1:7001",
			peers:   "127.0.0.1:7001,,127.0.0.1:7003",
			wantErr: "entry 1 is empty"},
		{name: "listen not in peers", kind: "tcp", listen: "127.0.0.1:9999", peers: peers,
			wantErr: "does not appear in -peers"},
		{name: "rank 0", kind: "tcp", listen: "127.0.0.1:7001", peers: peers, rank: 0},
		{name: "rank 2", kind: "tcp", listen: "127.0.0.1:7003", peers: peers, rank: 2},
		{name: "peers with spaces", kind: "tcp", listen: "127.0.0.1:7002",
			peers: "127.0.0.1:7001, 127.0.0.1:7002, 127.0.0.1:7003", rank: 1},
		{name: "rejoin rank 2", kind: "tcp", listen: "127.0.0.1:7003", peers: peers,
			rejoin: true, rank: 2},
		{name: "rejoin rank 0", kind: "tcp", listen: "127.0.0.1:7001", peers: peers,
			rejoin:  true,
			wantErr: "-rejoin is only valid for a non-zero rank"},
		{name: "rejoin inproc", kind: "inproc", rejoin: true,
			wantErr: "-rejoin requires -transport=tcp"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			spec, err := validateTransportFlags(tc.kind, tc.listen, tc.peers, tc.chaos, tc.rejoin)
			if tc.wantErr != "" {
				if err == nil {
					t.Fatalf("want error containing %q, got nil", tc.wantErr)
				}
				if !strings.Contains(err.Error(), tc.wantErr) {
					t.Fatalf("error %q does not contain %q", err, tc.wantErr)
				}
				return
			}
			if err != nil {
				t.Fatalf("unexpected error: %v", err)
			}
			if spec.kind != tc.kind {
				t.Fatalf("kind = %q, want %q", spec.kind, tc.kind)
			}
			if tc.kind == "tcp" && spec.rank != tc.rank {
				t.Fatalf("rank = %d, want %d", spec.rank, tc.rank)
			}
			if spec.rejoin != tc.rejoin {
				t.Fatalf("rejoin = %v, want %v", spec.rejoin, tc.rejoin)
			}
		})
	}
}
