package main

import (
	"fmt"
	"strings"

	"malt/internal/compress"
)

// validateCompressFlags turns the -compress* flag triple into a
// compress.Options, rejecting incoherent combinations before any goroutine
// starts (the same fail-early contract as validateTransportFlags). An empty
// codec with the other knobs at their zero values means compression is off.
func validateCompressFlags(codec string, ratio float64, adapt, sparse bool) (compress.Options, error) {
	if codec == "" {
		if ratio != 0 {
			return compress.Options{}, fmt.Errorf("maltrun: -compressRatio is only meaningful with -compress (pick a codec: %s)", strings.Join(compress.Names(), ", "))
		}
		if adapt {
			return compress.Options{}, fmt.Errorf("maltrun: -compressAdapt is only meaningful with -compress (pick a ratio-driven codec: topk or hybrid)")
		}
		return compress.Options{}, nil
	}
	if sparse {
		return compress.Options{}, fmt.Errorf("maltrun: -compress requires the dense wire format; add -sparse=false (sparse scatters are already top-k deltas)")
	}
	opts := compress.Options{Codec: codec, Ratio: ratio, Adapt: adapt}
	if err := opts.Validate(); err != nil {
		return compress.Options{}, fmt.Errorf("maltrun: %w", err)
	}
	return opts, nil
}
