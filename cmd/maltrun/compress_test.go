package main

import (
	"strings"
	"testing"
)

func TestValidateCompressFlags(t *testing.T) {
	cases := []struct {
		name    string
		codec   string
		ratio   float64
		adapt   bool
		sparse  bool
		wantErr string // substring of the error, empty = success
	}{
		{name: "off by default", codec: "", sparse: true},
		{name: "topk dense", codec: "topk"},
		{name: "topk custom ratio", codec: "topk", ratio: 0.25},
		{name: "int8 dense", codec: "int8"},
		{name: "hybrid adaptive", codec: "hybrid", ratio: 0.1, adapt: true},
		{name: "none codec", codec: "none"},
		{name: "unknown codec", codec: "zstd",
			wantErr: `unknown codec "zstd"`},
		{name: "sparse wire format", codec: "topk", sparse: true,
			wantErr: "requires the dense wire format"},
		{name: "ratio without codec", ratio: 0.25,
			wantErr: "-compressRatio is only meaningful with -compress"},
		{name: "adapt without codec", adapt: true,
			wantErr: "-compressAdapt is only meaningful with -compress"},
		{name: "ratio above one", codec: "topk", ratio: 2,
			wantErr: "ratio must be in (0, 1]"},
		{name: "negative ratio", codec: "topk", ratio: -0.5,
			wantErr: "ratio must be in (0, 1]"},
		{name: "adapt on fixed-rate codec", codec: "int8", adapt: true,
			wantErr: "adaptive ratios require a ratio-driven codec"},
		{name: "adapt on none codec", codec: "none", adapt: true,
			wantErr: "adaptive ratios require a ratio-driven codec"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			opts, err := validateCompressFlags(tc.codec, tc.ratio, tc.adapt, tc.sparse)
			if tc.wantErr != "" {
				if err == nil {
					t.Fatalf("want error containing %q, got nil (opts %+v)", tc.wantErr, opts)
				}
				if !strings.Contains(err.Error(), tc.wantErr) {
					t.Fatalf("error %q does not contain %q", err, tc.wantErr)
				}
				return
			}
			if err != nil {
				t.Fatalf("unexpected error: %v", err)
			}
			if opts.Enabled() != (tc.codec != "") {
				t.Fatalf("Enabled() = %v for codec %q", opts.Enabled(), tc.codec)
			}
			if tc.codec != "" {
				if opts.Codec != tc.codec || opts.Ratio != tc.ratio || opts.Adapt != tc.adapt {
					t.Fatalf("opts = %+v, want codec=%q ratio=%g adapt=%v", opts, tc.codec, tc.ratio, tc.adapt)
				}
			}
		})
	}
}
