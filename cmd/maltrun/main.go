// maltrun launches one distributed SVM training job over the simulated
// cluster and reports its convergence, per-phase time breakdown and
// network traffic — the operational front end to the MALT runtime.
//
//	maltrun -workload rcv1 -ranks 10 -cb 50 -dataflow halton -sync asp -epochs 10
//	maltrun -data train.libsvm -ranks 4 -cb 100
//
// A chaos scenario subjects the run to a scripted hostile network:
//
//	maltrun -ranks 4 -sync asp -chaos "flaky=0.05;blackout=1@100ms+80ms;kill=3@300ms"
//
// A crashed rank rejoins a still-running tcp cluster (survivors started
// with -publish donate it a state snapshot):
//
//	maltrun -transport tcp -listen 127.0.0.1:7003 -peers 127.0.0.1:7001,127.0.0.1:7002,127.0.0.1:7003 -rejoin -publish ...
package main

import (
	"flag"
	"fmt"
	"log"
	"os"

	"malt/internal/bench"
	"malt/internal/chaos"
	"malt/internal/consistency"
	"malt/internal/data"
	"malt/internal/dataflow"
	"malt/internal/dstorm"
	"malt/internal/ml/svm"
	"malt/internal/trace"
)

func main() {
	var (
		app       = flag.String("app", "svm", "application: svm|mf|nn|kmeans")
		workload  = flag.String("workload", "rcv1", "synthetic workload shape for svm: rcv1|alpha|dna|webspam|splice")
		dataFile  = flag.String("data", "", "libsvm training file (overrides -workload)")
		scale     = flag.Int("scale", 1, "dataset scale multiplier")
		ranks     = flag.Int("ranks", 4, "model replicas")
		cb        = flag.Int("cb", 50, "communication batch size (examples)")
		epochs    = flag.Int("epochs", 10, "training epochs")
		flowStr   = flag.String("dataflow", "all", "dataflow: all|halton|ring")
		syncStr   = flag.String("sync", "bsp", "consistency: bsp|asp|ssp")
		modeStr   = flag.String("mode", "gradavg", "update exchanged: gradavg|modelavg")
		goal      = flag.Float64("goal", 0, "stop at this training loss (0 = run all epochs)")
		lambda    = flag.Float64("lambda", 1e-5, "L2 regularization")
		eta       = flag.Float64("eta", 1, "initial learning rate")
		sparse    = flag.Bool("sparse", true, "sparse wire format")
		chaosStr  = flag.String("chaos", "", `chaos scenario, e.g. "flaky=0.05;blackout=1@100ms+80ms;kill=3@300ms" (svm only)`)
		chaosSeed = flag.Int64("chaosSeed", 1, "seed for the chaos scenario's injection streams")
		batch     = flag.Bool("batch", false, "coalesce scatters per destination (async send pipeline; svm only)")
		batchCnt  = flag.Int("batchCount", 0, "flush a destination's batch at this many records (0 = default)")
		batchByte = flag.Int("batchBytes", 0, "flush a destination's batch at this many payload bytes (0 = default)")
		batchWait = flag.Duration("batchDelay", 0, "flush a destination's batch after this long (0 = default)")
		gatherW   = flag.Int("gatherWorkers", 0, "parallel gather engine workers (0 = serial, -1 = default pool size; svm only)")
		foldChunk = flag.Int("foldChunk", 0, "coordinate-chunk size for parallel folds (0 = default)")
		bucketB   = flag.Int("bucketBytes", 0, "split gradient scatters into buckets of this many payload bytes so communication overlaps compute (0 = off; requires -sparse=false; svm only)")
		transport = flag.String("transport", "inproc", "interconnect: inproc (simulated fabric), tcp (one process per rank over real sockets) or uds (one process per rank over Unix domain sockets; svm only)")
		listen    = flag.String("listen", "", "this rank's host:port (tcp) or socket path (uds)")
		peersStr  = flag.String("peers", "", "comma-separated host:port (tcp) or socket-path (uds) list for every rank; this rank = position of -listen in the list")
		rejoin    = flag.Bool("rejoin", false, "rejoin a running tcp/uds cluster after a crash instead of rendezvousing: mint a fresh membership epoch, pull a state snapshot from a publishing survivor, and resume (non-zero rank)")
		publish   = flag.Bool("publish", false, "publish this rank's recoverable state (model, iteration, optimizer scalars) every batch so it can donate snapshots to rejoining peers (tcp/uds transport)")
		windowFr  = flag.Int("windowFrames", 0, "max unacked data frames per link before the sender stalls (0 = transport default, 1 = synchronous ack-per-frame; tcp/uds transport)")
		windowBy  = flag.Int("windowBytes", 0, "max unacked payload bytes per link before the sender stalls (0 = transport default; tcp/uds transport)")
		compCodec = flag.String("compress", "", "gradient compression codec: none|topk|int8|hybrid (empty = off; requires -sparse=false; svm only)")
		compRatio = flag.Float64("compressRatio", 0, "fraction of coordinates the ratio-driven codecs ship, in (0,1] (0 = default 0.125)")
		compAdapt = flag.Bool("compressAdapt", false, "adapt each link's compression ratio from fabric health signals (requires -compress=topk or hybrid)")
	)
	flag.Parse()

	tspec, err := validateTransportFlags(*transport, *listen, *peersStr, *chaosStr, *rejoin, *windowFr, *windowBy)
	if err != nil {
		log.Fatal(err)
	}
	compOpts, err := validateCompressFlags(*compCodec, *compRatio, *compAdapt, *sparse)
	if err != nil {
		log.Fatal(err)
	}
	if compOpts.Enabled() && *app != "svm" {
		log.Fatalf("maltrun: -compress supports only -app=svm (got %q)", *app)
	}
	if tspec.external() && *app != "svm" {
		log.Fatalf("maltrun: -transport=%s supports only -app=svm (got %q)", tspec.kind, *app)
	}

	switch *app {
	case "svm":
		// handled below
	case "mf":
		if err := runMF(*ranks, *cb*10, *epochs, *scale); err != nil {
			log.Fatal(err)
		}
		return
	case "nn":
		if err := runNN(*ranks, max(*cb, 100), *epochs, *scale); err != nil {
			log.Fatal(err)
		}
		return
	case "kmeans":
		if err := runKMeans(*ranks, *epochs, *scale); err != nil {
			log.Fatal(err)
		}
		return
	default:
		log.Fatalf("unknown -app %q", *app)
	}

	ds, err := loadDataset(*dataFile, *workload, *scale)
	if err != nil {
		log.Fatal(err)
	}
	flow, err := dataflow.ParseKind(*flowStr)
	if err != nil {
		log.Fatal(err)
	}
	sync, err := consistency.ParseModel(*syncStr)
	if err != nil {
		log.Fatal(err)
	}
	var mode bench.CommMode
	switch *modeStr {
	case "gradavg":
		mode = bench.GradAvg
	case "modelavg":
		mode = bench.ModelAvg
	default:
		log.Fatalf("unknown -mode %q", *modeStr)
	}

	if tspec.external() {
		// The peer list is the cluster: every process must derive the same
		// shape, so -ranks is ignored in favor of len(-peers).
		*ranks = len(tspec.peers)
	}

	fmt.Printf("workload %s: %d train / %d test examples, %d features\n",
		ds.Name, len(ds.Train), len(ds.Test), ds.Dim)
	fmt.Printf("cluster: %d ranks, %v dataflow, %v, %s, cb=%d\n", *ranks, flow, sync, mode, *cb)

	var script *chaos.Script
	if *chaosStr != "" {
		script, err = chaos.Parse(*chaosStr, *chaosSeed)
		if err != nil {
			log.Fatal(err)
		}
		if err := script.Validate(*ranks); err != nil {
			log.Fatal(err)
		}
		fmt.Printf("chaos: %q (seed %d, %d timed events)\n", *chaosStr, *chaosSeed, len(script.Events()))
	}

	var pipe *dstorm.PipelineConfig
	if *batch || *batchCnt > 0 || *batchByte > 0 || *batchWait > 0 {
		pipe = &dstorm.PipelineConfig{
			MaxBatchCount: *batchCnt,
			MaxBatchBytes: *batchByte,
			MaxDelay:      *batchWait,
		}
		fmt.Printf("send pipeline: count=%d bytes=%d delay=%v (0 = default)\n",
			*batchCnt, *batchByte, *batchWait)
	}

	if *gatherW != 0 {
		fmt.Printf("parallel gather: workers=%d foldChunk=%d (0 = default)\n", *gatherW, *foldChunk)
	}

	if *bucketB > 0 {
		if *sparse {
			log.Fatal("maltrun: -bucketBytes requires the dense wire format; add -sparse=false (sparse scatters are already deltas and are not bucketed)")
		}
		fmt.Printf("gradient bucketing: bucketBytes=%d (comm/compute overlap)\n", *bucketB)
	}

	if compOpts.Enabled() {
		fmt.Printf("gradient compression: codec=%s ratio=%g adapt=%v\n", compOpts.Codec, compOpts.Ratio, compOpts.Adapt)
	}

	opts := bench.SVMOpts{
		DS: ds, Ranks: *ranks, CB: *cb,
		Dataflow: flow, Sync: sync, Cutoff: 16, Bound: 4,
		Mode: mode, Epochs: *epochs, Goal: *goal,
		SVM:    svm.Config{Dim: ds.Dim, Lambda: *lambda, Eta0: *eta},
		Sparse: *sparse, EvalEvery: 4,
		Chaos:         script,
		Pipeline:      pipe,
		GatherWorkers: *gatherW,
		FoldChunk:     *foldChunk,
		BucketBytes:   *bucketB,
		Compress:      compOpts,
	}
	if tspec.external() {
		tnet, err := dialStream(tspec)
		if err != nil {
			log.Fatal(err)
		}
		defer tnet.Close()
		opts.Transport = tnet
		opts.LocalRank = tspec.rank
		opts.Rejoin = tspec.rejoin
		opts.PublishState = *publish
	}
	res, err := bench.RunSVM(opts)
	if err != nil {
		log.Fatal(err)
	}

	if tspec.external() {
		// Each process's exit-time membership view, so an operator (or the
		// CI smoke) can assert the whole cluster healed after a rejoin.
		fmt.Printf("survivors: %v\n", res.Cluster.Context(tspec.rank).Monitor().Survivors())
	}
	if tspec.external() && tspec.rank != 0 {
		// Only rank 0's process samples the curve and owns the final
		// model; the other processes report their local phase breakdown
		// and traffic and exit.
		fmt.Printf("\nrank %d finished in %v\n", tspec.rank, res.Elapsed.Round(1e6))
		printTimers(res, 1)
		printNetwork(res)
		return
	}

	tr, _ := svm.New(svm.Config{Dim: ds.Dim, Lambda: *lambda})
	fmt.Printf("\ntrained in %v; final test loss %.4f, accuracy %.3f\n",
		res.Elapsed.Round(1e6), res.Curve.Final(), tr.Accuracy(res.FinalW, ds.Test))
	if *goal > 0 {
		if res.Reached {
			fmt.Printf("goal %.4f reached after %.2fs (%.0f examples/rank)\n", *goal, res.TimeToGoal, res.ItersToGoal)
		} else {
			fmt.Printf("goal %.4f not reached\n", *goal)
		}
	}

	agg := printTimers(res, *ranks)
	printNetwork(res)
	if pipe != nil {
		fmt.Printf("coalescing: %d fabric writes saved, %.1f MB merged, peak send queue %d\n",
			agg.Count(trace.WritesSaved), float64(agg.Count(trace.BytesMerged))/(1<<20),
			agg.Count(trace.QueuePeak))
	}
	if *gatherW != 0 {
		fmt.Printf("gather engine: %d decode tasks fanned out, %d chunks folded, %d scratch hits\n",
			agg.Count(trace.DecodeTasks), agg.Count(trace.ChunksFolded), agg.Count(trace.ScratchHits))
	}
	if compOpts.Enabled() {
		pre, post := agg.Count(trace.BytesPrecompress), agg.Count(trace.BytesPostcompress)
		reduction := 0.0
		if post > 0 {
			reduction = float64(pre) / float64(post)
		}
		fmt.Printf("compression: %.1f MB raw -> %.1f MB shipped (%.1fx), residual L1 %.3f, tightest link ratio 1/%.1f\n",
			float64(pre)/(1<<20), float64(post)/(1<<20), reduction,
			float64(agg.Count(trace.ResidualNorm))/1e6,
			float64(agg.Count(trace.RatioPerLink))/1e3)
	}
	if *bucketB > 0 {
		fmt.Printf("overlap: %d buckets sent, %.3fs comm hidden behind compute, %.3fs exposed (%.0f%% overlapped)\n",
			agg.Count(trace.BucketsSent),
			float64(agg.Count(trace.OverlappedNs))/1e9,
			float64(agg.Count(trace.ExposedCommNs))/1e9,
			100*agg.OverlappedFrac())
	}

	if script != nil {
		fmt.Printf("\nchaos: %d transient drops injected, %v straggler wire time\n",
			res.Stats.InjectedDrops(), res.Stats.InjectedJitterTime().Round(1e6))
		fmt.Printf("retries: %d attempts, %d retried, %d recovered, %d exhausted\n",
			res.Retry.Attempts, res.Retry.Retries, res.Retry.Recovered, res.Retry.Exhausted)
		for _, ev := range res.ChaosLog {
			status := "ok"
			if ev.Err != nil {
				status = ev.Err.Error()
			}
			fmt.Printf("  %8v %-28s %s\n", ev.At, ev.Desc, status)
		}
		for _, r := range res.Cluster.Fabric().AliveRanks() {
			m := res.Cluster.Context(r).Monitor()
			st := m.SuspicionStats()
			fmt.Printf("  rank %d: survivors %v; %d reports, %d health checks, %d refuted, %d confirmed\n",
				r, m.Survivors(), st.Reports, st.HealthChecks, st.Refuted, st.Confirmed)
		}
	}
}

// printTimers prints the mean per-rank phase breakdown over the n ranks
// that ran in this process (remote ranks have no timer here) and returns
// the aggregate for follow-up reporting.
func printTimers(res *bench.RunStats, n int) *trace.Timer {
	agg := &trace.Timer{}
	for _, tm := range res.Timers {
		if tm != nil {
			agg.Merge(tm)
		}
	}
	fmt.Printf("\nper-rank phase breakdown (mean):\n")
	for _, p := range trace.Phases() {
		fmt.Printf("  %-8s %10.3fs\n", p, agg.Get(p).Seconds()/float64(n))
	}
	return agg
}

func printNetwork(res *bench.RunStats) {
	fmt.Printf("\nnetwork: %.1f MB total, %d messages, modeled wire time %v\n",
		float64(res.Stats.TotalBytes())/(1<<20), res.Stats.TotalMessages(),
		res.Stats.ModeledNetworkTime().Round(1e6))
}

func loadDataset(file, workload string, scale int) (*data.Dataset, error) {
	if file != "" {
		f, err := os.Open(file)
		if err != nil {
			return nil, err
		}
		defer f.Close()
		ds, err := data.ReadLibSVM(f, "user", 0)
		if err != nil {
			return nil, err
		}
		// Hold out 10% for evaluation.
		cut := len(ds.Train) * 9 / 10
		ds.Test = ds.Train[cut:]
		ds.Train = ds.Train[:cut]
		return ds, nil
	}
	return data.Shape(workload).Generate(scale)
}

func max(a, b int) int {
	if a > b {
		return a
	}
	return b
}
