package main

import (
	"fmt"
	"strings"

	"malt/internal/fabric/stream"
	"malt/internal/fabric/tcpnet"
	"malt/internal/fabric/udsnet"
)

// transportSpec is the validated result of the -transport/-listen/-peers
// flag group, plus the data-window tuning knobs.
type transportSpec struct {
	kind         string // "inproc", "tcp" or "uds"
	listen       string
	peers        []string
	rank         int  // index of listen in peers (external transports only)
	rejoin       bool // skip rendezvous and join a running cluster (external only)
	windowFrames int  // data-window frame credit (0 = transport default)
	windowBytes  int  // data-window byte credit (0 = transport default)
}

// external reports whether the spec names a real multi-process transport
// (one OS process per rank) rather than the simulated in-process fabric.
func (s *transportSpec) external() bool { return s.kind != "inproc" }

// validateTransportFlags checks the transport flag group before anything
// binds a socket or loads a dataset, so a mis-assembled cluster fails fast
// with an actionable message on every rank.
func validateTransportFlags(kind, listen, peers, chaosSpec string, rejoin bool, windowFrames, windowBytes int) (*transportSpec, error) {
	switch kind {
	case "inproc":
		if listen != "" || peers != "" {
			return nil, fmt.Errorf("maltrun: -listen and -peers are only meaningful with -transport=tcp or -transport=uds (got -transport=inproc)")
		}
		if rejoin {
			return nil, fmt.Errorf("maltrun: -rejoin requires -transport=tcp or -transport=uds (in-process runs rejoin via chaos join events)")
		}
		if windowFrames != 0 || windowBytes != 0 {
			return nil, fmt.Errorf("maltrun: -windowFrames/-windowBytes tune the stream transports and are only meaningful with -transport=tcp or -transport=uds")
		}
		return &transportSpec{kind: kind}, nil
	case "tcp", "uds":
	default:
		return nil, fmt.Errorf("maltrun: unknown -transport %q (want inproc, tcp or uds)", kind)
	}
	if listen == "" {
		if kind == "uds" {
			return nil, fmt.Errorf("maltrun: -transport=uds requires -listen (this process's socket path, e.g. -listen=/tmp/malt-r0.sock)")
		}
		return nil, fmt.Errorf("maltrun: -transport=tcp requires -listen (this process's host:port, e.g. -listen=127.0.0.1:7001)")
	}
	if peers == "" {
		if kind == "uds" {
			return nil, fmt.Errorf("maltrun: -transport=uds requires -peers (comma-separated socket-path list covering every rank, including this one)")
		}
		return nil, fmt.Errorf("maltrun: -transport=tcp requires -peers (comma-separated host:port list covering every rank, including this one)")
	}
	if chaosSpec != "" {
		return nil, fmt.Errorf("maltrun: -chaos requires the simulated fabric and cannot be combined with -transport=%s; run the chaos scenario with -transport=inproc", kind)
	}
	if windowFrames < 0 {
		return nil, fmt.Errorf("maltrun: -windowFrames must be >= 0 (0 = default %d, 1 = synchronous ack-per-frame), got %d", stream.DefaultWindowFrames, windowFrames)
	}
	if windowBytes < 0 {
		return nil, fmt.Errorf("maltrun: -windowBytes must be >= 0 (0 = default %d), got %d", stream.DefaultWindowBytes, windowBytes)
	}
	list := strings.Split(peers, ",")
	spec := &transportSpec{kind: kind, listen: listen, rank: -1, windowFrames: windowFrames, windowBytes: windowBytes}
	seen := make(map[string]int, len(list))
	for i, addr := range list {
		addr = strings.TrimSpace(addr)
		if addr == "" {
			return nil, fmt.Errorf("maltrun: -peers entry %d is empty", i)
		}
		if kind == "uds" && strings.Contains(addr, ":") {
			return nil, fmt.Errorf("maltrun: -peers entry %d (%q) looks like a host:port; -transport=uds peers are Unix socket paths (e.g. /tmp/malt-r%d.sock)", i, addr, i)
		}
		if kind == "tcp" && !strings.Contains(addr, ":") {
			return nil, fmt.Errorf("maltrun: -peers entry %d (%q) has no port; -transport=tcp peers are host:port pairs (use -transport=uds for socket paths)", i, addr)
		}
		if prev, dup := seen[addr]; dup {
			return nil, fmt.Errorf("maltrun: duplicate -peers address %q (positions %d and %d); every rank needs its own listen address", addr, prev, i)
		}
		seen[addr] = i
		spec.peers = append(spec.peers, addr)
		if addr == listen {
			spec.rank = i
		}
	}
	if spec.rank < 0 {
		return nil, fmt.Errorf("maltrun: -listen %q does not appear in -peers %q; the rank is its position in the peer list", listen, peers)
	}
	if rejoin {
		if spec.rank == 0 {
			return nil, fmt.Errorf("maltrun: -rejoin is only valid for a non-zero rank; rank 0 coordinates admission and cannot rejoin itself")
		}
		spec.rejoin = true
	}
	return spec, nil
}

// dialStream binds this rank's listener (TCP socket or Unix socket,
// depending on the spec) and blocks in the rank-0 rendezvous until the
// whole peer list has assembled. In rejoin mode the rendezvous is skipped:
// the cluster is already running, and admission happens later via the
// epoch-stamped JOIN handshake with rank 0 (driven by cluster.Rejoin).
func dialStream(spec *transportSpec) (*stream.Net, error) {
	cfg := stream.Config{
		Rank:         spec.rank,
		Peers:        spec.peers,
		WindowFrames: spec.windowFrames,
		WindowBytes:  spec.windowBytes,
	}
	var n *stream.Net
	var err error
	if spec.kind == "uds" {
		n, err = udsnet.New(cfg)
	} else {
		n, err = tcpnet.New(cfg)
	}
	if err != nil {
		return nil, err
	}
	if spec.rejoin {
		fmt.Printf("%s transport: rank %d of %d listening on %s; rejoining running cluster via %s\n",
			spec.kind, spec.rank, len(spec.peers), n.Addr(), spec.peers[0])
		return n, nil
	}
	fmt.Printf("%s transport: rank %d of %d listening on %s; waiting for rendezvous at %s\n",
		spec.kind, spec.rank, len(spec.peers), n.Addr(), spec.peers[0])
	if err := n.Rendezvous(); err != nil {
		n.Close()
		return nil, err
	}
	fmt.Printf("%s transport: cluster assembled (generation %d)\n", spec.kind, n.Generation())
	return n, nil
}
