package main

import (
	"fmt"
	"strings"

	"malt/internal/fabric/tcpnet"
)

// transportSpec is the validated result of the -transport/-listen/-peers
// flag triple.
type transportSpec struct {
	kind   string // "inproc" or "tcp"
	listen string
	peers  []string
	rank   int  // index of listen in peers (tcp only)
	rejoin bool // skip rendezvous and join a running cluster (tcp only)
}

func (s *transportSpec) tcp() bool { return s.kind == "tcp" }

// validateTransportFlags checks the transport flag triple before anything
// binds a socket or loads a dataset, so a mis-assembled cluster fails fast
// with an actionable message on every rank.
func validateTransportFlags(kind, listen, peers, chaosSpec string, rejoin bool) (*transportSpec, error) {
	switch kind {
	case "inproc":
		if listen != "" || peers != "" {
			return nil, fmt.Errorf("maltrun: -listen and -peers are only meaningful with -transport=tcp (got -transport=inproc)")
		}
		if rejoin {
			return nil, fmt.Errorf("maltrun: -rejoin requires -transport=tcp (in-process runs rejoin via chaos join events)")
		}
		return &transportSpec{kind: kind}, nil
	case "tcp":
	default:
		return nil, fmt.Errorf("maltrun: unknown -transport %q (want inproc or tcp)", kind)
	}
	if listen == "" {
		return nil, fmt.Errorf("maltrun: -transport=tcp requires -listen (this process's host:port, e.g. -listen=127.0.0.1:7001)")
	}
	if peers == "" {
		return nil, fmt.Errorf("maltrun: -transport=tcp requires -peers (comma-separated host:port list covering every rank, including this one)")
	}
	if chaosSpec != "" {
		return nil, fmt.Errorf("maltrun: -chaos requires the simulated fabric and cannot be combined with -transport=tcp; run the chaos scenario with -transport=inproc")
	}
	list := strings.Split(peers, ",")
	spec := &transportSpec{kind: kind, listen: listen, rank: -1}
	seen := make(map[string]int, len(list))
	for i, addr := range list {
		addr = strings.TrimSpace(addr)
		if addr == "" {
			return nil, fmt.Errorf("maltrun: -peers entry %d is empty", i)
		}
		if prev, dup := seen[addr]; dup {
			return nil, fmt.Errorf("maltrun: duplicate -peers address %q (positions %d and %d); every rank needs its own listen address", addr, prev, i)
		}
		seen[addr] = i
		spec.peers = append(spec.peers, addr)
		if addr == listen {
			spec.rank = i
		}
	}
	if spec.rank < 0 {
		return nil, fmt.Errorf("maltrun: -listen %q does not appear in -peers %q; the rank is its position in the peer list", listen, peers)
	}
	if rejoin {
		if spec.rank == 0 {
			return nil, fmt.Errorf("maltrun: -rejoin is only valid for a non-zero rank; rank 0 coordinates admission and cannot rejoin itself")
		}
		spec.rejoin = true
	}
	return spec, nil
}

// dialTCP binds this rank's listener and blocks in the rank-0 rendezvous
// until the whole peer list has assembled. In rejoin mode the rendezvous is
// skipped: the cluster is already running, and admission happens later via
// the epoch-stamped JOIN handshake with rank 0 (driven by cluster.Rejoin).
func dialTCP(spec *transportSpec) (*tcpnet.Net, error) {
	n, err := tcpnet.New(tcpnet.Config{Rank: spec.rank, Peers: spec.peers})
	if err != nil {
		return nil, err
	}
	if spec.rejoin {
		fmt.Printf("tcp transport: rank %d of %d listening on %s; rejoining running cluster via %s\n",
			spec.rank, len(spec.peers), n.Addr(), spec.peers[0])
		return n, nil
	}
	fmt.Printf("tcp transport: rank %d of %d listening on %s; waiting for rendezvous at %s\n",
		spec.rank, len(spec.peers), n.Addr(), spec.peers[0])
	if err := n.Rendezvous(); err != nil {
		n.Close()
		return nil, err
	}
	fmt.Printf("tcp transport: cluster assembled (generation %d)\n", n.Generation())
	return n, nil
}
