// Command maltlint runs the maltlint analyzer suite (internal/lint) over
// the named packages and reports every invariant violation. It is this
// repository's machine-checked code review for the invariants the Go type
// system cannot express: errors.Is on sentinels, no scatters under locks,
// no mixed atomic/plain field access, pure fold/hook closures, no raw
// sleeps in retry loops, donated scatter buffers left untouched until the
// drain, and barrier entry that never depends on the caller's rank.
//
// Packages are analyzed in dependency order so cross-package facts ("this
// helper transitively scatters") flow from callee to caller, and every
// package's test units — the in-package _test.go variant and the external
// _test package — are analyzed too.
//
// Usage:
//
//	go run ./cmd/maltlint ./...
//	go run ./cmd/maltlint -only erriscmp,rawsleep ./internal/...
//	go run ./cmd/maltlint -json ./... | jq .
//	go run ./cmd/maltlint -github ./...   # GitHub Actions annotations
//
// Exit status is 1 when any diagnostic is reported, 2 on operational
// failure. Suppress a finding with an audited annotation on or above the
// flagged line:
//
//	//maltlint:allow <analyzer> -- <reason>
//
// The reason is mandatory; a malformed annotation (unknown analyzer name,
// missing `--`, empty reason) is itself reported as an error and
// suppresses nothing.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"strings"

	"malt/internal/lint"
)

// jsonDiagnostic is the -json wire form of one finding.
type jsonDiagnostic struct {
	File     string `json:"file"`
	Line     int    `json:"line"`
	Column   int    `json:"column"`
	Analyzer string `json:"analyzer"`
	Message  string `json:"message"`
}

func main() {
	only := flag.String("only", "", "comma-separated analyzer names to run (default: all)")
	list := flag.Bool("list", false, "list analyzers and exit")
	jsonOut := flag.Bool("json", false, "emit findings as a JSON array on stdout")
	github := flag.Bool("github", false, "emit findings as GitHub Actions ::error annotations")
	noTests := flag.Bool("notests", false, "skip _test.go analysis units")
	flag.Usage = func() {
		fmt.Fprintf(os.Stderr, "usage: maltlint [-only a,b] [-list] [-json|-github] [-notests] [packages]\n")
		flag.PrintDefaults()
	}
	flag.Parse()

	analyzers := lint.All()
	if *list {
		for _, a := range analyzers {
			fmt.Printf("%-15s %s\n", a.Name, a.Doc)
		}
		return
	}
	if *only != "" {
		byName := map[string]*lint.Analyzer{}
		for _, a := range analyzers {
			byName[a.Name] = a
		}
		analyzers = analyzers[:0]
		for _, name := range strings.Split(*only, ",") {
			a, ok := byName[strings.TrimSpace(name)]
			if !ok {
				fatalf("unknown analyzer %q (use -list)", name)
			}
			analyzers = append(analyzers, a)
		}
	}

	patterns := flag.Args()
	if len(patterns) == 0 {
		patterns = []string{"./..."}
	}
	loader, err := lint.NewLoader(".", patterns...)
	if err != nil {
		fatalf("%v", err)
	}
	runner := lint.NewRunner(loader, analyzers)
	runner.SkipTests = *noTests
	diags, err := runner.Run(patterns...)
	if err != nil {
		fatalf("%v", err)
	}

	switch {
	case *jsonOut:
		out := make([]jsonDiagnostic, 0, len(diags))
		for _, d := range diags {
			out = append(out, jsonDiagnostic{
				File:     d.Pos.Filename,
				Line:     d.Pos.Line,
				Column:   d.Pos.Column,
				Analyzer: d.Analyzer,
				Message:  d.Message,
			})
		}
		enc := json.NewEncoder(os.Stdout)
		enc.SetIndent("", "  ")
		if err := enc.Encode(out); err != nil {
			fatalf("%v", err)
		}
	case *github:
		for _, d := range diags {
			// ::error's message field terminates at a newline or a raw
			// comma in the properties; the messages contain commas, so
			// escape per the workflow-command rules.
			fmt.Printf("::error file=%s,line=%d,col=%d,title=maltlint %s::%s\n",
				d.Pos.Filename, d.Pos.Line, d.Pos.Column, d.Analyzer, githubEscape(d.Message))
		}
	default:
		for _, d := range diags {
			fmt.Println(d)
		}
	}
	if len(diags) > 0 {
		fmt.Fprintf(os.Stderr, "maltlint: %d violation(s)\n", len(diags))
		os.Exit(1)
	}
}

// githubEscape encodes a workflow-command message per GitHub's rules: %
// first, then newlines (message data also needs no comma escaping, unlike
// properties, but CR/LF must go).
func githubEscape(s string) string {
	s = strings.ReplaceAll(s, "%", "%25")
	s = strings.ReplaceAll(s, "\r", "%0D")
	s = strings.ReplaceAll(s, "\n", "%0A")
	return s
}

func fatalf(format string, args ...any) {
	fmt.Fprintf(os.Stderr, "maltlint: "+format+"\n", args...)
	os.Exit(2)
}
