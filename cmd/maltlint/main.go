// Command maltlint runs the maltlint analyzer suite (internal/lint) over
// the named packages and reports every invariant violation. It is this
// repository's machine-checked code review for the invariants the Go type
// system cannot express: errors.Is on sentinels, no scatters under locks,
// no mixed atomic/plain field access, pure fold/hook closures, and no raw
// sleeps in retry loops.
//
// Usage:
//
//	go run ./cmd/maltlint ./...
//	go run ./cmd/maltlint -only erriscmp,rawsleep ./internal/...
//
// Exit status is 1 when any diagnostic is reported, 2 on operational
// failure. Suppress a finding with an audited annotation on or above the
// flagged line:
//
//	//maltlint:allow <analyzer> -- <reason>
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"

	"malt/internal/lint"
)

func main() {
	only := flag.String("only", "", "comma-separated analyzer names to run (default: all)")
	list := flag.Bool("list", false, "list analyzers and exit")
	flag.Usage = func() {
		fmt.Fprintf(os.Stderr, "usage: maltlint [-only a,b] [-list] [packages]\n")
		flag.PrintDefaults()
	}
	flag.Parse()

	analyzers := lint.All()
	if *list {
		for _, a := range analyzers {
			fmt.Printf("%-14s %s\n", a.Name, a.Doc)
		}
		return
	}
	if *only != "" {
		byName := map[string]*lint.Analyzer{}
		for _, a := range analyzers {
			byName[a.Name] = a
		}
		analyzers = analyzers[:0]
		for _, name := range strings.Split(*only, ",") {
			a, ok := byName[strings.TrimSpace(name)]
			if !ok {
				fatalf("unknown analyzer %q (use -list)", name)
			}
			analyzers = append(analyzers, a)
		}
	}

	patterns := flag.Args()
	if len(patterns) == 0 {
		patterns = []string{"./..."}
	}
	loader, err := lint.NewLoader(".", patterns...)
	if err != nil {
		fatalf("%v", err)
	}
	targets, err := loader.Targets(patterns...)
	if err != nil {
		fatalf("%v", err)
	}

	found := 0
	for _, path := range targets {
		pkg, err := loader.LoadPackage(path)
		if err != nil {
			fatalf("%v", err)
		}
		diags, err := lint.Run(pkg, analyzers)
		if err != nil {
			fatalf("%v", err)
		}
		for _, d := range diags {
			fmt.Println(d)
			found++
		}
	}
	if found > 0 {
		fmt.Fprintf(os.Stderr, "maltlint: %d violation(s)\n", found)
		os.Exit(1)
	}
}

func fatalf(format string, args ...any) {
	fmt.Fprintf(os.Stderr, "maltlint: "+format+"\n", args...)
	os.Exit(2)
}
