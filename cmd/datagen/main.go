// datagen emits the synthetic workloads in libsvm format so they can be
// inspected, fed back through -data flags, or used by external tools.
//
//	datagen -workload webspam -scale 1 -out webspam.libsvm
//	datagen -workload rcv1 -split test -out rcv1.test.libsvm
package main

import (
	"flag"
	"fmt"
	"log"
	"os"

	"malt/internal/data"
)

func main() {
	var (
		workload = flag.String("workload", "rcv1", "shape: rcv1|alpha|dna|webspam|splice")
		scale    = flag.Int("scale", 1, "dataset scale multiplier")
		split    = flag.String("split", "train", "which split to write: train|test")
		out      = flag.String("out", "", "output file (stdout when empty)")
	)
	flag.Parse()

	ds, err := data.Shape(*workload).Generate(*scale)
	if err != nil {
		log.Fatal(err)
	}
	examples := ds.Train
	if *split == "test" {
		examples = ds.Test
	} else if *split != "train" {
		log.Fatalf("unknown -split %q", *split)
	}

	w := os.Stdout
	if *out != "" {
		f, err := os.Create(*out)
		if err != nil {
			log.Fatal(err)
		}
		defer func() {
			if err := f.Close(); err != nil {
				log.Fatal(err)
			}
		}()
		w = f
	}
	if err := data.WriteLibSVM(w, examples); err != nil {
		log.Fatal(err)
	}
	st := ds.Stats()
	fmt.Fprintf(os.Stderr, "wrote %d %s examples (%d features, avg nnz %.1f)\n",
		len(examples), *split, st.Dim, st.AvgNNZ)
}
