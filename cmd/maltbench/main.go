// maltbench reproduces the tables and figures of the MALT paper's
// evaluation (§6) over the simulated substrate.
//
//	maltbench -exp fig4          # one experiment
//	maltbench -exp all -quick    # every experiment, CI-sized
//	maltbench -exp fig11 -curves # also dump the convergence curves
//	maltbench -list              # list experiment IDs
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"

	"malt/internal/bench"
)

func main() {
	var (
		exp    = flag.String("exp", "all", "experiment ID (see -list) or 'all'")
		scale  = flag.Int("scale", 1, "dataset scale multiplier")
		quick  = flag.Bool("quick", false, "shrink runs to smoke-test size")
		curves = flag.Bool("curves", false, "print convergence curves after each report")
		verb   = flag.Bool("v", false, "log progress while experiments run")
		list   = flag.Bool("list", false, "list experiment IDs and exit")
	)
	flag.Parse()

	if *list {
		for _, e := range bench.All() {
			fmt.Printf("%-12s %s\n", e.ID, e.Title)
		}
		return
	}

	opts := bench.Options{Scale: *scale, Quick: *quick}
	if *verb {
		opts.Log = os.Stderr
	}

	var ids []string
	if *exp == "all" {
		ids = bench.IDs()
	} else {
		ids = strings.Split(*exp, ",")
	}
	failed := 0
	for _, id := range ids {
		e, err := bench.Get(strings.TrimSpace(id))
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(2)
		}
		report, err := e.Run(opts)
		if err != nil {
			fmt.Fprintf(os.Stderr, "experiment %s failed: %v\n", e.ID, err)
			failed++
			continue
		}
		report.Print(os.Stdout)
		if *curves {
			report.PrintSeries(os.Stdout)
		}
	}
	if failed > 0 {
		os.Exit(1)
	}
}
