// maltbench reproduces the tables and figures of the MALT paper's
// evaluation (§6) over the simulated substrate.
//
//	maltbench -exp fig4          # one experiment
//	maltbench -exp all -quick    # every experiment, CI-sized
//	maltbench -exp fig11 -curves # also dump the convergence curves
//	maltbench -list              # list experiment IDs
//
// CI regression gate:
//
//	maltbench -exp pipeline -json -out bench.json   # machine-readable run
//	maltbench -exp pipeline -check BENCH_BASELINE.json
//
// -check compares the run against a baseline file (15% tolerance on
// modeled latencies and speedups, zero tolerance on correctness counters;
// see bench.Compare) and exits 1 on any regression.
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"

	"malt/internal/bench"
)

func main() {
	var (
		exp      = flag.String("exp", "all", "experiment ID (see -list) or 'all'")
		scale    = flag.Int("scale", 1, "dataset scale multiplier")
		quick    = flag.Bool("quick", false, "shrink runs to smoke-test size")
		curves   = flag.Bool("curves", false, "print convergence curves after each report")
		verb     = flag.Bool("v", false, "log progress while experiments run")
		list     = flag.Bool("list", false, "list experiment IDs and exit")
		jsonOut  = flag.Bool("json", false, "print the run as JSON instead of the text reports")
		outFile  = flag.String("out", "", "also write the run JSON to this file")
		checkArg = flag.String("check", "", "compare the run against this baseline JSON; exit 1 on regression")
	)
	flag.Parse()

	if *list {
		for _, e := range bench.All() {
			fmt.Printf("%-12s %s\n", e.ID, e.Title)
		}
		return
	}

	opts := bench.Options{Scale: *scale, Quick: *quick}
	if *verb {
		opts.Log = os.Stderr
	}

	var ids []string
	if *exp == "all" {
		ids = bench.IDs()
	} else {
		ids = strings.Split(*exp, ",")
	}
	var reports []*bench.Report
	failed := 0
	for _, id := range ids {
		e, err := bench.Get(strings.TrimSpace(id))
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(2)
		}
		report, err := e.Run(opts)
		if err != nil {
			fmt.Fprintf(os.Stderr, "experiment %s failed: %v\n", e.ID, err)
			failed++
			continue
		}
		reports = append(reports, report)
		if !*jsonOut {
			report.Print(os.Stdout)
			if *curves {
				report.PrintSeries(os.Stdout)
			}
		}
	}

	run := bench.ToJSON(reports)
	if *jsonOut {
		if err := run.WriteJSON(os.Stdout); err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(2)
		}
	}
	if *outFile != "" {
		f, err := os.Create(*outFile)
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(2)
		}
		if err := run.WriteJSON(f); err == nil {
			err = f.Close()
		} else {
			f.Close()
		}
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(2)
		}
	}
	if *checkArg != "" {
		f, err := os.Open(*checkArg)
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(2)
		}
		baseline, err := bench.ReadBenchJSON(f)
		f.Close()
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(2)
		}
		if violations := bench.Compare(baseline, run, 0.15); len(violations) > 0 {
			fmt.Fprintf(os.Stderr, "bench regression gate: %d violation(s) vs %s:\n", len(violations), *checkArg)
			for _, v := range violations {
				fmt.Fprintf(os.Stderr, "  %s\n", v)
			}
			os.Exit(1)
		}
		fmt.Fprintf(os.Stderr, "bench regression gate: ok vs %s\n", *checkArg)
	}
	if failed > 0 {
		os.Exit(1)
	}
}
