// Package paramserver implements the master–client parameter-server
// baseline that the paper compares MALT against (Figs 9 and 13; the
// OSDI'14 parameter-server architecture).
//
// Rank 0 is the server; ranks 1..Workers are clients. Every round a client
// computes an update (a gradient, or its whole local model in model-
// averaging mode), pushes it to the server over the same one-sided fabric
// MALT uses, and then *waits* for a fresher global model to come back
// before its next round — that wait is the architectural cost the paper
// measures: MALT peers never wait on a central hop. The server folds
// incoming updates into the global model and broadcasts it to all clients.
//
// Traffic shape matches the paper's argument: clients may send compact
// (sparse) gradients, but they always receive the whole dense model, so
// the download dominates for high-dimensional workloads.
package paramserver

import (
	"errors"
	"fmt"
	"time"

	"malt/internal/core"
	"malt/internal/dataflow"
	"malt/internal/fabric"
	"malt/internal/ml/linalg"
	"malt/internal/trace"
	"malt/internal/vol"
)

// ComputeFn produces a client's update for one round. rank is the client's
// rank (1-based; rank 0 is the server), round counts from 0. model is the
// client's current copy of the global model (read-only); the update —
// gradient or local model depending on Config.SendModel — must be written
// into out.
type ComputeFn func(rank, round int, model []float64, out []float64)

// Config describes a parameter-server training job.
type Config struct {
	// Workers is the number of clients; the cluster has Workers+1 ranks.
	Workers int
	// Dim is the model dimensionality.
	Dim int
	// Rounds is the number of update rounds each client performs.
	Rounds int
	// Sync makes the server wait for one update from every live client
	// before folding and broadcasting (synchronous PS). Otherwise the
	// server folds updates as they arrive (asynchronous PS).
	Sync bool
	// SendModel makes clients push their whole local model, folded by
	// averaging ("PS-model-avg" in Fig 9). Otherwise clients push
	// gradients, applied with Eta ("PS-grad-avg").
	SendModel bool
	// GradSparse uses the sparse wire format for client→server pushes,
	// matching MALT's sparse gradient scatters.
	GradSparse bool
	// Eta is the server's application rate for gradient pushes. Default 0.1.
	Eta float64
	// QueueLen is the receive-queue depth. Default 8 (the server fans in
	// from many clients).
	QueueLen int
	// Fabric tunes the simulated interconnect.
	Fabric fabric.Config
}

func (c Config) withDefaults() (Config, error) {
	if c.Workers <= 0 {
		return c, fmt.Errorf("paramserver: Workers must be positive, got %d", c.Workers)
	}
	if c.Dim <= 0 {
		return c, fmt.Errorf("paramserver: Dim must be positive, got %d", c.Dim)
	}
	if c.Rounds <= 0 {
		return c, fmt.Errorf("paramserver: Rounds must be positive, got %d", c.Rounds)
	}
	if c.Eta == 0 {
		c.Eta = 0.1
	}
	if c.QueueLen == 0 {
		c.QueueLen = 8
	}
	return c, nil
}

// Result reports a parameter-server run.
type Result struct {
	// FinalModel is the server's model after all rounds.
	FinalModel []float64
	// WorkerTimers holds per-client phase breakdowns (compute vs wait),
	// indexed by client rank minus 1.
	WorkerTimers []*trace.Timer
	// ServerTimer is the server's phase breakdown.
	ServerTimer *trace.Timer
	// Stats is the fabric traffic accounting.
	Stats *fabric.Stats
	// Elapsed is the wall-clock duration.
	Elapsed time.Duration
}

// Train runs the job. The returned error reflects infrastructure failures;
// per-rank training errors surface through it as well.
func Train(cfg Config, compute ComputeFn) (*Result, error) {
	cfg, err := cfg.withDefaults()
	if err != nil {
		return nil, err
	}
	if compute == nil {
		return nil, errors.New("paramserver: compute function is required")
	}
	ranks := cfg.Workers + 1
	graph, err := dataflow.New(dataflow.MasterSlave, ranks)
	if err != nil {
		return nil, err
	}
	cluster, err := core.NewCluster(core.Config{
		Ranks:    ranks,
		Graph:    graph,
		QueueLen: cfg.QueueLen,
		Fabric:   cfg.Fabric,
	})
	if err != nil {
		return nil, err
	}
	return train(cluster, cfg, compute)
}

// train runs the job on an existing cluster (exposed separately so tests
// can inject failures through the cluster's fabric). Errors from ranks
// that died during the run are expected and tolerated.
func train(cluster *core.Cluster, cfg Config, compute ComputeFn) (*Result, error) {
	final := make([]float64, cfg.Dim)
	res := cluster.Run(func(ctx *core.Context) error {
		if ctx.Rank() == 0 {
			return runServer(cfg, ctx, final)
		}
		return runClient(cfg, ctx, compute)
	})
	if errs := res.LiveErrors(cluster.Fabric().Alive); len(errs) > 0 {
		return nil, errs[0]
	}

	out := &Result{
		FinalModel:   final,
		WorkerTimers: make([]*trace.Timer, cfg.Workers),
		ServerTimer:  res.PerRank[0].Timer,
		Stats:        cluster.Fabric().Stats(),
		Elapsed:      res.Elapsed,
	}
	for w := 0; w < cfg.Workers; w++ {
		out.WorkerTimers[w] = res.PerRank[w+1].Timer
	}
	return out, nil
}

// gradType returns the wire format of client→server pushes.
func (c Config) gradType() vol.Type {
	if c.GradSparse && !c.SendModel {
		return vol.Sparse
	}
	return vol.Dense
}

func runServer(cfg Config, ctx *core.Context, final []float64) error {
	up, err := ctx.CreateVectorOpts("ps/up", cfg.gradType(), cfg.Dim,
		vol.Options{QueueLen: cfg.QueueLen})
	if err != nil {
		return err
	}
	down, err := ctx.CreateVector("ps/down", vol.Dense, cfg.Dim)
	if err != nil {
		return err
	}
	model := down.Data() // the global model lives in the broadcast vector

	// A background watchdog detects clients that die while the server is
	// idle (it otherwise only learns of deaths through failed broadcasts),
	// so a sync round missing a dead client's update still completes with
	// the survivors instead of hanging.
	stopWatch := ctx.WatchFaults(2 * time.Millisecond)
	defer stopWatch()

	received := make([]int, cfg.Workers+1) // updates folded per client
	version := uint64(0)
	pendingRound := make([][]float64, 0, cfg.Workers)

	for {
		// Fold whatever has arrived; the UDF sees each client's update.
		// The captured bookkeeping below is safe without locks: Gather runs
		// the UDF synchronously on this server goroutine, and nothing else
		// reads or writes received/arrived/pendingRound.
		arrived := false
		_, err := up.Gather(func(f vol.Fold) {
			for _, u := range f.Updates {
				received[u.From]++ //maltlint:allow foldpurity -- server loop is the sole goroutine touching this
				arrived = true     //maltlint:allow foldpurity -- server loop is the sole goroutine touching this
				if cfg.Sync {
					cp := make([]float64, len(u.Data))
					copy(cp, u.Data)
					pendingRound = append(pendingRound, cp) //maltlint:allow foldpurity -- server loop is the sole goroutine touching this
				} else {
					applyUpdate(cfg, model, [][]float64{u.Data})
				}
			}
		})
		if err != nil {
			return err
		}
		// A broadcast releases waiting clients, so under Sync it must only
		// happen after a full round has been folded.
		progressed := arrived && !cfg.Sync
		if cfg.Sync && len(pendingRound) >= liveClients(ctx, cfg.Workers) && len(pendingRound) > 0 {
			applyUpdate(cfg, model, pendingRound)
			pendingRound = pendingRound[:0]
			progressed = true
		}
		if progressed {
			version++
			ctx.SetIteration(version)
			if err := ctx.Scatter(down); err != nil {
				return err
			}
		}
		// Done when every *live* client has delivered all its rounds
		// (dead clients owe nothing).
		pending := false
		for w := 1; w <= cfg.Workers; w++ {
			if ctx.Alive(w) && received[w] < cfg.Rounds {
				pending = true
				break
			}
		}
		if !pending {
			break
		}
		if !progressed {
			// One-sided memory has no notification primitive: a parameter
			// server discovers new gradients only by polling its own queues.
			time.Sleep(20 * time.Microsecond) //maltlint:allow rawsleep -- idle poll of one-sided receive queues; no retry policy applies
		}
	}
	copy(final, model)
	// Final broadcast so clients observe the terminal model.
	version++
	ctx.SetIteration(version)
	return ctx.Scatter(down)
}

func liveClients(ctx *core.Context, workers int) int {
	n := 0
	for w := 1; w <= workers; w++ {
		if ctx.Alive(w) {
			n++
		}
	}
	return n
}

func applyUpdate(cfg Config, model []float64, updates [][]float64) {
	if len(updates) == 0 {
		return
	}
	if cfg.SendModel {
		// Model averaging: global ← mean(incoming models).
		linalg.AverageInto(model, updates...)
		return
	}
	// Gradient descent: average the batch, apply with Eta.
	scale := cfg.Eta / float64(len(updates))
	for _, g := range updates {
		linalg.Axpy(-scale, g, model)
	}
}

func runClient(cfg Config, ctx *core.Context, compute ComputeFn) error {
	up, err := ctx.CreateVectorOpts("ps/up", cfg.gradType(), cfg.Dim,
		vol.Options{QueueLen: cfg.QueueLen})
	if err != nil {
		return err
	}
	down, err := ctx.CreateVector("ps/down", vol.Dense, cfg.Dim)
	if err != nil {
		return err
	}
	model := make([]float64, cfg.Dim)
	var lastSeen uint64

	for round := 0; round < cfg.Rounds; round++ {
		ctx.Compute(func() { compute(ctx.Rank(), round, model, up.Data()) })
		ctx.SetIteration(uint64(round + 1))
		if err := ctx.Scatter(up); err != nil {
			return err
		}
		// Wait for a model fresher than the last one we saw — the
		// parameter-server wait the paper measures in Fig 9.
		start := time.Now()
		for {
			stats, err := down.GatherLatest(vol.Replace)
			if err != nil {
				return err
			}
			if stats.Updates > 0 && stats.MaxIter > lastSeen {
				lastSeen = stats.MaxIter
				copy(model, down.Data())
				break
			}
			if !ctx.Alive(0) {
				return errors.New("paramserver: server died")
			}
			// Clients poll their broadcast queue for the next model version;
			// the one-sided fabric delivers without notifying.
			time.Sleep(10 * time.Microsecond) //maltlint:allow rawsleep -- poll for one-sided model broadcast; no retry policy applies
		}
		ctx.Timer().Add(trace.Wait, time.Since(start))
	}
	return nil
}
