package paramserver

import (
	"testing"

	"malt/internal/core"
	"malt/internal/data"
	"malt/internal/dataflow"
	"malt/internal/ml/svm"
	"malt/internal/trace"
)

func TestConfigValidation(t *testing.T) {
	bad := []Config{
		{Workers: 0, Dim: 4, Rounds: 1},
		{Workers: 1, Dim: 0, Rounds: 1},
		{Workers: 1, Dim: 4, Rounds: 0},
	}
	for i, cfg := range bad {
		if _, err := Train(cfg, func(int, int, []float64, []float64) {}); err == nil {
			t.Fatalf("config %d should fail", i)
		}
	}
	if _, err := Train(Config{Workers: 1, Dim: 4, Rounds: 1}, nil); err == nil {
		t.Fatal("nil compute should fail")
	}
}

func TestAsyncGradientDescentConverges(t *testing.T) {
	// Quadratic toy objective: minimize ‖model − target‖²; gradient is
	// 2(model − target). The PS must drive the model to the target.
	target := []float64{1, -2, 3, 0.5}
	cfg := Config{Workers: 3, Dim: 4, Rounds: 60, Eta: 0.2}
	res, err := Train(cfg, func(rank, round int, model, out []float64) {
		for i := range out {
			out[i] = 2 * (model[i] - target[i])
		}
	})
	if err != nil {
		t.Fatal(err)
	}
	for i, v := range res.FinalModel {
		if d := v - target[i]; d > 0.05 || d < -0.05 {
			t.Fatalf("model[%d] = %v, want %v", i, v, target[i])
		}
	}
	// Clients accumulated wait time — the defining PS cost.
	for w, tm := range res.WorkerTimers {
		if tm.Get(trace.Wait) == 0 {
			t.Fatalf("worker %d recorded no wait time", w)
		}
		if tm.Get(trace.Compute) == 0 {
			t.Fatalf("worker %d recorded no compute time", w)
		}
	}
	if res.Stats.TotalBytes() == 0 {
		t.Fatal("no traffic recorded")
	}
}

func TestSyncRoundsProduceDeterministicModel(t *testing.T) {
	target := []float64{2, 2}
	run := func() []float64 {
		res, err := Train(Config{Workers: 2, Dim: 2, Rounds: 30, Eta: 0.3, Sync: true},
			func(rank, round int, model, out []float64) {
				for i := range out {
					out[i] = 2 * (model[i] - target[i])
				}
			})
		if err != nil {
			t.Fatal(err)
		}
		return res.FinalModel
	}
	a, b := run(), run()
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("sync PS not deterministic: %v vs %v", a, b)
		}
	}
	if d := a[0] - 2; d > 0.05 || d < -0.05 {
		t.Fatalf("sync PS did not converge: %v", a)
	}
}

func TestModelAveragingMode(t *testing.T) {
	// Each worker pushes a constant local model; the server must hold the
	// average of the pushes.
	res, err := Train(Config{Workers: 4, Dim: 2, Rounds: 5, SendModel: true, Sync: true},
		func(rank, round int, model, out []float64) {
			out[0] = float64(rank) // workers are ranks 1..4
			out[1] = 10
		})
	if err != nil {
		t.Fatal(err)
	}
	if d := res.FinalModel[0] - 2.5; d > 1e-9 || d < -1e-9 { // mean(1,2,3,4)
		t.Fatalf("model avg = %v, want 2.5", res.FinalModel[0])
	}
	if res.FinalModel[1] != 10 {
		t.Fatalf("model[1] = %v", res.FinalModel[1])
	}
}

func TestSparseUploadsReduceTraffic(t *testing.T) {
	// With sparse gradient uploads, the client→server bytes must be far
	// below the dense server→client model broadcasts.
	const dim = 5000
	cfg := Config{Workers: 2, Dim: dim, Rounds: 10, GradSparse: true}
	res, err := Train(cfg, func(rank, round int, model, out []float64) {
		for i := range out {
			out[i] = 0
		}
		out[rank] = 1 // one non-zero per gradient
	})
	if err != nil {
		t.Fatal(err)
	}
	up := res.Stats.LinkBytes(1, 0) + res.Stats.LinkBytes(2, 0)
	down := res.Stats.LinkBytes(0, 1) + res.Stats.LinkBytes(0, 2)
	if up*10 > down {
		t.Fatalf("sparse uploads not compact: up=%d down=%d", up, down)
	}
}

func TestPSTrainsRealSVM(t *testing.T) {
	// Integration: parameter-server SVM on a synthetic workload reaches
	// reasonable accuracy.
	ds, err := data.GenerateClassification(data.ClassificationSpec{
		Name: "t", Dim: 50, Train: 2000, Test: 400, NNZ: 8, Noise: 0.05, Seed: 13,
	})
	if err != nil {
		t.Fatal(err)
	}
	const workers, rounds, cb = 2, 40, 50
	trainers := make([]*svm.Trainer, workers+1)
	for w := 1; w <= workers; w++ {
		trainers[w], _ = svm.New(svm.Config{Dim: ds.Dim, Lambda: 1e-5})
	}
	res, err := Train(Config{Workers: workers, Dim: ds.Dim, Rounds: rounds, Eta: 1, Sync: true},
		func(rank, round int, model, out []float64) {
			lo, _ := data.Shard(len(ds.Train), rank-1, workers)
			at := (lo + round*cb) % (len(ds.Train) - cb)
			trainers[rank].BatchGradient(out, model, ds.Train[at:at+cb])
		})
	if err != nil {
		t.Fatal(err)
	}
	tr, _ := svm.New(svm.Config{Dim: ds.Dim})
	if acc := tr.Accuracy(res.FinalModel, ds.Test); acc < 0.75 {
		t.Fatalf("PS-SVM accuracy %v too low", acc)
	}
}

func TestSyncSurvivesClientDeath(t *testing.T) {
	// A client dies mid-job: the sync server must finish the remaining
	// rounds with the survivors instead of waiting forever for the dead
	// client's contribution. We inject the death from the compute callback
	// of the doomed client's 5th round.
	target := []float64{1, 1}
	cfg, err := (Config{Workers: 3, Dim: 2, Rounds: 30, Eta: 0.2, Sync: true}).withDefaults()
	if err != nil {
		t.Fatal(err)
	}
	graph, err := dataflow.New(dataflow.MasterSlave, cfg.Workers+1)
	if err != nil {
		t.Fatal(err)
	}
	cluster, err := core.NewCluster(core.Config{
		Ranks: cfg.Workers + 1, Graph: graph, QueueLen: cfg.QueueLen,
	})
	if err != nil {
		t.Fatal(err)
	}
	res, err := train(cluster, cfg, func(rank, round int, model, out []float64) {
		if rank == 3 && round == 5 {
			_ = cluster.Fabric().Kill(3)
			panic("client 3 crashed") // trapped by the rank's fault monitor
		}
		for i := range out {
			out[i] = 2 * (model[i] - target[i])
		}
	})
	if err != nil {
		t.Fatal(err)
	}
	for i, v := range res.FinalModel {
		if d := v - target[i]; d > 0.1 || d < -0.1 {
			t.Fatalf("model[%d] = %v, want ≈%v despite client death", i, v, target[i])
		}
	}
}
