// Package allreduce implements the classic all-reduce strategies the paper
// discusses in §3.4 as alternatives to MALT's dataflows: naive all-to-all
// (what MALTall does in one round), tree reduce-broadcast (as in the
// AllReduce of Agarwal et al.'s terascale learner), and butterfly mixing
// (Canny & Zhao). They are built on the same dstorm segments so their
// traffic and latency are directly comparable in the ablation benches.
//
// Each strategy computes, at every rank, the element-wise average of all
// ranks' input vectors. Tree and butterfly trade fewer messages for more
// rounds — exactly the latency-vs-bandwidth trade-off the paper cites for
// preferring Halton dissemination.
package allreduce

import (
	"fmt"
	"math/bits"
	"runtime"

	"malt/internal/dataflow"
	"malt/internal/dstorm"
	"malt/internal/ml/linalg"
	"malt/internal/vol"
)

// Strategy names an all-reduce algorithm.
type Strategy int

const (
	// Naive: every rank sends to every rank, one round, N(N−1) messages.
	Naive Strategy = iota
	// Tree: reduce up a binary tree to rank 0, broadcast back down.
	// 2(N−1) messages over 2·⌈log₂N⌉ rounds.
	Tree
	// Butterfly: recursive pairwise exchange; N·log₂N messages over
	// ⌈log₂N⌉ rounds, no root. Requires a power-of-two rank count.
	Butterfly
)

// String returns the strategy name.
func (s Strategy) String() string {
	switch s {
	case Naive:
		return "naive"
	case Tree:
		return "tree"
	case Butterfly:
		return "butterfly"
	default:
		return fmt.Sprintf("Strategy(%d)", int(s))
	}
}

// Reducer performs repeated all-reduce-average operations over one
// cluster. Create one per rank with New (a collective call).
type Reducer struct {
	strategy Strategy
	node     *dstorm.Node
	n        int
	vec      *vol.Vector
	round    uint64
}

// New collectively creates a reducer for the given strategy and vector
// dimension. Every rank must call New with identical arguments. The
// butterfly strategy requires n to be a power of two.
func New(node *dstorm.Node, strategy Strategy, dim int) (*Reducer, error) {
	n := node.Cluster().Fabric().Ranks()
	if strategy == Butterfly && bits.OnesCount(uint(n)) != 1 {
		return nil, fmt.Errorf("allreduce: butterfly needs a power-of-two rank count, got %d", n)
	}
	// All strategies communicate over a complete graph; per-call targeting
	// picks the edges each round actually uses.
	graph, err := dataflow.New(dataflow.All, n)
	if err != nil {
		return nil, err
	}
	// Deep queues: tree/butterfly rounds overlap between fast and slow
	// ranks, and barriers between rounds keep the depth bounded.
	vec, err := vol.Create(node, fmt.Sprintf("allreduce/%s", strategy), vol.Dense, dim,
		graph, vol.Options{QueueLen: 8})
	if err != nil {
		return nil, err
	}
	return &Reducer{strategy: strategy, node: node, n: n, vec: vec}, nil
}

// Reduce overwrites x with the element-wise average of every rank's x.
// All live ranks must call Reduce the same number of times. The reduction
// is synchronous (internally barriered).
func (r *Reducer) Reduce(x []float64) error {
	if len(x) != r.vec.Dim() {
		return fmt.Errorf("allreduce: input length %d != dim %d", len(x), r.vec.Dim())
	}
	if r.n == 1 {
		return nil
	}
	r.round++
	copy(r.vec.Data(), x)
	var err error
	switch r.strategy {
	case Naive:
		err = r.naive()
	case Tree:
		err = r.tree()
	case Butterfly:
		err = r.butterfly()
	default:
		err = fmt.Errorf("allreduce: unknown strategy %v", r.strategy)
	}
	if err != nil {
		return err
	}
	copy(x, r.vec.Data())
	return nil
}

func (r *Reducer) naive() error {
	if _, err := r.vec.Scatter(r.round); err != nil {
		return err
	}
	if err := r.vec.Barrier(); err != nil {
		return err
	}
	if _, err := r.vec.Gather(vol.Average); err != nil {
		return err
	}
	return r.vec.Barrier()
}

// tree reduces sums up a binary tree rooted at 0, then broadcasts the
// average back down. Rank i's parent is (i−1)/2; children are 2i+1, 2i+2.
func (r *Reducer) tree() error {
	rank := r.node.Rank()
	left, right := 2*rank+1, 2*rank+2
	// Phase 1 (up): accumulate children's partial sums, then forward to
	// the parent. Leaves forward immediately.
	expect := 0
	if left < r.n {
		expect++
	}
	if right < r.n {
		expect++
	}
	for got := 0; got < expect; {
		stats, err := r.vec.Gather(vol.Sum)
		if err != nil {
			return err
		}
		got += stats.Updates
		if stats.Updates == 0 {
			runtime.Gosched()
		}
	}
	if rank != 0 {
		parent := (rank - 1) / 2
		if _, err := r.vec.ScatterTo([]int{parent}, r.round); err != nil {
			return err
		}
		// Phase 2 (down): wait for the final average from the parent.
		for {
			stats, err := r.vec.GatherLatest(vol.Replace)
			if err != nil {
				return err
			}
			if stats.Updates > 0 {
				break
			}
			runtime.Gosched()
		}
	} else {
		linalg.Scale(1/float64(r.n), r.vec.Data())
	}
	// Broadcast downward.
	var kids []int
	if left < r.n {
		kids = append(kids, left)
	}
	if right < r.n {
		kids = append(kids, right)
	}
	if len(kids) > 0 {
		if _, err := r.vec.ScatterTo(kids, r.round); err != nil {
			return err
		}
	}
	return r.vec.Barrier()
}

// butterfly performs log₂(n) rounds of pairwise exchange-and-average with
// the partner at distance 2^k.
func (r *Reducer) butterfly() error {
	rank := r.node.Rank()
	for dist := 1; dist < r.n; dist *= 2 {
		partner := rank ^ dist
		if _, err := r.vec.ScatterTo([]int{partner}, r.round); err != nil {
			return err
		}
		for {
			stats, err := r.vec.Gather(func(f vol.Fold) {
				// Average with the partner's contribution only.
				for _, u := range f.Updates {
					if u.From == partner {
						for i := range f.Local {
							f.Local[i] = (f.Local[i] + u.Data[i]) / 2
						}
					}
				}
			})
			if err != nil {
				return err
			}
			if stats.Updates > 0 {
				break
			}
			runtime.Gosched()
		}
		// Round barrier keeps exchanges aligned across ranks.
		if err := r.vec.Barrier(); err != nil {
			return err
		}
	}
	return nil
}

// Close releases the reducer's segment.
func (r *Reducer) Close() error { return r.vec.Close() }
