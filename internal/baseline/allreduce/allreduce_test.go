package allreduce

import (
	"math"
	"sync"
	"testing"

	"malt/internal/dstorm"
	"malt/internal/fabric"
)

// runReduce creates one reducer per rank, feeds each rank the vector
// inputs[rank], performs `rounds` reductions and returns the final values.
func runReduce(t *testing.T, strategy Strategy, inputs [][]float64, rounds int) [][]float64 {
	t.Helper()
	n := len(inputs)
	f, err := fabric.New(fabric.Config{Ranks: n})
	if err != nil {
		t.Fatal(err)
	}
	c := dstorm.NewCluster(f)
	dim := len(inputs[0])
	out := make([][]float64, n)
	errs := make([]error, n)
	var wg sync.WaitGroup
	for r := 0; r < n; r++ {
		wg.Add(1)
		go func(r int) {
			defer wg.Done()
			red, err := New(c.Node(r), strategy, dim)
			if err != nil {
				errs[r] = err
				return
			}
			x := append([]float64(nil), inputs[r]...)
			for i := 0; i < rounds; i++ {
				if err := red.Reduce(x); err != nil {
					errs[r] = err
					return
				}
			}
			out[r] = x
		}(r)
	}
	wg.Wait()
	for r, err := range errs {
		if err != nil {
			t.Fatalf("rank %d: %v", r, err)
		}
	}
	return out
}

func expectAverage(t *testing.T, inputs, outputs [][]float64) {
	t.Helper()
	dim := len(inputs[0])
	want := make([]float64, dim)
	for _, in := range inputs {
		for i, v := range in {
			want[i] += v / float64(len(inputs))
		}
	}
	for r, out := range outputs {
		for i := range want {
			if math.Abs(out[i]-want[i]) > 1e-9 {
				t.Fatalf("rank %d out[%d] = %v, want %v (strategy output %v)", r, i, out[i], want[i], out)
			}
		}
	}
}

func inputsFor(n, dim int) [][]float64 {
	in := make([][]float64, n)
	for r := range in {
		in[r] = make([]float64, dim)
		for i := range in[r] {
			in[r][i] = float64(r*dim+i) - 3.5
		}
	}
	return in
}

func TestNaiveAverages(t *testing.T) {
	in := inputsFor(5, 4)
	out := runReduce(t, Naive, in, 1)
	expectAverage(t, in, out)
}

func TestTreeAverages(t *testing.T) {
	for _, n := range []int{2, 3, 5, 8} {
		in := inputsFor(n, 3)
		out := runReduce(t, Tree, in, 1)
		expectAverage(t, in, out)
	}
}

func TestButterflyAverages(t *testing.T) {
	for _, n := range []int{2, 4, 8} {
		in := inputsFor(n, 3)
		out := runReduce(t, Butterfly, in, 1)
		expectAverage(t, in, out)
	}
}

func TestButterflyRejectsNonPowerOfTwo(t *testing.T) {
	f, _ := fabric.New(fabric.Config{Ranks: 3})
	c := dstorm.NewCluster(f)
	if _, err := New(c.Node(0), Butterfly, 4); err == nil {
		t.Fatal("butterfly with 3 ranks should fail")
	}
}

func TestRepeatedReductions(t *testing.T) {
	// Averaging is idempotent once all ranks agree: a second reduction
	// must not change the value.
	in := inputsFor(4, 2)
	once := runReduce(t, Tree, in, 1)
	twice := runReduce(t, Tree, in, 2)
	for r := range once {
		for i := range once[r] {
			if math.Abs(once[r][i]-twice[r][i]) > 1e-9 {
				t.Fatalf("second reduction changed the value: %v vs %v", once[r], twice[r])
			}
		}
	}
}

func TestMessageCounts(t *testing.T) {
	// Naive: N(N−1) messages. Tree: 2(N−1). Butterfly: N·log₂N.
	const n, dim = 8, 4
	counts := map[Strategy]uint64{}
	for _, s := range []Strategy{Naive, Tree, Butterfly} {
		f, err := fabric.New(fabric.Config{Ranks: n})
		if err != nil {
			t.Fatal(err)
		}
		c := dstorm.NewCluster(f)
		var wg sync.WaitGroup
		for r := 0; r < n; r++ {
			wg.Add(1)
			go func(r int) {
				defer wg.Done()
				red, err := New(c.Node(r), s, dim)
				if err != nil {
					t.Errorf("rank %d: %v", r, err)
					return
				}
				x := make([]float64, dim)
				if err := red.Reduce(x); err != nil {
					t.Errorf("rank %d: %v", r, err)
				}
			}(r)
		}
		wg.Wait()
		counts[s] = f.Stats().TotalMessages()
	}
	if counts[Naive] != n*(n-1) {
		t.Fatalf("naive messages = %d, want %d", counts[Naive], n*(n-1))
	}
	if counts[Tree] != 2*(n-1) {
		t.Fatalf("tree messages = %d, want %d", counts[Tree], 2*(n-1))
	}
	if counts[Butterfly] != n*3 { // log2(8) = 3
		t.Fatalf("butterfly messages = %d, want %d", counts[Butterfly], n*3)
	}
	if counts[Tree] >= counts[Naive] || counts[Butterfly] >= counts[Naive] {
		t.Fatal("tree/butterfly should send fewer messages than naive")
	}
}

func TestReduceValidation(t *testing.T) {
	f, _ := fabric.New(fabric.Config{Ranks: 1})
	c := dstorm.NewCluster(f)
	red, err := New(c.Node(0), Naive, 4)
	if err != nil {
		t.Fatal(err)
	}
	if err := red.Reduce(make([]float64, 3)); err == nil {
		t.Fatal("wrong length should fail")
	}
	// Single rank: reduce is the identity.
	x := []float64{1, 2, 3, 4}
	if err := red.Reduce(x); err != nil {
		t.Fatal(err)
	}
	if x[0] != 1 || x[3] != 4 {
		t.Fatalf("single-rank reduce changed x: %v", x)
	}
}
