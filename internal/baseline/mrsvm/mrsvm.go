// Package mrsvm implements the MR-SVM baseline of the paper's Fig 5: the
// Hadoop/map-reduce style of distributed SVM training (Zinkevich et al.,
// "Parallelized Stochastic Gradient Descent"), where replicas train
// *independently* over their shard for a whole partition-epoch and average
// their models once at the end of it — one-shot parameter mixing with a
// very large communication batch.
//
// The paper implements MR-SVM over the MALT library to show that an
// algorithm designed for a high-latency substrate (communicate rarely,
// huge cb) is not optimal on a low-latency one; this package does exactly
// the same: it is a thin loop over the same core runtime MALT uses, with
// cb equal to the entire shard.
package mrsvm

import (
	"fmt"
	"time"

	"malt/internal/core"
	"malt/internal/data"
	"malt/internal/fabric"
	"malt/internal/ml/svm"
	"malt/internal/trace"
	"malt/internal/vol"
)

// Config describes an MR-SVM job.
type Config struct {
	// Ranks is the number of replicas.
	Ranks int
	// Epochs is the number of partition-epochs (map-reduce rounds).
	Epochs int
	// SVM carries the per-replica trainer configuration.
	SVM svm.Config
	// Fabric tunes the simulated interconnect.
	Fabric fabric.Config
}

// Result reports an MR-SVM run.
type Result struct {
	// FinalModel is the averaged model after the last epoch.
	FinalModel []float64
	// LossByEpoch is the training-shard loss of rank 0's model after each
	// averaging round.
	LossByEpoch []float64
	// StepsPerRank is the SGD steps each rank performed.
	StepsPerRank uint64
	// Timers holds the per-rank phase breakdowns.
	Timers []*trace.Timer
	// Stats is the fabric traffic accounting.
	Stats *fabric.Stats
	// Elapsed is the wall-clock duration.
	Elapsed time.Duration
}

// Train runs MR-SVM over the dataset's training split, sharded across the
// ranks, evaluating the loss on eval after every averaging round.
func Train(cfg Config, ds *data.Dataset, eval []data.Example) (*Result, error) {
	if cfg.Ranks <= 0 {
		return nil, fmt.Errorf("mrsvm: Ranks must be positive, got %d", cfg.Ranks)
	}
	if cfg.Epochs <= 0 {
		return nil, fmt.Errorf("mrsvm: Epochs must be positive, got %d", cfg.Epochs)
	}
	cluster, err := core.NewCluster(core.Config{
		Ranks:  cfg.Ranks,
		Fabric: cfg.Fabric,
	})
	if err != nil {
		return nil, err
	}

	final := make([]float64, cfg.SVM.Dim)
	losses := make([]float64, cfg.Epochs)
	var steps uint64
	res := cluster.Run(func(ctx *core.Context) error {
		w, err := ctx.CreateVector("mr/w", vol.Dense, cfg.SVM.Dim)
		if err != nil {
			return err
		}
		tr, err := svm.New(cfg.SVM)
		if err != nil {
			return err
		}
		lo, hi, err := ctx.Shard(len(ds.Train))
		if err != nil {
			return err
		}
		shard := ds.Train[lo:hi]
		for epoch := 0; epoch < cfg.Epochs; epoch++ {
			// Map phase: a full serial-SGD pass over the shard, no
			// communication at all.
			ctx.Compute(func() { tr.TrainEpoch(w.Data(), shard) })
			// Reduce phase: one-shot model averaging.
			ctx.SetIteration(uint64(epoch + 1))
			if err := ctx.Scatter(w); err != nil {
				return err
			}
			if err := ctx.Barrier(w); err != nil {
				return err
			}
			if _, err := ctx.Gather(w, vol.Average); err != nil {
				return err
			}
			if err := ctx.Barrier(w); err != nil {
				return err
			}
			if ctx.Rank() == 0 {
				losses[epoch] = tr.Loss(w.Data(), eval)
			}
		}
		if ctx.Rank() == 0 {
			copy(final, w.Data())
			steps = tr.Steps()
		}
		return nil
	})
	if err := res.FirstError(); err != nil {
		return nil, err
	}

	out := &Result{
		FinalModel:   final,
		LossByEpoch:  losses,
		StepsPerRank: steps,
		Timers:       make([]*trace.Timer, cfg.Ranks),
		Stats:        cluster.Fabric().Stats(),
		Elapsed:      res.Elapsed,
	}
	for r := range out.Timers {
		out.Timers[r] = res.PerRank[r].Timer
	}
	return out, nil
}
