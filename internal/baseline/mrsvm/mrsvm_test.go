package mrsvm

import (
	"testing"

	"malt/internal/data"
	"malt/internal/ml/svm"
)

func TestValidation(t *testing.T) {
	ds, _ := data.GenerateClassification(data.ClassificationSpec{
		Name: "t", Dim: 10, Train: 10, NNZ: 2, Seed: 1,
	})
	if _, err := Train(Config{Ranks: 0, Epochs: 1, SVM: svm.Config{Dim: 10}}, ds, nil); err == nil {
		t.Fatal("Ranks=0 should fail")
	}
	if _, err := Train(Config{Ranks: 1, Epochs: 0, SVM: svm.Config{Dim: 10}}, ds, nil); err == nil {
		t.Fatal("Epochs=0 should fail")
	}
}

func TestMRSVMConverges(t *testing.T) {
	ds, err := data.GenerateClassification(data.ClassificationSpec{
		Name: "t", Dim: 100, Train: 4000, Test: 500, NNZ: 10, Noise: 0.02, Seed: 5,
	})
	if err != nil {
		t.Fatal(err)
	}
	res, err := Train(Config{
		Ranks:  4,
		Epochs: 5,
		SVM:    svm.Config{Dim: ds.Dim, Lambda: 1e-4},
	}, ds, ds.Test)
	if err != nil {
		t.Fatal(err)
	}
	tr, _ := svm.New(svm.Config{Dim: ds.Dim})
	if acc := tr.Accuracy(res.FinalModel, ds.Test); acc < 0.85 {
		t.Fatalf("MR-SVM accuracy %v too low", acc)
	}
	if len(res.LossByEpoch) != 5 {
		t.Fatalf("losses = %v", res.LossByEpoch)
	}
	if res.LossByEpoch[4] >= res.LossByEpoch[0] {
		t.Fatalf("loss did not decrease across epochs: %v", res.LossByEpoch)
	}
	// One-shot averaging: exactly one model exchange per epoch per rank →
	// traffic is epochs × ranks × (ranks−1) messages.
	wantMsgs := uint64(5 * 4 * 3)
	if got := res.Stats.TotalMessages(); got != wantMsgs {
		t.Fatalf("messages = %d, want %d (one-shot averaging)", got, wantMsgs)
	}
	if res.StepsPerRank == 0 {
		t.Fatal("steps not recorded")
	}
}

func TestMRSVMCommunicatesLessThanMALT(t *testing.T) {
	// The defining property: MR-SVM's communication batch is the whole
	// shard, so with equal epochs it sends far fewer updates than a
	// MALT-style cb≈1k loop would (which is why it converges slower per
	// iteration on a low-latency fabric — Fig 5).
	ds, _ := data.GenerateClassification(data.ClassificationSpec{
		Name: "t", Dim: 50, Train: 2000, NNZ: 5, Seed: 3,
	})
	res, err := Train(Config{Ranks: 2, Epochs: 3, SVM: svm.Config{Dim: ds.Dim}}, ds, nil)
	if err != nil {
		t.Fatal(err)
	}
	// 3 epochs × 2 ranks × 1 peer = 6 messages total.
	if res.Stats.TotalMessages() != 6 {
		t.Fatalf("messages = %d, want 6", res.Stats.TotalMessages())
	}
}
