package trace

import (
	"errors"
	"strings"
	"testing"
	"time"
)

func TestTimeAccumulates(t *testing.T) {
	var tm Timer
	tm.Time(Compute, func() { time.Sleep(5 * time.Millisecond) })
	tm.Time(Compute, func() { time.Sleep(5 * time.Millisecond) })
	if got := tm.Get(Compute); got < 9*time.Millisecond {
		t.Fatalf("Compute = %v, want >= ~10ms", got)
	}
	if tm.Get(Scatter) != 0 {
		t.Fatal("untouched phase should be zero")
	}
}

func TestTimeErrForwardsError(t *testing.T) {
	var tm Timer
	want := errors.New("boom")
	if err := tm.TimeErr(Gather, func() error { return want }); !errors.Is(err, want) {
		t.Fatalf("err = %v", err)
	}
	if err := tm.TimeErr(Gather, func() error { return nil }); err != nil {
		t.Fatalf("err = %v", err)
	}
}

func TestAddAndTotal(t *testing.T) {
	var tm Timer
	tm.Add(Barrier, 3*time.Second)
	tm.Add(Wait, 2*time.Second)
	if tm.Total() != 5*time.Second {
		t.Fatalf("Total = %v", tm.Total())
	}
}

func TestSnapshotAndMerge(t *testing.T) {
	var a, b Timer
	a.Add(Compute, time.Second)
	b.Add(Compute, 2*time.Second)
	b.Add(Scatter, time.Second)
	a.Merge(&b)
	if a.Get(Compute) != 3*time.Second || a.Get(Scatter) != time.Second {
		t.Fatalf("merge wrong: %v", a.Snapshot())
	}
	snap := a.Snapshot()
	if snap[Compute] != 3*time.Second {
		t.Fatalf("snapshot = %v", snap)
	}
	if len(snap) != len(Phases()) {
		t.Fatalf("snapshot has %d phases, want %d", len(snap), len(Phases()))
	}
}

func TestPhaseNames(t *testing.T) {
	want := []string{"compute", "scatter", "gather", "barrier", "wait"}
	for i, p := range Phases() {
		if p.String() != want[i] {
			t.Fatalf("phase %d = %q, want %q", i, p.String(), want[i])
		}
	}
}

func TestStringFormat(t *testing.T) {
	var tm Timer
	tm.Add(Compute, time.Millisecond)
	s := tm.String()
	if !strings.Contains(s, "compute=1ms") {
		t.Fatalf("String = %q", s)
	}
	for _, p := range Phases() {
		if !strings.Contains(s, p.String()+"=") {
			t.Fatalf("String missing phase %v: %q", p, s)
		}
	}
}
