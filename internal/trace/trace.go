// Package trace accumulates per-phase wall-clock time for one training
// replica. The paper's Fig 8 breaks a rank's time into gradient
// computation, scatter, gather and barrier; Fig 9 contrasts compute time
// with wait time across MALT and parameter-server configurations. A Timer
// is owned by one goroutine and is deliberately free of synchronization on
// the hot path; Snapshot copies may be taken from other goroutines only
// after the replica has stopped.
package trace

import (
	"fmt"
	"strings"
	"time"
)

// Phase labels one accounted activity.
type Phase int

const (
	// Compute is gradient / model-update computation.
	Compute Phase = iota
	// Scatter is time spent pushing updates to peers.
	Scatter
	// Gather is time spent folding received updates.
	Gather
	// Barrier is time blocked in BSP barriers.
	Barrier
	// Wait is time blocked for other reasons: SSP stalls, parameter-server
	// model pulls.
	Wait
	numPhases
)

// String returns the phase name.
func (p Phase) String() string {
	switch p {
	case Compute:
		return "compute"
	case Scatter:
		return "scatter"
	case Gather:
		return "gather"
	case Barrier:
		return "barrier"
	case Wait:
		return "wait"
	default:
		return fmt.Sprintf("Phase(%d)", int(p))
	}
}

// Phases lists all phases in display order.
func Phases() []Phase {
	return []Phase{Compute, Scatter, Gather, Barrier, Wait}
}

// Timer accumulates time per phase.
type Timer struct {
	total [numPhases]time.Duration
}

// Time runs fn and charges its duration to phase.
func (t *Timer) Time(p Phase, fn func()) {
	start := time.Now()
	fn()
	t.total[p] += time.Since(start)
}

// TimeErr runs fn and charges its duration to phase, forwarding fn's error.
func (t *Timer) TimeErr(p Phase, fn func() error) error {
	start := time.Now()
	err := fn()
	t.total[p] += time.Since(start)
	return err
}

// Add charges d to phase directly (used when the duration was measured
// elsewhere, e.g. the barrier wait returned by a consistency controller).
func (t *Timer) Add(p Phase, d time.Duration) {
	t.total[p] += d
}

// Get returns the accumulated time for a phase.
func (t *Timer) Get(p Phase) time.Duration { return t.total[p] }

// Total returns the sum over all phases.
func (t *Timer) Total() time.Duration {
	var sum time.Duration
	for _, d := range t.total {
		sum += d
	}
	return sum
}

// Snapshot returns a copy of the per-phase totals.
func (t *Timer) Snapshot() map[Phase]time.Duration {
	out := make(map[Phase]time.Duration, numPhases)
	for p := Phase(0); p < numPhases; p++ {
		out[p] = t.total[p]
	}
	return out
}

// Merge adds another timer's totals into t (aggregating ranks).
func (t *Timer) Merge(other *Timer) {
	for p := Phase(0); p < numPhases; p++ {
		t.total[p] += other.total[p]
	}
}

// String formats the totals compactly for logs.
func (t *Timer) String() string {
	var b strings.Builder
	for i, p := range Phases() {
		if i > 0 {
			b.WriteByte(' ')
		}
		fmt.Fprintf(&b, "%s=%v", p, t.total[p].Round(time.Microsecond))
	}
	return b.String()
}
