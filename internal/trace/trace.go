// Package trace accumulates per-phase wall-clock time for one training
// replica. The paper's Fig 8 breaks a rank's time into gradient
// computation, scatter, gather and barrier; Fig 9 contrasts compute time
// with wait time across MALT and parameter-server configurations. A Timer
// is owned by one goroutine and is deliberately free of synchronization on
// the hot path; Snapshot copies may be taken from other goroutines only
// after the replica has stopped.
package trace

import (
	"fmt"
	"strings"
	"time"
)

// Phase labels one accounted activity.
type Phase int

const (
	// Compute is gradient / model-update computation.
	Compute Phase = iota
	// Scatter is time spent pushing updates to peers.
	Scatter
	// Gather is time spent folding received updates.
	Gather
	// Barrier is time blocked in BSP barriers.
	Barrier
	// Wait is time blocked for other reasons: SSP stalls, parameter-server
	// model pulls.
	Wait
	numPhases
)

// String returns the phase name.
func (p Phase) String() string {
	switch p {
	case Compute:
		return "compute"
	case Scatter:
		return "scatter"
	case Gather:
		return "gather"
	case Barrier:
		return "barrier"
	case Wait:
		return "wait"
	default:
		return fmt.Sprintf("Phase(%d)", int(p))
	}
}

// Phases lists all phases in display order.
func Phases() []Phase {
	return []Phase{Compute, Scatter, Gather, Barrier, Wait}
}

// Counter labels one accounted event count (not a duration). Counters feed
// the coalescing-pipeline and parallel-gather ablations: how many fabric
// writes batching saved, how deep the send coalescer got, how much work the
// gather engine fanned out, and how often its scratch pools avoided
// allocation.
type Counter int

const (
	// WritesSaved is fabric writes eliminated by send-side coalescing.
	WritesSaved Counter = iota
	// BytesMerged is payload bytes that travelled in a merged batch.
	BytesMerged
	// QueuePeak is the peak number of records pending in the coalescer.
	// Merged with Max, not summed.
	QueuePeak
	// DecodeTasks is update decodes fanned to the parallel-gather pool.
	DecodeTasks
	// ChunksFolded is coordinate chunks folded by chunk-form UDFs.
	ChunksFolded
	// ScratchHits is gather decode buffers reused without allocation.
	ScratchHits
	// BucketsSent is gradient-bucket fragments scattered (comm/compute
	// overlap; zero when bucketing is off).
	BucketsSent
	// ExposedCommNs is nanoseconds of communication left on the critical
	// path: time spent waiting at iteration edges (drains, barriers) while
	// the send pipeline still held undelivered work.
	ExposedCommNs
	// OverlappedNs is nanoseconds of compute during which the send pipeline
	// held in-flight work — communication hidden behind compute.
	OverlappedNs
	// BytesPrecompress is the raw bytes compressed scatters would have
	// shipped uncompressed (8·dim per destination per update).
	BytesPrecompress
	// BytesPostcompress is the compressed frame bytes actually shipped.
	BytesPostcompress
	// ResidualNorm is the final L1 norm of the error-feedback residuals in
	// micro-units (×1e6), summed over links — gradient mass still deferred
	// when the run ended.
	ResidualNorm
	// RatioPerLink is 1000 / the tightest (smallest) adaptive per-link
	// compression ratio that was ever in force, so tightening raises it
	// and post-blackout relaxation does not erase the peak. Merged with
	// Max, not summed: the cluster-wide value is the worst link anywhere.
	RatioPerLink
	numCounters
)

// String returns the counter name.
func (c Counter) String() string {
	switch c {
	case WritesSaved:
		return "writes_saved"
	case BytesMerged:
		return "bytes_merged"
	case QueuePeak:
		return "queue_peak"
	case DecodeTasks:
		return "decode_tasks"
	case ChunksFolded:
		return "chunks_folded"
	case ScratchHits:
		return "scratch_hits"
	case BucketsSent:
		return "buckets_sent"
	case ExposedCommNs:
		return "exposed_comm_ns"
	case OverlappedNs:
		return "overlapped_ns"
	case BytesPrecompress:
		return "bytes_precompress"
	case BytesPostcompress:
		return "bytes_postcompress"
	case ResidualNorm:
		return "residual_norm"
	case RatioPerLink:
		return "ratio_per_link"
	default:
		return fmt.Sprintf("Counter(%d)", int(c))
	}
}

// Counters lists all counters in display order.
func Counters() []Counter {
	return []Counter{WritesSaved, BytesMerged, QueuePeak, DecodeTasks, ChunksFolded, ScratchHits, BucketsSent, ExposedCommNs, OverlappedNs, BytesPrecompress, BytesPostcompress, ResidualNorm, RatioPerLink}
}

// Timer accumulates time per phase and event counts per counter.
type Timer struct {
	total  [numPhases]time.Duration
	counts [numCounters]uint64
}

// Time runs fn and charges its duration to phase.
func (t *Timer) Time(p Phase, fn func()) {
	start := time.Now()
	fn()
	t.total[p] += time.Since(start)
}

// TimeErr runs fn and charges its duration to phase, forwarding fn's error.
func (t *Timer) TimeErr(p Phase, fn func() error) error {
	start := time.Now()
	err := fn()
	t.total[p] += time.Since(start)
	return err
}

// Add charges d to phase directly (used when the duration was measured
// elsewhere, e.g. the barrier wait returned by a consistency controller).
func (t *Timer) Add(p Phase, d time.Duration) {
	t.total[p] += d
}

// Get returns the accumulated time for a phase.
func (t *Timer) Get(p Phase) time.Duration { return t.total[p] }

// Total returns the sum over all phases.
func (t *Timer) Total() time.Duration {
	var sum time.Duration
	for _, d := range t.total {
		sum += d
	}
	return sum
}

// Snapshot returns a copy of the per-phase totals.
func (t *Timer) Snapshot() map[Phase]time.Duration {
	out := make(map[Phase]time.Duration, numPhases)
	for p := Phase(0); p < numPhases; p++ {
		out[p] = t.total[p]
	}
	return out
}

// AddCount charges n events to counter c.
func (t *Timer) AddCount(c Counter, n uint64) {
	t.counts[c] += n
}

// MaxCount raises counter c to n if n is larger (for peak-style counters).
func (t *Timer) MaxCount(c Counter, n uint64) {
	if n > t.counts[c] {
		t.counts[c] = n
	}
}

// Count returns the accumulated events for a counter.
func (t *Timer) Count(c Counter) uint64 { return t.counts[c] }

// OverlappedFrac returns the fraction of all communication time that was
// hidden behind compute: overlapped / (overlapped + exposed). It is 0 when
// no communication was accounted (fully synchronous runs) and approaches 1
// as bucketing hides the wire time behind the trainer.
func (t *Timer) OverlappedFrac() float64 {
	ov := float64(t.counts[OverlappedNs])
	ex := float64(t.counts[ExposedCommNs])
	if ov+ex == 0 {
		return 0
	}
	return ov / (ov + ex)
}

// Merge adds another timer's totals into t (aggregating ranks). Peak-style
// counters (QueuePeak, RatioPerLink) take the max instead of summing.
func (t *Timer) Merge(other *Timer) {
	for p := Phase(0); p < numPhases; p++ {
		t.total[p] += other.total[p]
	}
	for c := Counter(0); c < numCounters; c++ {
		if c == QueuePeak || c == RatioPerLink {
			if other.counts[c] > t.counts[c] {
				t.counts[c] = other.counts[c]
			}
		} else {
			t.counts[c] += other.counts[c]
		}
	}
}

// String formats the totals compactly for logs; counters appear only when
// nonzero.
func (t *Timer) String() string {
	var b strings.Builder
	for i, p := range Phases() {
		if i > 0 {
			b.WriteByte(' ')
		}
		fmt.Fprintf(&b, "%s=%v", p, t.total[p].Round(time.Microsecond))
	}
	for _, c := range Counters() {
		if t.counts[c] != 0 {
			fmt.Fprintf(&b, " %s=%d", c, t.counts[c])
		}
	}
	return b.String()
}
