package stream

import (
	"bufio"
	"errors"
	"fmt"
	"net"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"malt/internal/fabric"
)

// newTestCluster builds an n-rank loopback cluster in one process: each
// rank pre-binds a :0 listener so the full peer list is known before any
// Net is constructed, then all ranks rendezvous concurrently. The default
// (windowed) data path is in effect; tests that assert the legacy
// synchronous semantics pass a mutate function setting WindowFrames: 1.
func newTestCluster(t *testing.T, n int) []*Net {
	return newTestClusterCfg(t, n, nil)
}

func newTestClusterCfg(t *testing.T, n int, mutate func(*Config)) []*Net {
	t.Helper()
	lns := make([]net.Listener, n)
	addrs := make([]string, n)
	for i := range lns {
		ln, err := net.Listen("tcp", "127.0.0.1:0")
		if err != nil {
			t.Fatalf("rank %d: listen: %v", i, err)
		}
		lns[i] = ln
		addrs[i] = ln.Addr().String()
	}
	nets := make([]*Net, n)
	for i := range nets {
		cfg := Config{
			Rank:              i,
			Peers:             addrs,
			Listener:          lns[i],
			DialTimeout:       time.Second,
			AckTimeout:        2 * time.Second,
			RendezvousTimeout: 10 * time.Second,
			BarrierTimeout:    10 * time.Second,
			HeartbeatInterval: 10 * time.Millisecond,
		}
		if mutate != nil {
			mutate(&cfg)
		}
		nt, err := New(cfg)
		if err != nil {
			t.Fatalf("rank %d: New: %v", i, err)
		}
		nets[i] = nt
	}
	t.Cleanup(func() {
		for _, nt := range nets {
			nt.Close()
		}
	})
	var wg sync.WaitGroup
	errs := make([]error, n)
	for i, nt := range nets {
		wg.Add(1)
		go func(i int, nt *Net) {
			defer wg.Done()
			errs[i] = nt.Rendezvous()
		}(i, nt)
	}
	wg.Wait()
	for i, err := range errs {
		if err != nil {
			t.Fatalf("rank %d: rendezvous: %v", i, err)
		}
	}
	return nets
}

func TestConfigValidate(t *testing.T) {
	cases := []struct {
		name string
		cfg  Config
	}{
		{"no peers", Config{Rank: 0}},
		{"rank out of range", Config{Rank: 3, Peers: []string{"a:1", "b:1"}}},
		{"negative rank", Config{Rank: -1, Peers: []string{"a:1"}}},
		{"empty address", Config{Rank: 0, Peers: []string{"a:1", ""}}},
		{"duplicate address", Config{Rank: 0, Peers: []string{"a:1", "a:1"}}},
	}
	for _, tc := range cases {
		if err := tc.cfg.Validate(); err == nil {
			t.Errorf("%s: want error, got nil", tc.name)
		}
	}
	if err := (Config{Rank: 1, Peers: []string{"a:1", "b:1"}}).Validate(); err != nil {
		t.Errorf("valid config rejected: %v", err)
	}
}

func TestRendezvousSharesGeneration(t *testing.T) {
	nets := newTestCluster(t, 3)
	gen := nets[0].Generation()
	if gen == 0 {
		t.Fatal("rank 0 has zero generation")
	}
	for i, nt := range nets {
		if nt.Generation() != gen {
			t.Fatalf("rank %d generation %d != rank 0 generation %d", i, nt.Generation(), gen)
		}
	}
}

func TestWriteDepositsIntoHandler(t *testing.T) {
	nets := newTestCluster(t, 3)

	type rec struct {
		from int
		data string
	}
	var mu sync.Mutex
	var got []rec
	if err := nets[1].Register(1, "w", func(from int, b []byte) error {
		mu.Lock()
		got = append(got, rec{from, string(b)})
		mu.Unlock()
		return nil
	}); err != nil {
		t.Fatal(err)
	}

	if err := nets[0].Write(0, 1, "w", []byte("hello")); err != nil {
		t.Fatalf("write: %v", err)
	}
	if err := nets[2].WriteBatch(2, 1, "w", [][]byte{[]byte("a"), []byte("b"), []byte("c")}); err != nil {
		t.Fatalf("write batch: %v", err)
	}
	// Windowed writes return before the deposit: drain both senders so the
	// cumulative acks (which carry the deposit outcome and move the stats)
	// have landed.
	if err := nets[0].Drain(); err != nil {
		t.Fatalf("drain rank 0: %v", err)
	}
	if err := nets[2].Drain(); err != nil {
		t.Fatalf("drain rank 2: %v", err)
	}

	mu.Lock()
	defer mu.Unlock()
	want := []rec{{0, "hello"}, {2, "a"}, {2, "b"}, {2, "c"}}
	if len(got) != len(want) {
		t.Fatalf("got %d records, want %d: %v", len(got), len(want), got)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("record %d: got %+v want %+v", i, got[i], want[i])
		}
	}

	// The batch was one frame with one ack: the coalesced counters moved.
	if recs := nets[2].Stats().CoalescedRecords(); recs != 3 {
		t.Fatalf("coalesced records = %d, want 3", recs)
	}
	if ops := nets[2].Stats().CoalescedWrites(); ops != 1 {
		t.Fatalf("coalesced writes = %d, want 1", ops)
	}
}

// TestWriteErrors pins the legacy synchronous error semantics: with
// WindowFrames: 1 every Write blocks for its covering ack and reports that
// frame's deposit status directly, exactly like the old ack-per-frame
// path. (TestWindowedDeferredErrors covers the pipelined reporting.)
func TestWriteErrors(t *testing.T) {
	nets := newTestClusterCfg(t, 2, func(c *Config) { c.WindowFrames = 1 })

	if err := nets[0].Write(0, 1, "nope", []byte("x")); !errors.Is(err, fabric.ErrNotRegistered) {
		t.Fatalf("unregistered key: want ErrNotRegistered, got %v", err)
	}
	if err := nets[0].Write(1, 0, "w", []byte("x")); err == nil {
		t.Fatal("write on behalf of a remote rank: want error, got nil")
	}
	if err := nets[0].Register(1, "w", func(int, []byte) error { return nil }); err == nil {
		t.Fatal("remote register: want error, got nil")
	}
	if err := nets[1].Register(1, "w", func(int, []byte) error { return errors.New("boom") }); err != nil {
		t.Fatal(err)
	}
	if err := nets[0].Write(0, 1, "w", []byte("x")); err == nil {
		t.Fatal("handler error: want error, got nil")
	}
	if err := nets[1].Unregister(1, "w"); err != nil {
		t.Fatal(err)
	}
	if err := nets[0].Write(0, 1, "w", []byte("x")); !errors.Is(err, fabric.ErrNotRegistered) {
		t.Fatalf("after unregister: want ErrNotRegistered, got %v", err)
	}
}

func TestPingDirectAndDelegated(t *testing.T) {
	nets := newTestCluster(t, 3)

	if err := nets[0].Ping(0, 2); err != nil {
		t.Fatalf("direct ping: %v", err)
	}
	// Delegated: ask rank 1 to probe rank 2 from its own vantage point —
	// the fault monitor's cross-confirmation path.
	if err := nets[0].Ping(1, 2); err != nil {
		t.Fatalf("delegated ping: %v", err)
	}

	nets[2].Kill(2)
	waitFor(t, "rank 0 sees rank 2 dead", func() bool { return !nets[0].Alive(2) })
	if err := nets[0].Ping(0, 2); err == nil {
		t.Fatal("ping to dead rank: want error, got nil")
	}
	waitFor(t, "rank 1 sees rank 2 dead", func() bool { return !nets[1].Alive(2) })
	if err := nets[0].Ping(1, 2); err == nil {
		t.Fatal("delegated ping to dead rank: want error, got nil")
	}
}

func TestBarrierReleasesAllRanks(t *testing.T) {
	nets := newTestCluster(t, 3)
	for round := 0; round < 3; round++ {
		name := fmt.Sprintf("step:%d", round)
		var wg sync.WaitGroup
		errs := make([]error, len(nets))
		for i, nt := range nets {
			wg.Add(1)
			go func(i int, nt *Net) {
				defer wg.Done()
				errs[i] = nt.Barrier(name, nt.Rank())
			}(i, nt)
		}
		wg.Wait()
		for i, err := range errs {
			if err != nil {
				t.Fatalf("round %d rank %d: %v", round, i, err)
			}
		}
	}
}

func TestKillDrivesLivenessAndBarrierPruning(t *testing.T) {
	nets := newTestCluster(t, 3)

	var observed atomic.Int32
	nets[0].OnLivenessChange(func(rank int, alive bool) {
		if rank == 2 && !alive {
			observed.Add(1)
		}
	})

	// Rank 2 dies mid-run. Its own endpoint reports sender-dead; peers
	// converge on unreachable via heartbeat strike-out (refused dials).
	if err := nets[2].Kill(2); err != nil {
		t.Fatal(err)
	}
	if err := nets[2].Write(2, 0, "w", []byte("x")); !errors.Is(err, fabric.ErrSenderDead) {
		t.Fatalf("write from killed rank: want ErrSenderDead, got %v", err)
	}
	waitFor(t, "rank 0 marks rank 2 dead", func() bool { return !nets[0].Alive(2) })
	waitFor(t, "rank 1 marks rank 2 dead", func() bool { return !nets[1].Alive(2) })
	if observed.Load() != 1 {
		t.Fatalf("liveness watcher fired %d times for rank 2, want 1", observed.Load())
	}
	if err := nets[0].Write(0, 2, "w", []byte("x")); !errors.Is(err, fabric.ErrUnreachable) {
		t.Fatalf("write to dead rank: want ErrUnreachable, got %v", err)
	}

	// Survivors still make progress: the coordinator prunes rank 2 from
	// barrier membership.
	var wg sync.WaitGroup
	errs := make([]error, 2)
	for i, nt := range nets[:2] {
		wg.Add(1)
		go func(i int, nt *Net) {
			defer wg.Done()
			errs[i] = nt.Barrier("after-death", nt.Rank())
		}(i, nt)
	}
	wg.Wait()
	for i, err := range errs {
		if err != nil {
			t.Fatalf("survivor rank %d barrier: %v", i, err)
		}
	}

	alive := nets[0].AliveRanks()
	if len(alive) != 2 || alive[0] != 0 || alive[1] != 1 {
		t.Fatalf("alive ranks = %v, want [0 1]", alive)
	}
}

func TestKillRemoteRejected(t *testing.T) {
	nets := newTestCluster(t, 2)
	if err := nets[0].Kill(1); err == nil {
		t.Fatal("remote kill: want error, got nil")
	}
}

func TestStaleEpochRejected(t *testing.T) {
	nets := newTestClusterCfg(t, 2, func(c *Config) { c.WindowFrames = 1 })
	if err := nets[1].Register(1, "w", func(int, []byte) error { return nil }); err != nil {
		t.Fatal(err)
	}
	// A zombie from a previous incarnation stamps an epoch below the
	// sender's admission floor at the receiver.
	nets[0].gen.Store(nets[0].gen.Load() - 1)
	err := nets[0].Write(0, 1, "w", []byte("x"))
	if !errors.Is(err, fabric.ErrStaleEpoch) {
		t.Fatalf("stale-epoch write: want ErrStaleEpoch, got %v", err)
	}
	if got := nets[1].StaleEpochRejected(); got != 1 {
		t.Fatalf("receiver StaleEpochRejected() = %d, want 1", got)
	}
	// Epochs only move forward: a frame stamped above the admission floor
	// (a lagging receiver, a fresher sender) must still land.
	nets[0].gen.Store(nets[0].gen.Load() + 2)
	if err := nets[0].Write(0, 1, "w", []byte("x")); err != nil {
		t.Fatalf("ahead-of-floor write: %v", err)
	}
}

func waitFor(t *testing.T, what string, cond func() bool) {
	t.Helper()
	deadline := time.Now().Add(5 * time.Second)
	for !cond() {
		if time.Now().After(deadline) {
			t.Fatalf("timed out waiting for %s", what)
		}
		//maltlint:allow rawsleep -- bounded poll helper for membership convergence; no fabric retry involved
		time.Sleep(2 * time.Millisecond)
	}
}

// rejoinRank builds a fresh Net for a previously-killed rank on the same
// address book — the restarted process — and runs the Join handshake.
func rejoinRank(t *testing.T, nets []*Net, rank int) *Net {
	t.Helper()
	addrs := nets[0].cfg.Peers
	nt, err := New(Config{
		Rank:              rank,
		Peers:             addrs,
		DialTimeout:       time.Second,
		AckTimeout:        2 * time.Second,
		RendezvousTimeout: 10 * time.Second,
		BarrierTimeout:    10 * time.Second,
		HeartbeatInterval: 10 * time.Millisecond,
	})
	if err != nil {
		t.Fatalf("rank %d: New (rejoin): %v", rank, err)
	}
	t.Cleanup(func() { nt.Close() })
	if _, err := nt.Join(rank); err != nil {
		t.Fatalf("rank %d: Join: %v", rank, err)
	}
	return nt
}

func TestJoinReadmitsKilledRank(t *testing.T) {
	nets := newTestCluster(t, 3)
	base := nets[0].Generation()

	var joinRank atomic.Int64
	var joinEpoch atomic.Uint64
	nets[1].OnJoin(func(rank int, epoch uint64) {
		joinRank.Store(int64(rank))
		joinEpoch.Store(epoch)
	})

	if err := nets[2].Kill(2); err != nil {
		t.Fatal(err)
	}
	waitFor(t, "rank 0 sees rank 2 dead", func() bool { return !nets[0].Alive(2) })
	waitFor(t, "rank 1 sees rank 2 dead", func() bool { return !nets[1].Alive(2) })

	// The confirmed death minted an epoch at the membership authority.
	if e := nets[0].Epoch(); e <= base {
		t.Fatalf("epoch after death = %d, want > base %d", e, base)
	}

	nt2 := rejoinRank(t, nets, 2)
	epoch := nt2.Epoch()
	//maltlint:allow epochcmp -- the stale base is deliberate: the assertion is that the rejoin minted a strictly newer epoch
	if epoch <= base {
		t.Fatalf("joiner epoch = %d, want > base %d", epoch, base)
	}
	// The announce ran before the join ack, so survivors already admit it.
	if !nets[0].Alive(2) || !nets[1].Alive(2) {
		t.Fatalf("survivors alive view of rank 2 = %v/%v, want true/true",
			nets[0].Alive(2), nets[1].Alive(2))
	}
	if joinRank.Load() != 2 || joinEpoch.Load() != epoch {
		t.Fatalf("rank 1 join watcher saw (%d, %d), want (2, %d)",
			joinRank.Load(), joinEpoch.Load(), epoch)
	}

	// Traffic flows both ways with the new incarnation.
	got := make(chan string, 1)
	if err := nt2.Register(2, "w2", func(from int, b []byte) error {
		got <- string(b)
		return nil
	}); err != nil {
		t.Fatal(err)
	}
	if err := nets[0].Write(0, 2, "w2", []byte("welcome back")); err != nil {
		t.Fatalf("write to rejoined rank: %v", err)
	}
	if msg := <-got; msg != "welcome back" {
		t.Fatalf("rejoined rank received %q", msg)
	}
	if err := nets[1].Register(1, "w1", func(int, []byte) error { return nil }); err != nil {
		t.Fatal(err)
	}
	if err := nt2.Write(2, 1, "w1", []byte("alive")); err != nil {
		t.Fatalf("write from rejoined rank: %v", err)
	}

	// The old incarnation's frames carry the base epoch, which is now below
	// rank 2's admission everywhere: a raw zombie write is fenced.
	zc, err := net.Dial("tcp", nets[1].Addr())
	if err != nil {
		t.Fatal(err)
	}
	defer zc.Close()
	zombie := &Frame{Type: frameData, From: 2, Gen: base, Seq: 1, Key: "w1", Records: [][]byte{[]byte("poison")}}
	if err := writeFrame(zc, zombie); err != nil {
		t.Fatal(err)
	}
	ack, err := readFrame(bufio.NewReader(zc))
	if err != nil {
		t.Fatal(err)
	}
	if ack.Type != frameAckCum || ack.Seq != 1 {
		t.Fatalf("zombie write ack = type %d seq %d, want cumulative ack for seq 1", ack.Type, ack.Seq)
	}
	if len(ack.Records) != 1 || len(ack.Records[0]) != 1 || ack.Records[0][0] != statusStaleEpoch {
		t.Fatalf("zombie write status = %v, want statusStaleEpoch", ack.Records)
	}
	if nets[1].StaleEpochRejected() == 0 {
		t.Fatal("receiver did not count the fenced zombie write")
	}
}

func TestJoinRules(t *testing.T) {
	nets := newTestCluster(t, 2)
	if _, err := nets[0].Join(0); err == nil {
		t.Fatal("rank 0 join: want error, got nil")
	}
	if _, err := nets[1].Join(0); err == nil {
		t.Fatal("join on behalf of another rank: want error, got nil")
	}
	if _, err := nets[1].Join(7); err == nil {
		t.Fatal("out-of-range join: want error, got nil")
	}
}

// TestBarrierReleasesDuringJoinAndDeath is the elastic-membership barrier
// contract: a rank joining while a barrier is pending extends membership,
// and a rank dying inside the same barrier window still releases every
// transport-alive member.
func TestBarrierReleasesDuringJoinAndDeath(t *testing.T) {
	nets := newTestCluster(t, 4)

	if err := nets[3].Kill(3); err != nil {
		t.Fatal(err)
	}
	for r := 0; r < 3; r++ {
		waitFor(t, "survivor sees rank 3 dead", func() bool { return !nets[r].Alive(3) })
	}

	// Ranks 0 and 2 enter and block: rank 1 is alive but absent.
	var wg sync.WaitGroup
	errs := make([]error, 4)
	for _, r := range []int{0, 2} {
		wg.Add(1)
		go func(r int) {
			defer wg.Done()
			errs[r] = nets[r].Barrier("mid", r)
		}(r)
	}
	waitFor(t, "ranks 0 and 2 pending at the coordinator", func() bool {
		nets[0].coord.mu.Lock()
		defer nets[0].coord.mu.Unlock()
		st := nets[0].coord.barriers["mid"]
		return st != nil && st.entered[0] && st.entered[2]
	})

	// Rank 3 rejoins mid-barrier: membership grows to {0,1,2,3}.
	nt3 := rejoinRank(t, nets, 3)

	// Rank 1 dies inside the barrier window without ever entering, and the
	// joiner enters. Alive membership is {0,2,3} — all entered — so every
	// transport-alive member must release.
	if err := nets[1].Kill(1); err != nil {
		t.Fatal(err)
	}
	wg.Add(1)
	go func() {
		defer wg.Done()
		errs[3] = nt3.Barrier("mid", 3)
	}()
	wg.Wait()
	for _, r := range []int{0, 2, 3} {
		if errs[r] != nil {
			t.Fatalf("rank %d barrier: %v", r, errs[r])
		}
	}
}
