//go:build !race

package stream

const raceEnabled = false
