package stream

import (
	"errors"
	"fmt"
	"net"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"malt/internal/fabric"
)

var (
	_ fabric.Transport   = (*Net)(nil)
	_ fabric.Coordinator = (*Net)(nil)
	_ fabric.Membership  = (*Net)(nil)
)

// Defaults for Config timeouts.
const (
	// DefaultDialTimeout bounds one connection attempt to a peer.
	DefaultDialTimeout = 2 * time.Second
	// DefaultAckTimeout bounds one acked round trip (write + ack read).
	// Expiry maps to fabric.ErrTransient: the peer may just be slow, and
	// dstorm.RetryPolicy decides how long to keep trying.
	DefaultAckTimeout = 5 * time.Second
	// DefaultRendezvousTimeout bounds how long Rendezvous waits for the
	// whole cluster to assemble at rank 0.
	DefaultRendezvousTimeout = 30 * time.Second
	// DefaultBarrierTimeout bounds one barrier wait.
	DefaultBarrierTimeout = 60 * time.Second
	// DefaultHeartbeatInterval is the period of the background liveness
	// prober.
	DefaultHeartbeatInterval = 50 * time.Millisecond
	// DefaultHeartbeatStrikes is how many consecutive failed heartbeats
	// mark a peer dead at the transport level.
	DefaultHeartbeatStrikes = 3
	// DefaultWindowFrames and DefaultWindowBytes are the per-link credit
	// of the windowed data path: at most this many unacked data frames /
	// unacked payload bytes may be in flight before a write blocks for a
	// cumulative ack. WindowFrames: 1 selects the legacy ack-per-frame
	// round trip.
	// DefaultWindowBytes is deliberately modest: loopback TCP throughput
	// collapses (~3x, measured) once roughly 1MiB of standing data sits
	// unread in the socket, so the byte credit keeps the standing queue in
	// the few-hundred-KiB sweet spot. Raise it (Config.WindowBytes or
	// maltrun -windowBytes) for high-BDP real networks.
	DefaultWindowFrames = 64
	DefaultWindowBytes  = 512 << 10
)

// Network names for Config.Network.
const (
	// NetworkTCP runs the stream over TCP (tcpnet wrapper).
	NetworkTCP = "tcp"
	// NetworkUnix runs the stream over Unix domain sockets (udsnet
	// wrapper); peer addresses are socket paths.
	NetworkUnix = "unix"
)

// Config describes one rank of a stream-transport cluster.
type Config struct {
	// Rank is this process's rank: an index into Peers.
	Rank int
	// Peers lists every rank's listen address; Peers[Rank] is ours.
	// Addresses must be unique. For NetworkTCP they are host:port pairs,
	// for NetworkUnix they are socket paths.
	Peers []string
	// Network selects the stream flavor: NetworkTCP (the default) or
	// NetworkUnix.
	Network string
	// Listener, when non-nil, is an already-bound listener to use instead
	// of binding Peers[Rank] (tests bind :0 first to learn free ports).
	Listener net.Listener

	// WindowFrames and WindowBytes bound the per-link window of unacked
	// data frames; zero selects the defaults. WindowFrames: 1 degenerates
	// to the legacy synchronous ack-per-frame write.
	WindowFrames int
	WindowBytes  int

	// DialTimeout, AckTimeout, RendezvousTimeout, BarrierTimeout and
	// HeartbeatInterval default to the package constants when zero.
	DialTimeout       time.Duration
	AckTimeout        time.Duration
	RendezvousTimeout time.Duration
	BarrierTimeout    time.Duration
	HeartbeatInterval time.Duration
	// HeartbeatStrikes is the consecutive-failure threshold; 0 means the
	// default, negative disables the background prober entirely (liveness
	// then changes only on refused dials during writes and probes).
	HeartbeatStrikes int
}

func (c Config) withDefaults() Config {
	if c.DialTimeout == 0 {
		c.DialTimeout = DefaultDialTimeout
	}
	if c.AckTimeout == 0 {
		c.AckTimeout = DefaultAckTimeout
	}
	if c.RendezvousTimeout == 0 {
		c.RendezvousTimeout = DefaultRendezvousTimeout
	}
	if c.BarrierTimeout == 0 {
		c.BarrierTimeout = DefaultBarrierTimeout
	}
	if c.HeartbeatInterval == 0 {
		c.HeartbeatInterval = DefaultHeartbeatInterval
	}
	if c.HeartbeatStrikes == 0 {
		c.HeartbeatStrikes = DefaultHeartbeatStrikes
	}
	if c.Network == "" {
		c.Network = NetworkTCP
	}
	if c.WindowFrames == 0 {
		c.WindowFrames = DefaultWindowFrames
	}
	if c.WindowBytes == 0 {
		c.WindowBytes = DefaultWindowBytes
	}
	return c
}

// Validate checks the cluster shape: rank in range, at least one peer,
// unique addresses.
func (c Config) Validate() error {
	if len(c.Peers) == 0 {
		return errors.New("stream: no peers configured")
	}
	if c.Rank < 0 || c.Rank >= len(c.Peers) {
		return fmt.Errorf("stream: rank %d out of range [0,%d)", c.Rank, len(c.Peers))
	}
	seen := make(map[string]int, len(c.Peers))
	for r, addr := range c.Peers {
		if addr == "" {
			return fmt.Errorf("stream: empty address for rank %d", r)
		}
		if prev, dup := seen[addr]; dup {
			return fmt.Errorf("stream: duplicate peer address %q (ranks %d and %d)", addr, prev, r)
		}
		seen[addr] = r
	}
	switch c.Network {
	case "", NetworkTCP, NetworkUnix:
	default:
		return fmt.Errorf("stream: unknown network %q (want %q or %q)", c.Network, NetworkTCP, NetworkUnix)
	}
	if c.WindowFrames < 0 {
		return fmt.Errorf("stream: WindowFrames %d is negative (0 means the default %d, 1 means ack-per-frame)", c.WindowFrames, DefaultWindowFrames)
	}
	if c.WindowBytes < 0 {
		return fmt.Errorf("stream: WindowBytes %d is negative (0 means the default %d)", c.WindowBytes, DefaultWindowBytes)
	}
	return nil
}

// Net is one rank's endpoint of a TCP cluster. It implements
// fabric.Transport and fabric.Coordinator. Build one per process with New,
// then call Rendezvous before any data operation.
type Net struct {
	cfg Config
	ln  net.Listener

	// gen is the membership epoch this rank stamps on outgoing frames.
	// The rendezvous base generation seeds it; rank 0 mints a higher epoch
	// on every confirmed death and every join, and a joiner adopts the
	// epoch its admission minted.
	gen           atomic.Uint64 // set at rendezvous or join (rank 0: at New)
	base          atomic.Uint64 // rendezvous base generation (pre-join admission floor)
	staleRejected atomic.Uint64 // frames fenced by the epoch check
	stats         *fabric.Stats
	coord         *coordinator // rank 0 only

	regMu sync.RWMutex
	regs  map[string]fabric.WriteHandler

	mu       sync.Mutex
	dead     []bool
	admitted []uint64 // admitted[r]: epoch at r's last admission; frames below it are fenced
	liveness []func(rank int, alive bool)
	joinedCb []func(rank int, epoch uint64)
	peers    []*peerConn
	hbMiss   []int // consecutive heartbeat failures per peer

	connMu sync.Mutex
	conns  map[net.Conn]struct{} // inbound connections, closed on Kill/Close

	bmu      sync.Mutex
	releases map[string]uint64 // per-barrier-name release counter

	// cbMu serializes liveness watcher invocation across the goroutines
	// that can observe a death (heartbeat, failed writes, receiver loops).
	cbMu sync.Mutex

	rdv rendezvous

	closeOnce sync.Once
	done      chan struct{}
	wg        sync.WaitGroup
}

type rendezvous struct {
	mu      sync.Mutex
	arrived map[int]bool
	ready   chan struct{} // closed when all ranks have arrived at rank 0
	begun   bool
}

// New binds this rank's listener and starts its receiver loop. The
// returned Net is not usable for data operations until Rendezvous has
// completed on every rank.
func New(cfg Config) (*Net, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	cfg = cfg.withDefaults()
	n := &Net{
		cfg:      cfg,
		regs:     make(map[string]fabric.WriteHandler),
		stats:    fabric.NewStats(len(cfg.Peers)),
		dead:     make([]bool, len(cfg.Peers)),
		admitted: make([]uint64, len(cfg.Peers)),
		peers:    make([]*peerConn, len(cfg.Peers)),
		hbMiss:   make([]int, len(cfg.Peers)),
		conns:    make(map[net.Conn]struct{}),
		done:     make(chan struct{}),
	}
	for i := range n.peers {
		n.peers[i] = &peerConn{}
		n.peers[i].data.n = n
		n.peers[i].data.to = i
	}
	n.rdv.arrived = map[int]bool{cfg.Rank: true}
	n.rdv.ready = make(chan struct{})
	if n.cfg.Rank == 0 {
		n.adoptBase(uint64(time.Now().UnixNano()))
		n.coord = newCoordinator(n)
		n.OnLivenessChange(func(rank int, alive bool) { n.coord.livenessChanged() })
		if len(cfg.Peers) == 1 {
			close(n.rdv.ready)
		}
	}
	ln := cfg.Listener
	if ln == nil {
		var err error
		ln, err = net.Listen(cfg.Network, cfg.Peers[cfg.Rank])
		if err != nil {
			return nil, fmt.Errorf("stream: rank %d listen on %s: %w", cfg.Rank, cfg.Peers[cfg.Rank], err)
		}
	}
	n.ln = ln
	n.wg.Add(1)
	go n.acceptLoop(ln)
	return n, nil
}

// Rank returns this endpoint's rank.
func (n *Net) Rank() int { return n.cfg.Rank }

// Addr returns the listener's actual address (useful with :0 listeners).
func (n *Net) Addr() string { return n.ln.Addr().String() }

// Generation returns the cluster generation (0 before rendezvous on
// non-zero ranks). Since the elastic-membership change this is the current
// membership epoch; Epoch is the canonical accessor.
func (n *Net) Generation() uint64 { return n.gen.Load() }

// adoptBase installs the rendezvous base generation: the epoch this rank
// stamps on frames and the admission floor for every member.
func (n *Net) adoptBase(gen uint64) {
	n.gen.Store(gen)
	n.base.Store(gen)
	n.mu.Lock()
	for i := range n.admitted {
		n.admitted[i] = gen
	}
	n.mu.Unlock()
}

// admittedOf returns the admission epoch of a rank; frames from it with a
// lower epoch are fenced. Out-of-range ranks fence everything.
func (n *Net) admittedOf(r int) uint64 {
	n.mu.Lock()
	defer n.mu.Unlock()
	if r < 0 || r >= len(n.admitted) {
		return ^uint64(0)
	}
	return n.admitted[r]
}

// Rendezvous performs the rank-0 handshake that forms the cluster: every
// rank announces itself to rank 0 and blocks until rank 0 has heard from
// all of them, then adopts the cluster generation rank 0 assigned. Call it
// once on every rank (concurrently) before any data operation.
func (n *Net) Rendezvous() error {
	deadline := time.Now().Add(n.cfg.RendezvousTimeout)
	if n.cfg.Rank == 0 {
		select {
		case <-n.rdv.ready:
			n.startHeartbeat()
			return nil
		case <-time.After(time.Until(deadline)):
			return fmt.Errorf("stream: rendezvous timed out after %v: arrived %v of %d ranks",
				n.cfg.RendezvousTimeout, n.arrivedRanks(), len(n.cfg.Peers))
		case <-n.done:
			return errors.New("stream: closed during rendezvous")
		}
	}
	// Other ranks: send hello to rank 0 and wait for the ack, redialing
	// patiently — rank 0's process may not be listening yet.
	hello := &Frame{Type: frameHello, From: n.cfg.Rank}
	for {
		ack, err := n.peers[0].request(n, 0, hello, deadline)
		if err == nil && ack.Type == frameHelloAck {
			n.adoptBase(ack.Gen)
			n.startHeartbeat()
			return nil
		}
		if time.Now().After(deadline) {
			if err == nil {
				err = fmt.Errorf("unexpected reply type %d", ack.Type)
			}
			return fmt.Errorf("stream: rendezvous with rank 0 (%s) timed out after %v: %w",
				n.cfg.Peers[0], n.cfg.RendezvousTimeout, err)
		}
		select {
		case <-n.done:
			return errors.New("stream: closed during rendezvous")
		case <-time.After(100 * time.Millisecond):
		}
	}
}

func (n *Net) arrivedRanks() []int {
	n.rdv.mu.Lock()
	defer n.rdv.mu.Unlock()
	out := make([]int, 0, len(n.rdv.arrived))
	for r := range n.rdv.arrived {
		out = append(out, r)
	}
	sort.Ints(out)
	return out
}

// helloArrived records a rendezvous hello at rank 0 and returns a channel
// that is closed once the whole cluster has arrived.
func (n *Net) helloArrived(from int) <-chan struct{} {
	n.rdv.mu.Lock()
	defer n.rdv.mu.Unlock()
	if from >= 0 && from < len(n.cfg.Peers) {
		n.rdv.arrived[from] = true
	}
	if len(n.rdv.arrived) == len(n.cfg.Peers) && !n.rdv.begun {
		n.rdv.begun = true
		close(n.rdv.ready)
	}
	return n.rdv.ready
}

// --- fabric.Transport ---

// Ranks returns the cluster size.
func (n *Net) Ranks() int { return len(n.cfg.Peers) }

// Stats returns measured per-link traffic counters. Unlike the simulated
// fabric's modeled costs, wire time here is wall time of the acked round
// trip.
func (n *Net) Stats() *fabric.Stats { return n.stats }

// Register installs remotely writable memory on the local rank. Remote
// ranks register in their own processes.
func (n *Net) Register(rank int, key string, h fabric.WriteHandler) error {
	if rank != n.cfg.Rank {
		return fmt.Errorf("stream: cannot register %q on remote rank %d from rank %d", key, rank, n.cfg.Rank)
	}
	if h == nil {
		return fmt.Errorf("stream: nil handler for %q on rank %d", key, rank)
	}
	if len(key) > MaxKeyLen {
		return fmt.Errorf("stream: key %q exceeds %d bytes", key, MaxKeyLen)
	}
	n.regMu.Lock()
	defer n.regMu.Unlock()
	n.regs[key] = h
	return nil
}

// Unregister removes locally registered memory.
func (n *Net) Unregister(rank int, key string) error {
	if rank != n.cfg.Rank {
		return fmt.Errorf("stream: cannot unregister %q on remote rank %d from rank %d", key, rank, n.cfg.Rank)
	}
	n.regMu.Lock()
	defer n.regMu.Unlock()
	delete(n.regs, key)
	return nil
}

// Write performs one one-sided write: a single data frame posted into the
// peer link's window. In windowed mode (WindowFrames > 1) it returns once
// the frame is on the socket with window credit held; deposit failures
// surface on a later Write to the same link, or at Drain/Barrier, via the
// cumulative-ack status. With WindowFrames: 1 it blocks for the covering
// ack and reports that frame's status synchronously, like the legacy
// ack-per-frame path.
func (n *Net) Write(from, to int, key string, payload []byte) error {
	// The single payload is passed down unwrapped: the link wraps it in a
	// reusable one-element slice under its lock, keeping the steady-state
	// send path allocation-free.
	return n.write(from, to, key, payload, nil, false)
}

// WriteBatch sends several records for one key in a single frame covered
// by a single cumulative ack — the wire form of the doorbell-batched post.
func (n *Net) WriteBatch(from, to int, key string, records [][]byte) error {
	if len(records) == 0 {
		return nil
	}
	return n.write(from, to, key, nil, records, true)
}

// write routes one post to the peer's data link. records == nil means a
// single-record write with payload as the record.
func (n *Net) write(from, to int, key string, payload []byte, records [][]byte, batch bool) error {
	if err := n.checkRank(from); err != nil {
		return err
	}
	if err := n.checkRank(to); err != nil {
		return err
	}
	if from != n.cfg.Rank {
		return fmt.Errorf("stream: write from rank %d issued by rank %d", from, n.cfg.Rank)
	}
	if !n.Alive(from) {
		return fabric.ErrSenderDead
	}
	if !n.Alive(to) {
		n.stats.AddFailed(from, to)
		return fmt.Errorf("%w: rank %d -> rank %d", fabric.ErrUnreachable, from, to)
	}
	err := n.peers[to].data.post(key, payload, records, batch)
	if err != nil && errors.Is(err, fabric.ErrUnreachable) {
		n.stats.AddFailed(from, to)
	}
	return err
}

// Drain blocks until every data link's window is empty — every posted
// frame cumulatively acked — and returns the first deferred write error it
// consumes. Links to peers already known dead are discarded instead of
// drained: their failures were accounted when the death was observed.
func (n *Net) Drain() error {
	var first error
	for r, p := range n.peers {
		if r == n.cfg.Rank {
			continue
		}
		if !n.Alive(r) {
			p.data.discard()
			continue
		}
		if err := p.data.drain(); err != nil && first == nil {
			first = err
		}
	}
	return first
}

// Ping performs a synchronous health probe. With from equal to the local
// rank it is a direct ping; with a remote from it is delegated — rank from
// is asked to probe to from its own vantage point, which is how the fault
// monitor's confirmation protocol gathers independent evidence across
// processes.
func (n *Net) Ping(from, to int) error {
	if err := n.checkRank(from); err != nil {
		return err
	}
	if err := n.checkRank(to); err != nil {
		return err
	}
	if from == n.cfg.Rank {
		return n.localPing(to)
	}
	return n.delegatedPing(from, to)
}

func (n *Net) localPing(to int) error {
	if !n.Alive(n.cfg.Rank) {
		return fabric.ErrSenderDead
	}
	if to == n.cfg.Rank {
		return nil
	}
	if !n.Alive(to) {
		return fmt.Errorf("%w: ping rank %d -> rank %d", fabric.ErrUnreachable, n.cfg.Rank, to)
	}
	start := time.Now()
	ack, err := n.request(to, &Frame{Type: framePing, From: n.cfg.Rank, Gen: n.gen.Load()})
	n.stats.AddControl(n.cfg.Rank, to, time.Since(start))
	if err != nil {
		return err
	}
	if ackStatus(ack) != statusOK {
		return fmt.Errorf("%w: ping rank %d -> rank %d", fabric.ErrUnreachable, n.cfg.Rank, to)
	}
	return nil
}

func (n *Net) delegatedPing(from, to int) error {
	if !n.Alive(n.cfg.Rank) {
		return fabric.ErrSenderDead
	}
	target := make([]byte, 4)
	target[0] = byte(to)
	target[1] = byte(to >> 8)
	target[2] = byte(to >> 16)
	target[3] = byte(to >> 24)
	start := time.Now()
	probe := &Frame{Type: frameProbe, From: n.cfg.Rank, Gen: n.gen.Load(), Records: [][]byte{target}}
	ack, err := n.request(from, probe)
	n.stats.AddControl(n.cfg.Rank, from, time.Since(start))
	if err != nil {
		// Could not reach the helper at all; the classification of that
		// failure (transient vs refused) is the verdict.
		return err
	}
	switch ackStatus(ack) {
	case statusOK:
		return nil
	case statusTransient:
		return fmt.Errorf("%w: delegated ping rank %d -> rank %d", fabric.ErrTransient, from, to)
	case statusDead:
		return fabric.ErrSenderDead
	default:
		return fmt.Errorf("%w: delegated ping rank %d -> rank %d", fabric.ErrUnreachable, from, to)
	}
}

// Kill marks the local rank dead: its listener closes, its connections
// drop, and subsequent operations fail with ErrSenderDead — the closest a
// live process can come to crashing without exiting. Peers observe the
// death through refused connections, exactly as if the process had died.
// Killing a remote rank is not possible over a real network.
func (n *Net) Kill(rank int) error {
	if err := n.checkRank(rank); err != nil {
		return err
	}
	if rank != n.cfg.Rank {
		return fmt.Errorf("stream: rank %d cannot kill remote rank %d (only the local rank)", n.cfg.Rank, rank)
	}
	n.markDead(rank)
	n.ln.Close()
	n.mu.Lock()
	peers := append([]*peerConn(nil), n.peers...)
	n.mu.Unlock()
	for _, pc := range peers {
		pc.closeConn()
	}
	n.closeInbound()
	return nil
}

// trackConn records an inbound connection so shutdown can interrupt its
// serving goroutine; it reports false when the endpoint is already down.
func (n *Net) trackConn(c net.Conn) bool {
	n.connMu.Lock()
	defer n.connMu.Unlock()
	select {
	case <-n.done:
		return false
	default:
	}
	n.conns[c] = struct{}{}
	return true
}

func (n *Net) untrackConn(c net.Conn) {
	n.connMu.Lock()
	delete(n.conns, c)
	n.connMu.Unlock()
}

func (n *Net) closeInbound() {
	n.connMu.Lock()
	for c := range n.conns {
		c.Close()
	}
	n.connMu.Unlock()
}

// Alive reports whether this process believes rank is alive.
func (n *Net) Alive(rank int) bool {
	n.mu.Lock()
	defer n.mu.Unlock()
	return rank >= 0 && rank < len(n.cfg.Peers) && !n.dead[rank]
}

// AliveRanks returns the sorted ranks this process believes alive.
func (n *Net) AliveRanks() []int {
	n.mu.Lock()
	defer n.mu.Unlock()
	var out []int
	for r, d := range n.dead {
		if !d {
			out = append(out, r)
		}
	}
	return out
}

// GroupOf returns 0: a real network has no partition simulation; actual
// partitions surface as unreachable peers.
func (n *Net) GroupOf(rank int) int { return 0 }

// OnLivenessChange registers a watcher for transport-level death
// observations.
func (n *Net) OnLivenessChange(fn func(rank int, alive bool)) {
	n.mu.Lock()
	defer n.mu.Unlock()
	n.liveness = append(n.liveness, fn)
}

// markDead records a death observation and fires the watchers once. Rank 0
// — the membership authority — additionally mints a new epoch on every
// confirmed peer death, so a later rejoin of the same rank is admitted at
// an epoch strictly above anything its old incarnation ever stamped.
func (n *Net) markDead(rank int) {
	n.mu.Lock()
	if rank < 0 || rank >= len(n.dead) || n.dead[rank] {
		n.mu.Unlock()
		return
	}
	n.dead[rank] = true
	if n.cfg.Rank == 0 && rank != n.cfg.Rank {
		n.gen.Add(1)
	}
	watchers := append([]func(int, bool){}, n.liveness...)
	n.mu.Unlock()
	n.cbMu.Lock()
	for _, w := range watchers {
		w(rank, false)
	}
	n.cbMu.Unlock()
}

// admitJoin installs a rank's (re-)admission at the given epoch: its
// admission floor rises to the epoch, it is marked alive with heartbeat
// strikes cleared, and liveness + join watchers fire (serialized with
// markDead's under cbMu). Idempotent per epoch, so a retried announce is
// harmless.
func (n *Net) admitJoin(rank int, epoch uint64) {
	n.mu.Lock()
	if rank < 0 || rank >= len(n.dead) || (n.admitted[rank] >= epoch && !n.dead[rank]) {
		n.mu.Unlock()
		return
	}
	if n.admitted[rank] < epoch {
		n.admitted[rank] = epoch
	}
	wasDead := n.dead[rank]
	n.dead[rank] = false
	n.hbMiss[rank] = 0
	watchers := append([]func(int, bool){}, n.liveness...)
	joiners := append([]func(int, uint64){}, n.joinedCb...)
	n.mu.Unlock()
	n.cbMu.Lock()
	if wasDead {
		for _, w := range watchers {
			w(rank, true)
		}
	}
	for _, j := range joiners {
		j(rank, epoch)
	}
	n.cbMu.Unlock()
}

// Close shuts the endpoint down: listener, connections, heartbeat.
func (n *Net) Close() error {
	n.closeOnce.Do(func() {
		close(n.done)
		n.ln.Close()
		n.mu.Lock()
		peers := append([]*peerConn(nil), n.peers...)
		n.mu.Unlock()
		for _, pc := range peers {
			pc.closeConn()
		}
		n.closeInbound()
	})
	n.wg.Wait()
	return nil
}

func (n *Net) checkRank(rank int) error {
	if rank < 0 || rank >= len(n.cfg.Peers) {
		return fmt.Errorf("stream: rank %d out of range [0,%d)", rank, len(n.cfg.Peers))
	}
	return nil
}

// request performs one acked round trip to a peer with the configured
// deadline.
func (n *Net) request(to int, f *Frame) (*Frame, error) {
	return n.peers[to].request(n, to, f, time.Now().Add(n.cfg.AckTimeout))
}

func ackStatus(ack *Frame) byte {
	if ack == nil || ack.Type != frameAck || len(ack.Records) != 1 || len(ack.Records[0]) != 1 {
		return 0xff
	}
	return ack.Records[0][0]
}

// startHeartbeat launches the background liveness prober: a failed probe
// is a strike, HeartbeatStrikes consecutive strikes mark the peer dead and
// fire the liveness watchers. A refused connection is immediate death —
// nobody is listening on the peer's port.
func (n *Net) startHeartbeat() {
	if n.cfg.HeartbeatStrikes < 0 {
		return
	}
	n.wg.Add(1)
	go func() {
		defer n.wg.Done()
		ticker := time.NewTicker(n.cfg.HeartbeatInterval)
		defer ticker.Stop()
		for {
			select {
			case <-n.done:
				return
			case <-ticker.C:
			}
			if !n.Alive(n.cfg.Rank) {
				return
			}
			for r := range n.cfg.Peers {
				if r == n.cfg.Rank || !n.Alive(r) {
					continue
				}
				ack, err := n.request(r, &Frame{Type: framePing, From: n.cfg.Rank, Gen: n.gen.Load()})
				n.mu.Lock()
				if err == nil && ackStatus(ack) == statusOK {
					n.hbMiss[r] = 0
					n.mu.Unlock()
					continue
				}
				n.hbMiss[r]++
				refused := errors.Is(err, fabric.ErrUnreachable)
				strikeOut := n.hbMiss[r] >= n.cfg.HeartbeatStrikes
				n.mu.Unlock()
				if refused || strikeOut || (err == nil && ackStatus(ack) == statusDead) {
					n.markDead(r)
				}
			}
		}
	}()
}
