package stream

import (
	"errors"
	"fmt"
	"sync"
	"time"

	"malt/internal/fabric"
)

// coordinator is the rank-0 barrier service. Every rank (rank 0 included)
// enters a named barrier by reporting to the coordinator; when all
// transport-alive ranks have entered, the coordinator releases everyone
// who entered and resets the barrier for its next use. Deaths observed by
// rank 0's transport re-evaluate pending barriers, so survivors are
// released when membership shrinks — the multi-process analogue of the
// in-process barrier's death pruning.
type coordinator struct {
	n *Net

	mu       sync.Mutex
	barriers map[string]*barrierEntry
}

type barrierEntry struct {
	entered map[int]bool
}

func newCoordinator(n *Net) *coordinator {
	return &coordinator{n: n, barriers: make(map[string]*barrierEntry)}
}

// enter records a rank's arrival and releases the barrier if complete.
func (c *coordinator) enter(name string, from int) {
	c.mu.Lock()
	st := c.barriers[name]
	if st == nil {
		st = &barrierEntry{entered: make(map[int]bool)}
		c.barriers[name] = st
	}
	st.entered[from] = true
	c.evalLocked(name, st)
	c.mu.Unlock()
}

// livenessChanged re-evaluates every pending barrier after a death.
func (c *coordinator) livenessChanged() {
	c.mu.Lock()
	for name, st := range c.barriers {
		c.evalLocked(name, st)
	}
	c.mu.Unlock()
}

// evalLocked releases the barrier when every alive rank has entered. The
// release fan-out runs on its own goroutine: it performs network writes
// and must not hold the coordinator lock (or, on the liveness path, the
// watcher lock).
func (c *coordinator) evalLocked(name string, st *barrierEntry) {
	alive := c.n.AliveRanks()
	if len(alive) == 0 {
		return
	}
	for _, r := range alive {
		if !st.entered[r] {
			return
		}
	}
	targets := make([]int, 0, len(st.entered))
	for r := range st.entered {
		targets = append(targets, r)
	}
	st.entered = make(map[int]bool)
	go c.n.sendReleases(name, targets)
}

// sendReleases notifies every entered rank that the barrier released.
// Failures are ignored: an unreachable target is either already dead (and
// was released by the membership change) or will be marked dead by the
// classification, re-triggering evaluation.
func (n *Net) sendReleases(name string, targets []int) {
	f := &Frame{Type: frameBarrierRelease, From: n.cfg.Rank, Gen: n.gen.Load(), Key: name}
	for _, to := range targets {
		if to == n.cfg.Rank {
			n.barrierReleased(name)
			continue
		}
		_, _ = n.peers[to].request(n, to, f, time.Now().Add(n.cfg.AckTimeout))
	}
}

// barrierReleased bumps the local release counter for a barrier name,
// waking any waiter.
func (n *Net) barrierReleased(name string) {
	n.bmu.Lock()
	if n.releases == nil {
		n.releases = make(map[string]uint64)
	}
	n.releases[name]++
	n.bmu.Unlock()
}

func (n *Net) released(name string) uint64 {
	n.bmu.Lock()
	defer n.bmu.Unlock()
	return n.releases[name]
}

// Barrier implements fabric.Coordinator: it blocks until every rank this
// transport believes alive has entered the barrier with the same name.
// dstorm delegates its named barriers (segment creation, BSP supersteps)
// here when the cluster spans processes. The wait polls the local release
// counter — the control-plane analogue of one-sided completion: rank 0
// deposits the release, the waiter discovers it by reading its own state.
func (n *Net) Barrier(name string, rank int) error {
	if rank != n.cfg.Rank {
		return fmt.Errorf("stream: barrier for rank %d entered on rank %d", rank, n.cfg.Rank)
	}
	if !n.Alive(rank) {
		return fmt.Errorf("%w: barrier %q", fabric.ErrSenderDead, name)
	}
	// Drain every data window before entering: a barrier release must
	// prove that every pre-barrier write deposited on its receiver, which
	// is what the BSP superstep contract reads into Barrier. Deferred
	// write errors surface here instead of on a later Write.
	if err := n.Drain(); err != nil {
		return fmt.Errorf("stream: barrier %q: deferred write error: %w", name, err)
	}
	seq := n.released(name)
	deadline := time.Now().Add(n.cfg.BarrierTimeout)
	if n.cfg.Rank == 0 {
		n.coord.enter(name, 0)
	} else if err := n.enterRemote(name, deadline); err != nil {
		return err
	}
	for {
		if n.released(name) > seq {
			return nil
		}
		if !n.Alive(n.cfg.Rank) {
			return fmt.Errorf("%w: barrier %q", fabric.ErrSenderDead, name)
		}
		if !n.Alive(0) {
			return fmt.Errorf("%w: barrier %q: coordinator (rank 0) is dead", fabric.ErrUnreachable, name)
		}
		if time.Now().After(deadline) {
			return fmt.Errorf("stream: barrier %q timed out after %v on rank %d", name, n.cfg.BarrierTimeout, n.cfg.Rank)
		}
		time.Sleep(200 * time.Microsecond) //maltlint:allow rawsleep -- transport-internal release poll, deadline-bounded above; below dstorm so RetryPolicy cannot apply
	}
}

// enterRemote reports arrival to the rank-0 coordinator, retrying
// transient failures until the barrier deadline.
func (n *Net) enterRemote(name string, deadline time.Time) error {
	f := &Frame{Type: frameBarrierEnter, From: n.cfg.Rank, Gen: n.gen.Load(), Key: name}
	for {
		ack, err := n.peers[0].request(n, 0, f, time.Now().Add(n.cfg.AckTimeout))
		if err == nil {
			switch ackStatus(ack) {
			case statusOK:
				return nil
			case statusStaleEpoch:
				return fmt.Errorf("%w: barrier %q: coordinator fenced this rank's epoch; rejoin required", fabric.ErrStaleEpoch, name)
			case statusDead:
				return fmt.Errorf("%w: barrier %q: coordinator (rank 0) is dead", fabric.ErrUnreachable, name)
			default:
				return fmt.Errorf("stream: barrier %q: unexpected coordinator reply", name)
			}
		}
		if !errors.Is(err, fabric.ErrTransient) || time.Now().After(deadline) {
			return err
		}
		time.Sleep(2 * time.Millisecond) //maltlint:allow rawsleep -- transport-internal redial backoff, deadline-bounded above; below dstorm so RetryPolicy cannot apply
	}
}

// serveBarrierEnter handles a barrierEnter frame at rank 0.
func (n *Net) serveBarrierEnter(f *Frame) byte {
	if n.cfg.Rank != 0 || n.coord == nil {
		return statusTransient // misdirected: only rank 0 coordinates
	}
	if !n.Alive(n.cfg.Rank) {
		return statusDead
	}
	if f.Gen < n.admittedOf(f.From) {
		n.staleRejected.Add(1)
		return statusStaleEpoch
	}
	n.coord.enter(f.Key, f.From)
	return statusOK
}
