package stream

import (
	"bytes"
	"errors"
	"fmt"
	"net"
	"path/filepath"
	"sync/atomic"
	"testing"
	"time"

	"malt/internal/fabric"
)

// newUnixTestCluster is newTestCluster over Unix domain sockets: peer
// addresses are socket paths under the test's temp dir. No pre-bound
// listeners are needed — the paths are known before any Net exists.
func newUnixTestCluster(t *testing.T, n int, mutate func(*Config)) []*Net {
	t.Helper()
	dir := t.TempDir()
	addrs := make([]string, n)
	for i := range addrs {
		addrs[i] = filepath.Join(dir, fmt.Sprintf("r%d.sock", i))
	}
	nets := make([]*Net, n)
	for i := range nets {
		cfg := Config{
			Rank:              i,
			Peers:             addrs,
			Network:           NetworkUnix,
			DialTimeout:       time.Second,
			AckTimeout:        2 * time.Second,
			RendezvousTimeout: 10 * time.Second,
			BarrierTimeout:    10 * time.Second,
			HeartbeatInterval: 10 * time.Millisecond,
		}
		if mutate != nil {
			mutate(&cfg)
		}
		nt, err := New(cfg)
		if err != nil {
			t.Fatalf("rank %d: New: %v", i, err)
		}
		nets[i] = nt
	}
	t.Cleanup(func() {
		for _, nt := range nets {
			nt.Close()
		}
	})
	errs := make(chan error, n)
	for _, nt := range nets {
		go func(nt *Net) { errs <- nt.Rendezvous() }(nt)
	}
	for range nets {
		if err := <-errs; err != nil {
			t.Fatalf("rendezvous: %v", err)
		}
	}
	return nets
}

// TestWindowedDeferredErrors exercises the pipelined error contract: a
// windowed Write returns before the deposit, so a deposit failure surfaces
// on Drain (or a later Write) mapped onto the same fabric taxonomy the
// synchronous path uses — and the sticky error is consumed exactly once.
func TestWindowedDeferredErrors(t *testing.T) {
	nets := newTestCluster(t, 2)

	// Unregistered key: the write itself is accepted into the window.
	if err := nets[0].Write(0, 1, "nope", []byte("x")); err != nil {
		t.Fatalf("windowed write to unregistered key: %v", err)
	}
	if err := nets[0].Drain(); !errors.Is(err, fabric.ErrNotRegistered) {
		t.Fatalf("drain after unregistered write: want ErrNotRegistered, got %v", err)
	}
	// Consumed: the link is clean again.
	if err := nets[0].Drain(); err != nil {
		t.Fatalf("drain after consuming error: %v", err)
	}

	// Handler failure maps to the generic handler error.
	if err := nets[1].Register(1, "boom", func(int, []byte) error { return errors.New("kaput") }); err != nil {
		t.Fatal(err)
	}
	if err := nets[0].Write(0, 1, "boom", []byte("x")); err != nil {
		t.Fatalf("windowed write to failing handler: %v", err)
	}
	err := nets[0].Drain()
	if err == nil || !bytes.Contains([]byte(err.Error()), []byte("write handler")) {
		t.Fatalf("drain after handler failure: want handler error, got %v", err)
	}

	// A healthy write after the error still lands: the window recovered.
	got := make(chan []byte, 1)
	if err := nets[1].Register(1, "ok", func(_ int, p []byte) error {
		got <- append([]byte(nil), p...)
		return nil
	}); err != nil {
		t.Fatal(err)
	}
	if err := nets[0].Write(0, 1, "ok", []byte("fine")); err != nil {
		t.Fatalf("write after recovery: %v", err)
	}
	if err := nets[0].Drain(); err != nil {
		t.Fatalf("drain after recovery: %v", err)
	}
	select {
	case p := <-got:
		if string(p) != "fine" {
			t.Fatalf("deposited %q, want %q", p, "fine")
		}
	case <-time.After(5 * time.Second):
		t.Fatal("recovery write never deposited")
	}
}

// TestWindowedStaleEpochDeferred pins the epoch fence on the pipelined
// path: the receiver rejects the zombie frame and the sender learns it at
// Drain as ErrStaleEpoch.
func TestWindowedStaleEpochDeferred(t *testing.T) {
	nets := newTestCluster(t, 2)
	if err := nets[1].Register(1, "w", func(int, []byte) error { return nil }); err != nil {
		t.Fatal(err)
	}
	nets[0].gen.Store(nets[0].gen.Load() - 1)
	if err := nets[0].Write(0, 1, "w", []byte("x")); err != nil {
		t.Fatalf("windowed stale write: %v", err)
	}
	if err := nets[0].Drain(); !errors.Is(err, fabric.ErrStaleEpoch) {
		t.Fatalf("drain after stale write: want ErrStaleEpoch, got %v", err)
	}
	if got := nets[1].StaleEpochRejected(); got != 1 {
		t.Fatalf("receiver StaleEpochRejected() = %d, want 1", got)
	}
}

// TestWindowBackpressure forces credit exhaustion with a tiny window and
// checks that every frame still deposits in order, stalls are counted, and
// the in-flight gauges return to zero after drain.
func TestWindowBackpressure(t *testing.T) {
	nets := newTestClusterCfg(t, 2, func(c *Config) {
		c.WindowFrames = 2
		c.WindowBytes = 4096
	})
	var deposited atomic.Int64
	var lastLen atomic.Int64
	if err := nets[1].Register(1, "bulk", func(_ int, p []byte) error {
		deposited.Add(1)
		lastLen.Store(int64(len(p)))
		return nil
	}); err != nil {
		t.Fatal(err)
	}
	payload := make([]byte, 2048)
	const frames = 200
	for i := 0; i < frames; i++ {
		//maltlint:allow bufretain -- stream.Write copies the payload into a pooled frame buffer before returning; reuse cannot race the wire
		if err := nets[0].Write(0, 1, "bulk", payload); err != nil {
			t.Fatalf("write %d: %v", i, err)
		}
	}
	if err := nets[0].Drain(); err != nil {
		t.Fatalf("drain: %v", err)
	}
	if got := deposited.Load(); got != frames {
		t.Fatalf("deposited %d frames, want %d", got, frames)
	}
	if got := lastLen.Load(); got != int64(len(payload)) {
		t.Fatalf("last deposit %d bytes, want %d", got, len(payload))
	}
	st := nets[0].Stats()
	if st.WindowStalls() == 0 {
		t.Fatal("tiny window never stalled; backpressure not engaged")
	}
	if st.CumAcks() == 0 {
		t.Fatal("no cumulative acks recorded")
	}
	if f, b := st.InFlightFrames(0, 1), st.InFlightBytes(0, 1); f != 0 || b != 0 {
		t.Fatalf("in-flight after drain = %d frames / %d bytes, want 0/0", f, b)
	}
}

// TestFloodDoesNotStarveControlPlane is the control-plane priority
// regression: bulk data saturates the data link while heartbeats run on
// the dedicated control connection with a short probe budget. A shared
// connection would queue probes behind megabytes of frames and blow the
// ack timeout into K strikes; the split must yield zero suspicion.
func TestFloodDoesNotStarveControlPlane(t *testing.T) {
	var events atomic.Int64
	nets := newTestClusterCfg(t, 2, func(c *Config) {
		c.AckTimeout = 300 * time.Millisecond
		c.HeartbeatInterval = 10 * time.Millisecond
		c.HeartbeatStrikes = 3
	})
	for _, nt := range nets {
		nt.OnLivenessChange(func(int, bool) { events.Add(1) })
	}
	if err := nets[1].Register(1, "flood", func(int, []byte) error { return nil }); err != nil {
		t.Fatal(err)
	}
	payload := make([]byte, 64<<10)
	stop := time.Now().Add(1500 * time.Millisecond)
	for time.Now().Before(stop) {
		//maltlint:allow bufretain -- stream.Write copies the payload into a pooled frame buffer before returning; reuse cannot race the wire
		if err := nets[0].Write(0, 1, "flood", payload); err != nil {
			t.Fatalf("flood write: %v", err)
		}
	}
	if err := nets[0].Drain(); err != nil {
		t.Fatalf("drain: %v", err)
	}
	// A direct probe mid-traffic must also answer inside the short budget.
	if err := nets[0].Ping(0, 1); err != nil {
		t.Fatalf("ping during flood aftermath: %v", err)
	}
	if got := events.Load(); got != 0 {
		t.Fatalf("liveness watcher fired %d times during flood, want 0 (spurious suspicion)", got)
	}
	for r := 0; r < 2; r++ {
		if !nets[0].Alive(r) || !nets[1].Alive(r) {
			t.Fatalf("rank %d suspected during flood", r)
		}
	}
}

// TestSendSteadyStateAllocs locks in the zero-alloc send path: once pools
// are warm, a windowed Write must not allocate. Heartbeats are disabled so
// background probe traffic cannot pollute the measurement.
func TestSendSteadyStateAllocs(t *testing.T) {
	if raceEnabled {
		t.Skip("race detector instrumentation allocates; alloc counts are meaningless")
	}
	nets := newTestClusterCfg(t, 2, func(c *Config) {
		c.HeartbeatStrikes = -1
	})
	if err := nets[1].Register(1, "hot", func(int, []byte) error { return nil }); err != nil {
		t.Fatal(err)
	}
	payload := make([]byte, 4096)
	// Warm the pools: encode buffers, pending slice, receiver scratch,
	// key-cache interning.
	for i := 0; i < 2000; i++ {
		//maltlint:allow bufretain -- stream.Write copies the payload into a pooled frame buffer before returning; reuse cannot race the wire
		if err := nets[0].Write(0, 1, "hot", payload); err != nil {
			t.Fatalf("warmup write %d: %v", i, err)
		}
	}
	if err := nets[0].Drain(); err != nil {
		t.Fatalf("warmup drain: %v", err)
	}
	avg := testing.AllocsPerRun(500, func() {
		if err := nets[0].Write(0, 1, "hot", payload); err != nil {
			t.Fatalf("measured write: %v", err)
		}
	})
	if err := nets[0].Drain(); err != nil {
		t.Fatalf("post-measure drain: %v", err)
	}
	if avg >= 1 {
		t.Fatalf("steady-state Write allocates %.2f objects/op, want 0", avg)
	}
}

// TestUnixClusterWriteAndBarrier runs the core data-plane contract over
// the Unix-socket flavor: deposits land, batches coalesce, barriers
// release — same protocol, different transport.
func TestUnixClusterWriteAndBarrier(t *testing.T) {
	nets := newUnixTestCluster(t, 3, nil)
	var sum atomic.Int64
	if err := nets[1].Register(1, "w", func(_ int, p []byte) error {
		sum.Add(int64(len(p)))
		return nil
	}); err != nil {
		t.Fatal(err)
	}
	if err := nets[0].Write(0, 1, "w", []byte("abcd")); err != nil {
		t.Fatalf("uds write: %v", err)
	}
	if err := nets[2].WriteBatch(2, 1, "w", [][]byte{[]byte("ef"), []byte("gh")}); err != nil {
		t.Fatalf("uds write batch: %v", err)
	}
	if err := nets[0].Drain(); err != nil {
		t.Fatalf("uds drain rank 0: %v", err)
	}
	if err := nets[2].Drain(); err != nil {
		t.Fatalf("uds drain rank 2: %v", err)
	}
	if got := sum.Load(); got != 8 {
		t.Fatalf("deposited %d payload bytes, want 8", got)
	}
	errs := make(chan error, len(nets))
	for _, nt := range nets {
		go func(nt *Net) { errs <- nt.Barrier("uds-step", nt.Rank()) }(nt)
	}
	for range nets {
		if err := <-errs; err != nil {
			t.Fatalf("uds barrier: %v", err)
		}
	}
}

// TestUnixClusterSyncErrors pins the WindowFrames=1 legacy semantics on
// the Unix flavor too: error mapping is transport-independent.
func TestUnixClusterSyncErrors(t *testing.T) {
	nets := newUnixTestCluster(t, 2, func(c *Config) { c.WindowFrames = 1 })
	if err := nets[0].Write(0, 1, "nope", []byte("x")); !errors.Is(err, fabric.ErrNotRegistered) {
		t.Fatalf("uds unregistered write: want ErrNotRegistered, got %v", err)
	}
}

// BenchmarkStreamWrite measures the send path per-op cost and allocation
// count in-process over loopback TCP: windowed vs ack-per-frame, small vs
// large payloads. The windowed/1KiB case is the headline: the legacy path
// pays a full RTT per frame there.
func BenchmarkStreamWrite(b *testing.B) {
	for _, bc := range []struct {
		name   string
		window int
		size   int
	}{
		{"acked/1KiB", 1, 1 << 10},
		{"windowed/1KiB", 0, 1 << 10},
		{"acked/64KiB", 1, 64 << 10},
		{"windowed/64KiB", 0, 64 << 10},
	} {
		b.Run(bc.name, func(b *testing.B) {
			nets := newBenchCluster(b, bc.window)
			if err := nets[1].Register(1, "bench", func(int, []byte) error { return nil }); err != nil {
				b.Fatal(err)
			}
			payload := make([]byte, bc.size)
			for i := 0; i < 100; i++ { // warm pools before measuring
				//maltlint:allow bufretain -- stream.Write copies the payload into a pooled frame buffer before returning; reuse cannot race the wire
				if err := nets[0].Write(0, 1, "bench", payload); err != nil {
					b.Fatal(err)
				}
			}
			if err := nets[0].Drain(); err != nil {
				b.Fatal(err)
			}
			b.SetBytes(int64(bc.size))
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				//maltlint:allow bufretain -- stream.Write copies the payload into a pooled frame buffer before returning; reuse cannot race the wire
				if err := nets[0].Write(0, 1, "bench", payload); err != nil {
					b.Fatal(err)
				}
			}
			if err := nets[0].Drain(); err != nil {
				b.Fatal(err)
			}
			b.StopTimer()
		})
	}
}

// newBenchCluster builds a 2-rank loopback TCP pair with heartbeats
// disabled so probe traffic stays out of the measurement.
func newBenchCluster(b *testing.B, windowFrames int) []*Net {
	b.Helper()
	listeners := make([]net.Listener, 2)
	addrs := make([]string, 2)
	for i := range listeners {
		ln, err := net.Listen("tcp", "127.0.0.1:0")
		if err != nil {
			b.Fatalf("rank %d: listen: %v", i, err)
		}
		listeners[i] = ln
		addrs[i] = ln.Addr().String()
	}
	nets := make([]*Net, 2)
	for i := range nets {
		nt, err := New(Config{
			Rank:              i,
			Peers:             addrs,
			Listener:          listeners[i],
			WindowFrames:      windowFrames,
			DialTimeout:       time.Second,
			AckTimeout:        5 * time.Second,
			RendezvousTimeout: 10 * time.Second,
			BarrierTimeout:    10 * time.Second,
			HeartbeatStrikes:  -1,
		})
		if err != nil {
			b.Fatalf("rank %d: New: %v", i, err)
		}
		nets[i] = nt
	}
	b.Cleanup(func() {
		for _, nt := range nets {
			nt.Close()
		}
	})
	errs := make(chan error, 2)
	for _, nt := range nets {
		go func(nt *Net) { errs <- nt.Rendezvous() }(nt)
	}
	for range nets {
		if err := <-errs; err != nil {
			b.Fatalf("rendezvous: %v", err)
		}
	}
	return nets
}
