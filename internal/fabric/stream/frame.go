// Package stream is the framed-stream core shared by the real-socket
// backends of the fabric.Transport contract: tcpnet (TCP) and udsnet (Unix
// domain sockets) are thin wrappers that pick the network. It emulates
// MALT's one-sided RDMA writes over persistent pooled connections between
// OS processes.
//
// What the emulation preserves from the one-sided model:
//
//   - The receiver's training loop never participates in a write. Each
//     inbound connection is served by one goroutine — the moral equivalent
//     of the NIC's DMA engine — that deposits frames directly into the
//     registered WriteHandler ring. Receivers still discover data only by
//     polling their own memory.
//   - The sender never waits for the receiver inside a data write: frames
//     are posted into a sliding window of unacked sequence numbers and the
//     receiver's loop returns cumulative acks, so a write is a doorbell
//     post, not a rendezvous (WindowFrames: 1 restores the legacy
//     ack-per-frame round trip).
//   - The error taxonomy: write deadlines and broken connections map onto
//     fabric.ErrTransient, connection-refused onto fabric.ErrUnreachable,
//     so dstorm.RetryPolicy and the K-strikes suspicion protocol run
//     unchanged over real sockets. Deposit failures (unregistered key,
//     handler error, epoch fence) ride back on the cumulative-ack status.
//   - Liveness: refused dials and heartbeat strike-outs drive the same
//     OnLivenessChange watchers the simulated fabric fires, so barrier
//     pruning and fault-monitor rebuild work across processes. Control
//     frames (pings, barriers, membership) travel on a dedicated
//     connection per peer, so a deep data window can never delay a ping
//     past its deadline.
//
// What it does not preserve: true zero-copy RDMA (every write crosses the
// kernel socket path) and the simulated fabric's deterministic cost model
// (Stats record measured wall time instead). Chaos injection is a
// simulated-fabric feature and is not supported here.
package stream

import (
	"encoding/binary"
	"errors"
	"fmt"
	"io"
)

// Frame types. Data frames carry one-sided writes; the rest are the thin
// control plane (health probes, rendezvous, barrier coordination) that a
// real deployment would run over the same sockets.
const (
	frameData           = byte(1)  // one-sided write: key + record batch, covered by a cumulative ack
	frameAck            = byte(2)  // control-plane response: Records[0][0] is a status byte
	framePing           = byte(3)  // health probe, acked
	frameHello          = byte(4)  // rendezvous: rank announces itself to rank 0
	frameHelloAck       = byte(5)  // rendezvous reply: Gen carries the cluster generation
	frameProbe          = byte(6)  // delegated ping: Records[0] is the u32 target rank
	frameBarrierEnter   = byte(7)  // Key names the barrier; sent to rank 0, acked
	frameBarrierRelease = byte(8)  // rank 0 → waiter; not acked
	frameJoin           = byte(9)  // rejoin request to rank 0; From is the joiner
	frameJoinAck        = byte(10) // join reply: Gen is the minted epoch, Records[0] the base generation, Records[1] the alive member list (u32 each)
	frameJoinAnnounce   = byte(11) // rank 0 → survivor: Records[0] is the u32 joiner, Gen its admission epoch; acked
	frameAckCum         = byte(12) // cumulative data ack: Seq covers every data frame at or below it; Records[0][0] is the status of frame Seq
)

// Ack status bytes.
const (
	statusOK            = byte(0)
	statusNotRegistered = byte(1) // no handler for the key
	statusHandlerErr    = byte(2) // the WriteHandler returned an error
	statusStaleEpoch    = byte(3) // frame epoch predates the sender's last admission (zombie)
	statusDead          = byte(4) // receiver has been killed
	statusUnreachable   = byte(5) // probe verdict: target permanently unreachable
	statusTransient     = byte(6) // probe verdict: target inconclusive
)

// Frame is one length-prefixed protocol message. Data frames carry a
// record batch for one registered key: a WriteBatch is a single frame, so
// the doorbell-batched semantics of fabric.WriteBatch (one message, one
// ack) survive on the wire.
type Frame struct {
	// Type is one of the frame* constants.
	Type byte
	// From is the sending rank.
	From int
	// Gen is the sender's membership epoch. The rank-0 rendezvous mints
	// the base generation every member adopts; rank 0 then mints a higher
	// epoch on every confirmed death and every join. Receivers reject
	// frames whose epoch predates the sender's last admission, fencing
	// writes from zombie processes of a previous incarnation.
	Gen uint64
	// Seq sequence-numbers data frames within one connection: the first
	// data frame on a fresh connection carries 1 and each subsequent one
	// increments it. A cumulative ack's Seq covers every data frame at or
	// below it. Control frames carry 0.
	Seq uint64
	// Key names the registered memory (data) or the barrier (control).
	Key string
	// Records is the payload batch; control frames use Records[0] for
	// their operand (status byte, probe target).
	Records [][]byte
}

// Codec limits. Oversized frames are rejected on both encode and decode:
// a frame is a bounded unit of transfer, not a stream.
const (
	// MaxKeyLen bounds the registered-memory key length.
	MaxKeyLen = 4096
	// MaxBody bounds the encoded frame body (everything after the length
	// prefix). 64 MiB is far above any dstorm segment write.
	MaxBody = 64 << 20
	// maxRecords bounds the record count of one batch.
	maxRecords = 1 << 20

	frameHeaderLen = 28 // type(1) reserved(1) keyLen(2) from(4) recCount(4) gen(8) seq(8)
)

// Codec errors.
var (
	// ErrFrameTruncated is returned when the buffer ends before the frame.
	ErrFrameTruncated = errors.New("stream: truncated frame")
	// ErrFrameOversize is returned when a frame exceeds the codec limits.
	ErrFrameOversize = errors.New("stream: frame exceeds size limit")
	// ErrFrameCorrupt is returned when the frame's internal lengths are
	// inconsistent.
	ErrFrameCorrupt = errors.New("stream: corrupt frame")
)

// encodedSize returns the body length of f, without the 4-byte prefix.
func (f *Frame) encodedSize() int {
	n := frameHeaderLen + len(f.Key)
	for _, rec := range f.Records {
		n += 4 + len(rec)
	}
	return n
}

// AppendFrame appends the wire encoding of f (length prefix + body) to dst
// and returns the extended slice.
func AppendFrame(dst []byte, f *Frame) ([]byte, error) {
	if len(f.Key) > MaxKeyLen {
		return dst, fmt.Errorf("%w: key is %d bytes (max %d)", ErrFrameOversize, len(f.Key), MaxKeyLen)
	}
	if len(f.Records) > maxRecords {
		return dst, fmt.Errorf("%w: %d records (max %d)", ErrFrameOversize, len(f.Records), maxRecords)
	}
	body := f.encodedSize()
	if body > MaxBody {
		return dst, fmt.Errorf("%w: body is %d bytes (max %d)", ErrFrameOversize, body, MaxBody)
	}
	var u32 [4]byte
	var u64 [8]byte
	binary.LittleEndian.PutUint32(u32[:], uint32(body))
	dst = append(dst, u32[:]...)
	dst = append(dst, f.Type, 0)
	binary.LittleEndian.PutUint16(u32[:2], uint16(len(f.Key)))
	dst = append(dst, u32[:2]...)
	binary.LittleEndian.PutUint32(u32[:], uint32(f.From))
	dst = append(dst, u32[:]...)
	binary.LittleEndian.PutUint32(u32[:], uint32(len(f.Records)))
	dst = append(dst, u32[:]...)
	binary.LittleEndian.PutUint64(u64[:], f.Gen)
	dst = append(dst, u64[:]...)
	binary.LittleEndian.PutUint64(u64[:], f.Seq)
	dst = append(dst, u64[:]...)
	dst = append(dst, f.Key...)
	for _, rec := range f.Records {
		binary.LittleEndian.PutUint32(u32[:], uint32(len(rec)))
		dst = append(dst, u32[:]...)
		dst = append(dst, rec...)
	}
	return dst, nil
}

// EncodeFrame returns the wire encoding of f.
func EncodeFrame(f *Frame) ([]byte, error) {
	return AppendFrame(make([]byte, 0, 4+f.encodedSize()), f)
}

// DecodeFrame decodes one frame from the front of b, returning the frame
// and the number of bytes consumed. A buffer that ends mid-frame yields
// ErrFrameTruncated; length fields beyond the codec limits yield
// ErrFrameOversize; internally inconsistent lengths yield ErrFrameCorrupt.
// Record slices alias b.
func DecodeFrame(b []byte) (*Frame, int, error) {
	if len(b) < 4 {
		return nil, 0, ErrFrameTruncated
	}
	body := int(binary.LittleEndian.Uint32(b[:4]))
	if body > MaxBody {
		return nil, 0, fmt.Errorf("%w: body claims %d bytes (max %d)", ErrFrameOversize, body, MaxBody)
	}
	if body < frameHeaderLen {
		return nil, 0, fmt.Errorf("%w: body claims %d bytes (min %d)", ErrFrameCorrupt, body, frameHeaderLen)
	}
	if len(b) < 4+body {
		return nil, 0, ErrFrameTruncated
	}
	f := &Frame{}
	if err := decodeBodyInto(f, b[4:4+body], nil); err != nil {
		return nil, 0, err
	}
	return f, 4 + body, nil
}

// keyCache interns a connection's frame-key string: steady-state traffic
// repeats a handful of keys, so re-materializing the string per frame
// would be the receive loop's only allocation.
type keyCache struct {
	str string
}

func (kc *keyCache) intern(b []byte) string {
	if kc == nil {
		return string(b)
	}
	// The comparison does not allocate; the conversion materializes only
	// on a miss.
	if string(b) != kc.str {
		kc.str = string(b)
	}
	return kc.str
}

// decodeBodyInto parses a frame body into f, reusing f.Records' capacity;
// every length must account for the body exactly. Record slices alias b.
func decodeBodyInto(f *Frame, b []byte, kc *keyCache) error {
	if b[1] != 0 {
		return fmt.Errorf("%w: reserved byte is %#x", ErrFrameCorrupt, b[1])
	}
	keyLen := int(binary.LittleEndian.Uint16(b[2:4]))
	recCount := int(binary.LittleEndian.Uint32(b[8:12]))
	f.Type = b[0]
	f.From = int(int32(binary.LittleEndian.Uint32(b[4:8])))
	f.Gen = binary.LittleEndian.Uint64(b[12:20])
	f.Seq = binary.LittleEndian.Uint64(b[20:28])
	f.Key = ""
	f.Records = f.Records[:0]
	if keyLen > MaxKeyLen {
		return fmt.Errorf("%w: key claims %d bytes (max %d)", ErrFrameOversize, keyLen, MaxKeyLen)
	}
	if recCount > maxRecords {
		return fmt.Errorf("%w: %d records (max %d)", ErrFrameOversize, recCount, maxRecords)
	}
	rest := b[frameHeaderLen:]
	if len(rest) < keyLen {
		return fmt.Errorf("%w: key overruns body", ErrFrameCorrupt)
	}
	f.Key = kc.intern(rest[:keyLen])
	rest = rest[keyLen:]
	for i := 0; i < recCount; i++ {
		if len(rest) < 4 {
			return fmt.Errorf("%w: record %d length overruns body", ErrFrameCorrupt, i)
		}
		recLen := int(binary.LittleEndian.Uint32(rest[:4]))
		rest = rest[4:]
		if recLen > len(rest) {
			return fmt.Errorf("%w: record %d overruns body", ErrFrameCorrupt, i)
		}
		f.Records = append(f.Records, rest[:recLen:recLen])
		rest = rest[recLen:]
	}
	if len(f.Records) == 0 {
		f.Records = nil
	}
	if len(rest) != 0 {
		return fmt.Errorf("%w: %d trailing bytes", ErrFrameCorrupt, len(rest))
	}
	return nil
}

// writeFrame writes the wire encoding of f to w.
func writeFrame(w io.Writer, f *Frame) error {
	b, err := EncodeFrame(f)
	if err != nil {
		return err
	}
	_, err = w.Write(b)
	return err
}

// readFrame reads one frame from r. Record slices own their memory.
func readFrame(r io.Reader) (*Frame, error) {
	f := &Frame{}
	var scratch []byte
	if err := readFrameInto(r, f, &scratch, nil); err != nil {
		return nil, err
	}
	return f, nil
}

// readFrameInto reads one frame from r into f, reusing *scratch as the
// body buffer (grown as needed) and f.Records' capacity — the zero-alloc
// receive path. Record slices alias *scratch and are valid only until the
// next call.
func readFrameInto(r io.Reader, f *Frame, scratch *[]byte, kc *keyCache) error {
	var prefix [4]byte
	if _, err := io.ReadFull(r, prefix[:]); err != nil {
		return err
	}
	body := int(binary.LittleEndian.Uint32(prefix[:]))
	if body > MaxBody {
		return fmt.Errorf("%w: body claims %d bytes (max %d)", ErrFrameOversize, body, MaxBody)
	}
	if body < frameHeaderLen {
		return fmt.Errorf("%w: body claims %d bytes (min %d)", ErrFrameCorrupt, body, frameHeaderLen)
	}
	buf := *scratch
	if cap(buf) < body {
		buf = make([]byte, body)
		*scratch = buf
	} else {
		buf = buf[:body]
	}
	if _, err := io.ReadFull(r, buf); err != nil {
		if err == io.EOF {
			err = io.ErrUnexpectedEOF
		}
		return fmt.Errorf("%w: %v", ErrFrameTruncated, err)
	}
	return decodeBodyInto(f, buf, kc)
}
