package stream

import (
	"bufio"
	"errors"
	"fmt"
	"net"
	"sync"
	"time"

	"malt/internal/fabric"
)

// This file is the windowed data path: one dataLink per peer carries all
// frameData traffic on its own connection, separate from the control-plane
// connection (conn.go), so bulk data can never delay a ping or a barrier.
//
// Protocol: data frames are sequence-numbered per connection incarnation
// (1, 2, 3, ...). The sender posts frames without waiting as long as it
// holds window credit — at most WindowFrames unacked frames and
// WindowBytes unacked payload bytes. The receiver's serve loop deposits
// each frame and returns cumulative acks (frameAckCum): an ack with
// sequence S and status OK means every frame at or below S deposited
// successfully; a non-OK ack means frames below S deposited and frame S
// itself failed with that status. There are no retransmissions — the
// stream transport guarantees delivery and ordering — so the window exists
// only for backpressure and for carrying deposit/epoch-fence status back.
//
// Error reporting is therefore deferred: a deposit failure surfaces on a
// later Write to the same link (or at Drain/Barrier), mapped onto the same
// fabric error taxonomy the legacy ack-per-frame path used. WindowFrames=1
// restores the legacy behavior exactly: Write blocks for the covering ack
// and returns that frame's status synchronously.
//
// Buffer ownership: a frame is encoded into a pooled buffer under the link
// lock; the buffer returns to the pool only once the covering cumulative
// ack (or a link reset) retires the frame — never while the kernel may
// still read it.

// Receiver-side ack coalescing: a cumulative ack is emitted when the read
// buffer drains (no more pipelined input), or at the latest every
// ackEveryFrames frames / ackEveryBytes payload bytes, or immediately on a
// deposit failure. ackEveryBytes is half of DefaultWindowBytes so a busy
// receiver replenishes the sender's credit in half-window units instead of
// stalling it for a full drain.
const (
	ackEveryFrames = 16
	ackEveryBytes  = DefaultWindowBytes / 2
)

// encPool recycles frame-encode buffers. Buffers are held from post until
// the covering cumulative ack retires the frame.
var encPool = sync.Pool{New: func() any { return new([]byte) }}

// waiterPool recycles the one-shot signal channels window waiters register
// with the ack reader.
var waiterPool = sync.Pool{New: func() any { return make(chan struct{}, 1) }}

// timerPool recycles the deadline timers of window waits.
var timerPool = sync.Pool{}

func timerGet(d time.Duration) *time.Timer {
	if t, ok := timerPool.Get().(*time.Timer); ok {
		t.Reset(d)
		return t
	}
	return time.NewTimer(d)
}

func timerPut(t *time.Timer) {
	if !t.Stop() {
		select {
		case <-t.C:
		default:
		}
	}
	timerPool.Put(t)
}

// pendingFrame is one posted-but-unacked data frame. busy marks a frame
// whose encode buffer is on loan to the write loop (queued or inside a
// writev): whoever retires the frame while busy must leave the buffer
// alone — the write loop returns it to the pool itself.
type pendingFrame struct {
	seq    uint64
	buf    *[]byte // pooled wire encoding; released on ack or reset
	bytes  int     // payload bytes (sum of record lengths)
	recs   int     // record count
	batch  bool    // WriteBatch (counts toward coalescing stats)
	busy   bool    // buffer owned by the write loop (queued or mid-writev)
	key    string
	sentAt time.Time
}

// outFrame is one encoded frame queued for the link's write loop.
type outFrame struct {
	seq uint64
	buf *[]byte
}

// dataLink is one rank's windowed data connection to a peer.
type dataLink struct {
	n  *Net
	to int

	mu     sync.Mutex
	c      net.Conn
	incarn uint64 // bumped on every dial and reset; fences stale ack readers
	seq    uint64 // last sequence number posted on this incarnation
	ackSeq uint64 // highest cumulative ack received on this incarnation

	// q is the outbound frame queue consumed by the write loop; wake (one
	// channel per incarnation, captured by that incarnation's write loop)
	// is signaled on enqueue and on reset. The queue depth is bounded by
	// the window credit.
	q    []outFrame
	wake chan struct{}

	// wdeadline is the write deadline currently armed on c. Arming a
	// deadline is a timer operation; refreshing it only when more than half
	// the ack timeout has drifted keeps it off the per-batch fast path
	// while a blocking write still times out within [AckTimeout/2, AckTimeout].
	wdeadline time.Time

	inFrames int
	inBytes  int
	pending  []pendingFrame // FIFO of unacked frames; live region is [head:]
	head     int

	err error // sticky deferred error, consumed by the next send/wait/drain

	frame   Frame           // reusable encode scratch, guarded by mu
	one     [1][]byte       // reusable record slice for single-payload writes
	waiters []chan struct{} // registered window waiters, signaled per ack
}

// post sends one data frame through the window. records == nil means a
// single-record write carrying payload. In windowed mode it returns as
// soon as the frame is on the socket with credit held; with WindowFrames=1
// it blocks for the covering ack and returns that frame's status,
// reproducing the legacy ack-per-frame semantics.
func (d *dataLink) post(key string, payload []byte, records [][]byte, batch bool) error {
	nbytes := len(payload)
	for _, rec := range records {
		nbytes += len(rec)
	}
	seq, incarn, err := d.send(key, payload, records, nbytes, batch)
	if err != nil {
		return err
	}
	if d.n.cfg.WindowFrames == 1 {
		return d.waitFor(seq, incarn)
	}
	return nil
}

// send acquires window credit, encodes the frame into a pooled buffer,
// registers it as pending, and hands it to the link's write loop — dialing
// lazily. The socket write happens on the write loop's goroutine, never
// here: a blocking write (full socket buffer on a saturated link) must not
// stall the caller or the ack reader, and frames that accumulate while the
// loop is inside a writev coalesce into the next writev — one syscall for
// a burst of small frames. It returns the posted sequence number and the
// connection incarnation that carries it.
func (d *dataLink) send(key string, payload []byte, records [][]byte, nbytes int, batch bool) (uint64, uint64, error) {
	n := d.n
	deadline := time.Now().Add(n.cfg.AckTimeout)
	d.mu.Lock()
	for {
		if d.err != nil {
			err := d.err
			d.err = nil
			d.mu.Unlock()
			return 0, 0, err
		}
		if d.c == nil {
			if err := d.dialLocked(deadline); err != nil {
				d.mu.Unlock()
				cerr := classify("dial", d.to, err)
				if errors.Is(cerr, fabric.ErrUnreachable) {
					n.markDead(d.to)
				}
				return 0, 0, cerr
			}
			continue // re-check state on the fresh incarnation
		}
		if d.inFrames == 0 || (d.inFrames < n.cfg.WindowFrames && d.inBytes+nbytes <= n.cfg.WindowBytes) {
			break
		}
		n.stats.AddWindowStall(n.cfg.Rank, d.to)
		if !d.waitLocked(deadline) {
			d.resetLocked(fmt.Errorf("%w: window credit to rank %d timed out", fabric.ErrTransient, d.to))
			err := d.err
			d.err = nil
			d.mu.Unlock()
			return 0, 0, err
		}
	}
	// Credit held: assign the sequence number, encode, and register the
	// pending frame in one critical section so pending stays seq-sorted.
	d.seq++
	seq, incarn := d.seq, d.incarn
	recs := records
	if recs == nil {
		d.one[0] = payload
		recs = d.one[:]
	}
	d.frame.Type = frameData
	d.frame.From = n.cfg.Rank
	d.frame.Gen = n.gen.Load()
	d.frame.Seq = seq
	d.frame.Key = key
	d.frame.Records = recs
	bp := encPool.Get().(*[]byte)
	b, err := AppendFrame((*bp)[:0], &d.frame)
	nrecs := len(recs)
	d.frame.Key = ""
	d.frame.Records = nil
	d.one[0] = nil
	if err != nil {
		d.seq--
		d.mu.Unlock()
		encPool.Put(bp)
		return 0, 0, err // oversize frame: caller error, link unaffected
	}
	*bp = b
	d.pending = append(d.pending, pendingFrame{
		seq: seq, buf: bp, bytes: nbytes, recs: nrecs, batch: batch, busy: true,
		key: key, sentAt: time.Now(),
	})
	d.inFrames++
	d.inBytes += nbytes
	n.stats.AddInFlight(n.cfg.Rank, d.to, nbytes)
	d.q = append(d.q, outFrame{seq: seq, buf: bp})
	wake := d.wake
	d.mu.Unlock()
	select {
	case wake <- struct{}{}:
	default: // a wakeup is already pending; the loop drains the whole queue
	}
	return seq, incarn, nil
}

// writeLoop is the link's single socket writer for one connection
// incarnation: it drains the outbound queue into writev batches. Batching
// is opportunistic — frames enqueued while a writev blocks ride the next
// one — so a stream of small writes costs one syscall per burst rather
// than one per frame, and the queue empties completely on every pass (no
// explicit flush is ever needed for liveness). Buffer ownership: queued
// frames are busy; after a writev the loop either clears busy (frame still
// pending) or returns the buffer itself (frame already retired by an ack
// or reset that skipped it).
func (d *dataLink) writeLoop(c net.Conn, incarn uint64, wake chan struct{}) {
	n := d.n
	var batch []outFrame
	var iov [][]byte
	for {
		d.mu.Lock()
		for d.incarn == incarn && len(d.q) == 0 {
			d.mu.Unlock()
			select {
			case <-wake:
			case <-n.done:
				return
			}
			d.mu.Lock()
		}
		if d.incarn != incarn {
			d.mu.Unlock()
			return // reset retired the queue; nothing is on loan to us
		}
		batch = append(batch[:0], d.q...)
		d.q = d.q[:0]
		deadline := time.Now().Add(n.cfg.AckTimeout)
		refresh := deadline.Sub(d.wdeadline) > n.cfg.AckTimeout/2
		if refresh {
			d.wdeadline = deadline
		}
		d.mu.Unlock()

		if refresh {
			c.SetWriteDeadline(deadline)
		}
		iov = iov[:0]
		for _, of := range batch {
			iov = append(iov, *of.buf)
		}
		bufs := net.Buffers(iov) // WriteTo advances bufs; iov keeps the array
		_, werr := bufs.WriteTo(c)

		d.mu.Lock()
		if d.incarn != incarn {
			// Reset raced the writev; every batch frame was retired with
			// its busy buffer left on loan to us.
			for _, of := range batch {
				encPool.Put(of.buf)
			}
			d.mu.Unlock()
			return
		}
		if werr != nil {
			cerr := classify("write", d.to, werr)
			d.resetLocked(cerr) // frames already in flight have unknown fate
			for _, of := range batch {
				encPool.Put(of.buf)
			}
			d.mu.Unlock()
			return
		}
		for _, of := range batch {
			if of.seq <= d.ackSeq {
				// The cumulative ack outran this bookkeeping (the receiver
				// replied while the writev was still in progress); the ack
				// reader popped the frame and left the busy buffer to us.
				encPool.Put(of.buf)
			} else {
				// Sequence numbers are consecutive and pending is FIFO, so
				// the frame's slot is a direct index from the head.
				d.pending[d.head+int(of.seq-d.pending[d.head].seq)].busy = false
			}
		}
		d.mu.Unlock()
	}
}

// dialLocked dials the data connection and starts its ack reader. Callers
// hold d.mu.
func (d *dataLink) dialLocked(deadline time.Time) error {
	n := d.n
	timeout := n.cfg.DialTimeout
	if until := time.Until(deadline); until < timeout {
		if until <= 0 {
			return fmt.Errorf("deadline exceeded before dial: %w", errTimeout{})
		}
		timeout = until
	}
	dl := net.Dialer{Timeout: timeout}
	c, err := dl.Dial(n.cfg.Network, n.cfg.Peers[d.to])
	if err != nil {
		return err
	}
	if tc, ok := c.(*net.TCPConn); ok {
		tc.SetNoDelay(true)
	}
	d.c = c
	d.incarn++
	d.seq, d.ackSeq = 0, 0
	d.wdeadline = time.Time{}
	d.wake = make(chan struct{}, 1)
	go d.readAcks(c, d.incarn)
	go d.writeLoop(c, d.incarn, d.wake)
	return nil
}

// readAcks is the per-connection ack reader: it advances the window on
// every cumulative ack, releases retired encode buffers to the pool,
// records transfer stats at ack time, and parks deposit failures as the
// link's sticky error. A read failure resets the link.
func (d *dataLink) readAcks(c net.Conn, incarn uint64) {
	n := d.n
	br := bufio.NewReader(c)
	var f Frame
	var scratch []byte
	for {
		if err := readFrameInto(br, &f, &scratch, nil); err != nil {
			d.failConn(incarn, classify("read ack", d.to, err))
			return
		}
		if f.Type != frameAckCum || len(f.Records) != 1 || len(f.Records[0]) != 1 {
			d.failConn(incarn, fmt.Errorf("%w: rank %d sent a malformed cumulative ack", fabric.ErrTransient, d.to))
			return
		}
		status := f.Records[0][0]
		d.mu.Lock()
		if d.incarn != incarn {
			d.mu.Unlock()
			return // link was reset under us; a fresh reader owns it now
		}
		now := time.Now()
		for d.head < len(d.pending) && d.pending[d.head].seq <= f.Seq {
			pf := &d.pending[d.head]
			d.inFrames--
			d.inBytes -= pf.bytes
			n.stats.SubInFlight(n.cfg.Rank, d.to, pf.bytes)
			if status != statusOK && pf.seq == f.Seq {
				// AddFailed is charged when the write that consumes the
				// sticky error observes it, matching the legacy path.
				if d.err == nil {
					d.err = d.ackError(pf.key, status)
				}
			} else {
				n.stats.AddTransfer(n.cfg.Rank, d.to, pf.bytes, now.Sub(pf.sentAt))
				if pf.batch {
					n.stats.AddCoalesced(n.cfg.Rank, d.to, pf.recs)
				}
			}
			if !pf.busy { // busy: the writer still owns the buffer and returns it
				encPool.Put(pf.buf)
			}
			pf.buf = nil
			pf.key = ""
			d.head++
		}
		if d.head == len(d.pending) {
			d.pending = d.pending[:0]
			d.head = 0
		}
		if f.Seq > d.ackSeq {
			d.ackSeq = f.Seq
		}
		n.stats.AddCumAck(n.cfg.Rank, d.to)
		d.signalLocked()
		d.mu.Unlock()
	}
}

// ackError maps a non-OK cumulative-ack status onto the fabric taxonomy —
// the same mapping the legacy synchronous write used.
func (d *dataLink) ackError(key string, status byte) error {
	switch status {
	case statusNotRegistered:
		return fmt.Errorf("%w: %q on rank %d", fabric.ErrNotRegistered, key, d.to)
	case statusHandlerErr:
		return fmt.Errorf("stream: write handler for %q on rank %d failed", key, d.to)
	case statusStaleEpoch:
		return fmt.Errorf("%w: rank %d fenced this sender's epoch; rejoin required", fabric.ErrStaleEpoch, d.to)
	case statusDead:
		return fmt.Errorf("%w: rank %d is dead", fabric.ErrUnreachable, d.to)
	default:
		return fmt.Errorf("stream: rank %d replied with unknown status", d.to)
	}
}

// failConn resets the link on behalf of the ack reader, unless a newer
// incarnation already took over.
func (d *dataLink) failConn(incarn uint64, err error) {
	d.mu.Lock()
	if d.incarn == incarn {
		d.resetLocked(err)
	}
	d.mu.Unlock()
}

// resetLocked drops the data connection and retires every in-flight frame
// with unknown fate: buffers return to the pool, the window empties, and —
// if frames were actually pending — err becomes the sticky deferred error.
// Callers hold d.mu.
func (d *dataLink) resetLocked(err error) {
	if d.c != nil {
		d.c.Close()
		d.c = nil
	}
	d.incarn++
	hadPending := d.head < len(d.pending)
	// Queued-but-unwritten frames are owned by the queue (the write loop
	// has not popped them), so their buffers are returned here; their
	// pending entries stay busy so the retire loop below skips them. Frames
	// the loop holds mid-writev are not in the queue and the loop returns
	// their buffers itself.
	for i, of := range d.q {
		encPool.Put(of.buf)
		d.q[i].buf = nil
	}
	d.q = d.q[:0]
	for d.head < len(d.pending) {
		pf := &d.pending[d.head]
		d.n.stats.SubInFlight(d.n.cfg.Rank, d.to, pf.bytes)
		if !pf.busy { // busy: the write loop still owns the buffer and returns it
			encPool.Put(pf.buf)
		}
		pf.buf = nil
		pf.key = ""
		d.head++
	}
	if d.wake != nil {
		select { // rouse the old write loop so it observes the reset and exits
		case d.wake <- struct{}{}:
		default:
		}
	}
	d.pending = d.pending[:0]
	d.head = 0
	d.inFrames, d.inBytes = 0, 0
	if err != nil && hadPending && d.err == nil {
		d.err = err
	}
	d.signalLocked()
}

// close drops the connection and clears the window without recording an
// error: used by Kill/Close, where the shutdown itself is the story.
func (d *dataLink) close() {
	d.mu.Lock()
	d.resetLocked(nil)
	d.mu.Unlock()
}

// signalLocked wakes every registered waiter (non-blocking: each waiter
// channel holds at most one pending signal). Callers hold d.mu.
func (d *dataLink) signalLocked() {
	for _, w := range d.waiters {
		select {
		case w <- struct{}{}:
		default:
		}
	}
}

// waitLocked releases d.mu, waits for a window signal until the deadline,
// and reacquires d.mu. It returns false on timeout or endpoint shutdown.
func (d *dataLink) waitLocked(deadline time.Time) bool {
	w := waiterPool.Get().(chan struct{})
	d.waiters = append(d.waiters, w)
	d.mu.Unlock()
	t := timerGet(time.Until(deadline))
	ok := false
	select {
	case <-w:
		ok = true
	case <-t.C:
	case <-d.n.done:
	}
	timerPut(t)
	d.mu.Lock()
	for i, reg := range d.waiters {
		if reg == w {
			last := len(d.waiters) - 1
			d.waiters[i] = d.waiters[last]
			d.waiters[last] = nil
			d.waiters = d.waiters[:last]
			break
		}
	}
	select { // drain a signal that raced the deregistration
	case <-w:
	default:
	}
	waiterPool.Put(w)
	return ok
}

// waitFor blocks until the cumulative ack covers seq on the given
// incarnation (or the link reset), consuming and returning the sticky
// deferred error. This is the synchronous tail of WindowFrames=1 mode.
func (d *dataLink) waitFor(seq, incarn uint64) error {
	deadline := time.Now().Add(d.n.cfg.AckTimeout)
	d.mu.Lock()
	for {
		if d.err != nil {
			err := d.err
			d.err = nil
			d.mu.Unlock()
			return err
		}
		if d.incarn != incarn || d.ackSeq >= seq {
			d.mu.Unlock()
			return nil
		}
		if !d.waitLocked(deadline) {
			d.resetLocked(fmt.Errorf("%w: ack from rank %d timed out", fabric.ErrTransient, d.to))
			err := d.err
			d.err = nil
			d.mu.Unlock()
			if err == nil {
				err = fmt.Errorf("%w: ack from rank %d timed out", fabric.ErrTransient, d.to)
			}
			return err
		}
	}
}

// drain blocks until the window is empty, consuming and returning the
// sticky deferred error. Barrier entry drains every link first, so a
// barrier release proves every pre-barrier write deposited.
func (d *dataLink) drain() error {
	deadline := time.Now().Add(d.n.cfg.AckTimeout)
	d.mu.Lock()
	for {
		if d.err != nil {
			err := d.err
			d.err = nil
			d.mu.Unlock()
			return err
		}
		if d.inFrames == 0 {
			d.mu.Unlock()
			return nil
		}
		if !d.waitLocked(deadline) {
			d.resetLocked(fmt.Errorf("%w: drain of link to rank %d timed out", fabric.ErrTransient, d.to))
			err := d.err
			d.err = nil
			d.mu.Unlock()
			if err == nil {
				err = fmt.Errorf("%w: drain of link to rank %d timed out", fabric.ErrTransient, d.to)
			}
			return err
		}
	}
}

// discard clears the link and its sticky error without reporting: used for
// links to peers already known dead, whose failures have been accounted.
func (d *dataLink) discard() {
	d.mu.Lock()
	d.resetLocked(nil)
	d.err = nil
	d.mu.Unlock()
}
