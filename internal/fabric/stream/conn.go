package stream

import (
	"bufio"
	"errors"
	"fmt"
	"net"
	"sync"
	"syscall"
	"time"

	"malt/internal/fabric"
)

// peerConn is one rank's persistent pooled control connection to a peer,
// plus the windowed data link (window.go) that carries frameData. Control
// frames get their own connection so a deep unacked data window can never
// delay a ping or barrier past its deadline. One control request (frame
// out, ack in) is in flight at a time — the per-link serialization the
// simulated fabric's tcpConn also imposes. The connection is dialed lazily
// and redialed after errors; a refused redial is the transport's strongest
// death signal.
type peerConn struct {
	mu sync.Mutex // serializes control round trips

	cmu sync.Mutex // guards c/br so closeConn can interrupt an in-flight request
	c   net.Conn
	br  *bufio.Reader

	data dataLink // windowed frameData path
}

// expectsAck reports whether a frame type is a round trip.
func expectsAck(t byte) bool { return t != frameBarrierRelease }

// request performs one round trip to peer to: dial if needed, write f,
// read the ack (unless fire-and-forget). Errors are classified into the
// fabric taxonomy; a refused connection additionally marks the peer dead
// (except during the rendezvous hello and the rejoin handshake, when the
// peer may simply not be up yet).
func (p *peerConn) request(n *Net, to int, f *Frame, deadline time.Time) (*Frame, error) {
	p.mu.Lock()
	defer p.mu.Unlock()
	c, br, err := p.conn(n, to, deadline)
	if err != nil {
		cerr := classify("dial", to, err)
		if errors.Is(cerr, fabric.ErrUnreachable) && f.Type != frameHello && f.Type != frameJoin {
			n.markDead(to)
		}
		return nil, cerr
	}
	c.SetDeadline(deadline)
	if err := writeFrame(c, f); err != nil {
		p.closeConn()
		return nil, classify("write", to, err)
	}
	if !expectsAck(f.Type) {
		return nil, nil
	}
	ack, err := readFrame(br)
	if err != nil {
		p.closeConn()
		return nil, classify("read ack", to, err)
	}
	return ack, nil
}

// conn returns the live connection, dialing if necessary. Callers hold
// p.mu.
func (p *peerConn) conn(n *Net, to int, deadline time.Time) (net.Conn, *bufio.Reader, error) {
	p.cmu.Lock()
	c, br := p.c, p.br
	p.cmu.Unlock()
	if c != nil {
		return c, br, nil
	}
	timeout := n.cfg.DialTimeout
	if until := time.Until(deadline); until < timeout {
		if until <= 0 {
			return nil, nil, fmt.Errorf("deadline exceeded before dial: %w", errTimeout{})
		}
		timeout = until
	}
	d := net.Dialer{Timeout: timeout}
	nc, err := d.Dial(n.cfg.Network, n.cfg.Peers[to])
	if err != nil {
		return nil, nil, err
	}
	if tc, ok := nc.(*net.TCPConn); ok {
		tc.SetNoDelay(true)
	}
	nbr := bufio.NewReader(nc)
	p.cmu.Lock()
	p.c, p.br = nc, nbr
	p.cmu.Unlock()
	return nc, nbr, nil
}

// closeConn drops the control and data connections (if any) so the next
// request redials. It is safe to call concurrently with an in-flight
// request, whose syscalls then fail immediately.
func (p *peerConn) closeConn() {
	p.cmu.Lock()
	if p.c != nil {
		p.c.Close()
		p.c, p.br = nil, nil
	}
	p.cmu.Unlock()
	p.data.close()
}

// errTimeout satisfies net.Error for the pre-dial deadline check.
type errTimeout struct{}

func (errTimeout) Error() string   { return "timeout" }
func (errTimeout) Timeout() bool   { return true }
func (errTimeout) Temporary() bool { return true }

// classify maps socket errors onto the fabric error taxonomy:
//
//   - deadline expiry → ErrTransient (the peer may be slow or the path
//     congested; RetryPolicy decides how long to keep trying)
//   - connection refused → ErrUnreachable (nobody listens on the peer's
//     port: the process is gone)
//   - anything else (EOF, reset, closed) → ErrTransient; the connection is
//     dropped, the next attempt redials, and a refused redial upgrades the
//     verdict to ErrUnreachable
func classify(op string, to int, err error) error {
	var nerr net.Error
	if errors.As(err, &nerr) && nerr.Timeout() {
		return fmt.Errorf("%w: %s rank %d timed out: %v", fabric.ErrTransient, op, to, err)
	}
	if errors.Is(err, syscall.ECONNREFUSED) {
		return fmt.Errorf("%w: %s rank %d: connection refused", fabric.ErrUnreachable, op, to)
	}
	return fmt.Errorf("%w: %s rank %d: %v", fabric.ErrTransient, op, to, err)
}
