//go:build race

package stream

// raceEnabled reports whether the race detector is instrumenting this
// build; its shadow-memory bookkeeping allocates, so allocation-count
// assertions are meaningless under it.
const raceEnabled = true
