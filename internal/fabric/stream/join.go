package stream

import (
	"encoding/binary"
	"errors"
	"fmt"
	"time"

	"malt/internal/fabric"
)

// This file is the elastic-membership side of the transport: the JOIN
// protocol a restarted rank runs against rank 0 instead of the full-cluster
// rendezvous, and the announce fan-out that tells survivors to re-admit it.
//
// Epoch rules (fabric.Membership):
//
//   - The rendezvous generation is the base epoch every member adopts.
//   - Rank 0 mints a strictly higher epoch on every confirmed death and
//     every join; survivors keep stamping their adopted epoch, which stays
//     valid because receivers fence on the *sender's admission* epoch, not
//     on global equality — a lagging survivor is never rejected.
//   - A joiner is admitted at the minted epoch. Its old incarnation's
//     frames carry the base epoch, which is now below its admission, so
//     every receiver fences them: a rejoining rank cannot poison in-flight
//     gathers.

// Epoch returns the current membership epoch (the rendezvous generation
// until a death or join mints a higher one). Implements fabric.Membership.
func (n *Net) Epoch() uint64 { return n.gen.Load() }

// StaleEpochRejected counts inbound frames this endpoint fenced because
// their epoch predated the sender's admission.
func (n *Net) StaleEpochRejected() uint64 { return n.staleRejected.Load() }

// OnJoin registers a watcher for admissions (local or announced). Watchers
// run serialized with liveness watchers under the same callback mutex.
func (n *Net) OnJoin(fn func(rank int, epoch uint64)) {
	n.mu.Lock()
	defer n.mu.Unlock()
	n.joinedCb = append(n.joinedCb, fn)
}

// Join runs the rejoin handshake for the local rank: dial rank 0 with a
// JOIN frame, adopt the minted epoch + base generation + member list from
// the ack, and start heartbeating. Call it on a fresh Net instead of
// Rendezvous when re-entering an already-running cluster. Implements
// fabric.Membership; only the local, non-coordinator rank can join.
func (n *Net) Join(rank int) (uint64, error) {
	if err := n.checkRank(rank); err != nil {
		return 0, err
	}
	if rank != n.cfg.Rank {
		return 0, fmt.Errorf("stream: rank %d cannot join on behalf of rank %d (only the local rank)", n.cfg.Rank, rank)
	}
	if rank == 0 {
		return 0, errors.New("stream: rank 0 hosts the membership service and cannot rejoin")
	}
	deadline := time.Now().Add(n.cfg.RendezvousTimeout)
	join := &Frame{Type: frameJoin, From: rank}
	for {
		ack, err := n.peers[0].request(n, 0, join, time.Now().Add(n.cfg.AckTimeout))
		if err == nil && ack.Type == frameJoinAck {
			epoch, aerr := n.adoptJoinAck(ack)
			if aerr != nil {
				return 0, aerr
			}
			n.startHeartbeat()
			return epoch, nil
		}
		if err == nil {
			switch ackStatus(ack) {
			case statusDead:
				return 0, fmt.Errorf("%w: join: coordinator (rank 0) is dead", fabric.ErrUnreachable)
			default:
				err = fmt.Errorf("stream: join: unexpected coordinator reply type %d", ack.Type)
			}
		}
		if time.Now().After(deadline) {
			return 0, fmt.Errorf("stream: join with rank 0 (%s) timed out after %v: %w",
				n.cfg.Peers[0], n.cfg.RendezvousTimeout, err)
		}
		select {
		case <-n.done:
			return 0, errors.New("stream: closed during join")
		case <-time.After(100 * time.Millisecond):
		}
	}
}

// adoptJoinAck installs the membership view a joinAck carries: Gen is this
// rank's admission epoch, Records[0] the base generation (the admission
// floor of every standing member), Records[1] the alive member list.
func (n *Net) adoptJoinAck(ack *Frame) (uint64, error) {
	if len(ack.Records) != 2 || len(ack.Records[0]) != 8 || len(ack.Records[1])%4 != 0 {
		return 0, errors.New("stream: join: malformed join ack")
	}
	base := binary.LittleEndian.Uint64(ack.Records[0])
	alive := make(map[int]bool, len(n.cfg.Peers))
	for off := 0; off < len(ack.Records[1]); off += 4 {
		alive[int(int32(binary.LittleEndian.Uint32(ack.Records[1][off:])))] = true
	}
	n.gen.Store(ack.Gen)
	n.base.Store(base)
	n.mu.Lock()
	for r := range n.admitted {
		n.admitted[r] = base
	}
	n.admitted[n.cfg.Rank] = ack.Gen
	n.mu.Unlock()
	// Ranks rank 0 no longer counts alive died while we were gone; adopt
	// those deaths through the normal watcher path so monitors see them.
	for r := range n.cfg.Peers {
		if r != n.cfg.Rank && !alive[r] {
			n.markDead(r)
		}
	}
	return ack.Gen, nil
}

// serveJoin handles a JOIN frame at rank 0: mint the next epoch, admit the
// joiner locally, announce it to every survivor (synchronously, so no
// survivor acks the joiner's admission after its first scatter), and reply
// with epoch + base generation + member list.
func (n *Net) serveJoin(f *Frame) *Frame {
	if n.cfg.Rank != 0 || n.coord == nil {
		return n.ackFrame(statusTransient) // misdirected: only rank 0 admits
	}
	if !n.Alive(n.cfg.Rank) {
		return n.ackFrame(statusDead)
	}
	j := f.From
	if j <= 0 || j >= len(n.cfg.Peers) {
		return n.ackFrame(statusTransient)
	}
	epoch := n.gen.Add(1)
	n.admitJoin(j, epoch)
	n.announceJoin(j, epoch)
	var b8 [8]byte
	binary.LittleEndian.PutUint64(b8[:], n.base.Load())
	alive := n.AliveRanks()
	members := make([]byte, 0, 4*len(alive))
	for _, r := range alive {
		var b4 [4]byte
		binary.LittleEndian.PutUint32(b4[:], uint32(r))
		members = append(members, b4[:]...)
	}
	return &Frame{Type: frameJoinAck, From: n.cfg.Rank, Gen: epoch, Records: [][]byte{b8[:], members}}
}

// announceJoin tells every standing member about an admission. Failures
// are tolerated: an unreachable member is on its way to being marked dead,
// and the epoch fence never depends on the announce (the joiner's frames
// carry an epoch at or above every receiver's floor for it).
func (n *Net) announceJoin(j int, epoch uint64) {
	var rec [4]byte
	binary.LittleEndian.PutUint32(rec[:], uint32(j))
	f := &Frame{Type: frameJoinAnnounce, From: n.cfg.Rank, Gen: epoch, Records: [][]byte{rec[:]}}
	for _, to := range n.AliveRanks() {
		if to == n.cfg.Rank || to == j {
			continue
		}
		_, _ = n.peers[to].request(n, to, f, time.Now().Add(n.cfg.AckTimeout))
	}
}

// serveJoinAnnounce handles rank 0's admission announce on a survivor.
func (n *Net) serveJoinAnnounce(f *Frame) byte {
	if !n.Alive(n.cfg.Rank) {
		return statusDead
	}
	if f.From != 0 || len(f.Records) != 1 || len(f.Records[0]) != 4 {
		return statusTransient
	}
	j := int(int32(binary.LittleEndian.Uint32(f.Records[0])))
	if j < 0 || j >= len(n.cfg.Peers) {
		return statusTransient
	}
	n.admitJoin(j, f.Gen)
	return statusOK
}
