package stream

import (
	"bufio"
	"encoding/binary"
	"errors"
	"net"
	"time"

	"malt/internal/fabric"
)

// acceptLoop owns the rank's listener: every inbound connection gets one
// serving goroutine.
func (n *Net) acceptLoop(ln net.Listener) {
	defer n.wg.Done()
	for {
		conn, err := ln.Accept()
		if err != nil {
			// Closed (shutdown or Kill) or fatally broken: either way this
			// rank stops receiving, which peers observe as refused dials.
			return
		}
		n.wg.Add(1)
		go n.serveConn(conn)
	}
}

// serveConn is the receiver-side "DMA engine": one goroutine per inbound
// connection that deposits data frames directly into the registered
// WriteHandler ring and answers the control plane. The rank's training
// loop never participates — the one-sided contract.
func (n *Net) serveConn(conn net.Conn) {
	defer n.wg.Done()
	defer conn.Close()
	if tc, ok := conn.(*net.TCPConn); ok {
		// Cumulative acks are small writes against the data flow; with
		// Nagle on, a credit-replenishing ack can sit behind the peer's
		// delayed ACK while the sender is window-blocked and silent —
		// exactly the stall the window exists to avoid.
		tc.SetNoDelay(true)
	}
	if !n.trackConn(conn) {
		return
	}
	defer n.untrackConn(conn)
	br := bufio.NewReader(conn)
	// Per-connection receive state. The frame, body scratch and key cache
	// are reused across frames (the zero-alloc receive path); the ack
	// state implements cumulative-ack coalescing for data frames.
	var (
		f            Frame
		scratch      []byte
		kc           keyCache
		lastSeq      uint64 // last data-frame sequence seen
		unacked      int    // data frames deposited since the last cum ack
		unackedBytes int
		ackStatus    [1]byte
		ackRecords   = [][]byte{ackStatus[:]}
		ackFrame     = Frame{Type: frameAckCum}
		ackScratch   []byte
	)
	for {
		if err := readFrameInto(br, &f, &scratch, &kc); err != nil {
			return // EOF, peer reset, or a corrupt stream: drop the link
		}
		var reply *Frame
		switch f.Type {
		case frameData:
			// The windowed data path: sequence numbers must be contiguous
			// within a connection (the stream cannot reorder; a gap is a
			// protocol error), and acks are cumulative — emitted when the
			// read buffer drains, on a failure, or at the credit bounds.
			if f.Seq != lastSeq+1 {
				return
			}
			lastSeq = f.Seq
			status := n.deposit(&f)
			unacked++
			for _, rec := range f.Records {
				unackedBytes += len(rec)
			}
			if status != statusOK || br.Buffered() == 0 ||
				unacked >= ackEveryFrames || unackedBytes >= ackEveryBytes {
				ackStatus[0] = status
				ackFrame.From = n.cfg.Rank
				ackFrame.Gen = n.gen.Load()
				ackFrame.Seq = f.Seq
				ackFrame.Records = ackRecords
				b, err := AppendFrame(ackScratch[:0], &ackFrame)
				if err != nil {
					return
				}
				ackScratch = b
				conn.SetWriteDeadline(time.Now().Add(n.cfg.AckTimeout))
				if _, err := conn.Write(b); err != nil {
					return
				}
				unacked, unackedBytes = 0, 0
			}
			continue
		case framePing:
			// Liveness only: generation is irrelevant to "is this process
			// up", and pings race the rendezvous during startup.
			if !n.Alive(n.cfg.Rank) {
				reply = n.ackFrame(statusDead)
			} else {
				reply = n.ackFrame(statusOK)
			}
		case frameProbe:
			reply = n.ackFrame(n.serveProbe(&f))
		case frameHello:
			ok := false
			reply, ok = n.serveHello(&f)
			if !ok {
				return
			}
		case frameBarrierEnter:
			reply = n.ackFrame(n.serveBarrierEnter(&f))
		case frameBarrierRelease:
			// Rank 0's epoch only grows, so any release at or above the
			// coordinator's admission floor is current.
			if f.Gen >= n.admittedOf(f.From) {
				n.barrierReleased(f.Key)
			}
		case frameJoin:
			reply = n.serveJoin(&f)
		case frameJoinAnnounce:
			reply = n.ackFrame(n.serveJoinAnnounce(&f))
		default:
			return // unknown type: protocol error, drop the link
		}
		if reply != nil {
			conn.SetWriteDeadline(time.Now().Add(n.cfg.AckTimeout))
			if err := writeFrame(conn, reply); err != nil {
				return
			}
		}
	}
}

func (n *Net) ackFrame(status byte) *Frame {
	return &Frame{Type: frameAck, From: n.cfg.Rank, Gen: n.gen.Load(), Records: [][]byte{{status}}}
}

// deposit lands a data frame in registered memory, invoking the handler
// once per record on this (receiver-side) goroutine.
func (n *Net) deposit(f *Frame) byte {
	if !n.Alive(n.cfg.Rank) {
		return statusDead
	}
	if f.Gen < n.admittedOf(f.From) {
		// Zombie writer: the frame's epoch predates the sender's last
		// admission, so it was stamped by a previous incarnation.
		n.staleRejected.Add(1)
		return statusStaleEpoch
	}
	n.regMu.RLock()
	h := n.regs[f.Key]
	n.regMu.RUnlock()
	if h == nil {
		return statusNotRegistered
	}
	status := statusOK
	for _, rec := range f.Records {
		if h(f.From, rec) != nil {
			status = statusHandlerErr
		}
	}
	return status
}

// serveProbe answers a delegated ping: probe the target from this rank's
// own vantage point and report the verdict.
func (n *Net) serveProbe(f *Frame) byte {
	if !n.Alive(n.cfg.Rank) {
		return statusDead
	}
	if len(f.Records) != 1 || len(f.Records[0]) != 4 {
		return statusTransient
	}
	target := int(int32(binary.LittleEndian.Uint32(f.Records[0])))
	if target < 0 || target >= len(n.cfg.Peers) {
		return statusTransient
	}
	err := n.localPing(target)
	switch {
	case err == nil:
		return statusOK
	case errors.Is(err, fabric.ErrTransient):
		return statusTransient
	default:
		return statusUnreachable
	}
}

// serveHello handles a rendezvous announcement at rank 0: record the
// arrival, block this connection's goroutine until the whole cluster has
// arrived, then release the sender with the cluster generation. The false
// return means the link must be dropped without a reply.
func (n *Net) serveHello(f *Frame) (*Frame, bool) {
	if n.cfg.Rank != 0 {
		return nil, false // only rank 0 hosts the rendezvous
	}
	ready := n.helloArrived(f.From)
	select {
	case <-ready:
		return &Frame{Type: frameHelloAck, From: n.cfg.Rank, Gen: n.gen.Load()}, true
	case <-time.After(n.cfg.RendezvousTimeout):
		return nil, false
	case <-n.done:
		return nil, false
	}
}
