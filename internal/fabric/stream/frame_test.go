package stream

import (
	"bytes"
	"encoding/binary"
	"errors"
	"io"
	"testing"
)

// frameCases spans the shapes dstorm actually sends: dense segment writes
// (one fat record), sparse batches (many small records), empty payloads,
// and control frames with no records at all.
func frameCases() []*Frame {
	dense := make([]byte, 1<<16)
	for i := range dense {
		dense[i] = byte(i * 31)
	}
	sparse := make([][]byte, 64)
	for i := range sparse {
		rec := make([]byte, 3+i%7)
		for j := range rec {
			rec[j] = byte(i + j)
		}
		sparse[i] = rec
	}
	return []*Frame{
		{Type: frameData, From: 0, Gen: 1, Seq: 1, Key: "w0", Records: [][]byte{dense}},
		{Type: frameData, From: 2, Gen: 1 << 60, Seq: 1 << 40, Key: "grad/sparse", Records: sparse},
		{Type: frameData, From: 1, Gen: 7, Seq: 3, Key: "k", Records: [][]byte{{}, {1}, {}}},
		{Type: frameData, From: 5, Gen: 9, Key: "empty-batch"},
		{Type: framePing, From: 3, Gen: 0},
		{Type: frameAck, From: 0, Gen: 42, Records: [][]byte{{statusOK}}},
		{Type: frameAckCum, From: 1, Gen: 42, Seq: 1<<64 - 1, Records: [][]byte{{statusOK}}},
		{Type: frameAckCum, From: 0, Gen: 9, Seq: 17, Records: [][]byte{{statusStaleEpoch}}},
		{Type: frameProbe, From: 1, Gen: 3, Records: [][]byte{{2, 0, 0, 0}}},
		{Type: frameBarrierEnter, From: 2, Gen: 11, Key: "step:17"},
		{Type: frameData, From: 0, Gen: 1, Seq: 2, Key: string(make([]byte, MaxKeyLen)), Records: [][]byte{{9}}},
	}
}

func framesEqual(a, b *Frame) bool {
	if a.Type != b.Type || a.From != b.From || a.Gen != b.Gen || a.Seq != b.Seq || a.Key != b.Key {
		return false
	}
	if len(a.Records) != len(b.Records) {
		return false
	}
	for i := range a.Records {
		if !bytes.Equal(a.Records[i], b.Records[i]) {
			return false
		}
	}
	return true
}

func TestFrameRoundTrip(t *testing.T) {
	for i, f := range frameCases() {
		b, err := EncodeFrame(f)
		if err != nil {
			t.Fatalf("case %d: encode: %v", i, err)
		}
		got, n, err := DecodeFrame(b)
		if err != nil {
			t.Fatalf("case %d: decode: %v", i, err)
		}
		if n != len(b) {
			t.Fatalf("case %d: consumed %d of %d bytes", i, n, len(b))
		}
		if !framesEqual(f, got) {
			t.Fatalf("case %d: round trip mismatch: sent %+v got %+v", i, f, got)
		}
	}
}

func TestFrameStreamRoundTrip(t *testing.T) {
	// Several frames back to back through the io path, as a connection
	// would see them.
	var buf bytes.Buffer
	cases := frameCases()
	for i, f := range cases {
		if err := writeFrame(&buf, f); err != nil {
			t.Fatalf("case %d: writeFrame: %v", i, err)
		}
	}
	for i, f := range cases {
		got, err := readFrame(&buf)
		if err != nil {
			t.Fatalf("case %d: readFrame: %v", i, err)
		}
		if !framesEqual(f, got) {
			t.Fatalf("case %d: stream round trip mismatch", i)
		}
	}
	if _, err := readFrame(&buf); err != io.EOF {
		t.Fatalf("drained stream: want io.EOF, got %v", err)
	}
}

func TestFrameTruncatedRejected(t *testing.T) {
	f := &Frame{Type: frameData, From: 1, Gen: 5, Key: "w", Records: [][]byte{{1, 2, 3}, {4, 5}}}
	b, err := EncodeFrame(f)
	if err != nil {
		t.Fatal(err)
	}
	for cut := 0; cut < len(b); cut++ {
		if _, _, err := DecodeFrame(b[:cut]); !errors.Is(err, ErrFrameTruncated) {
			t.Fatalf("cut at %d/%d: want ErrFrameTruncated, got %v", cut, len(b), err)
		}
		if _, err := readFrame(bytes.NewReader(b[:cut])); err == nil {
			t.Fatalf("readFrame cut at %d/%d: want error, got nil", cut, len(b))
		}
	}
}

func TestFrameOversizeRejected(t *testing.T) {
	// Encode side: key and record-count limits.
	if _, err := EncodeFrame(&Frame{Type: frameData, Key: string(make([]byte, MaxKeyLen+1))}); !errors.Is(err, ErrFrameOversize) {
		t.Fatalf("oversized key: want ErrFrameOversize, got %v", err)
	}
	if _, err := EncodeFrame(&Frame{Type: frameData, Records: make([][]byte, maxRecords+1)}); !errors.Is(err, ErrFrameOversize) {
		t.Fatalf("too many records: want ErrFrameOversize, got %v", err)
	}

	// Decode side: a hostile length prefix must be rejected before any
	// allocation of that size.
	huge := make([]byte, 4)
	binary.LittleEndian.PutUint32(huge, uint32(MaxBody+1))
	if _, _, err := DecodeFrame(huge); !errors.Is(err, ErrFrameOversize) {
		t.Fatalf("huge body prefix: want ErrFrameOversize, got %v", err)
	}
	if _, err := readFrame(bytes.NewReader(huge)); !errors.Is(err, ErrFrameOversize) {
		t.Fatalf("readFrame huge body prefix: want ErrFrameOversize, got %v", err)
	}

	// A body whose header claims an oversized key.
	b, err := EncodeFrame(&Frame{Type: frameData, From: 0, Key: "k"})
	if err != nil {
		t.Fatal(err)
	}
	binary.LittleEndian.PutUint16(b[4+2:], MaxKeyLen+1)
	if _, _, err := DecodeFrame(b); !errors.Is(err, ErrFrameOversize) {
		t.Fatalf("oversized keyLen in header: want ErrFrameOversize, got %v", err)
	}
}

func TestFrameCorruptRejected(t *testing.T) {
	f := &Frame{Type: frameData, From: 1, Gen: 5, Key: "w", Records: [][]byte{{1, 2, 3}}}
	good, err := EncodeFrame(f)
	if err != nil {
		t.Fatal(err)
	}

	// Record length overrunning the body.
	b := append([]byte(nil), good...)
	binary.LittleEndian.PutUint32(b[4+frameHeaderLen+1:], 1000)
	if _, _, err := DecodeFrame(b); !errors.Is(err, ErrFrameCorrupt) {
		t.Fatalf("record overrun: want ErrFrameCorrupt, got %v", err)
	}

	// Trailing bytes the header does not account for.
	b = append([]byte(nil), good...)
	binary.LittleEndian.PutUint32(b[4+4+2+2:], 0) // recCount = 0, record bytes now unaccounted
	if _, _, err := DecodeFrame(b); !errors.Is(err, ErrFrameCorrupt) {
		t.Fatalf("trailing bytes: want ErrFrameCorrupt, got %v", err)
	}

	// Body shorter than the fixed header.
	short := make([]byte, 4+frameHeaderLen-1)
	binary.LittleEndian.PutUint32(short, frameHeaderLen-1)
	if _, _, err := DecodeFrame(short); !errors.Is(err, ErrFrameCorrupt) {
		t.Fatalf("sub-header body: want ErrFrameCorrupt, got %v", err)
	}
}

// TestFrameSeqBytes pins the sequence number's wire position (the last 8
// header bytes, appended after gen so pre-windowing offsets are stable):
// patching those bytes changes only Seq, and the patched frame is still
// canonical under re-encode.
func TestFrameSeqBytes(t *testing.T) {
	f := &Frame{Type: frameData, From: 1, Gen: 5, Seq: 9, Key: "w", Records: [][]byte{{1, 2, 3}}}
	b, err := EncodeFrame(f)
	if err != nil {
		t.Fatal(err)
	}
	if got := binary.LittleEndian.Uint64(b[4+frameHeaderLen-8:]); got != 9 {
		t.Fatalf("seq bytes = %d, want 9", got)
	}
	binary.LittleEndian.PutUint64(b[4+frameHeaderLen-8:], 1<<33)
	got, n, err := DecodeFrame(b)
	if err != nil {
		t.Fatalf("decode patched seq: %v", err)
	}
	if got.Seq != 1<<33 {
		t.Fatalf("patched Seq = %d, want %d", got.Seq, uint64(1)<<33)
	}
	want := *f
	want.Seq = 1 << 33
	if !framesEqual(&want, got) {
		t.Fatalf("patching seq altered other fields: %+v", got)
	}
	re, err := EncodeFrame(got)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(re, b[:n]) {
		t.Fatal("patched frame is not canonical under re-encode")
	}
}

// TestFrameAckCumShape pins the cumulative-ack wire form the ack reader
// validates: exactly one single-byte status record plus the covered Seq.
func TestFrameAckCumShape(t *testing.T) {
	f := &Frame{Type: frameAckCum, From: 2, Gen: 3, Seq: 41, Records: [][]byte{{statusHandlerErr}}}
	b, err := EncodeFrame(f)
	if err != nil {
		t.Fatal(err)
	}
	got, _, err := DecodeFrame(b)
	if err != nil {
		t.Fatal(err)
	}
	if got.Type != frameAckCum || got.Seq != 41 {
		t.Fatalf("ack cum decoded as type %d seq %d", got.Type, got.Seq)
	}
	if len(got.Records) != 1 || len(got.Records[0]) != 1 || got.Records[0][0] != statusHandlerErr {
		t.Fatalf("ack cum records = %v, want single status byte", got.Records)
	}
}

func FuzzFrameDecode(f *testing.F) {
	for _, c := range frameCases() {
		if b, err := EncodeFrame(c); err == nil {
			f.Add(b)
		}
	}
	f.Add([]byte{})
	f.Add([]byte{0xff, 0xff, 0xff, 0xff})
	f.Fuzz(func(t *testing.T, data []byte) {
		fr, n, err := DecodeFrame(data)
		if err != nil {
			if fr != nil {
				t.Fatalf("error %v with non-nil frame", err)
			}
			return
		}
		if n < 4 || n > len(data) {
			t.Fatalf("consumed %d bytes of %d", n, len(data))
		}
		// Whatever decodes must re-encode to the exact bytes consumed:
		// the codec has one canonical form.
		re, err := EncodeFrame(fr)
		if err != nil {
			t.Fatalf("re-encode of decoded frame failed: %v", err)
		}
		if !bytes.Equal(re, data[:n]) {
			t.Fatalf("re-encode mismatch: %x vs %x", re, data[:n])
		}
	})
}
