package fabric

import (
	"bytes"
	"errors"
	"sync"
	"testing"
)

func newTCP(t *testing.T, ranks int) *Fabric {
	t.Helper()
	f, err := New(Config{Ranks: ranks, Delivery: TCP})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { f.Close() })
	return f
}

func TestTCPWriteDelivers(t *testing.T) {
	f := newTCP(t, 2)
	got := make(chan []byte, 1)
	var from int
	if err := f.Register(1, "seg", func(sender int, p []byte) error {
		from = sender
		got <- append([]byte(nil), p...)
		return nil
	}); err != nil {
		t.Fatal(err)
	}
	payload := bytes.Repeat([]byte{0x5A}, 10000)
	if err := f.Write(0, 1, "seg", payload); err != nil {
		t.Fatal(err)
	}
	// The ack guarantees the handler ran before Write returned.
	select {
	case p := <-got:
		if !bytes.Equal(p, payload) {
			t.Fatal("payload corrupted over TCP")
		}
	default:
		t.Fatal("handler did not run before ack")
	}
	if from != 0 {
		t.Fatalf("sender = %d", from)
	}
	if f.Stats().TotalBytes() != uint64(len(payload)) {
		t.Fatalf("bytes = %d", f.Stats().TotalBytes())
	}
}

func TestTCPUnregisteredKeyRejected(t *testing.T) {
	f := newTCP(t, 2)
	if err := f.Write(0, 1, "nope", []byte("x")); !errors.Is(err, ErrNotRegistered) {
		t.Fatalf("err = %v, want ErrNotRegistered", err)
	}
}

func TestTCPHandlerErrorSurfacesToSender(t *testing.T) {
	f := newTCP(t, 2)
	if err := f.Register(1, "seg", func(int, []byte) error {
		return errors.New("receiver rejects")
	}); err != nil {
		t.Fatal(err)
	}
	if err := f.Write(0, 1, "seg", []byte("x")); err == nil {
		t.Fatal("handler error should surface as failed write")
	}
}

func TestTCPDeadRankUnreachable(t *testing.T) {
	f := newTCP(t, 3)
	if err := f.Register(2, "seg", func(int, []byte) error { return nil }); err != nil {
		t.Fatal(err)
	}
	if err := f.Kill(2); err != nil {
		t.Fatal(err)
	}
	if err := f.Write(0, 2, "seg", []byte("x")); !errors.Is(err, ErrUnreachable) {
		t.Fatalf("err = %v", err)
	}
}

func TestTCPConcurrentWrites(t *testing.T) {
	const ranks, writes = 4, 60
	f := newTCP(t, ranks)
	var mu sync.Mutex
	count := map[int]int{}
	for r := 0; r < ranks; r++ {
		r := r
		if err := f.Register(r, "seg", func(from int, p []byte) error {
			mu.Lock()
			count[r]++
			mu.Unlock()
			return nil
		}); err != nil {
			t.Fatal(err)
		}
	}
	var wg sync.WaitGroup
	for from := 0; from < ranks; from++ {
		wg.Add(1)
		go func(from int) {
			defer wg.Done()
			for i := 0; i < writes; i++ {
				to := (from + 1 + i%(ranks-1)) % ranks
				if err := f.Write(from, to, "seg", []byte{byte(i)}); err != nil {
					t.Errorf("write %d->%d: %v", from, to, err)
					return
				}
			}
		}(from)
	}
	wg.Wait()
	mu.Lock()
	total := 0
	for _, c := range count {
		total += c
	}
	mu.Unlock()
	if total != ranks*writes {
		t.Fatalf("delivered %d writes, want %d", total, ranks*writes)
	}
}

func TestTCPCloseIdempotent(t *testing.T) {
	f := newTCP(t, 2)
	if err := f.Close(); err != nil {
		t.Fatal(err)
	}
	if err := f.Close(); err != nil {
		t.Fatal(err)
	}
}

func TestInProcCloseNoop(t *testing.T) {
	f, err := New(Config{Ranks: 1})
	if err != nil {
		t.Fatal(err)
	}
	if err := f.Close(); err != nil {
		t.Fatal(err)
	}
}

// TestTCPEndToEndTraining runs a tiny distributed exchange over real
// sockets through the whole dstorm/vol stack — covered in vol tests for
// in-proc; here the transport differs. Implemented at the fabric level to
// avoid an import cycle: two ranks ping-pong payloads.
func TestTCPPingPong(t *testing.T) {
	f := newTCP(t, 2)
	recv0 := make(chan byte, 16)
	recv1 := make(chan byte, 16)
	if err := f.Register(0, "pp", func(_ int, p []byte) error { recv0 <- p[0]; return nil }); err != nil {
		t.Fatal(err)
	}
	if err := f.Register(1, "pp", func(_ int, p []byte) error { recv1 <- p[0]; return nil }); err != nil {
		t.Fatal(err)
	}
	for i := byte(0); i < 10; i++ {
		if err := f.Write(0, 1, "pp", []byte{i}); err != nil {
			t.Fatal(err)
		}
		if got := <-recv1; got != i {
			t.Fatalf("rank1 got %d, want %d", got, i)
		}
		if err := f.Write(1, 0, "pp", []byte{i + 100}); err != nil {
			t.Fatal(err)
		}
		if got := <-recv0; got != i+100 {
			t.Fatalf("rank0 got %d, want %d", got, i+100)
		}
	}
}
