package fabric

import (
	"errors"
	"sync"
	"testing"
	"time"
)

func newTestFabric(t *testing.T, ranks int) *Fabric {
	t.Helper()
	f, err := New(Config{Ranks: ranks})
	if err != nil {
		t.Fatal(err)
	}
	return f
}

func TestNewValidation(t *testing.T) {
	if _, err := New(Config{Ranks: 0}); err == nil {
		t.Fatal("Ranks=0 should fail")
	}
	f := newTestFabric(t, 3)
	if f.Ranks() != 3 {
		t.Fatalf("Ranks = %d", f.Ranks())
	}
	if f.Config().Latency == 0 || f.Config().Bandwidth == 0 {
		t.Fatal("defaults not applied")
	}
}

func TestOneSidedWriteDelivers(t *testing.T) {
	f := newTestFabric(t, 2)
	var got []byte
	var from int
	err := f.Register(1, "seg", func(sender int, p []byte) error {
		from = sender
		got = append([]byte(nil), p...)
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	if err := f.Write(0, 1, "seg", []byte("hello")); err != nil {
		t.Fatal(err)
	}
	if from != 0 || string(got) != "hello" {
		t.Fatalf("delivered from=%d payload=%q", from, got)
	}
}

func TestWriteToUnregisteredKey(t *testing.T) {
	f := newTestFabric(t, 2)
	err := f.Write(0, 1, "nope", []byte("x"))
	if !errors.Is(err, ErrNotRegistered) {
		t.Fatalf("err = %v, want ErrNotRegistered", err)
	}
}

func TestWriteRankValidation(t *testing.T) {
	f := newTestFabric(t, 2)
	if err := f.Write(-1, 1, "k", nil); err == nil {
		t.Fatal("negative sender should fail")
	}
	if err := f.Write(0, 5, "k", nil); err == nil {
		t.Fatal("out-of-range dest should fail")
	}
}

func TestKillMakesUnreachable(t *testing.T) {
	f := newTestFabric(t, 3)
	if err := f.Register(2, "seg", func(int, []byte) error { return nil }); err != nil {
		t.Fatal(err)
	}
	if err := f.Kill(2); err != nil {
		t.Fatal(err)
	}
	if f.Alive(2) {
		t.Fatal("rank 2 should be dead")
	}
	err := f.Write(0, 2, "seg", []byte("x"))
	if !errors.Is(err, ErrUnreachable) {
		t.Fatalf("write to dead rank: err = %v", err)
	}
	if err := f.Ping(0, 2); !errors.Is(err, ErrUnreachable) {
		t.Fatalf("ping to dead rank: err = %v", err)
	}
	if got := f.Stats().FailedWrites(); got != 1 {
		t.Fatalf("FailedWrites = %d, want 1", got)
	}
	alive := f.AliveRanks()
	if len(alive) != 2 || alive[0] != 0 || alive[1] != 1 {
		t.Fatalf("AliveRanks = %v", alive)
	}
}

func TestDeadSenderCannotWrite(t *testing.T) {
	f := newTestFabric(t, 2)
	if err := f.Register(1, "seg", func(int, []byte) error { return nil }); err != nil {
		t.Fatal(err)
	}
	if err := f.Kill(0); err != nil {
		t.Fatal(err)
	}
	if err := f.Write(0, 1, "seg", []byte("x")); !errors.Is(err, ErrSenderDead) {
		t.Fatalf("err = %v, want ErrSenderDead", err)
	}
}

func TestReviveRestoresReachability(t *testing.T) {
	f := newTestFabric(t, 2)
	called := false
	if err := f.Register(1, "seg", func(int, []byte) error { called = true; return nil }); err != nil {
		t.Fatal(err)
	}
	if err := f.Kill(1); err != nil {
		t.Fatal(err)
	}
	if err := f.Revive(1); err != nil {
		t.Fatal(err)
	}
	if err := f.Write(0, 1, "seg", []byte("x")); err != nil {
		t.Fatal(err)
	}
	if !called {
		t.Fatal("handler not invoked after revive")
	}
}

func TestLivenessCallback(t *testing.T) {
	f := newTestFabric(t, 2)
	var mu sync.Mutex
	var events []bool
	f.OnLivenessChange(func(rank int, alive bool) {
		mu.Lock()
		events = append(events, alive)
		mu.Unlock()
	})
	if err := f.Kill(1); err != nil {
		t.Fatal(err)
	}
	if err := f.Kill(1); err != nil { // no change, no event
		t.Fatal(err)
	}
	if err := f.Revive(1); err != nil {
		t.Fatal(err)
	}
	mu.Lock()
	defer mu.Unlock()
	if len(events) != 2 || events[0] != false || events[1] != true {
		t.Fatalf("events = %v", events)
	}
}

func TestPartition(t *testing.T) {
	f := newTestFabric(t, 4)
	if err := f.Register(2, "seg", func(int, []byte) error { return nil }); err != nil {
		t.Fatal(err)
	}
	if err := f.Partition([][]int{{0, 1}, {2, 3}}); err != nil {
		t.Fatal(err)
	}
	if err := f.Write(0, 2, "seg", []byte("x")); !errors.Is(err, ErrUnreachable) {
		t.Fatalf("cross-partition write: err = %v", err)
	}
	if err := f.Ping(3, 2); err != nil {
		t.Fatalf("intra-partition ping failed: %v", err)
	}
	f.Heal()
	if err := f.Write(0, 2, "seg", []byte("x")); err != nil {
		t.Fatalf("post-heal write failed: %v", err)
	}
	if err := f.Partition([][]int{{9}}); err == nil {
		t.Fatal("out-of-range partition rank should fail")
	}
}

func TestStatsAccounting(t *testing.T) {
	f := newTestFabric(t, 3)
	for r := 0; r < 3; r++ {
		if err := f.Register(r, "seg", func(int, []byte) error { return nil }); err != nil {
			t.Fatal(err)
		}
	}
	payload := make([]byte, 1000)
	if err := f.Write(0, 1, "seg", payload); err != nil {
		t.Fatal(err)
	}
	//maltlint:allow bufretain -- stats test re-posts one read-only buffer to count bytes; the fabric copies on deposit
	if err := f.Write(0, 2, "seg", payload); err != nil {
		t.Fatal(err)
	}
	//maltlint:allow bufretain -- stats test re-posts one read-only buffer to count bytes; the fabric copies on deposit
	if err := f.Write(1, 0, "seg", payload[:500]); err != nil {
		t.Fatal(err)
	}
	st := f.Stats()
	if st.BytesSent(0) != 2000 {
		t.Fatalf("BytesSent(0) = %d", st.BytesSent(0))
	}
	if st.BytesReceived(0) != 500 {
		t.Fatalf("BytesReceived(0) = %d", st.BytesReceived(0))
	}
	if st.TotalBytes() != 2500 {
		t.Fatalf("TotalBytes = %d", st.TotalBytes())
	}
	if st.TotalMessages() != 3 {
		t.Fatalf("TotalMessages = %d", st.TotalMessages())
	}
	if st.LinkBytes(0, 1) != 1000 {
		t.Fatalf("LinkBytes(0,1) = %d", st.LinkBytes(0, 1))
	}
	if st.ModeledNetworkTime() <= 0 {
		t.Fatal("modeled time should accumulate")
	}
	st.Reset()
	if st.TotalBytes() != 0 || st.TotalMessages() != 0 {
		t.Fatal("Reset did not clear counters")
	}
}

func TestModelCost(t *testing.T) {
	f, err := New(Config{Ranks: 2, Latency: time.Microsecond, Bandwidth: 1 << 30})
	if err != nil {
		t.Fatal(err)
	}
	// 1 GiB at 1 GiB/s = 1 s, plus 1 µs latency.
	got := f.modelCost(1 << 30)
	if got < time.Second || got > time.Second+time.Millisecond {
		t.Fatalf("modelCost(1GiB) = %v", got)
	}
	if c := f.modelCost(0); c != time.Microsecond {
		t.Fatalf("modelCost(0) = %v", c)
	}
}

func TestDelaySleepImposed(t *testing.T) {
	f, err := New(Config{Ranks: 2, Latency: 20 * time.Millisecond, Bandwidth: 1 << 40, Delay: DelaySleep})
	if err != nil {
		t.Fatal(err)
	}
	if err := f.Register(1, "seg", func(int, []byte) error { return nil }); err != nil {
		t.Fatal(err)
	}
	start := time.Now()
	if err := f.Write(0, 1, "seg", []byte("x")); err != nil {
		t.Fatal(err)
	}
	if elapsed := time.Since(start); elapsed < 15*time.Millisecond {
		t.Fatalf("DelaySleep write returned in %v, want >= ~20ms", elapsed)
	}
}

func TestConcurrentWritesAreSafe(t *testing.T) {
	f := newTestFabric(t, 8)
	var mu sync.Mutex
	count := 0
	for r := 0; r < 8; r++ {
		if err := f.Register(r, "seg", func(int, []byte) error {
			mu.Lock()
			count++
			mu.Unlock()
			return nil
		}); err != nil {
			t.Fatal(err)
		}
	}
	var wg sync.WaitGroup
	for from := 0; from < 8; from++ {
		wg.Add(1)
		go func(from int) {
			defer wg.Done()
			for i := 0; i < 50; i++ {
				to := (from + 1 + i) % 8
				if to == from {
					continue
				}
				if err := f.Write(from, to, "seg", []byte{byte(i)}); err != nil {
					t.Errorf("write: %v", err)
					return
				}
			}
		}(from)
	}
	wg.Wait()
	mu.Lock()
	defer mu.Unlock()
	if uint64(count) != f.Stats().TotalMessages() {
		t.Fatalf("handler invocations %d != messages %d", count, f.Stats().TotalMessages())
	}
}

func TestUnregister(t *testing.T) {
	f := newTestFabric(t, 2)
	if err := f.Register(1, "seg", func(int, []byte) error { return nil }); err != nil {
		t.Fatal(err)
	}
	if err := f.Unregister(1, "seg"); err != nil {
		t.Fatal(err)
	}
	if err := f.Write(0, 1, "seg", []byte("x")); !errors.Is(err, ErrNotRegistered) {
		t.Fatalf("err = %v, want ErrNotRegistered", err)
	}
}

func TestDelaySpinImposed(t *testing.T) {
	f, err := New(Config{Ranks: 2, Latency: 5 * time.Millisecond, Bandwidth: 1 << 40, Delay: DelaySpin})
	if err != nil {
		t.Fatal(err)
	}
	if err := f.Register(1, "seg", func(int, []byte) error { return nil }); err != nil {
		t.Fatal(err)
	}
	start := time.Now()
	if err := f.Write(0, 1, "seg", []byte("x")); err != nil {
		t.Fatal(err)
	}
	if elapsed := time.Since(start); elapsed < 4*time.Millisecond {
		t.Fatalf("DelaySpin write returned in %v, want >= ~5ms", elapsed)
	}
}

func TestRegisterValidation(t *testing.T) {
	f := newTestFabric(t, 2)
	if err := f.Register(0, "k", nil); err == nil {
		t.Fatal("nil handler should fail")
	}
	if err := f.Register(9, "k", func(int, []byte) error { return nil }); err == nil {
		t.Fatal("out-of-range rank should fail")
	}
	if err := f.Unregister(9, "k"); err == nil {
		t.Fatal("out-of-range unregister should fail")
	}
}

func TestTransportNames(t *testing.T) {
	if InProc.String() != "inproc" || TCP.String() != "tcp" {
		t.Fatal("transport names wrong")
	}
}

func TestGroupOfAndReachable(t *testing.T) {
	f := newTestFabric(t, 4)
	if f.GroupOf(2) != 0 || !f.Reachable(0, 3) {
		t.Fatal("unpartitioned fabric should be one group")
	}
	if err := f.Partition([][]int{{0, 1}, {2, 3}}); err != nil {
		t.Fatal(err)
	}
	if f.GroupOf(0) != 0 || f.GroupOf(3) != 1 {
		t.Fatalf("groups = %d/%d", f.GroupOf(0), f.GroupOf(3))
	}
	if f.Reachable(0, 2) {
		t.Fatal("cross-partition ranks reported reachable")
	}
	if !f.Reachable(2, 3) {
		t.Fatal("same-partition ranks reported unreachable")
	}
	if err := f.Kill(3); err != nil {
		t.Fatal(err)
	}
	if f.Reachable(2, 3) {
		t.Fatal("dead rank reported reachable")
	}
	if f.GroupOf(-1) != 0 || f.Reachable(-1, 0) {
		t.Fatal("out-of-range ranks mishandled")
	}
}

func TestPartitionNotifiesWatchers(t *testing.T) {
	f := newTestFabric(t, 2)
	var mu sync.Mutex
	calls := 0
	f.OnLivenessChange(func(int, bool) {
		mu.Lock()
		calls++
		mu.Unlock()
	})
	if err := f.Partition([][]int{{0}, {1}}); err != nil {
		t.Fatal(err)
	}
	f.Heal()
	mu.Lock()
	defer mu.Unlock()
	if calls < 2 {
		t.Fatalf("watchers notified %d times, want >= 2 (partition + heal)", calls)
	}
}
