package fabric

import (
	"encoding/binary"
	"errors"
	"fmt"
	"io"
	"net"
	"sync"
)

// Delivery selects how the simulated fabric moves one-sided writes between
// its in-process ranks. (Cross-process backends implement the Transport
// interface instead; see transport.go and fabric/tcpnet.)
type Delivery int

const (
	// InProc delivers writes by direct memory copy on the sender's
	// goroutine — the default, closest to real RDMA semantics.
	InProc Delivery = iota
	// TCP delivers writes over loopback TCP sockets: every rank owns a
	// listener, senders keep one persistent connection per peer, and each
	// write is a framed message acknowledged by the receiver. The handler
	// runs on the receiver's connection goroutine — the moral equivalent
	// of the NIC's DMA engine, still never the training loop. Use it to
	// exercise real serialization, syscall and kernel-networking costs.
	TCP
)

// String returns the delivery-mode name.
func (t Delivery) String() string {
	if t == TCP {
		return "tcp"
	}
	return "inproc"
}

// frame layout: u32 payloadLen | u32 from | u16 keyLen | key | payload,
// answered by a single status byte (0 ok, 1 error).
const (
	tcpStatusOK  = 0
	tcpStatusErr = 1
)

// tcpFabric carries the TCP-mode state of a Fabric.
type tcpFabric struct {
	fab       *Fabric
	listeners []net.Listener

	mu    sync.Mutex
	conns map[int]map[int]*tcpConn // from → to → connection
	done  chan struct{}
	wg    sync.WaitGroup
}

// tcpConn serializes writes on one (from, to) link.
type tcpConn struct {
	mu sync.Mutex
	c  net.Conn
}

func newTCPFabric(f *Fabric) (*tcpFabric, error) {
	t := &tcpFabric{
		fab:       f,
		listeners: make([]net.Listener, f.cfg.Ranks),
		conns:     make(map[int]map[int]*tcpConn),
		done:      make(chan struct{}),
	}
	for rank := 0; rank < f.cfg.Ranks; rank++ {
		ln, err := net.Listen("tcp", "127.0.0.1:0")
		if err != nil {
			t.close()
			return nil, fmt.Errorf("fabric: tcp listen for rank %d: %w", rank, err)
		}
		t.listeners[rank] = ln
		t.wg.Add(1)
		go t.acceptLoop(rank, ln)
	}
	return t, nil
}

func (t *tcpFabric) acceptLoop(rank int, ln net.Listener) {
	defer t.wg.Done()
	for {
		conn, err := ln.Accept()
		if err != nil {
			select {
			case <-t.done:
				return
			default:
				// Listener failed unexpectedly; the rank becomes silently
				// unreachable, which peers observe as failed writes.
				return
			}
		}
		t.wg.Add(1)
		go t.serveConn(rank, conn)
	}
}

// serveConn is the receiver-side "DMA engine": it deposits incoming writes
// into registered memory and acknowledges each.
func (t *tcpFabric) serveConn(rank int, conn net.Conn) {
	defer t.wg.Done()
	defer conn.Close()
	var hdr [10]byte
	for {
		if _, err := io.ReadFull(conn, hdr[:]); err != nil {
			return
		}
		payloadLen := binary.LittleEndian.Uint32(hdr[0:4])
		from := int(binary.LittleEndian.Uint32(hdr[4:8]))
		keyLen := int(binary.LittleEndian.Uint16(hdr[8:10]))
		if payloadLen > 1<<30 || keyLen > 4096 {
			return // corrupt frame; drop the link
		}
		buf := make([]byte, keyLen+int(payloadLen))
		if _, err := io.ReadFull(conn, buf); err != nil {
			return
		}
		key := string(buf[:keyLen])
		payload := buf[keyLen:]

		t.fab.mu.RLock()
		h := t.fab.regs[rank][key]
		t.fab.mu.RUnlock()

		status := byte(tcpStatusOK)
		if h == nil || h(from, payload) != nil {
			status = tcpStatusErr
		}
		if _, err := conn.Write([]byte{status}); err != nil {
			return
		}
	}
}

// write sends one framed write and waits for the ack.
func (t *tcpFabric) write(from, to int, key string, payload []byte) error {
	conn, err := t.conn(from, to)
	if err != nil {
		return fmt.Errorf("%w: rank %d -> rank %d: %v", ErrUnreachable, from, to, err)
	}
	conn.mu.Lock()
	defer conn.mu.Unlock()

	hdr := make([]byte, 10+len(key))
	binary.LittleEndian.PutUint32(hdr[0:4], uint32(len(payload)))
	binary.LittleEndian.PutUint32(hdr[4:8], uint32(from))
	binary.LittleEndian.PutUint16(hdr[8:10], uint16(len(key)))
	copy(hdr[10:], key)
	if _, err := conn.c.Write(hdr); err != nil {
		t.drop(from, to)
		return fmt.Errorf("%w: rank %d -> rank %d: %v", ErrUnreachable, from, to, err)
	}
	if _, err := conn.c.Write(payload); err != nil {
		t.drop(from, to)
		return fmt.Errorf("%w: rank %d -> rank %d: %v", ErrUnreachable, from, to, err)
	}
	var status [1]byte
	if _, err := io.ReadFull(conn.c, status[:]); err != nil {
		t.drop(from, to)
		return fmt.Errorf("%w: rank %d -> rank %d: %v", ErrUnreachable, from, to, err)
	}
	if status[0] != tcpStatusOK {
		return fmt.Errorf("%w: write rejected by rank %d", ErrNotRegistered, to)
	}
	return nil
}

func (t *tcpFabric) conn(from, to int) (*tcpConn, error) {
	t.mu.Lock()
	defer t.mu.Unlock()
	if m := t.conns[from]; m != nil {
		if c := m[to]; c != nil {
			return c, nil
		}
	}
	ln := t.listeners[to]
	if ln == nil {
		return nil, errors.New("no listener")
	}
	c, err := net.Dial("tcp", ln.Addr().String())
	if err != nil {
		return nil, err
	}
	if t.conns[from] == nil {
		t.conns[from] = make(map[int]*tcpConn)
	}
	tc := &tcpConn{c: c}
	t.conns[from][to] = tc
	return tc, nil
}

func (t *tcpFabric) drop(from, to int) {
	t.mu.Lock()
	defer t.mu.Unlock()
	if m := t.conns[from]; m != nil {
		if c := m[to]; c != nil {
			c.c.Close()
			delete(m, to)
		}
	}
}

func (t *tcpFabric) close() {
	t.mu.Lock()
	select {
	case <-t.done:
	default:
		close(t.done)
	}
	for _, ln := range t.listeners {
		if ln != nil {
			ln.Close()
		}
	}
	for _, m := range t.conns {
		for _, c := range m {
			c.c.Close()
		}
	}
	t.conns = make(map[int]map[int]*tcpConn)
	t.mu.Unlock()
	t.wg.Wait()
}
