// Package tcpnet is the TCP flavor of the shared framed-stream transport
// (internal/fabric/stream): MALT's one-sided writes emulated over
// persistent pooled loopback (or LAN) connections between OS processes,
// with windowed write pipelining and cumulative acks. The machinery — the
// frame codec, the control/data connection split, the sliding window, the
// rendezvous, barrier and join protocols — lives in the stream package;
// this package only pins the network to TCP.
package tcpnet

import "malt/internal/fabric/stream"

// Net is one rank's endpoint of a TCP cluster; see stream.Net.
type Net = stream.Net

// Config describes one rank of a TCP cluster; see stream.Config. The
// Network field is forced to TCP by New.
type Config = stream.Config

// Frame is one length-prefixed protocol message; see stream.Frame.
type Frame = stream.Frame

// Re-exported stream defaults, kept for existing callers.
const (
	DefaultDialTimeout       = stream.DefaultDialTimeout
	DefaultAckTimeout        = stream.DefaultAckTimeout
	DefaultRendezvousTimeout = stream.DefaultRendezvousTimeout
	DefaultBarrierTimeout    = stream.DefaultBarrierTimeout
	DefaultHeartbeatInterval = stream.DefaultHeartbeatInterval
	DefaultHeartbeatStrikes  = stream.DefaultHeartbeatStrikes
	DefaultWindowFrames      = stream.DefaultWindowFrames
	DefaultWindowBytes       = stream.DefaultWindowBytes
	MaxKeyLen                = stream.MaxKeyLen
	MaxBody                  = stream.MaxBody
)

// New binds this rank's TCP listener and starts its receiver loop. The
// returned Net is not usable for data operations until Rendezvous has
// completed on every rank.
func New(cfg Config) (*Net, error) {
	cfg.Network = stream.NetworkTCP
	return stream.New(cfg)
}
