package tcpnet

import (
	"bufio"
	"encoding/binary"
	"errors"
	"net"
	"time"

	"malt/internal/fabric"
)

// acceptLoop owns the rank's listener: every inbound connection gets one
// serving goroutine.
func (n *Net) acceptLoop(ln net.Listener) {
	defer n.wg.Done()
	for {
		conn, err := ln.Accept()
		if err != nil {
			// Closed (shutdown or Kill) or fatally broken: either way this
			// rank stops receiving, which peers observe as refused dials.
			return
		}
		n.wg.Add(1)
		go n.serveConn(conn)
	}
}

// serveConn is the receiver-side "DMA engine": one goroutine per inbound
// connection that deposits data frames directly into the registered
// WriteHandler ring and answers the control plane. The rank's training
// loop never participates — the one-sided contract.
func (n *Net) serveConn(conn net.Conn) {
	defer n.wg.Done()
	defer conn.Close()
	if !n.trackConn(conn) {
		return
	}
	defer n.untrackConn(conn)
	br := bufio.NewReader(conn)
	for {
		f, err := readFrame(br)
		if err != nil {
			return // EOF, peer reset, or a corrupt stream: drop the link
		}
		var reply *Frame
		switch f.Type {
		case frameData:
			reply = n.ackFrame(n.deposit(f))
		case framePing:
			// Liveness only: generation is irrelevant to "is this process
			// up", and pings race the rendezvous during startup.
			if !n.Alive(n.cfg.Rank) {
				reply = n.ackFrame(statusDead)
			} else {
				reply = n.ackFrame(statusOK)
			}
		case frameProbe:
			reply = n.ackFrame(n.serveProbe(f))
		case frameHello:
			ok := false
			reply, ok = n.serveHello(f)
			if !ok {
				return
			}
		case frameBarrierEnter:
			reply = n.ackFrame(n.serveBarrierEnter(f))
		case frameBarrierRelease:
			// Rank 0's epoch only grows, so any release at or above the
			// coordinator's admission floor is current.
			if f.Gen >= n.admittedOf(f.From) {
				n.barrierReleased(f.Key)
			}
		case frameJoin:
			reply = n.serveJoin(f)
		case frameJoinAnnounce:
			reply = n.ackFrame(n.serveJoinAnnounce(f))
		default:
			return // unknown type: protocol error, drop the link
		}
		if reply != nil {
			conn.SetWriteDeadline(time.Now().Add(n.cfg.AckTimeout))
			if err := writeFrame(conn, reply); err != nil {
				return
			}
		}
	}
}

func (n *Net) ackFrame(status byte) *Frame {
	return &Frame{Type: frameAck, From: n.cfg.Rank, Gen: n.gen.Load(), Records: [][]byte{{status}}}
}

// deposit lands a data frame in registered memory, invoking the handler
// once per record on this (receiver-side) goroutine.
func (n *Net) deposit(f *Frame) byte {
	if !n.Alive(n.cfg.Rank) {
		return statusDead
	}
	if f.Gen < n.admittedOf(f.From) {
		// Zombie writer: the frame's epoch predates the sender's last
		// admission, so it was stamped by a previous incarnation.
		n.staleRejected.Add(1)
		return statusStaleEpoch
	}
	n.regMu.RLock()
	h := n.regs[f.Key]
	n.regMu.RUnlock()
	if h == nil {
		return statusNotRegistered
	}
	status := statusOK
	for _, rec := range f.Records {
		if h(f.From, rec) != nil {
			status = statusHandlerErr
		}
	}
	return status
}

// serveProbe answers a delegated ping: probe the target from this rank's
// own vantage point and report the verdict.
func (n *Net) serveProbe(f *Frame) byte {
	if !n.Alive(n.cfg.Rank) {
		return statusDead
	}
	if len(f.Records) != 1 || len(f.Records[0]) != 4 {
		return statusTransient
	}
	target := int(int32(binary.LittleEndian.Uint32(f.Records[0])))
	if target < 0 || target >= len(n.cfg.Peers) {
		return statusTransient
	}
	err := n.localPing(target)
	switch {
	case err == nil:
		return statusOK
	case errors.Is(err, fabric.ErrTransient):
		return statusTransient
	default:
		return statusUnreachable
	}
}

// serveHello handles a rendezvous announcement at rank 0: record the
// arrival, block this connection's goroutine until the whole cluster has
// arrived, then release the sender with the cluster generation. The false
// return means the link must be dropped without a reply.
func (n *Net) serveHello(f *Frame) (*Frame, bool) {
	if n.cfg.Rank != 0 {
		return nil, false // only rank 0 hosts the rendezvous
	}
	ready := n.helloArrived(f.From)
	select {
	case <-ready:
		return &Frame{Type: frameHelloAck, From: n.cfg.Rank, Gen: n.gen.Load()}, true
	case <-time.After(n.cfg.RendezvousTimeout):
		return nil, false
	case <-n.done:
		return nil, false
	}
}
