package tcpnet

import (
	"errors"
	"fmt"
	"net"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"malt/internal/fabric"
)

// newTestCluster builds an n-rank loopback cluster in one process: each
// rank pre-binds a :0 listener so the full peer list is known before any
// Net is constructed, then all ranks rendezvous concurrently.
func newTestCluster(t *testing.T, n int) []*Net {
	t.Helper()
	lns := make([]net.Listener, n)
	addrs := make([]string, n)
	for i := range lns {
		ln, err := net.Listen("tcp", "127.0.0.1:0")
		if err != nil {
			t.Fatalf("rank %d: listen: %v", i, err)
		}
		lns[i] = ln
		addrs[i] = ln.Addr().String()
	}
	nets := make([]*Net, n)
	for i := range nets {
		nt, err := New(Config{
			Rank:              i,
			Peers:             addrs,
			Listener:          lns[i],
			DialTimeout:       time.Second,
			AckTimeout:        2 * time.Second,
			RendezvousTimeout: 10 * time.Second,
			BarrierTimeout:    10 * time.Second,
			HeartbeatInterval: 10 * time.Millisecond,
		})
		if err != nil {
			t.Fatalf("rank %d: New: %v", i, err)
		}
		nets[i] = nt
	}
	t.Cleanup(func() {
		for _, nt := range nets {
			nt.Close()
		}
	})
	var wg sync.WaitGroup
	errs := make([]error, n)
	for i, nt := range nets {
		wg.Add(1)
		go func(i int, nt *Net) {
			defer wg.Done()
			errs[i] = nt.Rendezvous()
		}(i, nt)
	}
	wg.Wait()
	for i, err := range errs {
		if err != nil {
			t.Fatalf("rank %d: rendezvous: %v", i, err)
		}
	}
	return nets
}

func TestConfigValidate(t *testing.T) {
	cases := []struct {
		name string
		cfg  Config
	}{
		{"no peers", Config{Rank: 0}},
		{"rank out of range", Config{Rank: 3, Peers: []string{"a:1", "b:1"}}},
		{"negative rank", Config{Rank: -1, Peers: []string{"a:1"}}},
		{"empty address", Config{Rank: 0, Peers: []string{"a:1", ""}}},
		{"duplicate address", Config{Rank: 0, Peers: []string{"a:1", "a:1"}}},
	}
	for _, tc := range cases {
		if err := tc.cfg.Validate(); err == nil {
			t.Errorf("%s: want error, got nil", tc.name)
		}
	}
	if err := (Config{Rank: 1, Peers: []string{"a:1", "b:1"}}).Validate(); err != nil {
		t.Errorf("valid config rejected: %v", err)
	}
}

func TestRendezvousSharesGeneration(t *testing.T) {
	nets := newTestCluster(t, 3)
	gen := nets[0].Generation()
	if gen == 0 {
		t.Fatal("rank 0 has zero generation")
	}
	for i, nt := range nets {
		if nt.Generation() != gen {
			t.Fatalf("rank %d generation %d != rank 0 generation %d", i, nt.Generation(), gen)
		}
	}
}

func TestWriteDepositsIntoHandler(t *testing.T) {
	nets := newTestCluster(t, 3)

	type rec struct {
		from int
		data string
	}
	var mu sync.Mutex
	var got []rec
	if err := nets[1].Register(1, "w", func(from int, b []byte) error {
		mu.Lock()
		got = append(got, rec{from, string(b)})
		mu.Unlock()
		return nil
	}); err != nil {
		t.Fatal(err)
	}

	if err := nets[0].Write(0, 1, "w", []byte("hello")); err != nil {
		t.Fatalf("write: %v", err)
	}
	if err := nets[2].WriteBatch(2, 1, "w", [][]byte{[]byte("a"), []byte("b"), []byte("c")}); err != nil {
		t.Fatalf("write batch: %v", err)
	}

	mu.Lock()
	defer mu.Unlock()
	want := []rec{{0, "hello"}, {2, "a"}, {2, "b"}, {2, "c"}}
	if len(got) != len(want) {
		t.Fatalf("got %d records, want %d: %v", len(got), len(want), got)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("record %d: got %+v want %+v", i, got[i], want[i])
		}
	}

	// The batch was one frame with one ack: the coalesced counters moved.
	if recs := nets[2].Stats().CoalescedRecords(); recs != 3 {
		t.Fatalf("coalesced records = %d, want 3", recs)
	}
	if ops := nets[2].Stats().CoalescedWrites(); ops != 1 {
		t.Fatalf("coalesced writes = %d, want 1", ops)
	}
}

func TestWriteErrors(t *testing.T) {
	nets := newTestCluster(t, 2)

	if err := nets[0].Write(0, 1, "nope", []byte("x")); !errors.Is(err, fabric.ErrNotRegistered) {
		t.Fatalf("unregistered key: want ErrNotRegistered, got %v", err)
	}
	if err := nets[0].Write(1, 0, "w", []byte("x")); err == nil {
		t.Fatal("write on behalf of a remote rank: want error, got nil")
	}
	if err := nets[0].Register(1, "w", func(int, []byte) error { return nil }); err == nil {
		t.Fatal("remote register: want error, got nil")
	}
	if err := nets[1].Register(1, "w", func(int, []byte) error { return errors.New("boom") }); err != nil {
		t.Fatal(err)
	}
	if err := nets[0].Write(0, 1, "w", []byte("x")); err == nil {
		t.Fatal("handler error: want error, got nil")
	}
	if err := nets[1].Unregister(1, "w"); err != nil {
		t.Fatal(err)
	}
	if err := nets[0].Write(0, 1, "w", []byte("x")); !errors.Is(err, fabric.ErrNotRegistered) {
		t.Fatalf("after unregister: want ErrNotRegistered, got %v", err)
	}
}

func TestPingDirectAndDelegated(t *testing.T) {
	nets := newTestCluster(t, 3)

	if err := nets[0].Ping(0, 2); err != nil {
		t.Fatalf("direct ping: %v", err)
	}
	// Delegated: ask rank 1 to probe rank 2 from its own vantage point —
	// the fault monitor's cross-confirmation path.
	if err := nets[0].Ping(1, 2); err != nil {
		t.Fatalf("delegated ping: %v", err)
	}

	nets[2].Kill(2)
	waitFor(t, "rank 0 sees rank 2 dead", func() bool { return !nets[0].Alive(2) })
	if err := nets[0].Ping(0, 2); err == nil {
		t.Fatal("ping to dead rank: want error, got nil")
	}
	waitFor(t, "rank 1 sees rank 2 dead", func() bool { return !nets[1].Alive(2) })
	if err := nets[0].Ping(1, 2); err == nil {
		t.Fatal("delegated ping to dead rank: want error, got nil")
	}
}

func TestBarrierReleasesAllRanks(t *testing.T) {
	nets := newTestCluster(t, 3)
	for round := 0; round < 3; round++ {
		name := fmt.Sprintf("step:%d", round)
		var wg sync.WaitGroup
		errs := make([]error, len(nets))
		for i, nt := range nets {
			wg.Add(1)
			go func(i int, nt *Net) {
				defer wg.Done()
				errs[i] = nt.Barrier(name, nt.Rank())
			}(i, nt)
		}
		wg.Wait()
		for i, err := range errs {
			if err != nil {
				t.Fatalf("round %d rank %d: %v", round, i, err)
			}
		}
	}
}

func TestKillDrivesLivenessAndBarrierPruning(t *testing.T) {
	nets := newTestCluster(t, 3)

	var observed atomic.Int32
	nets[0].OnLivenessChange(func(rank int, alive bool) {
		if rank == 2 && !alive {
			observed.Add(1)
		}
	})

	// Rank 2 dies mid-run. Its own endpoint reports sender-dead; peers
	// converge on unreachable via heartbeat strike-out (refused dials).
	if err := nets[2].Kill(2); err != nil {
		t.Fatal(err)
	}
	if err := nets[2].Write(2, 0, "w", []byte("x")); !errors.Is(err, fabric.ErrSenderDead) {
		t.Fatalf("write from killed rank: want ErrSenderDead, got %v", err)
	}
	waitFor(t, "rank 0 marks rank 2 dead", func() bool { return !nets[0].Alive(2) })
	waitFor(t, "rank 1 marks rank 2 dead", func() bool { return !nets[1].Alive(2) })
	if observed.Load() != 1 {
		t.Fatalf("liveness watcher fired %d times for rank 2, want 1", observed.Load())
	}
	if err := nets[0].Write(0, 2, "w", []byte("x")); !errors.Is(err, fabric.ErrUnreachable) {
		t.Fatalf("write to dead rank: want ErrUnreachable, got %v", err)
	}

	// Survivors still make progress: the coordinator prunes rank 2 from
	// barrier membership.
	var wg sync.WaitGroup
	errs := make([]error, 2)
	for i, nt := range nets[:2] {
		wg.Add(1)
		go func(i int, nt *Net) {
			defer wg.Done()
			errs[i] = nt.Barrier("after-death", nt.Rank())
		}(i, nt)
	}
	wg.Wait()
	for i, err := range errs {
		if err != nil {
			t.Fatalf("survivor rank %d barrier: %v", i, err)
		}
	}

	alive := nets[0].AliveRanks()
	if len(alive) != 2 || alive[0] != 0 || alive[1] != 1 {
		t.Fatalf("alive ranks = %v, want [0 1]", alive)
	}
}

func TestKillRemoteRejected(t *testing.T) {
	nets := newTestCluster(t, 2)
	if err := nets[0].Kill(1); err == nil {
		t.Fatal("remote kill: want error, got nil")
	}
}

func TestStaleGenerationRejected(t *testing.T) {
	nets := newTestCluster(t, 2)
	if err := nets[1].Register(1, "w", func(int, []byte) error { return nil }); err != nil {
		t.Fatal(err)
	}
	// A zombie from a previous incarnation: same address book, wrong
	// generation.
	nets[0].gen.Store(nets[0].gen.Load() + 1)
	err := nets[0].Write(0, 1, "w", []byte("x"))
	if !errors.Is(err, fabric.ErrUnreachable) {
		t.Fatalf("stale-generation write: want ErrUnreachable, got %v", err)
	}
}

func waitFor(t *testing.T, what string, cond func() bool) {
	t.Helper()
	deadline := time.Now().Add(5 * time.Second)
	for !cond() {
		if time.Now().After(deadline) {
			t.Fatalf("timed out waiting for %s", what)
		}
		time.Sleep(2 * time.Millisecond)
	}
}
