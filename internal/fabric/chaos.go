// Chaos: deterministic transient-fault injection for the simulated fabric.
//
// Real interconnects flap, drop and straggle without any machine dying. The
// fail-stop model of the base fabric (ErrUnreachable on death/partition)
// cannot express that, so every fault it reports is treated as permanent by
// the layers above. The chaos model adds a second failure class: a write or
// ping may fail with ErrTransient — the packet is gone but the link is not —
// or be charged a straggler-multiplied wire cost. All injection decisions
// come from seeded per-link PRNG streams, so the same seed and configuration
// reproduce byte-identical fault schedules, which is what makes soak tests
// against a hostile network debuggable.
package fabric

import (
	"errors"
	"fmt"
	"math/rand"
	"sync"
	"time"
)

// ErrTransient is returned by Write and Ping when the chaos layer drops the
// operation or the link is inside a blackout window. Unlike ErrUnreachable
// it carries no evidence about the destination's health: retrying is the
// correct response, reporting the peer to the fault monitor is not (until
// retries are exhausted).
var ErrTransient = errors.New("fabric: transient fault injected")

// LinkFault is the transient-fault model of one directed link.
type LinkFault struct {
	// DropProb is the probability that one operation (write or ping) on the
	// link is dropped with ErrTransient.
	DropProb float64
	// Blackout, while set, makes every operation on the link fail with
	// ErrTransient — a flapping switch port or a routing convergence window.
	// Scenario runners toggle it to model bounded outages.
	Blackout bool
	// JitterProb is the probability that one operation's modeled wire cost
	// is multiplied by JitterMult (a transient straggler: congestion, an
	// overloaded NIC queue).
	JitterProb float64
	// JitterMult is the straggler multiplier; values <= 1 disable jitter.
	JitterMult float64
}

func (lf LinkFault) active() bool {
	return lf.DropProb > 0 || lf.Blackout || (lf.JitterProb > 0 && lf.JitterMult > 1)
}

// ChaosConfig seeds the fault model for a whole fabric.
type ChaosConfig struct {
	// Seed derives every per-link PRNG stream. The same seed plus the same
	// per-link operation sequence reproduces the same injection schedule.
	Seed int64
	// Default applies to every link unless overridden in Links.
	Default LinkFault
	// Links holds per-link overrides keyed by [2]int{from, to}.
	Links map[[2]int]LinkFault
}

// chaosState is the installed fault model. Each link owns an independent
// seeded PRNG stream so the injection schedule on one link is a pure
// function of that link's operation count, regardless of how operations on
// different links interleave across goroutines.
type chaosState struct {
	mu     sync.Mutex
	n      int
	faults []LinkFault  // [from*n+to]
	rngs   []*rand.Rand // [from*n+to]
}

func newChaosState(n int, cfg ChaosConfig) *chaosState {
	cs := &chaosState{
		n:      n,
		faults: make([]LinkFault, n*n),
		rngs:   make([]*rand.Rand, n*n),
	}
	for i := range cs.faults {
		cs.faults[i] = cfg.Default
	}
	for link, lf := range cfg.Links {
		from, to := link[0], link[1]
		if from >= 0 && from < n && to >= 0 && to < n {
			cs.faults[from*n+to] = lf
		}
	}
	for i := range cs.rngs {
		// Distinct deterministic stream per link, decorrelated by a
		// splitmix-style odd multiplier.
		cs.rngs[i] = rand.New(rand.NewSource(cfg.Seed ^ (int64(i)+1)*0x5851F42D4C957F2D))
	}
	return cs
}

// inject decides the fate of one operation on the link from→to: dropped
// (ErrTransient) or cost-multiplied. The drop draw always precedes the
// jitter draw so each link's PRNG stream advances identically across runs.
func (cs *chaosState) inject(from, to int) (drop bool, jitterMult float64) {
	i := from*cs.n + to
	cs.mu.Lock()
	defer cs.mu.Unlock()
	lf := cs.faults[i]
	if !lf.active() {
		return false, 0
	}
	if lf.Blackout {
		return true, 0
	}
	rng := cs.rngs[i]
	if lf.DropProb > 0 && rng.Float64() < lf.DropProb {
		return true, 0
	}
	if lf.JitterProb > 0 && lf.JitterMult > 1 && rng.Float64() < lf.JitterProb {
		return false, lf.JitterMult
	}
	return false, 0
}

// EnableChaos installs (or replaces) the fabric's transient-fault model.
func (f *Fabric) EnableChaos(cfg ChaosConfig) {
	f.mu.Lock()
	f.chaos = newChaosState(f.cfg.Ranks, cfg)
	f.mu.Unlock()
}

// DisableChaos removes the fault model; the fabric reverts to fail-stop.
func (f *Fabric) DisableChaos() {
	f.mu.Lock()
	f.chaos = nil
	f.mu.Unlock()
}

// ChaosEnabled reports whether a fault model is installed.
func (f *Fabric) ChaosEnabled() bool {
	f.mu.RLock()
	defer f.mu.RUnlock()
	return f.chaos != nil
}

// SetLinkFault replaces the fault model of one directed link. Enables chaos
// (with an otherwise fault-free default) if it was not already on.
func (f *Fabric) SetLinkFault(from, to int, lf LinkFault) error {
	if err := f.checkRank(from); err != nil {
		return err
	}
	if err := f.checkRank(to); err != nil {
		return err
	}
	f.mu.Lock()
	if f.chaos == nil {
		f.chaos = newChaosState(f.cfg.Ranks, ChaosConfig{})
	}
	cs := f.chaos
	f.mu.Unlock()
	cs.mu.Lock()
	cs.faults[from*cs.n+to] = lf
	cs.mu.Unlock()
	return nil
}

// LinkFaultOf returns the current fault model of a directed link (zero value
// when chaos is off or the link is clean).
func (f *Fabric) LinkFaultOf(from, to int) LinkFault {
	f.mu.RLock()
	cs := f.chaos
	f.mu.RUnlock()
	if cs == nil || from < 0 || to < 0 || from >= cs.n || to >= cs.n {
		return LinkFault{}
	}
	cs.mu.Lock()
	defer cs.mu.Unlock()
	return cs.faults[from*cs.n+to]
}

// SetRankBlackout toggles a blackout on every link touching rank, in both
// directions — the whole machine goes dark transiently (NIC reset, link
// renegotiation) without dying. Other fault fields on those links are kept.
func (f *Fabric) SetRankBlackout(rank int, on bool) error {
	if err := f.checkRank(rank); err != nil {
		return err
	}
	f.mu.Lock()
	if f.chaos == nil {
		f.chaos = newChaosState(f.cfg.Ranks, ChaosConfig{})
	}
	cs := f.chaos
	f.mu.Unlock()
	cs.mu.Lock()
	for other := 0; other < cs.n; other++ {
		if other == rank {
			continue
		}
		cs.faults[rank*cs.n+other].Blackout = on
		cs.faults[other*cs.n+rank].Blackout = on
	}
	cs.mu.Unlock()
	return nil
}

// chaosWriteFault consults the fault model for one data write. It returns a
// non-nil ErrTransient error when the write is dropped, and otherwise the
// cost multiplier to apply (0 when unjittered).
func (f *Fabric) chaosFault(from, to int, kind string) (error, float64) {
	f.mu.RLock()
	cs := f.chaos
	f.mu.RUnlock()
	if cs == nil {
		return nil, 0
	}
	drop, mult := cs.inject(from, to)
	if drop {
		f.stats.addInjectedDrop(from, to)
		return fmt.Errorf("%w: %s rank %d -> rank %d", ErrTransient, kind, from, to), 0
	}
	return nil, mult
}

// jitterCost applies a straggler multiplier to a modeled cost and accounts
// the injected extra wire time.
func (f *Fabric) jitterCost(from, to int, cost time.Duration, mult float64) time.Duration {
	if mult <= 1 {
		return cost
	}
	extra := time.Duration(float64(cost) * (mult - 1))
	f.stats.addInjectedJitter(from, to, extra)
	return cost + extra
}
