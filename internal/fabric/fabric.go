// Package fabric simulates the one-sided RDMA interconnect that MALT runs
// on (the paper used GASPI over 56 Gbps Mellanox InfiniBand).
//
// The fabric connects N ranks. Each rank registers named, remotely writable
// memory (in MALT, dstorm segments). A Write is one-sided: the copy into the
// destination's registered memory executes on the *sender's* goroutine — no
// receiver loop, channel, or scheduler hand-off is involved, mirroring how
// an RDMA NIC deposits bytes into registered memory without interrupting
// the remote host CPU.
//
// What the simulation preserves from real hardware:
//
//   - One-sided semantics: receivers discover new data only by reading
//     their own memory (polling a version word), never by being notified.
//   - Cost: every Write is charged base latency + size/bandwidth against a
//     per-link modeled-time counter, and per-link byte/message counters
//     feed the paper's network-traffic experiments (Fig 13). Optionally the
//     sender can be made to actually stall for the modeled duration.
//   - Failure behaviour: writes to a dead or partitioned rank fail with
//     ErrUnreachable, exactly the signal MALT's fault monitors key off.
//     With chaos enabled (see chaos.go), live links can additionally drop
//     operations with ErrTransient or straggle — faults that retrying, not
//     the recovery protocol, must absorb.
//
// What it does not preserve: absolute microsecond timings of a physical
// NIC. All experiments report relative behaviour between configurations
// that share this substrate.
package fabric

import (
	"errors"
	"fmt"
	"sync"
	"sync/atomic"
	"time"
)

// Common fabric errors.
var (
	// ErrUnreachable is returned by Write and Ping when the destination is
	// dead or separated by a network partition.
	ErrUnreachable = errors.New("fabric: destination unreachable")
	// ErrNotRegistered is returned when writing to a key the destination
	// never registered.
	ErrNotRegistered = errors.New("fabric: no such registered memory")
	// ErrSenderDead is returned when a dead rank attempts an operation;
	// fault injectors use it to make a "killed" replica inert.
	ErrSenderDead = errors.New("fabric: sender is dead")
	// ErrStaleEpoch is returned when a rank whose admission predates its
	// last confirmed death attempts an operation: a zombie that came back
	// without rejoining through the membership protocol. Receivers fence
	// such traffic so a rejoining rank can never poison in-flight gathers.
	ErrStaleEpoch = errors.New("fabric: stale membership epoch")
)

// WriteHandler receives a one-sided write into registered memory. It runs
// on the sender's goroutine. Implementations (dstorm segments) must be safe
// for concurrent invocation from many senders and must not block
// indefinitely: an RDMA write always lands.
type WriteHandler func(from int, payload []byte) error

// DelayMode selects whether modeled network time is actually imposed on the
// sender or only accounted.
type DelayMode int

const (
	// DelayNone only accounts modeled time; Writes return immediately after
	// the copy. Default: fastest, preserves relative byte/ops shapes.
	DelayNone DelayMode = iota
	// DelaySleep makes the sender sleep for the modeled duration. Suitable
	// when modeled durations are ≫ the scheduler's sleep granularity.
	DelaySleep
	// DelaySpin makes the sender busy-wait for the modeled duration,
	// burning sender CPU exactly as a polling RDMA driver would.
	DelaySpin
)

// Config describes the simulated interconnect.
type Config struct {
	// Ranks is the number of endpoints (model replicas / processes).
	Ranks int
	// Latency is the one-way base cost of a write, before size costs.
	// The paper's InfiniBand measured 1–3 µs; default 1.5 µs.
	Latency time.Duration
	// Bandwidth is the per-link throughput in bytes/second used by the
	// cost model. Default 5 GB/s (≈40 Gbps achieved on the paper's 56 Gbps
	// links after encoding overhead).
	Bandwidth float64
	// Delay selects whether modeled time is imposed or only accounted.
	Delay DelayMode
	// Delivery selects in-process delivery (default) or loopback TCP.
	Delivery Delivery
	// Chaos, when non-nil, installs the transient-fault model at creation
	// (EnableChaos can also install or replace it later).
	Chaos *ChaosConfig
}

func (c *Config) setDefaults() {
	if c.Latency == 0 {
		c.Latency = 1500 * time.Nanosecond
	}
	if c.Bandwidth == 0 {
		c.Bandwidth = 5 << 30 // 5 GiB/s
	}
}

// Fabric is the simulated interconnect. All methods are safe for concurrent
// use by all ranks.
type Fabric struct {
	cfg   Config
	stats *Stats

	// epoch is the membership epoch: monotonically increasing, minted on
	// every confirmed death and every join. Kept out of Stats so the
	// Snapshot determinism contract (8 counters per link) is unchanged.
	epoch         atomic.Uint64
	staleRejected atomic.Uint64 // zombie operations fenced by the epoch check

	mu       sync.RWMutex
	regs     []map[string]WriteHandler // per-rank registered memory
	dead     []bool
	admitted []uint64 // admitted[r]: epoch at r's last admission
	fenced   []uint64 // fenced[r]: epoch minted when r last died
	group    []int    // partition group id per rank; writes cross groups fail
	liveness []func(rank int, alive bool)
	joined   []func(rank int, epoch uint64)
	chaos    *chaosState // non-nil while transient-fault injection is on

	tcp *tcpFabric // non-nil in TCP transport mode
}

// New creates a fabric connecting cfg.Ranks endpoints, all alive and in one
// partition group.
func New(cfg Config) (*Fabric, error) {
	if cfg.Ranks <= 0 {
		return nil, fmt.Errorf("fabric: need at least one rank, got %d", cfg.Ranks)
	}
	cfg.setDefaults()
	f := &Fabric{
		cfg:      cfg,
		stats:    NewStats(cfg.Ranks),
		regs:     make([]map[string]WriteHandler, cfg.Ranks),
		dead:     make([]bool, cfg.Ranks),
		admitted: make([]uint64, cfg.Ranks),
		fenced:   make([]uint64, cfg.Ranks),
		group:    make([]int, cfg.Ranks),
	}
	f.epoch.Store(1)
	for i := range f.regs {
		f.regs[i] = make(map[string]WriteHandler)
		f.admitted[i] = 1
	}
	if cfg.Chaos != nil {
		f.chaos = newChaosState(cfg.Ranks, *cfg.Chaos)
	}
	if cfg.Delivery == TCP {
		tcp, err := newTCPFabric(f)
		if err != nil {
			return nil, err
		}
		f.tcp = tcp
	}
	return f, nil
}

// Close releases transport resources (TCP listeners and connections). The
// in-process transport holds none; Close is then a no-op.
func (f *Fabric) Close() error {
	if f.tcp != nil {
		f.tcp.close()
	}
	return nil
}

// Ranks returns the number of endpoints, including dead ones.
func (f *Fabric) Ranks() int { return f.cfg.Ranks }

// Config returns the fabric configuration.
func (f *Fabric) Config() Config { return f.cfg }

// Stats returns the fabric's traffic counters.
func (f *Fabric) Stats() *Stats { return f.stats }

// Register installs remotely writable memory named key on rank. Re-registering
// an existing key replaces the handler (MALT re-registers the RDMA interface
// with old memory descriptors during failure recovery, invalidating writes
// from zombies).
func (f *Fabric) Register(rank int, key string, h WriteHandler) error {
	if err := f.checkRank(rank); err != nil {
		return err
	}
	if h == nil {
		return fmt.Errorf("fabric: nil handler for %q on rank %d", key, rank)
	}
	f.mu.Lock()
	defer f.mu.Unlock()
	f.regs[rank][key] = h
	return nil
}

// Unregister removes remotely writable memory named key from rank.
func (f *Fabric) Unregister(rank int, key string) error {
	if err := f.checkRank(rank); err != nil {
		return err
	}
	f.mu.Lock()
	defer f.mu.Unlock()
	delete(f.regs[rank], key)
	return nil
}

// Write performs a one-sided write of payload into the memory registered as
// key on rank to. It runs entirely on the caller's goroutine, charges the
// cost model, and fails with ErrUnreachable if to is dead or partitioned
// away from from.
func (f *Fabric) Write(from, to int, key string, payload []byte) error {
	if err := f.checkRank(from); err != nil {
		return err
	}
	if err := f.checkRank(to); err != nil {
		return err
	}
	f.mu.RLock()
	senderDead := f.dead[from]
	senderStale := f.admitted[from] < f.fenced[from]
	reachable := !f.dead[to] && f.group[from] == f.group[to]
	h := f.regs[to][key]
	f.mu.RUnlock()

	if senderDead {
		return ErrSenderDead
	}
	if senderStale {
		return f.rejectStale(from)
	}
	if !reachable {
		f.stats.AddFailed(from, to)
		return fmt.Errorf("%w: rank %d -> rank %d", ErrUnreachable, from, to)
	}
	if h == nil {
		return fmt.Errorf("%w: %q on rank %d", ErrNotRegistered, key, to)
	}
	ferr, jitter := f.chaosFault(from, to, "write")
	if ferr != nil {
		return ferr
	}

	cost := f.jitterCost(from, to, f.modelCost(len(payload)), jitter)
	f.stats.AddTransfer(from, to, len(payload), cost)
	f.impose(cost)
	if f.tcp != nil {
		return f.tcp.write(from, to, key, payload)
	}
	return h(from, payload)
}

// WriteBatch performs one merged one-sided write carrying several records
// for the same registered key — the doorbell-batched (scatter-gather) post
// a real NIC offers, which MALT's send coalescer uses to amortize per-write
// latency. The whole batch is charged ONE base latency plus the summed size
// cost, counts as one message, and takes one chaos draw (a dropped batch
// drops all its records, as a dropped NIC op would). The handler is invoked
// once per record, in order, on the caller's goroutine; the first handler
// error is returned after all records have been attempted. The TCP
// transport sends the records back-to-back on one acked stream.
func (f *Fabric) WriteBatch(from, to int, key string, records [][]byte) error {
	if len(records) == 0 {
		return nil
	}
	if err := f.checkRank(from); err != nil {
		return err
	}
	if err := f.checkRank(to); err != nil {
		return err
	}
	f.mu.RLock()
	senderDead := f.dead[from]
	senderStale := f.admitted[from] < f.fenced[from]
	reachable := !f.dead[to] && f.group[from] == f.group[to]
	h := f.regs[to][key]
	f.mu.RUnlock()

	if senderDead {
		return ErrSenderDead
	}
	if senderStale {
		return f.rejectStale(from)
	}
	if !reachable {
		f.stats.AddFailed(from, to)
		return fmt.Errorf("%w: rank %d -> rank %d", ErrUnreachable, from, to)
	}
	if h == nil {
		return fmt.Errorf("%w: %q on rank %d", ErrNotRegistered, key, to)
	}
	ferr, jitter := f.chaosFault(from, to, "write")
	if ferr != nil {
		return ferr
	}

	bytes := 0
	for _, rec := range records {
		bytes += len(rec)
	}
	cost := f.jitterCost(from, to, f.modelCost(bytes), jitter)
	f.stats.AddTransfer(from, to, bytes, cost)
	f.stats.AddCoalesced(from, to, len(records))
	f.impose(cost)
	var firstErr error
	for _, rec := range records {
		var err error
		if f.tcp != nil {
			err = f.tcp.write(from, to, key, rec)
		} else {
			err = h(from, rec)
		}
		if err != nil && firstErr == nil {
			firstErr = err
		}
	}
	return firstErr
}

// Ping performs a synchronous health probe from one rank to another,
// charging one round trip. Fault monitors use it for the cluster health
// check after observing failed writes.
func (f *Fabric) Ping(from, to int) error {
	if err := f.checkRank(from); err != nil {
		return err
	}
	if err := f.checkRank(to); err != nil {
		return err
	}
	f.mu.RLock()
	senderDead := f.dead[from]
	senderStale := f.admitted[from] < f.fenced[from]
	ok := !f.dead[to] && f.group[from] == f.group[to]
	f.mu.RUnlock()
	if senderDead {
		return ErrSenderDead
	}
	if senderStale {
		return f.rejectStale(from)
	}
	cost := 2 * f.cfg.Latency
	if ok {
		// Chaos only touches links that could have delivered: death and
		// partition keep their fail-stop signal.
		ferr, jitter := f.chaosFault(from, to, "ping")
		if ferr != nil {
			f.stats.AddControl(from, to, cost)
			f.impose(cost)
			return ferr
		}
		cost = f.jitterCost(from, to, cost, jitter)
	}
	f.stats.AddControl(from, to, cost)
	f.impose(cost)
	if !ok {
		return fmt.Errorf("%w: ping rank %d -> rank %d", ErrUnreachable, from, to)
	}
	return nil
}

// Kill marks rank dead and mints a new membership epoch fencing it.
// Subsequent writes to it fail; writes from it return ErrSenderDead, and —
// should it come back without Join — ErrStaleEpoch. Liveness watchers are
// notified.
func (f *Fabric) Kill(rank int) error {
	return f.setDead(rank, true)
}

// Revive marks rank alive again (a machine rejoining after repair) WITHOUT
// re-admitting it: its admission epoch still predates the epoch its death
// minted, so its writes and pings are fenced with ErrStaleEpoch until it
// goes through Join. Tests use Revive to exercise exactly that zombie path.
func (f *Fabric) Revive(rank int) error {
	return f.setDead(rank, false)
}

func (f *Fabric) setDead(rank int, dead bool) error {
	if err := f.checkRank(rank); err != nil {
		return err
	}
	f.mu.Lock()
	changed := f.dead[rank] != dead
	f.dead[rank] = dead
	if changed && dead {
		f.fenced[rank] = f.epoch.Add(1)
	}
	watchers := append([]func(int, bool){}, f.liveness...)
	f.mu.Unlock()
	if changed {
		for _, w := range watchers {
			w(rank, !dead)
		}
	}
	return nil
}

// Epoch returns the current membership epoch. It starts at 1 and increases
// on every confirmed death and every join.
func (f *Fabric) Epoch() uint64 { return f.epoch.Load() }

// Join (re-)admits rank into the cluster: a new epoch is minted, the rank's
// admission is stamped with it (clearing any zombie fence), it is marked
// alive, and liveness + join watchers fire. Returns the minted epoch.
func (f *Fabric) Join(rank int) (uint64, error) {
	if err := f.checkRank(rank); err != nil {
		return 0, err
	}
	f.mu.Lock()
	e := f.epoch.Add(1)
	f.admitted[rank] = e
	wasDead := f.dead[rank]
	f.dead[rank] = false
	watchers := append([]func(int, bool){}, f.liveness...)
	joiners := append([]func(int, uint64){}, f.joined...)
	f.mu.Unlock()
	if wasDead {
		for _, w := range watchers {
			w(rank, true)
		}
	}
	for _, j := range joiners {
		j(rank, e)
	}
	return e, nil
}

// OnJoin registers a callback invoked whenever a rank is admitted through
// Join. Join watchers are separate from liveness watchers: Partition/Heal
// re-announce every rank's aliveness, which must not look like admissions.
// Callbacks run on the goroutine that called Join and must not call back
// into membership mutation.
func (f *Fabric) OnJoin(fn func(rank int, epoch uint64)) {
	f.mu.Lock()
	defer f.mu.Unlock()
	f.joined = append(f.joined, fn)
}

// StaleEpochRejected returns how many operations the epoch fence rejected
// (zombie writes and pings from ranks revived without Join). Kept separate
// from Stats so the per-link Snapshot shape is unchanged.
func (f *Fabric) StaleEpochRejected() uint64 { return f.staleRejected.Load() }

// rejectStale counts and reports one fenced zombie operation.
func (f *Fabric) rejectStale(from int) error {
	f.staleRejected.Add(1)
	f.mu.RLock()
	adm, fen := f.admitted[from], f.fenced[from]
	f.mu.RUnlock()
	return fmt.Errorf("%w: rank %d admitted at epoch %d but fenced at epoch %d; rejoin required",
		ErrStaleEpoch, from, adm, fen)
}

// Alive reports whether rank is alive.
func (f *Fabric) Alive(rank int) bool {
	f.mu.RLock()
	defer f.mu.RUnlock()
	return rank >= 0 && rank < f.cfg.Ranks && !f.dead[rank]
}

// AliveRanks returns the sorted list of live ranks.
func (f *Fabric) AliveRanks() []int {
	f.mu.RLock()
	defer f.mu.RUnlock()
	var out []int
	for i, d := range f.dead {
		if !d {
			out = append(out, i)
		}
	}
	return out
}

// OnLivenessChange registers a callback invoked whenever a rank dies or
// revives. Callbacks run on the goroutine that called Kill/Revive and must
// not call back into liveness mutation.
func (f *Fabric) OnLivenessChange(fn func(rank int, alive bool)) {
	f.mu.Lock()
	defer f.mu.Unlock()
	f.liveness = append(f.liveness, fn)
}

// Partition splits the fabric into isolated groups: groups[i] lists the
// ranks in group i. Ranks not mentioned keep group 0. Writes and pings
// across groups fail with ErrUnreachable. Liveness watchers are notified
// (with each rank's current aliveness) so group operations blocked on the
// old topology re-evaluate.
func (f *Fabric) Partition(groups [][]int) error {
	f.mu.Lock()
	for i := range f.group {
		f.group[i] = 0
	}
	for gid, ranks := range groups {
		for _, r := range ranks {
			if r < 0 || r >= f.cfg.Ranks {
				f.mu.Unlock()
				return fmt.Errorf("fabric: partition rank %d out of range", r)
			}
			f.group[r] = gid
		}
	}
	watchers := append([]func(int, bool){}, f.liveness...)
	f.mu.Unlock()
	f.notifyTopology(watchers)
	return nil
}

// Heal removes all partitions and notifies liveness watchers.
func (f *Fabric) Heal() {
	f.mu.Lock()
	for i := range f.group {
		f.group[i] = 0
	}
	watchers := append([]func(int, bool){}, f.liveness...)
	f.mu.Unlock()
	f.notifyTopology(watchers)
}

// notifyTopology re-announces every rank's aliveness so watchers (barrier
// waiters) reconsider who they are waiting for after a topology change.
func (f *Fabric) notifyTopology(watchers []func(int, bool)) {
	for _, w := range watchers {
		for r := 0; r < f.cfg.Ranks; r++ {
			w(r, f.Alive(r))
		}
	}
}

// GroupOf returns the partition group id of a rank (0 when unpartitioned).
func (f *Fabric) GroupOf(rank int) int {
	f.mu.RLock()
	defer f.mu.RUnlock()
	if rank < 0 || rank >= f.cfg.Ranks {
		return 0
	}
	return f.group[rank]
}

// Reachable reports whether two live ranks can currently communicate.
func (f *Fabric) Reachable(a, b int) bool {
	f.mu.RLock()
	defer f.mu.RUnlock()
	if a < 0 || a >= f.cfg.Ranks || b < 0 || b >= f.cfg.Ranks {
		return false
	}
	return !f.dead[a] && !f.dead[b] && f.group[a] == f.group[b]
}

func (f *Fabric) checkRank(rank int) error {
	if rank < 0 || rank >= f.cfg.Ranks {
		return fmt.Errorf("fabric: rank %d out of range [0,%d)", rank, f.cfg.Ranks)
	}
	return nil
}

// modelCost returns the modeled wire time for a payload of n bytes.
func (f *Fabric) modelCost(n int) time.Duration {
	return f.cfg.Latency + time.Duration(float64(n)/f.cfg.Bandwidth*float64(time.Second))
}

func (f *Fabric) impose(d time.Duration) {
	switch f.cfg.Delay {
	case DelaySleep:
		time.Sleep(d)
	case DelaySpin:
		deadline := time.Now().Add(d)
		for time.Now().Before(deadline) {
		}
	}
}

// Stats accumulates per-link traffic counters. All counters are atomic and
// may be read while the fabric is in use.
type Stats struct {
	n        int
	bytes    []atomic.Uint64 // [from*n+to]
	messages []atomic.Uint64
	failed   []atomic.Uint64
	modelNs  []atomic.Uint64 // modeled network time, data + control
	injDrops []atomic.Uint64 // chaos-injected transient drops
	injJitNs []atomic.Uint64 // chaos-injected extra wire time
	coalRecs []atomic.Uint64 // records carried inside WriteBatch calls
	coalOps  []atomic.Uint64 // WriteBatch calls (merged writes issued)

	// Windowed-stream diagnostics (fabric/stream backends only; the
	// simulated fabric never touches them). Deliberately excluded from
	// Snapshot: in-flight gauges and stall counts depend on wall-clock
	// scheduling, and Snapshot is a determinism contract.
	inflFrames []atomic.Int64  // unacked data frames currently in flight
	inflBytes  []atomic.Int64  // unacked payload bytes currently in flight
	stalls     []atomic.Uint64 // sends that blocked on exhausted window credit
	cumAcks    []atomic.Uint64 // cumulative acks received
}

// NewStats creates a zeroed per-link counter matrix for n ranks. Transport
// implementations outside this package (fabric/tcpnet) use it to offer the
// same Stats surface the simulated fabric has.
func NewStats(n int) *Stats {
	return &Stats{
		n:        n,
		bytes:    make([]atomic.Uint64, n*n),
		messages: make([]atomic.Uint64, n*n),
		failed:   make([]atomic.Uint64, n*n),
		modelNs:  make([]atomic.Uint64, n*n),
		injDrops: make([]atomic.Uint64, n*n),
		injJitNs: make([]atomic.Uint64, n*n),
		coalRecs: make([]atomic.Uint64, n*n),
		coalOps:  make([]atomic.Uint64, n*n),

		inflFrames: make([]atomic.Int64, n*n),
		inflBytes:  make([]atomic.Int64, n*n),
		stalls:     make([]atomic.Uint64, n*n),
		cumAcks:    make([]atomic.Uint64, n*n),
	}
}

// AddTransfer records one successful data write of the given size and wire
// cost on the from→to link.
func (s *Stats) AddTransfer(from, to, bytes int, cost time.Duration) {
	i := from*s.n + to
	s.bytes[i].Add(uint64(bytes))
	s.messages[i].Add(1)
	s.modelNs[i].Add(uint64(cost))
}

// AddControl records control-plane wire time (pings, barriers) on a link.
func (s *Stats) AddControl(from, to int, cost time.Duration) {
	s.modelNs[from*s.n+to].Add(uint64(cost))
}

// AddFailed records one write that failed with ErrUnreachable.
func (s *Stats) AddFailed(from, to int) {
	s.failed[from*s.n+to].Add(1)
}

func (s *Stats) addInjectedDrop(from, to int) {
	s.injDrops[from*s.n+to].Add(1)
}

func (s *Stats) addInjectedJitter(from, to int, extra time.Duration) {
	s.injJitNs[from*s.n+to].Add(uint64(extra))
}

// AddCoalesced records one merged WriteBatch call carrying records records.
func (s *Stats) AddCoalesced(from, to, records int) {
	i := from*s.n + to
	s.coalRecs[i].Add(uint64(records))
	s.coalOps[i].Add(1)
}

// AddInFlight records one data frame of the given payload size entering
// the from→to link's unacked window.
func (s *Stats) AddInFlight(from, to, bytes int) {
	i := from*s.n + to
	s.inflFrames[i].Add(1)
	s.inflBytes[i].Add(int64(bytes))
}

// SubInFlight retires one data frame from the from→to link's window (the
// covering cumulative ack arrived, or the link reset).
func (s *Stats) SubInFlight(from, to, bytes int) {
	i := from*s.n + to
	s.inflFrames[i].Add(-1)
	s.inflBytes[i].Add(int64(-bytes))
}

// AddWindowStall records one send that found the from→to window's credit
// exhausted and had to wait for a cumulative ack.
func (s *Stats) AddWindowStall(from, to int) {
	s.stalls[from*s.n+to].Add(1)
}

// AddCumAck records one cumulative ack received on the from→to link.
func (s *Stats) AddCumAck(from, to int) {
	s.cumAcks[from*s.n+to].Add(1)
}

// InFlightFrames returns the unacked data frames currently in flight on
// the from→to link (zero on the simulated fabric).
func (s *Stats) InFlightFrames(from, to int) int64 {
	return s.inflFrames[from*s.n+to].Load()
}

// InFlightBytes returns the unacked payload bytes currently in flight on
// the from→to link.
func (s *Stats) InFlightBytes(from, to int) int64 {
	return s.inflBytes[from*s.n+to].Load()
}

// WindowStalls returns how many sends blocked on exhausted window credit,
// summed over all links.
func (s *Stats) WindowStalls() uint64 {
	var total uint64
	for i := range s.stalls {
		total += s.stalls[i].Load()
	}
	return total
}

// CumAcks returns how many cumulative acks this endpoint's links received,
// summed over all links.
func (s *Stats) CumAcks() uint64 {
	var total uint64
	for i := range s.cumAcks {
		total += s.cumAcks[i].Load()
	}
	return total
}

// BytesSent returns the total payload bytes rank sent to all peers.
func (s *Stats) BytesSent(rank int) uint64 {
	var total uint64
	for to := 0; to < s.n; to++ {
		total += s.bytes[rank*s.n+to].Load()
	}
	return total
}

// BytesReceived returns the total payload bytes rank received.
func (s *Stats) BytesReceived(rank int) uint64 {
	var total uint64
	for from := 0; from < s.n; from++ {
		total += s.bytes[from*s.n+rank].Load()
	}
	return total
}

// TotalBytes returns payload bytes moved across the whole fabric.
func (s *Stats) TotalBytes() uint64 {
	var total uint64
	for i := range s.bytes {
		total += s.bytes[i].Load()
	}
	return total
}

// TotalMessages returns the number of successful writes across the fabric.
func (s *Stats) TotalMessages() uint64 {
	var total uint64
	for i := range s.messages {
		total += s.messages[i].Load()
	}
	return total
}

// FailedWrites returns the number of writes that failed with ErrUnreachable.
func (s *Stats) FailedWrites() uint64 {
	var total uint64
	for i := range s.failed {
		total += s.failed[i].Load()
	}
	return total
}

// ModeledNetworkTime returns the summed modeled wire time across all links.
// On a real cluster links run in parallel, so this is an upper bound on
// elapsed network time and a faithful measure of traffic volume in seconds.
func (s *Stats) ModeledNetworkTime() time.Duration {
	var total uint64
	for i := range s.modelNs {
		total += s.modelNs[i].Load()
	}
	return time.Duration(total)
}

// LinkBytes returns payload bytes sent from one rank to another.
func (s *Stats) LinkBytes(from, to int) uint64 {
	return s.bytes[from*s.n+to].Load()
}

// LinkModelNs returns the modeled wire nanoseconds accumulated on one
// directed link (data + control).
func (s *Stats) LinkModelNs(from, to int) uint64 {
	return s.modelNs[from*s.n+to].Load()
}

// FailedWritesLink returns the ErrUnreachable failures on one directed link.
func (s *Stats) FailedWritesLink(from, to int) uint64 {
	return s.failed[from*s.n+to].Load()
}

// WindowStallsLink returns the credit-exhausted send stalls on one directed
// link (stream backends only; zero on the simulated fabric).
func (s *Stats) WindowStallsLink(from, to int) uint64 {
	return s.stalls[from*s.n+to].Load()
}

// InjectedJitterLink returns the chaos-injected extra wire nanoseconds on
// one directed link.
func (s *Stats) InjectedJitterLink(from, to int) uint64 {
	return s.injJitNs[from*s.n+to].Load()
}

// InjectedDrops returns the number of operations the chaos layer dropped
// with ErrTransient across all links.
func (s *Stats) InjectedDrops() uint64 {
	var total uint64
	for i := range s.injDrops {
		total += s.injDrops[i].Load()
	}
	return total
}

// InjectedDropsLink returns the chaos drops injected on one directed link.
func (s *Stats) InjectedDropsLink(from, to int) uint64 {
	return s.injDrops[from*s.n+to].Load()
}

// InjectedJitterTime returns the extra modeled wire time added by chaos
// straggler multipliers across all links.
func (s *Stats) InjectedJitterTime() time.Duration {
	var total uint64
	for i := range s.injJitNs {
		total += s.injJitNs[i].Load()
	}
	return time.Duration(total)
}

// CoalescedRecords returns the number of records that travelled inside
// merged WriteBatch calls across the fabric.
func (s *Stats) CoalescedRecords() uint64 {
	var total uint64
	for i := range s.coalRecs {
		total += s.coalRecs[i].Load()
	}
	return total
}

// CoalescedWrites returns the number of merged WriteBatch calls issued.
func (s *Stats) CoalescedWrites() uint64 {
	var total uint64
	for i := range s.coalOps {
		total += s.coalOps[i].Load()
	}
	return total
}

// WritesSaved returns how many fabric writes coalescing eliminated: records
// that rode in a merged batch minus the batched writes actually posted.
func (s *Stats) WritesSaved() uint64 {
	return s.CoalescedRecords() - s.CoalescedWrites()
}

// Snapshot dumps every per-link counter in a fixed order. Two fabrics that
// executed the same operation schedule under the same chaos seed produce
// identical snapshots — the determinism contract soak tests rely on.
func (s *Stats) Snapshot() []uint64 {
	out := make([]uint64, 0, 8*len(s.bytes))
	for i := range s.bytes {
		out = append(out, s.bytes[i].Load(), s.messages[i].Load(),
			s.failed[i].Load(), s.modelNs[i].Load(),
			s.injDrops[i].Load(), s.injJitNs[i].Load(),
			s.coalRecs[i].Load(), s.coalOps[i].Load())
	}
	return out
}

// Reset zeroes all counters (used between benchmark phases).
func (s *Stats) Reset() {
	for i := range s.bytes {
		s.bytes[i].Store(0)
		s.messages[i].Store(0)
		s.failed[i].Store(0)
		s.modelNs[i].Store(0)
		s.injDrops[i].Store(0)
		s.injJitNs[i].Store(0)
		s.coalRecs[i].Store(0)
		s.coalOps[i].Store(0)
		s.inflFrames[i].Store(0)
		s.inflBytes[i].Store(0)
		s.stalls[i].Store(0)
		s.cumAcks[i].Store(0)
	}
}
