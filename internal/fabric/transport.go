package fabric

// Transport is the contract dstorm (and everything above it) consumes from
// the interconnect. The simulated Fabric is the default implementation;
// fabric/tcpnet implements the same contract over real TCP sockets so the
// one-sided scatter path, RetryPolicy and K-strikes suspicion run unchanged
// across OS processes.
//
// Error taxonomy every implementation must honor:
//
//   - ErrUnreachable: the destination is permanently gone (dead rank,
//     partition, refused/closed connection). Callers do not retry; fault
//     monitors accumulate strikes.
//   - ErrTransient: the operation may succeed if retried (chaos drop,
//     write deadline expiry). dstorm.RetryPolicy absorbs these.
//   - ErrNotRegistered / ErrSenderDead: protocol errors, not retried.
type Transport interface {
	// Ranks returns the cluster size, counting dead ranks.
	Ranks() int

	// Register installs remotely writable memory named key on rank.
	// Re-registering replaces the handler (MALT re-registers segments with
	// fresh descriptors during recovery, invalidating zombie writes).
	Register(rank int, key string, h WriteHandler) error
	// Unregister removes remotely writable memory named key from rank.
	Unregister(rank int, key string) error

	// Write performs a one-sided write of payload into the memory
	// registered as key on rank to, on the caller's goroutine.
	Write(from, to int, key string, payload []byte) error
	// WriteBatch performs one merged write carrying several records for the
	// same key: one latency charge, one message, per-record handler
	// delivery in order.
	WriteBatch(from, to int, key string, records [][]byte) error

	// Ping performs a synchronous health probe. Implementations must
	// support delegated probes (from != the local rank) so the fault
	// monitor's cluster health check can ask other ranks to verify a
	// suspect.
	Ping(from, to int) error

	// Kill marks rank dead; its writes fail with ErrSenderDead and writes
	// to it with ErrUnreachable. On a networked transport only the local
	// rank can be killed.
	Kill(rank int) error
	// Alive reports whether rank is believed alive.
	Alive(rank int) bool
	// AliveRanks returns the sorted list of ranks believed alive.
	AliveRanks() []int
	// GroupOf returns the partition group id of a rank; transports without
	// partition simulation always return 0.
	GroupOf(rank int) int
	// OnLivenessChange registers a callback invoked whenever a rank's
	// liveness changes. Callbacks must not mutate liveness re-entrantly.
	OnLivenessChange(fn func(rank int, alive bool))

	// Stats returns the per-link traffic counters.
	Stats() *Stats

	// Close releases transport resources (sockets, goroutines).
	Close() error
}

// Coordinator is an optional extension a Transport may implement when the
// cluster spans OS processes and the in-process barrier in dstorm cannot
// see all ranks. dstorm delegates its named barriers to the Coordinator
// when the transport provides one. Barrier blocks until every rank the
// transport believes alive has entered the barrier with the same name, and
// returns early (nil) when membership shrinks so survivors are released.
type Coordinator interface {
	Barrier(name string, rank int) error
}

// Membership is an optional extension a Transport may implement when it
// supports elastic membership: a monotonically-increasing epoch minted on
// every confirmed death and every join, with stale-epoch traffic fenced so
// a rejoining rank can never poison in-flight gathers.
//
// Error taxonomy addition: ErrStaleEpoch marks an operation from (or
// rejected by) a rank whose admission predates the current epoch. It is
// permanent — the zombie must Join again — and is never retried.
type Membership interface {
	// Epoch returns the current membership epoch (starts at 1, or at the
	// transport's rendezvous generation).
	Epoch() uint64
	// Join (re-)admits rank: mints a new epoch, stamps the rank's
	// admission with it, marks it alive, and fires join watchers. Returns
	// the minted epoch.
	Join(rank int) (uint64, error)
	// OnJoin registers a callback invoked on every admission. Join
	// watchers are separate from liveness watchers because topology
	// changes re-announce aliveness without any admission happening.
	OnJoin(fn func(rank int, epoch uint64))
	// StaleEpochRejected counts operations fenced by the epoch check.
	StaleEpochRejected() uint64
}

var (
	_ Transport  = (*Fabric)(nil)
	_ Membership = (*Fabric)(nil)
)
