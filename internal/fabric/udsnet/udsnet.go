// Package udsnet is the Unix-domain-socket flavor of the shared
// framed-stream transport (internal/fabric/stream). It serves the
// realistic single-host topology — several OS processes on one machine —
// without the TCP/IP stack in the path: same frame protocol, same windowed
// write pipelining, same control-plane split, but peer addresses are
// socket paths instead of host:port pairs.
package udsnet

import (
	"os"

	"malt/internal/fabric/stream"
)

// Net is one rank's endpoint of a Unix-socket cluster; see stream.Net.
type Net = stream.Net

// Config describes one rank of a Unix-socket cluster; see stream.Config.
// Peers entries are socket paths. The Network field is forced to unix by
// New.
type Config = stream.Config

// New binds this rank's Unix socket and starts its receiver loop. A stale
// socket file left by a previous incarnation of this rank (a crashed
// process does not unlink its socket) is removed before binding; a path
// occupied by a non-socket file is left alone so the bind fails loudly
// instead of destroying data. The returned Net is not usable for data
// operations until Rendezvous (or Join) has completed.
func New(cfg Config) (*Net, error) {
	cfg.Network = stream.NetworkUnix
	if cfg.Listener == nil && cfg.Rank >= 0 && cfg.Rank < len(cfg.Peers) {
		path := cfg.Peers[cfg.Rank]
		if fi, err := os.Stat(path); err == nil && fi.Mode()&os.ModeSocket != 0 {
			os.Remove(path)
		}
	}
	return stream.New(cfg)
}
