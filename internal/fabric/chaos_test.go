package fabric

import (
	"errors"
	"fmt"
	"testing"
)

func newChaosFabric(t *testing.T, ranks int, cfg ChaosConfig) *Fabric {
	t.Helper()
	f, err := New(Config{Ranks: ranks, Chaos: &cfg})
	if err != nil {
		t.Fatal(err)
	}
	for r := 0; r < ranks; r++ {
		if err := f.Register(r, "sink", func(from int, payload []byte) error { return nil }); err != nil {
			t.Fatal(err)
		}
	}
	return f
}

func TestChaosDropInjectsErrTransient(t *testing.T) {
	f := newChaosFabric(t, 2, ChaosConfig{Seed: 7, Default: LinkFault{DropProb: 1}})
	err := f.Write(0, 1, "sink", []byte("x"))
	if !errors.Is(err, ErrTransient) {
		t.Fatalf("want ErrTransient, got %v", err)
	}
	if errors.Is(err, ErrUnreachable) {
		t.Fatal("transient drop must not look like unreachability")
	}
	if got := f.Stats().InjectedDrops(); got != 1 {
		t.Fatalf("InjectedDrops = %d, want 1", got)
	}
	if got := f.Stats().TotalMessages(); got != 0 {
		t.Fatalf("dropped write counted as delivered: %d messages", got)
	}
}

func TestChaosBlackoutWindow(t *testing.T) {
	f := newChaosFabric(t, 3, ChaosConfig{Seed: 1})
	if err := f.Write(0, 1, "sink", []byte("x")); err != nil {
		t.Fatalf("clean link dropped: %v", err)
	}
	if err := f.SetRankBlackout(1, true); err != nil {
		t.Fatal(err)
	}
	if err := f.Write(0, 1, "sink", []byte("x")); !errors.Is(err, ErrTransient) {
		t.Fatalf("blackout write: want ErrTransient, got %v", err)
	}
	if err := f.Ping(2, 1); !errors.Is(err, ErrTransient) {
		t.Fatalf("blackout ping: want ErrTransient, got %v", err)
	}
	// Links not touching rank 1 are unaffected.
	if err := f.Write(0, 2, "sink", []byte("x")); err != nil {
		t.Fatalf("bystander link dropped: %v", err)
	}
	if err := f.SetRankBlackout(1, false); err != nil {
		t.Fatal(err)
	}
	if err := f.Write(0, 1, "sink", []byte("x")); err != nil {
		t.Fatalf("healed link dropped: %v", err)
	}
}

func TestChaosJitterAccountsExtraTime(t *testing.T) {
	f := newChaosFabric(t, 2, ChaosConfig{Seed: 3,
		Default: LinkFault{JitterProb: 1, JitterMult: 5}})
	if err := f.Write(0, 1, "sink", make([]byte, 1000)); err != nil {
		t.Fatal(err)
	}
	if got := f.Stats().InjectedJitterTime(); got <= 0 {
		t.Fatalf("InjectedJitterTime = %v, want > 0", got)
	}
	// Jittered wire time is part of the modeled total.
	if f.Stats().ModeledNetworkTime() <= f.Stats().InjectedJitterTime() {
		t.Fatal("modeled time must include base cost plus jitter")
	}
}

func TestChaosDoesNotMaskFailStop(t *testing.T) {
	f := newChaosFabric(t, 2, ChaosConfig{Seed: 5, Default: LinkFault{DropProb: 1}})
	if err := f.Kill(1); err != nil {
		t.Fatal(err)
	}
	if err := f.Write(0, 1, "sink", []byte("x")); !errors.Is(err, ErrUnreachable) {
		t.Fatalf("dead rank: want ErrUnreachable, got %v", err)
	}
	if err := f.Ping(0, 1); !errors.Is(err, ErrUnreachable) {
		t.Fatalf("dead ping: want ErrUnreachable, got %v", err)
	}
}

// TestChaosDeterministicSchedule is the determinism contract: the same seed
// and config produce byte-identical injection schedules and stats across
// two runs of the same operation sequence.
func TestChaosDeterministicSchedule(t *testing.T) {
	cfg := ChaosConfig{
		Seed:    42,
		Default: LinkFault{DropProb: 0.3, JitterProb: 0.25, JitterMult: 4},
		Links: map[[2]int]LinkFault{
			{0, 1}: {DropProb: 0.9},
			{2, 0}: {}, // clean link
		},
	}
	run := func() (schedule []string, snap []uint64) {
		f := newChaosFabric(t, 3, cfg)
		defer f.Close()
		payload := make([]byte, 256)
		for i := 0; i < 200; i++ {
			for from := 0; from < 3; from++ {
				for to := 0; to < 3; to++ {
					if from == to {
						continue
					}
					//maltlint:allow bufretain -- chaos sweep re-posts one read-only buffer; the fabric copies on deposit
					err := f.Write(from, to, "sink", payload)
					schedule = append(schedule, fmt.Sprintf("%d->%d:%v", from, to, err))
					perr := f.Ping(from, to)
					schedule = append(schedule, fmt.Sprintf("p%d->%d:%v", from, to, perr))
				}
			}
		}
		return schedule, f.Stats().Snapshot()
	}
	sched1, snap1 := run()
	sched2, snap2 := run()
	if len(sched1) != len(sched2) {
		t.Fatalf("schedule lengths differ: %d vs %d", len(sched1), len(sched2))
	}
	for i := range sched1 {
		if sched1[i] != sched2[i] {
			t.Fatalf("schedules diverge at op %d: %q vs %q", i, sched1[i], sched2[i])
		}
	}
	if len(snap1) != len(snap2) {
		t.Fatalf("snapshot lengths differ")
	}
	for i := range snap1 {
		if snap1[i] != snap2[i] {
			t.Fatalf("stats diverge at counter %d: %d vs %d", i, snap1[i], snap2[i])
		}
	}
	// Sanity: the hostile config actually injected faults.
	var drops uint64
	for i := 4; i < len(snap1); i += 6 {
		drops += snap1[i]
	}
	if drops == 0 {
		t.Fatal("no drops injected by a 30% drop config")
	}
}

// Different links must draw from independent streams: a per-link override
// must not shift its neighbours' schedules.
func TestChaosPerLinkStreamsIndependent(t *testing.T) {
	base := ChaosConfig{Seed: 9, Default: LinkFault{DropProb: 0.5}}
	withOverride := ChaosConfig{Seed: 9, Default: LinkFault{DropProb: 0.5},
		Links: map[[2]int]LinkFault{{0, 1}: {DropProb: 1}}}
	run := func(cfg ChaosConfig) []string {
		f := newChaosFabric(t, 3, cfg)
		defer f.Close()
		var out []string
		for i := 0; i < 50; i++ {
			err := f.Write(1, 2, "sink", []byte("x")) // untouched link
			out = append(out, fmt.Sprint(err))
		}
		return out
	}
	a, b := run(base), run(withOverride)
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("override on 0->1 perturbed link 1->2 at op %d", i)
		}
	}
}

func TestChaosEnableDisable(t *testing.T) {
	f := newChaosFabric(t, 2, ChaosConfig{Seed: 1, Default: LinkFault{DropProb: 1}})
	if !f.ChaosEnabled() {
		t.Fatal("chaos should be on")
	}
	f.DisableChaos()
	if f.ChaosEnabled() {
		t.Fatal("chaos should be off")
	}
	if err := f.Write(0, 1, "sink", []byte("x")); err != nil {
		t.Fatalf("write after DisableChaos: %v", err)
	}
	f.EnableChaos(ChaosConfig{Seed: 2, Default: LinkFault{DropProb: 1}})
	if err := f.Write(0, 1, "sink", []byte("x")); !errors.Is(err, ErrTransient) {
		t.Fatalf("write after EnableChaos: %v", err)
	}
	if lf := f.LinkFaultOf(0, 1); lf.DropProb != 1 {
		t.Fatalf("LinkFaultOf = %+v", lf)
	}
}
