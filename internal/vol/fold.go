package vol

import (
	"reflect"
	"sync"

	"malt/internal/ml/linalg"
)

// This file is the fold half of the parallel gather engine. Every built-in
// UDF has two forms: the whole-vector form (the public API since v0 —
// Average, Sum, …) and a chunk form that folds only the coordinate range
// [Lo, Hi). The whole-vector forms are now thin wrappers over their chunk
// forms, so both paths run the same arithmetic.
//
// Parallel folds split the COORDINATE axis, never the update axis: each
// coordinate's additions still happen in exactly the serial order (ascending
// sender rank, with the local value inserted at the folding rank's own
// position). Because float addition is non-associative, that is the only
// split that keeps the parallel result bitwise identical to the serial one
// at any worker count or chunk size.

// DefaultFoldChunk is the coordinate-chunk size used when Options.FoldChunk
// is zero: 4096 float64s = 32 KiB per chunk, small enough to stay inside an
// L1/L2 slice while large enough to amortize task dispatch.
const DefaultFoldChunk = 4096

// Chunk is the input to a chunk-form UDF: one coordinate range of a fold.
type Chunk struct {
	// Self is the rank performing the gather.
	Self int
	// Lo and Hi bound the coordinate range this call owns: the UDF must
	// read and write Local only inside [Lo, Hi).
	Lo, Hi int
	// Local is the rank's FULL current value; the chunk's slice of it is
	// Local[Lo:Hi].
	Local []float64
	// Updates are the full incoming peer updates (same slice for every
	// chunk of one fold); UDFs index their Data with absolute coordinates.
	Updates []Update
	// Acc is optional scratch of length Hi-Lo, disjoint per chunk. Nil when
	// the caller has none to offer; UDFs needing accumulation then allocate.
	// Contents on entry are garbage — zero before use.
	Acc []float64
}

// ChunkUDF folds the incoming updates into Local restricted to the chunk's
// coordinate range. Implementations must be pure over their range: no
// writes outside Local[Lo:Hi), no mutation of shared state — chunks of one
// fold run concurrently.
type ChunkUDF func(c Chunk)

// chunkForms maps a whole-vector UDF (by code pointer) to its chunk form.
// Reads happen on every gather from every rank's goroutine; writes only
// through RegisterChunkUDF.
var chunkForms struct {
	sync.RWMutex
	m map[uintptr]ChunkUDF
}

// RegisterChunkUDF associates a chunk form with a whole-vector UDF so
// parallel gathers can fold it chunked. Both must compute identical results
// (chunk form over [0, dim) ≡ whole form). Only top-level named functions
// may be registered: distinct closure instances share one code pointer, so
// registering a closure would silently claim all its siblings. Call during
// init — registering while gathers are running is safe but the new form is
// not guaranteed visible to them.
func RegisterChunkUDF(whole UDF, chunk ChunkUDF) {
	chunkForms.Lock()
	defer chunkForms.Unlock()
	if chunkForms.m == nil {
		chunkForms.m = make(map[uintptr]ChunkUDF)
	}
	chunkForms.m[reflect.ValueOf(whole).Pointer()] = chunk
}

// chunkFormOf returns the registered chunk form for udf, or nil.
func chunkFormOf(udf UDF) ChunkUDF {
	if udf == nil {
		return nil
	}
	chunkForms.RLock()
	defer chunkForms.RUnlock()
	return chunkForms.m[reflect.ValueOf(udf).Pointer()]
}

func init() {
	RegisterChunkUDF(Average, AverageChunk)
	RegisterChunkUDF(AverageIncoming, AverageIncomingChunk)
	RegisterChunkUDF(Sum, SumChunk)
	RegisterChunkUDF(ReplaceCoords, ReplaceCoordsChunk)
	RegisterChunkUDF(Replace, ReplaceChunk)
}

// Average replaces local with the mean of {local} ∪ updates — the paper's
// default gradient-averaging gather. The summation folds in ascending rank
// order (treating the local value as rank Self's contribution), so that
// when every rank sees the same multiset of updates — as in synchronous
// all-to-all training — every rank computes the bit-identical result
// regardless of which contribution is its own.
func Average(f Fold) {
	AverageChunk(Chunk{Self: f.Self, Lo: 0, Hi: len(f.Local), Local: f.Local, Updates: f.Updates})
}

// AverageChunk is the chunk form of Average.
func AverageChunk(c Chunk) {
	if len(c.Updates) == 0 {
		return
	}
	acc := c.Acc
	if acc == nil {
		acc = make([]float64, c.Hi-c.Lo)
	} else {
		linalg.Zero(acc)
	}
	scale := 1.0 / float64(len(c.Updates)+1)
	local := c.Local[c.Lo:c.Hi]
	localAdded := false
	addLocal := func() {
		for i, v := range local {
			acc[i] += scale * v
		}
		localAdded = true
	}
	for _, u := range c.Updates {
		if !localAdded && c.Self < u.From {
			addLocal()
		}
		linalg.Axpy(scale, u.Data[c.Lo:c.Hi], acc)
	}
	if !localAdded {
		addLocal()
	}
	copy(local, acc)
}

// AverageIncoming replaces local with the mean of the incoming updates
// only, leaving local untouched when nothing arrived. Model-averaging
// configurations ("modelavg") use it: the local parameters are mixed into
// the scatter itself, not the fold.
func AverageIncoming(f Fold) {
	AverageIncomingChunk(Chunk{Self: f.Self, Lo: 0, Hi: len(f.Local), Local: f.Local, Updates: f.Updates})
}

// AverageIncomingChunk is the chunk form of AverageIncoming.
func AverageIncomingChunk(c Chunk) {
	if len(c.Updates) == 0 {
		return
	}
	local := c.Local[c.Lo:c.Hi]
	linalg.Zero(local)
	scale := 1.0 / float64(len(c.Updates))
	for _, u := range c.Updates {
		linalg.Axpy(scale, u.Data[c.Lo:c.Hi], local)
	}
}

// Sum adds every incoming update into local.
func Sum(f Fold) {
	SumChunk(Chunk{Self: f.Self, Lo: 0, Hi: len(f.Local), Local: f.Local, Updates: f.Updates})
}

// SumChunk is the chunk form of Sum.
func SumChunk(c Chunk) {
	local := c.Local[c.Lo:c.Hi]
	for _, u := range c.Updates {
		linalg.Axpy(1, u.Data[c.Lo:c.Hi], local)
	}
}

// ReplaceCoords overwrites, for every incoming sparse update in arrival
// order, exactly the coordinates the sender shipped, leaving all others
// untouched. This is the distributed Hogwild gather for models where each
// update touches a few rows (matrix factorization: the changed rows and
// columns of the factor matrices). Dense updates fall back to whole-vector
// replacement.
func ReplaceCoords(f Fold) {
	ReplaceCoordsChunk(Chunk{Self: f.Self, Lo: 0, Hi: len(f.Local), Local: f.Local, Updates: f.Updates})
}

// ReplaceCoordsChunk is the chunk form of ReplaceCoords. Each chunk scans
// every update's index list and applies only the indices inside its range —
// O(nnz) per chunk, but per-coordinate write order stays the serial arrival
// order.
func ReplaceCoordsChunk(c Chunk) {
	lo, hi := int32(c.Lo), int32(c.Hi)
	for _, u := range c.Updates {
		if u.Sparse == nil {
			copy(c.Local[c.Lo:c.Hi], u.Data[c.Lo:c.Hi])
			continue
		}
		for i, idx := range u.Sparse.Idx {
			if idx >= lo && idx < hi {
				c.Local[idx] = u.Sparse.Val[i]
			}
		}
	}
}

// Replace overwrites local with the freshest incoming update (highest
// iteration stamp, ties broken by arrival order) — the distributed Hogwild
// gather used by the matrix-factorization workload.
func Replace(f Fold) {
	ReplaceChunk(Chunk{Self: f.Self, Lo: 0, Hi: len(f.Local), Local: f.Local, Updates: f.Updates})
}

// ReplaceChunk is the chunk form of Replace. Freshest-update selection is a
// pure function of the update list, so every chunk picks the same winner.
func ReplaceChunk(c Chunk) {
	if len(c.Updates) == 0 {
		return
	}
	best := 0
	for i, u := range c.Updates {
		if u.Iter >= c.Updates[best].Iter {
			best = i
		}
	}
	copy(c.Local[c.Lo:c.Hi], c.Updates[best].Data[c.Lo:c.Hi])
}
