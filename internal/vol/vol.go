// Package vol is MALT's Vector Object Library (paper §3.2): it raises the
// raw shared-memory segments of dstorm to typed model-parameter/gradient
// vectors with representation optimizations (dense or sparse wire formats)
// and gather-side user-defined functions (average, sum, replace, …).
//
// Creating a Vector collectively creates a dstorm segment sized for the
// chosen representation; Scatter serializes the local value (or a sparse
// delta) and pushes it one-sidedly to the dataflow peers; Gather decodes
// whatever updates have arrived locally and folds them into the local value
// with the UDF. A Vector is owned by one rank's training goroutine; it is
// not safe for concurrent use by multiple goroutines of the same rank.
package vol

import (
	"errors"
	"fmt"

	"malt/internal/dataflow"
	"malt/internal/dstorm"
	"malt/internal/ml/linalg"
)

// Type selects the wire representation of scattered updates.
type Type int

const (
	// Dense sends the full float64 vector every scatter.
	Dense Type = iota
	// Sparse sends only non-zero entries as (index, value) pairs. The
	// segment is still sized for the worst case (MaxNNZ).
	Sparse
)

// String returns "dense" or "sparse".
func (t Type) String() string {
	if t == Sparse {
		return "sparse"
	}
	return "dense"
}

// Options tunes a Vector beyond its type and dimension.
type Options struct {
	// QueueLen is the per-sender receive-queue depth (dstorm default if 0).
	QueueLen int
	// ChunkSize forwards to dstorm.SegmentOptions.ChunkSize.
	ChunkSize int
	// MaxNNZ caps the entries of a sparse update; 0 means dim (worst case).
	MaxNNZ int
}

// GatherStats summarizes one gather call.
type GatherStats struct {
	// Updates is the number of peer updates folded.
	Updates int
	// MinIter and MaxIter are the smallest and largest iteration stamps
	// among the folded updates (both 0 when Updates is 0).
	MinIter, MaxIter uint64
	// Torn counts updates observed mid-write (weak gathers only).
	Torn int
}

// Update is one decoded peer update handed to a UDF. Data aliases gather
// buffers valid only for the duration of the UDF call.
type Update struct {
	// From is the sender's rank.
	From int
	// Iter is the sender's iteration stamp.
	Iter uint64
	// Data is the decoded (densified) payload.
	Data []float64
	// Sparse is the raw sparse payload for Sparse-typed vectors (nil for
	// Dense). UDFs that must distinguish "sent as zero" from "not sent" —
	// coordinate-wise Hogwild replacement, for example — read it instead
	// of Data.
	Sparse *linalg.SparseVector
}

// Fold is the input to a gather UDF: the folding rank's identity and local
// value plus the incoming updates, ordered by sender rank then sequence.
type Fold struct {
	// Self is the rank performing the gather.
	Self int
	// Local is the rank's current value, mutated in place by the UDF.
	Local []float64
	// Updates are the incoming peer updates.
	Updates []Update
}

// UDF folds incoming peer updates into the local vector. Implementations
// must not retain f.Updates' Data slices — they alias gather buffers.
type UDF func(f Fold)

// Average replaces local with the mean of {local} ∪ updates — the paper's
// default gradient-averaging gather. The summation folds in ascending rank
// order (treating the local value as rank Self's contribution), so that
// when every rank sees the same multiset of updates — as in synchronous
// all-to-all training — every rank computes the bit-identical result
// regardless of which contribution is its own.
func Average(f Fold) {
	if len(f.Updates) == 0 {
		return
	}
	scale := 1.0 / float64(len(f.Updates)+1)
	acc := make([]float64, len(f.Local))
	localAdded := false
	addLocal := func() {
		for i, v := range f.Local {
			acc[i] += scale * v
		}
		localAdded = true
	}
	for _, u := range f.Updates {
		if !localAdded && f.Self < u.From {
			addLocal()
		}
		linalg.Axpy(scale, u.Data, acc)
	}
	if !localAdded {
		addLocal()
	}
	copy(f.Local, acc)
}

// AverageIncoming replaces local with the mean of the incoming updates
// only, leaving local untouched when nothing arrived. Model-averaging
// configurations ("modelavg") use it: the local parameters are mixed into
// the scatter itself, not the fold.
func AverageIncoming(f Fold) {
	if len(f.Updates) == 0 {
		return
	}
	linalg.Zero(f.Local)
	scale := 1.0 / float64(len(f.Updates))
	for _, u := range f.Updates {
		linalg.Axpy(scale, u.Data, f.Local)
	}
}

// Sum adds every incoming update into local.
func Sum(f Fold) {
	for _, u := range f.Updates {
		linalg.Axpy(1, u.Data, f.Local)
	}
}

// ReplaceCoords overwrites, for every incoming sparse update in arrival
// order, exactly the coordinates the sender shipped, leaving all others
// untouched. This is the distributed Hogwild gather for models where each
// update touches a few rows (matrix factorization: the changed rows and
// columns of the factor matrices). Dense updates fall back to whole-vector
// replacement.
func ReplaceCoords(f Fold) {
	for _, u := range f.Updates {
		if u.Sparse == nil {
			copy(f.Local, u.Data)
			continue
		}
		n := int32(len(f.Local))
		for i, idx := range u.Sparse.Idx {
			if idx < n {
				f.Local[idx] = u.Sparse.Val[i]
			}
		}
	}
}

// Replace overwrites local with the freshest incoming update (highest
// iteration stamp, ties broken by arrival order) — the distributed Hogwild
// gather used by the matrix-factorization workload.
func Replace(f Fold) {
	if len(f.Updates) == 0 {
		return
	}
	best := 0
	for i, u := range f.Updates {
		if u.Iter >= f.Updates[best].Iter {
			best = i
		}
	}
	copy(f.Local, f.Updates[best].Data)
}

// Vector is a shared model-parameter or gradient vector.
type Vector struct {
	name string
	typ  Type
	dim  int
	rank int
	seg  *dstorm.Segment
	data []float64

	encBuf    []byte
	updateBuf []Update                         // per-gather decoded views
	accept    func(from int, iter uint64) bool // transient GatherIf filter
}

// Create collectively creates a Vector named name over the node's cluster.
// Like dstorm segment creation, every rank in the graph must call Create
// with identical parameters; the call blocks until all have.
func Create(node *dstorm.Node, name string, typ Type, dim int, graph *dataflow.Graph, opts Options) (*Vector, error) {
	if dim <= 0 {
		return nil, fmt.Errorf("vol: dimension must be positive, got %d", dim)
	}
	maxNNZ := opts.MaxNNZ
	if maxNNZ <= 0 || maxNNZ > dim {
		maxNNZ = dim
	}
	var objSize int
	switch typ {
	case Dense:
		objSize = 8 * dim
	case Sparse:
		objSize = 4 + 12*maxNNZ // count + (int32 idx, float64 val) pairs
	default:
		return nil, fmt.Errorf("vol: unknown vector type %d", typ)
	}
	seg, err := node.CreateSegment("vol/"+name, dstorm.SegmentOptions{
		ObjectSize: objSize,
		QueueLen:   opts.QueueLen,
		Graph:      graph,
		ChunkSize:  opts.ChunkSize,
	})
	if err != nil {
		return nil, err
	}
	return &Vector{
		name:   name,
		typ:    typ,
		dim:    dim,
		rank:   node.Rank(),
		seg:    seg,
		data:   make([]float64, dim),
		encBuf: make([]byte, objSize),
	}, nil
}

// Name returns the vector's name.
func (v *Vector) Name() string { return v.name }

// Type returns the wire representation.
func (v *Vector) Type() Type { return v.typ }

// Dim returns the vector length.
func (v *Vector) Dim() int { return v.dim }

// Data returns the local value. The slice is the vector's backing store:
// the training loop reads and writes it directly (this is the "shared
// memory" programming model — no copies between the model and the
// communication layer).
func (v *Vector) Data() []float64 { return v.data }

// AsMatrix views the local value as a rows×cols matrix sharing storage.
// rows*cols must equal Dim. Neural-network layers and MF factor matrices
// use this to train directly inside the scatter buffer.
func (v *Vector) AsMatrix(rows, cols int) *linalg.Matrix {
	return linalg.WrapMatrix(rows, cols, v.data)
}

// Segment exposes the underlying dstorm segment for advanced control
// (staleness peeks, peer removal on failure).
func (v *Vector) Segment() *dstorm.Segment { return v.seg }

// SetIteration stamps subsequent scatters with the given iteration count.
func (v *Vector) SetIteration(iter uint64) { v.seg.SetIteration(iter) }

// Scatter serializes the local value and pushes it to all dataflow peers,
// returning the peers whose writes failed.
func (v *Vector) Scatter(iter uint64) ([]int, error) {
	payload, err := v.encode(v.data)
	if err != nil {
		return nil, err
	}
	return v.seg.Scatter(payload, iter)
}

// ScatterTo pushes the local value to a subset of the dataflow peers,
// giving per-call dataflow control (paper Table 1: scatter takes an
// optional dataflow argument).
func (v *Vector) ScatterTo(peers []int, iter uint64) ([]int, error) {
	payload, err := v.encode(v.data)
	if err != nil {
		return nil, err
	}
	return v.seg.ScatterTo(peers, payload, iter)
}

// ScatterSparse pushes an explicit sparse update (for example, only the
// coordinates touched by the last mini-batch) instead of the full local
// value. The vector must have been created with the Sparse type.
func (v *Vector) ScatterSparse(update *linalg.SparseVector, iter uint64) ([]int, error) {
	if v.typ != Sparse {
		return nil, errors.New("vol: ScatterSparse requires a Sparse vector")
	}
	payload, err := encodeSparse(v.encBuf, update)
	if err != nil {
		return nil, err
	}
	return v.seg.Scatter(payload, iter)
}

// Gather folds all newly arrived peer updates into the local value with the
// given UDF (atomic snapshots; never torn).
func (v *Vector) Gather(udf UDF) (GatherStats, error) {
	return v.gather(udf, dstorm.GatherAllNew, false)
}

// GatherIf folds only the updates for which accept returns true; rejected
// updates are consumed and dropped. Staleness policies (the paper's ASP
// configuration skips merging updates from stragglers) pass an iteration
// filter here. GatherStats.Updates counts only accepted updates.
func (v *Vector) GatherIf(udf UDF, accept func(from int, iter uint64) bool) (GatherStats, error) {
	v.accept = accept
	defer func() { v.accept = nil }()
	return v.gather(udf, dstorm.GatherAllNew, false)
}

// GatherLatest folds only the freshest update per peer.
func (v *Vector) GatherLatest(udf UDF) (GatherStats, error) {
	return v.gather(udf, dstorm.GatherLatest, false)
}

// GatherWeak folds updates without torn-read protection; GatherStats.Torn
// counts how many folded payloads were observed mid-write. Exists to
// quantify the consistency trade-off of §3.2.
func (v *Vector) GatherWeak(udf UDF) (GatherStats, error) {
	return v.gather(udf, dstorm.GatherAllNew, true)
}

func (v *Vector) gather(udf UDF, mode dstorm.GatherMode, weak bool) (GatherStats, error) {
	var (
		ups []dstorm.Update
		err error
	)
	if weak {
		ups, err = v.seg.GatherWeak(mode)
	} else {
		ups, err = v.seg.Gather(mode)
	}
	if err != nil {
		return GatherStats{}, err
	}
	stats := GatherStats{}
	v.updateBuf = v.updateBuf[:0]
	switch v.typ {
	case Dense:
		for _, u := range ups {
			if v.accept != nil && !v.accept(u.From, u.Iter) {
				continue
			}
			dec, derr := v.decodeDense(u.Data)
			if derr != nil {
				if weak && u.Torn {
					stats.Torn++
					continue // torn payloads may be undecodable; drop
				}
				return stats, derr
			}
			v.noteUpdate(&stats, u)
			v.updateBuf = append(v.updateBuf, Update{From: u.From, Iter: u.Iter, Data: dec})
		}
	case Sparse:
		// Sparse updates are densified so every UDF sees a uniform dense
		// view.
		for _, u := range ups {
			if v.accept != nil && !v.accept(u.From, u.Iter) {
				continue
			}
			sv, derr := decodeSparse(u.Data)
			if derr != nil {
				if weak && u.Torn {
					stats.Torn++
					continue
				}
				return stats, derr
			}
			v.noteUpdate(&stats, u)
			dense := make([]float64, v.dim)
			sv.AxpyDense(1, dense)
			v.updateBuf = append(v.updateBuf, Update{From: u.From, Iter: u.Iter, Data: dense, Sparse: sv})
		}
	}
	if udf != nil {
		udf(Fold{Self: v.rank, Local: v.data, Updates: v.updateBuf})
	}
	if weak {
		for _, u := range ups {
			if u.Torn {
				stats.Torn++
			}
		}
	}
	return stats, nil
}

func (v *Vector) noteUpdate(stats *GatherStats, u dstorm.Update) {
	if stats.Updates == 0 || u.Iter < stats.MinIter {
		stats.MinIter = u.Iter
	}
	if u.Iter > stats.MaxIter {
		stats.MaxIter = u.Iter
	}
	stats.Updates++
}

// PeerIters reports the latest iteration stamp seen from each inbound peer
// without consuming updates (staleness policies poll this).
func (v *Vector) PeerIters() map[int]uint64 { return v.seg.PeerIters() }

// Barrier blocks until all live ranks reach the vector's barrier — the
// paper's g.barrier() for bulk-synchronous training. The owning node's send
// pipeline is drained first (see dstorm.Segment.Barrier).
func (v *Vector) Barrier() error { return v.seg.Barrier() }

// Drain blocks until every scatter accepted by the owning node's coalescing
// pipeline has been delivered or exhausted its retries. A no-op when the
// pipeline is disabled. SSP calls this before staleness stalls.
func (v *Vector) Drain() error { return v.seg.Node().Drain() }

// Flush posts the pipeline's partial batches without waiting for delivery.
func (v *Vector) Flush() { v.seg.Node().Flush() }

// RemovePeer drops a failed rank from the vector's send/receive lists.
func (v *Vector) RemovePeer(rank int) { v.seg.RemovePeer(rank) }

// Close releases the underlying segment.
func (v *Vector) Close() error { return v.seg.Close() }

// SegStats returns the receive-side counters of the underlying segment:
// how many updates gathers consumed and how many were lost to ring
// overwrites before consumption.
func (v *Vector) SegStats() dstorm.Stats { return v.seg.Stats() }
