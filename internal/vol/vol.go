// Package vol is MALT's Vector Object Library (paper §3.2): it raises the
// raw shared-memory segments of dstorm to typed model-parameter/gradient
// vectors with representation optimizations (dense or sparse wire formats)
// and gather-side user-defined functions (average, sum, replace, …).
//
// Creating a Vector collectively creates a dstorm segment sized for the
// chosen representation; Scatter serializes the local value (or a sparse
// delta) and pushes it one-sidedly to the dataflow peers; Gather decodes
// whatever updates have arrived locally and folds them into the local value
// with the UDF. A Vector is owned by one rank's training goroutine; it is
// not safe for concurrent use by multiple goroutines of the same rank.
package vol

import (
	"errors"
	"fmt"

	"malt/internal/compress"
	"malt/internal/dataflow"
	"malt/internal/dstorm"
	"malt/internal/ml/linalg"
	"malt/internal/par"
)

// Type selects the wire representation of scattered updates.
type Type int

const (
	// Dense sends the full float64 vector every scatter.
	Dense Type = iota
	// Sparse sends only non-zero entries as (index, value) pairs. The
	// segment is still sized for the worst case (MaxNNZ).
	Sparse
)

// String returns "dense" or "sparse".
func (t Type) String() string {
	if t == Sparse {
		return "sparse"
	}
	return "dense"
}

// Options tunes a Vector beyond its type and dimension.
type Options struct {
	// QueueLen is the per-sender receive-queue depth (dstorm default if 0).
	QueueLen int
	// ChunkSize forwards to dstorm.SegmentOptions.ChunkSize.
	ChunkSize int
	// MaxNNZ caps the entries of a sparse update; 0 means dim (worst case).
	MaxNNZ int
	// FoldChunk is the coordinate-chunk size for parallel folds (see
	// fold.go); 0 means DefaultFoldChunk. Only consulted when the owning
	// node's parallel-gather pool is enabled.
	FoldChunk int
	// BucketBytes, when positive, splits every scatter of a Dense vector
	// into byte-capped coordinate-range fragments (gradient bucketing, see
	// bucket.go): fragment i is on the wire while the trainer produces
	// fragment i+1, and receivers reassemble fragments into whole logical
	// updates before folding, so results are bitwise identical to the
	// unbucketed path. The receive-ring depth (QueueLen) is per logical
	// update — it is scaled by the fragment count internally. Rejected for
	// Sparse vectors (sparse scatters are already deltas).
	BucketBytes int
	// Compress selects gradient compression with per-destination
	// error-feedback residuals (see compress.go and internal/compress).
	// Scatters ship codec frames instead of raw floats — per destination,
	// because each link's residual differs — and receivers decode before
	// reassembly/fold. Composes with BucketBytes (fragments carry frame
	// slices of one globally planned update, so folds stay bitwise
	// identical to unbucketed at any bucket size). Rejected for Sparse
	// vectors. The zero value disables compression.
	Compress compress.Options
	// SkipCreationBarrier forwards to
	// dstorm.SegmentOptions.SkipCreationBarrier: register without the
	// collective creation barrier (elastic-membership rejoin only).
	SkipCreationBarrier bool
}

// GatherStats summarizes one gather call.
type GatherStats struct {
	// Updates is the number of peer updates folded.
	Updates int
	// MinIter and MaxIter are the smallest and largest iteration stamps
	// among the folded updates (both 0 when Updates is 0).
	MinIter, MaxIter uint64
	// Torn counts updates observed mid-write (weak gathers only).
	Torn int
}

// Update is one decoded peer update handed to a UDF. Data aliases gather
// buffers valid only for the duration of the UDF call.
type Update struct {
	// From is the sender's rank.
	From int
	// Iter is the sender's iteration stamp.
	Iter uint64
	// Data is the decoded (densified) payload.
	Data []float64
	// Sparse is the raw sparse payload for Sparse-typed vectors (nil for
	// Dense). UDFs that must distinguish "sent as zero" from "not sent" —
	// coordinate-wise Hogwild replacement, for example — read it instead
	// of Data.
	Sparse *linalg.SparseVector
}

// Fold is the input to a gather UDF: the folding rank's identity and local
// value plus the incoming updates, ordered by sender rank then sequence.
type Fold struct {
	// Self is the rank performing the gather.
	Self int
	// Local is the rank's current value, mutated in place by the UDF.
	Local []float64
	// Updates are the incoming peer updates.
	Updates []Update
}

// UDF folds incoming peer updates into the local vector. Implementations
// must not retain f.Updates' Data slices — they alias gather buffers.
//
// The built-in UDFs (Average, AverageIncoming, Sum, ReplaceCoords, Replace)
// live in fold.go alongside their chunk forms, which parallel gathers use
// to fold coordinate ranges concurrently with bitwise-identical results.
type UDF func(f Fold)

// GatherPerf counts the parallel gather engine's work since the vector was
// created. The counters are owned by the vector's goroutine (like the
// vector itself); read them between gathers.
type GatherPerf struct {
	// DecodeTasks is the number of update decodes fanned out to the node's
	// parallel-gather pool (serial decodes are not counted).
	DecodeTasks uint64
	// ChunksFolded is the number of chunk-form UDF invocations; a serial
	// fold through a chunk form counts one whole-vector chunk.
	ChunksFolded uint64
	// ScratchHits is the number of decode scratch buffers reused without
	// allocation — the steady-state value equals the number of updates
	// decoded.
	ScratchHits uint64
}

// updScratch is one update slot's reusable decode storage.
type updScratch struct {
	dense []float64
	sv    linalg.SparseVector
}

// Vector is a shared model-parameter or gradient vector.
type Vector struct {
	name      string
	typ       Type
	dim       int
	rank      int
	seg       *dstorm.Segment
	data      []float64
	foldChunk int

	encBuf    []byte
	updateBuf []Update                         // per-gather decoded views
	accept    func(from int, iter uint64) bool // transient GatherIf filter

	acceptBuf []dstorm.Update // per-gather accept-filtered raw updates
	scratch   []updScratch    // per-slot decode buffers, reused across gathers
	errBuf    []error         // per-slot decode outcomes
	foldBuf   []float64       // dim-length fold accumulator, split per chunk
	perf      GatherPerf

	// Bucketing state (nil unless Options.BucketBytes > 0; see bucket.go).
	bucket    *bucketState
	scatterID uint64       // logical scatter counter stamped into fragments
	fragTasks []fragTask   // per-gather planned fragment decodes
	readyAsm  []readyUpd   // per-gather completed assemblies, in fold order
	doneAsm   []*bucketAsm // assemblies to recycle after the fold

	// Compression state (nil unless Options.Compress names a codec; see
	// compress.go).
	comp    *compState
	peerBuf []int // reusable single-destination slice for per-peer sends
}

// readyUpd is one completed logical update awaiting the fold.
type readyUpd struct {
	from int
	a    *bucketAsm
}

// Create collectively creates a Vector named name over the node's cluster.
// Like dstorm segment creation, every rank in the graph must call Create
// with identical parameters; the call blocks until all have.
func Create(node *dstorm.Node, name string, typ Type, dim int, graph *dataflow.Graph, opts Options) (*Vector, error) {
	if dim <= 0 {
		return nil, fmt.Errorf("vol: dimension must be positive, got %d", dim)
	}
	maxNNZ := opts.MaxNNZ
	if maxNNZ <= 0 || maxNNZ > dim {
		maxNNZ = dim
	}
	var objSize int
	switch typ {
	case Dense:
		objSize = 8 * dim
	case Sparse:
		objSize = 4 + 12*maxNNZ // count + (int32 idx, float64 val) pairs
	default:
		return nil, fmt.Errorf("vol: unknown vector type %d", typ)
	}
	var bs *bucketState
	queueLen := opts.QueueLen
	if opts.BucketBytes > 0 {
		if typ != Dense {
			return nil, errors.New("vol: BucketBytes requires a Dense vector (sparse scatters are already deltas)")
		}
		bs = newBucketState(dim, opts.BucketBytes)
		objSize = bucketHeaderSize + 8*bs.coords
		// The dstorm ring is per fragment; multiply the caller's (logical)
		// depth so the ring still holds the same number of whole updates.
		if queueLen == 0 {
			queueLen = dstorm.DefaultQueueLen
		}
		queueLen *= bs.buckets
	}
	var comp *compState
	if opts.Compress.Enabled() {
		if typ != Dense {
			return nil, errors.New("vol: Compress requires a Dense vector (sparse scatters are already deltas)")
		}
		st, err := compress.NewState(opts.Compress, dim)
		if err != nil {
			return nil, err
		}
		comp = &compState{st: st}
		if opts.Compress.Adapt {
			ctl, err := compress.NewController(opts.Compress, node.Cluster().Fabric().Stats(), node.Rank())
			if err != nil {
				return nil, err
			}
			comp.ctl = ctl
		}
		// Ring slots hold frames, not raw floats; size for the codec's
		// worst case (a frame can exceed 8·dim at ratio 1).
		if bs != nil {
			bs.compressed = true
			objSize = bucketHeaderSize + st.MaxFrameBytes(bs.coords)
		} else {
			objSize = st.MaxFrameBytes(dim)
		}
	}
	seg, err := node.CreateSegment("vol/"+name, dstorm.SegmentOptions{
		ObjectSize:          objSize,
		QueueLen:            queueLen,
		Graph:               graph,
		ChunkSize:           opts.ChunkSize,
		SkipCreationBarrier: opts.SkipCreationBarrier,
	})
	if err != nil {
		return nil, err
	}
	return &Vector{
		name:      name,
		typ:       typ,
		dim:       dim,
		rank:      node.Rank(),
		seg:       seg,
		data:      make([]float64, dim),
		foldChunk: opts.FoldChunk,
		encBuf:    make([]byte, objSize),
		bucket:    bs,
		comp:      comp,
	}, nil
}

// Name returns the vector's name.
func (v *Vector) Name() string { return v.name }

// Type returns the wire representation.
func (v *Vector) Type() Type { return v.typ }

// Dim returns the vector length.
func (v *Vector) Dim() int { return v.dim }

// Data returns the local value. The slice is the vector's backing store:
// the training loop reads and writes it directly (this is the "shared
// memory" programming model — no copies between the model and the
// communication layer).
func (v *Vector) Data() []float64 { return v.data }

// AsMatrix views the local value as a rows×cols matrix sharing storage.
// rows*cols must equal Dim. Neural-network layers and MF factor matrices
// use this to train directly inside the scatter buffer.
func (v *Vector) AsMatrix(rows, cols int) *linalg.Matrix {
	return linalg.WrapMatrix(rows, cols, v.data)
}

// Segment exposes the underlying dstorm segment for advanced control
// (staleness peeks, peer removal on failure).
func (v *Vector) Segment() *dstorm.Segment { return v.seg }

// SetIteration stamps subsequent scatters with the given iteration count.
func (v *Vector) SetIteration(iter uint64) { v.seg.SetIteration(iter) }

// Scatter serializes the local value and pushes it to all dataflow peers,
// returning the peers whose writes failed. On a bucketed vector the value
// goes out as Buckets() fragments back to back; with the send pipeline
// enabled the fragments drain in the background while the trainer moves on.
func (v *Vector) Scatter(iter uint64) ([]int, error) {
	if v.comp != nil {
		return v.scatterCompressed(nil, iter)
	}
	if v.bucket != nil {
		return v.scatterBuckets(nil, iter)
	}
	payload, err := v.encode(v.data)
	if err != nil {
		return nil, err
	}
	return v.seg.Scatter(payload, iter)
}

// ScatterTo pushes the local value to a subset of the dataflow peers,
// giving per-call dataflow control (paper Table 1: scatter takes an
// optional dataflow argument).
func (v *Vector) ScatterTo(peers []int, iter uint64) ([]int, error) {
	if v.comp != nil {
		return v.scatterCompressed(peers, iter)
	}
	if v.bucket != nil {
		return v.scatterBuckets(peers, iter)
	}
	payload, err := v.encode(v.data)
	if err != nil {
		return nil, err
	}
	return v.seg.ScatterTo(peers, payload, iter)
}

// ScatterSparse pushes an explicit sparse update (for example, only the
// coordinates touched by the last mini-batch) instead of the full local
// value. The vector must have been created with the Sparse type.
func (v *Vector) ScatterSparse(update *linalg.SparseVector, iter uint64) ([]int, error) {
	if v.typ != Sparse {
		return nil, errors.New("vol: ScatterSparse requires a Sparse vector")
	}
	payload, err := encodeSparse(v.encBuf, update)
	if err != nil {
		return nil, err
	}
	return v.seg.Scatter(payload, iter)
}

// Bucketed reports whether scatters are split into byte-capped fragments.
func (v *Vector) Bucketed() bool { return v.bucket != nil }

// Buckets returns the number of fragments per logical update (1 when the
// vector is not bucketed).
func (v *Vector) Buckets() int {
	if v.bucket == nil {
		return 1
	}
	return v.bucket.buckets
}

// BucketRange returns the coordinate range [lo, hi) of bucket b.
func (v *Vector) BucketRange(b int) (lo, hi int) {
	if v.bucket == nil {
		return 0, v.dim
	}
	return v.bucket.bucketRange(v.dim, b)
}

// ScatterBucket encodes and pushes bucket b of the current local value to
// the given peers (nil = the full send list). Buckets of one logical update
// must go out in order, 0 first: bucket 0 stamps a fresh scatter ID that
// the later buckets share, and receivers rely on per-sender FIFO delivery
// for reassembly. Callers composing their own overlap loop (compute bucket
// b+1 while bucket b is in flight) use this; everyone else calls Scatter or
// ScatterBucketed.
func (v *Vector) ScatterBucket(b int, peers []int, iter uint64) ([]int, error) {
	if v.bucket == nil {
		return nil, errors.New("vol: ScatterBucket requires a bucketed vector (Options.BucketBytes)")
	}
	if v.comp != nil {
		return nil, errors.New("vol: ScatterBucket is unavailable on a compressed vector (error-feedback planning is whole-update); use Scatter or ScatterBucketed")
	}
	if b < 0 || b >= v.bucket.buckets {
		return nil, fmt.Errorf("vol: bucket %d out of range [0,%d)", b, v.bucket.buckets)
	}
	if b == 0 {
		v.scatterID++
	}
	lo, hi := v.bucket.bucketRange(v.dim, b)
	payload := encodeFragment(v.encBuf, v.scatterID, lo, v.data[lo:hi], v.bucket.buckets)
	v.bucket.perf.FragmentsSent++
	if peers == nil {
		return v.seg.Scatter(payload, iter)
	}
	//maltlint:allow bufretain -- exclusive branch with the Scatter above (the return separates them), and Segment encodes payload into its own buffer synchronously before enqueue
	return v.seg.ScatterTo(peers, payload, iter)
}

// ScatterBucketed interleaves gradient production with communication: for
// each bucket it first invokes compute over that bucket's coordinate range
// (the trainer fills v.Data()[lo:hi]) and then pushes the fragment, so
// bucket b is on the wire — drained by the send pipeline's workers — while
// compute produces bucket b+1. The classic DDP overlap. On an unbucketed
// vector it degenerates to compute(0, Dim) followed by a whole Scatter.
func (v *Vector) ScatterBucketed(iter uint64, compute func(lo, hi int)) ([]int, error) {
	if v.bucket == nil || v.comp != nil {
		// A compressed update is planned whole (the residual-corrected
		// top-k selection needs every coordinate), so per-bucket
		// compute/send interleaving is impossible: run compute to
		// completion, then scatter — still fragmented on the wire when
		// bucketed, so the send pipeline drains frames in the background.
		if compute != nil {
			if v.bucket == nil {
				compute(0, v.dim)
			} else {
				for b := 0; b < v.bucket.buckets; b++ {
					lo, hi := v.bucket.bucketRange(v.dim, b)
					compute(lo, hi)
				}
			}
		}
		return v.Scatter(iter)
	}
	var failed []int
	for b := 0; b < v.bucket.buckets; b++ {
		lo, hi := v.bucket.bucketRange(v.dim, b)
		if compute != nil {
			compute(lo, hi)
		}
		f, err := v.ScatterBucket(b, nil, iter)
		if err != nil {
			return failed, err
		}
		failed = mergeFailed(failed, f)
	}
	return failed, nil
}

// scatterBuckets pushes the whole local value as fragments (Scatter and
// ScatterTo on a bucketed vector).
func (v *Vector) scatterBuckets(peers []int, iter uint64) ([]int, error) {
	var failed []int
	for b := 0; b < v.bucket.buckets; b++ {
		f, err := v.ScatterBucket(b, peers, iter)
		if err != nil {
			return failed, err
		}
		failed = mergeFailed(failed, f)
	}
	return failed, nil
}

// mergeFailed unions per-fragment failed-peer lists without duplicates.
func mergeFailed(acc, more []int) []int {
	for _, p := range more {
		dup := false
		for _, q := range acc {
			if q == p {
				dup = true
				break
			}
		}
		if !dup {
			acc = append(acc, p)
		}
	}
	return acc
}

// BucketPerf returns the bucketing engine's cumulative counters (zero value
// when the vector is not bucketed).
func (v *Vector) BucketPerf() BucketPerf {
	if v.bucket == nil {
		return BucketPerf{}
	}
	return v.bucket.perf
}

// Gather folds all newly arrived peer updates into the local value with the
// given UDF (atomic snapshots; never torn).
func (v *Vector) Gather(udf UDF) (GatherStats, error) {
	return v.gather(udf, dstorm.GatherAllNew, false)
}

// GatherIf folds only the updates for which accept returns true; rejected
// updates are consumed and dropped. Staleness policies (the paper's ASP
// configuration skips merging updates from stragglers) pass an iteration
// filter here. GatherStats.Updates counts only accepted updates.
func (v *Vector) GatherIf(udf UDF, accept func(from int, iter uint64) bool) (GatherStats, error) {
	v.accept = accept
	defer func() { v.accept = nil }()
	return v.gather(udf, dstorm.GatherAllNew, false)
}

// GatherLatest folds only the freshest update per peer.
func (v *Vector) GatherLatest(udf UDF) (GatherStats, error) {
	return v.gather(udf, dstorm.GatherLatest, false)
}

// GatherWeak folds updates without torn-read protection; GatherStats.Torn
// counts how many folded payloads were observed mid-write. Exists to
// quantify the consistency trade-off of §3.2.
func (v *Vector) GatherWeak(udf UDF) (GatherStats, error) {
	return v.gather(udf, dstorm.GatherAllNew, true)
}

// gather is the receive half of the parallel gather engine. It runs in
// three stages: (1) accept-filter the raw updates serially (the GatherIf
// callback is caller-owned state) and assign each survivor a reusable
// decode-scratch slot; (2) decode — fanned across the node's gather pool
// when one is enabled, serial otherwise; (3) assemble the decoded views in
// arrival order and fold them, chunked across the coordinate axis when the
// UDF has a registered chunk form. Stage ordering keeps the observable
// behaviour (update order, error choice, stats) identical to the serial
// path at any worker count.
func (v *Vector) gather(udf UDF, mode dstorm.GatherMode, weak bool) (GatherStats, error) {
	if v.bucket != nil {
		return v.gatherBucketed(udf, mode, weak)
	}
	var (
		ups []dstorm.Update
		err error
	)
	if weak {
		ups, err = v.seg.GatherWeak(mode)
	} else {
		ups, err = v.seg.Gather(mode)
	}
	if err != nil {
		return GatherStats{}, err
	}
	stats := GatherStats{}
	v.updateBuf = v.updateBuf[:0]

	// Stage 1: accept filter + scratch slot assignment.
	acc := v.acceptBuf[:0]
	for _, u := range ups {
		if v.accept != nil && !v.accept(u.From, u.Iter) {
			continue
		}
		acc = append(acc, u)
	}
	v.acceptBuf = acc
	for len(v.scratch) < len(acc) {
		v.scratch = append(v.scratch, updScratch{})
	}
	for len(v.errBuf) < len(acc) {
		v.errBuf = append(v.errBuf, nil)
	}
	for i := range acc {
		if len(v.scratch[i].dense) == v.dim {
			v.perf.ScratchHits++
		} else {
			v.scratch[i].dense = make([]float64, v.dim)
		}
	}

	// Stage 2: decode. Slots are disjoint, so decodes are independent.
	pool := v.seg.Node().GatherPool()
	if pool != nil && len(acc) > 1 {
		g := pool.NewGroup()
		for i := range acc {
			i := i
			g.Go(func() { v.errBuf[i] = v.decodeInto(&v.scratch[i], acc[i].Data) })
			v.perf.DecodeTasks++
		}
		g.Wait()
	} else {
		for i := range acc {
			v.errBuf[i] = v.decodeInto(&v.scratch[i], acc[i].Data)
		}
	}

	// Stage 3: assemble in arrival order, then fold.
	for i, u := range acc {
		if derr := v.errBuf[i]; derr != nil {
			if weak && u.Torn {
				stats.Torn++
				continue // torn payloads may be undecodable; drop
			}
			return stats, derr
		}
		v.noteUpdate(&stats, u)
		upd := Update{From: u.From, Iter: u.Iter, Data: v.scratch[i].dense}
		if v.typ == Sparse {
			upd.Sparse = &v.scratch[i].sv
		}
		v.updateBuf = append(v.updateBuf, upd)
	}
	if udf != nil {
		v.fold(udf, pool)
	}
	if weak {
		for _, u := range ups {
			if u.Torn {
				stats.Torn++
			}
		}
	}
	return stats, nil
}

// gatherBucketed is the receive half for bucketed vectors: fragments are
// routed to per-sender assemblies, decoded (fanned across the gather pool —
// fragment ranges are disjoint, so decodes into one assembly are
// independent), and only *complete* logical updates are folded, in the same
// (sender rank, scatter) order the serial path would use — so the fold
// input multiset and order, and therefore the float result bit for bit,
// match the unbucketed path. Incomplete assemblies persist across gathers
// until their fragments arrive or a newer scatter evicts them; they are
// never folded partially.
func (v *Vector) gatherBucketed(udf UDF, mode dstorm.GatherMode, weak bool) (GatherStats, error) {
	// Always drain everything at the dstorm layer: one logical update spans
	// many ring slots, so a dstorm-level GatherLatest would keep one
	// *fragment* per sender, not one update. Latest semantics are applied
	// after reassembly instead.
	var (
		ups []dstorm.Update
		err error
	)
	if weak {
		ups, err = v.seg.GatherWeak(dstorm.GatherAllNew)
	} else {
		ups, err = v.seg.Gather(dstorm.GatherAllNew)
	}
	if err != nil {
		return GatherStats{}, err
	}
	stats := GatherStats{}
	v.updateBuf = v.updateBuf[:0]
	v.fragTasks = v.fragTasks[:0]
	v.readyAsm = v.readyAsm[:0]

	// Stage 1 (serial): route fragments to assemblies in arrival order
	// (sender rank asc, then sequence asc — the dstorm drain order). The
	// GatherIf filter runs per fragment; all fragments of one update carry
	// the same sender and iteration stamp, so the accept decision is
	// consistent across an update. A completion is recorded the moment a
	// sender's last fragment lands, which keeps completions grouped by
	// sender and ascending in scatter ID — the serial fold order.
	for _, u := range ups {
		if v.accept != nil && !v.accept(u.From, u.Iter) {
			continue
		}
		h, herr := v.bucket.decodeFragHeader(v.dim, u.Data)
		if herr != nil {
			if weak && u.Torn {
				continue // torn fragments may be undecodable; counted below
			}
			return stats, herr
		}
		if t := v.bucket.planFragment(v.dim, u.From, u.Iter, h, u.Data); t != nil {
			if v.comp != nil {
				// Compressed fragments decode here in stage 1, not on the
				// pool: the frame decoder can fail (torn or corrupt
				// frames) and only this serial stage has error handling.
				dst := t.asm.data[t.h.lo : t.h.lo+t.h.count]
				if derr := compress.Decode(dst, t.h.lo, t.payload[bucketHeaderSize:]); derr != nil {
					// Roll the deposit back so a retried fragment can
					// still land in this assembly.
					t.asm.seen[t.h.lo/v.bucket.coords] = false
					t.asm.got--
					if weak && u.Torn {
						continue
					}
					return stats, derr
				}
			} else {
				v.fragTasks = append(v.fragTasks, *t)
			}
			if a := v.bucket.completeAsm(u.From); a != nil {
				v.readyAsm = append(v.readyAsm, readyUpd{from: u.From, a: a})
			}
		}
	}

	ready := v.readyAsm
	if mode == dstorm.GatherLatest {
		// Freshest complete update per sender. readyAsm is sender-grouped
		// with ascending scatter IDs, so the last entry of each group wins;
		// superseded assemblies skip the fold and are recycled below.
		kept := ready[:0]
		for i, r := range ready {
			if i+1 < len(ready) && ready[i+1].from == r.from {
				v.doneAsm = append(v.doneAsm, r.a)
				continue
			}
			kept = append(kept, r)
		}
		ready = kept
	}

	// Stage 2: decode fragments into their assemblies.
	pool := v.seg.Node().GatherPool()
	if pool != nil && len(v.fragTasks) > 1 {
		g := pool.NewGroup()
		for i := range v.fragTasks {
			t := &v.fragTasks[i]
			g.Go(func() { decodeFragInto(t.asm.data, t.h, t.payload) })
			v.perf.DecodeTasks++
		}
		g.Wait()
	} else {
		for i := range v.fragTasks {
			t := &v.fragTasks[i]
			decodeFragInto(t.asm.data, t.h, t.payload)
		}
	}

	// Stage 3: fold the complete updates.
	for _, r := range ready {
		v.noteUpdate(&stats, dstorm.Update{From: r.from, Iter: r.a.iter})
		v.updateBuf = append(v.updateBuf, Update{From: r.from, Iter: r.a.iter, Data: r.a.data})
		v.doneAsm = append(v.doneAsm, r.a)
	}
	if udf != nil {
		v.fold(udf, pool)
	}
	for _, a := range v.doneAsm {
		v.bucket.releaseAsm(a)
	}
	v.doneAsm = v.doneAsm[:0]
	for _, a := range v.bucket.retired {
		v.bucket.releaseAsm(a)
	}
	v.bucket.retired = v.bucket.retired[:0]
	if weak {
		for _, u := range ups {
			if u.Torn {
				stats.Torn++
			}
		}
	}
	return stats, nil
}

// decodeInto decodes one raw payload into an update slot's scratch. Sparse
// updates are densified so every UDF sees a uniform dense view.
func (v *Vector) decodeInto(s *updScratch, payload []byte) error {
	if v.comp != nil {
		return compress.Decode(s.dense, 0, payload)
	}
	switch v.typ {
	case Sparse:
		if err := decodeSparseInto(&s.sv, payload); err != nil {
			return err
		}
		linalg.Zero(s.dense)
		s.sv.AxpyDense(1, s.dense)
		return nil
	default:
		return decodeDenseInto(s.dense, payload)
	}
}

// fold applies the UDF, chunked across the coordinate axis when a chunk
// form is registered and a pool is available. Chunk boundaries never split
// a coordinate, so per-coordinate fold order — and therefore the float
// result — is bitwise identical to the serial fold.
func (v *Vector) fold(udf UDF, pool *par.Pool) {
	chunkFn := chunkFormOf(udf)
	if chunkFn == nil {
		udf(Fold{Self: v.rank, Local: v.data, Updates: v.updateBuf})
		return
	}
	if v.foldBuf == nil {
		v.foldBuf = make([]float64, v.dim)
	}
	cs := v.foldChunk
	if cs <= 0 {
		cs = DefaultFoldChunk
	}
	if pool == nil || v.dim <= cs {
		chunkFn(Chunk{Self: v.rank, Lo: 0, Hi: v.dim, Local: v.data, Updates: v.updateBuf, Acc: v.foldBuf})
		v.perf.ChunksFolded++
		return
	}
	g := pool.NewGroup()
	for lo := 0; lo < v.dim; lo += cs {
		hi := lo + cs
		if hi > v.dim {
			hi = v.dim
		}
		c := Chunk{Self: v.rank, Lo: lo, Hi: hi, Local: v.data, Updates: v.updateBuf, Acc: v.foldBuf[lo:hi]}
		g.Go(func() { chunkFn(c) })
		v.perf.ChunksFolded++
	}
	g.Wait()
}

// GatherPerf returns the engine's cumulative work counters.
func (v *Vector) GatherPerf() GatherPerf { return v.perf }

func (v *Vector) noteUpdate(stats *GatherStats, u dstorm.Update) {
	if stats.Updates == 0 || u.Iter < stats.MinIter {
		stats.MinIter = u.Iter
	}
	if u.Iter > stats.MaxIter {
		stats.MaxIter = u.Iter
	}
	stats.Updates++
}

// PeerIters reports the latest iteration stamp seen from each inbound peer
// without consuming updates (staleness policies poll this).
func (v *Vector) PeerIters() map[int]uint64 { return v.seg.PeerIters() }

// Barrier blocks until all live ranks reach the vector's barrier — the
// paper's g.barrier() for bulk-synchronous training. The owning node's send
// pipeline is drained first (see dstorm.Segment.Barrier).
func (v *Vector) Barrier() error { return v.seg.Barrier() }

// Drain blocks until every scatter accepted by the owning node's coalescing
// pipeline has been delivered or exhausted its retries. A no-op when the
// pipeline is disabled. SSP calls this before staleness stalls.
func (v *Vector) Drain() error { return v.seg.Node().Drain() }

// Flush posts the pipeline's partial batches without waiting for delivery.
func (v *Vector) Flush() { v.seg.Node().Flush() }

// RemovePeer drops a failed rank from the vector's send/receive lists. On a
// compressed vector the peer's error-feedback residual is evicted too: the
// deferred mass was owed to an incarnation that no longer exists.
func (v *Vector) RemovePeer(rank int) {
	v.seg.RemovePeer(rank)
	v.dropCompressPeer(rank)
}

// RestorePeer re-admits a rejoined rank to the vector's send/receive lists
// (at its original dataflow position, with a fresh receive queue). The
// inverse of RemovePeer; idempotent. Compression residuals for the rank are
// evicted (again — RemovePeer already did) so the rejoined incarnation
// starts from a clean slate: it received a state snapshot, not our backlog,
// and replaying pre-death residual mass would poison it.
func (v *Vector) RestorePeer(rank int) {
	v.seg.RestorePeer(rank)
	v.dropCompressPeer(rank)
}

// Close releases the underlying segment.
func (v *Vector) Close() error { return v.seg.Close() }

// SegStats returns the receive-side counters of the underlying segment:
// how many updates gathers consumed and how many were lost to ring
// overwrites before consumption.
func (v *Vector) SegStats() dstorm.Stats { return v.seg.Stats() }
