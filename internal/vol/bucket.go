package vol

import (
	"encoding/binary"
	"fmt"
	"math"
)

// Gradient bucketing (comm/compute overlap, DDP-style).
//
// A bucketed Vector splits every scatter into byte-capped coordinate-range
// fragments instead of one monolithic record. Each fragment is an ordinary
// dstorm record, so it rides the existing send machinery — in particular the
// coalescing pipeline, whose background workers put fragment i on the wire
// while the trainer is still producing fragment i+1 (ScatterBucketed) or the
// next batch (plain Scatter). On the receive side, fragments reassemble into
// whole logical updates before folding, so the folded multiset — and
// therefore the float result, bit for bit — is identical to the unbucketed
// path. An update folds exactly once, when its last fragment has arrived;
// an update whose fragments were lost (ring overwrite, exhausted retries)
// folds zero times and is evicted when a newer scatter from the same sender
// completes.
//
// Fragment wire format (Dense vectors only):
//
//	[0:8]   uint64 scatterID — sender's per-vector logical scatter counter
//	[8:12]  uint32 lo        — first coordinate of this fragment
//	[12:16] uint32 count     — float64 coordinates in this fragment
//	[16:20] uint32 buckets   — fragments in this logical update
//	[20:]   count float64s, little-endian
//
// All ranks create the vector with the same BucketBytes (vector creation is
// collective with identical options), so a receiver always knows whether a
// segment carries fragments or monolithic records.

// bucketHeaderSize is scatterID(8) + lo(4) + count(4) + buckets(4).
const bucketHeaderSize = 20

// BucketPerf counts the bucketing engine's work since the vector was
// created. Like GatherPerf it is owned by the vector's goroutine.
type BucketPerf struct {
	// FragmentsSent is the number of bucket fragments scattered.
	FragmentsSent uint64
	// Assembled is the number of complete logical updates reassembled and
	// handed to the fold.
	Assembled uint64
	// Evicted is the number of incomplete assemblies abandoned because a
	// newer scatter from the same sender completed first (fragments lost to
	// ring overwrites or exhausted retries).
	Evicted uint64
	// Duplicates is the number of fragments that re-covered an
	// already-deposited bucket of the same assembly (write retries after a
	// delivered-but-unacknowledged fragment). Duplicates are absorbed: the
	// bucket is counted once and the update still folds exactly once.
	Duplicates uint64
}

// bucketAsm is one in-flight logical update being reassembled from
// fragments. Fragments from one sender arrive in scatter order (per-sender
// delivery is FIFO on every transport), so each sender needs only one
// active assembly.
type bucketAsm struct {
	id   uint64 // scatterID being assembled; 0 = idle
	iter uint64
	got  int
	seen []bool // per bucket index, guards duplicate fragments
	data []float64
}

// bucketState is a bucketed vector's receive-side reassembly state plus the
// sender-side split geometry.
type bucketState struct {
	coords     int                // coordinates per full-size fragment
	buckets    int                // fragments per logical update
	compressed bool               // fragments carry codec frames, not raw floats
	asm        map[int]*bucketAsm // sender rank → active assembly
	free       []*bucketAsm       // recycled assemblies (buffers reused)
	// retired holds assemblies evicted mid-drain. They cannot go straight to
	// free: decode tasks planned before the eviction still alias them, so
	// recycling the buffer within the same gather would race. The gather
	// moves them to free after its fold.
	retired []*bucketAsm
	perf    BucketPerf
}

// newBucketState derives the split geometry: fragments carry at most
// bucketBytes of payload (floored at one coordinate).
func newBucketState(dim, bucketBytes int) *bucketState {
	coords := bucketBytes / 8
	if coords < 1 {
		coords = 1
	}
	if coords > dim {
		coords = dim
	}
	return &bucketState{
		coords:  coords,
		buckets: (dim + coords - 1) / coords,
		asm:     make(map[int]*bucketAsm),
	}
}

// bucketRange returns the coordinate range [lo, hi) of bucket b.
func (bs *bucketState) bucketRange(dim, b int) (lo, hi int) {
	lo = b * bs.coords
	hi = lo + bs.coords
	if hi > dim {
		hi = dim
	}
	return lo, hi
}

// encodeFragment writes one fragment into buf and returns the framed slice.
func encodeFragment(buf []byte, id uint64, lo int, data []float64, buckets int) []byte {
	out := buf[:bucketHeaderSize+8*len(data)]
	binary.LittleEndian.PutUint64(out[0:8], id)
	binary.LittleEndian.PutUint32(out[8:12], uint32(lo))
	binary.LittleEndian.PutUint32(out[12:16], uint32(len(data)))
	binary.LittleEndian.PutUint32(out[16:20], uint32(buckets))
	for i, f := range data {
		binary.LittleEndian.PutUint64(out[bucketHeaderSize+8*i:], math.Float64bits(f))
	}
	return out
}

// fragHeader is a decoded fragment header.
type fragHeader struct {
	id      uint64
	lo      int
	count   int
	buckets int
}

// decodeFragHeader validates a fragment header against the vector geometry.
func (bs *bucketState) decodeFragHeader(dim int, payload []byte) (fragHeader, error) {
	if len(payload) < bucketHeaderSize {
		return fragHeader{}, fmt.Errorf("vol: bucket fragment too short (%d bytes)", len(payload))
	}
	h := fragHeader{
		id:      binary.LittleEndian.Uint64(payload[0:8]),
		lo:      int(binary.LittleEndian.Uint32(payload[8:12])),
		count:   int(binary.LittleEndian.Uint32(payload[12:16])),
		buckets: int(binary.LittleEndian.Uint32(payload[16:20])),
	}
	if h.buckets != bs.buckets || h.lo < 0 || h.count < 1 || h.lo+h.count > dim {
		return fragHeader{}, fmt.Errorf("vol: bucket fragment header out of range (lo=%d count=%d buckets=%d, vector dim=%d buckets=%d)",
			h.lo, h.count, h.buckets, dim, bs.buckets)
	}
	if bs.compressed {
		// Compressed fragments carry a variable-length codec frame; the
		// frame decoder validates its own body exactly. Just require that
		// a frame is present at all.
		if len(payload) == bucketHeaderSize {
			return fragHeader{}, fmt.Errorf("vol: compressed bucket fragment has no frame")
		}
	} else if len(payload) != bucketHeaderSize+8*h.count {
		return fragHeader{}, fmt.Errorf("vol: bucket fragment %d bytes, header says %d coords", len(payload), h.count)
	}
	if h.lo%bs.coords != 0 {
		return fragHeader{}, fmt.Errorf("vol: bucket fragment lo=%d not aligned to bucket size %d", h.lo, bs.coords)
	}
	return h, nil
}

// decodeFragInto decodes a validated fragment's floats into the assembly
// buffer at the fragment's coordinate range. Disjoint ranges per fragment,
// so concurrent decodes into one assembly are safe.
func decodeFragInto(dst []float64, h fragHeader, payload []byte) {
	out := dst[h.lo : h.lo+h.count]
	for i := range out {
		out[i] = math.Float64frombits(binary.LittleEndian.Uint64(payload[bucketHeaderSize+8*i:]))
	}
}

// grabAsm returns a recycled or fresh assembly for one logical update.
func (bs *bucketState) grabAsm(dim int) *bucketAsm {
	if n := len(bs.free); n > 0 {
		a := bs.free[n-1]
		bs.free = bs.free[:n-1]
		a.id, a.iter, a.got = 0, 0, 0
		for i := range a.seen {
			a.seen[i] = false
		}
		return a
	}
	return &bucketAsm{seen: make([]bool, bs.buckets), data: make([]float64, dim)}
}

// releaseAsm recycles an assembly's buffers.
func (bs *bucketState) releaseAsm(a *bucketAsm) {
	bs.free = append(bs.free, a)
}

// fragTask is one decode planned by planFragment, executed serially or on
// the gather pool (ranges are disjoint across tasks, see decodeFragInto).
type fragTask struct {
	asm     *bucketAsm
	h       fragHeader
	payload []byte
}

// planFragment routes one raw fragment to its sender's assembly, evicting a
// stale incomplete assembly when the sender has moved on to a newer
// scatter. It returns the decode task to run, or nil when the fragment is a
// duplicate or out of date. Serial: mutates assembly routing state.
func (bs *bucketState) planFragment(dim, from int, iter uint64, h fragHeader, payload []byte) *fragTask {
	a := bs.asm[from]
	if a != nil && h.id < a.id {
		// A fragment of a scatter older than the one being assembled: its
		// siblings were lapped in the ring. It can never complete.
		bs.perf.Evicted++
		return nil
	}
	if a != nil && h.id > a.id {
		// Sender moved on; the current assembly's missing fragments were
		// overwritten and will never arrive.
		if a.got > 0 {
			bs.perf.Evicted++
		}
		bs.retired = append(bs.retired, a)
		a = nil
	}
	if a == nil {
		a = bs.grabAsm(dim)
		a.id, a.iter = h.id, iter
		bs.asm[from] = a
	}
	idx := h.lo / bs.coords
	if a.seen[idx] {
		bs.perf.Duplicates++
		return nil
	}
	a.seen[idx] = true
	a.got++
	return &fragTask{asm: a, h: h, payload: payload}
}

// completeAsm detaches the sender's assembly if every fragment has landed,
// returning it (caller folds then releases) or nil.
func (bs *bucketState) completeAsm(from int) *bucketAsm {
	a := bs.asm[from]
	if a == nil || a.got < bs.buckets {
		return nil
	}
	delete(bs.asm, from)
	bs.perf.Assembled++
	return a
}
