package vol

import (
	"math"
	"math/rand"
	"strings"
	"testing"

	"malt/internal/compress"
	"malt/internal/dataflow"
	"malt/internal/dstorm"
	"malt/internal/fabric"
)

// soloNode builds a one-rank cluster node plus its all-to-all graph for
// Create-validation tests.
func soloNode(t *testing.T) (*dstorm.Node, *dataflow.Graph) {
	t.Helper()
	f, err := fabric.New(fabric.Config{Ranks: 1})
	if err != nil {
		t.Fatal(err)
	}
	g, err := dataflow.New(dataflow.All, 1)
	if err != nil {
		t.Fatal(err)
	}
	return dstorm.NewCluster(f).Node(0), g
}

// fillRank gives rank r a deterministic gradient-like value.
func fillRank(v *Vector, r, round int) {
	rng := rand.New(rand.NewSource(int64(r*1000 + round)))
	d := v.Data()
	for i := range d {
		d[i] = rng.NormFloat64()
	}
}

// scatterGatherRound runs one all-to-all scatter + Sum gather for every
// rank and returns each rank's folded value.
func scatterGatherRound(t *testing.T, vecs []*Vector, iter uint64) [][]float64 {
	t.Helper()
	for _, v := range vecs {
		if _, err := v.Scatter(iter); err != nil {
			t.Fatal(err)
		}
	}
	out := make([][]float64, len(vecs))
	for r, v := range vecs {
		if _, err := v.Gather(Sum); err != nil {
			t.Fatal(err)
		}
		out[r] = append([]float64(nil), v.Data()...)
	}
	return out
}

// TestCompressedScatterGather: a compressed all-to-all converges on the
// decoded reconstructions; with codec "none" it is bitwise identical to the
// uncompressed path.
func TestCompressedScatterGather(t *testing.T) {
	const ranks, dim = 3, 64
	plain := newVectors(t, ranks, dim, Dense, Options{})
	comp := newVectors(t, ranks, dim, Dense, Options{Compress: compress.Options{Codec: "none"}})
	for r := 0; r < ranks; r++ {
		fillRank(plain[r], r, 0)
		fillRank(comp[r], r, 0)
	}
	want := scatterGatherRound(t, plain, 1)
	got := scatterGatherRound(t, comp, 1)
	for r := range want {
		for i := range want[r] {
			if math.Float64bits(got[r][i]) != math.Float64bits(want[r][i]) {
				t.Fatalf("rank %d coord %d: none-codec %v != uncompressed %v", r, i, got[r][i], want[r][i])
			}
		}
	}
	p := comp[0].CompressPerf()
	if p.Frames == 0 || p.BytesPre == 0 {
		t.Fatalf("no compression accounting: %+v", p)
	}
	if !comp[0].Compressed() || plain[0].Compressed() {
		t.Fatal("Compressed() flags wrong")
	}
}

// TestCompressedLossyReducesBytes: topk at a tight ratio cuts wire bytes by
// at least ~4x while error feedback keeps multi-round sums close.
func TestCompressedLossyReducesBytes(t *testing.T) {
	const ranks, dim = 2, 512
	vecs := newVectors(t, ranks, dim, Dense, Options{Compress: compress.Options{Codec: "topk", Ratio: 0.125}})
	for round := 0; round < 10; round++ {
		for r, v := range vecs {
			fillRank(v, r, round)
		}
		scatterGatherRound(t, vecs, uint64(round+1))
	}
	p := vecs[0].CompressPerf()
	if p.BytesPost*4 > p.BytesPre {
		t.Fatalf("topk@0.125 achieved only %d→%d bytes", p.BytesPre, p.BytesPost)
	}
	if p.ResidualNormMicro == 0 {
		t.Fatal("lossy codec left no residual — error feedback is not engaged")
	}
}

// TestCompressedBucketedBitwiseInvariance: for a fixed ratio, the folded
// result is bitwise identical across bucket sizes (including unbucketed)
// and gather worker counts — the acceptance-criteria determinism property.
func TestCompressedBucketedBitwiseInvariance(t *testing.T) {
	const ranks, dim = 3, 300
	copts := compress.Options{Codec: "hybrid", Ratio: 0.25}
	run := func(bucketBytes, workers int) [][]float64 {
		vecs := newVectors(t, ranks, dim, Dense, Options{BucketBytes: bucketBytes, Compress: copts})
		if workers > 0 {
			for _, v := range vecs {
				v.Segment().Node().EnableParallelGather(workers)
			}
		}
		var out [][]float64
		for round := 0; round < 3; round++ {
			for r, v := range vecs {
				fillRank(v, r, round)
			}
			out = scatterGatherRound(t, vecs, uint64(round+1))
		}
		return out
	}
	want := run(0, 0)
	for _, cfg := range []struct{ bb, workers int }{{0, 4}, {8 * 50, 0}, {8 * 50, 3}, {8 * 7, 0}, {8 * 300, 2}} {
		got := run(cfg.bb, cfg.workers)
		for r := range want {
			for i := range want[r] {
				if math.Float64bits(got[r][i]) != math.Float64bits(want[r][i]) {
					t.Fatalf("bucketBytes=%d workers=%d rank %d coord %d: %v != %v",
						cfg.bb, cfg.workers, r, i, got[r][i], want[r][i])
				}
			}
		}
	}
}

// TestCompressedPerDestinationResiduals: with a restricted dataflow each
// destination accumulates its own residual — the per-link state is not
// shared.
func TestCompressedPerDestinationResiduals(t *testing.T) {
	const ranks, dim = 3, 40
	vecs := newVectors(t, ranks, dim, Dense, Options{Compress: compress.Options{Codec: "topk", Ratio: 0.1}})
	v := vecs[0]
	fillRank(v, 0, 0)
	// Scatter to peer 1 twice, peer 2 once: residual histories diverge.
	if _, err := v.ScatterTo([]int{1}, 1); err != nil {
		t.Fatal(err)
	}
	fillRank(v, 0, 1)
	if _, err := v.ScatterTo([]int{1}, 2); err != nil {
		t.Fatal(err)
	}
	if _, err := v.ScatterTo([]int{2}, 2); err != nil {
		t.Fatal(err)
	}
	// Drain receivers so the ring does not overflow in later tests.
	for _, u := range vecs[1:] {
		if _, err := u.Gather(nil); err != nil {
			t.Fatal(err)
		}
	}
	st := v.comp.st
	r1, r2 := st.Residual(1), st.Residual(2)
	if r1 == nil || r2 == nil {
		t.Fatal("missing per-destination residuals")
	}
	same := true
	for i := range r1 {
		if math.Float64bits(r1[i]) != math.Float64bits(r2[i]) {
			same = false
			break
		}
	}
	if same {
		t.Fatal("residuals for links with different histories are identical")
	}
}

// TestCompressedPeerEviction: RemovePeer and RestorePeer evict the dead
// peer's residual and adaptive state (no stale-incarnation poisoning).
func TestCompressedPeerEviction(t *testing.T) {
	const ranks, dim = 3, 40
	vecs := newVectors(t, ranks, dim, Dense, Options{Compress: compress.Options{Codec: "topk", Ratio: 0.1, Adapt: true}})
	v := vecs[0]
	fillRank(v, 0, 0)
	if _, err := v.Scatter(1); err != nil {
		t.Fatal(err)
	}
	for _, u := range vecs[1:] {
		if _, err := u.Gather(nil); err != nil {
			t.Fatal(err)
		}
	}
	if v.comp.st.Residual(1) == nil {
		t.Fatal("no residual for peer 1 after scatter")
	}
	v.RemovePeer(1)
	if v.comp.st.Residual(1) != nil {
		t.Fatal("RemovePeer left peer 1's residual")
	}
	v.RestorePeer(1)
	if v.comp.st.Residual(1) != nil {
		t.Fatal("RestorePeer resurrected peer 1's residual")
	}
}

// TestCompressRejectsSparse: compression requires Dense vectors.
func TestCompressRejectsSparse(t *testing.T) {
	node, g := soloNode(t)
	_, err := Create(node, "w", Sparse, 8, g, Options{Compress: compress.Options{Codec: "topk"}})
	if err == nil || !strings.Contains(err.Error(), "Dense") {
		t.Fatalf("Sparse+Compress error = %v", err)
	}
}

// TestCompressRejectsBadOptions: Create surfaces codec validation errors.
func TestCompressRejectsBadOptions(t *testing.T) {
	cases := []compress.Options{
		{Codec: "zstd"},
		{Codec: "topk", Ratio: 2},
		{Codec: "int8", Adapt: true},
	}
	for i, c := range cases {
		node, g := soloNode(t)
		if _, err := Create(node, string(rune('a'+i)), Dense, 8, g, Options{Compress: c}); err == nil {
			t.Errorf("Create accepted %+v", c)
		}
	}
}

// TestCompressedScatterBucketRejected: the manual per-bucket overlap API is
// incompatible with whole-update planning.
func TestCompressedScatterBucketRejected(t *testing.T) {
	vecs := newVectors(t, 2, 64, Dense, Options{BucketBytes: 64, Compress: compress.Options{Codec: "topk"}})
	if _, err := vecs[0].ScatterBucket(0, nil, 1); err == nil {
		t.Fatal("ScatterBucket on a compressed vector should fail")
	}
	// ScatterBucketed still works: compute-all then fragmented scatter.
	if _, err := vecs[0].ScatterBucketed(1, func(lo, hi int) {
		d := vecs[0].Data()
		for i := lo; i < hi; i++ {
			d[i] = float64(i)
		}
	}); err != nil {
		t.Fatal(err)
	}
	if _, err := vecs[1].Gather(Sum); err != nil {
		t.Fatal(err)
	}
}
