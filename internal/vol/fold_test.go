package vol

import (
	"fmt"
	"math"
	"math/rand"
	"sync"
	"testing"
	"time"
)

// foldScenario scatters deterministic pseudo-random data from every rank
// and gathers on rank 0 with the given UDF, returning rank 0's folded
// value. workers == 0 runs the serial engine; otherwise the parallel
// engine with that pool size.
func foldScenario(t *testing.T, typ Type, udf UDF, ranks, dim, workers, foldChunk int, seed int64) []float64 {
	t.Helper()
	vecs := newVectors(t, ranks, dim, typ, Options{FoldChunk: foldChunk})
	for _, v := range vecs {
		defer v.Close()
	}
	if workers > 0 {
		node := vecs[0].Segment().Node()
		node.EnableParallelGather(workers)
		defer node.DisableParallelGather()
	}
	rng := rand.New(rand.NewSource(seed))
	for r, v := range vecs {
		for i := range v.Data() {
			x := rng.NormFloat64()
			if typ == Sparse && rng.Intn(4) != 0 {
				x = 0 // sparsify: ~25% density
			}
			v.Data()[i] = x
		}
		if r == 0 {
			continue // rank 0 only gathers; its local value is the fold base
		}
		if _, err := v.Scatter(uint64(r)); err != nil {
			t.Fatal(err)
		}
	}
	if _, err := vecs[0].Gather(udf); err != nil {
		t.Fatal(err)
	}
	return append([]float64(nil), vecs[0].Data()...)
}

// TestFoldDeterminism is the engine's core property: the parallel fold is
// bitwise identical to the serial fold for every chunk-form UDF, at any
// worker count and chunk size, for both wire formats. Chunking the
// coordinate axis preserves each coordinate's addition order, so not even
// the last ulp may differ.
func TestFoldDeterminism(t *testing.T) {
	const (
		ranks = 5 // 4 senders + the gathering rank
		dim   = 501
	)
	udfs := []struct {
		name string
		udf  UDF
	}{
		{"Average", Average},
		{"AverageIncoming", AverageIncoming},
		{"Sum", Sum},
		{"ReplaceCoords", ReplaceCoords},
		{"Replace", Replace},
	}
	for _, typ := range []Type{Dense, Sparse} {
		for _, u := range udfs {
			t.Run(fmt.Sprintf("%v/%s", typ, u.name), func(t *testing.T) {
				seed := int64(7)
				serial := foldScenario(t, typ, u.udf, ranks, dim, 0, 0, seed)
				for _, workers := range []int{1, 2, 8} {
					for _, chunk := range []int{1, 8, 100, dim, 2 * dim} {
						got := foldScenario(t, typ, u.udf, ranks, dim, workers, chunk, seed)
						for i := range serial {
							if math.Float64bits(got[i]) != math.Float64bits(serial[i]) {
								t.Fatalf("workers=%d chunk=%d: coord %d = %x, serial %x",
									workers, chunk, i, math.Float64bits(got[i]), math.Float64bits(serial[i]))
							}
						}
					}
				}
			})
		}
	}
}

// TestParallelGatherUnderConcurrentScatter races the parallel gather engine
// against live scatters from every peer; run with -race this checks the
// pool fan-out (ring drains, decode scratch, chunk folds) is properly
// synchronized against seqlock writers. Folded values are garbage mixes of
// rounds — only memory safety and loss accounting are asserted.
func TestParallelGatherUnderConcurrentScatter(t *testing.T) {
	const (
		ranks = 4
		dim   = 2048
	)
	vecs := newVectors(t, ranks, dim, Dense, Options{QueueLen: 4, FoldChunk: 128})
	for _, v := range vecs {
		defer v.Close()
	}
	node := vecs[0].Segment().Node()
	node.EnableParallelGather(4)
	defer node.DisableParallelGather()

	stop := make(chan struct{})
	var wg sync.WaitGroup
	for r := 1; r < ranks; r++ {
		wg.Add(1)
		go func(r int) {
			defer wg.Done()
			for iter := uint64(1); ; iter++ {
				select {
				case <-stop:
					return
				default:
				}
				for i := range vecs[r].Data() {
					vecs[r].Data()[i] = float64(r)*1e6 + float64(iter)
				}
				if _, err := vecs[r].Scatter(iter); err != nil {
					t.Error(err)
					return
				}
			}
		}(r)
	}
	deadline := time.After(200 * time.Millisecond)
	gathers := 0
	for done := false; !done; {
		select {
		case <-deadline:
			done = true
		default:
			if _, err := vecs[0].Gather(Average); err != nil {
				t.Fatal(err)
			}
			gathers++
		}
	}
	close(stop)
	wg.Wait()
	if gathers == 0 {
		t.Fatal("no gathers completed")
	}
}

// TestGatherScratchSteadyState: after the first gather sized the scratch
// pools, subsequent gathers reuse every decode buffer (ScratchHits grows by
// exactly the update count) — the allocation-free steady state the engine
// promises.
func TestGatherScratchSteadyState(t *testing.T) {
	for _, typ := range []Type{Dense, Sparse} {
		t.Run(typ.String(), func(t *testing.T) {
			const ranks, dim = 3, 256
			vecs := newVectors(t, ranks, dim, typ, Options{})
			for _, v := range vecs {
				defer v.Close()
			}
			round := func(iter uint64) {
				for r := 1; r < ranks; r++ {
					for i := range vecs[r].Data() {
						vecs[r].Data()[i] = float64(i%7) * float64(iter)
					}
					if _, err := vecs[r].Scatter(iter); err != nil {
						t.Fatal(err)
					}
				}
				if _, err := vecs[0].Gather(Average); err != nil {
					t.Fatal(err)
				}
			}
			round(1) // sizes the scratch slots
			before := vecs[0].GatherPerf()
			const rounds = 10
			for i := uint64(2); i < 2+rounds; i++ {
				round(i)
			}
			after := vecs[0].GatherPerf()
			wantHits := uint64(rounds * (ranks - 1))
			if got := after.ScratchHits - before.ScratchHits; got != wantHits {
				t.Fatalf("ScratchHits grew by %d over %d rounds, want %d (a miss means a steady-state allocation)",
					got, rounds, wantHits)
			}
		})
	}
}
