package vol

import (
	"math"
	"math/rand"
	"sync"
	"testing"
	"testing/quick"
	"time"

	"malt/internal/dataflow"
	"malt/internal/dstorm"
	"malt/internal/fabric"
	"malt/internal/ml/linalg"
)

func newVectors(t *testing.T, ranks, dim int, typ Type, opts Options) []*Vector {
	t.Helper()
	f, err := fabric.New(fabric.Config{Ranks: ranks})
	if err != nil {
		t.Fatal(err)
	}
	c := dstorm.NewCluster(f)
	g, err := dataflow.New(dataflow.All, ranks)
	if err != nil {
		t.Fatal(err)
	}
	vecs := make([]*Vector, ranks)
	errs := make([]error, ranks)
	var wg sync.WaitGroup
	for r := 0; r < ranks; r++ {
		wg.Add(1)
		go func(r int) {
			defer wg.Done()
			vecs[r], errs[r] = Create(c.Node(r), "w", typ, dim, g, opts)
		}(r)
	}
	wg.Wait()
	for r, err := range errs {
		if err != nil {
			t.Fatalf("rank %d: %v", r, err)
		}
	}
	return vecs
}

func TestDenseScatterGatherAverage(t *testing.T) {
	vecs := newVectors(t, 3, 4, Dense, Options{})
	for r, v := range vecs {
		for i := range v.Data() {
			v.Data()[i] = float64(r + 1) // rank r holds r+1 everywhere
		}
		if _, err := v.Scatter(1); err != nil {
			t.Fatal(err)
		}
	}
	// Rank 0 folds updates {2,3} with local 1 → mean 2.
	st, err := vecs[0].Gather(Average)
	if err != nil {
		t.Fatal(err)
	}
	if st.Updates != 2 {
		t.Fatalf("Updates = %d", st.Updates)
	}
	for i, got := range vecs[0].Data() {
		if math.Abs(got-2) > 1e-12 {
			t.Fatalf("data[%d] = %v, want 2", i, got)
		}
	}
}

func TestGatherUDFs(t *testing.T) {
	mk := func() Fold {
		return Fold{
			Self:  0,
			Local: []float64{10, 20},
			Updates: []Update{
				{From: 1, Iter: 1, Data: []float64{2, 4}},
				{From: 2, Iter: 2, Data: []float64{4, 8}},
			},
		}
	}
	f := mk()
	Average(f)
	if math.Abs(f.Local[0]-16.0/3) > 1e-12 || math.Abs(f.Local[1]-32.0/3) > 1e-12 {
		t.Fatalf("Average = %v", f.Local)
	}
	f = mk()
	AverageIncoming(f)
	if f.Local[0] != 3 || f.Local[1] != 6 {
		t.Fatalf("AverageIncoming = %v", f.Local)
	}
	f = mk()
	Sum(f)
	if f.Local[0] != 16 || f.Local[1] != 32 {
		t.Fatalf("Sum = %v", f.Local)
	}
	f = mk()
	Replace(f)
	if f.Local[0] != 4 || f.Local[1] != 8 {
		t.Fatalf("Replace = %v", f.Local)
	}
	// Replace picks the freshest by iteration stamp, not arrival order.
	f = mk()
	f.Updates[0].Iter = 9
	Replace(f)
	if f.Local[0] != 2 || f.Local[1] != 4 {
		t.Fatalf("Replace by iter = %v", f.Local)
	}
	// No updates: every UDF must leave local unchanged.
	for name, udf := range map[string]UDF{"Average": Average, "AverageIncoming": AverageIncoming, "Sum": Sum, "Replace": Replace} {
		local := []float64{7, 8}
		udf(Fold{Self: 0, Local: local})
		if local[0] != 7 || local[1] != 8 {
			t.Fatalf("%s with no updates modified local: %v", name, local)
		}
	}
}

func TestAverageCanonicalOrder(t *testing.T) {
	// Three ranks hold values a, b, c. Each averages the other two with its
	// own: the results must be bit-identical across ranks because Average
	// folds in global rank order.
	vals := [][]float64{
		{0.1, 1e16, -3},
		{0.3, -1e16, 7},
		{0.7, 1, 11},
	}
	results := make([][]float64, 3)
	for self := 0; self < 3; self++ {
		local := append([]float64(nil), vals[self]...)
		var ups []Update
		for r := 0; r < 3; r++ {
			if r != self {
				ups = append(ups, Update{From: r, Data: vals[r]})
			}
		}
		Average(Fold{Self: self, Local: local, Updates: ups})
		results[self] = local
	}
	for r := 1; r < 3; r++ {
		for i := range results[0] {
			if results[0][i] != results[r][i] {
				t.Fatalf("rank %d averaged differently at %d: %v vs %v",
					r, i, results[0][i], results[r][i])
			}
		}
	}
}

func TestSparseScatterGather(t *testing.T) {
	vecs := newVectors(t, 2, 8, Sparse, Options{})
	d := vecs[0].Data()
	d[1] = 2.5
	d[6] = -1
	if _, err := vecs[0].Scatter(1); err != nil {
		t.Fatal(err)
	}
	st, err := vecs[1].Gather(Sum)
	if err != nil {
		t.Fatal(err)
	}
	if st.Updates != 1 {
		t.Fatalf("Updates = %d", st.Updates)
	}
	got := vecs[1].Data()
	if got[1] != 2.5 || got[6] != -1 || got[0] != 0 {
		t.Fatalf("sparse round trip = %v", got)
	}
}

func TestScatterSparseExplicitUpdate(t *testing.T) {
	vecs := newVectors(t, 2, 8, Sparse, Options{})
	up := linalg.FromMap(map[int32]float64{3: 1.5})
	if _, err := vecs[0].ScatterSparse(up, 1); err != nil {
		t.Fatal(err)
	}
	if _, err := vecs[1].Gather(Sum); err != nil {
		t.Fatal(err)
	}
	if vecs[1].Data()[3] != 1.5 {
		t.Fatalf("data = %v", vecs[1].Data())
	}
	// Dense vectors reject ScatterSparse.
	dv := newVectors(t, 2, 4, Dense, Options{})
	if _, err := dv[0].ScatterSparse(up, 1); err == nil {
		t.Fatal("ScatterSparse on dense vector should fail")
	}
}

func TestSparseMaxNNZEnforced(t *testing.T) {
	vecs := newVectors(t, 2, 100, Sparse, Options{MaxNNZ: 2})
	up := linalg.FromMap(map[int32]float64{1: 1, 2: 2, 3: 3})
	if _, err := vecs[0].ScatterSparse(up, 1); err == nil {
		t.Fatal("update exceeding MaxNNZ should fail")
	}
	small := linalg.FromMap(map[int32]float64{1: 1})
	if _, err := vecs[0].ScatterSparse(small, 1); err != nil {
		t.Fatal(err)
	}
}

func TestGatherStatsIterRange(t *testing.T) {
	vecs := newVectors(t, 3, 2, Dense, Options{QueueLen: 8})
	if _, err := vecs[1].Scatter(5); err != nil {
		t.Fatal(err)
	}
	if _, err := vecs[2].Scatter(9); err != nil {
		t.Fatal(err)
	}
	st, err := vecs[0].Gather(Average)
	if err != nil {
		t.Fatal(err)
	}
	if st.MinIter != 5 || st.MaxIter != 9 {
		t.Fatalf("iter range = [%d,%d], want [5,9]", st.MinIter, st.MaxIter)
	}
}

func TestAsMatrixSharesStorage(t *testing.T) {
	vecs := newVectors(t, 1, 6, Dense, Options{})
	m := vecs[0].AsMatrix(2, 3)
	m.Set(1, 2, 42)
	if vecs[0].Data()[5] != 42 {
		t.Fatal("AsMatrix does not share storage")
	}
}

func TestCreateValidation(t *testing.T) {
	f, _ := fabric.New(fabric.Config{Ranks: 1})
	c := dstorm.NewCluster(f)
	g, _ := dataflow.New(dataflow.All, 1)
	if _, err := Create(c.Node(0), "w", Dense, 0, g, Options{}); err == nil {
		t.Fatal("dim=0 should fail")
	}
	if _, err := Create(c.Node(0), "w", Type(99), 4, g, Options{}); err == nil {
		t.Fatal("unknown type should fail")
	}
}

func TestDenseCodecRoundTrip(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		dim := 1 + r.Intn(64)
		data := make([]float64, dim)
		for i := range data {
			data[i] = r.NormFloat64()
		}
		buf := make([]byte, 8*dim)
		enc := encodeDense(buf, data)
		dec := make([]float64, dim)
		if err := decodeDenseInto(dec, enc); err != nil {
			return false
		}
		for i := range data {
			if data[i] != dec[i] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}

func TestSparseCodecRoundTrip(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		m := make(map[int32]float64)
		for i := 0; i < r.Intn(20); i++ {
			m[int32(r.Intn(1000))] = r.NormFloat64()
		}
		sv := linalg.FromMap(m)
		buf := make([]byte, 4+12*sv.NNZ())
		enc, err := encodeSparse(buf, sv)
		if err != nil {
			return false
		}
		dec, err := decodeSparse(enc)
		if err != nil {
			return false
		}
		if dec.NNZ() != sv.NNZ() {
			return false
		}
		for i := range sv.Idx {
			if sv.Idx[i] != dec.Idx[i] || sv.Val[i] != dec.Val[i] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}

func TestSparseCodecCorruptPayloads(t *testing.T) {
	if _, err := decodeSparse([]byte{1, 2}); err == nil {
		t.Fatal("short payload should fail")
	}
	// Count far beyond payload size.
	if _, err := decodeSparse([]byte{255, 255, 255, 255, 0, 0, 0, 0}); err == nil {
		t.Fatal("oversized count should fail")
	}
}

func TestVectorBarrier(t *testing.T) {
	vecs := newVectors(t, 3, 2, Dense, Options{})
	var wg sync.WaitGroup
	for _, v := range vecs {
		wg.Add(1)
		go func(v *Vector) {
			defer wg.Done()
			if err := v.Barrier(); err != nil {
				t.Errorf("barrier: %v", err)
			}
		}(v)
	}
	wg.Wait()
}

func TestHogwildStyleReplaceConverges(t *testing.T) {
	// Two ranks repeatedly scatter and replace: both end with the freshest
	// value rather than diverging.
	vecs := newVectors(t, 2, 2, Dense, Options{QueueLen: 4})
	vecs[0].Data()[0] = 1
	if _, err := vecs[0].Scatter(1); err != nil {
		t.Fatal(err)
	}
	if _, err := vecs[1].Gather(Replace); err != nil {
		t.Fatal(err)
	}
	if vecs[1].Data()[0] != 1 {
		t.Fatalf("replace did not propagate: %v", vecs[1].Data())
	}
}

func TestScatterToSubsetVector(t *testing.T) {
	vecs := newVectors(t, 3, 2, Dense, Options{})
	vecs[0].Data()[0] = 7
	if _, err := vecs[0].ScatterTo([]int{2}, 1); err != nil {
		t.Fatal(err)
	}
	st, err := vecs[1].Gather(Sum)
	if err != nil {
		t.Fatal(err)
	}
	if st.Updates != 0 {
		t.Fatal("rank 1 should receive nothing")
	}
	if _, err := vecs[2].Gather(Sum); err != nil {
		t.Fatal(err)
	}
	if vecs[2].Data()[0] != 7 {
		t.Fatalf("rank 2 data = %v", vecs[2].Data())
	}
}

func TestVectorAccessors(t *testing.T) {
	vecs := newVectors(t, 2, 4, Sparse, Options{QueueLen: 3})
	v := vecs[0]
	if v.Name() != "w" || v.Type() != Sparse || v.Dim() != 4 {
		t.Fatalf("accessors: %s %v %d", v.Name(), v.Type(), v.Dim())
	}
	if v.Type().String() != "sparse" || Dense.String() != "dense" {
		t.Fatal("type names wrong")
	}
	if v.Segment() == nil {
		t.Fatal("Segment() nil")
	}
}

func TestVectorPeerItersAndSetIteration(t *testing.T) {
	vecs := newVectors(t, 2, 1, Dense, Options{})
	//maltlint:allow iterskew -- single-round test pins one stamp to assert PeerIters propagation, not an SSP loop
	vecs[0].SetIteration(5)
	if _, err := vecs[0].Scatter(0); err != nil { // 0 → use stored iteration
		t.Fatal(err)
	}
	if got := vecs[1].PeerIters()[0]; got != 5 {
		t.Fatalf("PeerIters = %d, want 5", got)
	}
}

func TestVectorClose(t *testing.T) {
	vecs := newVectors(t, 2, 1, Dense, Options{})
	if err := vecs[1].Close(); err != nil {
		t.Fatal(err)
	}
	if _, err := vecs[1].Gather(Sum); err == nil {
		t.Fatal("gather on closed vector should fail")
	}
	// Scatters toward the closed vector report it as a failed peer.
	failed, err := vecs[0].Scatter(1)
	if err != nil {
		t.Fatal(err)
	}
	if len(failed) != 1 || failed[0] != 1 {
		t.Fatalf("failed = %v", failed)
	}
}

func TestVectorRemovePeer(t *testing.T) {
	vecs := newVectors(t, 3, 1, Dense, Options{})
	vecs[0].RemovePeer(1)
	if _, err := vecs[0].Scatter(1); err != nil {
		t.Fatal(err)
	}
	st, err := vecs[1].Gather(Sum)
	if err != nil {
		t.Fatal(err)
	}
	if st.Updates != 0 {
		t.Fatal("removed peer still receives")
	}
	st, err = vecs[2].Gather(Sum)
	if err != nil {
		t.Fatal(err)
	}
	if st.Updates != 1 {
		t.Fatal("remaining peer should receive")
	}
}

func TestVectorGatherWeakCountsTorn(t *testing.T) {
	// Weak gathers over a chunked writer may observe torn payloads; the
	// stats must count them and the atomic gather must never see any.
	//maltlint:allow queuelen -- the depth-1 ring forces overwrites so weak gathers can observe tearing; that pressure is the property under test
	vecs := newVectors(t, 2, 8192, Dense, Options{QueueLen: 1, ChunkSize: 256})
	stop := make(chan struct{})
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		for i := uint64(1); ; i++ {
			select {
			case <-stop:
				return
			default:
			}
			if _, err := vecs[0].Scatter(i); err != nil {
				t.Errorf("scatter: %v", err)
				return
			}
		}
	}()
	deadline := time.Now().Add(2 * time.Second)
	torn := 0
	for time.Now().Before(deadline) && torn == 0 {
		st, err := vecs[1].GatherWeak(Replace)
		if err != nil {
			t.Fatal(err)
		}
		torn += st.Torn
	}
	close(stop)
	wg.Wait()
	if torn == 0 {
		t.Skip("no torn read observed within the window (scheduling-dependent)")
	}
}

func TestVectorSegStats(t *testing.T) {
	vecs := newVectors(t, 2, 1, Dense, Options{QueueLen: 2})
	for i := 1; i <= 5; i++ {
		if _, err := vecs[0].Scatter(uint64(i)); err != nil {
			t.Fatal(err)
		}
	}
	if _, err := vecs[1].Gather(Sum); err != nil {
		t.Fatal(err)
	}
	st := vecs[1].SegStats()
	if st.Consumed != 2 || st.Overwritten != 3 {
		t.Fatalf("SegStats = %+v", st)
	}
}
