package vol

import (
	"encoding/binary"
	"fmt"
	"math"

	"malt/internal/ml/linalg"
)

// Wire formats.
//
// Dense:  dim float64s, little-endian, 8*dim bytes.
// Sparse: uint32 count, count int32 indices, count float64 values.
//
// Both formats are fixed-layout so a torn read (mixed old/new bytes) decodes
// to *numbers* — garbage values, not parser crashes — matching the paper's
// observation that stochastic training tolerates occasional corrupt updates.
// The one exception is a torn sparse count, which is bounds-checked.

func (v *Vector) encode(data []float64) ([]byte, error) {
	switch v.typ {
	case Dense:
		return encodeDense(v.encBuf, data), nil
	case Sparse:
		sv := linalg.FromDense(data)
		return encodeSparse(v.encBuf, sv)
	default:
		return nil, fmt.Errorf("vol: unknown type %d", v.typ)
	}
}

func encodeDense(buf []byte, data []float64) []byte {
	out := buf[:8*len(data)]
	for i, f := range data {
		binary.LittleEndian.PutUint64(out[8*i:], math.Float64bits(f))
	}
	return out
}

// decodeDenseInto decodes a dense payload into dst, which must be exactly
// dim long (each update slot owns its storage because the UDF receives all
// of a gather's updates together).
func decodeDenseInto(dst []float64, payload []byte) error {
	if len(payload) != 8*len(dst) {
		return fmt.Errorf("vol: dense payload %d bytes, want %d", len(payload), 8*len(dst))
	}
	for i := range dst {
		dst[i] = math.Float64frombits(binary.LittleEndian.Uint64(payload[8*i:]))
	}
	return nil
}

func encodeSparse(buf []byte, sv *linalg.SparseVector) ([]byte, error) {
	need := 4 + 12*sv.NNZ()
	if need > len(buf) {
		return nil, fmt.Errorf("vol: sparse update with %d entries exceeds MaxNNZ capacity (%d bytes > %d)",
			sv.NNZ(), need, len(buf))
	}
	out := buf[:need]
	binary.LittleEndian.PutUint32(out[0:4], uint32(sv.NNZ()))
	off := 4
	for _, idx := range sv.Idx {
		binary.LittleEndian.PutUint32(out[off:], uint32(idx))
		off += 4
	}
	for _, val := range sv.Val {
		binary.LittleEndian.PutUint64(out[off:], math.Float64bits(val))
		off += 8
	}
	return out, nil
}

func decodeSparse(payload []byte) (*linalg.SparseVector, error) {
	sv := &linalg.SparseVector{}
	if err := decodeSparseInto(sv, payload); err != nil {
		return nil, err
	}
	return sv, nil
}

// decodeSparseInto decodes a sparse payload into sv, reusing its Idx/Val
// storage when the capacity suffices (the gather engine's scratch slots
// reach zero-allocation steady state this way).
func decodeSparseInto(sv *linalg.SparseVector, payload []byte) error {
	if len(payload) < 4 {
		return fmt.Errorf("vol: sparse payload too short (%d bytes)", len(payload))
	}
	count := int(binary.LittleEndian.Uint32(payload[0:4]))
	if count < 0 || 4+12*count > len(payload) {
		return fmt.Errorf("vol: sparse payload count %d exceeds payload of %d bytes", count, len(payload))
	}
	if cap(sv.Idx) < count {
		sv.Idx = make([]int32, count)
	} else {
		sv.Idx = sv.Idx[:count]
	}
	if cap(sv.Val) < count {
		sv.Val = make([]float64, count)
	} else {
		sv.Val = sv.Val[:count]
	}
	off := 4
	for i := 0; i < count; i++ {
		sv.Idx[i] = int32(binary.LittleEndian.Uint32(payload[off:]))
		off += 4
	}
	for i := 0; i < count; i++ {
		sv.Val[i] = math.Float64frombits(binary.LittleEndian.Uint64(payload[off:]))
		off += 8
	}
	return nil
}
