package vol

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func TestTopKSelectsLargestMagnitude(t *testing.T) {
	data := []float64{0.1, -5, 0, 2, -0.5, 3}
	sv := TopK(data, 2)
	if sv.NNZ() != 2 {
		t.Fatalf("NNZ = %d", sv.NNZ())
	}
	// Largest magnitudes are -5 (idx 1) and 3 (idx 5), indices sorted.
	if sv.Idx[0] != 1 || sv.Val[0] != -5 || sv.Idx[1] != 5 || sv.Val[1] != 3 {
		t.Fatalf("TopK = %v / %v", sv.Idx, sv.Val)
	}
}

func TestTopKEdgeCases(t *testing.T) {
	if TopK([]float64{1, 2}, 0).NNZ() != 0 {
		t.Fatal("k=0 should be empty")
	}
	if TopK([]float64{1, 0, 2}, 10).NNZ() != 2 {
		t.Fatal("k>len should return all non-zeros")
	}
	if TopK(nil, 3).NNZ() != 0 {
		t.Fatal("empty data should be empty")
	}
}

func TestTopKResidualErrorFeedback(t *testing.T) {
	data := []float64{4, 1, -3, 0.5}
	sv := TopKResidual(data, 2)
	if sv.NNZ() != 2 {
		t.Fatalf("NNZ = %d", sv.NNZ())
	}
	// Selected entries zeroed; residual keeps the rest.
	if data[0] != 0 || data[2] != 0 {
		t.Fatalf("selected entries not zeroed: %v", data)
	}
	if data[1] != 1 || data[3] != 0.5 {
		t.Fatalf("residual corrupted: %v", data)
	}
	// Shipped + residual reconstructs the original exactly.
	recon := sv.ToDense(4)
	for i, v := range data {
		recon[i] += v
	}
	want := []float64{4, 1, -3, 0.5}
	for i := range want {
		if recon[i] != want[i] {
			t.Fatalf("recon = %v", recon)
		}
	}
}

// Property: the selected set's total magnitude dominates any other k-subset
// (we check against the complement's max) and shipped+residual is lossless.
func TestTopKProperties(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 1 + rng.Intn(64)
		k := rng.Intn(n + 1)
		data := make([]float64, n)
		for i := range data {
			if rng.Float64() < 0.7 {
				data[i] = rng.NormFloat64()
			}
		}
		orig := append([]float64(nil), data...)
		sv := TopKResidual(data, k)
		if sv.NNZ() > k && k < n {
			return false
		}
		// Losslessness.
		recon := sv.ToDense(n)
		for i := range recon {
			recon[i] += data[i]
			if recon[i] != orig[i] {
				return false
			}
		}
		// Dominance: min selected magnitude ≥ max residual magnitude.
		minSel := math.Inf(1)
		for _, v := range sv.Val {
			if math.Abs(v) < minSel {
				minSel = math.Abs(v)
			}
		}
		for _, v := range data {
			if math.Abs(v) > minSel {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

// TestTopKCompressedTrainingRoundTrip: a compressed scatter still delivers
// the heavy coordinates to peers.
func TestTopKCompressedScatter(t *testing.T) {
	vecs := newVectors(t, 2, 100, Sparse, Options{MaxNNZ: 10})
	d := vecs[0].Data()
	for i := range d {
		d[i] = 0.01
	}
	d[7] = 5
	d[42] = -3
	up := TopK(d, 2)
	if _, err := vecs[0].ScatterSparse(up, 1); err != nil {
		t.Fatal(err)
	}
	if _, err := vecs[1].Gather(Sum); err != nil {
		t.Fatal(err)
	}
	got := vecs[1].Data()
	if got[7] != 5 || got[42] != -3 {
		t.Fatalf("heavy coordinates lost: %v %v", got[7], got[42])
	}
	if got[0] != 0 {
		t.Fatal("light coordinate should have been dropped")
	}
}
