package vol

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func TestTopKSelectsLargestMagnitude(t *testing.T) {
	data := []float64{0.1, -5, 0, 2, -0.5, 3}
	sv := TopK(data, 2)
	if sv.NNZ() != 2 {
		t.Fatalf("NNZ = %d", sv.NNZ())
	}
	// Largest magnitudes are -5 (idx 1) and 3 (idx 5), indices sorted.
	if sv.Idx[0] != 1 || sv.Val[0] != -5 || sv.Idx[1] != 5 || sv.Val[1] != 3 {
		t.Fatalf("TopK = %v / %v", sv.Idx, sv.Val)
	}
}

func TestTopKEdgeCases(t *testing.T) {
	if TopK([]float64{1, 2}, 0).NNZ() != 0 {
		t.Fatal("k=0 should be empty")
	}
	if TopK([]float64{1, 0, 2}, 10).NNZ() != 2 {
		t.Fatal("k>len should return all non-zeros")
	}
	if TopK(nil, 3).NNZ() != 0 {
		t.Fatal("empty data should be empty")
	}
}

// TestTopKTable pins the edge cases the pre-compress implementation
// mishandled: ties were broken by sort.Slice's unstable order and NaN
// comparisons made the comparator intransitive. TopK now routes through
// compress.SelectTopK, so ties break to the lower index and non-finite
// entries always ship.
func TestTopKTable(t *testing.T) {
	cases := []struct {
		name    string
		data    []float64
		k       int
		wantIdx []int32
		wantVal []float64
	}{
		{"k zero", []float64{3, 1}, 0, nil, nil},
		{"k negative", []float64{3, 1}, -2, nil, nil},
		{"k equals dim", []float64{1, -2, 3}, 3, []int32{0, 1, 2}, []float64{1, -2, 3}},
		{"k exceeds dim skips zeros", []float64{1, 0, 3}, 10, []int32{0, 2}, []float64{1, 3}},
		{"all zeros", []float64{0, 0, 0}, 2, nil, nil},
		{"ties break to lower index", []float64{2, -2, 2, -2}, 2, []int32{0, 1}, []float64{2, -2}},
		{"ties across sign", []float64{-7, 7}, 1, []int32{0}, []float64{-7}},
		{"NaN always ships", []float64{9, math.NaN(), 1}, 1, []int32{1}, []float64{math.NaN()}},
		{"Inf outranks finite", []float64{math.MaxFloat64, math.Inf(-1)}, 1, []int32{1}, []float64{math.Inf(-1)}},
		{"NaN and Inf tie by index", []float64{1, math.NaN(), math.Inf(1)}, 2, []int32{1, 2}, []float64{math.NaN(), math.Inf(1)}},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			sv := TopK(tc.data, tc.k)
			if sv.NNZ() != len(tc.wantIdx) {
				t.Fatalf("NNZ = %d, want %d (%v / %v)", sv.NNZ(), len(tc.wantIdx), sv.Idx, sv.Val)
			}
			for i := range tc.wantIdx {
				if sv.Idx[i] != tc.wantIdx[i] {
					t.Errorf("Idx[%d] = %d, want %d", i, sv.Idx[i], tc.wantIdx[i])
				}
				want := tc.wantVal[i]
				if math.IsNaN(want) {
					if !math.IsNaN(sv.Val[i]) {
						t.Errorf("Val[%d] = %v, want NaN", i, sv.Val[i])
					}
				} else if sv.Val[i] != want {
					t.Errorf("Val[%d] = %v, want %v", i, sv.Val[i], want)
				}
			}
		})
	}
}

// TestTopKDeterministicOnTies: selection is a pure function of the input
// even when many magnitudes tie (the old sort.Slice comparator was
// unstable, so tied inputs could select different indices run to run).
func TestTopKDeterministicOnTies(t *testing.T) {
	data := make([]float64, 200)
	for i := range data {
		data[i] = 1.5 // everything ties
	}
	first := TopK(data, 50)
	for trial := 0; trial < 10; trial++ {
		sv := TopK(data, 50)
		for i := range first.Idx {
			if sv.Idx[i] != first.Idx[i] {
				t.Fatalf("trial %d: Idx[%d] = %d, want %d", trial, i, sv.Idx[i], first.Idx[i])
			}
		}
	}
	for i, ix := range first.Idx {
		if ix != int32(i) {
			t.Fatalf("tied selection should take the lowest indices: Idx[%d] = %d", i, ix)
		}
	}
}

func TestTopKResidualErrorFeedback(t *testing.T) {
	data := []float64{4, 1, -3, 0.5}
	sv := TopKResidual(data, 2)
	if sv.NNZ() != 2 {
		t.Fatalf("NNZ = %d", sv.NNZ())
	}
	// Selected entries zeroed; residual keeps the rest.
	if data[0] != 0 || data[2] != 0 {
		t.Fatalf("selected entries not zeroed: %v", data)
	}
	if data[1] != 1 || data[3] != 0.5 {
		t.Fatalf("residual corrupted: %v", data)
	}
	// Shipped + residual reconstructs the original exactly.
	recon := sv.ToDense(4)
	for i, v := range data {
		recon[i] += v
	}
	want := []float64{4, 1, -3, 0.5}
	for i := range want {
		if recon[i] != want[i] {
			t.Fatalf("recon = %v", recon)
		}
	}
}

// Property: the selected set's total magnitude dominates any other k-subset
// (we check against the complement's max) and shipped+residual is lossless.
func TestTopKProperties(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 1 + rng.Intn(64)
		k := rng.Intn(n + 1)
		data := make([]float64, n)
		for i := range data {
			if rng.Float64() < 0.7 {
				data[i] = rng.NormFloat64()
			}
		}
		orig := append([]float64(nil), data...)
		sv := TopKResidual(data, k)
		if sv.NNZ() > k && k < n {
			return false
		}
		// Losslessness.
		recon := sv.ToDense(n)
		for i := range recon {
			recon[i] += data[i]
			if recon[i] != orig[i] {
				return false
			}
		}
		// Dominance: min selected magnitude ≥ max residual magnitude.
		minSel := math.Inf(1)
		for _, v := range sv.Val {
			if math.Abs(v) < minSel {
				minSel = math.Abs(v)
			}
		}
		for _, v := range data {
			if math.Abs(v) > minSel {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

// TestTopKCompressedTrainingRoundTrip: a compressed scatter still delivers
// the heavy coordinates to peers.
func TestTopKCompressedScatter(t *testing.T) {
	vecs := newVectors(t, 2, 100, Sparse, Options{MaxNNZ: 10})
	d := vecs[0].Data()
	for i := range d {
		d[i] = 0.01
	}
	d[7] = 5
	d[42] = -3
	up := TopK(d, 2)
	if _, err := vecs[0].ScatterSparse(up, 1); err != nil {
		t.Fatal(err)
	}
	if _, err := vecs[1].Gather(Sum); err != nil {
		t.Fatal(err)
	}
	got := vecs[1].Data()
	if got[7] != 5 || got[42] != -3 {
		t.Fatalf("heavy coordinates lost: %v %v", got[7], got[42])
	}
	if got[0] != 0 {
		t.Fatal("light coordinate should have been dropped")
	}
}
