package vol

import (
	"math"
	"sort"

	"malt/internal/ml/linalg"
)

// TopK returns a sparse update holding the k largest-magnitude entries of
// data — the gradient-compression filter the paper lists among the network
// optimizations that further reduce traffic (§6.2, citing the parameter
// server's filters). Scattering TopK(delta, k) instead of the full delta
// trades convergence accuracy for a fixed wire budget; the dropped mass
// should be carried forward by the caller (see TopKResidual).
func TopK(data []float64, k int) *linalg.SparseVector {
	if k <= 0 {
		return &linalg.SparseVector{}
	}
	if k >= len(data) {
		return linalg.FromDense(data)
	}
	idx := make([]int32, 0, len(data))
	for i, v := range data {
		if v != 0 {
			idx = append(idx, int32(i))
		}
	}
	if len(idx) > k {
		sort.Slice(idx, func(a, b int) bool {
			return math.Abs(data[idx[a]]) > math.Abs(data[idx[b]])
		})
		idx = idx[:k]
		sort.Slice(idx, func(a, b int) bool { return idx[a] < idx[b] })
	}
	out := &linalg.SparseVector{
		Idx: idx,
		Val: make([]float64, len(idx)),
	}
	for i, ix := range idx {
		out.Val[i] = data[ix]
	}
	return out
}

// TopKResidual splits data into the top-k sparse update and leaves the
// residual (the dropped entries) in data, zeroing what was selected. The
// standard error-feedback pattern: the caller accumulates the residual
// into the next batch's delta so compression drops nothing permanently.
func TopKResidual(data []float64, k int) *linalg.SparseVector {
	sv := TopK(data, k)
	for _, ix := range sv.Idx {
		data[ix] = 0
	}
	return sv
}
