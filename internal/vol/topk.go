package vol

import (
	"malt/internal/compress"
	"malt/internal/ml/linalg"
)

// TopK returns a sparse update holding the k largest-magnitude entries of
// data — the gradient-compression filter the paper lists among the network
// optimizations that further reduce traffic (§6.2, citing the parameter
// server's filters).
//
// Deprecated: use Options.Compress with the "topk" codec, which adds
// per-destination error-feedback residuals, deterministic tie-breaking and
// NaN/Inf handling (compress.SelectTopK), framing, and adaptive per-link
// ratios. This wrapper remains for callers that want a standalone sparse
// filter; it now routes through compress.SelectTopK, so selection is
// deterministic (ties break to the lower index, non-finite entries always
// ship) and k <= 0, k >= dim and all-zero inputs behave sanely.
func TopK(data []float64, k int) *linalg.SparseVector {
	idx := compress.SelectTopK(data, k, nil)
	if len(idx) == 0 {
		return &linalg.SparseVector{}
	}
	out := &linalg.SparseVector{
		Idx: idx,
		Val: make([]float64, len(idx)),
	}
	for i, ix := range idx {
		out.Val[i] = data[ix]
	}
	return out
}

// TopKResidual splits data into the top-k sparse update and leaves the
// residual (the dropped entries) in data, zeroing what was selected. The
// manual error-feedback pattern: the caller accumulates the residual into
// the next batch's delta so compression drops nothing permanently.
//
// Deprecated: use Options.Compress with the "topk" codec — the vector then
// maintains one residual per destination automatically, which this
// single-residual pattern cannot express.
func TopKResidual(data []float64, k int) *linalg.SparseVector {
	sv := TopK(data, k)
	for _, ix := range sv.Idx {
		data[ix] = 0
	}
	return sv
}
