package vol

import (
	"encoding/binary"
	"math"

	"malt/internal/compress"
)

// Compressed scatter path.
//
// A compressed Vector ships codec frames (internal/compress) instead of raw
// float64s. Unlike every other scatter, the payload differs per destination:
// each link carries its own error-feedback residual, so the
// residual-corrected update — and therefore the planned frame — is
// per-peer. Scatters therefore loop over destinations, Begin-ing the
// compression state once per peer and sending that peer its own frame(s);
// dstorm's Segment copies each payload into its own buffers synchronously,
// so one encode buffer serves all peers.
//
// Composed with bucketing, each fragment is an ordinary bucket header whose
// body is the frame for that bucket's coordinate range, sliced from the one
// whole-update plan. Global planning is what keeps the reassembled update —
// and the fold — bitwise identical at any bucket size: the union of the
// per-bucket frames decodes to exactly the whole-vector frame's
// reconstruction.

// compState bundles a vector's per-destination compression state with the
// optional adaptive per-link ratio controller.
type compState struct {
	st  *compress.State
	ctl *compress.Controller
}

// ratio returns the ratio in force for one destination.
func (c *compState) ratio(peer int) float64 {
	if c.ctl != nil {
		return c.ctl.Ratio(peer)
	}
	return c.st.Options().Ratio
}

// CompressPerf summarizes a compressed vector's wire savings and adaptive
// activity. Owned by the vector's goroutine, like GatherPerf.
type CompressPerf struct {
	// BytesPre is the raw bytes the scatters would have shipped
	// uncompressed (8·dim per destination per update).
	BytesPre uint64
	// BytesPost is the frame bytes actually produced.
	BytesPost uint64
	// Frames is the number of frames produced.
	Frames uint64
	// ResidualNormMicro is the current L1 norm of all per-link residuals
	// in micro-units (×1e6) — the gradient mass deferred by error
	// feedback right now.
	ResidualNormMicro uint64
	// Adaptations counts adaptive per-link ratio changes (0 when the
	// controller is off).
	Adaptations uint64
	// HardestInvRatioMilli is 1000 / the smallest per-link ratio that
	// was ever in force, rounded — 8000 means some link shipped 1/8 of
	// its coordinates at its tightest. The peak survives post-pressure
	// relaxation (a healed link drifts back to base, but the harvest
	// still shows how hard the blackout squeezed it); equals 1000/base
	// ratio when adaptation is off or no link was ever pressured.
	HardestInvRatioMilli uint64
}

// Compressed reports whether scatters ship codec frames.
func (v *Vector) Compressed() bool { return v.comp != nil }

// CompressPerf returns the compression engine's counters (zero value when
// the vector is not compressed).
func (v *Vector) CompressPerf() CompressPerf {
	if v.comp == nil {
		return CompressPerf{}
	}
	p := v.comp.st.Perf()
	out := CompressPerf{
		BytesPre:          p.BytesPre,
		BytesPost:         p.BytesPost,
		Frames:            p.Frames,
		ResidualNormMicro: uint64(math.Round(v.comp.st.ResidualNorm() * 1e6)),
	}
	hardest := v.comp.st.Options().Ratio
	if v.comp.ctl != nil {
		cp := v.comp.ctl.Perf()
		out.Adaptations = cp.Adaptations
		hardest = cp.TightestRatio
	}
	if !v.comp.st.Codec().RatioDriven() {
		hardest = 1
	}
	out.HardestInvRatioMilli = uint64(math.Round(1000 / hardest))
	return out
}

// dropCompressPeer evicts a peer's residual and adaptive-ratio state.
func (v *Vector) dropCompressPeer(rank int) {
	if v.comp == nil {
		return
	}
	v.comp.st.DropPeer(rank)
	if v.comp.ctl != nil {
		v.comp.ctl.DropPeer(rank)
	}
}

// scatterCompressed pushes the local value to peers (nil = the dataflow
// send list) as per-destination codec frames, fragmented per bucket when
// the vector is bucketed.
func (v *Vector) scatterCompressed(peers []int, iter uint64) ([]int, error) {
	if peers == nil {
		peers = v.seg.SendPeers()
	}
	v.scatterID++
	var failed []int
	for _, peer := range peers {
		v.comp.st.Begin(peer, v.data, v.comp.ratio(peer))
		if v.bucket == nil {
			frame := v.comp.st.EncodeRange(v.encBuf[:0], 0, v.dim)
			f, err := v.scatterToOne(peer, frame, iter)
			if err != nil {
				return failed, err
			}
			failed = mergeFailed(failed, f)
			continue
		}
		for b := 0; b < v.bucket.buckets; b++ {
			lo, hi := v.bucket.bucketRange(v.dim, b)
			buf := v.encBuf[:bucketHeaderSize]
			binary.LittleEndian.PutUint64(buf[0:8], v.scatterID)
			binary.LittleEndian.PutUint32(buf[8:12], uint32(lo))
			binary.LittleEndian.PutUint32(buf[12:16], uint32(hi-lo))
			binary.LittleEndian.PutUint32(buf[16:20], uint32(v.bucket.buckets))
			payload := v.comp.st.EncodeRange(buf, lo, hi)
			v.bucket.perf.FragmentsSent++
			f, err := v.scatterToOne(peer, payload, iter)
			if err != nil {
				return failed, err
			}
			failed = mergeFailed(failed, f)
		}
	}
	if v.comp.ctl != nil {
		v.comp.ctl.Tick(peers)
	}
	return failed, nil
}

// scatterToOne sends one payload to a single destination, reusing the
// vector's one-peer slice.
func (v *Vector) scatterToOne(peer int, payload []byte, iter uint64) ([]int, error) {
	v.peerBuf = append(v.peerBuf[:0], peer)
	//maltlint:allow bufretain -- Segment encodes payload into its own buffer synchronously before enqueue (same contract ScatterBucket relies on)
	return v.seg.ScatterTo(v.peerBuf, payload, iter)
}
