package vol

import (
	"fmt"
	"math"
	"sync"
	"testing"
	"time"

	"malt/internal/dataflow"
	"malt/internal/dstorm"
	"malt/internal/fabric"
)

func TestBucketGeometry(t *testing.T) {
	cases := []struct {
		dim, bucketBytes, coords, buckets int
	}{
		{128, 8, 1, 128},       // one coordinate per fragment
		{128, 256, 32, 4},      // even split
		{129, 256, 32, 5},      // ragged tail bucket of one coordinate
		{128, 4, 1, 128},       // sub-coordinate cap floors at one coordinate
		{128, 1 << 20, 128, 1}, // cap above the vector: one bucket
	}
	for _, c := range cases {
		bs := newBucketState(c.dim, c.bucketBytes)
		if bs.coords != c.coords || bs.buckets != c.buckets {
			t.Fatalf("newBucketState(%d, %d) = coords %d buckets %d, want %d/%d",
				c.dim, c.bucketBytes, bs.coords, bs.buckets, c.coords, c.buckets)
		}
		covered := 0
		for b := 0; b < bs.buckets; b++ {
			lo, hi := bs.bucketRange(c.dim, b)
			if lo != covered || hi <= lo || hi > c.dim {
				t.Fatalf("bucketRange(%d, %d) = [%d,%d) after covering %d", c.dim, b, lo, hi, covered)
			}
			covered = hi
		}
		if covered != c.dim {
			t.Fatalf("buckets cover %d of %d coords", covered, c.dim)
		}
	}
}

func TestBucketCreateValidation(t *testing.T) {
	f, err := fabric.New(fabric.Config{Ranks: 1})
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	c := dstorm.NewCluster(f)
	g, err := dataflow.New(dataflow.All, 1)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := Create(c.Node(0), "s", Sparse, 16, g, Options{BucketBytes: 64}); err == nil {
		t.Fatal("BucketBytes on a Sparse vector must be rejected")
	}
	v, err := Create(c.Node(0), "d", Dense, 16, g, Options{BucketBytes: 32})
	if err != nil {
		t.Fatal(err)
	}
	defer v.Close()
	if !v.Bucketed() || v.Buckets() != 4 {
		t.Fatalf("Bucketed=%v Buckets=%d, want true/4", v.Bucketed(), v.Buckets())
	}
	if lo, hi := v.BucketRange(3); lo != 12 || hi != 16 {
		t.Fatalf("BucketRange(3) = [%d,%d)", lo, hi)
	}
	if _, err := v.ScatterBucket(4, nil, 1); err == nil {
		t.Fatal("out-of-range bucket must error")
	}
	if _, err := v.ScatterBucket(-1, nil, 1); err == nil {
		t.Fatal("negative bucket must error")
	}
}

// fillBucketTest writes the deterministic per-(rank, round) gradient used by
// the determinism sweep. Reciprocals give full mantissas, so a single
// out-of-order addition anywhere shows up in the bitwise comparison.
func fillBucketTest(d []float64, rank, round int) {
	for i := range d {
		d[i] = 1 / float64(i+31*rank+7*round)
	}
}

// runBucketSchedule runs rounds of lockstep all-to-all scatter/gather over
// a fresh cluster and returns every rank's final local value. workers > 0
// enables the parallel gather engine on every node.
func runBucketSchedule(t *testing.T, ranks, dim, rounds, bucketBytes, workers int) [][]float64 {
	t.Helper()
	vecs := newVectors(t, ranks, dim, Dense, Options{QueueLen: 2, BucketBytes: bucketBytes})
	defer func() {
		for _, v := range vecs {
			if err := v.Close(); err != nil {
				t.Errorf("close: %v", err)
			}
		}
	}()
	if workers > 0 {
		for _, v := range vecs {
			v.Segment().Node().EnableParallelGather(workers)
			defer v.Segment().Node().DisableParallelGather()
		}
	}
	for round := 1; round <= rounds; round++ {
		for r, v := range vecs {
			fillBucketTest(v.Data(), r, round)
			if failed, err := v.Scatter(uint64(round)); err != nil || len(failed) != 0 {
				t.Fatalf("rank %d round %d scatter: failed=%v err=%v", r, round, failed, err)
			}
		}
		for r, v := range vecs {
			st, err := v.Gather(Average)
			if err != nil {
				t.Fatalf("rank %d round %d gather: %v", r, round, err)
			}
			if st.Updates != ranks-1 {
				t.Fatalf("rank %d round %d folded %d updates, want %d", r, round, st.Updates, ranks-1)
			}
		}
	}
	out := make([][]float64, ranks)
	for r, v := range vecs {
		out[r] = append([]float64(nil), v.Data()...)
		bp := v.BucketPerf()
		if bucketBytes > 0 {
			wantFrags := uint64(rounds * v.Buckets())
			if bp.FragmentsSent != wantFrags {
				t.Fatalf("rank %d sent %d fragments, want %d", r, bp.FragmentsSent, wantFrags)
			}
			if bp.Assembled != uint64(rounds*(ranks-1)) || bp.Evicted != 0 || bp.Duplicates != 0 {
				t.Fatalf("rank %d perf %+v, want %d assembled and no evictions/duplicates",
					r, bp, rounds*(ranks-1))
			}
		} else if bp.FragmentsSent != 0 {
			t.Fatalf("unbucketed rank %d counted %d fragments", r, bp.FragmentsSent)
		}
	}
	return out
}

// TestBucketDeterminismSweep is the bucketing determinism matrix:
// bucketBytes (including a ragged tail and a one-coordinate extreme) ×
// gather workers, every cell bitwise-equal to the unbucketed serial path.
// Reassembly before folding means the fold input multiset and order are
// identical, so any float deviation is a bug.
func TestBucketDeterminismSweep(t *testing.T) {
	const (
		ranks  = 4
		dim    = 129 // odd: last bucket is ragged for most caps
		rounds = 3
	)
	ref := runBucketSchedule(t, ranks, dim, rounds, 0, 0)
	for _, bucketBytes := range []int{8, 64, 256, 1024, 8 * dim} {
		for _, workers := range []int{0, 2, 8} {
			t.Run(fmt.Sprintf("bucketBytes=%d/workers=%d", bucketBytes, workers), func(t *testing.T) {
				got := runBucketSchedule(t, ranks, dim, rounds, bucketBytes, workers)
				for r := range ref {
					for i := range ref[r] {
						if math.Float64bits(ref[r][i]) != math.Float64bits(got[r][i]) {
							t.Fatalf("rank %d coord %d: bucketed %x != unbucketed %x",
								r, i, math.Float64bits(got[r][i]), math.Float64bits(ref[r][i]))
						}
					}
				}
			})
		}
	}
}

// TestBucketGatherLatestFreshestPerSender checks post-assembly Latest
// semantics: two logical updates scattered back to back, only the second
// folds, and the superseded complete assembly is recycled without folding.
func TestBucketGatherLatestFreshestPerSender(t *testing.T) {
	vecs := newVectors(t, 2, 32, Dense, Options{QueueLen: 4, BucketBytes: 64})
	defer vecs[0].Close()
	defer vecs[1].Close()
	for i := range vecs[1].Data() {
		vecs[1].Data()[i] = 1
	}
	if _, err := vecs[1].Scatter(1); err != nil {
		t.Fatal(err)
	}
	for i := range vecs[1].Data() {
		vecs[1].Data()[i] = 2
	}
	if _, err := vecs[1].Scatter(2); err != nil {
		t.Fatal(err)
	}
	st, err := vecs[0].GatherLatest(Replace)
	if err != nil {
		t.Fatal(err)
	}
	if st.Updates != 1 || st.MinIter != 2 {
		t.Fatalf("GatherLatest folded %d updates (minIter %d), want 1 @ iter 2", st.Updates, st.MinIter)
	}
	for i, got := range vecs[0].Data() {
		if got != 2 {
			t.Fatalf("data[%d] = %v, want 2 (freshest update)", i, got)
		}
	}
	if bp := vecs[0].BucketPerf(); bp.Assembled != 2 {
		t.Fatalf("assembled %d logical updates, want 2", bp.Assembled)
	}
}

// TestBucketQueueLenIsPerLogicalUpdate: the receive ring is per fragment,
// so Create scales the requested (logical) depth by the bucket count — a
// QueueLen-2 bucketed vector must hold two whole scatters without loss.
func TestBucketQueueLenIsPerLogicalUpdate(t *testing.T) {
	vecs := newVectors(t, 2, 64, Dense, Options{QueueLen: 2, BucketBytes: 128})
	defer vecs[0].Close()
	defer vecs[1].Close()
	for round := 1; round <= 2; round++ {
		fillBucketTest(vecs[1].Data(), 1, round)
		if _, err := vecs[1].Scatter(uint64(round)); err != nil {
			t.Fatal(err)
		}
	}
	st, err := vecs[0].Gather(Sum)
	if err != nil {
		t.Fatal(err)
	}
	if st.Updates != 2 {
		t.Fatalf("folded %d updates, want both queued scatters", st.Updates)
	}
	if bp := vecs[0].BucketPerf(); bp.Assembled != 2 || bp.Evicted != 0 {
		t.Fatalf("perf %+v, want 2 assembled / 0 evicted", bp)
	}
}

// TestBucketBarrierDrainsAllBuckets runs the BSP contract under the send
// pipeline with flush thresholds set so high that ONLY the barrier's drain
// can deliver the enqueued fragments: after Barrier, every peer's gather
// must reassemble every sender's complete update, every round. All ranks
// run concurrently, so -race covers the fragment pipeline handoff.
func TestBucketBarrierDrainsAllBuckets(t *testing.T) {
	const (
		ranks  = 3
		dim    = 257
		rounds = 5
	)
	vecs := newVectors(t, ranks, dim, Dense, Options{QueueLen: 2, BucketBytes: 8 * 32})
	for _, v := range vecs {
		v.Segment().Node().EnablePipeline(dstorm.PipelineConfig{
			MaxBatchCount: 1 << 20,
			MaxBatchBytes: 1 << 30,
			MaxDelay:      time.Minute,
		})
	}
	defer func() {
		for _, v := range vecs {
			v.Segment().Node().DisablePipeline()
			if err := v.Close(); err != nil {
				t.Errorf("close: %v", err)
			}
		}
	}()
	var wg sync.WaitGroup
	errs := make([]error, ranks)
	for r := range vecs {
		wg.Add(1)
		go func(r int) {
			defer wg.Done()
			v := vecs[r]
			for round := 1; round <= rounds; round++ {
				fillBucketTest(v.Data(), r, round)
				if _, err := v.Scatter(uint64(round)); err != nil {
					errs[r] = fmt.Errorf("round %d scatter: %w", round, err)
					return
				}
				if err := v.Barrier(); err != nil {
					errs[r] = fmt.Errorf("round %d barrier: %w", round, err)
					return
				}
				st, err := v.Gather(Average)
				if err != nil {
					errs[r] = fmt.Errorf("round %d gather: %w", round, err)
					return
				}
				if st.Updates != ranks-1 {
					errs[r] = fmt.Errorf("round %d: folded %d updates after barrier, want %d (undrained buckets)",
						round, st.Updates, ranks-1)
					return
				}
				// Second barrier so no rank scatters round+1 into a peer
				// that has not yet gathered this round.
				if err := v.Barrier(); err != nil {
					errs[r] = fmt.Errorf("round %d commit barrier: %w", round, err)
					return
				}
			}
		}(r)
	}
	wg.Wait()
	for r, err := range errs {
		if err != nil {
			t.Fatalf("rank %d: %v", r, err)
		}
	}
	for r, v := range vecs {
		if bp := v.BucketPerf(); bp.Evicted != 0 || bp.Duplicates != 0 ||
			bp.Assembled != uint64(rounds*(ranks-1)) {
			t.Fatalf("rank %d perf %+v, want %d assembled and no evictions/duplicates",
				r, bp, rounds*(ranks-1))
		}
	}
}

// TestBucketBlackoutMidUpdate is the chaos leg: a link goes dark halfway
// through a logical update's fragments. The half-delivered update must
// never fold (no partial state reaches the model), and once the link heals
// the next complete update must fold exactly once, evicting the stale
// half-assembly.
func TestBucketBlackoutMidUpdate(t *testing.T) {
	f, err := fabric.New(fabric.Config{Ranks: 2})
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	c := dstorm.NewCluster(f)
	// One bounded attempt per write: a blackout write fails immediately
	// instead of retrying into the healed window, keeping fragment fates
	// deterministic.
	c.Node(1).SetRetryPolicy(dstorm.RetryPolicy{MaxAttempts: 1})
	g, err := dataflow.New(dataflow.All, 2)
	if err != nil {
		t.Fatal(err)
	}
	vecs := make([]*Vector, 2)
	errs := make([]error, 2)
	var wg sync.WaitGroup
	for r := 0; r < 2; r++ {
		wg.Add(1)
		go func(r int) {
			defer wg.Done()
			vecs[r], errs[r] = Create(c.Node(r), "w", Dense, 64, g, Options{QueueLen: 2, BucketBytes: 8 * 16})
		}(r)
	}
	wg.Wait()
	for r, err := range errs {
		if err != nil {
			t.Fatalf("rank %d: %v", r, err)
		}
	}
	defer vecs[0].Close()
	defer vecs[1].Close()
	sender, receiver := vecs[1], vecs[0]

	// Round 1: buckets 0-1 arrive, then the link goes dark mid-update.
	fillBucketTest(sender.Data(), 1, 1)
	for b := 0; b < 4; b++ {
		if b == 2 {
			if err := f.SetLinkFault(1, 0, fabric.LinkFault{Blackout: true}); err != nil {
				t.Fatal(err)
			}
		}
		failed, err := sender.ScatterBucket(b, nil, 1)
		if err != nil {
			t.Fatal(err)
		}
		if b >= 2 && len(failed) != 1 {
			t.Fatalf("bucket %d: blacked-out write reported failed=%v", b, failed)
		}
	}
	before := append([]float64(nil), receiver.Data()...)
	st, err := receiver.Gather(Replace)
	if err != nil {
		t.Fatal(err)
	}
	if st.Updates != 0 {
		t.Fatalf("folded %d updates from a half-delivered scatter, want 0", st.Updates)
	}
	for i := range before {
		if receiver.Data()[i] != before[i] {
			t.Fatalf("coord %d mutated by a partial update", i)
		}
	}

	// Heal; the next complete update folds exactly once and evicts the
	// stale half-assembly.
	if err := f.SetLinkFault(1, 0, fabric.LinkFault{}); err != nil {
		t.Fatal(err)
	}
	fillBucketTest(sender.Data(), 1, 2)
	want := append([]float64(nil), sender.Data()...)
	if failed, err := sender.Scatter(2); err != nil || len(failed) != 0 {
		t.Fatalf("healed scatter: failed=%v err=%v", failed, err)
	}
	st, err = receiver.Gather(Replace)
	if err != nil {
		t.Fatal(err)
	}
	if st.Updates != 1 {
		t.Fatalf("folded %d updates after heal, want exactly 1", st.Updates)
	}
	for i := range want {
		if math.Float64bits(receiver.Data()[i]) != math.Float64bits(want[i]) {
			t.Fatalf("coord %d: %v != scattered %v", i, receiver.Data()[i], want[i])
		}
	}
	bp := receiver.BucketPerf()
	if bp.Assembled != 1 || bp.Evicted != 1 {
		t.Fatalf("perf %+v, want 1 assembled / 1 evicted", bp)
	}

	// A third gather must find nothing: the folded update is consumed and
	// the evicted one is gone, not resurrected.
	st, err = receiver.Gather(Replace)
	if err != nil {
		t.Fatal(err)
	}
	if st.Updates != 0 {
		t.Fatalf("re-gather folded %d updates, want 0 (no double fold)", st.Updates)
	}
}

// TestBucketDuplicateFragmentAbsorbed feeds the reassembly state machine a
// duplicated fragment (a delivered-but-unacknowledged write being retried):
// the bucket must count once and the update must still fold exactly once.
func TestBucketDuplicateFragmentAbsorbed(t *testing.T) {
	const dim = 8
	bs := newBucketState(dim, 8*4) // 2 buckets of 4 coords
	buf := make([]byte, bucketHeaderSize+8*4)
	frag := func(id uint64, lo int) []byte {
		data := []float64{1, 2, 3, 4}
		return append([]byte(nil), encodeFragment(buf, id, lo, data, 2)...)
	}
	plan := func(payload []byte) *fragTask {
		h, err := bs.decodeFragHeader(dim, payload)
		if err != nil {
			t.Fatal(err)
		}
		return bs.planFragment(dim, 1, 7, h, payload)
	}
	if plan(frag(1, 0)) == nil {
		t.Fatal("first fragment must plan a decode")
	}
	if plan(frag(1, 0)) != nil {
		t.Fatal("duplicate fragment must not plan a second decode")
	}
	if bs.perf.Duplicates != 1 {
		t.Fatalf("Duplicates = %d, want 1", bs.perf.Duplicates)
	}
	if a := bs.completeAsm(1); a != nil {
		t.Fatal("update completed with a bucket still missing")
	}
	if plan(frag(1, 4)) == nil {
		t.Fatal("second bucket must plan a decode")
	}
	a := bs.completeAsm(1)
	if a == nil {
		t.Fatal("update must complete after both buckets")
	}
	if again := bs.completeAsm(1); again != nil {
		t.Fatal("completed update must detach (no double fold)")
	}
	if bs.perf.Assembled != 1 {
		t.Fatalf("Assembled = %d, want 1", bs.perf.Assembled)
	}
}
