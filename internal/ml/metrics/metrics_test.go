package metrics

import (
	"math"
	"math/rand"
	"testing"

	"malt/internal/data"
	"malt/internal/ml/linalg"
	"malt/internal/ml/sgd"
)

func ex(label float64, idxVals map[int32]float64) data.Example {
	return data.Example{Features: linalg.FromMap(idxVals), Label: label}
}

func TestMeanLoss(t *testing.T) {
	w := []float64{1, 0}
	examples := []data.Example{
		ex(1, map[int32]float64{0: 2}),  // p=2, hinge 0
		ex(-1, map[int32]float64{0: 1}), // p=1, hinge 2
	}
	got := MeanLoss(w, examples, sgd.Hinge{}, 0)
	if math.Abs(got-1) > 1e-12 {
		t.Fatalf("MeanLoss = %v, want 1", got)
	}
	// With lambda: + λ/2·‖w‖² = 0.05.
	got = MeanLoss(w, examples, sgd.Hinge{}, 0.1)
	if math.Abs(got-1.05) > 1e-12 {
		t.Fatalf("MeanLoss = %v, want 1.05", got)
	}
	if MeanLoss(w, nil, sgd.Hinge{}, 0.1) != 0 {
		t.Fatal("empty examples should give 0")
	}
}

func TestAccuracy(t *testing.T) {
	w := []float64{1}
	examples := []data.Example{
		ex(1, map[int32]float64{0: 1}),
		ex(-1, map[int32]float64{0: 2}),
		ex(-1, map[int32]float64{0: -1}),
	}
	if got := Accuracy(w, examples); math.Abs(got-2.0/3) > 1e-12 {
		t.Fatalf("Accuracy = %v", got)
	}
	if Accuracy(w, nil) != 0 {
		t.Fatal("empty accuracy should be 0")
	}
}

func TestAUCPerfect(t *testing.T) {
	scores := []float64{0.9, 0.8, 0.2, 0.1}
	labels := []float64{1, 1, -1, -1}
	if got := AUC(scores, labels); got != 1 {
		t.Fatalf("AUC = %v, want 1", got)
	}
	// Inverted scores → 0.
	if got := AUC([]float64{0.1, 0.2, 0.8, 0.9}, labels); got != 0 {
		t.Fatalf("inverted AUC = %v, want 0", got)
	}
}

func TestAUCRandomIsHalf(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	n := 5000
	scores := make([]float64, n)
	labels := make([]float64, n)
	for i := range scores {
		scores[i] = rng.Float64()
		if rng.Float64() < 0.3 {
			labels[i] = 1
		} else {
			labels[i] = -1
		}
	}
	got := AUC(scores, labels)
	if got < 0.47 || got > 0.53 {
		t.Fatalf("random AUC = %v, want ≈0.5", got)
	}
}

func TestAUCTies(t *testing.T) {
	// All scores equal: AUC must be exactly 0.5 via midranks.
	scores := []float64{1, 1, 1, 1}
	labels := []float64{1, -1, 1, -1}
	if got := AUC(scores, labels); got != 0.5 {
		t.Fatalf("tied AUC = %v, want 0.5", got)
	}
}

func TestAUCDegenerate(t *testing.T) {
	if got := AUC([]float64{1, 2}, []float64{1, 1}); got != 0.5 {
		t.Fatalf("single-class AUC = %v, want 0.5", got)
	}
	defer func() {
		if recover() == nil {
			t.Fatal("mismatched lengths should panic")
		}
	}()
	AUC([]float64{1}, []float64{1, 2})
}

func TestModelAUC(t *testing.T) {
	examples := []data.Example{
		ex(1, map[int32]float64{0: 1}),
		ex(-1, map[int32]float64{0: -1}),
	}
	w := []float64{1}
	got := ModelAUC(examples, func(x *linalg.SparseVector) float64 { return x.DotDense(w) })
	if got != 1 {
		t.Fatalf("ModelAUC = %v", got)
	}
}

func TestRMSE(t *testing.T) {
	ratings := []data.Rating{
		{User: 0, Item: 0, Score: 3},
		{User: 1, Item: 1, Score: 5},
	}
	// Predict 4 for everything: errors 1 and 1 → RMSE 1.
	got := RMSE(ratings, func(u, i int32) float64 { return 4 })
	if math.Abs(got-1) > 1e-12 {
		t.Fatalf("RMSE = %v, want 1", got)
	}
	if RMSE(nil, nil) != 0 {
		t.Fatal("empty RMSE should be 0")
	}
}
