// Package metrics evaluates trained models the way the paper's figures do:
// regularized loss for the SVM convergence plots (Figs 4, 10–12), AUC for
// the neural-network click-prediction plot (Fig 6), and RMSE for the
// matrix-factorization plot (Fig 7).
package metrics

import (
	"math"
	"sort"

	"malt/internal/data"
	"malt/internal/ml/linalg"
	"malt/internal/ml/sgd"
)

// MeanLoss returns the average pointwise loss of the linear model w over
// the examples, plus the L2 penalty (λ/2)‖w‖².
func MeanLoss(w []float64, examples []data.Example, loss sgd.Loss, lambda float64) float64 {
	if len(examples) == 0 {
		return 0
	}
	var sum float64
	for _, ex := range examples {
		sum += loss.Value(ex.Features.DotDense(w), ex.Label)
	}
	n2 := linalg.Norm2(w)
	return sum/float64(len(examples)) + 0.5*lambda*n2*n2
}

// Accuracy returns the fraction of examples whose sign(w·x) matches the
// label.
func Accuracy(w []float64, examples []data.Example) float64 {
	if len(examples) == 0 {
		return 0
	}
	correct := 0
	for _, ex := range examples {
		p := ex.Features.DotDense(w)
		if (p >= 0) == (ex.Label > 0) {
			correct++
		}
	}
	return float64(correct) / float64(len(examples))
}

// AUC returns the area under the ROC curve for the given scores against ±1
// labels, via the rank-sum (Mann–Whitney) formulation with midrank tie
// handling. Returns 0.5 when either class is absent.
func AUC(scores []float64, labels []float64) float64 {
	if len(scores) != len(labels) {
		panic("metrics: AUC scores/labels length mismatch")
	}
	n := len(scores)
	idx := make([]int, n)
	for i := range idx {
		idx[i] = i
	}
	sort.Slice(idx, func(a, b int) bool { return scores[idx[a]] < scores[idx[b]] })

	var nPos, nNeg int
	ranks := make([]float64, n)
	for i := 0; i < n; {
		j := i
		for j < n && scores[idx[j]] == scores[idx[i]] {
			j++
		}
		mid := float64(i+j+1) / 2 // average 1-based rank for the tie group
		for k := i; k < j; k++ {
			ranks[idx[k]] = mid
		}
		i = j
	}
	var rankSumPos float64
	for i := 0; i < n; i++ {
		if labels[i] > 0 {
			nPos++
			rankSumPos += ranks[i]
		} else {
			nNeg++
		}
	}
	if nPos == 0 || nNeg == 0 {
		return 0.5
	}
	u := rankSumPos - float64(nPos)*float64(nPos+1)/2
	return u / (float64(nPos) * float64(nNeg))
}

// ModelAUC scores every example with score(x) and returns the AUC.
func ModelAUC(examples []data.Example, score func(x *linalg.SparseVector) float64) float64 {
	scores := make([]float64, len(examples))
	labels := make([]float64, len(examples))
	for i, ex := range examples {
		scores[i] = score(ex.Features)
		labels[i] = ex.Label
	}
	return AUC(scores, labels)
}

// RMSE returns the root-mean-square error of predictions over ratings.
func RMSE(ratings []data.Rating, predict func(user, item int32) float64) float64 {
	if len(ratings) == 0 {
		return 0
	}
	var sum float64
	for _, r := range ratings {
		d := predict(r.User, r.Item) - r.Score
		sum += d * d
	}
	return math.Sqrt(sum / float64(len(ratings)))
}
