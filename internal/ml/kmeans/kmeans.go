// Package kmeans implements Lloyd's k-means — one of the gradient-descent-
// family algorithms the paper lists as MALT targets (§2: "gradient descent
// can be used for a wide-range of algorithms such as regression, k-means,
// SVM, matrix factorization and neural networks").
//
// The distributed pattern differs instructively from SGD: each replica
// computes *sufficient statistics* (per-cluster coordinate sums and
// counts) over its shard, the statistics are exchanged with a Sum gather
// (they are additive, unlike gradients which average), and every replica
// recomputes identical centroids. One MALT vector holds sums‖counts so a
// single scatter ships both.
package kmeans

import (
	"fmt"
	"math"
	"math/rand"

	"malt/internal/data"
	"malt/internal/ml/linalg"
)

// Config parameterizes a clustering.
type Config struct {
	// K is the number of clusters.
	K int
	// Dim is the feature dimensionality.
	Dim int
}

// Model holds the centroids. The distributed loops keep the sufficient
// statistics in MALT vector storage; the model itself is replica-local.
type Model struct {
	cfg       Config
	Centroids *linalg.Matrix // K×Dim
}

// New allocates a model with zeroed centroids; call Init or Seed.
func New(cfg Config) (*Model, error) {
	if cfg.K <= 0 || cfg.Dim <= 0 {
		return nil, fmt.Errorf("kmeans: K and Dim must be positive, got %d/%d", cfg.K, cfg.Dim)
	}
	return &Model{cfg: cfg, Centroids: linalg.NewMatrix(cfg.K, cfg.Dim)}, nil
}

// Config returns the model's configuration.
func (m *Model) Config() Config { return m.cfg }

// Init seeds the centroids from k distinct examples chosen deterministically
// in seed (the "Forgy" initialization). All replicas must use the same seed
// and the same dataset so they start identical.
func (m *Model) Init(examples []data.Example, seed int64) error {
	if len(examples) < m.cfg.K {
		return fmt.Errorf("kmeans: %d examples for %d clusters", len(examples), m.cfg.K)
	}
	rng := rand.New(rand.NewSource(seed))
	perm := rng.Perm(len(examples))
	for c := 0; c < m.cfg.K; c++ {
		row := m.Centroids.Row(c)
		linalg.Zero(row)
		examples[perm[c]].Features.AxpyDense(1, row)
	}
	return nil
}

// Assign returns the nearest centroid to x by Euclidean distance, along
// with the squared distance.
func (m *Model) Assign(x *linalg.SparseVector) (int, float64) {
	best, bestD := 0, math.Inf(1)
	// ‖x − c‖² = ‖x‖² − 2·x·c + ‖c‖²; ‖x‖² is constant across c.
	x2 := x.Norm2()
	x2 *= x2
	for c := 0; c < m.cfg.K; c++ {
		row := m.Centroids.Row(c)
		c2 := linalg.Dot(row, row)
		d := x2 - 2*x.DotDense(row) + c2
		if d < bestD {
			best, bestD = c, d
		}
	}
	return best, bestD
}

// StatsLen returns the length of the flat sufficient-statistics vector:
// K×Dim coordinate sums followed by K counts.
func (m *Model) StatsLen() int { return m.cfg.K*m.cfg.Dim + m.cfg.K }

// Accumulate adds the sufficient statistics of the examples into stats
// (layout per StatsLen). stats is not cleared first, so shards and peer
// contributions merge by simple addition — the property that makes the
// distributed exchange a Sum gather.
func (m *Model) Accumulate(stats []float64, examples []data.Example) error {
	if len(stats) != m.StatsLen() {
		return fmt.Errorf("kmeans: stats length %d, want %d", len(stats), m.StatsLen())
	}
	sums := stats[:m.cfg.K*m.cfg.Dim]
	counts := stats[m.cfg.K*m.cfg.Dim:]
	for _, ex := range examples {
		c, _ := m.Assign(ex.Features)
		ex.Features.AxpyDense(1, sums[c*m.cfg.Dim:(c+1)*m.cfg.Dim])
		counts[c]++
	}
	return nil
}

// Update recomputes the centroids from merged statistics. Empty clusters
// keep their previous centroid (the standard Lloyd's fallback). The stats
// buffer is zeroed for the next round.
func (m *Model) Update(stats []float64) error {
	if len(stats) != m.StatsLen() {
		return fmt.Errorf("kmeans: stats length %d, want %d", len(stats), m.StatsLen())
	}
	sums := stats[:m.cfg.K*m.cfg.Dim]
	counts := stats[m.cfg.K*m.cfg.Dim:]
	for c := 0; c < m.cfg.K; c++ {
		if counts[c] > 0 {
			row := m.Centroids.Row(c)
			inv := 1 / counts[c]
			for j := 0; j < m.cfg.Dim; j++ {
				row[j] = sums[c*m.cfg.Dim+j] * inv
			}
		}
	}
	linalg.Zero(stats)
	return nil
}

// Inertia returns the k-means objective: the summed squared distance of
// every example to its nearest centroid.
func (m *Model) Inertia(examples []data.Example) float64 {
	var total float64
	for _, ex := range examples {
		_, d := m.Assign(ex.Features)
		total += d
	}
	return total
}

// Iterate runs one full serial Lloyd's round over the examples.
func (m *Model) Iterate(examples []data.Example) error {
	stats := make([]float64, m.StatsLen())
	if err := m.Accumulate(stats, examples); err != nil {
		return err
	}
	return m.Update(stats)
}
