package kmeans

import (
	"math"
	"sync"
	"testing"

	"malt/internal/consistency"
	"malt/internal/core"
	"malt/internal/data"
	"malt/internal/vol"
)

func genClusters(t *testing.T, k, dim, n int) (*data.Dataset, [][]float64) {
	t.Helper()
	ds, centers, err := data.GenerateClusters(data.ClusterSpec{
		Name: "t", K: k, Dim: dim, Train: n, Spread: 0.1, Seed: 17,
	})
	if err != nil {
		t.Fatal(err)
	}
	return ds, centers
}

func TestNewValidation(t *testing.T) {
	if _, err := New(Config{K: 0, Dim: 3}); err == nil {
		t.Fatal("K=0 should fail")
	}
	if _, err := New(Config{K: 3, Dim: 0}); err == nil {
		t.Fatal("Dim=0 should fail")
	}
	m, _ := New(Config{K: 2, Dim: 3})
	if err := m.Init(make([]data.Example, 1), 1); err == nil {
		t.Fatal("fewer examples than clusters should fail")
	}
}

func TestSerialLloydConverges(t *testing.T) {
	ds, centers := genClusters(t, 4, 8, 2000)
	m, err := New(Config{K: 4, Dim: 8})
	if err != nil {
		t.Fatal(err)
	}
	if err := m.Init(ds.Train, 3); err != nil {
		t.Fatal(err)
	}
	initial := m.Inertia(ds.Train)
	prev := initial
	for i := 0; i < 15; i++ {
		if err := m.Iterate(ds.Train); err != nil {
			t.Fatal(err)
		}
		cur := m.Inertia(ds.Train)
		if cur > prev+1e-9 {
			t.Fatalf("inertia increased at round %d: %v -> %v", i, prev, cur)
		}
		prev = cur
	}
	if prev >= initial {
		t.Fatalf("inertia did not decrease: %v -> %v", initial, prev)
	}
	// Every recovered centroid should be close to some true center.
	for c := 0; c < 4; c++ {
		row := m.Centroids.Row(c)
		best := math.Inf(1)
		for _, tc := range centers {
			var d float64
			for j := range tc {
				diff := row[j] - tc[j]
				d += diff * diff
			}
			if d < best {
				best = d
			}
		}
		if best > 0.5 {
			t.Fatalf("centroid %d far from any true center: d²=%v", c, best)
		}
	}
}

func TestStatsAdditivity(t *testing.T) {
	// The whole distributed design rests on this: stats over a union equal
	// the sum of stats over the parts.
	ds, _ := genClusters(t, 3, 5, 600)
	m, _ := New(Config{K: 3, Dim: 5})
	if err := m.Init(ds.Train, 7); err != nil {
		t.Fatal(err)
	}
	whole := make([]float64, m.StatsLen())
	if err := m.Accumulate(whole, ds.Train); err != nil {
		t.Fatal(err)
	}
	parts := make([]float64, m.StatsLen())
	if err := m.Accumulate(parts, ds.Train[:200]); err != nil {
		t.Fatal(err)
	}
	if err := m.Accumulate(parts, ds.Train[200:]); err != nil {
		t.Fatal(err)
	}
	for i := range whole {
		if math.Abs(whole[i]-parts[i]) > 1e-9 {
			t.Fatalf("stats not additive at %d: %v vs %v", i, whole[i], parts[i])
		}
	}
}

func TestUpdateSkipsEmptyClusters(t *testing.T) {
	m, _ := New(Config{K: 2, Dim: 2})
	m.Centroids.Set(1, 0, 42)
	stats := make([]float64, m.StatsLen())
	stats[0], stats[1] = 10, 20 // cluster 0 sums
	stats[4] = 2                // cluster 0 count; cluster 1 empty
	if err := m.Update(stats); err != nil {
		t.Fatal(err)
	}
	if m.Centroids.At(0, 0) != 5 || m.Centroids.At(0, 1) != 10 {
		t.Fatalf("cluster 0 = %v", m.Centroids.Row(0))
	}
	if m.Centroids.At(1, 0) != 42 {
		t.Fatal("empty cluster centroid should be preserved")
	}
	for _, v := range stats {
		if v != 0 {
			t.Fatal("Update must zero the stats buffer")
		}
	}
}

// TestDistributedMatchesSerial is the headline equivalence: 4 MALT
// replicas exchanging sufficient statistics with a Sum gather produce
// bit-for-bit the same centroids as serial Lloyd's on the full data.
func TestDistributedMatchesSerial(t *testing.T) {
	ds, _ := genClusters(t, 4, 6, 1600)
	const rounds = 8

	serial, _ := New(Config{K: 4, Dim: 6})
	if err := serial.Init(ds.Train, 5); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < rounds; i++ {
		if err := serial.Iterate(ds.Train); err != nil {
			t.Fatal(err)
		}
	}

	cluster, err := core.NewCluster(core.Config{Ranks: 4, Sync: consistency.BSP})
	if err != nil {
		t.Fatal(err)
	}
	var mu sync.Mutex
	finals := make([]*Model, 4)
	res := cluster.Run(func(ctx *core.Context) error {
		m, err := New(Config{K: 4, Dim: 6})
		if err != nil {
			return err
		}
		if err := m.Init(ds.Train, 5); err != nil { // identical init everywhere
			return err
		}
		stats, err := ctx.CreateVector("kmeans/stats", vol.Dense, m.StatsLen())
		if err != nil {
			return err
		}
		lo, hi, err := ctx.Shard(len(ds.Train))
		if err != nil {
			return err
		}
		shard := ds.Train[lo:hi]
		for round := 0; round < rounds; round++ {
			ctx.SetIteration(uint64(round + 1))
			ctx.Compute(func() { _ = m.Accumulate(stats.Data(), shard) })
			if err := ctx.Scatter(stats); err != nil {
				return err
			}
			if err := ctx.Advance(stats); err != nil {
				return err
			}
			// Sufficient statistics are additive: Sum, not Average.
			if _, err := ctx.Gather(stats, vol.Sum); err != nil {
				return err
			}
			if err := m.Update(stats.Data()); err != nil {
				return err
			}
			if err := ctx.Commit(stats); err != nil {
				return err
			}
		}
		mu.Lock()
		finals[ctx.Rank()] = m
		mu.Unlock()
		return nil
	})
	if err := res.FirstError(); err != nil {
		t.Fatal(err)
	}

	for r, m := range finals {
		for i := range m.Centroids.Data {
			got, want := m.Centroids.Data[i], serial.Centroids.Data[i]
			if math.Abs(got-want) > 1e-9 {
				t.Fatalf("rank %d centroid[%d] = %v, serial = %v", r, i, got, want)
			}
		}
	}
}
