package sgd

import (
	"math"
	"testing"
	"testing/quick"
)

func TestHinge(t *testing.T) {
	h := Hinge{}
	if h.Value(2, 1) != 0 {
		t.Fatal("correct confident prediction should have zero loss")
	}
	if h.Value(0, 1) != 1 {
		t.Fatalf("Value(0,1) = %v", h.Value(0, 1))
	}
	if h.Value(-1, 1) != 2 {
		t.Fatalf("Value(-1,1) = %v", h.Value(-1, 1))
	}
	if h.Deriv(0, 1) != -1 || h.Deriv(2, 1) != 0 {
		t.Fatal("hinge subgradient wrong")
	}
	if h.Deriv(0, -1) != 1 {
		t.Fatal("hinge subgradient for negative label wrong")
	}
}

func TestLogistic(t *testing.T) {
	l := Logistic{}
	if got := l.Value(0, 1); math.Abs(got-math.Ln2) > 1e-12 {
		t.Fatalf("Value(0,1) = %v, want ln 2", got)
	}
	if got := l.Deriv(0, 1); math.Abs(got+0.5) > 1e-12 {
		t.Fatalf("Deriv(0,1) = %v, want -0.5", got)
	}
	// Stability at extreme margins: finite values, correct saturation.
	if v := l.Value(-100, 1); math.IsInf(v, 0) || math.IsNaN(v) || v < 99 {
		t.Fatalf("Value(-100,1) = %v", v)
	}
	if d := l.Deriv(-1000, 1); math.Abs(d+1) > 1e-9 {
		t.Fatalf("Deriv(-1000,1) = %v, want -1", d)
	}
	if d := l.Deriv(1000, 1); math.Abs(d) > 1e-9 {
		t.Fatalf("Deriv(1000,1) = %v, want ~0", d)
	}
}

func TestSquared(t *testing.T) {
	s := Squared{}
	if s.Value(3, 1) != 2 {
		t.Fatalf("Value = %v", s.Value(3, 1))
	}
	if s.Deriv(3, 1) != 2 {
		t.Fatalf("Deriv = %v", s.Deriv(3, 1))
	}
}

// Property: numeric derivative matches Deriv for all losses away from the
// hinge kink.
func TestDerivMatchesNumeric(t *testing.T) {
	losses := []Loss{Hinge{}, Logistic{}, Squared{}}
	f := func(pRaw, yRaw int8) bool {
		p := float64(pRaw) / 16
		y := 1.0
		if yRaw%2 == 0 {
			y = -1.0
		}
		const h = 1e-6
		for _, l := range losses {
			if _, isHinge := l.(Hinge); isHinge && math.Abs(1-y*p) < 1e-3 {
				continue // kink
			}
			numeric := (l.Value(p+h, y) - l.Value(p-h, y)) / (2 * h)
			if math.Abs(numeric-l.Deriv(p, y)) > 1e-4 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

func TestParseLoss(t *testing.T) {
	for _, name := range []string{"hinge", "logistic", "squared"} {
		l, err := ParseLoss(name)
		if err != nil || l.Name() != name {
			t.Fatalf("ParseLoss(%q) = %v, %v", name, l, err)
		}
	}
	if l, err := ParseLoss("log"); err != nil || l.Name() != "logistic" {
		t.Fatal("alias 'log' should parse")
	}
	if _, err := ParseLoss("bogus"); err == nil {
		t.Fatal("bogus loss should fail")
	}
}

func TestFixedSchedule(t *testing.T) {
	s := Fixed{Eta: 0.1}
	if s.Rate(0) != 0.1 || s.Rate(1e6) != 0.1 {
		t.Fatal("fixed rate changed")
	}
}

func TestInvScaling(t *testing.T) {
	s := InvScaling{Eta0: 1, Lambda: 0.1}
	if s.Rate(0) != 1 {
		t.Fatalf("Rate(0) = %v", s.Rate(0))
	}
	if got := s.Rate(10); math.Abs(got-0.5) > 1e-12 {
		t.Fatalf("Rate(10) = %v, want 0.5", got)
	}
	// Monotone decreasing.
	prev := math.Inf(1)
	for _, tt := range []uint64{0, 1, 10, 100, 10000} {
		r := s.Rate(tt)
		if r > prev {
			t.Fatal("InvScaling not monotone")
		}
		prev = r
	}
}

func TestByIter(t *testing.T) {
	s := ByIter{Eta0: 1, Every: 10}
	if s.Rate(9) != 1 {
		t.Fatalf("Rate(9) = %v", s.Rate(9))
	}
	if s.Rate(10) != 0.5 {
		t.Fatalf("Rate(10) = %v", s.Rate(10))
	}
	if s.Rate(25) != 0.25 {
		t.Fatalf("Rate(25) = %v", s.Rate(25))
	}
	// Defaults survive a zero Every.
	z := ByIter{Eta0: 1}
	if z.Rate(5) <= 0 {
		t.Fatal("zero Every should not produce nonpositive rate")
	}
	c := ByIter{Eta0: 1, Every: 1, Factor: 0.9}
	if math.Abs(c.Rate(2)-0.81) > 1e-12 {
		t.Fatalf("custom factor: %v", c.Rate(2))
	}
}

func TestScheduleNames(t *testing.T) {
	if (Fixed{}).Name() != "fixed" || (InvScaling{}).Name() != "invscaling" || (ByIter{}).Name() != "byiter" {
		t.Fatal("schedule names wrong")
	}
}
