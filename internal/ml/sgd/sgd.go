// Package sgd provides the stochastic-gradient-descent substrate shared by
// the MALT applications: loss functions with subgradients, learning-rate
// schedules (the paper's "fixed" and "byiter" strategies), and L2
// regularization. The distributed training loops in svm, mf and nn are
// thin compositions of these pieces with MALT scatter/gather calls.
package sgd

import (
	"fmt"
	"math"
)

// Loss is a pointwise loss over (prediction, label) with a (sub)gradient
// with respect to the prediction.
type Loss interface {
	// Value returns the loss at prediction p for label y.
	Value(p, y float64) float64
	// Deriv returns d loss / d p at prediction p for label y.
	Deriv(p, y float64) float64
	// Name returns the loss's flag name.
	Name() string
}

// Hinge is the SVM hinge loss max(0, 1 − y·p). Labels must be ±1.
type Hinge struct{}

// Value implements Loss.
func (Hinge) Value(p, y float64) float64 { return math.Max(0, 1-y*p) }

// Deriv implements Loss (a subgradient at the kink).
func (Hinge) Deriv(p, y float64) float64 {
	if 1-y*p > 0 {
		return -y
	}
	return 0
}

// Name implements Loss.
func (Hinge) Name() string { return "hinge" }

// Logistic is the log loss log(1 + exp(−y·p)). Labels must be ±1.
type Logistic struct{}

// Value implements Loss.
func (Logistic) Value(p, y float64) float64 {
	z := -y * p
	// Numerically stable log1p(exp(z)).
	if z > 30 {
		return z
	}
	return math.Log1p(math.Exp(z))
}

// Deriv implements Loss.
func (Logistic) Deriv(p, y float64) float64 {
	z := -y * p
	if z > 30 {
		return -y
	}
	e := math.Exp(z)
	return -y * e / (1 + e)
}

// Name implements Loss.
func (Logistic) Name() string { return "logistic" }

// Squared is the squared error ½(p − y)².
type Squared struct{}

// Value implements Loss.
func (Squared) Value(p, y float64) float64 { d := p - y; return 0.5 * d * d }

// Deriv implements Loss.
func (Squared) Deriv(p, y float64) float64 { return p - y }

// Name implements Loss.
func (Squared) Name() string { return "squared" }

// ParseLoss converts a flag string to a Loss.
func ParseLoss(s string) (Loss, error) {
	switch s {
	case "hinge":
		return Hinge{}, nil
	case "logistic", "log":
		return Logistic{}, nil
	case "squared":
		return Squared{}, nil
	default:
		return nil, fmt.Errorf("sgd: unknown loss %q", s)
	}
}

// Schedule maps an iteration count to a learning rate.
type Schedule interface {
	// Rate returns the learning rate at step t (0-based).
	Rate(t uint64) float64
	// Name returns the schedule's flag name.
	Name() string
}

// Fixed keeps a constant learning rate — the paper's "fixed" strategy for
// matrix factorization.
type Fixed struct {
	// Eta is the constant rate.
	Eta float64
}

// Rate implements Schedule.
func (f Fixed) Rate(uint64) float64 { return f.Eta }

// Name implements Schedule.
func (Fixed) Name() string { return "fixed" }

// InvScaling is Bottou's SVM-SGD schedule η_t = η₀ / (1 + η₀·λ·t), which
// decays like 1/t and is the standard choice for λ-regularized hinge loss.
type InvScaling struct {
	// Eta0 is the initial rate.
	Eta0 float64
	// Lambda is the regularization strength coupled into the decay.
	Lambda float64
}

// Rate implements Schedule.
func (s InvScaling) Rate(t uint64) float64 {
	return s.Eta0 / (1 + s.Eta0*s.Lambda*float64(t))
}

// Name implements Schedule.
func (InvScaling) Name() string { return "invscaling" }

// ByIter halves the rate every Every steps starting from Eta0 — the
// paper's "byiter" strategy ("start with a learning rate and decrease
// every certain number of iterations").
type ByIter struct {
	// Eta0 is the initial rate.
	Eta0 float64
	// Every is the decay period in steps.
	Every uint64
	// Factor is the multiplicative decay per period (default 0.5).
	Factor float64
}

// Rate implements Schedule.
func (s ByIter) Rate(t uint64) float64 {
	every := s.Every
	if every == 0 {
		every = 1
	}
	factor := s.Factor
	if factor == 0 {
		factor = 0.5
	}
	return s.Eta0 * math.Pow(factor, float64(t/every))
}

// Name implements Schedule.
func (ByIter) Name() string { return "byiter" }
