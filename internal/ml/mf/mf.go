// Package mf implements matrix factorization trained with SGD — the
// paper's collaborative-filtering workload (Netflix). A rating matrix R is
// approximated as U·Vᵀ with U ∈ ℝ^{Users×Rank}, V ∈ ℝ^{Items×Rank}; each
// observed rating drives a Hogwild-style update of one row of U and one
// row of V.
//
// For distributed training the factor matrices live in flat float64
// buffers so they can be registered directly as MALT vectors; the paper's
// configuration scatters them asynchronously with a *replace* gather —
// Hogwild extended from multicore to multi-node.
package mf

import (
	"fmt"
	"math/rand"

	"malt/internal/data"
	"malt/internal/ml/linalg"
	"malt/internal/ml/metrics"
	"malt/internal/ml/sgd"
)

// Config parameterizes a factorization.
type Config struct {
	Users, Items int
	// Rank is the latent dimensionality. Default 8.
	Rank int
	// Lambda is the L2 regularization strength. Default 0.05.
	Lambda float64
	// Eta0 is the (initial) learning rate. Default 0.01.
	Eta0 float64
	// Schedule defaults to Fixed{Eta0} — the paper evaluates both "fixed"
	// and "byiter".
	Schedule sgd.Schedule
	// GlobalBias is subtracted from ratings before factorizing (the mean
	// rating). Default 3 (the centre of 1–5 stars).
	GlobalBias float64
}

func (c Config) withDefaults() (Config, error) {
	if c.Users <= 0 || c.Items <= 0 {
		return c, fmt.Errorf("mf: Users/Items must be positive, got %d/%d", c.Users, c.Items)
	}
	if c.Rank == 0 {
		c.Rank = 8
	}
	if c.Rank < 0 {
		return c, fmt.Errorf("mf: Rank must be positive, got %d", c.Rank)
	}
	if c.Lambda == 0 {
		c.Lambda = 0.05
	}
	if c.Eta0 == 0 {
		c.Eta0 = 0.01
	}
	if c.Schedule == nil {
		c.Schedule = sgd.Fixed{Eta: c.Eta0}
	}
	if c.GlobalBias == 0 {
		c.GlobalBias = 3
	}
	return c, nil
}

// Model is one replica's factorization state. U and V wrap flat buffers
// (possibly MALT vector storage).
type Model struct {
	cfg  Config
	U, V *linalg.Matrix
	t    uint64
}

// New allocates a model with its own storage, initialized with small
// deterministic noise (seed).
func New(cfg Config, seed int64) (*Model, error) {
	cfg, err := cfg.withDefaults()
	if err != nil {
		return nil, err
	}
	m := &Model{
		cfg: cfg,
		U:   linalg.NewMatrix(cfg.Users, cfg.Rank),
		V:   linalg.NewMatrix(cfg.Items, cfg.Rank),
	}
	m.Init(seed)
	return m, nil
}

// NewOver builds a model over caller-provided flat buffers: uBuf must have
// Users×Rank elements and vBuf Items×Rank. Distributed replicas pass MALT
// vector storage here so scatters ship the factors without copies.
// Buffers are not re-initialized; call Init.
func NewOver(cfg Config, uBuf, vBuf []float64) (*Model, error) {
	cfg, err := cfg.withDefaults()
	if err != nil {
		return nil, err
	}
	if len(uBuf) != cfg.Users*cfg.Rank {
		return nil, fmt.Errorf("mf: U buffer is %d elements, want %d", len(uBuf), cfg.Users*cfg.Rank)
	}
	if len(vBuf) != cfg.Items*cfg.Rank {
		return nil, fmt.Errorf("mf: V buffer is %d elements, want %d", len(vBuf), cfg.Items*cfg.Rank)
	}
	return &Model{
		cfg: cfg,
		U:   linalg.WrapMatrix(cfg.Users, cfg.Rank, uBuf),
		V:   linalg.WrapMatrix(cfg.Items, cfg.Rank, vBuf),
	}, nil
}

// Init fills the factors with small deterministic noise.
func (m *Model) Init(seed int64) {
	rng := rand.New(rand.NewSource(seed))
	scale := 0.1
	for i := range m.U.Data {
		m.U.Data[i] = rng.NormFloat64() * scale
	}
	for i := range m.V.Data {
		m.V.Data[i] = rng.NormFloat64() * scale
	}
}

// Config returns the (defaulted) configuration.
func (m *Model) Config() Config { return m.cfg }

// Steps returns the number of SGD steps taken.
func (m *Model) Steps() uint64 { return m.t }

// Predict returns the predicted score for (user, item).
func (m *Model) Predict(user, item int32) float64 {
	return m.cfg.GlobalBias + linalg.Dot(m.U.Row(int(user)), m.V.Row(int(item)))
}

// Step performs one SGD update for a single rating:
//
//	e = r − bias − u·v
//	u += η(e·v − λ·u);  v += η(e·u − λ·v)
func (m *Model) Step(r data.Rating) {
	eta := m.cfg.Schedule.Rate(m.t)
	m.t++
	u := m.U.Row(int(r.User))
	v := m.V.Row(int(r.Item))
	e := r.Score - m.cfg.GlobalBias - linalg.Dot(u, v)
	lam := m.cfg.Lambda
	for k := range u {
		uk, vk := u[k], v[k]
		u[k] += eta * (e*vk - lam*uk)
		v[k] += eta * (e*uk - lam*vk)
	}
}

// TrainEpoch runs Step over every rating once, in order.
func (m *Model) TrainEpoch(ratings []data.Rating) {
	for _, r := range ratings {
		m.Step(r)
	}
}

// RMSE evaluates the model over ratings.
func (m *Model) RMSE(ratings []data.Rating) float64 {
	return metrics.RMSE(ratings, m.Predict)
}
