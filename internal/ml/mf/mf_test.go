package mf

import (
	"testing"

	"malt/internal/data"
)

func genRatings(t *testing.T, n int) *data.RatingsDataset {
	t.Helper()
	spec := data.NetflixSpec(1)
	spec.Users, spec.Items = 200, 80
	spec.Train, spec.Test = n, n/10
	ds, err := data.GenerateRatings(spec)
	if err != nil {
		t.Fatal(err)
	}
	return ds
}

func TestConfigDefaults(t *testing.T) {
	m, err := New(Config{Users: 10, Items: 5}, 1)
	if err != nil {
		t.Fatal(err)
	}
	cfg := m.Config()
	if cfg.Rank == 0 || cfg.Lambda == 0 || cfg.Eta0 == 0 || cfg.Schedule == nil || cfg.GlobalBias == 0 {
		t.Fatalf("defaults missing: %+v", cfg)
	}
	if _, err := New(Config{Users: 0, Items: 5}, 1); err == nil {
		t.Fatal("Users=0 should fail")
	}
	if _, err := New(Config{Users: 1, Items: 1, Rank: -1}, 1); err == nil {
		t.Fatal("negative rank should fail")
	}
}

func TestSGDReducesRMSE(t *testing.T) {
	ds := genRatings(t, 20000)
	m, err := New(Config{Users: ds.Users, Items: ds.Items, Rank: ds.Rank, Eta0: 0.02}, 7)
	if err != nil {
		t.Fatal(err)
	}
	initial := m.RMSE(ds.Test)
	for epoch := 0; epoch < 10; epoch++ {
		m.TrainEpoch(ds.Train)
	}
	final := m.RMSE(ds.Test)
	if final >= initial {
		t.Fatalf("RMSE did not decrease: %v -> %v", initial, final)
	}
	// The generator's noise floor is 0.3; getting within 3x of it means
	// the factorization actually fits the low-rank structure.
	if final > 0.9 {
		t.Fatalf("final RMSE %v too high (initial %v)", final, initial)
	}
	if m.Steps() != 10*uint64(len(ds.Train)) {
		t.Fatalf("Steps = %d", m.Steps())
	}
}

func TestStepReducesPointError(t *testing.T) {
	m, _ := New(Config{Users: 4, Items: 4, Rank: 2, Eta0: 0.1}, 3)
	r := data.Rating{User: 1, Item: 2, Score: 5}
	before := m.Predict(1, 2) - 5
	for i := 0; i < 50; i++ {
		m.Step(r)
	}
	after := m.Predict(1, 2) - 5
	if abs(after) >= abs(before) {
		t.Fatalf("pointwise error did not shrink: %v -> %v", before, after)
	}
}

func TestNewOverSharesBuffers(t *testing.T) {
	cfg := Config{Users: 3, Items: 2, Rank: 2}
	u := make([]float64, 3*2)
	v := make([]float64, 2*2)
	m, err := NewOver(cfg, u, v)
	if err != nil {
		t.Fatal(err)
	}
	m.Init(1)
	if u[0] == 0 && u[1] == 0 && v[0] == 0 {
		t.Fatal("Init did not write through to buffers")
	}
	u[0] = 42
	if m.U.At(0, 0) != 42 {
		t.Fatal("model does not share buffer storage")
	}
	if _, err := NewOver(cfg, make([]float64, 5), v); err == nil {
		t.Fatal("wrong buffer size should fail")
	}
}

func TestInitDeterministic(t *testing.T) {
	a, _ := New(Config{Users: 5, Items: 5}, 9)
	b, _ := New(Config{Users: 5, Items: 5}, 9)
	for i := range a.U.Data {
		if a.U.Data[i] != b.U.Data[i] {
			t.Fatal("Init not deterministic")
		}
	}
}

func abs(x float64) float64 {
	if x < 0 {
		return -x
	}
	return x
}
