// Package svm implements the linear support-vector machine trained with
// stochastic gradient descent, after Bottou's SVM-SGD — the workhorse
// application of the paper (document classification, image classification,
// DNA, webspam, genome detection all use it).
//
// The trainer exposes the two primitives the distributed loops compose:
//
//   - Step: one serial SGD update (Algorithm 1 of the paper);
//   - BatchGradient: the average (sub)gradient over a communication batch,
//     which "gradavg" configurations scatter to peers before applying.
package svm

import (
	"fmt"

	"malt/internal/data"
	"malt/internal/ml/linalg"
	"malt/internal/ml/metrics"
	"malt/internal/ml/sgd"
)

// Config parameterizes a trainer.
type Config struct {
	// Dim is the feature dimensionality (model size).
	Dim int
	// Lambda is the L2 regularization strength. Default 1e-4; pass a
	// negative value for no regularization at all (Bottou's SVM-SGD keeps
	// the L2 shrink factored out of the weight vector as a scalar, so its
	// per-batch weight deltas touch only the batch's features; distributed
	// experiments that need sparse wire deltas model that by training the
	// unregularized objective).
	Lambda float64
	// Eta0 is the initial learning rate. Default 1.
	Eta0 float64
	// Loss defaults to hinge.
	Loss sgd.Loss
	// Schedule defaults to Bottou's inverse scaling in Lambda.
	Schedule sgd.Schedule
}

func (c Config) withDefaults() (Config, error) {
	if c.Dim <= 0 {
		return c, fmt.Errorf("svm: Dim must be positive, got %d", c.Dim)
	}
	if c.Lambda == 0 {
		c.Lambda = 1e-4
	} else if c.Lambda < 0 {
		c.Lambda = 0
	}
	if c.Eta0 == 0 {
		c.Eta0 = 1
	}
	if c.Loss == nil {
		c.Loss = sgd.Hinge{}
	}
	if c.Schedule == nil {
		decay := c.Lambda
		if decay == 0 {
			decay = 1e-4 // keep a 1/t decay even without regularization
		}
		c.Schedule = sgd.InvScaling{Eta0: c.Eta0, Lambda: decay}
	}
	return c, nil
}

// Trainer holds the SGD state for one model replica. It is not safe for
// concurrent use; each rank owns one.
type Trainer struct {
	cfg Config
	t   uint64 // global step count (drives the schedule)
}

// New returns a trainer for the configuration.
func New(cfg Config) (*Trainer, error) {
	cfg, err := cfg.withDefaults()
	if err != nil {
		return nil, err
	}
	return &Trainer{cfg: cfg}, nil
}

// Config returns the (defaulted) configuration.
func (tr *Trainer) Config() Config { return tr.cfg }

// Steps returns the number of SGD steps taken so far.
func (tr *Trainer) Steps() uint64 { return tr.t }

// SetSteps overrides the step counter (used when replicas resume or when a
// survivor adopts extra work after a failure).
func (tr *Trainer) SetSteps(t uint64) { tr.t = t }

// Step performs one SGD update on w for a single example:
//
//	w ← (1 − η·λ)·w − η·∂loss
//
// The regularization shrink touches every coordinate; the loss term only
// touches the example's non-zeros, so a step is O(nnz + dim·λ-shrink). For
// the sparse workloads this matches SVM-SGD's cost profile.
func (tr *Trainer) Step(w []float64, ex data.Example) {
	eta := tr.cfg.Schedule.Rate(tr.t)
	tr.t++
	p := ex.Features.DotDense(w)
	g := tr.cfg.Loss.Deriv(p, ex.Label)
	if shrink := 1 - eta*tr.cfg.Lambda; shrink != 1 {
		linalg.Scale(shrink, w)
	}
	if g != 0 {
		ex.Features.AxpyDense(-eta*g, w)
	}
}

// TrainEpoch runs Step over every example once, in order.
func (tr *Trainer) TrainEpoch(w []float64, examples []data.Example) {
	for _, ex := range examples {
		tr.Step(w, ex)
	}
}

// BatchGradient computes into grad the average regularized (sub)gradient
// of the batch at w, without modifying w:
//
//	grad = λ·w + (1/|batch|) Σ ∂loss(w·x, y)·x
//
// Distributed "gradavg" training scatters this and applies the averaged
// result. grad must have length Dim.
func (tr *Trainer) BatchGradient(grad, w []float64, batch []data.Example) {
	if len(grad) != tr.cfg.Dim {
		panic(fmt.Sprintf("svm: grad length %d != dim %d", len(grad), tr.cfg.Dim))
	}
	linalg.Zero(grad)
	if len(batch) == 0 {
		return
	}
	inv := 1 / float64(len(batch))
	for _, ex := range batch {
		p := ex.Features.DotDense(w)
		if g := tr.cfg.Loss.Deriv(p, ex.Label); g != 0 {
			ex.Features.AxpyDense(g*inv, grad)
		}
	}
	linalg.Axpy(tr.cfg.Lambda, w, grad)
}

// ApplyGradient performs w ← w − η_t·grad and advances the schedule by the
// batch size (each batch example counts as one schedule step, matching the
// serial trainer's decay).
func (tr *Trainer) ApplyGradient(w, grad []float64, batchSize int) {
	eta := tr.cfg.Schedule.Rate(tr.t)
	tr.t += uint64(batchSize)
	linalg.Axpy(-eta, grad, w)
}

// Loss evaluates the regularized mean loss of w over the examples.
func (tr *Trainer) Loss(w []float64, examples []data.Example) float64 {
	return metrics.MeanLoss(w, examples, tr.cfg.Loss, tr.cfg.Lambda)
}

// Accuracy evaluates sign-agreement of w over the examples.
func (tr *Trainer) Accuracy(w []float64, examples []data.Example) float64 {
	return metrics.Accuracy(w, examples)
}
