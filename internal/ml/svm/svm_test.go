package svm

import (
	"math"
	"testing"

	"malt/internal/data"
	"malt/internal/ml/linalg"
	"malt/internal/ml/sgd"
)

func genData(t *testing.T, dim, n int, noise float64) *data.Dataset {
	t.Helper()
	ds, err := data.GenerateClassification(data.ClassificationSpec{
		Name: "test", Dim: dim, Train: n, Test: n / 4, NNZ: dim / 10,
		Noise: noise, Seed: 11,
	})
	if err != nil {
		t.Fatal(err)
	}
	return ds
}

func TestConfigDefaults(t *testing.T) {
	tr, err := New(Config{Dim: 10})
	if err != nil {
		t.Fatal(err)
	}
	cfg := tr.Config()
	if cfg.Lambda == 0 || cfg.Eta0 == 0 || cfg.Loss == nil || cfg.Schedule == nil {
		t.Fatalf("defaults missing: %+v", cfg)
	}
	if _, err := New(Config{Dim: 0}); err == nil {
		t.Fatal("Dim=0 should fail")
	}
}

func TestSerialSGDConverges(t *testing.T) {
	ds := genData(t, 100, 2000, 0.02)
	tr, err := New(Config{Dim: ds.Dim, Lambda: 1e-4})
	if err != nil {
		t.Fatal(err)
	}
	w := make([]float64, ds.Dim)
	initial := tr.Loss(w, ds.Test)
	for epoch := 0; epoch < 5; epoch++ {
		tr.TrainEpoch(w, ds.Train)
	}
	final := tr.Loss(w, ds.Test)
	if final >= initial {
		t.Fatalf("loss did not decrease: %v -> %v", initial, final)
	}
	if acc := tr.Accuracy(w, ds.Test); acc < 0.85 {
		t.Fatalf("test accuracy %v too low", acc)
	}
	if tr.Steps() != 5*uint64(len(ds.Train)) {
		t.Fatalf("Steps = %d", tr.Steps())
	}
}

func TestStepMovesTowardLabel(t *testing.T) {
	tr, _ := New(Config{Dim: 4, Lambda: 0})
	w := make([]float64, 4)
	ex := data.Example{Features: linalg.FromMap(map[int32]float64{1: 1}), Label: 1}
	tr.Step(w, ex)
	if w[1] <= 0 {
		t.Fatalf("w[1] = %v, want positive after positive example", w[1])
	}
	if w[0] != 0 {
		t.Fatal("untouched coordinates must stay zero when lambda=0")
	}
}

func TestStepRegularizationShrinks(t *testing.T) {
	tr, _ := New(Config{Dim: 2, Lambda: 0.1, Eta0: 0.5, Schedule: sgd.Fixed{Eta: 0.5}})
	w := []float64{10, 10}
	// Confident correct prediction: only the shrink applies.
	ex := data.Example{Features: linalg.FromMap(map[int32]float64{0: 1}), Label: 1}
	tr.Step(w, ex)
	if w[1] >= 10 {
		t.Fatalf("w[1] = %v, expected shrink", w[1])
	}
	want := 10 * (1 - 0.5*0.1)
	if math.Abs(w[1]-want) > 1e-12 {
		t.Fatalf("w[1] = %v, want %v", w[1], want)
	}
}

func TestBatchGradientMatchesManual(t *testing.T) {
	tr, _ := New(Config{Dim: 3, Lambda: 0.1})
	w := []float64{0.5, 0, 0}
	batch := []data.Example{
		{Features: linalg.FromMap(map[int32]float64{0: 1}), Label: 1},  // p=0.5, margin violated: grad -x
		{Features: linalg.FromMap(map[int32]float64{1: 1}), Label: -1}, // p=0, violated: grad +x
	}
	grad := make([]float64, 3)
	tr.BatchGradient(grad, w, batch)
	// avg of (-1,0,0) and (0,1,0) = (-0.5, 0.5, 0), plus λw = (0.05,0,0).
	want := []float64{-0.45, 0.5, 0}
	for i := range want {
		if math.Abs(grad[i]-want[i]) > 1e-12 {
			t.Fatalf("grad = %v, want %v", grad, want)
		}
	}
	// w unchanged by BatchGradient.
	if w[0] != 0.5 || w[1] != 0 {
		t.Fatal("BatchGradient modified w")
	}
}

func TestBatchGradientEmptyBatch(t *testing.T) {
	tr, _ := New(Config{Dim: 2})
	grad := []float64{9, 9}
	tr.BatchGradient(grad, []float64{1, 1}, nil)
	if grad[0] != 0 || grad[1] != 0 {
		t.Fatalf("empty batch grad = %v, want zeros", grad)
	}
}

func TestBatchGradientPanicsOnWrongDim(t *testing.T) {
	tr, _ := New(Config{Dim: 3})
	defer func() {
		if recover() == nil {
			t.Fatal("wrong grad length should panic")
		}
	}()
	tr.BatchGradient(make([]float64, 2), make([]float64, 3), nil)
}

func TestApplyGradientAdvancesSchedule(t *testing.T) {
	tr, _ := New(Config{Dim: 2, Schedule: sgd.Fixed{Eta: 0.1}})
	w := []float64{1, 1}
	tr.ApplyGradient(w, []float64{1, 0}, 500)
	if math.Abs(w[0]-0.9) > 1e-12 {
		t.Fatalf("w[0] = %v", w[0])
	}
	if tr.Steps() != 500 {
		t.Fatalf("Steps = %d, want 500", tr.Steps())
	}
}

func TestBatchTrainingConverges(t *testing.T) {
	// Mini-batch gradient descent (the distributed inner loop run
	// serially) must also converge.
	ds := genData(t, 100, 2000, 0.02)
	tr, _ := New(Config{Dim: ds.Dim, Lambda: 1e-4})
	w := make([]float64, ds.Dim)
	grad := make([]float64, ds.Dim)
	const cb = 50
	for epoch := 0; epoch < 8; epoch++ {
		for lo := 0; lo+cb <= len(ds.Train); lo += cb {
			tr.BatchGradient(grad, w, ds.Train[lo:lo+cb])
			tr.ApplyGradient(w, grad, cb)
		}
	}
	if acc := tr.Accuracy(w, ds.Test); acc < 0.8 {
		t.Fatalf("batch training accuracy %v too low", acc)
	}
}

func TestSetSteps(t *testing.T) {
	tr, _ := New(Config{Dim: 2})
	tr.SetSteps(100)
	if tr.Steps() != 100 {
		t.Fatal("SetSteps did not apply")
	}
}

func TestNegativeLambdaDisablesRegularization(t *testing.T) {
	tr, err := New(Config{Dim: 4, Lambda: -1, Schedule: sgd.Fixed{Eta: 0.5}})
	if err != nil {
		t.Fatal(err)
	}
	if tr.Config().Lambda != 0 {
		t.Fatalf("Lambda = %v, want 0", tr.Config().Lambda)
	}
	// With no regularization, a confident correct prediction leaves w
	// untouched — no shrink — so per-batch deltas stay sparse.
	w := []float64{10, 10, 10, 10}
	ex := data.Example{Features: linalg.FromMap(map[int32]float64{0: 1}), Label: 1}
	tr.Step(w, ex)
	if w[1] != 10 || w[3] != 10 {
		t.Fatalf("unregularized step shrank untouched coordinates: %v", w)
	}
	// Default schedule still decays when built from a negative lambda.
	tr2, _ := New(Config{Dim: 2, Lambda: -1})
	if r0, r1 := tr2.Config().Schedule.Rate(0), tr2.Config().Schedule.Rate(100000); r1 >= r0 {
		t.Fatalf("schedule does not decay: %v -> %v", r0, r1)
	}
}
