package nn

import (
	"math"
	"testing"

	"malt/internal/data"
	"malt/internal/ml/linalg"
	"malt/internal/ml/sgd"
)

func genClicks(t *testing.T, n int) *data.Dataset {
	t.Helper()
	spec := data.KDD12Spec(1)
	spec.Dim = 400
	spec.Train, spec.Test = n, n/5
	ds, err := data.GenerateClicks(spec)
	if err != nil {
		t.Fatal(err)
	}
	return ds
}

func TestLayerSizes(t *testing.T) {
	sizes, err := LayerSizes(Config{Input: 100, H1: 8, H2: 4})
	if err != nil {
		t.Fatal(err)
	}
	want := []int{8*100 + 8, 4*8 + 4, 4 + 1}
	for i := range want {
		if sizes[i] != want[i] {
			t.Fatalf("sizes = %v, want %v", sizes, want)
		}
	}
	if _, err := LayerSizes(Config{Input: 0}); err == nil {
		t.Fatal("Input=0 should fail")
	}
}

func TestNewValidation(t *testing.T) {
	if _, err := New(Config{Input: -1}, 1); err == nil {
		t.Fatal("negative input should fail")
	}
	if _, err := NewOver(Config{Input: 10}, make([][]float64, 2)); err == nil {
		t.Fatal("wrong buffer count should fail")
	}
	cfg := Config{Input: 10, H1: 4, H2: 2}
	sizes, _ := LayerSizes(cfg)
	bufs := [][]float64{make([]float64, sizes[0]), make([]float64, sizes[1]), make([]float64, sizes[2]+1)}
	if _, err := NewOver(cfg, bufs); err == nil {
		t.Fatal("wrong buffer size should fail")
	}
}

func TestInitDeterministicAndScoreFinite(t *testing.T) {
	a, err := New(Config{Input: 50, H1: 8, H2: 4}, 5)
	if err != nil {
		t.Fatal(err)
	}
	b, _ := New(Config{Input: 50, H1: 8, H2: 4}, 5)
	for i := 0; i < NumLayers; i++ {
		pa, pb := a.Params(i), b.Params(i)
		for j := range pa {
			if pa[j] != pb[j] {
				t.Fatal("Init not deterministic")
			}
		}
	}
	x := linalg.FromMap(map[int32]float64{3: 1, 17: -0.5})
	s := a.Score(x)
	if math.IsNaN(s) || math.IsInf(s, 0) {
		t.Fatalf("Score = %v", s)
	}
}

func TestParamsShareStorage(t *testing.T) {
	cfg := Config{Input: 10, H1: 4, H2: 2}
	sizes, _ := LayerSizes(cfg)
	bufs := make([][]float64, NumLayers)
	for i, s := range sizes {
		bufs[i] = make([]float64, s)
	}
	n, err := NewOver(cfg, bufs)
	if err != nil {
		t.Fatal(err)
	}
	n.Init(1)
	if bufs[0][0] == 0 && bufs[0][1] == 0 {
		t.Fatal("Init did not write through")
	}
	for i := range bufs {
		if &n.Params(i)[0] != &bufs[i][0] {
			t.Fatal("Params does not alias provided buffers")
		}
	}
}

func TestStepReducesLossOnSingleExample(t *testing.T) {
	n, _ := New(Config{Input: 20, H1: 8, H2: 4, Eta0: 0.1, Lambda: 0}, 3)
	ex := data.Example{Features: linalg.FromMap(map[int32]float64{1: 1, 5: 0.5}), Label: 1}
	before := n.MeanLoss([]data.Example{ex})
	for i := 0; i < 100; i++ {
		n.Step(ex)
	}
	after := n.MeanLoss([]data.Example{ex})
	if after >= before {
		t.Fatalf("loss did not decrease: %v -> %v", before, after)
	}
	if after > 0.2 {
		t.Fatalf("single example not fit: loss %v", after)
	}
}

func TestTrainingImprovesAUC(t *testing.T) {
	ds := genClicks(t, 4000)
	n, err := New(Config{Input: ds.Dim, H1: 32, H2: 16, Eta0: 0.1}, 7)
	if err != nil {
		t.Fatal(err)
	}
	initial := n.AUC(ds.Test)
	for epoch := 0; epoch < 6; epoch++ {
		n.TrainEpoch(ds.Train)
	}
	final := n.AUC(ds.Test)
	if final <= initial+0.05 {
		t.Fatalf("AUC did not improve: %v -> %v", initial, final)
	}
	if final < 0.7 {
		t.Fatalf("final AUC %v too low", final)
	}
	if n.Steps() != 6*uint64(len(ds.Train)) {
		t.Fatalf("Steps = %d", n.Steps())
	}
}

func TestGradientNumericCheck(t *testing.T) {
	// Numeric gradient check on a tiny network: perturb one weight in each
	// layer and compare the loss delta against the SGD update direction.
	cfg := Config{Input: 6, H1: 3, H2: 2, Eta0: 1e-3, Lambda: 0}
	ex := data.Example{Features: linalg.FromMap(map[int32]float64{0: 1, 3: -0.7}), Label: -1}

	for layer := 0; layer < NumLayers; layer++ {
		n, _ := New(cfg, 21)
		// Analytic: loss gradient wrt a parameter ≈ -(Δparam)/η after one
		// Step from a frozen copy.
		before := append([]float64(nil), n.Params(layer)...)
		lossBefore := n.MeanLoss([]data.Example{ex})
		n.Step(ex)
		after := n.Params(layer)

		// Pick the parameter with the largest movement in this layer.
		best, bestDelta := -1, 0.0
		for i := range after {
			if d := math.Abs(after[i] - before[i]); d > bestDelta {
				best, bestDelta = i, d
			}
		}
		if best < 0 {
			t.Fatalf("layer %d: no parameter moved", layer)
		}
		analytic := -(after[best] - before[best]) / cfg.Eta0

		// Numeric: finite difference on a fresh network.
		m, _ := New(cfg, 21)
		const h = 1e-6
		m.Params(layer)[best] = before[best] + h
		lossUp := m.MeanLoss([]data.Example{ex})
		m.Params(layer)[best] = before[best] - h
		lossDown := m.MeanLoss([]data.Example{ex})
		numeric := (lossUp - lossDown) / (2 * h)

		if math.Abs(numeric-analytic) > 1e-3*(1+math.Abs(numeric)) {
			t.Fatalf("layer %d param %d: numeric %v vs analytic %v (loss %v)",
				layer, best, numeric, analytic, lossBefore)
		}
	}
}

func TestZeroDerivSkipsUpdate(t *testing.T) {
	// Hinge loss with a confident correct prediction has zero derivative:
	// Step must leave parameters untouched (no regularization applied).
	n, _ := New(Config{Input: 4, H1: 2, H2: 2, Lambda: 0.1, Loss: sgd.Hinge{}}, 2)
	// Find the network's own prediction and feed it as a confident label.
	x := linalg.FromMap(map[int32]float64{0: 1})
	_ = n.Score(x)
	before := append([]float64(nil), n.Params(0)...)
	// Construct a label the model already classifies with huge margin by
	// scaling the output layer.
	w3 := n.Params(2)
	for i := range w3 {
		w3[i] *= 1000
	}
	label := 1.0
	if n.Score(x) < 0 {
		label = -1
	}
	cfgLoss := n.Config().Loss
	if d := cfgLoss.Deriv(n.Score(x), label); math.Abs(d) > 1e-6 {
		t.Skipf("could not construct zero-derivative case (deriv %v)", d)
	}
	n.Step(data.Example{Features: x, Label: label})
	for i := range before {
		if n.Params(0)[i] != before[i] {
			t.Fatal("Step updated parameters despite zero loss derivative")
		}
	}
}
