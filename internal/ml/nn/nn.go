// Package nn implements the three-layer fully-connected neural network of
// the paper's click-prediction workload (supervised semantic indexing over
// KDD Cup 2012 data). The architecture is sparse-input → tanh hidden →
// tanh hidden → linear score, trained with logistic loss over ±1 click
// labels.
//
// Each layer's parameters (weights then biases) live in one flat float64
// buffer so that, as the paper requires, "each layer of parameters is
// represented using a separate maltGradient" — a distributed replica
// passes MALT vector storage to NewOver and every scatter ships a whole
// layer with no marshalling.
package nn

import (
	"fmt"
	"math"
	"math/rand"

	"malt/internal/data"
	"malt/internal/ml/linalg"
	"malt/internal/ml/metrics"
	"malt/internal/ml/sgd"
)

// Config parameterizes the network.
type Config struct {
	// Input is the sparse input dimensionality.
	Input int
	// H1 and H2 are the hidden layer widths. Defaults 64 and 32.
	H1, H2 int
	// Eta0 is the (initial) learning rate. Default 0.05.
	Eta0 float64
	// Lambda is the L2 regularization strength. Default 1e-5.
	Lambda float64
	// Loss defaults to logistic.
	Loss sgd.Loss
	// Schedule defaults to Fixed{Eta0}.
	Schedule sgd.Schedule
}

func (c Config) withDefaults() (Config, error) {
	if c.Input <= 0 {
		return c, fmt.Errorf("nn: Input must be positive, got %d", c.Input)
	}
	if c.H1 == 0 {
		c.H1 = 64
	}
	if c.H2 == 0 {
		c.H2 = 32
	}
	if c.H1 < 0 || c.H2 < 0 {
		return c, fmt.Errorf("nn: hidden sizes must be positive, got %d/%d", c.H1, c.H2)
	}
	if c.Eta0 == 0 {
		c.Eta0 = 0.05
	}
	if c.Lambda == 0 {
		c.Lambda = 1e-5
	}
	if c.Loss == nil {
		c.Loss = sgd.Logistic{}
	}
	if c.Schedule == nil {
		c.Schedule = sgd.Fixed{Eta: c.Eta0}
	}
	return c, nil
}

// NumLayers is the number of parameter layers (and MALT vectors) in the
// network.
const NumLayers = 3

// LayerSizes returns the flat buffer length of each layer for the given
// (defaulted) shape: weights out×in plus out biases.
func LayerSizes(cfg Config) ([]int, error) {
	cfg, err := cfg.withDefaults()
	if err != nil {
		return nil, err
	}
	return []int{
		cfg.H1*cfg.Input + cfg.H1,
		cfg.H2*cfg.H1 + cfg.H2,
		1*cfg.H2 + 1,
	}, nil
}

// layer views one flat buffer as weights + biases.
type layer struct {
	in, out int
	w       *linalg.Matrix
	b       []float64
	buf     []float64
}

func newLayer(in, out int, buf []float64) layer {
	return layer{
		in: in, out: out,
		w:   linalg.WrapMatrix(out, in, buf[:out*in]),
		b:   buf[out*in:],
		buf: buf,
	}
}

// Net is one replica's network. Not safe for concurrent use.
type Net struct {
	cfg    Config
	layers [NumLayers]layer
	t      uint64

	// scratch (reused across Step calls)
	z1, a1, d1 []float64
	z2, a2, d2 []float64
}

// New allocates a network with its own parameter storage, initialized with
// the given seed.
func New(cfg Config, seed int64) (*Net, error) {
	cfg2, err := cfg.withDefaults()
	if err != nil {
		return nil, err
	}
	sizes, _ := LayerSizes(cfg2)
	bufs := make([][]float64, NumLayers)
	for i, s := range sizes {
		bufs[i] = make([]float64, s)
	}
	n, err := NewOver(cfg2, bufs)
	if err != nil {
		return nil, err
	}
	n.Init(seed)
	return n, nil
}

// NewOver builds a network over caller-provided flat layer buffers (MALT
// vector storage in distributed training). Buffer lengths must match
// LayerSizes. The buffers are not initialized; call Init.
func NewOver(cfg Config, bufs [][]float64) (*Net, error) {
	cfg, err := cfg.withDefaults()
	if err != nil {
		return nil, err
	}
	sizes, _ := LayerSizes(cfg)
	if len(bufs) != NumLayers {
		return nil, fmt.Errorf("nn: need %d layer buffers, got %d", NumLayers, len(bufs))
	}
	for i, s := range sizes {
		if len(bufs[i]) != s {
			return nil, fmt.Errorf("nn: layer %d buffer is %d elements, want %d", i, len(bufs[i]), s)
		}
	}
	n := &Net{cfg: cfg}
	n.layers[0] = newLayer(cfg.Input, cfg.H1, bufs[0])
	n.layers[1] = newLayer(cfg.H1, cfg.H2, bufs[1])
	n.layers[2] = newLayer(cfg.H2, 1, bufs[2])
	n.z1 = make([]float64, cfg.H1)
	n.a1 = make([]float64, cfg.H1)
	n.d1 = make([]float64, cfg.H1)
	n.z2 = make([]float64, cfg.H2)
	n.a2 = make([]float64, cfg.H2)
	n.d2 = make([]float64, cfg.H2)
	return n, nil
}

// Init fills the parameters with scaled Xavier-style noise, deterministic
// in the seed.
func (n *Net) Init(seed int64) {
	rng := rand.New(rand.NewSource(seed))
	for li := range n.layers {
		l := &n.layers[li]
		scale := 1 / math.Sqrt(float64(l.in))
		for i := range l.w.Data {
			l.w.Data[i] = rng.NormFloat64() * scale
		}
		linalg.Zero(l.b)
	}
}

// Config returns the (defaulted) configuration.
func (n *Net) Config() Config { return n.cfg }

// Steps returns the number of SGD steps taken.
func (n *Net) Steps() uint64 { return n.t }

// Params returns layer i's flat parameter buffer (weights then biases).
func (n *Net) Params(i int) []float64 { return n.layers[i].buf }

// Score runs the forward pass and returns the raw output score.
func (n *Net) Score(x *linalg.SparseVector) float64 {
	n.layers[0].w.MulVecSparse(n.z1, x)
	linalg.Axpy(1, n.layers[0].b, n.z1)
	for i, z := range n.z1 {
		n.a1[i] = math.Tanh(z)
	}
	n.layers[1].w.MulVec(n.z2, n.a1)
	linalg.Axpy(1, n.layers[1].b, n.z2)
	for i, z := range n.z2 {
		n.a2[i] = math.Tanh(z)
	}
	return linalg.Dot(n.layers[2].w.Row(0), n.a2) + n.layers[2].b[0]
}

// Step performs one forward/backward pass and SGD update for an example.
func (n *Net) Step(ex data.Example) {
	eta := n.cfg.Schedule.Rate(n.t)
	n.t++
	out := n.Score(ex.Features)
	dOut := n.cfg.Loss.Deriv(out, ex.Label)
	if dOut == 0 {
		return
	}
	lam := n.cfg.Lambda

	// Output layer: w3 ← w3 − η(dOut·a2 + λ·w3); b3 likewise.
	w3 := n.layers[2].w.Row(0)
	// d2 = dOut·w3 ∘ (1 − a2²), computed before w3 moves.
	for i := range n.d2 {
		n.d2[i] = dOut * w3[i] * (1 - n.a2[i]*n.a2[i])
	}
	for i := range w3 {
		w3[i] -= eta * (dOut*n.a2[i] + lam*w3[i])
	}
	n.layers[2].b[0] -= eta * dOut

	// Hidden layer 2: W2 (H2×H1), d1 = W2ᵀ·d2 ∘ (1 − a1²).
	n.layers[1].w.MulVecT(n.d1, n.d2)
	for i := range n.d1 {
		n.d1[i] *= 1 - n.a1[i]*n.a1[i]
	}
	if lam != 0 {
		linalg.Scale(1-eta*lam, n.layers[1].w.Data)
	}
	n.layers[1].w.AddOuter(-eta, n.d2, n.a1)
	linalg.Axpy(-eta, n.d2, n.layers[1].b)

	// Hidden layer 1: W1 (H1×Input), sparse input outer product.
	if lam != 0 {
		linalg.Scale(1-eta*lam, n.layers[0].w.Data)
	}
	n.layers[0].w.AddOuterSparse(-eta, n.d1, ex.Features)
	linalg.Axpy(-eta, n.d1, n.layers[0].b)
}

// TrainEpoch runs Step over every example once, in order.
func (n *Net) TrainEpoch(examples []data.Example) {
	for _, ex := range examples {
		n.Step(ex)
	}
}

// MeanLoss evaluates the average pointwise loss over examples.
func (n *Net) MeanLoss(examples []data.Example) float64 {
	if len(examples) == 0 {
		return 0
	}
	var sum float64
	for _, ex := range examples {
		sum += n.cfg.Loss.Value(n.Score(ex.Features), ex.Label)
	}
	return sum / float64(len(examples))
}

// AUC evaluates the ROC area over examples (the paper's Fig 6 metric).
func (n *Net) AUC(examples []data.Example) float64 {
	return metrics.ModelAUC(examples, n.Score)
}
