package linalg

import (
	"fmt"
	"sort"
)

// SparseVector is a coordinate-list sparse vector: parallel slices of
// strictly increasing indices and their values. The zero value is an empty
// vector. Training examples for high-dimensional workloads (RCV1, webspam)
// are stored in this form; model updates may also be scattered sparsely.
type SparseVector struct {
	Idx []int32
	Val []float64
}

// NNZ returns the number of stored (non-zero) entries.
func (s *SparseVector) NNZ() int { return len(s.Idx) }

// Append adds an entry. Entries must be appended in increasing index order;
// Append panics otherwise so malformed data is caught at load time.
func (s *SparseVector) Append(idx int32, val float64) {
	if n := len(s.Idx); n > 0 && s.Idx[n-1] >= idx {
		panic(fmt.Sprintf("linalg: SparseVector.Append out of order: %d after %d", idx, s.Idx[n-1]))
	}
	s.Idx = append(s.Idx, idx)
	s.Val = append(s.Val, val)
}

// Reset truncates the vector to empty, keeping capacity.
func (s *SparseVector) Reset() {
	s.Idx = s.Idx[:0]
	s.Val = s.Val[:0]
}

// Clone returns a deep copy.
func (s *SparseVector) Clone() *SparseVector {
	c := &SparseVector{
		Idx: make([]int32, len(s.Idx)),
		Val: make([]float64, len(s.Val)),
	}
	copy(c.Idx, s.Idx)
	copy(c.Val, s.Val)
	return c
}

// MaxIndex returns the largest stored index, or -1 if empty.
func (s *SparseVector) MaxIndex() int32 {
	if len(s.Idx) == 0 {
		return -1
	}
	return s.Idx[len(s.Idx)-1]
}

// DotDense returns <s, w> for a dense w. Indices at or beyond len(w) are
// ignored, which lets a model trained with a fixed dimension tolerate rare
// overflow features in test data.
func (s *SparseVector) DotDense(w []float64) float64 {
	var sum float64
	n := int32(len(w))
	for i, idx := range s.Idx {
		if idx < n {
			sum += s.Val[i] * w[idx]
		}
	}
	return sum
}

// AxpyDense computes w += alpha * s for dense w, ignoring out-of-range
// indices (see DotDense).
func (s *SparseVector) AxpyDense(alpha float64, w []float64) {
	n := int32(len(w))
	for i, idx := range s.Idx {
		if idx < n {
			w[idx] += alpha * s.Val[i]
		}
	}
}

// Norm2 returns the Euclidean norm of the sparse vector.
func (s *SparseVector) Norm2() float64 {
	return Norm2(s.Val)
}

// ScaleSparse multiplies every stored value by alpha.
func (s *SparseVector) ScaleSparse(alpha float64) {
	Scale(alpha, s.Val)
}

// ToDense expands the vector into a dense slice of length dim. Entries with
// index ≥ dim are dropped.
func (s *SparseVector) ToDense(dim int) []float64 {
	d := make([]float64, dim)
	for i, idx := range s.Idx {
		if int(idx) < dim {
			d[idx] = s.Val[i]
		}
	}
	return d
}

// FromDense builds a sparse vector holding the non-zero entries of d.
func FromDense(d []float64) *SparseVector {
	s := &SparseVector{}
	for i, v := range d {
		if v != 0 {
			s.Idx = append(s.Idx, int32(i))
			s.Val = append(s.Val, v)
		}
	}
	return s
}

// FromMap builds a sorted sparse vector from an index→value map, dropping
// zero values.
func FromMap(m map[int32]float64) *SparseVector {
	s := &SparseVector{
		Idx: make([]int32, 0, len(m)),
		Val: make([]float64, 0, len(m)),
	}
	for idx, v := range m {
		if v != 0 {
			s.Idx = append(s.Idx, idx)
		}
	}
	sort.Slice(s.Idx, func(i, j int) bool { return s.Idx[i] < s.Idx[j] })
	for _, idx := range s.Idx {
		s.Val = append(s.Val, m[idx])
	}
	return s
}

// AddSparse returns a + b as a new sparse vector (merge of sorted indices).
func AddSparse(a, b *SparseVector) *SparseVector {
	out := &SparseVector{
		Idx: make([]int32, 0, len(a.Idx)+len(b.Idx)),
		Val: make([]float64, 0, len(a.Idx)+len(b.Idx)),
	}
	i, j := 0, 0
	for i < len(a.Idx) && j < len(b.Idx) {
		switch {
		case a.Idx[i] < b.Idx[j]:
			out.Idx = append(out.Idx, a.Idx[i])
			out.Val = append(out.Val, a.Val[i])
			i++
		case a.Idx[i] > b.Idx[j]:
			out.Idx = append(out.Idx, b.Idx[j])
			out.Val = append(out.Val, b.Val[j])
			j++
		default:
			if v := a.Val[i] + b.Val[j]; v != 0 {
				out.Idx = append(out.Idx, a.Idx[i])
				out.Val = append(out.Val, v)
			}
			i++
			j++
		}
	}
	for ; i < len(a.Idx); i++ {
		out.Idx = append(out.Idx, a.Idx[i])
		out.Val = append(out.Val, a.Val[i])
	}
	for ; j < len(b.Idx); j++ {
		out.Idx = append(out.Idx, b.Idx[j])
		out.Val = append(out.Val, b.Val[j])
	}
	return out
}

// DotSparse returns the inner product of two sorted sparse vectors.
func DotSparse(a, b *SparseVector) float64 {
	var sum float64
	i, j := 0, 0
	for i < len(a.Idx) && j < len(b.Idx) {
		switch {
		case a.Idx[i] < b.Idx[j]:
			i++
		case a.Idx[i] > b.Idx[j]:
			j++
		default:
			sum += a.Val[i] * b.Val[j]
			i++
			j++
		}
	}
	return sum
}
