package linalg

import (
	"math/rand"
	"testing"
)

func benchVectors(n int) ([]float64, []float64) {
	rng := rand.New(rand.NewSource(1))
	a := make([]float64, n)
	b := make([]float64, n)
	for i := range a {
		a[i] = rng.NormFloat64()
		b[i] = rng.NormFloat64()
	}
	return a, b
}

func BenchmarkDot(b *testing.B) {
	x, y := benchVectors(47152) // RCV1-sized model
	b.SetBytes(47152 * 8)
	var sink float64
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		sink = Dot(x, y)
	}
	_ = sink
}

func BenchmarkAxpy(b *testing.B) {
	x, y := benchVectors(47152)
	b.SetBytes(47152 * 8)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		Axpy(0.001, x, y)
	}
}

func BenchmarkSparseDotDense(b *testing.B) {
	w, _ := benchVectors(47152)
	sv := &SparseVector{}
	for i := int32(0); i < 47152; i += 628 { // ~75 nnz, RCV1-like
		sv.Append(i, 1.5)
	}
	var sink float64
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		sink = sv.DotDense(w)
	}
	_ = sink
}

func BenchmarkSparseAxpyDense(b *testing.B) {
	w, _ := benchVectors(47152)
	sv := &SparseVector{}
	for i := int32(0); i < 47152; i += 628 {
		sv.Append(i, 1.5)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		sv.AxpyDense(0.01, w)
	}
}

func BenchmarkAverageInto(b *testing.B) {
	const dim, peers = 47152, 9
	dst := make([]float64, dim)
	vecs := make([][]float64, peers)
	for i := range vecs {
		vecs[i], _ = benchVectors(dim)
	}
	b.SetBytes(int64(dim * 8 * peers))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		AverageInto(dst, vecs...)
	}
}

func BenchmarkMatrixMulVecSparse(b *testing.B) {
	m := NewMatrix(64, 10000) // SSI first layer
	for i := range m.Data {
		m.Data[i] = 0.01
	}
	sv := &SparseVector{}
	for i := int32(0); i < 10000; i += 333 { // ~30 nnz
		sv.Append(i, 0.5)
	}
	dst := make([]float64, 64)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		m.MulVecSparse(dst, sv)
	}
}
