// Package linalg provides the small dense/sparse linear-algebra kernels
// that the MALT machine-learning substrates (SVM, matrix factorization,
// neural networks) are built on.
//
// The package deliberately stays close to BLAS level 1: vectors are plain
// float64 slices (dense) or coordinate lists (sparse), and every routine is
// allocation-free unless it must grow its destination. Model parameters in
// MALT are exchanged between replicas as raw float64 payloads, so keeping
// the representation flat makes serialization into dstorm segments a copy.
package linalg

import (
	"errors"
	"fmt"
	"math"
)

// ErrDimensionMismatch is returned (or wrapped) by operations whose operand
// lengths disagree.
var ErrDimensionMismatch = errors.New("linalg: dimension mismatch")

// Dot returns the inner product of two equal-length dense vectors.
// It panics if the lengths differ; the training loops guarantee shape.
func Dot(a, b []float64) float64 {
	if len(a) != len(b) {
		panic(dimErr("Dot", len(a), len(b)))
	}
	var s float64
	for i, v := range a {
		s += v * b[i]
	}
	return s
}

// Axpy computes y += alpha*x in place.
func Axpy(alpha float64, x, y []float64) {
	if len(x) != len(y) {
		panic(dimErr("Axpy", len(x), len(y)))
	}
	if alpha == 0 {
		return
	}
	for i, v := range x {
		y[i] += alpha * v
	}
}

// Scale multiplies every element of x by alpha in place.
func Scale(alpha float64, x []float64) {
	for i := range x {
		x[i] *= alpha
	}
}

// Add computes dst = a + b element-wise. dst may alias a or b.
func Add(dst, a, b []float64) {
	if len(a) != len(b) || len(dst) != len(a) {
		panic(dimErr("Add", len(a), len(b)))
	}
	for i := range dst {
		dst[i] = a[i] + b[i]
	}
}

// Sub computes dst = a - b element-wise. dst may alias a or b.
func Sub(dst, a, b []float64) {
	if len(a) != len(b) || len(dst) != len(a) {
		panic(dimErr("Sub", len(a), len(b)))
	}
	for i := range dst {
		dst[i] = a[i] - b[i]
	}
}

// Copy copies src into dst (which must be the same length).
func Copy(dst, src []float64) {
	if len(dst) != len(src) {
		panic(dimErr("Copy", len(dst), len(src)))
	}
	copy(dst, src)
}

// Zero sets every element of x to 0.
func Zero(x []float64) {
	for i := range x {
		x[i] = 0
	}
}

// Norm2 returns the Euclidean norm of x.
func Norm2(x []float64) float64 {
	// Two-pass scaling is unnecessary for the magnitudes seen in model
	// training; a plain sum of squares is faster and accurate enough.
	var s float64
	for _, v := range x {
		s += v * v
	}
	return math.Sqrt(s)
}

// Norm1 returns the L1 norm of x.
func Norm1(x []float64) float64 {
	var s float64
	for _, v := range x {
		s += math.Abs(v)
	}
	return s
}

// NormInf returns the maximum absolute element of x (0 for empty x).
func NormInf(x []float64) float64 {
	var m float64
	for _, v := range x {
		if a := math.Abs(v); a > m {
			m = a
		}
	}
	return m
}

// Mean returns the arithmetic mean of x (0 for empty x).
func Mean(x []float64) float64 {
	if len(x) == 0 {
		return 0
	}
	var s float64
	for _, v := range x {
		s += v
	}
	return s / float64(len(x))
}

// AverageInto overwrites dst with the element-wise average of the given
// vectors. Every vector, and dst, must share one length. It is the default
// gather user-defined function in MALT ("gradient averaging").
func AverageInto(dst []float64, vecs ...[]float64) {
	if len(vecs) == 0 {
		Zero(dst)
		return
	}
	Zero(dst)
	for _, v := range vecs {
		if len(v) != len(dst) {
			panic(dimErr("AverageInto", len(dst), len(v)))
		}
		for i, e := range v {
			dst[i] += e
		}
	}
	Scale(1/float64(len(vecs)), dst)
}

// Clip bounds every element of x to [-limit, limit]. Gradient clipping keeps
// asynchronous replicas from exchanging exploding updates.
func Clip(x []float64, limit float64) {
	if limit <= 0 {
		return
	}
	for i, v := range x {
		if v > limit {
			x[i] = limit
		} else if v < -limit {
			x[i] = -limit
		}
	}
}

// AllFinite reports whether every element of x is neither NaN nor ±Inf.
// Fault monitors use it to trap numeric corruption before it propagates
// to peer replicas.
func AllFinite(x []float64) bool {
	for _, v := range x {
		if math.IsNaN(v) || math.IsInf(v, 0) {
			return false
		}
	}
	return true
}

func dimErr(op string, a, b int) error {
	return fmt.Errorf("%w in %s: %d vs %d", ErrDimensionMismatch, op, a, b)
}
