package linalg

import "fmt"

// Matrix is a dense row-major matrix backed by a single flat slice, so a
// whole matrix (for example one neural-network layer's weights, or the factor
// matrices in matrix factorization) can be registered as one MALT vector and
// scattered with a single copy.
type Matrix struct {
	Rows, Cols int
	Data       []float64 // len == Rows*Cols, row-major
}

// NewMatrix allocates a zeroed Rows×Cols matrix.
func NewMatrix(rows, cols int) *Matrix {
	if rows < 0 || cols < 0 {
		panic(fmt.Sprintf("linalg: NewMatrix negative shape %dx%d", rows, cols))
	}
	return &Matrix{Rows: rows, Cols: cols, Data: make([]float64, rows*cols)}
}

// WrapMatrix views data (len rows*cols) as a matrix without copying.
// Mutations through the matrix are visible in data and vice versa, which is
// how models place their parameters directly in dstorm-registered memory.
func WrapMatrix(rows, cols int, data []float64) *Matrix {
	if len(data) != rows*cols {
		panic(fmt.Sprintf("linalg: WrapMatrix %dx%d needs %d elements, got %d", rows, cols, rows*cols, len(data)))
	}
	return &Matrix{Rows: rows, Cols: cols, Data: data}
}

// At returns the element at (r, c).
func (m *Matrix) At(r, c int) float64 { return m.Data[r*m.Cols+c] }

// Set stores v at (r, c).
func (m *Matrix) Set(r, c int, v float64) { m.Data[r*m.Cols+c] = v }

// Row returns row r as a slice sharing the matrix's storage.
func (m *Matrix) Row(r int) []float64 { return m.Data[r*m.Cols : (r+1)*m.Cols] }

// Clone returns a deep copy.
func (m *Matrix) Clone() *Matrix {
	c := NewMatrix(m.Rows, m.Cols)
	copy(c.Data, m.Data)
	return c
}

// MulVec computes dst = M·x for a dense x of length Cols.
// dst must have length Rows and must not alias x.
func (m *Matrix) MulVec(dst, x []float64) {
	if len(x) != m.Cols || len(dst) != m.Rows {
		panic(fmt.Sprintf("linalg: MulVec shapes %dx%d · %d -> %d", m.Rows, m.Cols, len(x), len(dst)))
	}
	for r := 0; r < m.Rows; r++ {
		dst[r] = Dot(m.Row(r), x)
	}
}

// MulVecT computes dst = Mᵀ·x for a dense x of length Rows.
// dst must have length Cols and must not alias x.
func (m *Matrix) MulVecT(dst, x []float64) {
	if len(x) != m.Rows || len(dst) != m.Cols {
		panic(fmt.Sprintf("linalg: MulVecT shapes %dx%d ᵀ· %d -> %d", m.Rows, m.Cols, len(x), len(dst)))
	}
	Zero(dst)
	for r := 0; r < m.Rows; r++ {
		Axpy(x[r], m.Row(r), dst)
	}
}

// AddOuter accumulates M += alpha · u·vᵀ, the rank-1 update at the heart of
// back-propagation for fully-connected layers.
func (m *Matrix) AddOuter(alpha float64, u, v []float64) {
	if len(u) != m.Rows || len(v) != m.Cols {
		panic(fmt.Sprintf("linalg: AddOuter shapes %dx%d += %d·%dᵀ", m.Rows, m.Cols, len(u), len(v)))
	}
	for r := 0; r < m.Rows; r++ {
		Axpy(alpha*u[r], v, m.Row(r))
	}
}

// MulVecSparse computes dst = M·x where x is sparse over the column space.
func (m *Matrix) MulVecSparse(dst []float64, x *SparseVector) {
	if len(dst) != m.Rows {
		panic(fmt.Sprintf("linalg: MulVecSparse dst %d != rows %d", len(dst), m.Rows))
	}
	Zero(dst)
	cols := int32(m.Cols)
	for i, idx := range x.Idx {
		if idx >= cols {
			continue
		}
		v := x.Val[i]
		for r := 0; r < m.Rows; r++ {
			dst[r] += v * m.Data[r*m.Cols+int(idx)]
		}
	}
}

// AddOuterSparse accumulates M += alpha · u·xᵀ with sparse x over columns.
func (m *Matrix) AddOuterSparse(alpha float64, u []float64, x *SparseVector) {
	if len(u) != m.Rows {
		panic(fmt.Sprintf("linalg: AddOuterSparse u %d != rows %d", len(u), m.Rows))
	}
	cols := int32(m.Cols)
	for i, idx := range x.Idx {
		if idx >= cols {
			continue
		}
		v := alpha * x.Val[i]
		for r := 0; r < m.Rows; r++ {
			m.Data[r*m.Cols+int(idx)] += v * u[r]
		}
	}
}
