package linalg

import (
	"math"
	"testing"
	"testing/quick"
)

func almostEq(a, b float64) bool { return math.Abs(a-b) < 1e-9 }

func TestDot(t *testing.T) {
	if got := Dot([]float64{1, 2, 3}, []float64{4, 5, 6}); !almostEq(got, 32) {
		t.Fatalf("Dot = %v, want 32", got)
	}
	if got := Dot(nil, nil); got != 0 {
		t.Fatalf("Dot(empty) = %v, want 0", got)
	}
}

func TestDotPanicsOnMismatch(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("Dot did not panic on length mismatch")
		}
	}()
	Dot([]float64{1}, []float64{1, 2})
}

func TestAxpy(t *testing.T) {
	y := []float64{1, 1, 1}
	Axpy(2, []float64{1, 2, 3}, y)
	want := []float64{3, 5, 7}
	for i := range y {
		if !almostEq(y[i], want[i]) {
			t.Fatalf("Axpy y = %v, want %v", y, want)
		}
	}
}

func TestAxpyZeroAlphaIsNoop(t *testing.T) {
	y := []float64{1, 2}
	Axpy(0, []float64{100, 100}, y)
	if y[0] != 1 || y[1] != 2 {
		t.Fatalf("Axpy(0,...) modified y: %v", y)
	}
}

func TestScaleAndZero(t *testing.T) {
	x := []float64{2, -4}
	Scale(0.5, x)
	if x[0] != 1 || x[1] != -2 {
		t.Fatalf("Scale = %v", x)
	}
	Zero(x)
	if x[0] != 0 || x[1] != 0 {
		t.Fatalf("Zero = %v", x)
	}
}

func TestAddSub(t *testing.T) {
	dst := make([]float64, 2)
	Add(dst, []float64{1, 2}, []float64{3, 4})
	if dst[0] != 4 || dst[1] != 6 {
		t.Fatalf("Add = %v", dst)
	}
	Sub(dst, dst, []float64{1, 1})
	if dst[0] != 3 || dst[1] != 5 {
		t.Fatalf("Sub = %v", dst)
	}
}

func TestNorms(t *testing.T) {
	x := []float64{3, -4}
	if !almostEq(Norm2(x), 5) {
		t.Fatalf("Norm2 = %v", Norm2(x))
	}
	if !almostEq(Norm1(x), 7) {
		t.Fatalf("Norm1 = %v", Norm1(x))
	}
	if !almostEq(NormInf(x), 4) {
		t.Fatalf("NormInf = %v", NormInf(x))
	}
	if NormInf(nil) != 0 || Norm2(nil) != 0 {
		t.Fatal("norms of empty vector should be 0")
	}
}

func TestMean(t *testing.T) {
	if !almostEq(Mean([]float64{1, 2, 3}), 2) {
		t.Fatal("Mean wrong")
	}
	if Mean(nil) != 0 {
		t.Fatal("Mean(empty) should be 0")
	}
}

func TestAverageInto(t *testing.T) {
	dst := make([]float64, 2)
	AverageInto(dst, []float64{1, 2}, []float64{3, 4}, []float64{5, 6})
	if !almostEq(dst[0], 3) || !almostEq(dst[1], 4) {
		t.Fatalf("AverageInto = %v", dst)
	}
	AverageInto(dst)
	if dst[0] != 0 || dst[1] != 0 {
		t.Fatalf("AverageInto() should zero dst, got %v", dst)
	}
}

func TestClip(t *testing.T) {
	x := []float64{-5, 0.5, 5}
	Clip(x, 1)
	if x[0] != -1 || x[1] != 0.5 || x[2] != 1 {
		t.Fatalf("Clip = %v", x)
	}
	y := []float64{-5, 5}
	Clip(y, 0) // non-positive limit is a no-op
	if y[0] != -5 || y[1] != 5 {
		t.Fatalf("Clip(0) modified: %v", y)
	}
}

func TestAllFinite(t *testing.T) {
	if !AllFinite([]float64{1, -2, 0}) {
		t.Fatal("finite vector reported non-finite")
	}
	if AllFinite([]float64{1, math.NaN()}) {
		t.Fatal("NaN not detected")
	}
	if AllFinite([]float64{math.Inf(1)}) {
		t.Fatal("+Inf not detected")
	}
}

// Property: Dot is symmetric and bilinear in the first argument.
func TestDotProperties(t *testing.T) {
	f := func(raw []float64) bool {
		if len(raw) < 2 {
			return true
		}
		n := len(raw) / 2
		a, b := raw[:n], raw[n:2*n]
		for _, v := range raw {
			if math.IsNaN(v) || math.IsInf(v, 0) || math.Abs(v) > 1e8 {
				return true // skip pathological inputs
			}
		}
		if math.Abs(Dot(a, b)-Dot(b, a)) > 1e-6*(1+math.Abs(Dot(a, b))) {
			return false
		}
		a2 := make([]float64, n)
		copy(a2, a)
		Scale(2, a2)
		return math.Abs(Dot(a2, b)-2*Dot(a, b)) < 1e-6*(1+math.Abs(2*Dot(a, b)))
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

// Property: Norm2 satisfies the triangle inequality.
func TestNorm2Triangle(t *testing.T) {
	f := func(raw []float64) bool {
		if len(raw) < 2 {
			return true
		}
		n := len(raw) / 2
		a, b := raw[:n], raw[n:2*n]
		for _, v := range raw {
			if math.IsNaN(v) || math.IsInf(v, 0) || math.Abs(v) > 1e8 {
				return true
			}
		}
		sum := make([]float64, n)
		Add(sum, a, b)
		return Norm2(sum) <= Norm2(a)+Norm2(b)+1e-9
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}
