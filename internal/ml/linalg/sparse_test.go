package linalg

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func TestSparseAppendAndAccessors(t *testing.T) {
	var s SparseVector
	s.Append(1, 2.0)
	s.Append(5, -1.0)
	if s.NNZ() != 2 {
		t.Fatalf("NNZ = %d", s.NNZ())
	}
	if s.MaxIndex() != 5 {
		t.Fatalf("MaxIndex = %d", s.MaxIndex())
	}
	var empty SparseVector
	if empty.MaxIndex() != -1 {
		t.Fatal("empty MaxIndex should be -1")
	}
}

func TestSparseAppendOutOfOrderPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("out-of-order Append did not panic")
		}
	}()
	var s SparseVector
	s.Append(5, 1)
	s.Append(3, 1)
}

func TestSparseDotDense(t *testing.T) {
	var s SparseVector
	s.Append(0, 2)
	s.Append(3, 4)
	w := []float64{1, 10, 10, 0.5}
	if got := s.DotDense(w); !almostEq(got, 4) {
		t.Fatalf("DotDense = %v, want 4", got)
	}
	// Out-of-range indices are ignored.
	s.Append(100, 7)
	if got := s.DotDense(w); !almostEq(got, 4) {
		t.Fatalf("DotDense with overflow index = %v, want 4", got)
	}
}

func TestSparseAxpyDense(t *testing.T) {
	var s SparseVector
	s.Append(1, 3)
	w := []float64{0, 1}
	s.AxpyDense(2, w)
	if !almostEq(w[1], 7) {
		t.Fatalf("AxpyDense = %v", w)
	}
}

func TestSparseToFromDense(t *testing.T) {
	d := []float64{0, 1.5, 0, -2}
	s := FromDense(d)
	if s.NNZ() != 2 {
		t.Fatalf("NNZ = %d", s.NNZ())
	}
	back := s.ToDense(4)
	for i := range d {
		if !almostEq(back[i], d[i]) {
			t.Fatalf("round trip = %v, want %v", back, d)
		}
	}
}

func TestFromMapSorted(t *testing.T) {
	s := FromMap(map[int32]float64{7: 1, 2: 3, 5: 0})
	if s.NNZ() != 2 {
		t.Fatalf("zero values should be dropped; NNZ = %d", s.NNZ())
	}
	if s.Idx[0] != 2 || s.Idx[1] != 7 {
		t.Fatalf("indices not sorted: %v", s.Idx)
	}
}

func TestAddSparse(t *testing.T) {
	a := FromMap(map[int32]float64{0: 1, 2: 2})
	b := FromMap(map[int32]float64{1: 5, 2: -2, 3: 1})
	sum := AddSparse(a, b)
	want := map[int32]float64{0: 1, 1: 5, 3: 1} // index 2 cancels to zero
	if sum.NNZ() != len(want) {
		t.Fatalf("AddSparse NNZ = %d, want %d (%v / %v)", sum.NNZ(), len(want), sum.Idx, sum.Val)
	}
	for i, idx := range sum.Idx {
		if !almostEq(sum.Val[i], want[idx]) {
			t.Fatalf("AddSparse[%d] = %v, want %v", idx, sum.Val[i], want[idx])
		}
	}
}

func TestDotSparse(t *testing.T) {
	a := FromMap(map[int32]float64{0: 1, 2: 2, 4: 3})
	b := FromMap(map[int32]float64{2: 5, 4: -1})
	if got := DotSparse(a, b); !almostEq(got, 7) {
		t.Fatalf("DotSparse = %v, want 7", got)
	}
}

func TestSparseClone(t *testing.T) {
	a := FromMap(map[int32]float64{1: 2})
	c := a.Clone()
	c.Val[0] = 99
	if a.Val[0] != 2 {
		t.Fatal("Clone shares storage")
	}
}

func TestSparseReset(t *testing.T) {
	a := FromMap(map[int32]float64{1: 2, 3: 4})
	a.Reset()
	if a.NNZ() != 0 {
		t.Fatalf("Reset NNZ = %d", a.NNZ())
	}
	a.Append(0, 1) // must still be usable
	if a.NNZ() != 1 {
		t.Fatal("Append after Reset failed")
	}
}

// Property: sparse·dense dot agrees with the dense computation.
func TestSparseDotMatchesDense(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		dim := 1 + r.Intn(64)
		d := make([]float64, dim)
		w := make([]float64, dim)
		for i := range d {
			if r.Float64() < 0.3 {
				d[i] = r.NormFloat64()
			}
			w[i] = r.NormFloat64()
		}
		s := FromDense(d)
		return math.Abs(s.DotDense(w)-Dot(d, w)) < 1e-9
	}
	cfg := &quick.Config{MaxCount: 100, Rand: rng}
	if err := quick.Check(f, cfg); err != nil {
		t.Fatal(err)
	}
}

// Property: AddSparse agrees with dense addition.
func TestAddSparseMatchesDense(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		dim := 1 + r.Intn(32)
		da := make([]float64, dim)
		db := make([]float64, dim)
		for i := range da {
			if r.Float64() < 0.4 {
				da[i] = float64(r.Intn(9) - 4)
			}
			if r.Float64() < 0.4 {
				db[i] = float64(r.Intn(9) - 4)
			}
		}
		sum := AddSparse(FromDense(da), FromDense(db))
		dense := sum.ToDense(dim)
		for i := range da {
			if !almostEq(dense[i], da[i]+db[i]) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}
