package linalg

import (
	"math/rand"
	"testing"
	"testing/quick"
)

func TestMatrixBasics(t *testing.T) {
	m := NewMatrix(2, 3)
	m.Set(1, 2, 5)
	if m.At(1, 2) != 5 {
		t.Fatalf("At = %v", m.At(1, 2))
	}
	row := m.Row(1)
	if len(row) != 3 || row[2] != 5 {
		t.Fatalf("Row = %v", row)
	}
	row[0] = 7 // Row shares storage
	if m.At(1, 0) != 7 {
		t.Fatal("Row does not share storage")
	}
}

func TestWrapMatrix(t *testing.T) {
	data := []float64{1, 2, 3, 4}
	m := WrapMatrix(2, 2, data)
	m.Set(0, 1, 9)
	if data[1] != 9 {
		t.Fatal("WrapMatrix copied instead of wrapping")
	}
	defer func() {
		if recover() == nil {
			t.Fatal("WrapMatrix with wrong size did not panic")
		}
	}()
	WrapMatrix(3, 3, data)
}

func TestMulVec(t *testing.T) {
	m := WrapMatrix(2, 3, []float64{1, 2, 3, 4, 5, 6})
	dst := make([]float64, 2)
	m.MulVec(dst, []float64{1, 1, 1})
	if !almostEq(dst[0], 6) || !almostEq(dst[1], 15) {
		t.Fatalf("MulVec = %v", dst)
	}
}

func TestMulVecT(t *testing.T) {
	m := WrapMatrix(2, 3, []float64{1, 2, 3, 4, 5, 6})
	dst := make([]float64, 3)
	m.MulVecT(dst, []float64{1, 1})
	want := []float64{5, 7, 9}
	for i := range want {
		if !almostEq(dst[i], want[i]) {
			t.Fatalf("MulVecT = %v, want %v", dst, want)
		}
	}
}

func TestAddOuter(t *testing.T) {
	m := NewMatrix(2, 2)
	m.AddOuter(2, []float64{1, 3}, []float64{5, 7})
	// M = 2 * [1;3]·[5,7] = [[10,14],[30,42]]
	want := []float64{10, 14, 30, 42}
	for i, w := range want {
		if !almostEq(m.Data[i], w) {
			t.Fatalf("AddOuter = %v, want %v", m.Data, want)
		}
	}
}

func TestMulVecSparseMatchesDense(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		rows, cols := 1+r.Intn(8), 1+r.Intn(16)
		m := NewMatrix(rows, cols)
		for i := range m.Data {
			m.Data[i] = r.NormFloat64()
		}
		xd := make([]float64, cols)
		for i := range xd {
			if r.Float64() < 0.4 {
				xd[i] = r.NormFloat64()
			}
		}
		xs := FromDense(xd)
		a := make([]float64, rows)
		b := make([]float64, rows)
		m.MulVec(a, xd)
		m.MulVecSparse(b, xs)
		for i := range a {
			if !almostEq(a[i], b[i]) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}

func TestAddOuterSparseMatchesDense(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		rows, cols := 1+r.Intn(6), 1+r.Intn(10)
		m1 := NewMatrix(rows, cols)
		m2 := NewMatrix(rows, cols)
		u := make([]float64, rows)
		xd := make([]float64, cols)
		for i := range u {
			u[i] = r.NormFloat64()
		}
		for i := range xd {
			if r.Float64() < 0.5 {
				xd[i] = r.NormFloat64()
			}
		}
		m1.AddOuter(1.5, u, xd)
		m2.AddOuterSparse(1.5, u, FromDense(xd))
		for i := range m1.Data {
			if !almostEq(m1.Data[i], m2.Data[i]) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}

func TestMatrixClone(t *testing.T) {
	m := WrapMatrix(1, 2, []float64{1, 2})
	c := m.Clone()
	c.Data[0] = 99
	if m.Data[0] != 1 {
		t.Fatal("Clone shares storage")
	}
}

func TestMatrixShapePanics(t *testing.T) {
	m := NewMatrix(2, 2)
	for name, fn := range map[string]func(){
		"MulVec":   func() { m.MulVec(make([]float64, 2), make([]float64, 3)) },
		"MulVecT":  func() { m.MulVecT(make([]float64, 3), make([]float64, 3)) },
		"AddOuter": func() { m.AddOuter(1, make([]float64, 3), make([]float64, 2)) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Fatalf("%s with bad shape did not panic", name)
				}
			}()
			fn()
		}()
	}
}
