package core

import (
	"fmt"
	"sync"
	"testing"
	"time"

	"malt/internal/consistency"
	"malt/internal/data"
	"malt/internal/dataflow"
	"malt/internal/fault"
	"malt/internal/ml/linalg"
	"malt/internal/ml/svm"
	"malt/internal/trace"
	"malt/internal/vol"
)

func TestNewClusterValidation(t *testing.T) {
	if _, err := NewCluster(Config{Ranks: 0}); err == nil {
		t.Fatal("Ranks=0 should fail")
	}
	g, _ := dataflow.New(dataflow.All, 3)
	if _, err := NewCluster(Config{Ranks: 4, Graph: g}); err == nil {
		t.Fatal("graph/ranks mismatch should fail")
	}
	c, err := NewCluster(Config{Ranks: 2})
	if err != nil {
		t.Fatal(err)
	}
	if c.Graph().Kind() != dataflow.All {
		t.Fatalf("default dataflow = %v", c.Graph().Kind())
	}
}

func TestRunAllRanks(t *testing.T) {
	c, err := NewCluster(Config{Ranks: 4})
	if err != nil {
		t.Fatal(err)
	}
	var mu sync.Mutex
	seen := map[int]bool{}
	res := c.Run(func(ctx *Context) error {
		mu.Lock()
		seen[ctx.Rank()] = true
		mu.Unlock()
		if ctx.Ranks() != 4 {
			return fmt.Errorf("Ranks() = %d", ctx.Ranks())
		}
		return nil
	})
	if err := res.FirstError(); err != nil {
		t.Fatal(err)
	}
	if len(seen) != 4 {
		t.Fatalf("ran on %d ranks", len(seen))
	}
	if res.Elapsed <= 0 {
		t.Fatal("Elapsed not recorded")
	}
}

func TestRunTrapsPanics(t *testing.T) {
	c, _ := NewCluster(Config{Ranks: 2})
	res := c.Run(func(ctx *Context) error {
		if ctx.Rank() == 1 {
			panic("simulated segfault")
		}
		return nil
	})
	if res.PerRank[1].Err == nil {
		t.Fatal("panic not converted to error")
	}
	if res.PerRank[0].Err != nil {
		t.Fatalf("healthy rank errored: %v", res.PerRank[0].Err)
	}
	if c.Fabric().Alive(1) {
		t.Fatal("panicking rank should be dead on the fabric")
	}
	errs := res.LiveErrors(c.Fabric().Alive)
	if len(errs) != 0 {
		t.Fatalf("LiveErrors = %v", errs)
	}
}

func TestDistributedSVMBSPConverges(t *testing.T) {
	// End-to-end: 4 replicas train a shared SVM with gradient averaging
	// under BSP — the paper's Algorithm 2.
	ds, err := data.GenerateClassification(data.ClassificationSpec{
		Name: "t", Dim: 100, Train: 4000, Test: 500, NNZ: 10, Noise: 0.02, Seed: 5,
	})
	if err != nil {
		t.Fatal(err)
	}
	c, err := NewCluster(Config{Ranks: 4, Sync: consistency.BSP})
	if err != nil {
		t.Fatal(err)
	}
	const cb = 100
	finals := make([][]float64, 4)
	res := c.Run(func(ctx *Context) error {
		g, err := ctx.CreateVector("grad", vol.Dense, ds.Dim)
		if err != nil {
			return err
		}
		tr, err := svm.New(svm.Config{Dim: ds.Dim, Eta0: 2, Lambda: 1e-5})
		if err != nil {
			return err
		}
		w := make([]float64, ds.Dim)
		lo, hi, err := ctx.Shard(len(ds.Train))
		if err != nil {
			return err
		}
		shard := ds.Train[lo:hi]
		iter := uint64(0)
		for epoch := 0; epoch < 20; epoch++ {
			for at := 0; at+cb <= len(shard); at += cb {
				batch := shard[at : at+cb]
				ctx.Compute(func() { tr.BatchGradient(g.Data(), w, batch) })
				iter++
				ctx.SetIteration(iter)
				if err := ctx.Scatter(g); err != nil {
					return err
				}
				if err := ctx.Advance(g); err != nil {
					return err
				}
				if _, err := ctx.Gather(g, vol.Average); err != nil {
					return err
				}
				ctx.Compute(func() { tr.ApplyGradient(w, g.Data(), cb) })
				if err := ctx.Commit(g); err != nil {
					return err
				}
			}
		}
		finals[ctx.Rank()] = w
		return nil
	})
	if err := res.FirstError(); err != nil {
		t.Fatal(err)
	}
	tr, _ := svm.New(svm.Config{Dim: ds.Dim})
	acc := tr.Accuracy(finals[0], ds.Test)
	if acc < 0.85 {
		t.Fatalf("distributed accuracy %v too low", acc)
	}
	// BSP all-to-all with deterministic fold order: all replicas end
	// bit-identical (the paper: "the final parameter value w is identical
	// across all machines in the synchronous, all-all case").
	for r := 1; r < 4; r++ {
		for i := range finals[0] {
			if finals[0][i] != finals[r][i] {
				t.Fatalf("rank %d model diverged at %d: %v vs %v", r, i, finals[0][i], finals[r][i])
			}
		}
	}
	// Phase accounting saw every phase.
	tm := res.PerRank[0].Timer
	if tm.Get(trace.Compute) == 0 || tm.Get(trace.Scatter) == 0 || tm.Get(trace.Gather) == 0 {
		t.Fatalf("phase accounting incomplete: %v", tm)
	}
	if tm.Get(trace.Barrier) == 0 {
		t.Fatalf("BSP run recorded no barrier time: %v", tm)
	}
	// Traffic flowed.
	if c.Fabric().Stats().TotalBytes() == 0 {
		t.Fatal("no network traffic recorded")
	}
}

func TestFailureRecoveryMidTraining(t *testing.T) {
	// 4 replicas, rank 3 dies mid-run; survivors must finish, re-shard,
	// and drop the dead peer from their send lists.
	c, err := NewCluster(Config{Ranks: 4, Sync: consistency.ASP})
	if err != nil {
		t.Fatal(err)
	}
	const dim = 16
	var resharded sync.Map
	res := c.Run(func(ctx *Context) error {
		v, err := ctx.CreateVector("w", vol.Dense, dim)
		if err != nil {
			return err
		}
		for it := uint64(1); it <= 60; it++ {
			ctx.SetIteration(it)
			if ctx.Rank() == 3 && it == 20 {
				// Simulated machine crash.
				if err := c.Fabric().Kill(3); err != nil {
					return err
				}
				return fmt.Errorf("rank 3 crashed")
			}
			v.Data()[0] = float64(ctx.Rank())
			if err := ctx.Scatter(v); err != nil {
				return err
			}
			if _, err := ctx.Gather(v, vol.Average); err != nil {
				return err
			}
			//maltlint:allow rawsleep -- paces the async convergence loop so peers interleave; not a retry/backoff site
			time.Sleep(time.Millisecond)
		}
		lo, hi, err := ctx.Shard(90)
		if err != nil {
			return err
		}
		resharded.Store(ctx.Rank(), [2]int{lo, hi})
		return nil
	})
	if errs := res.LiveErrors(c.Fabric().Alive); len(errs) != 0 {
		t.Fatalf("surviving ranks errored: %v", errs)
	}
	if res.PerRank[3].Err == nil {
		t.Fatal("crashed rank should report its error")
	}
	// Survivors re-sharded 90 examples three ways: 30 each.
	count := 0
	resharded.Range(func(k, v any) bool {
		count++
		r := v.([2]int)
		if r[1]-r[0] != 30 {
			t.Errorf("rank %v shard = %v, want width 30", k, r)
		}
		return true
	})
	if count != 3 {
		t.Fatalf("%d survivors resharded, want 3", count)
	}
	// Survivor contexts confirmed the death.
	for _, r := range []int{0, 1, 2} {
		if c.Context(r).Alive(3) {
			t.Fatalf("rank %d still believes 3 is alive", r)
		}
	}
}

func TestCreateVectorAfterFailureDropsDeadPeers(t *testing.T) {
	// Strikes: 1 — this test is about rebuild-after-confirmation, not the
	// suspicion threshold, so one report must confirm immediately.
	c, _ := NewCluster(Config{Ranks: 3, Suspicion: fault.SuspicionConfig{Strikes: 1}})
	if err := c.Fabric().Kill(2); err != nil {
		t.Fatal(err)
	}
	// Ranks 0 and 1 learn of the death, then create a vector.
	var wg sync.WaitGroup
	vecs := make([]*vol.Vector, 2)
	for r := 0; r < 2; r++ {
		wg.Add(1)
		go func(r int) {
			defer wg.Done()
			ctx := c.Context(r)
			ctx.Monitor().ReportFailedWrites([]int{2})
			v, err := ctx.CreateVector("w", vol.Dense, 4)
			if err != nil {
				t.Errorf("rank %d: %v", r, err)
				return
			}
			vecs[r] = v
		}(r)
	}
	wg.Wait()
	for r, v := range vecs {
		if v == nil {
			t.Fatal("vector creation failed")
		}
		for _, p := range v.Segment().SendPeers() {
			if p == 2 {
				t.Fatalf("rank %d still sends to dead rank", r)
			}
		}
	}
}

func TestShardOverSurvivors(t *testing.T) {
	c, _ := NewCluster(Config{Ranks: 2})
	lo, hi, err := c.Context(1).Shard(10)
	if err != nil {
		t.Fatal(err)
	}
	if lo != 5 || hi != 10 {
		t.Fatalf("shard = [%d,%d)", lo, hi)
	}
}

func TestIterationRoundTrip(t *testing.T) {
	c, _ := NewCluster(Config{Ranks: 1})
	ctx := c.Context(0)
	//maltlint:allow iterskew -- round-trip test pins one stamp to assert storage, not an SSP loop
	ctx.SetIteration(7)
	if ctx.Iteration() != 7 {
		t.Fatal("iteration not stored")
	}
}

func TestLinalgVisibleThroughVector(t *testing.T) {
	// Smoke test: matrix view over a context-created vector trains in place.
	c, _ := NewCluster(Config{Ranks: 1})
	res := c.Run(func(ctx *Context) error {
		v, err := ctx.CreateVector("m", vol.Dense, 6)
		if err != nil {
			return err
		}
		m := v.AsMatrix(2, 3)
		m.Set(0, 0, 5)
		if v.Data()[0] != 5 {
			return fmt.Errorf("matrix view not shared")
		}
		_ = linalg.Norm2(v.Data())
		return nil
	})
	if err := res.FirstError(); err != nil {
		t.Fatal(err)
	}
}

func TestGatherLatestFoldsFreshestOnly(t *testing.T) {
	c, _ := NewCluster(Config{Ranks: 2, Sync: consistency.ASP, QueueLen: 8})
	done := make(chan error, 2)
	go func() {
		done <- func() error {
			ctx := c.Context(0)
			v, err := ctx.CreateVector("w", vol.Dense, 1)
			if err != nil {
				return err
			}
			for i := 1; i <= 3; i++ {
				v.Data()[0] = float64(i * 10)
				ctx.SetIteration(uint64(i))
				if err := ctx.Scatter(v); err != nil {
					return err
				}
			}
			return ctx.Barrier(v)
		}()
	}()
	go func() {
		done <- func() error {
			ctx := c.Context(1)
			v, err := ctx.CreateVector("w", vol.Dense, 1)
			if err != nil {
				return err
			}
			if err := ctx.Barrier(v); err != nil {
				return err
			}
			st, err := ctx.GatherLatest(v, vol.Replace)
			if err != nil {
				return err
			}
			if st.Updates != 1 {
				return fmt.Errorf("folded %d updates, want 1", st.Updates)
			}
			if v.Data()[0] != 30 {
				return fmt.Errorf("got %v, want freshest (30)", v.Data()[0])
			}
			return nil
		}()
	}()
	for i := 0; i < 2; i++ {
		if err := <-done; err != nil {
			t.Fatal(err)
		}
	}
}

func TestCommitIsNoopOutsideBSP(t *testing.T) {
	c, _ := NewCluster(Config{Ranks: 2, Sync: consistency.ASP})
	// Only rank 0 calls Commit: under ASP it must not block on rank 1.
	res := c.Run(func(ctx *Context) error {
		v, err := ctx.CreateVector("w", vol.Dense, 1)
		if err != nil {
			return err
		}
		if ctx.Rank() == 0 {
			return ctx.Commit(v)
		}
		return nil
	})
	if err := res.FirstError(); err != nil {
		t.Fatal(err)
	}
}

func TestCreateAddVectorThroughRuntime(t *testing.T) {
	c, _ := NewCluster(Config{Ranks: 2})
	res := c.Run(func(ctx *Context) error {
		acc, err := ctx.CreateAddVector("g", 2)
		if err != nil {
			return err
		}
		if _, err := acc.Scatter([]float64{1, 2}, 1); err != nil {
			return err
		}
		if err := acc.Barrier(); err != nil {
			return err
		}
		avg := make([]float64, 2)
		n, err := acc.Drain(avg)
		if err != nil {
			return err
		}
		if n != 1 || avg[1] != 2 {
			return fmt.Errorf("drain = %d, %v", n, avg)
		}
		return nil
	})
	if err := res.FirstError(); err != nil {
		t.Fatal(err)
	}
}

func TestZombieWritesBounceAfterRecovery(t *testing.T) {
	// A rank is confirmed dead, the survivors rebuild, and then the "dead"
	// machine comes back (revive) and scatters: its writes must bounce off
	// the survivors' rebuilt receive lists instead of corrupting state —
	// the paper's re-registration guard against zombies.
	c, _ := NewCluster(Config{
		Ranks: 3, Sync: consistency.ASP,
		Suspicion: fault.SuspicionConfig{Strikes: 1},
	})
	vecs := make([]*vol.Vector, 3)
	var wg sync.WaitGroup
	for r := 0; r < 3; r++ {
		wg.Add(1)
		go func(r int) {
			defer wg.Done()
			v, err := c.Context(r).CreateVector("w", vol.Dense, 2)
			if err != nil {
				t.Errorf("rank %d: %v", r, err)
				return
			}
			vecs[r] = v
		}(r)
	}
	wg.Wait()

	if err := c.Fabric().Kill(2); err != nil {
		t.Fatal(err)
	}
	// Ranks 0 and 1 confirm the death (rebuilds receive lists via OnDeath).
	c.Context(0).Monitor().ReportFailedWrites([]int{2})
	c.Context(1).Monitor().ReportFailedWrites([]int{2})

	// Zombie returns and scatters garbage.
	if err := c.Fabric().Revive(2); err != nil {
		t.Fatal(err)
	}
	vecs[2].Data()[0] = 666
	//maltlint:allow iterskew -- rejoin test stamps one distinctive iteration to trace the post-revival update
	c.Context(2).SetIteration(99)
	if err := c.Context(2).Scatter(vecs[2]); err != nil {
		t.Fatal(err)
	}

	// Survivors gather: nothing from the zombie may fold.
	for _, r := range []int{0, 1} {
		st, err := c.Context(r).Gather(vecs[r], vol.Sum)
		if err != nil {
			t.Fatal(err)
		}
		if st.Updates != 0 {
			t.Fatalf("rank %d folded %d zombie updates", r, st.Updates)
		}
		if vecs[r].Data()[0] != 0 {
			t.Fatalf("rank %d state corrupted by zombie: %v", r, vecs[r].Data())
		}
	}
}

func TestNetworkPartitionBothSidesTrain(t *testing.T) {
	// Paper §3.3: "If there is a network partition, training resumes on
	// both clusters independently." Four ranks split 2+2 mid-run; each
	// side confirms the other dead, re-shards, and finishes training.
	ds, err := data.GenerateClassification(data.ClassificationSpec{
		Name: "t", Dim: 60, Train: 2000, Test: 400, NNZ: 8, Noise: 0.05, Seed: 3,
	})
	if err != nil {
		t.Fatal(err)
	}
	c, err := NewCluster(Config{Ranks: 4, Sync: consistency.ASP})
	if err != nil {
		t.Fatal(err)
	}
	const cb = 50
	finals := make([][]float64, 4)
	var mu sync.Mutex
	res := c.Run(func(ctx *Context) error {
		g, err := ctx.CreateVector("grad", vol.Dense, ds.Dim)
		if err != nil {
			return err
		}
		tr, err := svm.New(svm.Config{Dim: ds.Dim, Lambda: 1e-4, Eta0: 1})
		if err != nil {
			return err
		}
		w := make([]float64, ds.Dim)
		before := make([]float64, ds.Dim)
		iter := uint64(0)
		for epoch := 0; epoch < 8; epoch++ {
			// Epoch barrier keeps the partition point aligned across ranks;
			// after the split it is group-scoped and spans only one side.
			if err := ctx.Barrier(g); err != nil {
				return err
			}
			if epoch == 3 && ctx.Rank() == 0 {
				if err := c.Fabric().Partition([][]int{{0, 1}, {2, 3}}); err != nil {
					return err
				}
			}
			lo, hi, err := ctx.Shard(len(ds.Train))
			if err != nil {
				return err
			}
			shard := ds.Train[lo:hi]
			for at := 0; at+cb <= len(shard); at += cb {
				copy(before, w)
				ctx.Compute(func() { tr.TrainEpoch(w, shard[at:at+cb]) })
				for i := range w {
					g.Data()[i] = w[i] - before[i]
				}
				iter++
				ctx.SetIteration(iter)
				if err := ctx.Scatter(g); err != nil {
					return err
				}
				if _, err := ctx.Gather(g, vol.Average); err != nil {
					return err
				}
				for i := range w {
					w[i] = before[i] + g.Data()[i]
				}
			}
		}
		mu.Lock()
		finals[ctx.Rank()] = append([]float64(nil), w...)
		mu.Unlock()
		return nil
	})
	if err := res.FirstError(); err != nil {
		t.Fatal(err)
	}
	// Each side believes only its half survived...
	for _, r := range []int{0, 1} {
		s := c.Context(r).Survivors()
		if len(s) != 2 || s[0] != 0 || s[1] != 1 {
			t.Fatalf("rank %d survivors = %v, want [0 1]", r, s)
		}
	}
	for _, r := range []int{2, 3} {
		s := c.Context(r).Survivors()
		if len(s) != 2 || s[0] != 2 || s[1] != 3 {
			t.Fatalf("rank %d survivors = %v, want [2 3]", r, s)
		}
	}
	// ...and both sides' models converged independently.
	tr, _ := svm.New(svm.Config{Dim: ds.Dim})
	for _, r := range []int{0, 2} {
		if acc := tr.Accuracy(finals[r], ds.Test); acc < 0.8 {
			t.Fatalf("rank %d accuracy %v after partition", r, acc)
		}
	}
}
