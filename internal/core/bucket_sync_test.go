package core

import (
	"fmt"
	"math"
	"sync"
	"testing"

	"malt/internal/consistency"
	"malt/internal/dstorm"
	"malt/internal/fabric"
	"malt/internal/vol"
)

// bucketSyncResult is one rank's view at the end of a bucketed training
// schedule: its final local model, how many logical updates it folded, and
// the reassembly counters.
type bucketSyncResult struct {
	data   []float64
	folded int
	perf   vol.BucketPerf
}

// runBucketSyncSchedule trains rounds of the SetIteration → ScatterBucketed
// → Advance → Gather → Commit loop under the given consistency model and
// returns every rank's result. A final barrier + gather drains stragglers
// so ASP/SSP totals are conserved (the queue is deep enough that nothing
// is overwritten).
func runBucketSyncSchedule(t *testing.T, model consistency.Model, bucketBytes, ranks, dim, rounds int) []bucketSyncResult {
	t.Helper()
	c, err := NewCluster(Config{
		Ranks:          ranks,
		Sync:           model,
		StalenessBound: uint64(rounds), // SSP: lax enough that no update is filtered
		QueueLen:       rounds + 1,
		Pipeline:       &dstorm.PipelineConfig{},
		GatherWorkers:  2,
		BucketBytes:    bucketBytes,
		Fabric:         fabric.Config{Delay: fabric.DelayNone},
	})
	if err != nil {
		t.Fatal(err)
	}
	var mu sync.Mutex
	results := make([]bucketSyncResult, ranks)
	res := c.Run(func(ctx *Context) error {
		v, err := ctx.CreateVector("w", vol.Dense, dim)
		if err != nil {
			return err
		}
		defer v.Close()
		if bucketBytes > 0 && !v.Bucketed() {
			return fmt.Errorf("vector did not inherit cluster BucketBytes=%d", bucketBytes)
		}
		folded := 0
		for round := 1; round <= rounds; round++ {
			ctx.SetIteration(uint64(round))
			err := ctx.ScatterBucketed(v, func(lo, hi int) {
				d := v.Data()
				for i := lo; i < hi; i++ {
					d[i] = 1 / float64(i+31*ctx.Rank()+7*round)
				}
			})
			if err != nil {
				return fmt.Errorf("round %d scatter: %w", round, err)
			}
			if err := ctx.Advance(v); err != nil {
				return fmt.Errorf("round %d advance: %w", round, err)
			}
			st, err := ctx.Gather(v, vol.Sum)
			if err != nil {
				return fmt.Errorf("round %d gather: %w", round, err)
			}
			folded += st.Updates
			if model == consistency.BSP && st.Updates != ranks-1 {
				return fmt.Errorf("round %d: BSP folded %d updates, want %d", round, st.Updates, ranks-1)
			}
			if err := ctx.Commit(v); err != nil {
				return fmt.Errorf("round %d commit: %w", round, err)
			}
		}
		// Drain stragglers: ASP/SSP gathers are free-running, so some
		// updates are still in flight (or queued) when the loop ends.
		if err := ctx.Barrier(v); err != nil {
			return err
		}
		st, err := ctx.Gather(v, vol.Sum)
		if err != nil {
			return err
		}
		folded += st.Updates
		mu.Lock()
		results[ctx.Rank()] = bucketSyncResult{
			data:   append([]float64(nil), v.Data()...),
			folded: folded,
			perf:   v.BucketPerf(),
		}
		mu.Unlock()
		return ctx.Barrier(v)
	})
	if err := res.FirstError(); err != nil {
		t.Fatal(err)
	}
	return results
}

// TestScatterBucketedSyncModes is the sync-mode axis of the determinism
// sweep, at the runtime layer the trainers actually use:
//
//   - BSP: the bucketed pipeline is bitwise identical to the unbucketed
//     serial path — reassembly restores whole updates and fold order.
//   - ASP/SSP: exact folds are unordered, so the invariant is conservation:
//     with a deep enough queue, every rank folds exactly rounds×(ranks-1)
//     whole updates — no bucket lost, duplicated, or folded partially.
func TestScatterBucketedSyncModes(t *testing.T) {
	const (
		ranks  = 4
		dim    = 97 // odd: the last bucket is short
		rounds = 4
	)
	t.Run("BSP-bitwise", func(t *testing.T) {
		ref := runBucketSyncSchedule(t, consistency.BSP, 0, ranks, dim, rounds)
		for _, bucketBytes := range []int{8 * 8, 8 * 24} {
			got := runBucketSyncSchedule(t, consistency.BSP, bucketBytes, ranks, dim, rounds)
			for r := range ref {
				if got[r].folded != ref[r].folded {
					t.Fatalf("bucketBytes=%d rank %d folded %d, unbucketed folded %d",
						bucketBytes, r, got[r].folded, ref[r].folded)
				}
				for i := range ref[r].data {
					if math.Float64bits(ref[r].data[i]) != math.Float64bits(got[r].data[i]) {
						t.Fatalf("bucketBytes=%d rank %d coord %d: bucketed %x != unbucketed %x",
							bucketBytes, r, i,
							math.Float64bits(got[r].data[i]), math.Float64bits(ref[r].data[i]))
					}
				}
			}
		}
	})
	for _, tc := range []struct {
		name string
		sync consistency.Model
	}{
		{"ASP-conservation", consistency.ASP},
		{"SSP-conservation", consistency.SSP},
	} {
		t.Run(tc.name, func(t *testing.T) {
			results := runBucketSyncSchedule(t, tc.sync, 8*16, ranks, dim, rounds)
			want := rounds * (ranks - 1)
			for r, got := range results {
				if got.folded != want {
					t.Fatalf("rank %d folded %d whole updates, want %d", r, got.folded, want)
				}
				if got.perf.Assembled != uint64(want) || got.perf.Evicted != 0 || got.perf.Duplicates != 0 {
					t.Fatalf("rank %d perf %+v, want %d assembled and no evictions/duplicates",
						r, got.perf, want)
				}
			}
		})
	}
}
