package core

import (
	"testing"

	"malt/internal/consistency"
	"malt/internal/data"
	"malt/internal/fabric"
	"malt/internal/ml/svm"
	"malt/internal/vol"
)

// TestDistributedSVMOverTCP drives the full stack — runtime, vol, dstorm,
// consistency — over the loopback TCP transport instead of in-process
// memory copies: real sockets, real serialization, same results.
func TestDistributedSVMOverTCP(t *testing.T) {
	ds, err := data.GenerateClassification(data.ClassificationSpec{
		Name: "t", Dim: 60, Train: 1200, Test: 300, NNZ: 8, Noise: 0.03, Seed: 9,
	})
	if err != nil {
		t.Fatal(err)
	}
	c, err := NewCluster(Config{
		Ranks:  3,
		Sync:   consistency.BSP,
		Fabric: fabric.Config{Delivery: fabric.TCP},
	})
	if err != nil {
		t.Fatal(err)
	}
	defer c.Fabric().Close()

	const cb = 100
	finals := make([][]float64, 3)
	res := c.Run(func(ctx *Context) error {
		g, err := ctx.CreateVector("grad", vol.Dense, ds.Dim)
		if err != nil {
			return err
		}
		tr, err := svm.New(svm.Config{Dim: ds.Dim, Lambda: 1e-4, Eta0: 1})
		if err != nil {
			return err
		}
		w := make([]float64, ds.Dim)
		before := make([]float64, ds.Dim)
		lo, hi, err := ctx.Shard(len(ds.Train))
		if err != nil {
			return err
		}
		shard := ds.Train[lo:hi]
		iter := uint64(0)
		for epoch := 0; epoch < 5; epoch++ {
			for at := 0; at+cb <= len(shard); at += cb {
				copy(before, w)
				ctx.Compute(func() { tr.TrainEpoch(w, shard[at:at+cb]) })
				for i := range w {
					g.Data()[i] = w[i] - before[i]
				}
				iter++
				ctx.SetIteration(iter)
				if err := ctx.Scatter(g); err != nil {
					return err
				}
				if err := ctx.Advance(g); err != nil {
					return err
				}
				if _, err := ctx.Gather(g, vol.Average); err != nil {
					return err
				}
				for i := range w {
					w[i] = before[i] + g.Data()[i]
				}
				if err := ctx.Commit(g); err != nil {
					return err
				}
			}
		}
		finals[ctx.Rank()] = w
		return nil
	})
	if err := res.FirstError(); err != nil {
		t.Fatal(err)
	}
	tr, _ := svm.New(svm.Config{Dim: ds.Dim})
	if acc := tr.Accuracy(finals[0], ds.Test); acc < 0.85 {
		t.Fatalf("TCP-transport accuracy %v too low", acc)
	}
	// BSP all-to-all over TCP must still produce identical replicas.
	for r := 1; r < 3; r++ {
		for i := range finals[0] {
			if finals[0][i] != finals[r][i] {
				t.Fatalf("replicas diverged over TCP at %d", i)
			}
		}
	}
	if c.Fabric().Stats().TotalBytes() == 0 {
		t.Fatal("no traffic accounted over TCP")
	}
}

// TestTransportsProduceIdenticalModels pins that the transport is
// semantically invisible: the same BSP all-to-all training run produces
// bit-identical models over in-process memory copies and over TCP.
func TestTransportsProduceIdenticalModels(t *testing.T) {
	ds, err := data.GenerateClassification(data.ClassificationSpec{
		Name: "t", Dim: 40, Train: 800, Test: 100, NNZ: 6, Noise: 0.05, Seed: 21,
	})
	if err != nil {
		t.Fatal(err)
	}
	train := func(transport fabric.Delivery) []float64 {
		c, err := NewCluster(Config{
			Ranks:  2,
			Sync:   consistency.BSP,
			Fabric: fabric.Config{Delivery: transport},
		})
		if err != nil {
			t.Fatal(err)
		}
		defer c.Fabric().Close()
		final := make([]float64, ds.Dim)
		res := c.Run(func(ctx *Context) error {
			g, err := ctx.CreateVector("grad", vol.Dense, ds.Dim)
			if err != nil {
				return err
			}
			tr, err := svm.New(svm.Config{Dim: ds.Dim})
			if err != nil {
				return err
			}
			w := make([]float64, ds.Dim)
			before := make([]float64, ds.Dim)
			lo, hi, err := ctx.Shard(len(ds.Train))
			if err != nil {
				return err
			}
			shard := ds.Train[lo:hi]
			const cb = 100
			for it := 0; it+cb <= len(shard); it += cb {
				copy(before, w)
				tr.TrainEpoch(w, shard[it:it+cb])
				for i := range w {
					g.Data()[i] = w[i] - before[i]
				}
				ctx.SetIteration(uint64(it + 1))
				if err := ctx.Scatter(g); err != nil {
					return err
				}
				if err := ctx.Advance(g); err != nil {
					return err
				}
				if _, err := ctx.Gather(g, vol.Average); err != nil {
					return err
				}
				for i := range w {
					w[i] = before[i] + g.Data()[i]
				}
				if err := ctx.Commit(g); err != nil {
					return err
				}
			}
			if ctx.Rank() == 0 {
				copy(final, w)
			}
			return nil
		})
		if err := res.FirstError(); err != nil {
			t.Fatal(err)
		}
		return final
	}
	inproc := train(fabric.InProc)
	tcp := train(fabric.TCP)
	for i := range inproc {
		if inproc[i] != tcp[i] {
			t.Fatalf("transports diverged at %d: %v vs %v", i, inproc[i], tcp[i])
		}
	}
}
