package core

import (
	"encoding/binary"
	"errors"
	"fmt"
	"math"
	"sort"
	"time"

	"malt/internal/fabric"
)

// Elastic membership: live state transfer for rejoining ranks.
//
// A rank that re-enters a running cluster (Cluster.Rejoin) needs more than
// transport admission — it needs the model. Every training replica
// publishes its recoverable state (model vector, iteration counter,
// optimizer scalars) with Context.PublishState; the first publish also
// registers a snapshot-request service in the rank's remotely writable
// memory. A joiner asks the lowest-ranked live survivor (the designated
// donor) for a snapshot by writing into that service, and the donor streams
// the encoded snapshot back over the same one-sided write path the training
// data uses. The joiner adopts it (Context.Resume) and enters at the next
// barrier.

// Fabric keys of the snapshot service.
const (
	// snapReqKey is the request doorbell registered by every publisher:
	// a write into it from rank j means "rank j wants a snapshot".
	snapReqKey = "malt/join/snapreq"
	// snapKey is the joiner-side landing zone for the donor's reply.
	snapKey = "malt/join/snapshot"
)

// snapDonorWait bounds how long a joiner waits for one donor's snapshot
// before asking the next survivor.
const snapDonorWait = 5 * time.Second

// ErrNoMembership is returned by Rejoin when the cluster's transport does
// not implement fabric.Membership.
var ErrNoMembership = errors.New("core: transport does not support elastic membership")

// Snapshot is the recoverable state of one training replica: everything a
// rejoining rank needs to resume mid-training instead of restarting from
// iteration zero.
type Snapshot struct {
	// Epoch is the membership epoch at which the snapshot was taken (0 when
	// the transport has no membership extension).
	Epoch uint64
	// Iter is the donor's iteration counter.
	Iter uint64
	// Model is the model vector.
	Model []float64
	// Opt holds named optimizer scalars (step counts, learning-rate state).
	Opt map[string]float64
}

// Clone deep-copies the snapshot.
func (s *Snapshot) Clone() *Snapshot {
	if s == nil {
		return nil
	}
	out := &Snapshot{Epoch: s.Epoch, Iter: s.Iter}
	out.Model = append([]float64(nil), s.Model...)
	if s.Opt != nil {
		out.Opt = make(map[string]float64, len(s.Opt))
		for k, v := range s.Opt {
			out.Opt[k] = v
		}
	}
	return out
}

const snapMagic = uint32(0x4d534e50) // "MSNP"

// EncodeSnapshot renders a snapshot into the one-sided-write wire form:
// magic, epoch, iter, model length + values, then sorted optimizer scalars.
func EncodeSnapshot(s *Snapshot) []byte {
	keys := make([]string, 0, len(s.Opt))
	for k := range s.Opt {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	size := 4 + 8 + 8 + 4 + 8*len(s.Model) + 4
	for _, k := range keys {
		size += 2 + len(k) + 8
	}
	b := make([]byte, 0, size)
	var u32 [4]byte
	var u64 [8]byte
	binary.LittleEndian.PutUint32(u32[:], snapMagic)
	b = append(b, u32[:]...)
	binary.LittleEndian.PutUint64(u64[:], s.Epoch)
	b = append(b, u64[:]...)
	binary.LittleEndian.PutUint64(u64[:], s.Iter)
	b = append(b, u64[:]...)
	binary.LittleEndian.PutUint32(u32[:], uint32(len(s.Model)))
	b = append(b, u32[:]...)
	for _, v := range s.Model {
		binary.LittleEndian.PutUint64(u64[:], math.Float64bits(v))
		b = append(b, u64[:]...)
	}
	binary.LittleEndian.PutUint32(u32[:], uint32(len(keys)))
	b = append(b, u32[:]...)
	for _, k := range keys {
		binary.LittleEndian.PutUint16(u32[:2], uint16(len(k)))
		b = append(b, u32[:2]...)
		b = append(b, k...)
		binary.LittleEndian.PutUint64(u64[:], math.Float64bits(s.Opt[k]))
		b = append(b, u64[:]...)
	}
	return b
}

// DecodeSnapshot parses the wire form produced by EncodeSnapshot.
func DecodeSnapshot(b []byte) (*Snapshot, error) {
	const fixed = 4 + 8 + 8 + 4
	if len(b) < fixed {
		return nil, errors.New("core: snapshot too short")
	}
	if binary.LittleEndian.Uint32(b[:4]) != snapMagic {
		return nil, errors.New("core: snapshot has wrong magic")
	}
	s := &Snapshot{
		Epoch: binary.LittleEndian.Uint64(b[4:12]),
		Iter:  binary.LittleEndian.Uint64(b[12:20]),
	}
	dim := int(binary.LittleEndian.Uint32(b[20:24]))
	rest := b[24:]
	if len(rest) < 8*dim+4 {
		return nil, errors.New("core: snapshot model overruns payload")
	}
	s.Model = make([]float64, dim)
	for i := range s.Model {
		s.Model[i] = math.Float64frombits(binary.LittleEndian.Uint64(rest[8*i:]))
	}
	rest = rest[8*dim:]
	nOpt := int(binary.LittleEndian.Uint32(rest[:4]))
	rest = rest[4:]
	s.Opt = make(map[string]float64, nOpt)
	for i := 0; i < nOpt; i++ {
		if len(rest) < 2 {
			return nil, errors.New("core: snapshot scalar overruns payload")
		}
		kl := int(binary.LittleEndian.Uint16(rest[:2]))
		rest = rest[2:]
		if len(rest) < kl+8 {
			return nil, errors.New("core: snapshot scalar overruns payload")
		}
		key := string(rest[:kl])
		s.Opt[key] = math.Float64frombits(binary.LittleEndian.Uint64(rest[kl : kl+8]))
		rest = rest[kl+8:]
	}
	if len(rest) != 0 {
		return nil, fmt.Errorf("core: snapshot has %d trailing bytes", len(rest))
	}
	return s, nil
}

// PublishState records the replica's recoverable state so this rank can act
// as a snapshot donor for rejoining peers. The first call registers the
// rank's snapshot-request service; subsequent calls just swap the state.
// Call it at every point training could resume from (typically once per
// mini-batch, after the model update). The model slice is copied.
func (ctx *Context) PublishState(iter uint64, model []float64, opt map[string]float64) error {
	s := &Snapshot{Iter: iter}
	if m, ok := ctx.cluster.fab.(fabric.Membership); ok {
		s.Epoch = m.Epoch()
	}
	s.Model = append([]float64(nil), model...)
	if opt != nil {
		s.Opt = make(map[string]float64, len(opt))
		for k, v := range opt {
			s.Opt[k] = v
		}
	}
	ctx.snapMu.Lock()
	ctx.snap = s
	registered := ctx.snapSvc
	ctx.snapSvc = true
	ctx.snapMu.Unlock()
	if registered {
		return nil
	}
	return ctx.cluster.fab.Register(ctx.rank, snapReqKey, func(from int, _ []byte) error {
		// A rejoining rank knocked. Answer off this goroutine: the handler
		// runs on a fabric delivery path and must not issue nested writes.
		go ctx.donateSnapshot(from)
		return nil
	})
}

// donateSnapshot streams this rank's latest published state to a joiner
// over the one-sided write path. Failures are the joiner's problem — it
// retries against the next survivor.
func (ctx *Context) donateSnapshot(to int) {
	ctx.snapMu.Lock()
	s := ctx.snap
	ctx.snapMu.Unlock()
	if s == nil || to == ctx.rank {
		return
	}
	_ = ctx.cluster.fab.Write(ctx.rank, to, snapKey, EncodeSnapshot(s))
}

// Resume returns the snapshot this rank adopted when it rejoined the
// cluster, or nil when the rank started fresh. Training functions consult
// it once at startup: a non-nil snapshot means "seed the model and counters
// from here and skip initial synchronization".
func (ctx *Context) Resume() *Snapshot {
	ctx.snapMu.Lock()
	defer ctx.snapMu.Unlock()
	return ctx.resume
}

// Rejoining reports whether this context re-entered a running cluster.
// Vector creation skips the collective creation barrier while true (the
// standing members will never re-enter it).
func (ctx *Context) Rejoining() bool {
	ctx.snapMu.Lock()
	defer ctx.snapMu.Unlock()
	return ctx.rejoining
}

// Rejoin re-admits rank into a running cluster: the transport mints a fresh
// membership epoch (fencing the rank's previous incarnation everywhere),
// survivors rebuild their send/receive lists, and the joiner pulls a state
// snapshot from the lowest-ranked live survivor that has published one.
// The returned snapshot is also available as Context.Resume; it is nil when
// no survivor had published state (the joiner then starts fresh).
//
// On a multi-process transport call Rejoin instead of Rendezvous, from the
// restarted process, before RunLocal.
func (c *Cluster) Rejoin(rank int) (*Snapshot, error) {
	mem, ok := c.fab.(fabric.Membership)
	if !ok {
		return nil, ErrNoMembership
	}
	if rank < 0 || rank >= c.cfg.Ranks {
		return nil, fmt.Errorf("core: rejoin rank %d out of range [0,%d)", rank, c.cfg.Ranks)
	}
	ctx := c.contexts[rank]
	ctx.snapMu.Lock()
	ctx.rejoining = true
	ctx.resume = nil
	if ctx.snapCh == nil {
		ctx.snapCh = make(chan *Snapshot, 1)
	}
	snapCh := ctx.snapCh
	ctx.snapMu.Unlock()
	// Land zone first: the donor's reply must have somewhere to go before
	// anyone is asked.
	if err := c.fab.Register(rank, snapKey, func(from int, payload []byte) error {
		s, err := DecodeSnapshot(payload)
		if err != nil {
			return err
		}
		select {
		case snapCh <- s:
		default: // a slower donor lost the race; first snapshot wins
		}
		return nil
	}); err != nil {
		return nil, err
	}
	if _, err := mem.Join(rank); err != nil {
		return nil, err
	}
	snap, err := c.pullSnapshot(ctx, rank, snapCh)
	if err != nil {
		return nil, err
	}
	ctx.snapMu.Lock()
	ctx.resume = snap
	ctx.snapMu.Unlock()
	return snap.Clone(), nil
}

// pullSnapshot asks each live survivor, lowest rank first, for a state
// snapshot. A survivor without the request service registered has not
// published state and is skipped; if none has, the joiner starts fresh
// (nil, nil).
func (c *Cluster) pullSnapshot(ctx *Context, rank int, snapCh chan *Snapshot) (*Snapshot, error) {
	var lastErr error
	for _, donor := range c.fab.AliveRanks() {
		if donor == rank {
			continue
		}
		if err := c.fab.Write(rank, donor, snapReqKey, nil); err != nil {
			if errors.Is(err, fabric.ErrNotRegistered) {
				continue // donor has never published state
			}
			lastErr = err
			continue
		}
		select {
		case s := <-snapCh:
			return s, nil
		case <-time.After(snapDonorWait):
			lastErr = fmt.Errorf("core: snapshot from rank %d timed out", donor)
		}
	}
	return nil, lastErr
}
