// Package core is the MALT runtime: it assembles the fabric, dstorm,
// vector library, consistency controller and fault monitors into a cluster
// of model replicas, and runs one user-supplied training function per rank
// (the paper's "write code once, run everywhere" model — no separate
// master/server program exists).
//
// The public package malt at the module root is a thin facade over this
// package; see there for the user-facing documentation.
package core

import (
	"errors"
	"fmt"
	"sync"
	"time"

	"malt/internal/compress"
	"malt/internal/consistency"
	"malt/internal/data"
	"malt/internal/dataflow"
	"malt/internal/dstorm"
	"malt/internal/fabric"
	"malt/internal/fault"
	"malt/internal/trace"
	"malt/internal/vol"
)

// Config describes a MALT cluster.
type Config struct {
	// Ranks is the number of model replicas.
	Ranks int
	// Dataflow selects the pre-built communication graph. Default All.
	Dataflow dataflow.Kind
	// Graph overrides Dataflow with an explicit adjacency when non-nil.
	Graph *dataflow.Graph
	// Sync selects the consistency model. Default BSP.
	Sync consistency.Model
	// StalenessBound is the SSP bound (see consistency.Policy.Bound).
	StalenessBound uint64
	// ASPCutoff is the ASP stale-update filter (consistency.Policy.ASPCutoff).
	ASPCutoff uint64
	// QueueLen is the per-sender receive queue depth for vectors.
	QueueLen int
	// AsyncSend enables sender-side queues of the given depth when > 0.
	AsyncSend int
	// Pipeline, when non-nil, enables the per-destination send coalescer on
	// every rank: scatters return after enqueue, small updates for the same
	// peer merge into one fabric write, and BSP/SSP barriers drain the
	// pipeline so consistency is unchanged. Takes precedence over AsyncSend
	// on the scatter path. Zero-valued fields use dstorm defaults.
	Pipeline *dstorm.PipelineConfig
	// GatherWorkers enables the parallel gather engine on every rank:
	// per-sender ring drains and update decodes fan out across a worker
	// pool, and folds whose UDFs have chunk forms split across the
	// coordinate axis (bitwise identical to the serial fold). 0 disables
	// (serial gathers); -1 selects the default pool size; > 0 is an
	// explicit worker count.
	GatherWorkers int
	// FoldChunk is the coordinate-chunk size for parallel folds (vectors
	// created via Context inherit it; 0 = vol.DefaultFoldChunk).
	FoldChunk int
	// BucketBytes, when positive, splits Dense vector scatters into
	// byte-capped gradient buckets (vectors created via Context inherit it;
	// see vol.Options.BucketBytes). Combined with Pipeline, bucket i is on
	// the wire while the trainer computes bucket i+1
	// (Context.ScatterBucketed) — the DDP-style comm/compute overlap.
	// Receivers reassemble buckets into whole updates before folding, so
	// results stay bitwise identical to the unbucketed path.
	BucketBytes int
	// Compress selects gradient compression with per-destination
	// error-feedback residuals for Dense vectors created via Context
	// (inherited into vol.Options.Compress; see internal/compress).
	// Scatters ship codec frames — top-k sparsified and/or
	// int8-quantized — and the dropped mass is carried into the next
	// update, so wire bytes shrink while convergence holds. With Adapt
	// set, each link re-picks its ratio from observed fabric.Stats
	// pressure signals. The zero value disables compression.
	Compress compress.Options
	// Fabric tunes the simulated interconnect (zero value = defaults).
	// Ignored when Transport is set.
	Fabric fabric.Config
	// Transport, when non-nil, replaces the simulated fabric with an
	// externally built backend (e.g. fabric/tcpnet for real TCP sockets).
	// Its Ranks() must match Config.Ranks. With a transport whose ranks
	// live in other OS processes, use RunLocal instead of Run: this process
	// drives only its own rank. Chaos injection requires the simulated
	// fabric and is rejected when Transport is set.
	Transport fabric.Transport
	// Retry bounds per-write retrying of transient fabric faults (zero
	// value = dstorm defaults: 4 attempts, exponential backoff).
	Retry dstorm.RetryPolicy
	// Suspicion tunes the K-strikes failure detector (zero value = fault
	// defaults: 3 strikes, 10 s decay).
	Suspicion fault.SuspicionConfig
}

func (c Config) withDefaults() (Config, error) {
	if c.Ranks <= 0 {
		return c, fmt.Errorf("core: Ranks must be positive, got %d", c.Ranks)
	}
	c.Fabric.Ranks = c.Ranks
	return c, nil
}

// Cluster is a MALT cluster: Ranks replicas sharing one transport. With
// the default simulated fabric all replicas run in this process; with an
// external Transport (fabric/tcpnet) this process may host just one rank
// of a multi-process cluster.
type Cluster struct {
	cfg    Config
	fab    fabric.Transport
	sim    *fabric.Fabric // non-nil only for the default simulated fabric
	dsc    *dstorm.Cluster
	faults *fault.Group
	graph  *dataflow.Graph

	contexts []*Context
}

// NewCluster builds the cluster, its transport (the simulated fabric
// unless cfg.Transport overrides it), and its dataflow graph.
func NewCluster(cfg Config) (*Cluster, error) {
	cfg, err := cfg.withDefaults()
	if err != nil {
		return nil, err
	}
	var fab fabric.Transport
	var sim *fabric.Fabric
	if cfg.Transport != nil {
		if cfg.Transport.Ranks() != cfg.Ranks {
			return nil, fmt.Errorf("core: transport has %d ranks, config says %d", cfg.Transport.Ranks(), cfg.Ranks)
		}
		if cfg.Fabric.Chaos != nil {
			return nil, errors.New("core: chaos injection requires the simulated fabric; it is not supported on an external transport")
		}
		fab = cfg.Transport
	} else {
		sim, err = fabric.New(cfg.Fabric)
		if err != nil {
			return nil, err
		}
		fab = sim
	}
	graph := cfg.Graph
	if graph == nil {
		graph, err = dataflow.New(cfg.Dataflow, cfg.Ranks)
		if err != nil {
			return nil, err
		}
	} else if graph.N() != cfg.Ranks {
		return nil, fmt.Errorf("core: graph covers %d ranks, config says %d", graph.N(), cfg.Ranks)
	}
	c := &Cluster{
		cfg:    cfg,
		fab:    fab,
		sim:    sim,
		dsc:    dstorm.NewCluster(fab),
		faults: fault.NewGroupWith(fab, cfg.Suspicion),
		graph:  graph,
	}
	c.contexts = make([]*Context, cfg.Ranks)
	for r := 0; r < cfg.Ranks; r++ {
		c.dsc.Node(r).SetRetryPolicy(cfg.Retry)
		c.contexts[r] = c.newContext(r)
	}
	// Elastic membership: transport-level admissions flow into every local
	// monitor, whose OnJoin callbacks then restore the rank in send/receive
	// lists — the inverse of the OnDeath rebuild.
	if m, ok := fab.(fabric.Membership); ok {
		m.OnJoin(func(rank int, epoch uint64) {
			for _, ctx := range c.contexts {
				if ctx.rank != rank {
					ctx.monitor.AdmitJoin(rank)
				}
			}
		})
	}
	return c, nil
}

// Config returns the cluster configuration.
func (c *Cluster) Config() Config { return c.cfg }

// Fabric exposes the simulated interconnect (stats, failure injection).
// It is nil when the cluster runs on an external Transport; use
// Transport() for the backend-agnostic surface.
func (c *Cluster) Fabric() *fabric.Fabric { return c.sim }

// Transport exposes the interconnect the cluster actually runs on — the
// simulated fabric by default, or the external backend from
// Config.Transport.
func (c *Cluster) Transport() fabric.Transport { return c.fab }

// Close releases transport resources (sockets, goroutines). It does not
// close an external Transport supplied via Config.Transport — that is
// owned by the caller who built it.
func (c *Cluster) Close() error {
	if c.sim != nil {
		return c.sim.Close()
	}
	return nil
}

// Graph returns the cluster's dataflow graph.
func (c *Cluster) Graph() *dataflow.Graph { return c.graph }

// Context returns the per-rank context (for tests and tools; Run hands the
// same contexts to the training function).
func (c *Cluster) Context(rank int) *Context { return c.contexts[rank] }

// RankResult is one replica's outcome.
type RankResult struct {
	// Rank identifies the replica.
	Rank int
	// Err is the training function's error (nil on success). A replica
	// killed by failure injection typically returns a non-nil error.
	Err error
	// Timer holds the per-phase time breakdown.
	Timer *trace.Timer
}

// Result aggregates a Run.
type Result struct {
	// PerRank has one entry per rank, indexed by rank.
	PerRank []RankResult
	// Elapsed is the wall-clock duration of the whole run.
	Elapsed time.Duration
}

// FirstError returns the first non-nil rank error, or nil.
func (r *Result) FirstError() error {
	for _, rr := range r.PerRank {
		if rr.Err != nil {
			return rr.Err
		}
	}
	return nil
}

// LiveErrors returns the errors of ranks that were still alive at the end
// of the run — failures of deliberately killed replicas are expected and
// usually filtered out this way.
func (r *Result) LiveErrors(alive func(rank int) bool) []error {
	var errs []error
	for _, rr := range r.PerRank {
		if rr.Err != nil && alive(rr.Rank) {
			errs = append(errs, fmt.Errorf("rank %d: %w", rr.Rank, rr.Err))
		}
	}
	return errs
}

// Run executes fn once per rank, each on its own goroutine (the replicas of
// the paper's Figure 1), and waits for all of them. Panics in fn are
// trapped by the rank's fault monitor and converted into rank errors plus
// fabric death, so surviving replicas observe a crash, not a hang.
func (c *Cluster) Run(fn func(ctx *Context) error) *Result {
	start := time.Now()
	res := &Result{PerRank: make([]RankResult, c.cfg.Ranks)}
	var wg sync.WaitGroup
	for r := 0; r < c.cfg.Ranks; r++ {
		wg.Add(1)
		go func(r int) {
			defer wg.Done()
			res.PerRank[r] = c.runRank(r, fn)
		}(r)
	}
	wg.Wait()
	res.Elapsed = time.Since(start)
	return res
}

// RunLocal executes fn for a single rank of the cluster and waits for it —
// the entry point for multi-process transports, where each OS process
// hosts exactly one rank and the others are reached over the network. The
// Result has one entry (for rank); panics are trapped exactly as in Run.
func (c *Cluster) RunLocal(rank int, fn func(ctx *Context) error) (*Result, error) {
	if rank < 0 || rank >= c.cfg.Ranks {
		return nil, fmt.Errorf("core: local rank %d out of range [0,%d)", rank, c.cfg.Ranks)
	}
	start := time.Now()
	res := &Result{PerRank: []RankResult{c.runRank(rank, fn)}}
	res.Elapsed = time.Since(start)
	return res, nil
}

// runRank drives one replica: engine setup, the guarded training function,
// and the trace-counter harvest.
func (c *Cluster) runRank(r int, fn func(ctx *Context) error) RankResult {
	ctx := c.contexts[r]
	if c.cfg.AsyncSend > 0 {
		ctx.node.EnableAsyncSend(c.cfg.AsyncSend)
		defer ctx.node.DisableAsyncSend()
	}
	if c.cfg.Pipeline != nil {
		ctx.node.EnablePipeline(*c.cfg.Pipeline)
	}
	if c.cfg.GatherWorkers != 0 {
		ctx.node.EnableParallelGather(c.cfg.GatherWorkers)
	}
	err := ctx.monitor.Guard(func() error { return fn(ctx) })
	if c.cfg.GatherWorkers != 0 {
		ctx.node.DisableParallelGather()
	}
	// Record the gather engine's work counters for Fig 8-style
	// breakdowns regardless of whether the pool was enabled (serial
	// chunk folds and scratch hits count too).
	ctx.mu.Lock()
	vecs := append([]*vol.Vector(nil), ctx.vectors...)
	ctx.mu.Unlock()
	for _, v := range vecs {
		gp := v.GatherPerf()
		ctx.timer.AddCount(trace.DecodeTasks, gp.DecodeTasks)
		ctx.timer.AddCount(trace.ChunksFolded, gp.ChunksFolded)
		ctx.timer.AddCount(trace.ScratchHits, gp.ScratchHits)
		ctx.timer.AddCount(trace.BucketsSent, v.BucketPerf().FragmentsSent)
		if v.Compressed() {
			cp := v.CompressPerf()
			ctx.timer.AddCount(trace.BytesPrecompress, cp.BytesPre)
			ctx.timer.AddCount(trace.BytesPostcompress, cp.BytesPost)
			ctx.timer.AddCount(trace.ResidualNorm, cp.ResidualNormMicro)
			ctx.timer.MaxCount(trace.RatioPerLink, cp.HardestInvRatioMilli)
		}
	}
	if c.cfg.Pipeline != nil {
		// Drain before snapshotting so the counters reflect only
		// completed batches, then record them for Fig 8-style
		// breakdowns and shut the worker pool down.
		_ = ctx.node.Drain()
		ps := ctx.node.PipelineStats()
		ctx.timer.AddCount(trace.WritesSaved, ps.WritesSaved)
		ctx.timer.AddCount(trace.BytesMerged, ps.BytesMerged)
		ctx.timer.MaxCount(trace.QueuePeak, ps.QueuePeak)
		ctx.node.DisablePipeline()
		ctx.reportFailures(nil)
	}
	return RankResult{Rank: r, Err: err, Timer: ctx.timer}
}

// Context is one rank's handle on the cluster, passed to the training
// function. It owns the rank's fault monitor, consistency controller and
// phase timer, and instruments every MALT call with them. A Context must
// only be used from its own replica goroutine.
type Context struct {
	cluster *Cluster
	rank    int
	node    *dstorm.Node
	monitor *fault.Monitor
	ctrl    *consistency.Controller
	timer   *trace.Timer

	mu      sync.Mutex
	vectors []*vol.Vector
	iter    uint64

	// Elastic-membership state (see snapshot.go).
	snapMu    sync.Mutex
	snap      *Snapshot      // latest state published for donors
	snapSvc   bool           // snapshot-request service registered
	snapCh    chan *Snapshot // rejoin landing channel
	resume    *Snapshot      // snapshot adopted at rejoin
	rejoining bool           // vector creation skips the creation barrier
}

func (c *Cluster) newContext(rank int) *Context {
	ctx := &Context{
		cluster: c,
		rank:    rank,
		node:    c.dsc.Node(rank),
		monitor: c.faults.Monitor(rank),
		timer:   &trace.Timer{},
	}
	ctx.ctrl = consistency.New(consistency.Policy{
		Model:     c.cfg.Sync,
		Bound:     c.cfg.StalenessBound,
		ASPCutoff: c.cfg.ASPCutoff,
		Alive:     ctx.monitor.Alive,
	})
	// Failure recovery: when this rank's monitor confirms a peer dead,
	// rebuild this rank's send/receive lists (paper §3.3).
	ctx.monitor.OnDeath(func(dead int) {
		ctx.mu.Lock()
		vecs := append([]*vol.Vector(nil), ctx.vectors...)
		ctx.mu.Unlock()
		for _, v := range vecs {
			v.RemovePeer(dead)
		}
	})
	// Elastic recovery: a re-admitted peer returns to the send/receive
	// lists at its original dataflow position, with fresh receive rings.
	ctx.monitor.OnJoin(func(joined int) {
		ctx.mu.Lock()
		vecs := append([]*vol.Vector(nil), ctx.vectors...)
		ctx.mu.Unlock()
		for _, v := range vecs {
			v.RestorePeer(joined)
		}
	})
	return ctx
}

// Rank returns this replica's rank.
func (ctx *Context) Rank() int { return ctx.rank }

// Ranks returns the cluster size (including dead ranks).
func (ctx *Context) Ranks() int { return ctx.cluster.cfg.Ranks }

// Survivors returns this rank's current view of the live ranks.
func (ctx *Context) Survivors() []int { return ctx.monitor.Survivors() }

// Alive reports this rank's view of a peer.
func (ctx *Context) Alive(rank int) bool { return ctx.monitor.Alive(rank) }

// Timer returns the per-phase time accounting for this rank.
func (ctx *Context) Timer() *trace.Timer { return ctx.timer }

// Monitor returns the rank's fault monitor (for explicit health checks and
// model validation).
func (ctx *Context) Monitor() *fault.Monitor { return ctx.monitor }

// RetryStats returns this rank's cumulative transient-fault write counters
// (attempts, retries, recoveries, exhaustions).
func (ctx *Context) RetryStats() dstorm.RetryStats { return ctx.node.RetryStats() }

// SetIteration records the replica's logical iteration count; scatters are
// stamped with it and staleness policies compare against it.
func (ctx *Context) SetIteration(iter uint64) { ctx.iter = iter }

// Iteration returns the last value passed to SetIteration.
func (ctx *Context) Iteration() uint64 { return ctx.iter }

// CreateVector collectively creates a shared model/gradient vector over
// the cluster's dataflow graph. All live ranks must call it with identical
// arguments (it blocks until they have).
func (ctx *Context) CreateVector(name string, typ vol.Type, dim int) (*vol.Vector, error) {
	return ctx.CreateVectorOpts(name, typ, dim, vol.Options{QueueLen: ctx.cluster.cfg.QueueLen})
}

// CreateVectorOpts is CreateVector with explicit vector options.
func (ctx *Context) CreateVectorOpts(name string, typ vol.Type, dim int, opts vol.Options) (*vol.Vector, error) {
	if opts.QueueLen == 0 {
		opts.QueueLen = ctx.cluster.cfg.QueueLen
	}
	if opts.FoldChunk == 0 {
		opts.FoldChunk = ctx.cluster.cfg.FoldChunk
	}
	if opts.BucketBytes == 0 && typ == vol.Dense {
		opts.BucketBytes = ctx.cluster.cfg.BucketBytes
	}
	if !opts.Compress.Enabled() && typ == vol.Dense {
		opts.Compress = ctx.cluster.cfg.Compress
	}
	if ctx.Rejoining() {
		// The standing members passed this vector's creation barrier long
		// ago; a rejoining rank registers and proceeds.
		opts.SkipCreationBarrier = true
	}
	v, err := vol.Create(ctx.node, name, typ, dim, ctx.cluster.graph, opts)
	if err != nil {
		return nil, err
	}
	ctx.mu.Lock()
	ctx.vectors = append(ctx.vectors, v)
	ctx.mu.Unlock()
	// Drop peers this rank already knows are dead (vector created after a
	// failure, e.g. during recovery).
	for r := 0; r < ctx.Ranks(); r++ {
		if !ctx.monitor.Alive(r) {
			v.RemovePeer(r)
		}
	}
	return v, nil
}

// CreateAddVector collectively creates a fetch-and-add gradient
// accumulator (the hardware-averaging extension from the paper's
// conclusion): peers' scatters merge into a single accumulator at deposit
// time and Drain fetches the running average. All live ranks must call it
// with identical arguments.
func (ctx *Context) CreateAddVector(name string, dim int) (*dstorm.AddSegment, error) {
	s, err := ctx.node.CreateAddSegment(name, dim, ctx.cluster.graph)
	if err != nil {
		return nil, err
	}
	ctx.monitor.OnDeath(func(dead int) { s.RemovePeer(dead) })
	for r := 0; r < ctx.Ranks(); r++ {
		if !ctx.monitor.Alive(r) {
			s.RemovePeer(r)
		}
	}
	return s, nil
}

// Scatter pushes v to its dataflow peers, stamped with the current
// iteration, charging the scatter phase and feeding any failed writes into
// the fault monitor (which may trigger recovery before Scatter returns).
func (ctx *Context) Scatter(v *vol.Vector) error {
	return ctx.timer.TimeErr(trace.Scatter, func() error {
		failed, err := v.Scatter(ctx.iter)
		if err != nil {
			return err
		}
		ctx.reportFailures(failed)
		return nil
	})
}

// ScatterBucketed runs one overlapped produce+push pass over v: for each
// gradient bucket it calls compute(lo, hi) — the trainer fills
// v.Data()[lo:hi] — and immediately pushes that bucket, so with the send
// pipeline enabled bucket b travels while compute produces bucket b+1.
// Compute time during which the pipeline still held in-flight work is
// recorded as trace.OverlappedNs (communication hidden behind compute); the
// residue that must be waited out at the next Advance shows up as
// trace.ExposedCommNs. On an unbucketed vector this degenerates to one
// compute(0, Dim) followed by a plain Scatter, making the overlap an
// ablation knob rather than a code fork in the trainer.
func (ctx *Context) ScatterBucketed(v *vol.Vector, compute func(lo, hi int)) error {
	n := v.Buckets()
	if v.Compressed() {
		// Error-feedback planning is whole-update (the residual-corrected
		// top-k selection needs every coordinate), so per-bucket
		// interleaving is impossible: run compute over every bucket range
		// first — still charged to the compute phase, with overlap credit
		// while the pipeline drains earlier work — then push the planned
		// frames in one scatter (fragmented on the wire when bucketed).
		for b := 0; b < n; b++ {
			lo, hi := v.BucketRange(b)
			ctx.computeBucket(compute, lo, hi)
		}
		return ctx.Scatter(v)
	}
	for b := 0; b < n; b++ {
		lo, hi := v.BucketRange(b)
		ctx.computeBucket(compute, lo, hi)
		err := ctx.timer.TimeErr(trace.Scatter, func() error {
			var failed []int
			var serr error
			if v.Bucketed() {
				failed, serr = v.ScatterBucket(b, nil, ctx.iter)
			} else {
				failed, serr = v.Scatter(ctx.iter)
			}
			if serr != nil {
				return serr
			}
			ctx.reportFailures(failed)
			return nil
		})
		if err != nil {
			return err
		}
	}
	return nil
}

// computeBucket runs compute over one bucket range, charging the compute
// phase and crediting overlap while the send pipeline holds in-flight work.
func (ctx *Context) computeBucket(compute func(lo, hi int), lo, hi int) {
	if compute == nil {
		return
	}
	outstanding := ctx.node.PipelineOutstanding()
	start := time.Now()
	compute(lo, hi)
	d := time.Since(start)
	ctx.timer.Add(trace.Compute, d)
	if outstanding {
		ctx.timer.AddCount(trace.OverlappedNs, uint64(d))
	}
}

// Gather folds arrived updates into v with udf under the cluster's
// consistency policy, charging the gather phase.
func (ctx *Context) Gather(v *vol.Vector, udf vol.UDF) (vol.GatherStats, error) {
	var stats vol.GatherStats
	err := ctx.timer.TimeErr(trace.Gather, func() error {
		var gerr error
		stats, gerr = ctx.ctrl.Gather(v, udf, ctx.iter)
		return gerr
	})
	return stats, err
}

// GatherLatest folds only the freshest update per peer into v — the right
// fold for model averaging, where an old snapshot of a peer carries no
// information once a newer one has arrived. Staleness filters do not apply
// (the freshest update is by definition the least stale available).
func (ctx *Context) GatherLatest(v *vol.Vector, udf vol.UDF) (vol.GatherStats, error) {
	var stats vol.GatherStats
	err := ctx.timer.TimeErr(trace.Gather, func() error {
		var gerr error
		stats, gerr = v.GatherLatest(udf)
		return gerr
	})
	return stats, err
}

// Advance runs the post-scatter synchronization (BSP barrier, SSP stall,
// or nothing for ASP), charging barrier/wait phases. Under BSP, call
// Advance after Scatter and before Gather so the gather observes exactly
// the current round's updates, and call Commit after applying the gathered
// result so no rank scatters the next round into a peer that has not yet
// consumed this one — the classic two-barrier superstep.
func (ctx *Context) Advance(v *vol.Vector) error {
	// Exposed-communication accounting: whatever the send pipeline still
	// holds at this iteration edge must now be waited out on the critical
	// path. BSP/SSP drain inside ctrl.Advance anyway — draining here first
	// just splits the wait into its comm and barrier parts. ASP never
	// drains (its communication bleeds into the next compute), so nothing
	// is charged.
	if ctx.cluster.cfg.Sync != consistency.ASP && ctx.node.PipelineOutstanding() {
		start := time.Now()
		_ = ctx.node.Drain()
		exposed := time.Since(start)
		ctx.timer.Add(trace.Scatter, exposed)
		ctx.timer.AddCount(trace.ExposedCommNs, uint64(exposed))
	}
	waited, err := ctx.ctrl.Advance(v, ctx.iter)
	switch ctx.cluster.cfg.Sync {
	case consistency.BSP:
		ctx.timer.Add(trace.Barrier, waited)
	default:
		ctx.timer.Add(trace.Wait, waited)
	}
	// Advance drains the send pipeline (BSP barrier, SSP stall); poll for
	// any asynchronous delivery failures it surfaced so the fault monitor
	// learns about dead peers at iteration edges, not only at shutdown.
	ctx.reportFailures(nil)
	if err != nil && errors.Is(err, dstorm.ErrDead) {
		return err
	}
	return err
}

// Commit closes a BSP superstep: a second barrier that keeps any rank from
// scattering the next round before all ranks consumed this one. Under ASP
// and SSP it is a no-op (those disciplines embrace mixed rounds).
func (ctx *Context) Commit(v *vol.Vector) error {
	if ctx.cluster.cfg.Sync != consistency.BSP {
		return nil
	}
	return ctx.timer.TimeErr(trace.Barrier, func() error { return v.Barrier() })
}

// Barrier is an explicit bulk-synchronous barrier on v (the paper's
// g.barrier()), independent of the consistency policy.
func (ctx *Context) Barrier(v *vol.Vector) error {
	return ctx.timer.TimeErr(trace.Barrier, func() error { return v.Barrier() })
}

// Compute charges fn's duration to the compute phase. Training loops wrap
// their gradient computation in it so Fig 8-style breakdowns are exact.
func (ctx *Context) Compute(fn func()) {
	ctx.timer.Time(trace.Compute, fn)
}

// Shard returns this rank's [lo, hi) share of n examples over the ranks
// this replica currently believes are alive. After a confirmed failure the
// same call re-shards over the survivors, implementing the paper's data
// redistribution.
func (ctx *Context) Shard(n int) (lo, hi int, err error) {
	return data.ShardOver(n, ctx.rank, ctx.monitor.Survivors())
}

// WatchFaults starts the rank's background fault watchdog (probing every
// peer each interval); the returned stop function terminates it. Useful
// for phases that compute for a long time without communicating.
func (ctx *Context) WatchFaults(interval time.Duration) (stop func()) {
	return ctx.monitor.Watch(interval)
}

// ReportFailures feeds explicitly observed write failures (e.g. from
// asynchronous sends) into the fault monitor.
func (ctx *Context) ReportFailures(peers []int) { ctx.reportFailures(peers) }

func (ctx *Context) reportFailures(peers []int) {
	if len(peers) == 0 {
		// Async sends surface failures out of band; poll them here so the
		// monitor still learns about dead peers promptly.
		peers = ctx.node.AsyncFailures()
		if len(peers) == 0 {
			return
		}
	}
	ctx.monitor.ReportFailedWrites(peers)
}
