package core

import (
	"errors"
	"math"
	"reflect"
	"sync"
	"testing"
	"time"

	"malt/internal/consistency"
	"malt/internal/fabric"
	"malt/internal/fault"
	"malt/internal/vol"
)

func TestSnapshotCodecRoundTrip(t *testing.T) {
	in := &Snapshot{
		Epoch: 42,
		Iter:  7,
		Model: []float64{1.5, -2.25, 0, math.Pi},
		Opt:   map[string]float64{"steps": 9, "lr": 0.125},
	}
	out, err := DecodeSnapshot(EncodeSnapshot(in))
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(in, out) {
		t.Fatalf("round trip: got %+v, want %+v", out, in)
	}
	if _, err := DecodeSnapshot([]byte("bogus")); err == nil {
		t.Fatal("corrupt snapshot decoded without error")
	}
	// Empty model and no scalars survive too.
	min := &Snapshot{Model: []float64{}, Opt: map[string]float64{}}
	if out, err = DecodeSnapshot(EncodeSnapshot(min)); err != nil {
		t.Fatal(err)
	}
	if out.Iter != 0 || len(out.Model) != 0 || len(out.Opt) != 0 {
		t.Fatalf("minimal round trip: got %+v", out)
	}
}

// createAll collectively creates the named vector on every live context.
func createAll(t *testing.T, c *Cluster, name string, dim int, ranks []int) map[int]*vol.Vector {
	t.Helper()
	var mu sync.Mutex
	out := make(map[int]*vol.Vector, len(ranks))
	var wg sync.WaitGroup
	for _, r := range ranks {
		wg.Add(1)
		go func(r int) {
			defer wg.Done()
			v, err := c.Context(r).CreateVector(name, vol.Dense, dim)
			if err != nil {
				t.Errorf("rank %d: CreateVector: %v", r, err)
				return
			}
			mu.Lock()
			out[r] = v
			mu.Unlock()
		}(r)
	}
	wg.Wait()
	return out
}

func TestRejoinAdoptsSnapshotAndRestoresPeers(t *testing.T) {
	c, err := NewCluster(Config{
		Ranks:     3,
		Sync:      consistency.ASP,
		Suspicion: fault.SuspicionConfig{Strikes: 1},
	})
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	vecs := createAll(t, c, "w", 3, []int{0, 1, 2})

	// Rank 0 has trained for a while and published its recoverable state.
	if err := c.Context(0).PublishState(11, []float64{1, 2, 3}, map[string]float64{"steps": 11}); err != nil {
		t.Fatal(err)
	}

	// Rank 2 dies; survivors confirm and rebuild.
	if err := c.Fabric().Kill(2); err != nil {
		t.Fatal(err)
	}
	for r := 0; r < 2; r++ {
		c.Context(r).Monitor().ReportFailedWrites([]int{2})
	}
	for r := 0; r < 2; r++ {
		for _, p := range vecs[r].Segment().SendPeers() {
			if p == 2 {
				t.Fatalf("rank %d still sends to dead rank 2", r)
			}
		}
	}

	// A zombie of the old incarnation (revived but not re-admitted) is
	// fenced by the epoch check, not silently accepted.
	if err := c.Fabric().Revive(2); err != nil {
		t.Fatal(err)
	}
	if err := c.Fabric().Write(2, 0, "dstorm/vol/w", []byte("poison")); !errors.Is(err, fabric.ErrStaleEpoch) {
		t.Fatalf("zombie write: want ErrStaleEpoch, got %v", err)
	}
	if c.Fabric().StaleEpochRejected() == 0 {
		t.Fatal("zombie write was not counted as fenced")
	}

	// The rank properly rejoins: new epoch, snapshot from the designated
	// donor (lowest live rank with published state — rank 0).
	snap, err := c.Rejoin(2)
	if err != nil {
		t.Fatal(err)
	}
	if snap == nil {
		t.Fatal("rejoin returned no snapshot despite a published donor state")
	}
	if snap.Iter != 11 || snap.Opt["steps"] != 11 {
		t.Fatalf("snapshot = %+v, want iter 11, steps 11", snap)
	}
	if !reflect.DeepEqual(snap.Model, []float64{1, 2, 3}) {
		t.Fatalf("snapshot model = %v", snap.Model)
	}
	if got := c.Context(2).Resume(); got == nil || got.Iter != 11 {
		t.Fatalf("Resume() = %+v, want the adopted snapshot", got)
	}

	// Survivors restored rank 2 in their send lists at its dataflow spot.
	for r := 0; r < 2; r++ {
		found := false
		for _, p := range vecs[r].Segment().SendPeers() {
			if p == 2 {
				found = true
			}
		}
		if !found {
			t.Fatalf("rank %d did not restore rank 2 after rejoin", r)
		}
	}

	// The rejoined rank recreates its vector without a creation barrier
	// (the survivors will never re-enter it) and traffic flows again.
	v2, err := c.Context(2).CreateVector("w", vol.Dense, 3)
	if err != nil {
		t.Fatalf("rejoined CreateVector: %v", err)
	}
	copy(v2.Data(), []float64{9, 9, 9})
	if err := c.Context(2).Scatter(v2); err != nil {
		t.Fatalf("rejoined scatter: %v", err)
	}
	stats, err := c.Context(0).Gather(vecs[0], vol.AverageIncoming)
	if err != nil {
		t.Fatal(err)
	}
	if stats.Updates == 0 {
		t.Fatal("rank 0 gathered nothing from the rejoined rank")
	}

	// And the survivors' scatters land on the rejoined rank's fresh rings.
	copy(vecs[0].Data(), []float64{4, 4, 4})
	if err := c.Context(0).Scatter(vecs[0]); err != nil {
		t.Fatal(err)
	}
	deadline := time.Now().Add(2 * time.Second)
	for {
		stats, err = c.Context(2).Gather(v2, vol.AverageIncoming)
		if err != nil {
			t.Fatal(err)
		}
		if stats.Updates > 0 {
			break
		}
		if time.Now().After(deadline) {
			t.Fatal("rejoined rank never received survivor scatters")
		}
	}
}

func TestRejoinWithoutPublishedStateStartsFresh(t *testing.T) {
	c, err := NewCluster(Config{
		Ranks:     2,
		Sync:      consistency.ASP,
		Suspicion: fault.SuspicionConfig{Strikes: 1},
	})
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	createAll(t, c, "w", 2, []int{0, 1})
	if err := c.Fabric().Kill(1); err != nil {
		t.Fatal(err)
	}
	c.Context(0).Monitor().ReportFailedWrites([]int{1})
	snap, err := c.Rejoin(1)
	if err != nil {
		t.Fatal(err)
	}
	if snap != nil {
		t.Fatalf("rejoin with no donors returned %+v, want nil", snap)
	}
	if c.Context(1).Resume() != nil {
		t.Fatal("Resume() non-nil after fresh rejoin")
	}
}

func TestRejoinRequiresMembershipTransport(t *testing.T) {
	c, err := NewCluster(Config{Ranks: 2, Transport: noMembershipTransport{mustFabric(t, 2)}})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := c.Rejoin(1); !errors.Is(err, ErrNoMembership) {
		t.Fatalf("want ErrNoMembership, got %v", err)
	}
}

func mustFabric(t *testing.T, ranks int) *fabric.Fabric {
	t.Helper()
	f, err := fabric.New(fabric.Config{Ranks: ranks})
	if err != nil {
		t.Fatal(err)
	}
	return f
}

// noMembershipTransport hides the simulated fabric's Membership extension
// behind the bare Transport interface (method promotion through an embedded
// interface value only exposes the interface's own methods).
type noMembershipTransport struct{ fabric.Transport }
