package bench

import (
	"bytes"
	"strings"
	"testing"
	"time"
)

func TestClassify(t *testing.T) {
	cases := map[string]MetricClass{
		"lost_updates_1KiB":           Correctness,
		"torn_reads":                  Correctness,
		"dup_deliveries":              Correctness,
		"exhausted_writes":            Correctness,
		"failed_writes":               Correctness,
		"model_speedup_1KiB":          HigherBetter,
		"speedup_time":                HigherBetter,
		"writes_saved_frac_4KiB":      HigherBetter,
		"model_ns_update_sync_1KiB":   LowerBetter,
		"stall_ratio":                 LowerBetter,
		"wall_ns_op_batched_1KiB":     Informational,
		"bytes_merged":                Informational,
		"final_auc":                   Informational,
		"msgs_per_reduce_naive_exact": Exact,
		"rounds_exact":                Exact,
	}
	for name, want := range cases {
		if got := Classify(name); got != want {
			t.Errorf("Classify(%q) = %v, want %v", name, got, want)
		}
	}
}

func gateJSON(metrics map[string]float64) BenchJSON {
	return BenchJSON{Experiments: map[string]ExpJSON{
		"pipeline": {Title: "t", Metrics: metrics},
	}}
}

func TestCompareCorrectnessZeroTolerance(t *testing.T) {
	base := gateJSON(map[string]float64{"lost_updates_1KiB": 0})
	if v := Compare(base, gateJSON(map[string]float64{"lost_updates_1KiB": 0}), 0.15); len(v) != 0 {
		t.Fatalf("equal correctness counter flagged: %v", v)
	}
	v := Compare(base, gateJSON(map[string]float64{"lost_updates_1KiB": 1}), 0.15)
	if len(v) != 1 || !strings.Contains(v[0], "lost_updates_1KiB") {
		t.Fatalf("correctness regression not flagged: %v", v)
	}
}

func TestCompareExactNoTolerance(t *testing.T) {
	base := gateJSON(map[string]float64{"msgs_per_reduce_tree_exact": 14})
	if v := Compare(base, gateJSON(map[string]float64{"msgs_per_reduce_tree_exact": 14}), 0.15); len(v) != 0 {
		t.Fatalf("identical exact metric should pass: %v", v)
	}
	// Both directions fail: fewer messages means the algorithm changed
	// just as surely as more.
	for _, bad := range []float64{13, 15} {
		v := Compare(base, gateJSON(map[string]float64{"msgs_per_reduce_tree_exact": bad}), 0.15)
		if len(v) != 1 || !strings.Contains(v[0], "deterministic metric changed") {
			t.Fatalf("exact metric %v should fail the gate: %v", bad, v)
		}
	}
}

func TestCompareLowerBetterTolerance(t *testing.T) {
	base := gateJSON(map[string]float64{"model_ns_update_sync_1KiB": 100})
	if v := Compare(base, gateJSON(map[string]float64{"model_ns_update_sync_1KiB": 114}), 0.15); len(v) != 0 {
		t.Fatalf("within-tolerance latency flagged: %v", v)
	}
	if v := Compare(base, gateJSON(map[string]float64{"model_ns_update_sync_1KiB": 116}), 0.15); len(v) != 1 {
		t.Fatalf("latency regression not flagged: %v", v)
	}
	// Improvement never fails a lower-better metric.
	if v := Compare(base, gateJSON(map[string]float64{"model_ns_update_sync_1KiB": 10}), 0.15); len(v) != 0 {
		t.Fatalf("latency improvement flagged: %v", v)
	}
}

func TestCompareHigherBetterTolerance(t *testing.T) {
	base := gateJSON(map[string]float64{"model_speedup_1KiB": 2.0})
	if v := Compare(base, gateJSON(map[string]float64{"model_speedup_1KiB": 1.71}), 0.15); len(v) != 0 {
		t.Fatalf("within-tolerance speedup flagged: %v", v)
	}
	if v := Compare(base, gateJSON(map[string]float64{"model_speedup_1KiB": 1.6}), 0.15); len(v) != 1 {
		t.Fatalf("speedup regression not flagged: %v", v)
	}
	if v := Compare(base, gateJSON(map[string]float64{"model_speedup_1KiB": 5.0}), 0.15); len(v) != 0 {
		t.Fatalf("speedup improvement flagged: %v", v)
	}
}

func TestCompareInformationalNeverGates(t *testing.T) {
	base := gateJSON(map[string]float64{"wall_ns_op_sync_1KiB": 100})
	if v := Compare(base, gateJSON(map[string]float64{"wall_ns_op_sync_1KiB": 1e9}), 0.15); len(v) != 0 {
		t.Fatalf("informational metric gated: %v", v)
	}
}

func TestCompareMissing(t *testing.T) {
	base := BenchJSON{Experiments: map[string]ExpJSON{
		"pipeline": {Metrics: map[string]float64{"model_speedup_1KiB": 2}},
		"fig4":     {Metrics: map[string]float64{"speedup_time": 6}},
	}}
	cur := BenchJSON{Experiments: map[string]ExpJSON{
		"pipeline": {Metrics: map[string]float64{"extra_metric": 1}},
	}}
	v := Compare(base, cur, 0.15)
	if len(v) != 2 {
		t.Fatalf("want missing-experiment + missing-metric violations, got %v", v)
	}
	if !strings.Contains(v[0], "fig4") || !strings.Contains(v[1], "model_speedup_1KiB") {
		t.Fatalf("unexpected violations: %v", v)
	}
	// Metrics present only in the current run are ignored until the
	// baseline is regenerated.
	if v := Compare(cur, base, 0.15); len(v) != 1 || !strings.Contains(v[0], "extra_metric") {
		t.Fatalf("reverse comparison: %v", v)
	}
}

func TestBenchJSONRoundTrip(t *testing.T) {
	reports := []*Report{{
		ID:      "pipeline",
		Title:   "coalescing ablation",
		Metrics: map[string]float64{"model_speedup_1KiB": 2.5, "lost_updates_1KiB": 0},
		Elapsed: 1500 * time.Millisecond,
	}}
	var buf bytes.Buffer
	if err := ToJSON(reports).WriteJSON(&buf); err != nil {
		t.Fatal(err)
	}
	got, err := ReadBenchJSON(&buf)
	if err != nil {
		t.Fatal(err)
	}
	exp, ok := got.Experiments["pipeline"]
	if !ok {
		t.Fatalf("round trip lost experiment: %+v", got)
	}
	if exp.Title != "coalescing ablation" || exp.Metrics["model_speedup_1KiB"] != 2.5 {
		t.Fatalf("round trip mangled fields: %+v", exp)
	}
	if exp.ElapsedSec != 1.5 {
		t.Fatalf("elapsed_sec = %v, want 1.5", exp.ElapsedSec)
	}
	if v := Compare(got, got, 0.15); len(v) != 0 {
		t.Fatalf("self-comparison violated: %v", v)
	}
}

func TestReadBenchJSONRejectsGarbage(t *testing.T) {
	if _, err := ReadBenchJSON(strings.NewReader(`{"experimints": {}}`)); err == nil {
		t.Fatal("unknown field accepted")
	}
	if _, err := ReadBenchJSON(strings.NewReader(`not json`)); err == nil {
		t.Fatal("non-JSON accepted")
	}
}
