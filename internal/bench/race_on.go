//go:build race

package bench

// raceEnabled reports that the race detector is active; the experiment
// suite (a performance/integration workload, fully covered for races by
// the unit tests beneath it) is skipped to keep `go test -race` fast.
const raceEnabled = true
