package bench

import (
	"math"
	"time"

	"malt/internal/chaos"
	"malt/internal/compress"
	"malt/internal/consistency"
	"malt/internal/data"
	"malt/internal/fabric"
	"malt/internal/fault"
	"malt/internal/ml/svm"
	"malt/internal/trace"
)

// compression: adaptive gradient compression with error feedback (PR 10).
// Four ranks train the same SVM under BSP/gradavg four times — uncompressed,
// topk, int8 and hybrid — and the gate pins each codec's total wire bytes
// exactly (BSP + the rank-ordered drain make training bitwise deterministic,
// so frame sizes are too) while requiring >=4x wire reduction and <1%
// accuracy loss versus the uncompressed arm. A determinism leg re-runs the
// hybrid arm across bucket sizes and gather worker counts and compares final
// models bitwise: global planning means fragmenting a frame must not change
// a single ULP. A chaos leg blacks out one rank mid-training with the
// adaptive controller on and asserts the per-link ratio tightened below the
// base ratio (the max-merged ratio_per_link counter rose) and that the run
// still converged within 2% of the blackout-free adaptive run.
func init() {
	const title = "Gradient compression: wire bytes and accuracy per codec, bitwise fold invariance, adaptive tightening under blackout (SVM, BSP, gradavg, ranks=4)"
	register(Experiment{
		ID:    "compression",
		Title: title,
		Run:   run("compression", title, runCompressionExp),
	})
}

// compressArm is one full training run under one codec.
type compressArm struct {
	name string
	opts compress.Options
}

// compressRun is the part of a run the experiment keeps.
type compressRun struct {
	pre    uint64 // raw bytes the scatters represent (8·dim per dest per update)
	post   uint64 // frame bytes actually shipped
	acc    float64
	finalW []float64
}

func runCompressOne(base SVMOpts, copts compress.Options, tr *svm.Trainer, eval []data.Example) (compressRun, error) {
	opts := base
	opts.Compress = copts
	res, err := RunSVM(opts)
	if err != nil {
		return compressRun{}, err
	}
	agg := &trace.Timer{}
	for _, tm := range res.Timers {
		agg.Merge(tm)
	}
	return compressRun{
		pre:    agg.Count(trace.BytesPrecompress),
		post:   agg.Count(trace.BytesPostcompress),
		acc:    tr.Accuracy(res.FinalWTail, eval),
		finalW: res.FinalW,
	}, nil
}

func runCompressionExp(o Options, r *Report) error {
	ds, err := data.GenerateClassification(data.ClassificationSpec{
		// 2,000 test examples keep the accuracy estimate's noise well under
		// the 1% convergence criterion; dim 400 makes a dense update 3,200
		// wire bytes, big enough that codec framing overhead is noise.
		Name: "compress", Dim: 400, Train: 1200, Test: 2000, NNZ: 40, Noise: 0.05, Seed: 77,
	})
	if err != nil {
		return err
	}
	epochs := 30
	if o.Quick {
		epochs = 12
	}
	base := SVMOpts{
		DS: ds, Ranks: 4, CB: 50,
		Sync: consistency.BSP, Mode: GradAvg,
		Epochs: epochs, EvalEvery: 10,
		SVM:    svm.Config{Dim: ds.Dim, Lambda: 1e-4, Eta0: 1},
		Fabric: fabric.Config{Delay: fabric.DelayNone},
		// Interleaved whole-model averaging would push model values — not
		// gradients — through the lossy codec; the all-to-all dataflow keeps
		// replicas contracted without it.
		ModelSyncEvery: -1,
	}
	tr, err := svm.New(svm.Config{Dim: ds.Dim})
	if err != nil {
		return err
	}

	arms := []compressArm{
		{"raw", compress.Options{}},
		{"topk", compress.Options{Codec: "topk", Ratio: 0.125}},
		{"int8", compress.Options{Codec: "int8"}},
		{"hybrid", compress.Options{Codec: "hybrid", Ratio: 0.125}},
	}
	runs := make([]compressRun, len(arms))
	for i, arm := range arms {
		o.logf("compression: arm %s (ranks=%d dim=%d epochs=%d)", arm.name, base.Ranks, ds.Dim, epochs)
		runs[i], err = runCompressOne(base, arm.opts, tr, ds.Test)
		if err != nil {
			return err
		}
	}

	baseAcc := runs[0].acc
	r.Metric("acc_raw", baseAcc)
	var belowFloor, accLoss float64
	for i, arm := range arms[1:] {
		cr := runs[i+1]
		reduction := speedup(float64(cr.pre), float64(cr.post))
		r.Metric("wire_bytes_"+arm.name+"_exact", float64(cr.post))
		r.Metric("acc_"+arm.name, cr.acc)
		if reduction < 4 {
			belowFloor++
		}
		if cr.acc < baseAcc-0.01 {
			accLoss++
		}
		r.Linef("%-6s %8d -> %7d wire bytes (%4.1fx), accuracy %.4f (raw %.4f)",
			arm.name, cr.pre, cr.post, reduction, cr.acc, baseAcc)
	}
	r.Metric("wire_bytes_raw_exact", float64(runs[1].pre))
	r.Metric("failed_reduction_below_4x", belowFloor)
	r.Metric("failed_convergence_above_1pct", accLoss)

	// Determinism leg: the hybrid arm's final model must be bitwise
	// identical at every bucket size and gather worker count — the frames
	// for a fragmented scatter are slices of the same whole-update plan.
	det := base
	det.Epochs = 8
	if o.Quick {
		det.Epochs = 4
	}
	want, err := runCompressOne(det, arms[3].opts, tr, ds.Test)
	if err != nil {
		return err
	}
	mismatch := 0
	for _, cfg := range []struct{ bb, workers int }{{0, 4}, {8 * 100, 0}, {8 * 7, 3}, {8 * 400, 2}} {
		o.logf("compression: determinism leg bucketBytes=%d gatherWorkers=%d", cfg.bb, cfg.workers)
		dopts := det
		dopts.BucketBytes = cfg.bb
		dopts.GatherWorkers = cfg.workers
		got, err := runCompressOne(dopts, arms[3].opts, tr, ds.Test)
		if err != nil {
			return err
		}
		for i := range want.finalW {
			if math.Float64bits(got.finalW[i]) != math.Float64bits(want.finalW[i]) {
				mismatch++
			}
		}
	}
	r.Metric("failed_compress_fold_mismatch", float64(mismatch))

	// Chaos leg: black out one rank mid-training with the adaptive
	// controller on. The controller must halve the blacked-out links'
	// ratios (ratio_per_link is max-merged, so the peak survives the
	// post-blackout relaxation) and error feedback must carry the run to
	// within 2% of the blackout-free adaptive reference.
	adapt := base
	adapt.Sync = consistency.ASP
	adapt.Epochs = 40
	if o.Quick {
		adapt.Epochs = 16
	}
	adapt.Compress = compress.Options{Codec: "topk", Ratio: 0.125, Adapt: true}
	// The blackout must stay a transient fault: a huge strike budget keeps
	// the failure detector from confirming the dark rank dead, so the
	// adaptive ratio — not a membership change — absorbs the outage.
	adapt.Suspicion = fault.SuspicionConfig{Strikes: 1 << 20}
	// A per-batch delay pins the blackout window to a stable fraction of
	// the run even under -race slowdown (>=480 ms of training wall-clock).
	adapt.Jitter = JitterSpec{Base: 2 * time.Millisecond}

	o.logf("compression: chaos leg reference (adaptive, no faults)")
	clean, err := RunSVM(adapt)
	if err != nil {
		return err
	}
	const victim = 3
	o.logf("compression: chaos leg blackout of rank %d at 100ms for 120ms", victim)
	dark := adapt
	dark.Chaos = chaos.New(7).BlackoutAt(100*time.Millisecond, 120*time.Millisecond, victim)
	res, err := RunSVM(dark)
	if err != nil {
		return err
	}
	agg := &trace.Timer{}
	for _, tm := range res.Timers {
		agg.Merge(tm)
	}
	baseInv := uint64(math.Round(1000 / 0.125))
	tightened := 0.0
	if agg.Count(trace.RatioPerLink) > baseInv {
		tightened = 1
	}
	cleanAcc := tr.Accuracy(clean.FinalWTail, ds.Test)
	darkAcc := tr.Accuracy(res.FinalWTail, ds.Test)
	converged := 1.0
	if darkAcc < cleanAcc-0.02 {
		converged = 0
	}
	r.Metric("adapt_tightened_exact", tightened)
	r.Metric("converged_within_2pct_exact", converged)
	r.Metric("chaos_events_fired_exact", float64(len(res.ChaosLog)))
	r.Metric("clean_adapt_acc", cleanAcc)
	r.Metric("blackout_adapt_acc", darkAcc)
	r.Linef("chaos leg: hardest inv-ratio %d milli (base %d) — tightened: %v; accuracy %.4f vs clean %.4f",
		agg.Count(trace.RatioPerLink), baseInv, tightened == 1, darkAcc, cleanAcc)
	return nil
}
