package bench

import (
	"malt/internal/consistency"
	"malt/internal/data"
	"malt/internal/dataflow"
	"malt/internal/ml/svm"
)

// Fig 4: convergence of MALT_all vs single-rank SGD on the RCV1 workload
// (all, BSP, gradavg, ranks=10, cb=5000). The paper reports 7.3× speedup
// by iterations and 6.7× by time to the single-rank loss goal.
func init() {
	register(Experiment{
		ID:    "fig4",
		Title: "RCV1 convergence, MALT_all vs single-rank SGD (BSP, gradavg, ranks=10, cb=5000)",
		Run: run("fig4", "RCV1 convergence, MALT_all vs single-rank SGD (BSP, gradavg, ranks=10, cb=5000)",
			func(o Options, r *Report) error {
				ds, err := data.RCV1Shape.Generate(o.Scale)
				if err != nil {
					return err
				}
				ranks, epochs, serialEpochs := 10, 30, 4
				if o.Quick {
					ranks, epochs, serialEpochs = 4, 10, 2
				}
				cb := cbScale(5000)
				svmCfg := svm.Config{Dim: ds.Dim, Lambda: 1e-5, Eta0: 2}

				o.logf("fig4: serial SGD baseline (%d epochs)", serialEpochs)
				serial, err := RunSerialSVM(SerialOpts{DS: ds, SVM: svmCfg, Epochs: serialEpochs, EvalEvery: 1000})
				if err != nil {
					return err
				}
				// The goal is the serial noise floor with a small margin —
				// the paper races every configuration to the loss value the
				// single-rank baseline achieves.
				goal := minValue(serial.Curve) * 1.005
				o.logf("fig4: goal loss %.4f; distributed run (ranks=%d cb=%d)", goal, ranks, cb)

				dist, err := RunSVM(SVMOpts{
					DS: ds, Ranks: ranks, CB: cb,
					Dataflow: dataflow.All, Sync: consistency.BSP,
					Mode: GradAvg, Epochs: epochs, Goal: goal,
					SVM: svmCfg, Sparse: true, EvalEvery: 2,
				})
				if err != nil {
					return err
				}

				r.Series = append(r.Series, serial.Curve, dist.Curve)
				serialIters, _ := serial.Curve.ItersToReach(goal)
				serialTime, _ := serial.Curve.TimeToReach(goal)
				r.Linef("goal loss %.4f (single-rank SGD best ×1.005)", goal)
				r.Linef("single-rank SGD: %.0f examples, %.2fs", serialIters, serialTime)
				if dist.Reached {
					r.Linef("MALT_all cb=5000 (scaled %d): %.0f examples/rank, %.2fs -> speedup %.1fx by iterations, %.1fx by time",
						cb, dist.ItersToGoal, dist.TimeToGoal,
						speedup(serialIters, dist.ItersToGoal), speedup(serialTime, dist.TimeToGoal))
					r.Metric("speedup_iters", speedup(serialIters, dist.ItersToGoal))
					r.Metric("speedup_time", speedup(serialTime, dist.TimeToGoal))
				} else {
					r.Linef("MALT_all cb=5000 (scaled %d): goal not reached (final loss %.4f)", cb, dist.Curve.Final())
					r.Metric("speedup_iters", 0)
					r.Metric("speedup_time", 0)
				}
				r.Metric("goal", goal)
				return nil
			}),
	})
}

func minValue(s Series) float64 {
	if len(s.Points) == 0 {
		return 0
	}
	m := s.Points[0].Value
	for _, p := range s.Points {
		if p.Value < m {
			m = p.Value
		}
	}
	return m
}
