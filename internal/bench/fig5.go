package bench

import (
	"malt/internal/baseline/mrsvm"
	"malt/internal/consistency"
	"malt/internal/data"
	"malt/internal/dataflow"
	"malt/internal/ml/svm"
)

// Fig 5: speedup by iterations to a fixed loss on PASCAL alpha — MR-SVM
// (one-shot averaging per partition epoch, cb≈25k) vs MALT-SVM (cb=1k),
// both BSP modelavg over 10 ranks. The paper reports both superlinear
// (averaging effect), with MALT ≈3× MR-SVM by iterations.
func init() {
	register(Experiment{
		ID:    "fig5",
		Title: "PASCAL alpha speedup over single SGD: MR-SVM vs MALT-SVM (BSP, modelavg, ranks=10)",
		Run: run("fig5", "PASCAL alpha speedup over single SGD: MR-SVM vs MALT-SVM (BSP, modelavg, ranks=10)",
			func(o Options, r *Report) error {
				ds, err := data.AlphaShape.Generate(o.Scale)
				if err != nil {
					return err
				}
				ranks, epochs, serialEpochs := 10, 30, 6
				if o.Quick {
					ranks, epochs, serialEpochs = 4, 12, 3
				}
				cb := cbScale(1000)
				svmCfg := svm.Config{Dim: ds.Dim, Lambda: 1e-4, Eta0: 0.5}

				o.logf("fig5: serial SGD baseline")
				serial, err := RunSerialSVM(SerialOpts{DS: ds, SVM: svmCfg, Epochs: serialEpochs, EvalEvery: 500})
				if err != nil {
					return err
				}
				goal := minValue(serial.Curve) * 1.01
				serialIters, _ := serial.Curve.ItersToReach(goal)

				o.logf("fig5: MALT-SVM cb=%d", cb)
				maltRun, err := RunSVM(SVMOpts{
					DS: ds, Ranks: ranks, CB: cb,
					Dataflow: dataflow.All, Sync: consistency.BSP,
					Mode: ModelAvg, Epochs: epochs, Goal: goal,
					SVM: svmCfg, EvalEvery: 1,
				})
				if err != nil {
					return err
				}

				o.logf("fig5: MR-SVM (one-shot averaging per epoch)")
				// MR-SVM: find the epoch whose averaged model reaches the goal;
				// iterations = epochs × shard size.
				mr, err := mrsvm.Train(mrsvm.Config{
					Ranks:  ranks,
					Epochs: epochs,
					SVM:    svmCfg,
				}, ds, ds.Test)
				if err != nil {
					return err
				}
				shard := len(ds.Train) / ranks
				mrIters := 0.0
				mrSeries := Series{Label: "mr-svm/epoch-avg"}
				for e, loss := range mr.LossByEpoch {
					mrSeries.Points = append(mrSeries.Points, Point{
						Iter: float64((e + 1) * shard), Value: loss,
					})
					if mrIters == 0 && loss <= goal {
						mrIters = float64((e + 1) * shard)
					}
				}

				r.Series = append(r.Series, serial.Curve, maltRun.Curve, mrSeries)
				r.Linef("goal loss %.4f; single-rank SGD: %.0f examples", goal, serialIters)
				maltSpeed := 0.0
				if maltRun.Reached {
					maltSpeed = speedup(serialIters, maltRun.ItersToGoal)
					r.Linef("MALT-SVM  cb=1000 (scaled %d): %.0f examples/rank -> speedup %.1fx by iterations",
						cb, maltRun.ItersToGoal, maltSpeed)
				} else {
					r.Linef("MALT-SVM  cb=1000 (scaled %d): goal not reached (final %.4f)", cb, maltRun.Curve.Final())
				}
				mrSpeed := 0.0
				if mrIters > 0 {
					mrSpeed = speedup(serialIters, mrIters)
					r.Linef("MR-SVM    cb=epoch (%d examples): %.0f examples/rank -> speedup %.1fx by iterations",
						shard, mrIters, mrSpeed)
				} else {
					r.Linef("MR-SVM    cb=epoch: goal not reached (final %.4f)", mrSeries.Final())
				}
				if maltSpeed > 0 && mrSpeed > 0 {
					r.Linef("MALT/MR-SVM advantage: %.1fx (paper: ~3x by iterations)", maltSpeed/mrSpeed)
					r.Metric("malt_vs_mrsvm", maltSpeed/mrSpeed)
				}
				r.Metric("speedup_malt", maltSpeed)
				r.Metric("speedup_mrsvm", mrSpeed)
				return nil
			}),
	})
}
