package bench

import (
	"math"
	"strconv"
	"sync"
	"time"

	"malt/internal/dataflow"
	"malt/internal/dstorm"
	"malt/internal/fabric"
	"malt/internal/vol"
)

// gather: ablation of the parallel gather/fold engine (PR 4). Eight senders
// scatter dense 64K-dim models into rank 0 over a MasterSlave star; rank 0
// gathers with Average. The serial arm runs the single-threaded engine; the
// parallel arm fans decodes across the node's gather pool and folds the
// coordinate axis in chunks.
//
// The CI regression gate keys off deterministic quantities only: the modeled
// gather+fold latency (a coordinate-cost model driven by the engine's
// observed GatherPerf counters — if the engine silently stops fanning out
// decodes or folding in chunks, the counters collapse and the modeled
// speedup falls), the decode fan-out fraction, and the correctness counters.
// Chunked folding preserves each coordinate's addition order, so the two
// arms' final models are compared bitwise and any mismatch is a gate
// failure. Wall-clock numbers are reported but informational.
func init() {
	title := "parallel gather ablation: modeled+wall gather/fold cost, serial vs pooled (8-sender fan-in)"
	register(Experiment{
		ID:    "gather",
		Title: title,
		Run:   run("gather", title, runGatherExp),
	})
}

// Modeled per-coordinate costs. Like the fabric's 3 µs base latency these
// are model constants, not measurements: 1 ns to decode one coordinate off
// the wire, 1 ns to fold one coordinate of one vector. Only relative
// numbers between configurations sharing the model are meaningful.
const (
	gatherDecNsPerCoord  = 1.0
	gatherFoldNsPerCoord = 1.0
)

// gatherTrial is one measured arm of the gather ablation.
type gatherTrial struct {
	wallNsGather float64   // wall ns per gather call (informational)
	modelNs      float64   // modeled gather+fold ns per gather (deterministic)
	folded       uint64    // updates folded across all rounds
	decodeTasks  uint64    // decodes fanned out to the pool
	chunksFolded uint64    // chunk-form UDF invocations
	data         []float64 // rank 0's final model, for bitwise comparison
}

// gatherModelNs models one gather's critical path from the engine's observed
// counters. Decode: serial decodes run back to back (one wave per update);
// fanned decodes run in ceil(updates/workers) waves. Fold: a serial fold is
// one whole-vector chunk; a chunked fold runs ceil(chunks/workers) waves of
// foldChunk-coordinate chunks, each folding local + updates vectors.
func gatherModelNs(dim, rounds, workers, foldChunk int, t gatherTrial) float64 {
	upd := float64(t.folded) / float64(rounds)
	decWaves := upd
	if t.decodeTasks > 0 && workers > 0 {
		decWaves = math.Ceil(upd / float64(workers))
	}
	decode := decWaves * float64(dim) * gatherDecNsPerCoord
	fold := float64(dim) * (upd + 1) * gatherFoldNsPerCoord
	if chunksPerGather := float64(t.chunksFolded) / float64(rounds); chunksPerGather > 1 && workers > 0 {
		fold = math.Ceil(chunksPerGather/float64(workers)) * float64(foldChunk) * (upd + 1) * gatherFoldNsPerCoord
	}
	return decode + fold
}

// runGatherTrial runs rounds of [every sender scatters once, rank 0 gathers
// Average]. Scatters are synchronous, so both arms fold the identical
// update multiset every round and the folded model must match bitwise.
// workers == 0 runs the serial engine.
func runGatherTrial(senders, dim, rounds, workers, foldChunk int) (gatherTrial, error) {
	var t gatherTrial
	ranks := senders + 1
	f, err := fabric.New(fabric.Config{Ranks: ranks})
	if err != nil {
		return t, err
	}
	defer f.Close()
	c := dstorm.NewCluster(f)
	g, err := dataflow.New(dataflow.MasterSlave, ranks)
	if err != nil {
		return t, err
	}
	vecs := make([]*vol.Vector, ranks)
	errs := make([]error, ranks)
	var wg sync.WaitGroup
	for r := 0; r < ranks; r++ {
		wg.Add(1)
		go func(r int) {
			defer wg.Done()
			vecs[r], errs[r] = vol.Create(c.Node(r), "gather", vol.Dense, dim, g,
				vol.Options{QueueLen: 2, FoldChunk: foldChunk})
		}(r)
	}
	wg.Wait()
	for _, err := range errs {
		if err != nil {
			return t, err
		}
	}
	defer func() {
		for _, v := range vecs {
			v.Close()
		}
	}()
	if workers > 0 {
		c.Node(0).EnableParallelGather(workers)
		defer c.Node(0).DisableParallelGather()
	}

	var wall time.Duration
	for round := 1; round <= rounds; round++ {
		for r := 1; r <= senders; r++ {
			d := vecs[r].Data()
			// Reciprocals give full mantissas, so a single out-of-order
			// addition anywhere shows up in the bitwise comparison.
			for i := range d {
				d[i] = 1 / float64(i+31*r+7*round)
			}
			if _, err := vecs[r].Scatter(uint64(round)); err != nil {
				return t, err
			}
		}
		start := time.Now()
		st, err := vecs[0].Gather(vol.Average)
		wall += time.Since(start)
		if err != nil {
			return t, err
		}
		t.folded += uint64(st.Updates)
	}
	perf := vecs[0].GatherPerf()
	t.decodeTasks = perf.DecodeTasks
	t.chunksFolded = perf.ChunksFolded
	t.wallNsGather = float64(wall.Nanoseconds()) / float64(rounds)
	t.modelNs = gatherModelNs(dim, rounds, workers, foldChunk, t)
	t.data = append([]float64(nil), vecs[0].Data()...)
	return t, nil
}

func runGatherExp(o Options, r *Report) error {
	senders, dim, rounds := 8, 1<<16, 24*o.Scale
	workers, foldChunk := 4, vol.DefaultFoldChunk
	if o.Quick {
		dim, rounds = 1<<14, 8
	}

	o.logf("gather: serial arm (senders=%d dim=%d rounds=%d)", senders, dim, rounds)
	serial, err := runGatherTrial(senders, dim, rounds, 0, 0)
	if err != nil {
		return err
	}
	o.logf("gather: parallel arm (workers=%d foldChunk=%d)", workers, foldChunk)
	par, err := runGatherTrial(senders, dim, rounds, workers, foldChunk)
	if err != nil {
		return err
	}

	mismatch := 0
	for i := range serial.data {
		if math.Float64bits(serial.data[i]) != math.Float64bits(par.data[i]) {
			mismatch++
		}
	}
	expected := uint64(rounds * senders)

	r.Metric("model_ns_gather_serial", serial.modelNs)
	r.Metric("model_ns_gather_parallel", par.modelNs)
	r.Metric("model_speedup_gather", speedup(serial.modelNs, par.modelNs))
	r.Metric("decode_fanout_frac", float64(par.decodeTasks)/float64(expected))
	r.Metric("wall_ns_gather_serial", serial.wallNsGather)
	r.Metric("wall_ns_gather_parallel", par.wallNsGather)
	r.Metric("failed_fold_mismatch", float64(mismatch))
	r.Metric("lost_updates_gather", float64(expected-serial.folded)+float64(expected-par.folded))
	r.Linef("%d senders, dim %d: modeled %.0f -> %.0f ns/gather (%.2fx), wall %.0f -> %.0f ns/gather",
		senders, dim, serial.modelNs, par.modelNs, speedup(serial.modelNs, par.modelNs),
		serial.wallNsGather, par.wallNsGather)
	r.Linef("parallel arm: %d decode tasks, %d chunks folded, %d bitwise-mismatched coords",
		par.decodeTasks, par.chunksFolded, mismatch)

	// Worker-count ablation curve at the full dimension: modeled speedup
	// over the serial engine as the pool grows.
	sweep := Series{Label: "modeled gather speedup vs workers (dim " + strconv.Itoa(dim) + ")"}
	for _, w := range []int{1, 2, 4, 8} {
		o.logf("gather: ablation workers=%d", w)
		t, err := runGatherTrial(senders, dim, rounds, w, foldChunk)
		if err != nil {
			return err
		}
		sweep.Points = append(sweep.Points, Point{Iter: float64(w), Value: speedup(serial.modelNs, t.modelNs)})
	}
	r.Series = append(r.Series, sweep)
	return nil
}
