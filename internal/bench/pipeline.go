package bench

import (
	"fmt"
	"sync"
	"time"

	"malt/internal/dataflow"
	"malt/internal/dstorm"
	"malt/internal/fabric"
)

// pipeline: ablation of the per-destination send coalescer (PR 3). Eight
// ranks scatter model-sized updates all-to-all over a DelaySpin fabric with
// the paper's upper-range InfiniBand base latency (3 µs per write). The
// sync arm pays that latency once per destination per update; the batched
// arm merges MaxBatchCount updates per destination into one fabric write.
//
// The CI regression gate keys off the deterministic metrics: modeled wire
// time per update (fabric cost model, machine-independent), the exact
// writes-saved fraction (1 - 1/batch with count-only flushing), and the
// zero-valued correctness counters (lost/exhausted/failed). Wall-clock
// numbers are reported but informational.
func init() {
	title := "send coalescing ablation: modeled+wall scatter cost, sync vs batched (all-to-all)"
	register(Experiment{
		ID:    "pipeline",
		Title: title,
		Run:   run("pipeline", title, runPipelineExp),
	})
}

// pipeTrial is one measured configuration of the coalescing ablation.
type pipeTrial struct {
	wallNsOp    float64 // wall ns per scattered update (per sender op)
	modelNsOp   float64 // modeled wire ns per delivered update
	delivered   uint64  // updates that reached a peer ring
	expected    uint64  // ranks * ops * fan-out
	writesSaved uint64  // fabric writes eliminated by coalescing
	bytesMerged uint64  // payload bytes that travelled in a merged batch
	exhausted   uint64  // retries that gave up (must be 0: no chaos here)
	failed      uint64  // fabric-level failed writes (must be 0)
}

// runPipeTrial scatters ops updates of size bytes from every rank to every
// peer. batch <= 1 runs the synchronous path; batch > 1 enables the
// pipeline with count-only flushing so every fabric write carries exactly
// batch records (ops must divide evenly).
func runPipeTrial(ranks, ops, size, batch int) (pipeTrial, error) {
	var t pipeTrial
	if batch > 1 && ops%batch != 0 {
		return t, fmt.Errorf("ops %d not divisible by batch %d: partial flushes would break determinism", ops, batch)
	}
	f, err := fabric.New(fabric.Config{
		Ranks:   ranks,
		Delay:   fabric.DelaySpin,
		Latency: 3 * time.Microsecond,
	})
	if err != nil {
		return t, err
	}
	defer f.Close()
	c := dstorm.NewCluster(f)
	g, err := dataflow.New(dataflow.All, ranks)
	if err != nil {
		return t, err
	}
	segs := make([]*dstorm.Segment, ranks)
	errs := make([]error, ranks)
	var wg sync.WaitGroup
	for r := 0; r < ranks; r++ {
		wg.Add(1)
		go func(r int) {
			defer wg.Done()
			segs[r], errs[r] = c.Node(r).CreateSegment("pipe", dstorm.SegmentOptions{
				ObjectSize: size,
				QueueLen:   4,
				Graph:      g,
			})
		}(r)
	}
	wg.Wait()
	for _, err := range errs {
		if err != nil {
			return t, err
		}
	}
	if batch > 1 {
		for r := 0; r < ranks; r++ {
			c.Node(r).EnablePipeline(dstorm.PipelineConfig{
				MaxBatchCount: batch,
				MaxBatchBytes: 1 << 30,
				MaxDelay:      time.Hour,
			})
		}
		defer func() {
			for r := 0; r < ranks; r++ {
				c.Node(r).DisablePipeline()
			}
		}()
	}

	f.Stats().Reset() // measure only the scatter traffic, not segment setup
	start := time.Now()
	for r := 0; r < ranks; r++ {
		wg.Add(1)
		go func(r int) {
			defer wg.Done()
			payload := make([]byte, size)
			for i := 0; i < ops; i++ {
				//maltlint:allow bufretain -- steady-state benchmark deliberately re-posts one read-only buffer; reuse is the workload under measurement
				if _, err := segs[r].Scatter(payload, uint64(i+1)); err != nil {
					errs[r] = err
					return
				}
			}
			errs[r] = c.Node(r).Drain()
		}(r)
	}
	wg.Wait()
	wall := time.Since(start)
	for _, err := range errs {
		if err != nil {
			return t, err
		}
	}

	st := f.Stats()
	t.expected = uint64(ranks * ops * (ranks - 1))
	if batch > 1 {
		t.delivered = st.CoalescedRecords()
		for r := 0; r < ranks; r++ {
			ps := c.Node(r).PipelineStats()
			t.writesSaved += ps.WritesSaved
			t.bytesMerged += ps.BytesMerged
		}
	} else {
		t.delivered = st.TotalMessages()
	}
	t.wallNsOp = float64(wall.Nanoseconds()) / float64(ranks*ops)
	t.modelNsOp = float64(st.ModeledNetworkTime().Nanoseconds()) / float64(t.expected)
	t.failed = st.FailedWrites()
	for r := 0; r < ranks; r++ {
		t.exhausted += c.Node(r).RetryStats().Exhausted
	}
	return t, nil
}

func runPipelineExp(o Options, r *Report) error {
	ranks, ops, batch := 8, 256*o.Scale, 16
	if o.Quick {
		ranks, ops = 4, 64
	}
	sizes := []int{1 << 10, 4 << 10}
	labels := []string{"1KiB", "4KiB"}

	var exhausted, failed uint64
	for i, size := range sizes {
		lbl := labels[i]
		o.logf("pipeline: %s sync vs batched (ranks=%d ops=%d batch=%d)", lbl, ranks, ops, batch)
		base, err := runPipeTrial(ranks, ops, size, 1)
		if err != nil {
			return err
		}
		bat, err := runPipeTrial(ranks, ops, size, batch)
		if err != nil {
			return err
		}
		r.Metric("model_ns_update_sync_"+lbl, base.modelNsOp)
		r.Metric("model_ns_update_batched_"+lbl, bat.modelNsOp)
		r.Metric("model_speedup_"+lbl, speedup(base.modelNsOp, bat.modelNsOp))
		r.Metric("writes_saved_frac_"+lbl, float64(bat.writesSaved)/float64(bat.expected))
		r.Metric("wall_ns_op_sync_"+lbl, base.wallNsOp)
		r.Metric("wall_ns_op_batched_"+lbl, bat.wallNsOp)
		r.Metric("lost_updates_"+lbl, float64(base.expected-base.delivered)+float64(bat.expected-bat.delivered))
		exhausted += base.exhausted + bat.exhausted
		failed += base.failed + bat.failed
		r.Linef("%s: modeled %.0f -> %.0f ns/update (%.2fx), wall %.0f -> %.0f ns/op, %d/%d writes saved",
			lbl, base.modelNsOp, bat.modelNsOp, speedup(base.modelNsOp, bat.modelNsOp),
			base.wallNsOp, bat.wallNsOp, bat.writesSaved, bat.expected)
	}
	r.Metric("exhausted_writes", float64(exhausted))
	r.Metric("failed_writes", float64(failed))

	// Batch-size ablation curve at 1 KiB: modeled and wall cost per update
	// as the coalescer's count threshold grows. batch=1 is the sync path.
	model := Series{Label: "modeled ns/update vs batch (1KiB)"}
	wall := Series{Label: "wall ns/update vs batch (1KiB)"}
	for _, b := range []int{1, 2, 4, 8, 16, 32} {
		if ops%b != 0 {
			continue
		}
		o.logf("pipeline: ablation batch=%d", b)
		t, err := runPipeTrial(ranks, ops, 1<<10, b)
		if err != nil {
			return err
		}
		model.Points = append(model.Points, Point{Iter: float64(b), Value: t.modelNsOp})
		wall.Points = append(wall.Points, Point{Iter: float64(b), Value: t.wallNsOp})
	}
	r.Series = append(r.Series, model, wall)
	return nil
}
