package bench

import (
	"encoding/json"
	"fmt"
	"io"
	"sort"
	"strings"
)

// BenchJSON is the machine-readable form of a maltbench run: the schema of
// `maltbench -json` output and of the checked-in BENCH_BASELINE.json that
// the CI regression gate compares against.
type BenchJSON struct {
	Experiments map[string]ExpJSON `json:"experiments"`
}

// ExpJSON is one experiment's entry in BenchJSON.
type ExpJSON struct {
	Title string `json:"title,omitempty"`
	// ElapsedSec is informational (never gated — wall time on shared CI
	// runners is noise).
	ElapsedSec float64 `json:"elapsed_sec,omitempty"`
	// Metrics are the experiment's headline numbers. Gate behaviour is
	// derived from the metric name; see Classify.
	Metrics map[string]float64 `json:"metrics,omitempty"`
}

// ToJSON converts finished reports into the gate schema.
func ToJSON(reports []*Report) BenchJSON {
	out := BenchJSON{Experiments: make(map[string]ExpJSON, len(reports))}
	for _, r := range reports {
		out.Experiments[r.ID] = ExpJSON{
			Title:      r.Title,
			ElapsedSec: r.Elapsed.Seconds(),
			Metrics:    r.Metrics,
		}
	}
	return out
}

// WriteJSON writes b with stable formatting (indented, sorted keys — the
// encoding/json map behaviour), suitable both for artifacts and for the
// checked-in baseline.
func (b BenchJSON) WriteJSON(w io.Writer) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(b)
}

// ReadBenchJSON parses a baseline or run file.
func ReadBenchJSON(r io.Reader) (BenchJSON, error) {
	var b BenchJSON
	dec := json.NewDecoder(r)
	dec.DisallowUnknownFields()
	if err := dec.Decode(&b); err != nil {
		return BenchJSON{}, fmt.Errorf("bench: parsing baseline: %w", err)
	}
	return b, nil
}

// MetricClass describes how the regression gate treats one metric.
type MetricClass int

const (
	// Informational metrics are recorded but never gated (wall-clock
	// timings, raw byte counts — machine-dependent).
	Informational MetricClass = iota
	// LowerBetter metrics fail when the current value exceeds the baseline
	// by more than the tolerance (modeled latencies).
	LowerBetter
	// HigherBetter metrics fail when the current value falls below the
	// baseline by more than the tolerance (speedups, savings fractions).
	HigherBetter
	// Correctness metrics fail on ANY increase over the baseline, with no
	// tolerance: a lost update or an exhausted retry is a bug, not noise.
	Correctness
	// Exact metrics are deterministic invariants of a fixed algorithm
	// (message counts of an 8-rank all-reduce, say): the gate fails on ANY
	// deviation from the baseline, in either direction. A drop is as
	// suspicious as a rise — it means the algorithm changed.
	Exact
)

// Classify derives a metric's gate class from its name:
//
//   - *_exact                                       → Exact
//   - lost_*, torn_*, dup_*, *exhausted*, *failed*  → Correctness
//   - *speedup*, *_frac*                            → HigherBetter
//   - *model_ns*, *_ratio                           → LowerBetter
//   - everything else (wall_*, bytes, counts)       → Informational
//
// Only deterministic modeled quantities are gated as latencies; wall-clock
// metrics stay informational so the gate never flakes on a noisy runner.
func Classify(name string) MetricClass {
	switch {
	case strings.HasSuffix(name, "_exact"):
		return Exact
	case strings.HasPrefix(name, "lost_"),
		strings.HasPrefix(name, "torn_"),
		strings.HasPrefix(name, "dup_"),
		strings.Contains(name, "exhausted"),
		strings.Contains(name, "failed"):
		return Correctness
	case strings.Contains(name, "speedup"),
		strings.Contains(name, "_frac"):
		return HigherBetter
	case strings.Contains(name, "model_ns"),
		strings.HasSuffix(name, "_ratio"):
		return LowerBetter
	default:
		return Informational
	}
}

// Compare checks a current run against a baseline and returns the list of
// violations (empty = gate passes). tol is the fractional tolerance for
// latency/speedup metrics (0.15 = 15%); correctness and exact metrics
// tolerate nothing. Experiments or metrics present in the baseline but missing from
// the current run are violations — a silently dropped metric must not pass
// the gate. New metrics absent from the baseline are ignored (they gate
// once the baseline is regenerated).
func Compare(baseline, current BenchJSON, tol float64) []string {
	var violations []string
	ids := make([]string, 0, len(baseline.Experiments))
	for id := range baseline.Experiments {
		ids = append(ids, id)
	}
	sort.Strings(ids)
	for _, id := range ids {
		base := baseline.Experiments[id]
		cur, ok := current.Experiments[id]
		if !ok {
			violations = append(violations, fmt.Sprintf("%s: experiment missing from current run", id))
			continue
		}
		names := make([]string, 0, len(base.Metrics))
		for name := range base.Metrics {
			names = append(names, name)
		}
		sort.Strings(names)
		for _, name := range names {
			bv := base.Metrics[name]
			cv, ok := cur.Metrics[name]
			if !ok {
				violations = append(violations, fmt.Sprintf("%s/%s: metric missing from current run", id, name))
				continue
			}
			switch Classify(name) {
			case Exact:
				if cv != bv {
					violations = append(violations,
						fmt.Sprintf("%s/%s: deterministic metric changed %g -> %g (must match the baseline exactly)", id, name, bv, cv))
				}
			case Correctness:
				if cv > bv {
					violations = append(violations,
						fmt.Sprintf("%s/%s: correctness counter rose %g -> %g", id, name, bv, cv))
				}
			case LowerBetter:
				if cv > bv*(1+tol) {
					violations = append(violations,
						fmt.Sprintf("%s/%s: regressed %g -> %g (>%0.f%% over baseline)", id, name, bv, cv, tol*100))
				}
			case HigherBetter:
				if cv < bv*(1-tol) {
					violations = append(violations,
						fmt.Sprintf("%s/%s: regressed %g -> %g (>%0.f%% under baseline)", id, name, bv, cv, tol*100))
				}
			}
		}
	}
	return violations
}
