package bench

import (
	"strings"
	"testing"

	"malt/internal/consistency"
	"malt/internal/data"
	"malt/internal/dataflow"
	"malt/internal/ml/svm"
)

func TestSeriesHelpers(t *testing.T) {
	s := Series{Label: "x", Points: []Point{
		{Time: 1, Iter: 100, Value: 0.5},
		{Time: 2, Iter: 200, Value: 0.3},
		{Time: 3, Iter: 300, Value: 0.2},
	}}
	if s.Final() != 0.2 {
		t.Fatalf("Final = %v", s.Final())
	}
	if tt, ok := s.TimeToReach(0.3); !ok || tt != 2 {
		t.Fatalf("TimeToReach = %v, %v", tt, ok)
	}
	if it, ok := s.ItersToReach(0.25); !ok || it != 300 {
		t.Fatalf("ItersToReach = %v, %v", it, ok)
	}
	if _, ok := s.TimeToReach(0.1); ok {
		t.Fatal("unreachable goal reported reached")
	}
	if tt, ok := s.TimeToExceed(0.4); !ok || tt != 1 {
		t.Fatalf("TimeToExceed = %v, %v", tt, ok)
	}
	if (Series{}).Final() != 0 {
		t.Fatal("empty Final should be 0")
	}
	if minValue(s) != 0.2 {
		t.Fatalf("minValue = %v", minValue(s))
	}
}

func TestReportHelpers(t *testing.T) {
	r := &Report{ID: "x", Title: "t"}
	r.Linef("a=%d", 1)
	r.Metric("m", 2)
	if len(r.Lines) != 1 || r.Metrics["m"] != 2 {
		t.Fatalf("report = %+v", r)
	}
	r.Series = append(r.Series, Series{Label: "s1"})
	if r.FindSeries("s1") == nil || r.FindSeries("nope") != nil {
		t.Fatal("FindSeries wrong")
	}
}

func TestRegistry(t *testing.T) {
	ids := IDs()
	want := []string{"ablation-interleave", "ablation-queue", "allreduce", "compression",
		"elastic", "fig10", "fig11", "fig12", "fig13", "fig14", "fig4", "fig5", "fig6",
		"fig7", "fig8", "fig9", "gather", "overlap", "pipeline", "saturation",
		"saturation-wall", "table2", "table3"}
	if len(ids) != len(want) {
		t.Fatalf("IDs = %v", ids)
	}
	for i := range want {
		if ids[i] != want[i] {
			t.Fatalf("IDs = %v, want %v", ids, want)
		}
	}
	if _, err := Get("fig4"); err != nil {
		t.Fatal(err)
	}
	if _, err := Get("nope"); err == nil {
		t.Fatal("unknown experiment should fail")
	}
	if len(All()) != len(want) {
		t.Fatal("All() size mismatch")
	}
}

func TestCBScale(t *testing.T) {
	if cbScale(5000) != 50 || cbScale(1000) != 10 || cbScale(100) != 10 {
		t.Fatalf("cbScale wrong: %d %d %d", cbScale(5000), cbScale(1000), cbScale(100))
	}
}

func TestSpeedupGuards(t *testing.T) {
	if speedup(4, 2) != 2 || speedup(1, 0) != 0 {
		t.Fatal("speedup wrong")
	}
}

func smallDS(t *testing.T) *data.Dataset {
	t.Helper()
	ds, err := data.GenerateClassification(data.ClassificationSpec{
		Name: "small", Dim: 50, Train: 1200, Test: 300, NNZ: 6, Noise: 0.05, Seed: 77,
	})
	if err != nil {
		t.Fatal(err)
	}
	return ds
}

func TestRunSVMValidation(t *testing.T) {
	ds := smallDS(t)
	if _, err := RunSVM(SVMOpts{Ranks: 2, CB: 10}); err == nil {
		t.Fatal("missing DS should fail")
	}
	if _, err := RunSVM(SVMOpts{DS: ds, Ranks: 0, CB: 10}); err == nil {
		t.Fatal("Ranks=0 should fail")
	}
	if _, err := RunSVM(SVMOpts{DS: ds, Ranks: 2, CB: 0}); err == nil {
		t.Fatal("CB=0 should fail")
	}
	if _, err := RunSVM(SVMOpts{DS: ds, Ranks: 2, CB: 100000, Epochs: 1}); err == nil {
		t.Fatal("CB exceeding shard should fail")
	}
}

func TestRunSVMGradAvgAndModelAvg(t *testing.T) {
	ds := smallDS(t)
	for _, mode := range []CommMode{GradAvg, ModelAvg} {
		res, err := RunSVM(SVMOpts{
			DS: ds, Ranks: 3, CB: 50,
			Dataflow: dataflow.All, Sync: consistency.BSP,
			Mode: mode, Epochs: 4, EvalEvery: 1,
			SVM: svm.Config{Dim: ds.Dim, Lambda: 1e-4, Eta0: 1},
		})
		if err != nil {
			t.Fatalf("%v: %v", mode, err)
		}
		if len(res.Curve.Points) == 0 {
			t.Fatalf("%v: empty curve", mode)
		}
		first, last := res.Curve.Points[0].Value, res.Curve.Final()
		if last >= first {
			t.Fatalf("%v: loss did not decrease (%v -> %v)", mode, first, last)
		}
		tr, _ := svm.New(svm.Config{Dim: ds.Dim})
		if acc := tr.Accuracy(res.FinalW, ds.Test); acc < 0.8 {
			t.Fatalf("%v: accuracy %v", mode, acc)
		}
		if res.Stats.TotalBytes() == 0 {
			t.Fatalf("%v: no traffic", mode)
		}
	}
}

func TestRunSVMGoalStopsEarly(t *testing.T) {
	ds := smallDS(t)
	res, err := RunSVM(SVMOpts{
		DS: ds, Ranks: 2, CB: 50,
		Sync: consistency.BSP, Mode: GradAvg,
		Epochs: 50, Goal: 0.9, EvalEvery: 1,
		SVM: svm.Config{Dim: ds.Dim, Lambda: 1e-4, Eta0: 1},
	})
	if err != nil {
		t.Fatal(err)
	}
	if !res.Reached {
		t.Fatalf("goal 0.9 should be easy; final %v", res.Curve.Final())
	}
	// Early stop: far fewer than 50 epochs' worth of batches.
	maxBatches := uint64(50 * (len(ds.Train) / 2 / 50))
	if res.Batches >= maxBatches {
		t.Fatalf("did not stop early: %d batches", res.Batches)
	}
}

func TestRunSVMFaultInjection(t *testing.T) {
	ds := smallDS(t)
	res, err := RunSVM(SVMOpts{
		DS: ds, Ranks: 3, CB: 50,
		Sync: consistency.ASP, Mode: GradAvg,
		Epochs: 6, EvalEvery: 2,
		SVM:      svm.Config{Dim: ds.Dim, Lambda: 1e-4, Eta0: 1},
		KillRank: 2, KillAtIter: 5,
	})
	if err != nil {
		t.Fatal(err)
	}
	tr, _ := svm.New(svm.Config{Dim: ds.Dim})
	if acc := tr.Accuracy(res.FinalW, ds.Test); acc < 0.75 {
		t.Fatalf("post-failure accuracy %v", acc)
	}
}

func TestRunSVMJitterSlowsBSP(t *testing.T) {
	ds := smallDS(t)
	base := SVMOpts{
		DS: ds, Ranks: 2, CB: 100,
		Sync: consistency.BSP, Mode: GradAvg,
		Epochs: 2, EvalEvery: 100,
		SVM: svm.Config{Dim: ds.Dim},
	}
	fast, err := RunSVM(base)
	if err != nil {
		t.Fatal(err)
	}
	slow := base
	slow.Jitter = JitterSpec{Base: 2e6, Spread: 1e6} // 2–3 ms per batch
	slowRes, err := RunSVM(slow)
	if err != nil {
		t.Fatal(err)
	}
	if slowRes.Elapsed <= fast.Elapsed {
		t.Fatalf("jitter did not slow the run: %v vs %v", slowRes.Elapsed, fast.Elapsed)
	}
}

func TestRunSerialSVM(t *testing.T) {
	ds := smallDS(t)
	res, err := RunSerialSVM(SerialOpts{
		DS: ds, SVM: svm.Config{Dim: ds.Dim}, Epochs: 3, EvalEvery: 200,
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Curve.Points) == 0 || res.Curve.Final() >= res.Curve.Points[0].Value {
		t.Fatalf("serial curve wrong: %+v", res.Curve.Points)
	}
	if _, err := RunSerialSVM(SerialOpts{}); err == nil {
		t.Fatal("missing DS should fail")
	}
}

func TestJitterSpec(t *testing.T) {
	j := JitterSpec{}
	if j.enabled() {
		t.Fatal("zero jitter should be disabled")
	}
	j = JitterSpec{Base: 100, Spread: 100, StragglerProb: 1, StragglerMult: 3}
	if !j.enabled() {
		t.Fatal("jitter should be enabled")
	}
}

// TestExperimentsQuick runs every registered experiment at Quick size and
// checks the headline shapes the paper reports. This is the integration
// test for the whole reproduction; it is skipped under -short.
func TestExperimentsQuick(t *testing.T) {
	if testing.Short() {
		t.Skip("quick experiment suite skipped in -short mode")
	}
	if raceEnabled {
		t.Skip("quick experiment suite skipped under the race detector (covered by unit tests)")
	}
	opts := Options{Quick: true}
	reports := map[string]*Report{}
	for _, e := range All() {
		e := e
		t.Run(e.ID, func(t *testing.T) {
			rep, err := e.Run(opts)
			if err != nil {
				t.Fatalf("%s: %v", e.ID, err)
			}
			if len(rep.Lines) == 0 {
				t.Fatalf("%s: empty report", e.ID)
			}
			reports[e.ID] = rep
			check(t, e.ID, rep)
		})
	}
}

// check asserts the per-figure shapes. Thresholds are deliberately loose:
// the quick runs are small and the host is shared.
func check(t *testing.T, id string, r *Report) {
	t.Helper()
	m := r.Metrics
	switch id {
	case "fig4":
		if m["speedup_iters"] <= 1 {
			t.Errorf("fig4: distributed training should need fewer examples per rank (speedup_iters=%v)", m["speedup_iters"])
		}
	case "fig5":
		if m["speedup_malt"] <= m["speedup_mrsvm"] {
			t.Errorf("fig5: MALT (%v) should beat MR-SVM (%v) by iterations", m["speedup_malt"], m["speedup_mrsvm"])
		}
	case "fig7":
		if m["speedup_fixed"] <= 1 && m["speedup_byiter"] <= 1 {
			t.Errorf("fig7: distributed Hogwild should beat serial by iterations: %v", m)
		}
	case "fig8":
		// Gather folds N−1 vs log N updates — a ~5x margin that stays
		// robust at quick size (scatter's margin is tens of milliseconds
		// and flips under load).
		if m["halton_gather_s"] >= m["all_gather_s"] {
			t.Errorf("fig8: Halton gather (%v) should cost less than all-to-all (%v)",
				m["halton_gather_s"], m["all_gather_s"])
		}
	case "fig9":
		if m["ps-gradavg_wait_s"] <= m["ps-gradavg_compute_s"] {
			t.Errorf("fig9: PS clients should be wait-dominated: %v", m)
		}
		if m["halton-gradavg_wait_s"] >= m["halton-gradavg_compute_s"] {
			t.Errorf("fig9: MALT replicas should be compute-dominated: %v", m)
		}
	case "fig10":
		// Quick-size wall-clock ratios are load-sensitive; assert only
		// that ASP and SSP both reached the BSP-derived goal (speedup > 0).
		// The full-size run (maltbench -exp fig10) checks magnitudes.
		if m["speedup_SSP"] <= 0 || m["speedup_ASYNC"] <= 0 {
			t.Errorf("fig10: ASP/SSP failed to reach the BSP goal: %v", m)
		}
	case "fig12":
		// Compare whole-run totals (deterministic: both ASP runs execute
		// the same batch count), not the goal-scaled estimates.
		if m["mb_total_halton_ASP"] >= m["mb_total_all_ASP"] {
			t.Errorf("fig12: Halton should send fewer bytes per round than all-to-all: %v", m)
		}
	case "fig13":
		// All-to-all traffic must grow faster with ranks than Halton's.
		allGrowth := m["all_mb_n8"] / m["all_mb_n2"]
		halGrowth := m["halton_mb_n8"] / m["halton_mb_n2"]
		if allGrowth <= halGrowth {
			t.Errorf("fig13: all-to-all growth (%v) should exceed Halton growth (%v)", allGrowth, halGrowth)
		}
	case "fig14":
		if m["acc_faulty"] < 0.7 {
			t.Errorf("fig14: model should converge despite the failure: %v", m)
		}
	case "ablation-interleave":
		if m["halton_sync_10"] >= m["halton_sync_-1"] {
			// Interleaving must lower (or at worst match) the plateau.
			t.Errorf("ablation: interleaving did not help: %v", m)
		}
	case "ablation-queue":
		if m["overwritten_q1"] <= m["overwritten_q16"] {
			t.Errorf("ablation-queue: deeper rings should lose fewer updates: %v", m)
		}
	}
}

func TestReportPrintFormats(t *testing.T) {
	r := &Report{ID: "figX", Title: "demo"}
	r.Linef("row %d", 1)
	r.Metric("zeta", 1.5)
	r.Metric("alpha", 2)
	r.Elapsed = 1500 * 1e6 // 1.5s in ns
	var buf strings.Builder
	r.Print(&buf)
	out := buf.String()
	for _, want := range []string{"=== figX: demo ===", "row 1", "alpha=2", "zeta=1.5", "elapsed"} {
		if !strings.Contains(out, want) {
			t.Fatalf("Print output missing %q:\n%s", want, out)
		}
	}
	// Metrics print in sorted key order.
	if strings.Index(out, "alpha=") > strings.Index(out, "zeta=") {
		t.Fatal("metrics not sorted")
	}
}

func TestReportPrintSeries(t *testing.T) {
	r := &Report{ID: "figX"}
	r.Series = append(r.Series, Series{
		Label:  "curve-a",
		Points: []Point{{Time: 0.5, Iter: 100, Value: 0.25}},
	})
	var buf strings.Builder
	r.PrintSeries(&buf)
	out := buf.String()
	if !strings.Contains(out, "# figX / curve-a") {
		t.Fatalf("missing header: %s", out)
	}
	if !strings.Contains(out, `"curve-a" 0.5000 100 0.250000`) {
		t.Fatalf("missing data row: %s", out)
	}
}

func TestQueueImbalanceConservation(t *testing.T) {
	// Every update a sender pushes is either consumed or overwritten —
	// nothing vanishes, nothing is double-counted.
	const ranks, rounds = 4, 120
	consumed, overwritten, err := runQueueImbalance(ranks, 64, 4, rounds)
	if err != nil {
		t.Fatal(err)
	}
	want := uint64((ranks - 1) * rounds)
	if consumed+overwritten != want {
		t.Fatalf("consumed %d + overwritten %d != sent %d", consumed, overwritten, want)
	}
	if consumed == 0 {
		t.Fatal("slow consumer should still consume something")
	}
}
