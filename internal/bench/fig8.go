package bench

import (
	"time"

	"malt/internal/consistency"
	"malt/internal/data"
	"malt/internal/dataflow"
	"malt/internal/ml/svm"
	"malt/internal/trace"
)

// Fig 8: time consumed by each distributed-SVM training step (gradient,
// scatter, gather, barrier) for the RCV1 workload under synchronous
// training with 20 ranks, for the ALL and HALTON dataflows. The paper's
// point: replicas spend their time computing and pushing gradients, not
// blocking.
func init() {
	register(Experiment{
		ID:    "fig8",
		Title: "Per-phase time, distributed SVM on RCV1 (BSP, gradavg, cb=5000, ranks=20), all vs Halton",
		Run: run("fig8", "Per-phase time, distributed SVM on RCV1 (BSP, gradavg, cb=5000, ranks=20), all vs Halton",
			func(o Options, r *Report) error {
				ds, err := data.RCV1Shape.Generate(o.Scale)
				if err != nil {
					return err
				}
				ranks, epochs := 20, 8
				if o.Quick {
					ranks, epochs = 8, 3
				}
				cb := cbScale(5000)
				svmCfg := svm.Config{Dim: ds.Dim, Lambda: 1e-5, Eta0: 2}

				r.Linef("%-8s %10s %10s %10s %10s %10s", "flow", "total", "gradient", "scatter", "gather", "barrier")
				for _, flow := range []dataflow.Kind{dataflow.All, dataflow.Halton} {
					o.logf("fig8: %v run", flow)
					res, err := RunSVM(SVMOpts{
						DS: ds, Ranks: ranks, CB: cb,
						Dataflow: flow, Sync: consistency.BSP,
						Mode: GradAvg, Epochs: epochs,
						SVM: svmCfg, Sparse: true, EvalEvery: 1 << 30, // no eval: pure phase timing
					})
					if err != nil {
						return err
					}
					// Average phase times across ranks.
					agg := &trace.Timer{}
					for _, tm := range res.Timers {
						agg.Merge(tm)
					}
					n := float64(ranks)
					per := func(p trace.Phase) float64 {
						return agg.Get(p).Seconds() / n
					}
					total := per(trace.Compute) + per(trace.Scatter) + per(trace.Gather) + per(trace.Barrier)
					r.Linef("%-8s %9.3fs %9.3fs %9.3fs %9.3fs %9.3fs",
						flow, total, per(trace.Compute), per(trace.Scatter), per(trace.Gather), per(trace.Barrier))
					r.Metric(flow.String()+"_compute_s", per(trace.Compute))
					r.Metric(flow.String()+"_scatter_s", per(trace.Scatter))
					r.Metric(flow.String()+"_gather_s", per(trace.Gather))
					r.Metric(flow.String()+"_barrier_s", per(trace.Barrier))
					r.Metric(flow.String()+"_total_s", total)
					_ = time.Second
				}
				r.Linef("(single-core host: barrier time absorbs peers' serialized compute; on the paper's")
				r.Linef(" 8-machine cluster compute overlaps and the barrier share is small. Compare the")
				r.Linef(" scatter/gather columns — the dataflow effect — across rows.)")
				return nil
			}),
	})
}
