package bench

import (
	"bufio"
	"fmt"
	"os"
	"path/filepath"
	"runtime"
	"strings"

	"malt/internal/data"
	"malt/internal/ml/nn"
)

// Table 2: applications, models and dataset properties — the synthetic,
// scaled-down equivalents this repository generates, with the paper's
// original sizes alongside.
func init() {
	register(Experiment{
		ID:    "table2",
		Title: "MALT applications and dataset properties (synthetic scaled equivalents)",
		Run: run("table2", "MALT applications and dataset properties (synthetic scaled equivalents)",
			func(o Options, r *Report) error {
				r.Linef("%-22s %-6s %-9s %9s %8s %10s %9s %9s",
					"application", "model", "dataset", "train", "test", "params", "avg-nnz", "density")
				paper := map[string]string{
					"rcv1":    "781K/23K/47,152 in the paper",
					"alpha":   "250K/250K/500",
					"dna":     "23M/250K/800",
					"webspam": "250K/100K/16.6M",
					"splice":  "10M/111K/11M",
				}
				apps := map[string]string{
					"rcv1":    "Document classification",
					"alpha":   "Image classification",
					"dna":     "DNA detection",
					"webspam": "Webspam detection",
					"splice":  "Genome detection",
				}
				for _, sh := range data.Shapes() {
					ds, err := sh.Generate(o.Scale)
					if err != nil {
						return err
					}
					st := ds.Stats()
					r.Linef("%-22s %-6s %-9s %9d %8d %10d %9.1f %9.5f",
						apps[st.Name], "SVM", st.Name, st.Train, st.Test, st.Dim, st.AvgNNZ, st.Density)
					r.Linef("%-22s %-6s %-9s (%s)", "", "", "", paper[st.Name])
					r.Metric(st.Name+"_params", float64(st.Dim))
				}
				mfSpec := data.NetflixSpec(o.Scale)
				mfParams := (mfSpec.Users + mfSpec.Items) * mfSpec.Rank
				r.Linef("%-22s %-6s %-9s %9d %8d %10d", "Collaborative filtering", "MF", "netflix",
					mfSpec.Train, mfSpec.Test, mfParams)
				r.Linef("%-22s %-6s %-9s (100M/2.8M/14.9M in the paper)", "", "", "")
				ck := data.KDD12Spec(o.Scale)
				sizes, err := nn.LayerSizes(nn.Config{Input: ck.Dim, H1: 64, H2: 32})
				if err != nil {
					return err
				}
				nnParams := 0
				for _, s := range sizes {
					nnParams += s
				}
				r.Linef("%-22s %-6s %-9s %9d %8d %10d", "CTR prediction", "SSI", "kdd12",
					ck.Train, ck.Test, nnParams)
				r.Linef("%-22s %-6s %-9s (150M/100K/12.8M in the paper)", "", "", "")
				r.Metric("netflix_params", float64(mfParams))
				r.Metric("kdd12_params", float64(nnParams))
				return nil
			}),
	})
}

// Table 3: developer effort — lines of MALT-specific code in each example
// application versus its total size, measured from the example sources in
// this repository (the paper reports ~87 modified + ~106 added lines,
// ≈15% of each application).
func init() {
	register(Experiment{
		ID:    "table3",
		Title: "Developer effort: MALT annotation lines per example application",
		Run: run("table3", "Developer effort: MALT annotation lines per example application",
			func(o Options, r *Report) error {
				root, err := repoRoot()
				if err != nil {
					return err
				}
				examples := []struct{ app, dataset, path string }{
					{"SVM", "rcv1", "examples/svm/main.go"},
					{"Matrix Factorization", "netflix", "examples/matrixfactorization/main.go"},
					{"SSI (neural net)", "kdd12", "examples/neuralnet/main.go"},
					{"Quickstart SVM", "synthetic", "examples/quickstart/main.go"},
					{"K-means", "synthetic", "examples/kmeans/main.go"},
				}
				r.Linef("%-22s %-10s %8s %10s %8s", "application", "dataset", "LOC", "MALT LOC", "share")
				for _, ex := range examples {
					total, maltLines, err := countMALT(filepath.Join(root, ex.path))
					if err != nil {
						return fmt.Errorf("%s: %w", ex.path, err)
					}
					share := 0.0
					if total > 0 {
						share = float64(maltLines) / float64(total) * 100
					}
					r.Linef("%-22s %-10s %8d %10d %7.1f%%", ex.app, ex.dataset, total, maltLines, share)
					r.Metric(strings.ReplaceAll(ex.dataset, " ", "_")+"_malt_loc", float64(maltLines))
				}
				r.Linef("(paper: ~87 modified + ~106 added lines, ~15%% of each application)")
				return nil
			}),
	})
}

// repoRoot locates the module root from this source file's position.
func repoRoot() (string, error) {
	_, file, _, ok := runtime.Caller(0)
	if !ok {
		return "", fmt.Errorf("bench: cannot locate source file")
	}
	// file = <root>/internal/bench/tables.go
	return filepath.Dir(filepath.Dir(filepath.Dir(file))), nil
}

// countMALT counts the non-blank, non-comment lines of a Go file and how
// many of them touch the MALT API (the "added for data-parallelism" lines
// of Table 3).
func countMALT(path string) (total, maltLines int, err error) {
	f, err := os.Open(path)
	if err != nil {
		return 0, 0, err
	}
	defer f.Close()
	maltMarkers := []string{
		"malt.", "ctx.", "CreateVector", "Scatter", "Gather", "Barrier",
		"Advance(", "Commit(", "Shard(", "SetIteration",
	}
	sc := bufio.NewScanner(f)
	for sc.Scan() {
		line := strings.TrimSpace(sc.Text())
		if line == "" || strings.HasPrefix(line, "//") {
			continue
		}
		total++
		for _, m := range maltMarkers {
			if strings.Contains(line, m) {
				maltLines++
				break
			}
		}
	}
	return total, maltLines, sc.Err()
}
