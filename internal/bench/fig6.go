package bench

import (
	"fmt"
	"sync"
	"sync/atomic"
	"time"

	"malt/internal/consistency"
	"malt/internal/core"
	"malt/internal/data"
	"malt/internal/dataflow"
	"malt/internal/ml/nn"
	"malt/internal/vol"
)

// Fig 6: AUC vs time for the three-layer SSI click-prediction network on
// the KDD12 workload (all, BSP, modelavg, ranks=8) across communication
// batch sizes. Every layer is its own MALT vector, synchronized per batch.
// The paper reaches AUC 0.70 up to 1.5× faster than single-rank, with an
// interior-optimal cb (20k beats 15k and 25k).
func init() {
	register(Experiment{
		ID:    "fig6",
		Title: "KDD12 SSI neural network AUC vs time (all, BSP, modelavg, ranks=8), cb sweep",
		Run: run("fig6", "KDD12 SSI neural network AUC vs time (all, BSP, modelavg, ranks=8), cb sweep",
			func(o Options, r *Report) error {
				spec := data.KDD12Spec(o.Scale)
				ranks, epochs := 8, 6
				nominals := []int{15000, 20000, 25000}
				if o.Quick {
					spec.Dim = 2000
					spec.Train = 8000
					spec.Test = 1500
					ranks, epochs = 4, 3
					nominals = []int{20000}
				}
				ds, err := data.GenerateClicks(spec)
				if err != nil {
					return err
				}
				nnCfg := nn.Config{Input: ds.Dim, H1: 64, H2: 32, Eta0: 0.1}

				o.logf("fig6: single-rank baseline")
				serial, err := runSerialNN(ds, nnCfg, epochs)
				if err != nil {
					return err
				}
				// Model averaging needs more passes to match the serial AUC
				// (each replica sees 1/ranks of the data per epoch), so the
				// distributed runs get extra epochs and stop at the goal.
				distEpochs := 2*epochs + 2
				goal := serial.Final() * 0.98
				serialTime, _ := serial.TimeToExceed(goal)
				r.Series = append(r.Series, serial)
				r.Linef("goal AUC %.4f; single-rank time %.2fs", goal, serialTime)

				for _, nominal := range nominals {
					cb := cbScale(nominal)
					o.logf("fig6: distributed run cb=%d", cb)
					curve, err := runDistributedNN(ds, nnCfg, ranks, cb, distEpochs, goal)
					if err != nil {
						return err
					}
					curve.Label = fmt.Sprintf("kdd12/nn/cb=%d", nominal)
					r.Series = append(r.Series, curve)
					if t, ok := curve.TimeToExceed(goal); ok {
						sp := speedup(serialTime, t)
						r.Linef("MALT_all cb=%-6d (scaled %3d): %6.2fs -> %.2fx", nominal, cb, t, sp)
						r.Metric(fmt.Sprintf("speedup_cb%d", nominal), sp)
					} else {
						r.Linef("MALT_all cb=%-6d (scaled %3d): goal not reached (final AUC %.4f)", nominal, cb, curve.Final())
						r.Metric(fmt.Sprintf("speedup_cb%d", nominal), 0)
					}
				}
				return nil
			}),
	})
}

func runSerialNN(ds *data.Dataset, cfg nn.Config, epochs int) (Series, error) {
	net, err := nn.New(cfg, 42)
	if err != nil {
		return Series{}, err
	}
	curve := Series{Label: "kdd12/nn/serial"}
	start := time.Now()
	seen := 0
	const evalEvery = 2000
	for e := 0; e < epochs; e++ {
		for _, ex := range ds.Train {
			net.Step(ex)
			seen++
			if seen%evalEvery == 0 {
				curve.Points = append(curve.Points, Point{
					Time: time.Since(start).Seconds(), Iter: float64(seen), Value: net.AUC(ds.Test),
				})
			}
		}
	}
	return curve, nil
}

// runDistributedNN trains the SSI network data-parallel: each of the three
// layers is a separate MALT vector ("each layer of parameters is
// represented using a separate maltGradient"), scattered and averaged
// every cb examples under BSP.
func runDistributedNN(ds *data.Dataset, cfg nn.Config, ranks, cb, epochs int, goal float64) (Series, error) {
	cluster, err := core.NewCluster(core.Config{
		Ranks: ranks, Dataflow: dataflow.All, Sync: consistency.BSP,
	})
	if err != nil {
		return Series{}, err
	}
	sizes, err := nn.LayerSizes(cfg)
	if err != nil {
		return Series{}, err
	}
	var (
		mu    sync.Mutex
		curve Series
		start time.Time
		stop  atomic.Bool
	)
	res := cluster.Run(func(ctx *core.Context) error {
		layers := make([]*vol.Vector, nn.NumLayers)
		bufs := make([][]float64, nn.NumLayers)
		for i := range layers {
			v, err := ctx.CreateVector(fmt.Sprintf("nn/layer%d", i), vol.Dense, sizes[i])
			if err != nil {
				return err
			}
			layers[i] = v
			bufs[i] = v.Data()
		}
		net, err := nn.NewOver(cfg, bufs)
		if err != nil {
			return err
		}
		net.Init(42) // identical start on every replica
		if err := ctx.Barrier(layers[0]); err != nil {
			return err
		}
		if ctx.Rank() == 0 {
			mu.Lock()
			start = time.Now()
			mu.Unlock()
		}
		iter := uint64(0)
		for epoch := 0; epoch < epochs && !stop.Load(); epoch++ {
			lo, hi, err := ctx.Shard(len(ds.Train))
			if err != nil {
				return err
			}
			shard := ds.Train[lo:hi]
			nBatches := (len(ds.Train) / len(ctx.Survivors())) / cb
			for b := 0; b < nBatches && !stop.Load(); b++ {
				batch := shard[b*cb : (b+1)*cb]
				ctx.Compute(func() { net.TrainEpoch(batch) })
				iter++
				ctx.SetIteration(iter)
				for _, v := range layers {
					if err := ctx.Scatter(v); err != nil {
						return err
					}
				}
				if err := ctx.Advance(layers[0]); err != nil {
					return err
				}
				for _, v := range layers {
					if _, err := ctx.Gather(v, vol.Average); err != nil {
						return err
					}
				}
				if ctx.Rank() == 0 {
					auc := net.AUC(ds.Test)
					mu.Lock()
					curve.Points = append(curve.Points, Point{
						Time:  time.Since(start).Seconds(),
						Iter:  float64(iter) * float64(cb),
						Value: auc,
					})
					mu.Unlock()
					if goal > 0 && auc >= goal {
						stop.Store(true)
					}
				}
				if err := ctx.Commit(layers[0]); err != nil {
					return err
				}
			}
		}
		return nil
	})
	if errs := res.LiveErrors(cluster.Fabric().Alive); len(errs) > 0 {
		return Series{}, errs[0]
	}
	return curve, nil
}
