package bench

import (
	"time"

	"malt/internal/consistency"
	"malt/internal/data"
	"malt/internal/dataflow"
	"malt/internal/ml/svm"
)

// Fig 10: convergence under bulk-synchronous (BSP), fully asynchronous
// (ASP) and bounded-staleness (SSP) training on the splice-site workload
// (all, modelavg, cb=5000, ranks=8). The paper finds SSP fastest to the
// goal, then ASP, then BSP (6× and 7.2× over BSP).
func init() {
	register(Experiment{
		ID:    "fig10",
		Title: "Splice-site: BSP vs ASP vs SSP (all, modelavg, cb=5000, ranks=8)",
		Run: run("fig10", "Splice-site: BSP vs ASP vs SSP (all, modelavg, cb=5000, ranks=8)",
			func(o Options, r *Report) error {
				if o.Quick {
					ds, err := data.GenerateClassification(data.ClassificationSpec{
						Name: "splice", Dim: 20000, Train: 6000, Test: 1000,
						NNZ: 60, Noise: 0.10, Seed: 105,
					})
					if err != nil {
						return err
					}
					return fig10Body(o, r, ds, 4, 6)
				}
				ds, err := data.SpliceShape.Generate(o.Scale)
				if err != nil {
					return err
				}
				return fig10Body(o, r, ds, 8, 12)
			}),
	})
}

func fig10Body(o Options, r *Report, ds *data.Dataset, ranks, epochs int) error {
	cb := cbScale(5000)
	svmCfg := svm.Config{Dim: ds.Dim, Lambda: 1e-5, Eta0: 1}

	// The paper's baseline for this dataset is BSP over MALT (splice-site
	// does not fit one machine); the goal is derived from the BSP run.
	configs := []struct {
		label string
		sync  consistency.Model
		bound uint64
	}{
		{"BSP", consistency.BSP, 0},
		{"ASYNC", consistency.ASP, 0},
		{"SSP", consistency.SSP, 4},
	}
	results := make([]*RunStats, len(configs))
	for i, cfgRun := range configs {
		o.logf("fig10: %s run", cfgRun.label)
		res, err := RunSVM(SVMOpts{
			DS: ds, Ranks: ranks, CB: cb,
			Dataflow: dataflow.All, Sync: cfgRun.sync, Bound: cfgRun.bound,
			Cutoff: 8,
			Mode:   ModelAvg, Epochs: epochs,
			SVM: svmCfg, Sparse: false, EvalEvery: 2,
			// Per-machine speed variance with transient stragglers — the
			// cost BSP pays every round and ASP/SSP are designed to dodge.
			Jitter: JitterSpec{Base: 300 * time.Microsecond, Spread: 400 * time.Microsecond,
				StragglerProb: 0.08, StragglerMult: 10},
		})
		if err != nil {
			return err
		}
		res.Curve.Label = "splice/" + cfgRun.label
		results[i] = res
		r.Series = append(r.Series, res.Curve)
	}
	goal := minValue(results[0].Curve) * 1.01
	r.Linef("goal loss %.4f (BSP best ×1.01)", goal)
	bspTime, _ := results[0].Curve.TimeToReach(goal)
	r.Linef("%-6s time-to-goal %8.2fs (baseline)", "BSP", bspTime)
	for i := 1; i < len(configs); i++ {
		t, ok := results[i].Curve.TimeToReach(goal)
		if ok {
			r.Linef("%-6s time-to-goal %8.2fs -> %.1fx over BSP", configs[i].label, t, speedup(bspTime, t))
			r.Metric("speedup_"+configs[i].label, speedup(bspTime, t))
		} else {
			r.Linef("%-6s goal not reached (final %.4f)", configs[i].label, results[i].Curve.Final())
			r.Metric("speedup_"+configs[i].label, 0)
		}
	}
	return nil
}
