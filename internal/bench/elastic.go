package bench

import (
	"errors"
	"time"

	"malt/internal/chaos"
	"malt/internal/consistency"
	"malt/internal/data"
	"malt/internal/fabric"
	"malt/internal/fault"
	"malt/internal/ml/svm"
)

// Elastic-membership soak: one of N ranks is killed mid-training and then
// rejoined through the epoch-stamped membership path — fresh epoch minted,
// send/receive lists restored, a state snapshot (model, iteration counter,
// SGD step count) donated by a publishing survivor, and the replica
// goroutine relaunched from the snapshot. The gate asserts the healed run
// converges within 2% of the fault-free reference, that every rank is alive
// at exit, and that zero stale-epoch frames were accepted (a zombie probe of
// the killed rank's pre-rejoin incarnation must be fenced).
func init() {
	const title = "Elastic membership: kill + epoch-stamped rejoin mid-training vs fault-free (SVM, ASP, gradavg, ranks=4)"
	register(Experiment{
		ID:    "elastic",
		Title: title,
		Run: run("elastic", title,
			func(o Options, r *Report) error {
				ds, err := data.GenerateClassification(data.ClassificationSpec{
					// 2,000 test examples keep the accuracy estimate's noise
					// well under the 2% convergence criterion.
					Name: "elastic", Dim: 50, Train: 1200, Test: 2000, NNZ: 6, Noise: 0.05, Seed: 77,
				})
				if err != nil {
					return err
				}
				epochs := 40
				if o.Quick {
					epochs = 16
				}
				base := SVMOpts{
					DS: ds, Ranks: 4, CB: 50,
					Sync: consistency.ASP, Mode: GradAvg,
					Epochs: epochs, EvalEvery: 5,
					SVM: svm.Config{Dim: ds.Dim, Lambda: 1e-4, Eta0: 1},
					// One failed write confirms a death: the kill must be
					// confirmed (and the epoch minted) well before the join.
					Suspicion: fault.SuspicionConfig{Strikes: 1},
					// A per-batch delay pins the scenario timeline to a stable
					// fraction of the run (~480 ms minimum), so the kill and
					// the rejoin land mid-training even under -race slowdown.
					Jitter: JitterSpec{Base: 2 * time.Millisecond},
				}

				o.logf("elastic: fault-free reference")
				clean, err := RunSVM(base)
				if err != nil {
					return err
				}

				const victim = 3
				o.logf("elastic: kill rank %d at 150ms, rejoin at 350ms", victim)
				opts := base
				opts.PublishState = true
				opts.Chaos = chaos.New(99).
					KillAt(150*time.Millisecond, victim).
					JoinAt(350*time.Millisecond, victim)
				res, err := RunSVM(opts)
				if err != nil {
					return err
				}
				fab := res.Cluster.Fabric()

				fired := len(res.ChaosLog)
				r.Metric("chaos_events_fired_exact", float64(fired))

				// Every rank — including the healed one — alive at exit.
				alive := 1.0
				if len(fab.AliveRanks()) != opts.Ranks {
					alive = 0
				}
				r.Metric("rejoined_alive_exact", alive)

				// Zombie probe: revive the victim's transport endpoint without
				// re-admitting it. Its old incarnation must be fenced by the
				// epoch check, not accepted.
				accepted := 0.0
				if err := fab.Kill(victim); err != nil {
					return err
				}
				if err := fab.Revive(victim); err != nil {
					return err
				}
				if err := fab.Write(victim, 0, "malt/probe/zombie", nil); !errors.Is(err, fabric.ErrStaleEpoch) {
					accepted = 1
				}
				r.Metric("stale_epoch_accepted_exact", accepted)
				r.Metric("stale_epoch_rejected", float64(fab.StaleEpochRejected()))

				// Convergence within 2% of the fault-free run, on the
				// tail-averaged models (the raw final iterate carries one
				// batch's ASP noise).
				tr, err := svm.New(svm.Config{Dim: ds.Dim})
				if err != nil {
					return err
				}
				cleanAcc := tr.Accuracy(clean.FinalWTail, ds.Test)
				healAcc := tr.Accuracy(res.FinalWTail, ds.Test)
				converged := 1.0
				if healAcc < cleanAcc-0.02 {
					converged = 0
				}
				r.Metric("converged_within_2pct_exact", converged)
				r.Metric("clean_acc", cleanAcc)
				r.Metric("healed_acc", healAcc)
				r.Linef("fault-free accuracy %.4f, healed accuracy %.4f (%d chaos events fired)",
					cleanAcc, healAcc, fired)
				r.Linef("all ranks alive at exit: %v; zombie probe fenced: %v", alive == 1, accepted == 0)
				return nil
			}),
	})
}
