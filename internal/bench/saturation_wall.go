package bench

import (
	"fmt"
	"net"
	"os"
	"path/filepath"
	"time"

	"malt/internal/fabric/stream"
	"malt/internal/fabric/tcpnet"
	"malt/internal/fabric/udsnet"
)

// saturation-wall: wall-clock saturation of the real stream transports.
// Where "saturation" measures the simulated fabric's modeled wire, this
// experiment drives actual sockets: one sender/receiver pair per arm, over
// loopback TCP and Unix domain sockets, with the windowed data path versus
// the synchronous ack-per-frame mode (WindowFrames=1), at 1KiB, 4KiB and
// 64KiB frames. The point of write pipelining is visible in the 1KiB TCP
// column: the acked mode pays a full loopback round trip per frame while
// the windowed mode streams until credit runs out.
//
// Wall throughput is machine-dependent, so the MB/s numbers stay
// informational. The gate keys off two 0/1 failure counters with wide
// margins: windowed must beat acked by at least 3x on 1KiB TCP frames
// (measured gaps are an order of magnitude), and UDS must reach at least
// 0.85x of TCP's windowed 64KiB throughput on the same host (UDS normally
// wins; the slack absorbs runner noise without letting a broken UDS path
// through).
func init() {
	title := "transport wall-clock saturation: windowed vs ack-per-frame over loopback TCP and UDS"
	register(Experiment{
		ID:    "saturation-wall",
		Title: title,
		Run:   run("saturation-wall", title, runSaturationWall),
	})
}

// satArm identifies one transport+mode combination of the sweep.
type satArm struct {
	network string // "tcp" or "uds"
	mode    string // "acked" or "windowed"
	window  int    // WindowFrames (1 = acked, 0 = transport default)
}

func runSaturationWall(o Options, r *Report) error {
	sizes := []int{1 << 10, 4 << 10, 64 << 10}
	frames := map[int]int{1 << 10: 4000, 4 << 10: 4000, 64 << 10: 1000}
	if o.Quick {
		frames = map[int]int{1 << 10: 800, 4 << 10: 800, 64 << 10: 200}
	}
	arms := []satArm{
		{network: "tcp", mode: "acked", window: 1},
		{network: "tcp", mode: "windowed", window: 0},
		{network: "uds", mode: "acked", window: 1},
		{network: "uds", mode: "windowed", window: 0},
	}

	r.Linef("%-5s %-9s %10s %10s %10s", "net", "mode", "1KiB MB/s", "4KiB MB/s", "64KiB MB/s")
	mbps := make(map[string]float64) // "<net>/<mode>/<size>" → MB/s
	for _, arm := range arms {
		row := fmt.Sprintf("%-5s %-9s", arm.network, arm.mode)
		for _, size := range sizes {
			v, err := satWallTrial(arm, size, frames[size])
			if err != nil {
				return fmt.Errorf("%s/%s/%d: %w", arm.network, arm.mode, size, err)
			}
			mbps[satKey(arm.network, arm.mode, size)] = v
			row += fmt.Sprintf(" %10.1f", v)
			r.Metric(fmt.Sprintf("wall_mbps_%s_%s_%s", arm.network, arm.mode, satSizeName(size)), v)
		}
		r.Linef("%s", row)
	}

	// Gates: wide-margin 0/1 counters (Classify: *failed* → Correctness).
	winTCP1k := mbps[satKey("tcp", "windowed", 1<<10)]
	ackTCP1k := mbps[satKey("tcp", "acked", 1<<10)]
	pipelineGain := speedup(winTCP1k, ackTCP1k)
	r.Linef("windowed/acked speedup, 1KiB tcp: %.1fx (gate: >= 3x)", pipelineGain)
	r.Metric("failed_pipelining_below_3x_tcp_1KiB", boolMetric(pipelineGain < 3))

	winTCP64k := mbps[satKey("tcp", "windowed", 64<<10)]
	winUDS64k := mbps[satKey("uds", "windowed", 64<<10)]
	udsRatio := speedup(winUDS64k, winTCP64k)
	r.Linef("uds/tcp windowed ratio, 64KiB: %.2fx (gate: >= 0.85x)", udsRatio)
	r.Metric("failed_uds_below_tcp_64KiB", boolMetric(udsRatio < 0.85))
	return nil
}

func satKey(network, mode string, size int) string {
	return fmt.Sprintf("%s/%s/%d", network, mode, size)
}

// satSizeName names a frame size for metric keys.
func satSizeName(size int) string {
	switch size {
	case 1 << 10:
		return "1KiB"
	case 4 << 10:
		return "4KiB"
	case 64 << 10:
		return "64KiB"
	default:
		return fmt.Sprintf("%dB", size)
	}
}

func boolMetric(failed bool) float64 {
	if failed {
		return 1
	}
	return 0
}

// satWallTrial measures one arm: a 2-rank pair on the given transport,
// rank 0 writing `frames` frames of `size` bytes to rank 1 and draining.
// Heartbeats are disabled so the clock sees only data traffic. Returns
// per-link payload throughput in MB/s (1e6 bytes).
func satWallTrial(arm satArm, size, frames int) (float64, error) {
	nets, cleanup, err := satPair(arm)
	if err != nil {
		return 0, err
	}
	defer cleanup()
	if err := nets[1].Register(1, "sat", func(int, []byte) error { return nil }); err != nil {
		return 0, err
	}
	payload := make([]byte, size)
	warm := frames / 10
	if warm < 10 {
		warm = 10
	}
	for i := 0; i < warm; i++ {
		//maltlint:allow bufretain -- stream.Write copies the payload into a pooled frame buffer before returning; reuse cannot race the wire
		if err := nets[0].Write(0, 1, "sat", payload); err != nil {
			return 0, err
		}
	}
	if err := nets[0].Drain(); err != nil {
		return 0, err
	}
	start := time.Now()
	for i := 0; i < frames; i++ {
		//maltlint:allow bufretain -- stream.Write copies the payload into a pooled frame buffer before returning; reuse cannot race the wire
		if err := nets[0].Write(0, 1, "sat", payload); err != nil {
			return 0, err
		}
	}
	if err := nets[0].Drain(); err != nil {
		return 0, err
	}
	elapsed := time.Since(start).Seconds()
	return float64(size) * float64(frames) / elapsed / 1e6, nil
}

// satPair builds the 2-rank sender/receiver pair for one arm.
func satPair(arm satArm) ([]*stream.Net, func(), error) {
	cfg := stream.Config{
		WindowFrames:      arm.window,
		DialTimeout:       5 * time.Second,
		AckTimeout:        30 * time.Second,
		RendezvousTimeout: 30 * time.Second,
		BarrierTimeout:    30 * time.Second,
		HeartbeatStrikes:  -1, // no probe traffic during the measurement
	}
	var cleanupDir string
	newNet := tcpnet.New
	if arm.network == "uds" {
		dir, err := os.MkdirTemp("", "malt-satwall-")
		if err != nil {
			return nil, nil, err
		}
		cleanupDir = dir
		cfg.Peers = []string{filepath.Join(dir, "r0.sock"), filepath.Join(dir, "r1.sock")}
		newNet = udsnet.New
	} else {
		lns := make([]net.Listener, 2)
		cfg.Peers = make([]string, 2)
		for i := range lns {
			ln, err := net.Listen("tcp", "127.0.0.1:0")
			if err != nil {
				return nil, nil, err
			}
			lns[i] = ln
			cfg.Peers[i] = ln.Addr().String()
		}
		// Hand the pre-bound listeners over rank by rank below.
		return satRendezvous(cfg, func(rank int) stream.Config {
			c := cfg
			c.Rank = rank
			c.Listener = lns[rank]
			return c
		}, newNet, cleanupDir)
	}
	return satRendezvous(cfg, func(rank int) stream.Config {
		c := cfg
		c.Rank = rank
		return c
	}, newNet, cleanupDir)
}

func satRendezvous(cfg stream.Config, mk func(rank int) stream.Config, newNet func(stream.Config) (*stream.Net, error), dir string) ([]*stream.Net, func(), error) {
	nets := make([]*stream.Net, 2)
	cleanup := func() {
		for _, n := range nets {
			if n != nil {
				n.Close()
			}
		}
		if dir != "" {
			os.RemoveAll(dir)
		}
	}
	for i := range nets {
		n, err := newNet(mk(i))
		if err != nil {
			cleanup()
			return nil, nil, err
		}
		nets[i] = n
	}
	errs := make(chan error, 2)
	for _, n := range nets {
		go func(n *stream.Net) { errs <- n.Rendezvous() }(n)
	}
	for range nets {
		if err := <-errs; err != nil {
			cleanup()
			return nil, nil, err
		}
	}
	return nets, cleanup, nil
}
