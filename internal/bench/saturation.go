package bench

import (
	"strconv"
	"sync"
	"time"

	"malt/internal/dataflow"
	"malt/internal/dstorm"
	"malt/internal/fabric"
	"malt/internal/vol"
)

// §6.2 network saturation test: all ranks scatter webspam-sized dense
// models back to back; we measure the achieved per-rank scatter throughput
// and the modeled wire time. On the paper's testbed this reached ~5.1 GB/s
// (synchronous) and ~4.2 GB/s per machine (async, 3 ranks/machine) out of
// a 5 GB/s line rate; here the "wire" is memcpy through the simulated
// fabric, so the interesting output is the ratio to the modeled line rate
// and the per-configuration relative numbers.
func init() {
	register(Experiment{
		ID:    "saturation",
		Title: "Network saturation: back-to-back scatter throughput (webspam-sized model)",
		Run: run("saturation", "Network saturation: back-to-back scatter throughput (webspam-sized model)",
			func(o Options, r *Report) error {
				dim := 200000 // webspam-shaped dense model: 1.6 MB
				iters := 50
				ranksSet := []int{2, 4, 8}
				if o.Quick {
					dim = 50000
					iters = 20
					ranksSet = []int{2, 4}
				}
				r.Linef("%-6s %14s %16s %14s", "ranks", "per-rank GB/s", "aggregate GB/s", "modeled-wire")
				for _, n := range ranksSet {
					fab, err := fabric.New(fabric.Config{Ranks: n})
					if err != nil {
						return err
					}
					cluster := dstorm.NewCluster(fab)
					graph, err := dataflow.New(dataflow.All, n)
					if err != nil {
						return err
					}
					var wg sync.WaitGroup
					errs := make([]error, n)
					start := time.Now()
					for rank := 0; rank < n; rank++ {
						wg.Add(1)
						go func(rank int) {
							defer wg.Done()
							v, err := vol.Create(cluster.Node(rank), "sat", vol.Dense, dim, graph, vol.Options{QueueLen: 2})
							if err != nil {
								errs[rank] = err
								return
							}
							for i := 0; i < iters; i++ {
								if _, err := v.Scatter(uint64(i + 1)); err != nil {
									errs[rank] = err
									return
								}
							}
						}(rank)
					}
					wg.Wait()
					for _, err := range errs {
						if err != nil {
							return err
						}
					}
					elapsed := time.Since(start).Seconds()
					bytes := float64(fab.Stats().TotalBytes())
					perRank := bytes / float64(n) / elapsed / (1 << 30)
					agg := bytes / elapsed / (1 << 30)
					r.Linef("%-6d %13.2f %15.2f %13.2fs", n, perRank, agg,
						fab.Stats().ModeledNetworkTime().Seconds())
					r.Metric("gbps_per_rank_n"+strconv.Itoa(n), perRank)
					// Deterministic counterpart of the wall throughput: the
					// cost model charges every scatter write the same
					// latency + size/bandwidth, so this gates traffic-volume
					// regressions without wall-clock noise.
					r.Metric("model_ns_wire_n"+strconv.Itoa(n),
						float64(fab.Stats().ModeledNetworkTime().Nanoseconds()))
				}
				r.Linef("(paper: 5.1 GB/s sync, 4.2 GB/s async per machine on 56 Gbps InfiniBand)")
				return nil
			}),
	})
}
