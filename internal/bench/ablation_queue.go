package bench

import (
	"fmt"
	"sync"
	"time"

	"malt/internal/consistency"
	"malt/internal/core"
	"malt/internal/dataflow"
	"malt/internal/vol"
)

// Ablation: per-sender receive-queue depth (paper §3.1). The ring
// overwrites the oldest unconsumed update when a sender outruns the
// consumer; deeper queues retain more history at the cost of memory
// (object size × depth × senders per segment). This experiment runs an
// asynchronous producer/consumer imbalance and reports, per depth, how
// many updates the slow consumer lost to overwrites — the
// freshness-vs-completeness dial.
func init() {
	register(Experiment{
		ID:    "ablation-queue",
		Title: "Receive-queue depth vs updates lost to overwrites (ASP, fast senders, slow consumer)",
		Run: run("ablation-queue", "Receive-queue depth vs updates lost to overwrites (ASP, fast senders, slow consumer)",
			func(o Options, r *Report) error {
				depths := []int{1, 2, 4, 8, 16}
				rounds := 400
				if o.Quick {
					depths = []int{1, 4, 16}
					rounds = 150
				}
				const ranks, dim = 4, 256

				r.Linef("%-8s %10s %12s %12s", "depth", "sent/peer", "consumed", "overwritten")
				for _, depth := range depths {
					consumed, overwritten, err := runQueueImbalance(ranks, dim, depth, rounds)
					if err != nil {
						return err
					}
					r.Linef("%-8d %10d %12d %12d", depth, rounds, consumed, overwritten)
					r.Metric(fmt.Sprintf("overwritten_q%d", depth), float64(overwritten))
					r.Metric(fmt.Sprintf("consumed_q%d", depth), float64(consumed))
					// Conservation invariant: every deposited update is
					// either consumed or overwritten — never lost, never
					// duplicated. The split between the two is timing
					// noise; the sum is exact.
					r.Metric(fmt.Sprintf("delivered_q%d_exact", depth), float64(consumed+overwritten))
				}
				r.Linef("(deeper rings lose fewer updates; MALT accepts the loss — updates are approximate)")
				return nil
			}),
	})
}

// runQueueImbalance drives ranks 1..N-1 as fast producers and rank 0 as a
// deliberately slow consumer, returning rank 0's consumed/overwritten
// counts.
func runQueueImbalance(ranks, dim, depth, rounds int) (consumed, overwritten uint64, err error) {
	cluster, err := core.NewCluster(core.Config{
		Ranks: ranks, Dataflow: dataflow.All, Sync: consistency.ASP, QueueLen: depth,
	})
	if err != nil {
		return 0, 0, err
	}
	var mu sync.Mutex
	res := cluster.Run(func(ctx *core.Context) error {
		v, err := ctx.CreateVectorOpts("q", vol.Dense, dim, vol.Options{QueueLen: depth})
		if err != nil {
			return err
		}
		if err := ctx.Barrier(v); err != nil {
			return err
		}
		if ctx.Rank() == 0 {
			// Slow consumer: gathers only every few producer rounds.
			for i := 0; i < rounds/8; i++ {
				time.Sleep(200 * time.Microsecond) //maltlint:allow rawsleep -- deliberate slow-consumer pacing; the lag IS the experiment
				if _, err := ctx.Gather(v, vol.Average); err != nil {
					return err
				}
			}
			if err := ctx.Barrier(v); err != nil { // producers done
				return err
			}
			if _, err := ctx.Gather(v, vol.Average); err != nil { // drain tail
				return err
			}
			st := v.SegStats()
			mu.Lock()
			consumed, overwritten = st.Consumed, st.Overwritten
			mu.Unlock()
			return nil
		}
		// Fast producers.
		for i := 1; i <= rounds; i++ {
			ctx.SetIteration(uint64(i))
			if err := ctx.Scatter(v); err != nil {
				return err
			}
			// Keep their own queues drained so only rank 0 lags.
			if _, err := ctx.Gather(v, vol.Average); err != nil {
				return err
			}
		}
		return ctx.Barrier(v)
	})
	if e := res.FirstError(); e != nil {
		return 0, 0, e
	}
	return consumed, overwritten, nil
}
