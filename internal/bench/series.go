// Package bench is the experiment harness: one driver per table and figure
// of the paper's evaluation (§6), each regenerating the corresponding rows
// or curves over the simulated substrate. The cmd/maltbench binary and the
// top-level benchmark suite both dispatch into this package.
//
// Scale note: dataset sizes are the synthetic scaled-down equivalents from
// internal/data (≈1000× smaller than the paper's), so communication batch
// (cb) sizes are scaled by each experiment's stated factor to keep
// batches-per-epoch comparable; every driver prints both the paper's
// nominal cb and the scaled value it actually ran. Absolute times are not
// comparable to the paper's testbed; shapes and ratios are.
package bench

import (
	"fmt"
	"io"
	"sort"
	"strings"
	"time"
)

// Point is one sample of a convergence curve.
type Point struct {
	// Time is seconds since the run started.
	Time float64
	// Iter is the cumulative per-rank iteration (communication batch)
	// count at the sample.
	Iter float64
	// Value is the metric (loss, AUC, RMSE).
	Value float64
}

// Series is one labelled curve.
type Series struct {
	Label  string
	Points []Point
}

// Final returns the last value of the series (0 if empty).
func (s Series) Final() float64 {
	if len(s.Points) == 0 {
		return 0
	}
	return s.Points[len(s.Points)-1].Value
}

// TimeToReach returns the first sample time at which the series reached
// goal (descending metrics like loss: value ≤ goal) and whether it did.
func (s Series) TimeToReach(goal float64) (float64, bool) {
	for _, p := range s.Points {
		if p.Value <= goal {
			return p.Time, true
		}
	}
	return 0, false
}

// ItersToReach is TimeToReach over the iteration axis.
func (s Series) ItersToReach(goal float64) (float64, bool) {
	for _, p := range s.Points {
		if p.Value <= goal {
			return p.Iter, true
		}
	}
	return 0, false
}

// TimeToExceed returns the first sample time at which the series reached
// goal for ascending metrics (AUC: value ≥ goal).
func (s Series) TimeToExceed(goal float64) (float64, bool) {
	for _, p := range s.Points {
		if p.Value >= goal {
			return p.Time, true
		}
	}
	return 0, false
}

// Report is one experiment's output.
type Report struct {
	// ID is the experiment identifier ("fig4", "table2", …).
	ID string
	// Title echoes the paper's caption.
	Title string
	// Lines are the formatted result rows.
	Lines []string
	// Series holds the convergence curves (may be empty for tables).
	Series []Series
	// Metrics are headline numbers ("speedup_time": 6.7) keyed for
	// programmatic assertions in the benchmark suite.
	Metrics map[string]float64
	// Elapsed is how long the experiment took to run.
	Elapsed time.Duration
}

// Metric records a headline number.
func (r *Report) Metric(key string, v float64) {
	if r.Metrics == nil {
		r.Metrics = make(map[string]float64)
	}
	r.Metrics[key] = v
}

// Linef appends a formatted row.
func (r *Report) Linef(format string, args ...any) {
	r.Lines = append(r.Lines, fmt.Sprintf(format, args...))
}

// Print writes the report in the harness's standard layout.
func (r *Report) Print(w io.Writer) {
	fmt.Fprintf(w, "=== %s: %s ===\n", r.ID, r.Title)
	for _, line := range r.Lines {
		fmt.Fprintf(w, "%s\n", line)
	}
	if len(r.Metrics) > 0 {
		keys := make([]string, 0, len(r.Metrics))
		for k := range r.Metrics {
			keys = append(keys, k)
		}
		sort.Strings(keys)
		var b strings.Builder
		for i, k := range keys {
			if i > 0 {
				b.WriteString("  ")
			}
			fmt.Fprintf(&b, "%s=%.4g", k, r.Metrics[k])
		}
		fmt.Fprintf(w, "-- %s\n", b.String())
	}
	fmt.Fprintf(w, "-- elapsed %v\n\n", r.Elapsed.Round(time.Millisecond))
}

// PrintSeries writes the curves in a gnuplot-friendly "label time iter
// value" layout (used by -curves).
func (r *Report) PrintSeries(w io.Writer) {
	for _, s := range r.Series {
		fmt.Fprintf(w, "# %s / %s\n", r.ID, s.Label)
		for _, p := range s.Points {
			fmt.Fprintf(w, "%q %.4f %.0f %.6f\n", s.Label, p.Time, p.Iter, p.Value)
		}
		fmt.Fprintln(w)
	}
}

// FindSeries returns the series with the given label, or nil.
func (r *Report) FindSeries(label string) *Series {
	for i := range r.Series {
		if r.Series[i].Label == label {
			return &r.Series[i]
		}
	}
	return nil
}
