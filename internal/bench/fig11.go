package bench

import (
	"fmt"

	"malt/internal/consistency"
	"malt/internal/data"
	"malt/internal/dataflow"
	"malt/internal/ml/svm"
)

// Fig 11: communication-batch-size sweep on RCV1 (BSP, gradavg, ranks=10)
// for MALT_all and MALT_Halton. The paper finds an interior optimum
// (cb=5000 beats both 1000 and 10000) and Halton converging faster than
// all-to-all in time despite needing more iterations.
func init() {
	register(Experiment{
		ID:    "fig11",
		Title: "RCV1 cb sweep (1000/5000/10000), MALT_all vs MALT_Halton (BSP, gradavg, ranks=10)",
		Run: run("fig11", "RCV1 cb sweep (1000/5000/10000), MALT_all vs MALT_Halton (BSP, gradavg, ranks=10)",
			func(o Options, r *Report) error {
				ds, err := data.RCV1Shape.Generate(o.Scale)
				if err != nil {
					return err
				}
				ranks, epochs, serialEpochs := 10, 30, 4
				nominals := []int{1000, 5000, 10000}
				if o.Quick {
					ranks, epochs, serialEpochs = 4, 10, 2
					nominals = []int{1000, 5000}
				}
				svmCfg := svm.Config{Dim: ds.Dim, Lambda: 1e-5, Eta0: 2}

				serial, err := RunSerialSVM(SerialOpts{DS: ds, SVM: svmCfg, Epochs: serialEpochs, EvalEvery: 1000})
				if err != nil {
					return err
				}
				goal := minValue(serial.Curve) * 1.005
				serialTime, _ := serial.Curve.TimeToReach(goal)
				r.Series = append(r.Series, serial.Curve)
				r.Linef("goal loss %.4f; single-rank SGD time %.2fs", goal, serialTime)

				for _, flow := range []dataflow.Kind{dataflow.All, dataflow.Halton} {
					for _, nominal := range nominals {
						cb := cbScale(nominal)
						o.logf("fig11: %v cb=%d", flow, cb)
						res, err := RunSVM(SVMOpts{
							DS: ds, Ranks: ranks, CB: cb,
							Dataflow: flow, Sync: consistency.BSP,
							Mode: GradAvg, Epochs: epochs, Goal: goal,
							SVM: svmCfg, Sparse: true, EvalEvery: 2,
						})
						if err != nil {
							return err
						}
						res.Curve.Label = fmt.Sprintf("rcv1/%v/cb=%d", flow, nominal)
						r.Series = append(r.Series, res.Curve)
						key := fmt.Sprintf("%v_cb%d", flow, nominal)
						if res.Reached {
							sp := speedup(serialTime, res.TimeToGoal)
							r.Linef("%-7s cb=%-5d (scaled %3d): %6.2fs -> %.1fx", flow, nominal, cb, res.TimeToGoal, sp)
							r.Metric(key, sp)
						} else {
							r.Linef("%-7s cb=%-5d (scaled %3d): goal not reached (final %.4f)", flow, nominal, cb, res.Curve.Final())
							r.Metric(key, 0)
						}
					}
				}
				return nil
			}),
	})
}
