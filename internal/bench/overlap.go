package bench

import (
	"math"
	"strconv"
	"sync"

	"malt/internal/consistency"
	"malt/internal/core"
	"malt/internal/dataflow"
	"malt/internal/dstorm"
	"malt/internal/fabric"
	"malt/internal/vol"
)

// overlap: comm/compute overlap via gradient bucketing (PR 8). Eight ranks
// run BSP gradient rounds over an all-to-all dataflow; each round the
// trainer produces its gradient bucket by bucket (core.ScatterBucketed) so
// bucket i is on the send pipeline's wire while bucket i+1 is still being
// written. The sweep grows the bucket count and watches the modeled exposed
// communication time — the wire time left on the critical path at the
// iteration edge — shrink toward the single-bucket wire latency floor.
//
// The CI gate keys off deterministic quantities only: the exposed-time
// model is an analytic send/compute timeline driven by the *observed*
// fragment counts (if the bucketing engine silently stops splitting, the
// observed bucket count collapses to 1 and the modeled speedup with it),
// the fragment conservation counters, and a bitwise comparison of every
// bucketed arm's folded model against the unbucketed arm — reassembly
// before folding means the fold input multiset and order are identical, so
// any float deviation is a gate failure. Wall numbers are informational.
func init() {
	title := "comm/compute overlap: modeled exposed comm time vs gradient bucket count (8-rank all-to-all)"
	register(Experiment{
		ID:    "overlap",
		Title: title,
		Run:   run("overlap", title, runOverlapExp),
	})
}

// Model constants. Latency and bandwidth mirror the simulated fabric's
// defaults (1.5 µs per write, 5 GiB/s); the compute cost is a nominal
// 16 ns/coordinate gradient-production rate chosen so the full model's
// compute time exceeds its wire time — the compute-bound regime where
// bucketing can hide communication entirely and exposure falls toward the
// last bucket's wire cost (in the comm-bound regime exposure floors at
// wire − compute and per-bucket latency overhead eventually dominates).
// Only relative numbers between configurations sharing the model are
// meaningful.
const (
	overlapLatencyNs      = 1500.0
	overlapNsPerByte      = 1.0e9 / (5 * float64(1<<30))
	overlapCompNsPerCoord = 16.0
	overlapFragHdrBytes   = 20 // vol bucket fragment header
)

// overlapModelExposedNs plays one iteration's send/compute timeline: bucket
// i's compute finishes at computeEnd(i), its write (fanout destinations,
// one latency charge + payload bytes each) starts when both the bucket is
// ready and the previous write has left, and exposed time is whatever wire
// work remains after the last bucket's compute ends. buckets == 1 is the
// unbucketed baseline: the whole message's wire time is exposed.
func overlapModelExposedNs(dim, ranks, buckets int) float64 {
	if buckets < 1 {
		buckets = 1
	}
	fanout := float64(ranks - 1)
	coords := (dim + buckets - 1) / buckets
	var computeEnd, sendEnd float64
	for lo := 0; lo < dim; lo += coords {
		hi := lo + coords
		if hi > dim {
			hi = dim
		}
		computeEnd += float64(hi-lo) * overlapCompNsPerCoord
		bytes := float64(overlapFragHdrBytes + 8*(hi-lo))
		w := fanout * (overlapLatencyNs + bytes*overlapNsPerByte)
		sendEnd = math.Max(computeEnd, sendEnd) + w
	}
	return sendEnd - computeEnd
}

// overlapTrial is one measured arm of the overlap sweep.
type overlapTrial struct {
	fragsTotal uint64    // fragments scattered across all ranks and rounds
	assembled  uint64    // logical updates reassembled from fragments
	evicted    uint64    // incomplete assemblies abandoned
	dups       uint64    // duplicate fragments absorbed
	folded     uint64    // updates folded across all ranks and rounds
	wallNs     float64   // wall ns per round (informational)
	data       []float64 // rank 0's final model, for bitwise comparison
}

// runOverlapTrial runs rounds of the canonical BSP superstep (produce
// gradient bucket by bucket + scatter each bucket as it is ready, advance,
// gather Average, commit) on a fresh in-process cluster. bucketBytes == 0
// is the unbucketed arm. Gradient values are reciprocals with full
// mantissas so a single out-of-order addition shows up bitwise.
func runOverlapTrial(ranks, dim, rounds, bucketBytes int) (overlapTrial, error) {
	var t overlapTrial
	cl, err := core.NewCluster(core.Config{
		Ranks:         ranks,
		Dataflow:      dataflow.All,
		Sync:          consistency.BSP,
		Pipeline:      &dstorm.PipelineConfig{},
		GatherWorkers: 4,
		BucketBytes:   bucketBytes,
		Fabric:        fabric.Config{Delay: fabric.DelayNone},
	})
	if err != nil {
		return t, err
	}
	defer cl.Close()
	var mu sync.Mutex
	res := cl.Run(func(ctx *core.Context) error {
		v, err := ctx.CreateVector("overlap", vol.Dense, dim)
		if err != nil {
			return err
		}
		defer v.Close()
		r := ctx.Rank()
		var folded uint64
		for round := 1; round <= rounds; round++ {
			ctx.SetIteration(uint64(round))
			err := ctx.ScatterBucketed(v, func(lo, hi int) {
				d := v.Data()
				for i := lo; i < hi; i++ {
					d[i] = 1 / float64(i+31*r+7*round)
				}
			})
			if err != nil {
				return err
			}
			if err := ctx.Advance(v); err != nil {
				return err
			}
			st, err := ctx.Gather(v, vol.Average)
			if err != nil {
				return err
			}
			folded += uint64(st.Updates)
			if err := ctx.Commit(v); err != nil {
				return err
			}
		}
		bp := v.BucketPerf()
		mu.Lock()
		t.fragsTotal += bp.FragmentsSent
		t.assembled += bp.Assembled
		t.evicted += bp.Evicted
		t.dups += bp.Duplicates
		t.folded += folded
		if r == 0 {
			t.data = append([]float64(nil), v.Data()...)
		}
		mu.Unlock()
		return nil
	})
	if err := res.FirstError(); err != nil {
		return t, err
	}
	t.wallNs = float64(res.Elapsed.Nanoseconds()) / float64(rounds)
	return t, nil
}

func runOverlapExp(o Options, r *Report) error {
	ranks, dim, rounds := 8, 1<<18, 4*o.Scale
	sweep := []int{1, 2, 4, 8, 16, 32, 64}
	if o.Quick {
		ranks, dim, rounds = 4, 1<<15, 2
		sweep = []int{1, 4, 16}
	}
	expectedFolds := uint64(ranks * (ranks - 1) * rounds)

	var (
		trials   = make([]overlapTrial, len(sweep))
		exposed  = make([]float64, len(sweep))
		mismatch int
		lost     uint64
		lostUpd  uint64
		dups     uint64
	)
	for k, b := range sweep {
		bucketBytes := 0
		if b > 1 {
			bucketBytes = 8 * ((dim + b - 1) / b)
		}
		o.logf("overlap: arm buckets=%d bucketBytes=%d (ranks=%d dim=%d rounds=%d)", b, bucketBytes, ranks, dim, rounds)
		t, err := runOverlapTrial(ranks, dim, rounds, bucketBytes)
		if err != nil {
			return err
		}
		trials[k] = t

		// The model consumes the *observed* per-scatter fragment count, so
		// the gate notices if the engine stops splitting.
		obsB := 1
		if b > 1 {
			obsB = int(t.fragsTotal) / (ranks * rounds)
			lost += uint64(ranks*(ranks-1)*rounds) - t.assembled
		}
		exposed[k] = overlapModelExposedNs(dim, ranks, obsB)
		lostUpd += expectedFolds - t.folded
		dups += t.dups + t.evicted
		for i := range trials[0].data {
			if math.Float64bits(trials[0].data[i]) != math.Float64bits(t.data[i]) {
				mismatch++
			}
		}
	}

	// Exposed comm must shrink monotonically as buckets grow.
	monotonic := 0
	for k := 1; k < len(sweep); k++ {
		if exposed[k] > exposed[k-1] {
			monotonic++
		}
	}
	last := len(sweep) - 1

	r.Metric("model_ns_exposed_unbucketed", exposed[0])
	r.Metric("model_ns_exposed_bucketed", exposed[last])
	r.Metric("model_speedup_exposed", speedup(exposed[0], exposed[last]))
	r.Metric("model_overlapped_frac", 1-exposed[last]/exposed[0])
	r.Metric("failed_fold_mismatch", float64(mismatch))
	r.Metric("failed_overlap_monotonic", float64(monotonic))
	r.Metric("lost_buckets", float64(lost))
	r.Metric("lost_updates_overlap", float64(lostUpd))
	r.Metric("dup_buckets", float64(dups))
	r.Metric("buckets_sent_exact", float64(trials[last].fragsTotal))
	r.Metric("wall_ns_round_unbucketed", trials[0].wallNs)
	r.Metric("wall_ns_round_bucketed", trials[last].wallNs)

	r.Linef("%d ranks, dim %d: modeled exposed comm %.0f -> %.0f ns/iter (%.1fx, %.0f%% of wire time hidden) at %d buckets",
		ranks, dim, exposed[0], exposed[last], speedup(exposed[0], exposed[last]),
		100*(1-exposed[last]/exposed[0]), sweep[last])
	r.Linef("largest arm: %d fragments sent, %d updates reassembled, %d bitwise-mismatched coords vs unbucketed",
		trials[last].fragsTotal, trials[last].assembled, mismatch)

	curve := Series{Label: "modeled exposed comm ns vs bucket count (dim " + strconv.Itoa(dim) + ")"}
	for k, b := range sweep {
		curve.Points = append(curve.Points, Point{Iter: float64(b), Value: exposed[k]})
	}
	r.Series = append(r.Series, curve)
	return nil
}
