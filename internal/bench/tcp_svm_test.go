package bench

import (
	"fmt"
	"net"
	"path/filepath"
	"strings"
	"sync"
	"testing"
	"time"

	"malt/internal/consistency"
	"malt/internal/data"
	"malt/internal/dataflow"
	"malt/internal/fabric/tcpnet"
	"malt/internal/fabric/udsnet"
	"malt/internal/ml/svm"
)

// newTCPNets assembles an n-rank tcpnet cluster inside this process: each
// rank pre-binds a loopback :0 listener so the full address book is known
// before any endpoint is constructed, then all ranks rendezvous. The three
// Nets stand in for three OS processes; nothing is shared between replicas
// except the sockets.
// window selects the data-path mode for a test cluster: windowed is the
// pipelined default; ackPerFrame (WindowFrames=1) restores the legacy
// synchronous contract — Write returns only once the frame has deposited
// remotely. The ASP/SSP convergence tests run ack-per-frame because their
// loss/accuracy thresholds were calibrated against that visibility pacing:
// at test scale an iteration computes in microseconds, so under pipelining
// a rank can finish whole epochs before peers' gradients land, which says
// nothing about either the transport or the consistency model.
const (
	windowed    = 0
	ackPerFrame = 1
)

func newTCPNets(t *testing.T, n, window int) []*tcpnet.Net {
	t.Helper()
	lns := make([]net.Listener, n)
	addrs := make([]string, n)
	for i := range lns {
		ln, err := net.Listen("tcp", "127.0.0.1:0")
		if err != nil {
			t.Fatalf("rank %d: listen: %v", i, err)
		}
		lns[i] = ln
		addrs[i] = ln.Addr().String()
	}
	mk := func(i int) (*tcpnet.Net, error) {
		return tcpnet.New(tcpnet.Config{
			Rank:              i,
			Peers:             addrs,
			Listener:          lns[i],
			WindowFrames:      window,
			RendezvousTimeout: 30 * time.Second,
			BarrierTimeout:    60 * time.Second,
			HeartbeatInterval: 10 * time.Millisecond,
		})
	}
	return assembleNets(t, n, mk)
}

// newUDSNets is newTCPNets over Unix domain sockets: same cluster shape,
// same rendezvous, with socket paths in a per-test temp dir instead of
// loopback ports.
func newUDSNets(t *testing.T, n, window int) []*udsnet.Net {
	t.Helper()
	dir := t.TempDir()
	addrs := make([]string, n)
	for i := range addrs {
		addrs[i] = filepath.Join(dir, fmt.Sprintf("r%d.sock", i))
	}
	mk := func(i int) (*udsnet.Net, error) {
		return udsnet.New(udsnet.Config{
			Rank:              i,
			Peers:             addrs,
			WindowFrames:      window,
			RendezvousTimeout: 30 * time.Second,
			BarrierTimeout:    60 * time.Second,
			HeartbeatInterval: 10 * time.Millisecond,
		})
	}
	return assembleNets(t, n, mk)
}

// assembleNets constructs the n endpoints and runs the all-rank rendezvous.
func assembleNets(t *testing.T, n int, mk func(i int) (*tcpnet.Net, error)) []*tcpnet.Net {
	t.Helper()
	nets := make([]*tcpnet.Net, n)
	for i := range nets {
		nt, err := mk(i)
		if err != nil {
			t.Fatalf("rank %d: New: %v", i, err)
		}
		nets[i] = nt
	}
	t.Cleanup(func() {
		for _, nt := range nets {
			nt.Close()
		}
	})
	var wg sync.WaitGroup
	errs := make([]error, n)
	for i, nt := range nets {
		wg.Add(1)
		go func(i int, nt *tcpnet.Net) {
			defer wg.Done()
			errs[i] = nt.Rendezvous()
		}(i, nt)
	}
	wg.Wait()
	for i, err := range errs {
		if err != nil {
			t.Fatalf("rank %d: rendezvous: %v", i, err)
		}
	}
	return nets
}

// tcpDS regenerates the dataset per rank from the same spec, as separate
// maltrun processes would: sharding stays consistent because generation is
// seeded, not because memory is shared.
func tcpDS(t *testing.T) *data.Dataset {
	t.Helper()
	ds, err := data.GenerateClassification(data.ClassificationSpec{
		Name: "tcp", Dim: 50, Train: 1200, Test: 300, NNZ: 6, Noise: 0.05, Seed: 77,
	})
	if err != nil {
		t.Fatal(err)
	}
	return ds
}

// TestRunSVMOverTCP trains the distributed SVM over real sockets under all
// three consistency models: three replicas, each with its own transport
// endpoint and its own regenerated dataset, synchronizing only through the
// TCP fabric (ISSUE 5 acceptance: in-process 3-rank TCP cluster).
func TestRunSVMOverTCP(t *testing.T) {
	const ranks = 3
	for _, tc := range []struct {
		sync   consistency.Model
		bound  uint64
		window int
	}{
		// BSP's barriers drain the window every superstep, so it runs the
		// pipelined default; ASP/SSP rely on write-return visibility (see
		// the window constants above).
		{consistency.BSP, 0, windowed},
		{consistency.ASP, 0, ackPerFrame},
		{consistency.SSP, 2, ackPerFrame},
	} {
		t.Run(tc.sync.String(), func(t *testing.T) {
			nets := newTCPNets(t, ranks, tc.window)
			results := make([]*RunStats, ranks)
			errs := make([]error, ranks)
			var wg sync.WaitGroup
			for r := 0; r < ranks; r++ {
				wg.Add(1)
				go func(r int) {
					defer wg.Done()
					ds := tcpDS(t)
					results[r], errs[r] = RunSVM(SVMOpts{
						DS: ds, Ranks: ranks, CB: 50,
						Dataflow: dataflow.All, Sync: tc.sync, Bound: tc.bound,
						Mode: GradAvg, Epochs: 5, EvalEvery: 1,
						SVM:       svm.Config{Dim: ds.Dim, Lambda: 1e-4, Eta0: 1},
						Transport: nets[r], LocalRank: r,
					})
				}(r)
			}
			wg.Wait()
			for r, err := range errs {
				if err != nil {
					t.Fatalf("rank %d: %v", r, err)
				}
			}
			// Rank 0's process owns the curve and final model.
			res := results[0]
			if len(res.Curve.Points) == 0 {
				t.Fatal("rank 0 produced no curve")
			}
			// Compare the first eval against the best loss over the back
			// half of the curve, not the raw final point: under ASP the
			// late-training iterate wanders a stale-gradient noise ball
			// (Eta0=1 at this tiny scale), so whether the very last eval
			// lands on a jolt is a scheduling coin flip — observed on the
			// pre-windowed transport too, just at different odds. The back
			// half still proves sustained convergence, not a lucky dip.
			first := res.Curve.Points[0].Value
			best := first
			for _, p := range res.Curve.Points[len(res.Curve.Points)/2:] {
				if p.Value < best {
					best = p.Value
				}
			}
			if best >= first {
				t.Fatalf("loss did not decrease over TCP (first %v, back-half best %v)", first, best)
			}
			// Accuracy on the tail-averaged model for the same reason:
			// FinalWTail exists precisely because ASP's raw final iterate
			// carries one batch's noise.
			w := res.FinalW
			if res.FinalWTail != nil {
				w = res.FinalWTail
			}
			ds := tcpDS(t)
			tr, _ := svm.New(svm.Config{Dim: ds.Dim})
			if acc := tr.Accuracy(w, ds.Test); acc < 0.8 {
				t.Fatalf("accuracy %v over TCP", acc)
			}
			// Data moved over the wire, not through shared memory.
			// Transfer accounting lands at cumulative-ack time, so drain
			// the windowed links before reading the counters (ASP/SSP runs
			// end without a final barrier to do it for them).
			for r := 0; r < ranks; r++ {
				if err := nets[r].Drain(); err != nil {
					t.Fatalf("rank %d: drain: %v", r, err)
				}
			}
			if res.Stats.TotalBytes() == 0 {
				t.Fatal("no bytes crossed the transport")
			}
		})
	}
}

// TestRunSVMOverTCPSurvivesCrash kills one rank mid-training and requires
// the survivors to finish: suspicion rides delegated probes, the barrier
// coordinator prunes the dead rank, and training continues (ISSUE 5
// acceptance: kill-one-rank over TCP).
func TestRunSVMOverTCPSurvivesCrash(t *testing.T) {
	const ranks = 3
	nets := newTCPNets(t, ranks, ackPerFrame)
	results := make([]*RunStats, ranks)
	errs := make([]error, ranks)
	var wg sync.WaitGroup
	for r := 0; r < ranks; r++ {
		wg.Add(1)
		go func(r int) {
			defer wg.Done()
			ds := tcpDS(t)
			results[r], errs[r] = RunSVM(SVMOpts{
				DS: ds, Ranks: ranks, CB: 50,
				Dataflow: dataflow.All, Sync: consistency.ASP,
				Mode: GradAvg, Epochs: 4, EvalEvery: 1,
				SVM:       svm.Config{Dim: ds.Dim, Lambda: 1e-4, Eta0: 1},
				Transport: nets[r], LocalRank: r,
				KillRank: 2, KillAtIter: 3,
			})
		}(r)
	}
	wg.Wait()
	// The killed rank's own process reports the injected crash; the
	// LiveErrors filter inside RunSVM must already have suppressed it
	// (a dead rank's error is a symptom, not a failure).
	if errs[2] != nil && !strings.Contains(errs[2].Error(), "injected crash") {
		t.Fatalf("rank 2: unexpected error: %v", errs[2])
	}
	for r := 0; r < 2; r++ {
		if errs[r] != nil {
			t.Fatalf("survivor rank %d failed: %v", r, errs[r])
		}
	}
	res := results[0]
	if len(res.Curve.Points) == 0 {
		t.Fatal("rank 0 produced no curve")
	}
	// Rank 0 kept training after the crash: its curve extends past the
	// kill point.
	killExamples := float64(3 * 50)
	if last := res.Curve.Points[len(res.Curve.Points)-1].Iter; last <= killExamples {
		t.Fatalf("rank 0 stopped at %v examples (kill at %v)", last, killExamples)
	}
	// Rank 0's monitor confirms the death and rebuilds membership. The
	// pipelined transport makes an ASP run finish in milliseconds — often
	// before rank 2 has even executed its kill — so the watchdog keeps
	// gathering probe evidence after training and the confirmation is
	// awaited rather than assumed to have beaten the training loop.
	stop := res.Cluster.Context(0).WatchFaults(5 * time.Millisecond)
	defer stop()
	deadline := time.Now().Add(10 * time.Second)
	for {
		surv := res.Cluster.Context(0).Survivors()
		if fmt.Sprint(surv) == "[0 1]" {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("survivors = %v, want [0 1]", surv)
		}
		//maltlint:allow rawsleep -- bounded poll for the async death confirmation
		time.Sleep(time.Millisecond)
	}
}

// TestRunSVMOverUDSMatchesTCP runs the same BSP training job over TCP and
// over Unix domain sockets and requires bitwise-identical final models:
// the transport may change the wire, never the arithmetic. BSP makes the
// comparison exact — per-sender receive slots plus barrier-fenced epochs
// give a deterministic reduction order regardless of arrival order.
func TestRunSVMOverUDSMatchesTCP(t *testing.T) {
	const ranks = 3
	train := func(nets []*tcpnet.Net) *RunStats {
		t.Helper()
		results := make([]*RunStats, ranks)
		errs := make([]error, ranks)
		var wg sync.WaitGroup
		for r := 0; r < ranks; r++ {
			wg.Add(1)
			go func(r int) {
				defer wg.Done()
				ds := tcpDS(t)
				results[r], errs[r] = RunSVM(SVMOpts{
					DS: ds, Ranks: ranks, CB: 50,
					Dataflow: dataflow.All, Sync: consistency.BSP,
					Mode: GradAvg, Epochs: 3, EvalEvery: 1,
					SVM:       svm.Config{Dim: ds.Dim, Lambda: 1e-4, Eta0: 1},
					Transport: nets[r], LocalRank: r,
				})
			}(r)
		}
		wg.Wait()
		for r, err := range errs {
			if err != nil {
				t.Fatalf("rank %d: %v", r, err)
			}
		}
		return results[0]
	}
	tcpRes := train(newTCPNets(t, ranks, windowed))
	udsRes := train(newUDSNets(t, ranks, windowed))
	if len(tcpRes.FinalW) == 0 || len(tcpRes.FinalW) != len(udsRes.FinalW) {
		t.Fatalf("model lengths differ: tcp %d, uds %d", len(tcpRes.FinalW), len(udsRes.FinalW))
	}
	for i := range tcpRes.FinalW {
		if tcpRes.FinalW[i] != udsRes.FinalW[i] {
			t.Fatalf("FinalW[%d] differs: tcp %v, uds %v", i, tcpRes.FinalW[i], udsRes.FinalW[i])
		}
	}
}
