package bench

import (
	"fmt"
	"net"
	"strings"
	"sync"
	"testing"
	"time"

	"malt/internal/consistency"
	"malt/internal/data"
	"malt/internal/dataflow"
	"malt/internal/fabric/tcpnet"
	"malt/internal/ml/svm"
)

// newTCPNets assembles an n-rank tcpnet cluster inside this process: each
// rank pre-binds a loopback :0 listener so the full address book is known
// before any endpoint is constructed, then all ranks rendezvous. The three
// Nets stand in for three OS processes; nothing is shared between replicas
// except the sockets.
func newTCPNets(t *testing.T, n int) []*tcpnet.Net {
	t.Helper()
	lns := make([]net.Listener, n)
	addrs := make([]string, n)
	for i := range lns {
		ln, err := net.Listen("tcp", "127.0.0.1:0")
		if err != nil {
			t.Fatalf("rank %d: listen: %v", i, err)
		}
		lns[i] = ln
		addrs[i] = ln.Addr().String()
	}
	nets := make([]*tcpnet.Net, n)
	for i := range nets {
		nt, err := tcpnet.New(tcpnet.Config{
			Rank:              i,
			Peers:             addrs,
			Listener:          lns[i],
			RendezvousTimeout: 30 * time.Second,
			BarrierTimeout:    60 * time.Second,
			HeartbeatInterval: 10 * time.Millisecond,
		})
		if err != nil {
			t.Fatalf("rank %d: tcpnet.New: %v", i, err)
		}
		nets[i] = nt
	}
	t.Cleanup(func() {
		for _, nt := range nets {
			nt.Close()
		}
	})
	var wg sync.WaitGroup
	errs := make([]error, n)
	for i, nt := range nets {
		wg.Add(1)
		go func(i int, nt *tcpnet.Net) {
			defer wg.Done()
			errs[i] = nt.Rendezvous()
		}(i, nt)
	}
	wg.Wait()
	for i, err := range errs {
		if err != nil {
			t.Fatalf("rank %d: rendezvous: %v", i, err)
		}
	}
	return nets
}

// tcpDS regenerates the dataset per rank from the same spec, as separate
// maltrun processes would: sharding stays consistent because generation is
// seeded, not because memory is shared.
func tcpDS(t *testing.T) *data.Dataset {
	t.Helper()
	ds, err := data.GenerateClassification(data.ClassificationSpec{
		Name: "tcp", Dim: 50, Train: 1200, Test: 300, NNZ: 6, Noise: 0.05, Seed: 77,
	})
	if err != nil {
		t.Fatal(err)
	}
	return ds
}

// TestRunSVMOverTCP trains the distributed SVM over real sockets under all
// three consistency models: three replicas, each with its own transport
// endpoint and its own regenerated dataset, synchronizing only through the
// TCP fabric (ISSUE 5 acceptance: in-process 3-rank TCP cluster).
func TestRunSVMOverTCP(t *testing.T) {
	const ranks = 3
	for _, tc := range []struct {
		sync  consistency.Model
		bound uint64
	}{
		{consistency.BSP, 0},
		{consistency.ASP, 0},
		{consistency.SSP, 2},
	} {
		t.Run(tc.sync.String(), func(t *testing.T) {
			nets := newTCPNets(t, ranks)
			results := make([]*RunStats, ranks)
			errs := make([]error, ranks)
			var wg sync.WaitGroup
			for r := 0; r < ranks; r++ {
				wg.Add(1)
				go func(r int) {
					defer wg.Done()
					ds := tcpDS(t)
					results[r], errs[r] = RunSVM(SVMOpts{
						DS: ds, Ranks: ranks, CB: 50,
						Dataflow: dataflow.All, Sync: tc.sync, Bound: tc.bound,
						Mode: GradAvg, Epochs: 5, EvalEvery: 1,
						SVM:       svm.Config{Dim: ds.Dim, Lambda: 1e-4, Eta0: 1},
						Transport: nets[r], LocalRank: r,
					})
				}(r)
			}
			wg.Wait()
			for r, err := range errs {
				if err != nil {
					t.Fatalf("rank %d: %v", r, err)
				}
			}
			// Rank 0's process owns the curve and final model.
			res := results[0]
			if len(res.Curve.Points) == 0 {
				t.Fatal("rank 0 produced no curve")
			}
			if first, last := res.Curve.Points[0].Value, res.Curve.Final(); last >= first {
				t.Fatalf("loss did not decrease over TCP (%v -> %v)", first, last)
			}
			ds := tcpDS(t)
			tr, _ := svm.New(svm.Config{Dim: ds.Dim})
			if acc := tr.Accuracy(res.FinalW, ds.Test); acc < 0.8 {
				t.Fatalf("accuracy %v over TCP", acc)
			}
			// Data moved over the wire, not through shared memory.
			if res.Stats.TotalBytes() == 0 {
				t.Fatal("no bytes crossed the transport")
			}
		})
	}
}

// TestRunSVMOverTCPSurvivesCrash kills one rank mid-training and requires
// the survivors to finish: suspicion rides delegated probes, the barrier
// coordinator prunes the dead rank, and training continues (ISSUE 5
// acceptance: kill-one-rank over TCP).
func TestRunSVMOverTCPSurvivesCrash(t *testing.T) {
	const ranks = 3
	nets := newTCPNets(t, ranks)
	results := make([]*RunStats, ranks)
	errs := make([]error, ranks)
	var wg sync.WaitGroup
	for r := 0; r < ranks; r++ {
		wg.Add(1)
		go func(r int) {
			defer wg.Done()
			ds := tcpDS(t)
			results[r], errs[r] = RunSVM(SVMOpts{
				DS: ds, Ranks: ranks, CB: 50,
				Dataflow: dataflow.All, Sync: consistency.ASP,
				Mode: GradAvg, Epochs: 4, EvalEvery: 1,
				SVM:       svm.Config{Dim: ds.Dim, Lambda: 1e-4, Eta0: 1},
				Transport: nets[r], LocalRank: r,
				KillRank: 2, KillAtIter: 3,
			})
		}(r)
	}
	wg.Wait()
	// The killed rank's own process reports the injected crash; the
	// LiveErrors filter inside RunSVM must already have suppressed it
	// (a dead rank's error is a symptom, not a failure).
	if errs[2] != nil && !strings.Contains(errs[2].Error(), "injected crash") {
		t.Fatalf("rank 2: unexpected error: %v", errs[2])
	}
	for r := 0; r < 2; r++ {
		if errs[r] != nil {
			t.Fatalf("survivor rank %d failed: %v", r, errs[r])
		}
	}
	res := results[0]
	if len(res.Curve.Points) == 0 {
		t.Fatal("rank 0 produced no curve")
	}
	// Rank 0 kept training after the crash: its curve extends past the
	// kill point.
	killExamples := float64(3 * 50)
	if last := res.Curve.Points[len(res.Curve.Points)-1].Iter; last <= killExamples {
		t.Fatalf("rank 0 stopped at %v examples (kill at %v)", last, killExamples)
	}
	// Rank 0's monitor confirmed the death and rebuilt membership.
	surv := res.Cluster.Context(0).Survivors()
	for _, s := range surv {
		if s == 2 {
			t.Fatalf("rank 2 still in rank 0's survivor list %v", surv)
		}
	}
	if fmt.Sprint(surv) != "[0 1]" {
		t.Fatalf("survivors = %v, want [0 1]", surv)
	}
}
