package bench

import (
	"math"
	"sync"

	"malt/internal/baseline/allreduce"
	"malt/internal/dstorm"
	"malt/internal/fabric"
)

// allreduce: deterministic baseline for the paper's §3.4 comparison of
// MALT's dataflows against classic all-reduce strategies. Eight ranks
// average their vectors with naive all-to-all, tree reduce-broadcast and
// butterfly mixing; the per-reduce message counts are closed-form
// invariants of each algorithm (naive N(N−1), tree 2(N−1), butterfly
// N·log₂N) and are gated with the Exact class — any drift in either
// direction means the algorithm changed, not that a machine was slow. The
// modeled wire time per reduce rides the fabric's deterministic cost model
// and is gated LowerBetter; result mismatches against the directly
// computed average are a Correctness gate.
func init() {
	title := "all-reduce baselines: per-reduce message counts and modeled wire time, naive vs tree vs butterfly (8 ranks)"
	register(Experiment{
		ID:    "allreduce",
		Title: title,
		Run:   run("allreduce", title, runAllreduceExp),
	})
}

// allreduceTrial is one strategy's measured run.
type allreduceTrial struct {
	msgsPerReduce float64 // successful fabric writes per Reduce call
	modelNs       float64 // modeled wire time per Reduce call
	mismatches    int     // coordinates off the true average beyond 1e-9
}

// runAllreduceTrial runs `rounds` collective reductions of deterministic
// per-rank vectors and checks every rank's result against the directly
// computed global average.
func runAllreduceTrial(s allreduce.Strategy, ranks, dim, rounds int) (allreduceTrial, error) {
	var t allreduceTrial
	f, err := fabric.New(fabric.Config{Ranks: ranks})
	if err != nil {
		return t, err
	}
	defer f.Close()
	c := dstorm.NewCluster(f)

	// input(r, round) is each rank's vector; reciprocals carry full
	// mantissas so a wrong contribution cannot hide in round-off.
	input := func(r, round, i int) float64 { return 1 / float64(1+i+dim*r+7*round) }

	results := make([][]float64, ranks)
	errs := make([]error, ranks)
	var wg sync.WaitGroup
	for r := 0; r < ranks; r++ {
		wg.Add(1)
		go func(r int) {
			defer wg.Done()
			red, err := allreduce.New(c.Node(r), s, dim)
			if err != nil {
				errs[r] = err
				return
			}
			defer red.Close()
			x := make([]float64, dim)
			for round := 0; round < rounds; round++ {
				for i := range x {
					x[i] = input(r, round, i)
				}
				if err := red.Reduce(x); err != nil {
					errs[r] = err
					return
				}
				// Only the last round's result is kept for checking; every
				// round reduces a fresh vector, so they are all equivalent.
				if round == rounds-1 {
					results[r] = append([]float64(nil), x...)
				}
			}
		}(r)
	}
	wg.Wait()
	for _, err := range errs {
		if err != nil {
			return t, err
		}
	}

	want := make([]float64, dim)
	for i := range want {
		sum := 0.0
		for r := 0; r < ranks; r++ {
			sum += input(r, rounds-1, i)
		}
		want[i] = sum / float64(ranks)
	}
	for r := 0; r < ranks; r++ {
		for i := range want {
			if math.Abs(results[r][i]-want[i]) > 1e-9 {
				t.mismatches++
			}
		}
	}

	t.msgsPerReduce = float64(f.Stats().TotalMessages()) / float64(rounds)
	t.modelNs = float64(f.Stats().ModeledNetworkTime().Nanoseconds()) / float64(rounds)
	return t, nil
}

func runAllreduceExp(o Options, r *Report) error {
	ranks, dim, rounds := 8, 1<<12, 8*o.Scale
	if o.Quick {
		dim, rounds = 1<<8, 2
	}
	strategies := []allreduce.Strategy{allreduce.Naive, allreduce.Tree, allreduce.Butterfly}
	mismatches := 0
	for _, s := range strategies {
		o.logf("allreduce: %v (ranks=%d dim=%d rounds=%d)", s, ranks, dim, rounds)
		t, err := runAllreduceTrial(s, ranks, dim, rounds)
		if err != nil {
			return err
		}
		r.Linef("%-9v %5.0f msgs/reduce, modeled %8.0f ns/reduce, %d mismatched coords",
			s, t.msgsPerReduce, t.modelNs, t.mismatches)
		// Message counts are algorithm invariants, independent of dim,
		// rounds and machine: gate them exactly.
		r.Metric("msgs_per_reduce_"+s.String()+"_exact", t.msgsPerReduce)
		r.Metric("model_ns_reduce_"+s.String(), t.modelNs)
		mismatches += t.mismatches
	}
	r.Metric("failed_result_mismatch", float64(mismatches))
	return nil
}
