package bench

import (
	"time"

	"malt/internal/consistency"
	"malt/internal/data"
	"malt/internal/dataflow"
	"malt/internal/ml/svm"
)

// Fig 12: splice-site convergence for BSP-all vs ASYNC-all vs
// ASYNC-Halton (modelavg, cb=5000, ranks=8), plus the per-machine bytes
// sent until convergence. The paper reports 6× (ASYNC all) and 11×
// (ASYNC Halton) over BSP, with Halton sending ~10× fewer bytes
// (370 GB vs 34 GB per machine).
func init() {
	register(Experiment{
		ID:    "fig12",
		Title: "Splice-site: MALT_all vs MALT_Halton convergence and bytes (modelavg, cb=5000, ranks=8)",
		Run: run("fig12", "Splice-site: MALT_all vs MALT_Halton convergence and bytes (modelavg, cb=5000, ranks=8)",
			func(o Options, r *Report) error {
				var (
					ds  *data.Dataset
					err error
				)
				ranks, epochs := 8, 12
				if o.Quick {
					ds, err = data.GenerateClassification(data.ClassificationSpec{
						Name: "splice", Dim: 20000, Train: 6000, Test: 1000,
						NNZ: 60, Noise: 0.10, Seed: 105,
					})
					ranks, epochs = 4, 6
				} else {
					ds, err = data.SpliceShape.Generate(o.Scale)
				}
				if err != nil {
					return err
				}
				cb := cbScale(5000)
				svmCfg := svm.Config{Dim: ds.Dim, Lambda: 1e-5, Eta0: 1}

				configs := []struct {
					label string
					flow  dataflow.Kind
					sync  consistency.Model
				}{
					{"BSP all", dataflow.All, consistency.BSP},
					{"ASYNC all", dataflow.All, consistency.ASP},
					{"ASYNC Halton", dataflow.Halton, consistency.ASP},
				}
				results := make([]*RunStats, len(configs))
				for i, c := range configs {
					o.logf("fig12: %s", c.label)
					res, err := RunSVM(SVMOpts{
						DS: ds, Ranks: ranks, CB: cb,
						Dataflow: c.flow, Sync: c.sync, Cutoff: 8,
						Mode: ModelAvg, Epochs: epochs,
						SVM: svmCfg, Sparse: false, EvalEvery: 2,
						// Same straggler model as fig10.
						Jitter: JitterSpec{Base: 300 * time.Microsecond, Spread: 400 * time.Microsecond,
							StragglerProb: 0.08, StragglerMult: 10},
					})
					if err != nil {
						return err
					}
					res.Curve.Label = "splice/" + c.label
					results[i] = res
					r.Series = append(r.Series, res.Curve)
				}
				goal := minValue(results[0].Curve) * 1.03
				bspTime, _ := results[0].Curve.TimeToReach(goal)
				r.Linef("goal loss %.4f; BSP all time %.2fs", goal, bspTime)
				// Per-machine bytes *until the goal* (the paper's 370 GB vs
				// 34 GB comparison), estimated by scaling the run's bytes by
				// the goal-time fraction.
				atGoalMB := make([]float64, len(configs))
				for i, c := range configs {
					total := float64(results[i].Stats.BytesSent(0)) / (1 << 20)
					r.Metric("mb_total_"+c.flow.String()+"_"+c.sync.String(), total)
					t, ok := results[i].Curve.TimeToReach(goal)
					atGoalMB[i] = total
					if ok && results[i].Elapsed.Seconds() > 0 {
						atGoalMB[i] = total * t / results[i].Elapsed.Seconds()
					}
					if ok {
						r.Linef("%-13s %7.2fs (%.1fx over BSP), %8.1f MB sent per machine to goal",
							c.label, t, speedup(bspTime, t), atGoalMB[i])
						r.Metric("speedup_"+c.flow.String()+"_"+c.sync.String(), speedup(bspTime, t))
					} else {
						r.Linef("%-13s goal not reached (final %.4f), %8.1f MB sent per machine total",
							c.label, results[i].Curve.Final(), total)
					}
					r.Metric("mb_per_node_"+c.flow.String()+"_"+c.sync.String(), atGoalMB[i])
				}
				// The headline ratio combines fewer bytes per round with
				// faster convergence (paper: 370 GB vs 34 GB, ~10x).
				if atGoalMB[2] > 0 {
					r.Linef("bytes-to-goal ratio ASYNC all / ASYNC Halton = %.1fx", atGoalMB[1]/atGoalMB[2])
					r.Metric("bytes_ratio_all_vs_halton", atGoalMB[1]/atGoalMB[2])
				}
				return nil
			}),
	})
}
