package bench

import (
	"fmt"

	"malt/internal/consistency"
	"malt/internal/data"
	"malt/internal/dataflow"
	"malt/internal/ml/svm"
)

// Ablation: gradient/model interleaving (paper §2: MALT provides
// peer-to-peer learning "by interleaving gradient updates with parameter
// values"). Pure delta exchange never contracts replica drift on partial
// dataflows — models random-walk apart and the loss plateaus above the
// all-to-all floor; a periodic whole-model average contracts the drift
// geometrically. This experiment sweeps the interleave period on the
// Halton dataflow and reports the final loss each period reaches.
func init() {
	register(Experiment{
		ID:    "ablation-interleave",
		Title: "Interleaved model sync on MALT_Halton: drift vs interleave period (RCV1, BSP, gradavg, ranks=10)",
		Run: run("ablation-interleave", "Interleaved model sync on MALT_Halton: drift vs interleave period (RCV1, BSP, gradavg, ranks=10)",
			func(o Options, r *Report) error {
				ds, err := data.RCV1Shape.Generate(o.Scale)
				if err != nil {
					return err
				}
				ranks, epochs := 10, 20
				periods := []int{-1, 50, 10, 5}
				if o.Quick {
					ranks, epochs = 4, 8
					periods = []int{-1, 10}
				}
				cb := cbScale(5000)
				svmCfg := svm.Config{Dim: ds.Dim, Lambda: 1e-5, Eta0: 2}

				// All-to-all reference: zero drift by construction.
				o.logf("ablation-interleave: all-to-all reference")
				ref, err := RunSVM(SVMOpts{
					DS: ds, Ranks: ranks, CB: cb,
					Dataflow: dataflow.All, Sync: consistency.BSP,
					Mode: GradAvg, Epochs: epochs, ModelSyncEvery: -1,
					SVM: svmCfg, Sparse: true, EvalEvery: 4,
				})
				if err != nil {
					return err
				}
				refLoss := minValue(ref.Curve)
				r.Linef("%-22s best loss %7.4f (no drift possible)", "all-to-all reference", refLoss)
				r.Metric("ref_all", refLoss)

				pureDelta, bestSync := 0.0, 0.0
				for _, period := range periods {
					label := fmt.Sprintf("every %d rounds", period)
					if period < 0 {
						label = "never (pure deltas)"
					}
					o.logf("ablation-interleave: halton, model sync %s", label)
					res, err := RunSVM(SVMOpts{
						DS: ds, Ranks: ranks, CB: cb,
						Dataflow: dataflow.Halton, Sync: consistency.BSP,
						Mode: GradAvg, Epochs: epochs, ModelSyncEvery: period,
						SVM: svmCfg, Sparse: true, EvalEvery: 4,
					})
					if err != nil {
						return err
					}
					best := minValue(res.Curve)
					res.Curve.Label = fmt.Sprintf("rcv1/halton/sync=%d", period)
					r.Series = append(r.Series, res.Curve)
					r.Linef("%-22s best loss %7.4f (gap to all-to-all %+.4f)", "halton, "+label, best, best-refLoss)
					r.Metric(fmt.Sprintf("halton_sync_%d", period), best)
					if period < 0 {
						pureDelta = best
					} else if bestSync == 0 || best < bestSync {
						bestSync = best
					}
				}
				// The qualitative claim, gated without pinning noisy loss
				// floats: interleaving must reach a strictly lower loss than
				// pure delta exchange (whose drift plateau sits well above).
				failed := 0.0
				if bestSync >= pureDelta {
					failed = 1
				}
				r.Metric("failed_interleave_no_gain", failed)
				r.Linef("(pure delta exchange plateaus above the reference; interleaving closes the gap)")
				return nil
			}),
	})
}
