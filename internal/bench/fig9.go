package bench

import (
	"malt/internal/baseline/paramserver"
	"malt/internal/consistency"
	"malt/internal/data"
	"malt/internal/dataflow"
	"malt/internal/ml/sgd"
	"malt/internal/ml/svm"
	"malt/internal/trace"
)

// Fig 9: compute time vs wait time for asynchronous training on the
// high-dimensional webspam workload, 20 ranks: MALT_Halton (gradient and
// model averaging) against the parameter server (gradient and model
// pushes). The paper's finding: MALT replicas never wait — they compute
// and push; parameter-server clients stall after every push waiting for
// the updated model to come back.
func init() {
	register(Experiment{
		ID:    "fig9",
		Title: "Webspam async: Halton grad/model-avg vs parameter server grad/model-avg (compute vs wait, ranks=20)",
		Run: run("fig9", "Webspam async: Halton grad/model-avg vs parameter server grad/model-avg (compute vs wait, ranks=20)",
			func(o Options, r *Report) error {
				ds, err := data.WebspamShape.Generate(o.Scale)
				if err != nil {
					return err
				}
				ranks, epochs := 20, 10
				if o.Quick {
					ranks, epochs = 8, 3
				}
				cb := cbScale(5000)
				// Lambda < 0: train the unregularized hinge objective so per-batch
				// weight deltas touch only the batch's features. Real SVM-SGD keeps
				// the L2 shrink factored out as a scalar, giving the same sparse
				// wire shape; this experiment measures traffic, and gradients must
				// be gradient-sized, not model-sized.
				svmCfg := svm.Config{Dim: ds.Dim, Lambda: -1, Eta0: 1,
					Schedule: sgd.InvScaling{Eta0: 1, Lambda: 1e-3}}
				evalTr, _ := svm.New(svmCfg)

				r.Linef("%-18s %10s %10s %10s", "config", "compute", "wait", "loss")

				row := func(label string, compute, wait float64, loss float64) {
					r.Linef("%-18s %9.2fs %9.2fs %10.4f", label, compute, wait, loss)
					r.Metric(label+"_compute_s", compute)
					r.Metric(label+"_wait_s", wait)
				}

				// MALT Halton, async, gradient and model averaging.
				for _, mode := range []CommMode{GradAvg, ModelAvg} {
					o.logf("fig9: Halton %v", mode)
					res, err := RunSVM(SVMOpts{
						DS: ds, Ranks: ranks, CB: cb,
						Dataflow: dataflow.Halton, Sync: consistency.ASP, Cutoff: 16,
						Mode: mode, Epochs: epochs,
						SVM: svmCfg, Sparse: mode == GradAvg, EvalEvery: 1 << 30,
					})
					if err != nil {
						return err
					}
					var compute, wait float64
					for _, tm := range res.Timers {
						compute += tm.Get(trace.Compute).Seconds()
						wait += (tm.Get(trace.Wait) + tm.Get(trace.Barrier)).Seconds()
					}
					n := float64(ranks)
					row("halton-"+mode.String(), compute/n, wait/n, evalTr.Loss(res.FinalW, ds.Test))
				}

				// Parameter server, async, gradient and model pushes.
				batches := (len(ds.Train) / ranks / cb) * epochs
				if batches == 0 {
					batches = 1
				}
				for _, sendModel := range []bool{false, true} {
					label := "ps-gradavg"
					if sendModel {
						label = "ps-modelavg"
					}
					o.logf("fig9: %s (%d rounds)", label, batches)
					trainers := make([]*svm.Trainer, ranks+1)
					locals := make([][]float64, ranks+1)
					for w := 1; w <= ranks; w++ {
						trainers[w], _ = svm.New(svmCfg)
						locals[w] = make([]float64, ds.Dim)
					}
					ps, err := paramserver.Train(paramserver.Config{
						Workers: ranks, Dim: ds.Dim, Rounds: batches,
						SendModel: sendModel, GradSparse: !sendModel, Eta: 0.5,
					}, func(rank, round int, model, out []float64) {
						lo, hi := data.Shard(len(ds.Train), rank-1, ranks)
						shard := ds.Train[lo:hi]
						at := (round * cb) % max(1, len(shard)-cb)
						batch := shard[at : at+cb]
						if sendModel {
							copy(locals[rank], model)
							trainers[rank].TrainEpoch(locals[rank], batch)
							copy(out, locals[rank])
							return
						}
						trainers[rank].BatchGradient(out, model, batch)
					})
					if err != nil {
						return err
					}
					var compute, wait float64
					for _, tm := range ps.WorkerTimers {
						compute += tm.Get(trace.Compute).Seconds()
						wait += tm.Get(trace.Wait).Seconds()
					}
					n := float64(ranks)
					row(label, compute/n, wait/n, evalTr.Loss(ps.FinalModel, ds.Test))
				}
				r.Linef("(MALT pushes and proceeds; PS clients wait for the updated model after every push)")
				return nil
			}),
	})
}
