package bench

import (
	"fmt"
	"io"
	"sort"
	"time"
)

// Options tunes an experiment run.
type Options struct {
	// Scale multiplies dataset sizes (1 = default benchmark size).
	Scale int
	// Quick shrinks epochs/rank counts for CI-speed smoke runs. Shapes
	// still hold; absolute numbers are noisier.
	Quick bool
	// Log receives progress lines when non-nil.
	Log io.Writer
}

func (o Options) logf(format string, args ...any) {
	if o.Log != nil {
		fmt.Fprintf(o.Log, format+"\n", args...)
	}
}

// Experiment is one table or figure reproduction.
type Experiment struct {
	// ID is the registry key ("fig4" … "fig14", "table2", "table3",
	// "saturation").
	ID string
	// Title echoes the paper's caption.
	Title string
	// Run executes the experiment.
	Run func(Options) (*Report, error)
}

var registry = map[string]Experiment{}

func register(e Experiment) {
	if _, dup := registry[e.ID]; dup {
		panic("bench: duplicate experiment " + e.ID)
	}
	registry[e.ID] = e
}

// Get returns the experiment with the given ID.
func Get(id string) (Experiment, error) {
	e, ok := registry[id]
	if !ok {
		return Experiment{}, fmt.Errorf("bench: unknown experiment %q (have %v)", id, IDs())
	}
	return e, nil
}

// IDs lists registered experiment IDs in stable order.
func IDs() []string {
	out := make([]string, 0, len(registry))
	for id := range registry {
		out = append(out, id)
	}
	sort.Strings(out)
	return out
}

// All returns every experiment in ID order.
func All() []Experiment {
	out := make([]Experiment, 0, len(registry))
	for _, id := range IDs() {
		out = append(out, registry[id])
	}
	return out
}

// run wraps an experiment body with timing and report boilerplate.
func run(id, title string, body func(o Options, r *Report) error) func(Options) (*Report, error) {
	return func(o Options) (*Report, error) {
		if o.Scale <= 0 {
			o.Scale = 1
		}
		r := &Report{ID: id, Title: title}
		start := time.Now()
		if err := body(o, r); err != nil {
			return nil, fmt.Errorf("%s: %w", id, err)
		}
		r.Elapsed = time.Since(start)
		return r, nil
	}
}

// cbScale converts the paper's nominal communication batch size to this
// repo's scaled datasets (≈100× fewer examples per rank), flooring at 10.
func cbScale(nominal int) int {
	cb := nominal / 100
	if cb < 10 {
		cb = 10
	}
	return cb
}

// speedup returns a/b guarding against division by zero.
func speedup(a, b float64) float64 {
	if b <= 0 {
		return 0
	}
	return a / b
}
