package bench

import (
	"fmt"
	"math/rand"
	"sync"
	"sync/atomic"
	"time"

	"malt/internal/chaos"
	"malt/internal/compress"
	"malt/internal/consistency"
	"malt/internal/core"
	"malt/internal/data"
	"malt/internal/dataflow"
	"malt/internal/dstorm"
	"malt/internal/fabric"
	"malt/internal/fault"
	"malt/internal/ml/svm"
	"malt/internal/trace"
	"malt/internal/vol"
)

// CommMode selects what a replica scatters each communication batch. In
// both modes the replica runs per-example SVM-SGD locally over the cb
// examples; the difference is what crosses the network (the paper's
// gradavg vs modelavg configurations).
type CommMode int

const (
	// GradAvg scatters the accumulated model delta ("gradient" in the
	// paper's terminology: the sum of the batch's SGD updates) and applies
	// the peer average on top of the pre-batch model.
	GradAvg CommMode = iota
	// ModelAvg scatters the whole model and averages it with the peers'.
	ModelAvg
)

// String returns the paper's label.
func (m CommMode) String() string {
	if m == ModelAvg {
		return "modelavg"
	}
	return "gradavg"
}

// SVMOpts parameterizes one distributed SVM run.
type SVMOpts struct {
	DS    *data.Dataset
	Eval  []data.Example // defaults to DS.Test
	Ranks int
	// CB is the communication batch size in examples (already scaled).
	CB       int
	Dataflow dataflow.Kind
	Graph    *dataflow.Graph // overrides Dataflow when non-nil
	Sync     consistency.Model
	Bound    uint64
	Cutoff   uint64
	Mode     CommMode
	// Epochs bounds the run; Goal (training loss ≤ Goal) stops it early
	// when positive.
	Epochs int
	Goal   float64
	// EvalEvery is the number of batches between rank-0 loss evaluations.
	// Default 5.
	EvalEvery int
	SVM       svm.Config
	// Sparse selects the sparse wire format for scatters.
	Sparse   bool
	QueueLen int
	Fabric   fabric.Config
	// Transport, when non-nil, replaces the simulated fabric with an
	// external interconnect (e.g. tcpnet over real sockets). The run then
	// executes only LocalRank's replica in this process; the other ranks
	// run their own RunSVM in their own processes against the same peer
	// list, and the returned RunStats covers the local rank only (curve
	// and final model are populated only where rank 0 lives). Chaos
	// requires the simulated fabric and is rejected.
	Transport fabric.Transport
	// LocalRank is this process's rank when Transport is set.
	LocalRank int
	// Rejoin re-admits LocalRank into an already-running multi-process
	// cluster instead of rendezvousing: the transport mints a fresh
	// membership epoch, a snapshot is pulled from a publishing survivor
	// (see PublishState), and the replica resumes from it. Requires
	// Transport; the restarted process must not have called Rendezvous.
	Rejoin bool
	// KillRank/KillAtIter inject a crash: the given rank dies when it
	// reaches the given batch count (0 disables).
	KillRank   int
	KillAtIter uint64
	// Chaos, when non-nil, drives the fabric through the scripted fault
	// scenario for the duration of the run (transient drops, blackouts,
	// stragglers, timed kills, rejoins and partitions). Pending events are
	// cancelled when training finishes first. Scripted join/restart events
	// run the full cluster-level rejoin: the rank is readmitted under a
	// fresh epoch, pulls a state snapshot from a publishing survivor (see
	// PublishState), and its replica goroutine is relaunched.
	Chaos *chaos.Script
	// PublishState makes every replica publish its recoverable state (model,
	// iteration counter, SGD step count) after each batch, so it can donate a
	// snapshot to a rank rejoining via a scripted join/restart event. Costs
	// one model copy per batch.
	PublishState bool
	// Retry bounds per-write transient-fault retrying (zero = defaults).
	Retry dstorm.RetryPolicy
	// Pipeline, when non-nil, enables the per-destination send coalescer on
	// every rank (the batching ablation knob; see dstorm.PipelineConfig).
	Pipeline *dstorm.PipelineConfig
	// GatherWorkers enables the parallel gather engine on every rank
	// (0 = serial, -1 = default pool size; see core.Config.GatherWorkers).
	GatherWorkers int
	// FoldChunk is the coordinate-chunk size for parallel folds
	// (0 = vol.DefaultFoldChunk).
	FoldChunk int
	// BucketBytes splits gradient scatters into byte-capped buckets pushed
	// as soon as they are produced (comm/compute overlap; see
	// core.Config.BucketBytes). 0 disables bucketing.
	BucketBytes int
	// Compress enables lossy gradient compression with per-link
	// error-feedback residuals on every dense vector (see
	// core.Config.Compress). Dense-only: incompatible with Sparse.
	Compress compress.Options
	// Suspicion tunes the K-strikes failure detector (zero = defaults).
	Suspicion fault.SuspicionConfig
	// Jitter models per-machine compute-speed variance. The single-core
	// host schedules goroutines fairly, which hides the stragglers that
	// BSP suffers from on a real cluster; a per-batch sleep (which
	// overlaps across ranks, restoring parallel-machine semantics)
	// reintroduces them.
	Jitter JitterSpec
	// ModelSyncEvery interleaves a whole-model averaging round every this
	// many gradient rounds in GradAvg mode — the paper's §2 design
	// ("interleaving gradient updates with parameter values"). Gradient
	// deltas alone never contract replica drift on partial dataflows like
	// Halton; the periodic model average does. 0 uses the default of 10;
	// negative disables interleaving.
	ModelSyncEvery int
}

// JitterSpec is a per-batch compute-delay model: every batch takes an
// extra Base + U[0,Spread), and with probability StragglerProb the whole
// delay is multiplied by StragglerMult (a transient straggler: page fault,
// background daemon, packet storm).
type JitterSpec struct {
	Base          time.Duration
	Spread        time.Duration
	StragglerProb float64
	StragglerMult int
}

func (j JitterSpec) enabled() bool { return j.Base > 0 || j.Spread > 0 }

// delay draws the next batch's simulated compute time.
func (j JitterSpec) delay(rng *rand.Rand) time.Duration {
	d := j.Base
	if j.Spread > 0 {
		d += time.Duration(rng.Int63n(int64(j.Spread)))
	}
	if j.StragglerProb > 0 && rng.Float64() < j.StragglerProb {
		mult := j.StragglerMult
		if mult <= 1 {
			mult = 4
		}
		d *= time.Duration(mult)
	}
	return d
}

func (o *SVMOpts) setDefaults() error {
	if o.DS == nil {
		return fmt.Errorf("bench: SVMOpts.DS is required")
	}
	if o.Eval == nil {
		o.Eval = o.DS.Test
	}
	if o.Ranks <= 0 {
		return fmt.Errorf("bench: Ranks must be positive")
	}
	if o.CB <= 0 {
		return fmt.Errorf("bench: CB must be positive")
	}
	if o.Epochs <= 0 {
		o.Epochs = 10
	}
	if o.EvalEvery <= 0 {
		o.EvalEvery = 5
	}
	if o.SVM.Dim == 0 {
		o.SVM.Dim = o.DS.Dim
	}
	if o.ModelSyncEvery == 0 {
		o.ModelSyncEvery = 10
	}
	if o.Compress.Enabled() {
		if o.Sparse {
			return fmt.Errorf("bench: Compress requires the dense wire format (drop Sparse)")
		}
		if err := o.Compress.Validate(); err != nil {
			return fmt.Errorf("bench: %w", err)
		}
	}
	return nil
}

// RunStats reports one distributed run.
type RunStats struct {
	// Curve is the loss trajectory sampled by rank 0. Point.Iter counts
	// examples processed per rank (batches × cb), comparable with a serial
	// run's example count.
	Curve Series
	// Reached reports whether Goal was hit; TimeToGoal/ItersToGoal locate it.
	Reached     bool
	TimeToGoal  float64
	ItersToGoal float64
	// FinalW is rank 0's final model.
	FinalW []float64
	// FinalWTail is rank 0's tail-averaged model (the mean iterate over the
	// second half of training) — a lower-variance convergence estimate than
	// the raw final iterate, which under ASP carries one batch's noise.
	FinalWTail []float64
	// Timers are the per-rank phase breakdowns.
	Timers []*trace.Timer
	// Stats is the fabric traffic accounting.
	Stats *fabric.Stats
	// Elapsed is the wall-clock duration of the training region.
	Elapsed time.Duration
	// Batches is the number of communication batches rank 0 executed.
	Batches uint64
	// Cluster is the (finished) cluster, exposed so callers can inspect the
	// per-rank fault monitors and retry counters after a chaos run.
	Cluster *core.Cluster
	// Retry aggregates the transient-fault write counters over all ranks.
	Retry dstorm.RetryStats
	// ChaosLog is the list of scenario events that fired (nil without Chaos).
	ChaosLog []chaos.LogEntry
}

// RunSVM executes one distributed SVM training run and collects its
// convergence curve, per-phase timers and traffic totals.
func RunSVM(opts SVMOpts) (*RunStats, error) {
	if err := opts.setDefaults(); err != nil {
		return nil, err
	}
	if opts.Rejoin && opts.Transport == nil {
		return nil, fmt.Errorf("bench: Rejoin requires an external transport (in-process runs rejoin via chaos join events)")
	}
	if opts.Chaos != nil {
		if opts.Transport != nil {
			return nil, fmt.Errorf("bench: chaos injection requires the simulated fabric; it is not supported on an external transport")
		}
		// Catch scripts that are incoherent for this cluster size before any
		// goroutine starts: a bad rank id or a blackout of an already-killed
		// rank should fail the run loudly, not surface as a mid-run fabric
		// error buried in the chaos log.
		if err := opts.Chaos.Validate(opts.Ranks); err != nil {
			return nil, err
		}
	}
	cluster, err := core.NewCluster(core.Config{
		Ranks:          opts.Ranks,
		Transport:      opts.Transport,
		Dataflow:       opts.Dataflow,
		Graph:          opts.Graph,
		Sync:           opts.Sync,
		StalenessBound: opts.Bound,
		ASPCutoff:      opts.Cutoff,
		QueueLen:       opts.QueueLen,
		Fabric:         opts.Fabric,
		Retry:          opts.Retry,
		Suspicion:      opts.Suspicion,
		Pipeline:       opts.Pipeline,
		GatherWorkers:  opts.GatherWorkers,
		FoldChunk:      opts.FoldChunk,
		BucketBytes:    opts.BucketBytes,
		Compress:       opts.Compress,
	})
	if err != nil {
		return nil, err
	}
	vtype := vol.Dense
	if opts.Sparse {
		vtype = vol.Sparse
	}
	var (
		stop       atomic.Bool
		mu         sync.Mutex
		curve      Series
		start      time.Time
		finalW     []float64
		finalWTail []float64
	)
	udf := vol.Average
	replica := func(ctx *core.Context) error {
		v, err := ctx.CreateVectorOpts("svm", vtype, opts.SVM.Dim, vol.Options{QueueLen: opts.QueueLen})
		if err != nil {
			return err
		}
		tr, err := svm.New(opts.SVM)
		if err != nil {
			return err
		}
		w := make([]float64, opts.SVM.Dim)
		if opts.Mode == ModelAvg {
			w = v.Data() // the model itself is the shared vector
		}
		before := make([]float64, opts.SVM.Dim) // pre-batch model for delta exchange
		tailSum := make([]float64, opts.SVM.Dim)
		tailN := 0
		jrng := rand.New(rand.NewSource(int64(1000 + ctx.Rank())))
		iter := uint64(0)
		startEpoch := 0
		if resume := ctx.Resume(); resume != nil {
			// Rejoined mid-training: seed the model, iteration counter and
			// SGD step count from the donated snapshot instead of iteration
			// zero, and skip ahead to the epoch the cluster is in.
			copy(w, resume.Model)
			iter = resume.Iter
			tr.SetSteps(uint64(resume.Opt["steps"]))
			if nb := (len(opts.DS.Train) / len(ctx.Survivors())) / opts.CB; nb > 0 {
				startEpoch = int(iter) / nb
			}
		}
		if !ctx.Rejoining() {
			// A rejoining rank must not enter the startup barrier: the
			// standing members passed it long ago and will never re-enter.
			if err := ctx.Barrier(v); err != nil {
				return err
			}
		}
		// Rank 0 anchors the convergence-curve clock; under an external
		// transport each process hosts one rank, so that rank stamps the
		// training region or Elapsed would read zero off-rank-0.
		if ctx.Rank() == 0 || opts.Transport != nil {
			mu.Lock()
			start = time.Now()
			mu.Unlock()
		}
		for epoch := startEpoch; epoch < opts.Epochs && !stop.Load(); epoch++ {
			lo, hi, err := ctx.Shard(len(opts.DS.Train))
			if err != nil {
				return err // this rank is dead (removed from survivor list)
			}
			shard := opts.DS.Train[lo:hi]
			// Every live rank must execute the same number of batches per
			// epoch or the BSP barriers deadlock at the epoch tail: derive
			// the count from the *minimum* shard size over the survivor
			// view, which is identical on all ranks.
			minShard := len(opts.DS.Train) / len(ctx.Survivors())
			nBatches := minShard / opts.CB
			if nBatches == 0 {
				return fmt.Errorf("bench: cb %d exceeds shard size %d", opts.CB, minShard)
			}
			for b := 0; b < nBatches && !stop.Load(); b++ {
				at := b * opts.CB
				batch := shard[at : at+opts.CB]
				iter++
				if opts.KillAtIter > 0 && ctx.Rank() == opts.KillRank && iter == opts.KillAtIter {
					if err := cluster.Transport().Kill(ctx.Rank()); err != nil {
						return err
					}
					return fmt.Errorf("bench: injected crash on rank %d at iter %d", ctx.Rank(), iter)
				}
				// A chaos script may have killed this rank out of band: a
				// dead replica must stop computing (its error is filtered by
				// LiveErrors below) instead of striking its live peers.
				if !cluster.Transport().Alive(ctx.Rank()) {
					return fmt.Errorf("bench: rank %d killed externally at iter %d", ctx.Rank(), iter)
				}
				ctx.SetIteration(iter)
				if opts.Jitter.enabled() {
					d := opts.Jitter.delay(jrng)
					ctx.Compute(func() { time.Sleep(d) })
				}
				modelRound := opts.Mode == ModelAvg ||
					(opts.ModelSyncEvery > 0 && iter%uint64(opts.ModelSyncEvery) == 0)
				switch {
				case opts.Mode == GradAvg && !modelRound:
					// Local per-example SGD over the batch; the scattered
					// "gradient" is the accumulated model delta, produced
					// bucket by bucket so each bucket is on the wire while
					// the next one is still being written (a plain
					// compute-then-Scatter when bucketing is off).
					ctx.Compute(func() {
						copy(before, w)
						tr.TrainEpoch(w, batch)
					})
					err := ctx.ScatterBucketed(v, func(lo, hi int) {
						delta := v.Data()
						for i := lo; i < hi; i++ {
							delta[i] = w[i] - before[i]
						}
					})
					if err != nil {
						return err
					}
					if err := ctx.Advance(v); err != nil {
						return err
					}
					if _, err := ctx.Gather(v, udf); err != nil {
						return err
					}
					ctx.Compute(func() {
						delta := v.Data()
						for i := range w {
							w[i] = before[i] + delta[i]
						}
					})
				case opts.Mode == GradAvg && modelRound:
					// Interleaved whole-model round (§2: gradient updates
					// interleaved with parameter values): averaging the
					// models themselves contracts the drift that pure delta
					// exchange accumulates on partial dataflows.
					ctx.Compute(func() {
						tr.TrainEpoch(w, batch)
						copy(v.Data(), w)
					})
					if err := ctx.Scatter(v); err != nil {
						return err
					}
					if err := ctx.Advance(v); err != nil {
						return err
					}
					if _, err := ctx.GatherLatest(v, udf); err != nil {
						return err
					}
					ctx.Compute(func() { copy(w, v.Data()) })
				case opts.Mode == ModelAvg:
					ctx.Compute(func() { tr.TrainEpoch(w, batch) })
					if err := ctx.Scatter(v); err != nil {
						return err
					}
					if err := ctx.Advance(v); err != nil {
						return err
					}
					// Freshest model per peer: an older snapshot carries no
					// information once a newer one has arrived.
					if _, err := ctx.GatherLatest(v, udf); err != nil {
						return err
					}
				}
				// Evaluation before the superstep commit so that a BSP stop
				// decision is visible to every rank at the same round.
				if ctx.Rank() == 0 && iter%uint64(opts.EvalEvery) == 0 {
					loss := tr.Loss(w, opts.Eval)
					mu.Lock()
					curve.Points = append(curve.Points, Point{
						Time:  time.Since(start).Seconds(),
						Iter:  float64(iter) * float64(opts.CB),
						Value: loss,
					})
					mu.Unlock()
					if opts.Goal > 0 && loss <= opts.Goal {
						stop.Store(true)
					}
				}
				if ctx.Rank() == 0 && epoch >= opts.Epochs/2 {
					for i := range tailSum {
						tailSum[i] += w[i]
					}
					tailN++
				}
				if opts.PublishState {
					if err := ctx.PublishState(iter, w, map[string]float64{"steps": float64(tr.Steps())}); err != nil {
						return err
					}
				}
				if err := ctx.Commit(v); err != nil {
					return err
				}
			}
		}
		if ctx.Rank() == 0 {
			mu.Lock()
			finalW = append([]float64(nil), w...)
			if tailN > 0 {
				finalWTail = make([]float64, len(tailSum))
				for i := range finalWTail {
					finalWTail[i] = tailSum[i] / float64(tailN)
				}
			}
			curve.Label = fmt.Sprintf("%s/%s/%s/cb=%d/ranks=%d",
				opts.DS.Name, opts.Sync, opts.Mode, opts.CB, opts.Ranks)
			mu.Unlock()
		}
		return nil
	}
	// Scripted join/restart events run the full elastic-membership path:
	// cluster-level rejoin (epoch mint, send/receive-list restore, snapshot
	// pull from a publishing survivor) followed by a relaunch of the rank's
	// replica goroutine, whose outcome replaces the killed incarnation's.
	var (
		rejoinWG  sync.WaitGroup
		rejoinMu  sync.Mutex
		rejoinErr = map[int]error{}
	)
	var chaosRunner *chaos.Runner
	if opts.Chaos != nil {
		opts.Chaos.HandleJoin(func(rank int) error {
			if _, err := cluster.Rejoin(rank); err != nil {
				return err
			}
			rejoinWG.Add(1)
			go func() {
				err := cluster.Context(rank).Monitor().Guard(func() error {
					return replica(cluster.Context(rank))
				})
				rejoinMu.Lock()
				rejoinErr[rank] = err
				rejoinMu.Unlock()
				rejoinWG.Done()
			}()
			return nil
		})
		chaosRunner = opts.Chaos.Run(cluster.Fabric())
		defer chaosRunner.Stop()
	}
	var res *core.Result
	if opts.Transport != nil {
		if opts.Rejoin {
			// Restarted process: re-admit this rank (minting a fresh
			// membership epoch) and pull a snapshot from a publishing
			// survivor before the replica starts. The replica observes
			// ctx.Rejoining() and resumes instead of starting cold.
			if _, err := cluster.Rejoin(opts.LocalRank); err != nil {
				return nil, err
			}
		}
		// Multi-process: this process hosts exactly one replica; its peers
		// run in their own processes over the shared transport.
		res, err = cluster.RunLocal(opts.LocalRank, replica)
		if err != nil {
			return nil, err
		}
	} else {
		res = cluster.Run(replica)
	}
	if chaosRunner != nil {
		// Stop first (no further joins can fire), then wait out any replica
		// a join event relaunched and adopt its outcome in place of the
		// killed incarnation's expected error.
		chaosRunner.Stop()
		rejoinWG.Wait()
		for rank, e := range rejoinErr {
			res.PerRank[rank].Err = e
		}
	}
	if errs := res.LiveErrors(cluster.Transport().Alive); len(errs) > 0 {
		return nil, errs[0]
	}

	out := &RunStats{
		Curve:      curve,
		FinalW:     finalW,
		FinalWTail: finalWTail,
		Timers:     make([]*trace.Timer, opts.Ranks),
		Stats:      cluster.Transport().Stats(),
		Cluster:    cluster,
	}
	for r := 0; r < opts.Ranks; r++ {
		st := cluster.Context(r).RetryStats()
		out.Retry.Attempts += st.Attempts
		out.Retry.Retries += st.Retries
		out.Retry.Recovered += st.Recovered
		out.Retry.Exhausted += st.Exhausted
	}
	if chaosRunner != nil {
		out.ChaosLog = chaosRunner.Log()
	}
	mu.Lock()
	if !start.IsZero() {
		out.Elapsed = time.Since(start)
	}
	mu.Unlock()
	for _, rr := range res.PerRank {
		out.Timers[rr.Rank] = rr.Timer
	}
	if len(curve.Points) > 0 {
		out.Batches = uint64(curve.Points[len(curve.Points)-1].Iter) / uint64(opts.CB)
	}
	if opts.Goal > 0 {
		if t, ok := curve.TimeToReach(opts.Goal); ok {
			out.Reached = true
			out.TimeToGoal = t
			out.ItersToGoal, _ = curve.ItersToReach(opts.Goal)
		}
	}
	return out, nil
}

// SerialOpts parameterizes the single-rank SGD baseline.
type SerialOpts struct {
	DS        *data.Dataset
	Eval      []data.Example
	SVM       svm.Config
	Epochs    int
	Goal      float64
	EvalEvery int // examples between evaluations; default 2000
}

// RunSerialSVM runs Bottou-style serial SGD and collects the same curve
// shape as RunSVM (Point.Iter counts examples processed).
func RunSerialSVM(opts SerialOpts) (*RunStats, error) {
	if opts.DS == nil {
		return nil, fmt.Errorf("bench: SerialOpts.DS is required")
	}
	if opts.Eval == nil {
		opts.Eval = opts.DS.Test
	}
	if opts.Epochs <= 0 {
		opts.Epochs = 10
	}
	if opts.EvalEvery <= 0 {
		opts.EvalEvery = 2000
	}
	if opts.SVM.Dim == 0 {
		opts.SVM.Dim = opts.DS.Dim
	}
	tr, err := svm.New(opts.SVM)
	if err != nil {
		return nil, err
	}
	w := make([]float64, opts.SVM.Dim)
	curve := Series{Label: fmt.Sprintf("%s/serial-sgd", opts.DS.Name)}
	start := time.Now()
	timer := &trace.Timer{}
	seen := 0
	reached := false
outer:
	for epoch := 0; epoch < opts.Epochs; epoch++ {
		for _, ex := range opts.DS.Train {
			timer.Time(trace.Compute, func() { tr.Step(w, ex) })
			seen++
			if seen%opts.EvalEvery == 0 {
				loss := tr.Loss(w, opts.Eval)
				curve.Points = append(curve.Points, Point{
					Time:  time.Since(start).Seconds(),
					Iter:  float64(seen),
					Value: loss,
				})
				if opts.Goal > 0 && loss <= opts.Goal {
					reached = true
					break outer
				}
			}
		}
	}
	out := &RunStats{
		Curve:   curve,
		FinalW:  w,
		Timers:  []*trace.Timer{timer},
		Elapsed: time.Since(start),
		Reached: reached,
	}
	if opts.Goal > 0 && reached {
		out.TimeToGoal, _ = curve.TimeToReach(opts.Goal)
		out.ItersToGoal, _ = curve.ItersToReach(opts.Goal)
	}
	return out, nil
}
