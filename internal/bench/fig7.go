package bench

import (
	"sync"
	"time"

	"malt/internal/consistency"
	"malt/internal/core"
	"malt/internal/data"
	"malt/internal/dataflow"
	"malt/internal/ml/linalg"
	"malt/internal/ml/mf"
	"malt/internal/ml/sgd"
	"malt/internal/vol"
)

// Fig 7: test RMSE vs iterations for matrix factorization on the
// Netflix-shaped workload — distributed Hogwild (ASYNC, ranks=2, replace
// gather over the changed factor rows) with fixed and by-iteration decayed
// learning rates, against single-rank SGD with a fixed rate. The paper
// reports 1.9× (fixed) and 1.5× (byiter) fewer iterations to the RMSE
// goal.
func init() {
	register(Experiment{
		ID:    "fig7",
		Title: "Netflix MF test RMSE vs iterations: Hogwild-over-MALT (ASYNC, ranks=2, cb=1000) fixed/byiter",
		Run: run("fig7", "Netflix MF test RMSE vs iterations: Hogwild-over-MALT (ASYNC, ranks=2, cb=1000) fixed/byiter",
			func(o Options, r *Report) error {
				spec := data.NetflixSpec(o.Scale)
				epochs := 12
				if o.Quick {
					spec.Users, spec.Items = 600, 200
					spec.Train = 30000
					spec.Test = 3000
					epochs = 8
				}
				// A lower learning rate stretches convergence over several
				// epochs so the iteration axis resolves the configurations.
				eta := 0.01
				ds, err := data.GenerateRatings(spec)
				if err != nil {
					return err
				}
				// The paper sorts by movie and splits across ranks so
				// Hogwild overwrites rarely collide.
				ds.SortByItem()
				const ranks = 2
				cb := 500 // nominal 1000 at the paper's scale
				mfCfg := mf.Config{Users: ds.Users, Items: ds.Items, Rank: ds.Rank, Eta0: eta}

				o.logf("fig7: single-rank SGD (fixed rate)")
				serial, err := runSerialMF(ds, mfCfg, epochs)
				if err != nil {
					return err
				}
				goal := serial.Final() * 1.002
				serialIters, ok := serial.ItersToReach(goal)
				if !ok {
					serialIters = serial.Points[len(serial.Points)-1].Iter
				}
				r.Series = append(r.Series, serial)
				r.Linef("goal test RMSE %.4f; single-rank SGD: %.0f ratings", goal, serialIters)

				for _, sched := range []string{"fixed", "byiter"} {
					o.logf("fig7: MALT %s", sched)
					cfg := mfCfg
					if sched == "byiter" {
						cfg.Schedule = sgd.ByIter{Eta0: mfCfg.Eta0 * 1.5, Every: uint64(len(ds.Train) / ranks), Factor: 0.9}
					}
					curve, err := runDistributedMF(ds, cfg, ranks, cb, 2*epochs)
					if err != nil {
						return err
					}
					curve.Label = "netflix/malt-" + sched
					r.Series = append(r.Series, curve)
					if it, ok := curve.ItersToReach(goal); ok {
						sp := speedup(serialIters, it)
						r.Linef("MALT-%-7s cb=1000 (scaled %d): %.0f ratings/rank -> %.1fx by iterations", sched, cb, it, sp)
						r.Metric("speedup_"+sched, sp)
					} else {
						r.Linef("MALT-%-7s cb=1000 (scaled %d): goal not reached (final %.4f)", sched, cb, curve.Final())
						r.Metric("speedup_"+sched, 0)
					}
				}
				return nil
			}),
	})
}

func runSerialMF(ds *data.RatingsDataset, cfg mf.Config, epochs int) (Series, error) {
	m, err := mf.New(cfg, 31)
	if err != nil {
		return Series{}, err
	}
	curve := Series{Label: "netflix/serial-fixed"}
	evalEvery := len(ds.Train) / 50
	seen := 0
	start := time.Now()
	for e := 0; e < epochs; e++ {
		for _, rt := range ds.Train {
			m.Step(rt)
			seen++
			if seen%evalEvery == 0 {
				curve.Points = append(curve.Points, Point{
					Time: time.Since(start).Seconds(), Iter: float64(seen), Value: m.RMSE(ds.Test),
				})
			}
		}
	}
	return curve, nil
}

// runDistributedMF extends Hogwild to multiple nodes over MALT: the two
// factor matrices live in sparse MALT vectors; every cb ratings a replica
// scatters only the factor rows it touched, and gathers peers' rows with a
// coordinate-wise replace, overwriting without locks.
func runDistributedMF(ds *data.RatingsDataset, cfg mf.Config, ranks, cb, epochs int) (Series, error) {
	cluster, err := core.NewCluster(core.Config{
		Ranks: ranks, Dataflow: dataflow.All, Sync: consistency.ASP, QueueLen: 8,
	})
	if err != nil {
		return Series{}, err
	}
	var (
		mu    sync.Mutex
		curve Series
	)
	res := cluster.Run(func(ctx *core.Context) error {
		uDim := cfg.Users * cfg.Rank
		vDim := cfg.Items * cfg.Rank
		uVec, err := ctx.CreateVectorOpts("mf/U", vol.Sparse, uDim, vol.Options{MaxNNZ: uDim})
		if err != nil {
			return err
		}
		vVec, err := ctx.CreateVectorOpts("mf/V", vol.Sparse, vDim, vol.Options{MaxNNZ: vDim})
		if err != nil {
			return err
		}
		model, err := mf.NewOver(cfg, uVec.Data(), vVec.Data())
		if err != nil {
			return err
		}
		model.Init(31) // identical start everywhere
		if err := ctx.Barrier(uVec); err != nil {
			return err
		}
		lo, hi, err := ctx.Shard(len(ds.Train))
		if err != nil {
			return err
		}
		shard := ds.Train[lo:hi]
		start := time.Now()
		iter := uint64(0)
		seen := 0
		touchedU := map[int32]bool{}
		touchedV := map[int32]bool{}
		for epoch := 0; epoch < epochs; epoch++ {
			for at := 0; at+cb <= len(shard); at += cb {
				batch := shard[at : at+cb]
				ctx.Compute(func() {
					for _, rt := range batch {
						model.Step(rt)
						touchedU[rt.User] = true
						touchedV[rt.Item] = true
					}
				})
				seen += len(batch)
				iter++
				ctx.SetIteration(iter)
				// Scatter only the touched rows of each factor matrix.
				if err := scatterRows(ctx, uVec, touchedU, cfg.Rank, iter); err != nil {
					return err
				}
				if err := scatterRows(ctx, vVec, touchedV, cfg.Rank, iter); err != nil {
					return err
				}
				clear(touchedU)
				clear(touchedV)
				// Lockless Hogwild merge: overwrite received coordinates.
				if _, err := ctx.Gather(uVec, vol.ReplaceCoords); err != nil {
					return err
				}
				if _, err := ctx.Gather(vVec, vol.ReplaceCoords); err != nil {
					return err
				}
				if ctx.Rank() == 0 {
					rmse := model.RMSE(ds.Test)
					mu.Lock()
					curve.Points = append(curve.Points, Point{
						Time: time.Since(start).Seconds(), Iter: float64(seen), Value: rmse,
					})
					mu.Unlock()
				}
			}
		}
		return nil
	})
	if errs := res.LiveErrors(cluster.Fabric().Alive); len(errs) > 0 {
		return Series{}, errs[0]
	}
	return curve, nil
}

// scatterRows ships the touched factor-matrix rows as one sparse update.
func scatterRows(ctx *core.Context, v *vol.Vector, touched map[int32]bool, rank int, iter uint64) error {
	if len(touched) == 0 {
		return nil
	}
	rows := make([]int32, 0, len(touched))
	for r := range touched {
		rows = append(rows, r)
	}
	// Sparse payloads need strictly increasing indices.
	for i := 1; i < len(rows); i++ {
		for j := i; j > 0 && rows[j] < rows[j-1]; j-- {
			rows[j], rows[j-1] = rows[j-1], rows[j]
		}
	}
	up := &linalg.SparseVector{}
	dataVec := v.Data()
	for _, row := range rows {
		base := int(row) * rank
		for k := 0; k < rank; k++ {
			up.Append(int32(base+k), dataVec[base+k])
		}
	}
	_, err := v.ScatterSparse(up, iter)
	return err
}
