package bench

import (
	"fmt"

	"malt/internal/baseline/paramserver"
	"malt/internal/consistency"
	"malt/internal/data"
	"malt/internal/dataflow"
	"malt/internal/ml/sgd"
	"malt/internal/ml/svm"
)

// Fig 13: total network traffic vs rank count (2/4/10/20) on the
// high-dimensional webspam workload (BSP, gradavg, cb=5000) for MALT_all,
// MALT_Halton and the parameter server. The paper's ordering: all-to-all
// grows O(N²) and worst; the parameter server sits in between (gradients
// up, whole models down); Halton is the most network-efficient.
func init() {
	register(Experiment{
		ID:    "fig13",
		Title: "Webspam total network traffic vs ranks: all / Halton / parameter server (BSP, gradavg, cb=5000)",
		Run: run("fig13", "Webspam total network traffic vs ranks: all / Halton / parameter server (BSP, gradavg, cb=5000)",
			func(o Options, r *Report) error {
				rankSet := []int{2, 4, 10, 20}
				epochs := 2
				scale := o.Scale
				if o.Quick {
					rankSet = []int{2, 4, 8}
					epochs = 1
				}
				ds, err := data.WebspamShape.Generate(scale)
				if err != nil {
					return err
				}
				cb := cbScale(5000)
				// Lambda < 0: train the unregularized hinge objective so per-batch
				// weight deltas touch only the batch's features. Real SVM-SGD keeps
				// the L2 shrink factored out as a scalar, giving the same sparse
				// wire shape; this experiment measures traffic, and gradients must
				// be gradient-sized, not model-sized.
				svmCfg := svm.Config{Dim: ds.Dim, Lambda: -1, Eta0: 1,
					Schedule: sgd.InvScaling{Eta0: 1, Lambda: 1e-3}}

				r.Linef("%-6s %14s %14s %14s   (MB total, %d epochs, cb=%d)", "ranks", "all", "halton", "paramserver", epochs, cb)
				for _, n := range rankSet {
					row := make(map[string]float64, 3)
					rowNs := make(map[string]float64, 3)
					for _, flow := range []dataflow.Kind{dataflow.All, dataflow.Halton} {
						o.logf("fig13: ranks=%d %v", n, flow)
						res, err := RunSVM(SVMOpts{
							DS: ds, Ranks: n, CB: cb,
							Dataflow: flow, Sync: consistency.BSP,
							Mode: GradAvg, Epochs: epochs,
							// Pure gradient traffic: no interleaved model
							// rounds, whose dense scatters would confound
							// the per-N totals (convergence is not measured
							// here).
							ModelSyncEvery: -1,
							SVM:            svmCfg, Sparse: true, EvalEvery: 1 << 30,
						})
						if err != nil {
							return err
						}
						row[flow.String()] = float64(res.Stats.TotalBytes()) / (1 << 20)
						rowNs[flow.String()] = float64(res.Stats.ModeledNetworkTime().Nanoseconds())
					}
					// Parameter server with the same number of gradient pushes
					// per worker as the MALT runs performed batches.
					batches := (len(ds.Train) / n / cb) * epochs
					if batches == 0 {
						batches = 1
					}
					o.logf("fig13: ranks=%d parameter server (%d rounds)", n, batches)
					shardTrainers := make([]*svm.Trainer, n+1)
					for w := 1; w <= n; w++ {
						shardTrainers[w], _ = svm.New(svmCfg)
					}
					ps, err := paramserver.Train(paramserver.Config{
						Workers: n, Dim: ds.Dim, Rounds: batches,
						Sync: true, GradSparse: true, Eta: 0.5,
					}, func(rank, round int, model, out []float64) {
						lo, hi := data.Shard(len(ds.Train), rank-1, n)
						shard := ds.Train[lo:hi]
						at := (round * cb) % max(1, len(shard)-cb)
						shardTrainers[rank].BatchGradient(out, model, shard[at:at+cb])
					})
					if err != nil {
						return err
					}
					row["paramserver"] = float64(ps.Stats.TotalBytes()) / (1 << 20)

					r.Linef("%-6d %13.1f %14.1f %14.1f", n, row["all"], row["halton"], row["paramserver"])
					for k, v := range row {
						r.Metric(fmt.Sprintf("%s_mb_n%d", k, n), v)
					}
					// Modeled wire time is the gated form of the MALT traffic
					// totals: deterministic (latency + bytes/bandwidth per
					// write, no chaos here), unlike wall clock. The parameter
					// server's control traffic is scheduling-dependent, so its
					// modeled time is not emitted — only the byte totals above.
					for k, v := range rowNs {
						r.Metric(fmt.Sprintf("model_ns_net_%s_n%d", k, n), v)
					}
				}
				return nil
			}),
	})
}

func max(a, b int) int {
	if a > b {
		return a
	}
	return b
}
