package bench

import (
	"malt/internal/consistency"
	"malt/internal/data"
	"malt/internal/dataflow"
	"malt/internal/ml/svm"
)

// Fig 14: fault tolerance on the DNA workload with 10 ranks — total time
// to process a fixed number of epochs in the fault-free case vs with one
// replica failing mid-run. The paper: recovery succeeds, the model reaches
// the same accuracy, and the slowdown is proportional to the lost machine.
func init() {
	register(Experiment{
		ID:    "fig14",
		Title: "DNA fault tolerance: fault-free vs one failure mid-run (ranks=10)",
		Run: run("fig14", "DNA fault tolerance: fault-free vs one failure mid-run (ranks=10)",
			func(o Options, r *Report) error {
				ds, err := data.DNAShape.Generate(o.Scale)
				if err != nil {
					return err
				}
				ranks, epochs := 10, 10
				if o.Quick {
					ranks, epochs = 4, 4
				}
				cb := cbScale(1000)
				svmCfg := svm.Config{Dim: ds.Dim, Lambda: 1e-4, Eta0: 1}

				base := SVMOpts{
					DS: ds, Ranks: ranks, CB: cb,
					Dataflow: dataflow.All, Sync: consistency.ASP, Cutoff: 16,
					Mode: GradAvg, Epochs: epochs,
					SVM: svmCfg, EvalEvery: 4,
				}

				o.logf("fig14: fault-free run")
				clean, err := RunSVM(base)
				if err != nil {
					return err
				}

				o.logf("fig14: run with rank 1 failing mid-way")
				faulty := base
				// Fail after roughly half the batches of the run.
				batchesPerEpoch := len(ds.Train) / ranks / cb
				faulty.KillRank = 1
				faulty.KillAtIter = uint64(batchesPerEpoch * epochs / 2)
				if faulty.KillAtIter == 0 {
					faulty.KillAtIter = 1
				}
				injected, err := RunSVM(faulty)
				if err != nil {
					return err
				}

				tr, _ := svm.New(svmCfg)
				accClean := tr.Accuracy(clean.FinalW, ds.Test)
				accFault := tr.Accuracy(injected.FinalW, ds.Test)
				clean.Curve.Label = "dna/fault-free"
				injected.Curve.Label = "dna/1-node-failure"
				r.Series = append(r.Series, clean.Curve, injected.Curve)

				r.Linef("fault-free:      %6.2fs for %d epochs, final loss %.4f, test accuracy %.3f",
					clean.Elapsed.Seconds(), epochs, clean.Curve.Final(), accClean)
				r.Linef("1-node failure:  %6.2fs for %d epochs, final loss %.4f, test accuracy %.3f (killed rank %d at batch %d)",
					injected.Elapsed.Seconds(), epochs, injected.Curve.Final(), accFault,
					faulty.KillRank, faulty.KillAtIter)
				r.Linef("survivors redistributed the failed rank's shard and training continued")
				r.Metric("time_clean_s", clean.Elapsed.Seconds())
				r.Metric("time_faulty_s", injected.Elapsed.Seconds())
				r.Metric("acc_clean", accClean)
				r.Metric("acc_faulty", accFault)
				return nil
			}),
	})
}
