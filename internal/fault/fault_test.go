package fault

import (
	"errors"
	"testing"
	"time"

	"malt/internal/fabric"
)

// newGroup builds a group with Strikes: 1 — the fail-stop configuration the
// confirmation-protocol tests below were written against, where a single
// failed-write report triggers the health check. The K-strikes layer on top
// is covered by suspicion_test.go.
func newGroup(t *testing.T, ranks int) (*fabric.Fabric, *Group) {
	t.Helper()
	f, err := fabric.New(fabric.Config{Ranks: ranks})
	if err != nil {
		t.Fatal(err)
	}
	return f, NewGroupWith(f, SuspicionConfig{Strikes: 1})
}

func TestConfirmDeathOnKilledRank(t *testing.T) {
	f, g := newGroup(t, 4)
	if err := f.Kill(3); err != nil {
		t.Fatal(err)
	}
	m := g.Monitor(0)
	var deaths []int
	//maltlint:allow foldpurity -- ReportFailedWrites invokes hooks on the caller's goroutine; nothing else touches deaths in this test
	m.OnDeath(func(r int) { deaths = append(deaths, r) })
	confirmed := m.ReportFailedWrites([]int{3})
	if len(confirmed) != 1 || confirmed[0] != 3 {
		t.Fatalf("confirmed = %v", confirmed)
	}
	if len(deaths) != 1 || deaths[0] != 3 {
		t.Fatalf("callbacks = %v", deaths)
	}
	if m.Alive(3) {
		t.Fatal("rank 3 should be dead in monitor view")
	}
	surv := m.Survivors()
	if len(surv) != 3 || surv[0] != 0 || surv[2] != 2 {
		t.Fatalf("Survivors = %v", surv)
	}
	// Re-reporting is idempotent: no second confirmation or callback.
	if again := m.ReportFailedWrites([]int{3}); again != nil {
		t.Fatalf("re-report confirmed again: %v", again)
	}
	if len(deaths) != 1 {
		t.Fatalf("callback fired twice: %v", deaths)
	}
}

func TestTransientFailureNotConfirmed(t *testing.T) {
	f, g := newGroup(t, 3)
	// Rank 2 is alive; a spurious failed-write report must not kill it,
	// because the health check can still reach it.
	m := g.Monitor(0)
	if confirmed := m.ReportFailedWrites([]int{2}); confirmed != nil {
		t.Fatalf("live rank confirmed dead: %v", confirmed)
	}
	if !m.Alive(2) {
		t.Fatal("live rank marked dead")
	}
	_ = f
}

func TestPartitionBothSidesProceed(t *testing.T) {
	f, g := newGroup(t, 4)
	if err := f.Partition([][]int{{0, 1}, {2, 3}}); err != nil {
		t.Fatal(err)
	}
	m0 := g.Monitor(0)
	m2 := g.Monitor(2)
	// Side A confirms side B dead: nobody A can reach can reach rank 2.
	if confirmed := m0.ReportFailedWrites([]int{2, 3}); len(confirmed) != 2 {
		t.Fatalf("side A confirmed %v, want both of side B", confirmed)
	}
	if confirmed := m2.ReportFailedWrites([]int{0, 1}); len(confirmed) != 2 {
		t.Fatalf("side B confirmed %v, want both of side A", confirmed)
	}
	if s := m0.Survivors(); len(s) != 2 || s[0] != 0 || s[1] != 1 {
		t.Fatalf("side A survivors = %v", s)
	}
	if s := m2.Survivors(); len(s) != 2 || s[0] != 2 || s[1] != 3 {
		t.Fatalf("side B survivors = %v", s)
	}
}

func TestHealthCheckUsesPeersVouching(t *testing.T) {
	f, g := newGroup(t, 3)
	// Rank 0 is partitioned away from rank 2, but rank 1 bridges... no:
	// partitions are transitive groups in our fabric, so emulate the
	// "helper vouches" path with all alive and reachable: a report against
	// a reachable rank is rejected immediately.
	m := g.Monitor(0)
	if m.healthCheck(2) {
		t.Fatal("health check confirmed a reachable rank dead")
	}
	_ = f
}

func TestSelfReportIgnored(t *testing.T) {
	_, g := newGroup(t, 2)
	m := g.Monitor(0)
	if confirmed := m.ReportFailedWrites([]int{0}); confirmed != nil {
		t.Fatalf("self-report confirmed: %v", confirmed)
	}
}

func TestGuardTrapsPanicsAndKillsSelf(t *testing.T) {
	f, g := newGroup(t, 2)
	m := g.Monitor(1)
	err := m.Guard(func() error {
		var x []int
		_ = x[5] // index out of range: the "processor exception"
		return nil
	})
	if !errors.Is(err, ErrLocalFailure) {
		t.Fatalf("err = %v, want ErrLocalFailure", err)
	}
	if f.Alive(1) {
		t.Fatal("rank should be dead on the fabric after a trapped panic")
	}
}

func TestGuardPassesThroughNormalReturn(t *testing.T) {
	f, g := newGroup(t, 2)
	m := g.Monitor(0)
	want := errors.New("training error")
	if err := m.Guard(func() error { return want }); !errors.Is(err, want) {
		t.Fatalf("err = %v", err)
	}
	if !f.Alive(0) {
		t.Fatal("normal return must not kill the rank")
	}
}

func TestCheckModel(t *testing.T) {
	f, g := newGroup(t, 2)
	m := g.Monitor(0)
	if err := m.CheckModel([]float64{1, 2, 3}); err != nil {
		t.Fatalf("finite model rejected: %v", err)
	}
	bad := []float64{1, 0, 0}
	bad[1] = bad[1] / bad[2] // NaN via 0/0
	if err := m.CheckModel(bad); !errors.Is(err, ErrCorruptModel) {
		t.Fatalf("err = %v, want ErrCorruptModel", err)
	}
	if f.Alive(0) {
		t.Fatal("corrupt rank should self-kill")
	}
}

func TestConcurrentConfirmationsSingleCallback(t *testing.T) {
	f, g := newGroup(t, 3)
	if err := f.Kill(2); err != nil {
		t.Fatal(err)
	}
	m := g.Monitor(0)
	calls := make(chan int, 10)
	m.OnDeath(func(r int) { calls <- r })
	done := make(chan struct{})
	for i := 0; i < 4; i++ {
		go func() {
			m.ReportFailedWrites([]int{2})
			done <- struct{}{}
		}()
	}
	for i := 0; i < 4; i++ {
		<-done
	}
	close(calls)
	close(done)
	n := 0
	for range calls {
		n++
	}
	if n != 1 {
		t.Fatalf("OnDeath fired %d times, want 1", n)
	}
}

func TestWatchdogDetectsDeathWithoutTraffic(t *testing.T) {
	f, g := newGroup(t, 3)
	m := g.Monitor(0)
	detected := make(chan int, 1)
	m.OnDeath(func(r int) { detected <- r })
	stop := m.Watch(5 * time.Millisecond)
	defer stop()
	if err := f.Kill(2); err != nil {
		t.Fatal(err)
	}
	select {
	case r := <-detected:
		if r != 2 {
			t.Fatalf("detected rank %d, want 2", r)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("watchdog never detected the death")
	}
	if m.Alive(2) {
		t.Fatal("monitor still believes rank 2 alive")
	}
}

func TestWatchdogStopTerminates(t *testing.T) {
	_, g := newGroup(t, 2)
	stop := g.Monitor(0).Watch(time.Millisecond)
	done := make(chan struct{})
	go func() { stop(); close(done) }()
	select {
	case <-done:
	case <-time.After(5 * time.Second):
		t.Fatal("stop did not terminate the watchdog")
	}
}

func TestWatchdogExitsWhenSelfDies(t *testing.T) {
	f, g := newGroup(t, 2)
	m := g.Monitor(1)
	stop := m.Watch(time.Millisecond)
	defer stop()
	if err := f.Kill(1); err != nil {
		t.Fatal(err)
	}
	// The watchdog goroutine should exit on its own; stop() must still be
	// safe to call (covered by the deferred stop).
	time.Sleep(10 * time.Millisecond)
}

func TestAdmitJoinRestoresRankAndResetsSuspicion(t *testing.T) {
	f, g := newGroup(t, 3)
	if err := f.Kill(2); err != nil {
		t.Fatal(err)
	}
	m := g.Monitor(0)
	var joins []int
	m.OnJoin(func(r int) { joins = append(joins, r) })
	if confirmed := m.ReportFailedWrites([]int{2}); len(confirmed) != 1 {
		t.Fatalf("confirmed = %v", confirmed)
	}

	// The rank rejoins the fabric at a fresh epoch, then the monitor admits
	// it: confirmed-dead status and all accumulated suspicion are gone.
	if _, err := f.Join(2); err != nil {
		t.Fatal(err)
	}
	if !m.AdmitJoin(2) {
		t.Fatal("AdmitJoin of a confirmed-dead rank: want transition true")
	}
	if !m.Alive(2) {
		t.Fatal("rank 2 should be alive after AdmitJoin")
	}
	if got := m.Suspicion(2); got != 0 {
		t.Fatalf("suspicion after AdmitJoin = %d, want 0", got)
	}
	if len(joins) != 1 || joins[0] != 2 {
		t.Fatalf("join callbacks = %v, want [2]", joins)
	}
	if surv := m.Survivors(); len(surv) != 3 {
		t.Fatalf("Survivors = %v, want all three", surv)
	}
	// The new incarnation earns its own strikes from scratch.
	if confirmed := m.ReportFailedWrites([]int{2}); confirmed != nil {
		t.Fatalf("healthy rejoined rank confirmed dead: %v", confirmed)
	}

	// Admitting an already-alive rank is a no-op transition but still
	// fires the callbacks (idempotent consumers).
	if m.AdmitJoin(2) {
		t.Fatal("AdmitJoin of an alive rank: want transition false")
	}
	if len(joins) != 2 {
		t.Fatalf("join callbacks after second admit = %v", joins)
	}
}
