// Package fault implements MALT's fault tolerance (paper §3.3), extended
// from pure fail-stop with a suspicion layer for unreliable networks.
//
// A Monitor runs on every rank. The training loop reports the peers whose
// one-sided writes failed permanently (the dstorm layer has already
// absorbed transient faults with bounded retries); each report is one
// *strike* against the suspect. Strikes decay over time, and only when a
// suspect accumulates K strikes of repeated independent evidence does the
// monitor run the expensive confirmation protocol: a synchronous health
// check of the cluster together with the other monitors it can still
// reach. A suspect is confirmed dead only when no reachable healthy
// monitor can reach it either — a rank that others can still talk to is a
// transient link problem, not a failure, and refuted suspicion resets the
// suspect's strikes. On confirmation, the survivors form a new group:
// registered callbacks rebuild send/receive lists and redistribute the
// dead rank's training data, group operations (barriers) skip the dead,
// and training resumes. Under a network partition each side independently
// confirms the other side dead and resumes training — the paper's
// documented behaviour.
//
// Callback serialization guarantee: OnDeath callbacks are serialized per
// monitor. Whether a death is confirmed by the Watch watchdog goroutine,
// by ReportFailedWrites from the training loop, or by both racing, at most
// one callback runs at a time and each callback fires exactly once per
// dead rank. Rebuild code (send/receive list surgery, data redistribution)
// therefore never observes concurrent invocations.
//
// Monitors also trap local failures: Guard converts a panic in the
// training loop (the moral equivalent of the paper's processor exceptions:
// divide-by-zero, segfault) into a self-kill, and CheckModel detects
// numeric corruption (NaN/Inf) before it is scattered to peers. Byzantine
// failures — plausible-looking but wrong values — are explicitly out of
// scope, as in the paper.
package fault

import (
	"errors"
	"fmt"
	"sort"
	"sync"
	"time"

	"malt/internal/fabric"
	"malt/internal/ml/linalg"
)

// ErrCorruptModel is returned by CheckModel when the model contains
// non-finite values.
var ErrCorruptModel = errors.New("fault: model contains NaN or Inf")

// ErrLocalFailure wraps a trapped panic from Guard.
var ErrLocalFailure = errors.New("fault: local training failure")

// Suspicion defaults.
const (
	// DefaultStrikes is the number of independent failed-write reports a
	// suspect must accumulate before the confirmation protocol runs.
	DefaultStrikes = 3
	// DefaultDecay is how long a strike stays fresh; older strikes are
	// forgotten, so sporadic unrelated flakes never add up to a death.
	DefaultDecay = 10 * time.Second
	// healthProbeAttempts is how many times a health-check ping is retried
	// when the chaos layer drops it: a lossy control plane must not turn
	// the confirmation protocol itself into a false-positive source.
	healthProbeAttempts = 3
)

// SuspicionConfig tunes the K-strikes failure detector.
type SuspicionConfig struct {
	// Strikes is the confirmation threshold K. Default 3; 1 restores the
	// fail-stop behaviour of confirming on first evidence.
	Strikes int
	// Decay is the strike freshness window. Default 10 s; negative
	// disables decay.
	Decay time.Duration
}

func (c SuspicionConfig) withDefaults() SuspicionConfig {
	if c.Strikes <= 0 {
		c.Strikes = DefaultStrikes
	}
	if c.Decay == 0 {
		c.Decay = DefaultDecay
	}
	return c
}

// SuspicionStats counts one monitor's detector activity.
type SuspicionStats struct {
	// Reports is the number of failed-write reports processed.
	Reports uint64
	// HealthChecks is the number of confirmation protocols run.
	HealthChecks uint64
	// Refuted is the number of health checks that found the suspect alive
	// (transient faults that K strikes let through); each reset the
	// suspect's strikes.
	Refuted uint64
	// Confirmed is the number of deaths this monitor confirmed.
	Confirmed uint64
}

// Group couples the monitors of one cluster so they can run joint health
// checks (in the paper the monitors talk over the network; here they share
// the fabric, and cross-monitor probes are fabric pings so partitions and
// death are respected).
type Group struct {
	fab      fabric.Transport
	monitors []*Monitor
}

// NewGroup creates one Monitor per fabric rank with default suspicion.
func NewGroup(fab fabric.Transport) *Group {
	return NewGroupWith(fab, SuspicionConfig{})
}

// NewGroupWith creates one Monitor per fabric rank with the given
// suspicion configuration. The transport may be the simulated fabric or a
// networked backend: delegated health-check probes (Ping with from != the
// monitor's rank) are part of the Transport contract, so the confirmation
// protocol is transport-agnostic.
func NewGroupWith(fab fabric.Transport, cfg SuspicionConfig) *Group {
	cfg = cfg.withDefaults()
	g := &Group{fab: fab}
	g.monitors = make([]*Monitor, fab.Ranks())
	for i := range g.monitors {
		g.monitors[i] = &Monitor{
			group:      g,
			rank:       i,
			cfg:        cfg,
			dead:       make(map[int]bool),
			strikes:    make(map[int]int),
			lastStrike: make(map[int]time.Time),
		}
	}
	return g
}

// Monitor returns the fault monitor for a rank.
func (g *Group) Monitor(rank int) *Monitor { return g.monitors[rank] }

// Monitor is one rank's fault monitor.
type Monitor struct {
	group *Group
	rank  int
	cfg   SuspicionConfig

	mu         sync.Mutex
	dead       map[int]bool // this monitor's confirmed-dead set
	strikes    map[int]int  // suspect → fresh strike count
	lastStrike map[int]time.Time
	sstats     SuspicionStats
	onDeath    []func(rank int)
	onJoin     []func(rank int)

	// cbMu serializes OnDeath and OnJoin callback execution between the
	// Watch watchdog goroutine, training-loop reporters, and membership
	// admissions (see package doc).
	cbMu sync.Mutex
}

// Rank returns the monitor's rank.
func (m *Monitor) Rank() int { return m.rank }

// OnDeath registers a callback invoked (once per dead rank, serialized with
// all other OnDeath callbacks of this monitor) after a failure is confirmed
// and the survivor group is formed. Callbacks rebuild send/receive lists
// and redistribute data.
func (m *Monitor) OnDeath(fn func(rank int)) {
	m.mu.Lock()
	defer m.mu.Unlock()
	m.onDeath = append(m.onDeath, fn)
}

// OnJoin registers a callback invoked (serialized with OnDeath callbacks of
// this monitor) after AdmitJoin re-admits a rank. Callbacks restore the rank
// in send/receive lists — the inverse of the OnDeath rebuild.
func (m *Monitor) OnJoin(fn func(rank int)) {
	m.mu.Lock()
	defer m.mu.Unlock()
	m.onJoin = append(m.onJoin, fn)
}

// AdmitJoin re-admits a rank after an elastic-membership join: the rank
// leaves the confirmed-dead set, its accumulated suspicion is reset (the
// new incarnation must earn its own strikes — epoch-aware suspicion reset),
// and the OnJoin callbacks fire, serialized with OnDeath so rebuild code
// never sees a join and a death concurrently. Returns true when the rank
// transitioned from confirmed-dead to alive in this monitor's view.
func (m *Monitor) AdmitJoin(rank int) bool {
	m.mu.Lock()
	wasDead := m.dead[rank]
	delete(m.dead, rank)
	delete(m.strikes, rank)
	delete(m.lastStrike, rank)
	callbacks := append([]func(int){}, m.onJoin...)
	m.mu.Unlock()
	m.cbMu.Lock()
	for _, fn := range callbacks {
		fn(rank)
	}
	m.cbMu.Unlock()
	return wasDead
}

// Alive reports this monitor's view of a rank (for consistency policies and
// survivor lists). A rank is alive until a health check confirms otherwise.
func (m *Monitor) Alive(rank int) bool {
	m.mu.Lock()
	defer m.mu.Unlock()
	return !m.dead[rank]
}

// Survivors returns the sorted ranks this monitor believes are alive,
// including itself.
func (m *Monitor) Survivors() []int {
	m.mu.Lock()
	defer m.mu.Unlock()
	var out []int
	for r := 0; r < m.group.fab.Ranks(); r++ {
		if !m.dead[r] {
			out = append(out, r)
		}
	}
	sort.Ints(out)
	return out
}

// ConfirmedDead returns the sorted ranks this monitor has confirmed dead.
func (m *Monitor) ConfirmedDead() []int {
	m.mu.Lock()
	defer m.mu.Unlock()
	out := make([]int, 0, len(m.dead))
	for r := range m.dead {
		out = append(out, r)
	}
	sort.Ints(out)
	return out
}

// Suspicion returns the suspect's current fresh strike count.
func (m *Monitor) Suspicion(rank int) int {
	m.mu.Lock()
	defer m.mu.Unlock()
	if m.stale(rank, time.Now()) {
		return 0
	}
	return m.strikes[rank]
}

// SuspicionStats returns the monitor's detector counters.
func (m *Monitor) SuspicionStats() SuspicionStats {
	m.mu.Lock()
	defer m.mu.Unlock()
	return m.sstats
}

// stale reports whether rank's strikes have decayed. Callers hold m.mu.
func (m *Monitor) stale(rank int, now time.Time) bool {
	if m.cfg.Decay < 0 {
		return false
	}
	last, ok := m.lastStrike[rank]
	return ok && now.Sub(last) > m.cfg.Decay
}

// ReportFailedWrites feeds the peers whose scatters failed permanently (or
// exhausted their transient retries) into the monitor. Each report is one
// strike; a suspect reaching the strike threshold triggers the synchronous
// cluster health check, and confirmed deaths fire the OnDeath callbacks
// (serialized — see package doc). It returns the ranks newly confirmed
// dead in this monitor's view.
func (m *Monitor) ReportFailedWrites(peers []int) []int {
	var confirmed []int
	now := time.Now()
	for _, p := range peers {
		m.mu.Lock()
		m.sstats.Reports++
		if m.dead[p] || p == m.rank {
			m.mu.Unlock()
			continue
		}
		if m.stale(p, now) {
			m.strikes[p] = 0
		}
		m.strikes[p]++
		m.lastStrike[p] = now
		reached := m.strikes[p] >= m.cfg.Strikes
		m.mu.Unlock()
		if !reached {
			continue
		}
		if m.confirmDeath(p) {
			confirmed = append(confirmed, p)
		}
	}
	return confirmed
}

// ReportReachable clears the strikes of peers that fresh evidence (a
// successful write or ping) shows reachable: suspicion is about *repeated,
// uncontradicted* evidence, so a heard-from peer starts over.
func (m *Monitor) ReportReachable(peers []int) {
	m.mu.Lock()
	defer m.mu.Unlock()
	for _, p := range peers {
		delete(m.strikes, p)
		delete(m.lastStrike, p)
	}
}

// confirmDeath runs the health check for one suspect and, if death is
// confirmed, records it and fires callbacks. Returns true when the rank
// transitioned to dead in this monitor's view.
func (m *Monitor) confirmDeath(suspect int) bool {
	m.mu.Lock()
	if m.dead[suspect] || suspect == m.rank {
		m.mu.Unlock()
		return false
	}
	m.sstats.HealthChecks++
	m.mu.Unlock()

	if !m.healthCheck(suspect) {
		// Someone can still reach it: transient. The accumulated evidence
		// is refuted wholesale, not merely decremented.
		m.mu.Lock()
		m.sstats.Refuted++
		delete(m.strikes, suspect)
		delete(m.lastStrike, suspect)
		m.mu.Unlock()
		return false
	}

	m.mu.Lock()
	if m.dead[suspect] {
		m.mu.Unlock()
		return false
	}
	m.dead[suspect] = true
	m.sstats.Confirmed++
	delete(m.strikes, suspect)
	delete(m.lastStrike, suspect)
	callbacks := append([]func(int){}, m.onDeath...)
	m.mu.Unlock()
	m.cbMu.Lock()
	for _, fn := range callbacks {
		fn(suspect)
	}
	m.cbMu.Unlock()
	return true
}

// probe pings from→to, retrying transient chaos drops so a lossy control
// plane does not corrupt the confirmation protocol's verdict.
func (m *Monitor) probe(from, to int) error {
	var err error
	for i := 0; i < healthProbeAttempts; i++ {
		if err = m.group.fab.Ping(from, to); err == nil || !errors.Is(err, fabric.ErrTransient) {
			return err
		}
	}
	return err
}

// healthCheck returns true when the suspect is *permanently* unreachable
// (fabric.ErrUnreachable: death or partition) from this rank AND from every
// healthy monitor this rank can reach. The probes are fabric pings, so they
// observe partitions exactly as data writes do. Transient probe failures
// (fabric.ErrTransient surviving the retries) are inconclusive and never
// confirm: a blackout or lossy path means the network is suspect, not the
// peer — in particular a monitor inside its own blackout window must not
// confirm the entire live cluster dead.
func (m *Monitor) healthCheck(suspect int) bool {
	fab := m.group.fab
	err := m.probe(m.rank, suspect)
	if err == nil || errors.Is(err, fabric.ErrTransient) {
		return false
	}
	for r := 0; r < fab.Ranks(); r++ {
		if r == m.rank || r == suspect {
			continue
		}
		m.mu.Lock()
		knownDead := m.dead[r]
		m.mu.Unlock()
		if knownDead {
			continue
		}
		// Can we reach the helper monitor at all? If not it cannot vouch
		// either way.
		if err := m.probe(m.rank, r); err != nil {
			continue
		}
		// Ask the helper to probe the suspect (its probe runs over the
		// fabric from its own rank, so it sees its own partition view). A
		// reachable suspect refutes; a transient failure is inconclusive
		// and blocks confirmation too — the suspect may be alive behind a
		// flaky path.
		if err := m.probe(r, suspect); err == nil || errors.Is(err, fabric.ErrTransient) {
			return false
		}
	}
	return true
}

// Guard runs the training function, converting a panic (processor
// exception) into an error and terminating the local replica: the rank is
// killed on the fabric so peers detect it through failed writes, exactly
// as if the process had crashed.
func (m *Monitor) Guard(fn func() error) (err error) {
	defer func() {
		if r := recover(); r != nil {
			_ = m.group.fab.Kill(m.rank)
			err = fmt.Errorf("%w: rank %d: %v", ErrLocalFailure, m.rank, r)
		}
	}()
	return fn()
}

// CheckModel validates that a model or gradient is numerically sane. On
// corruption the local replica is terminated (self-killed on the fabric)
// and ErrCorruptModel returned: scalar corruption of values that remain
// finite cannot be detected — the paper's stated limitation.
func (m *Monitor) CheckModel(w []float64) error {
	if linalg.AllFinite(w) {
		return nil
	}
	_ = m.group.fab.Kill(m.rank)
	return fmt.Errorf("%w: rank %d", ErrCorruptModel, m.rank)
}

// Watch starts a background watchdog that probes every peer each interval
// and feeds the results into the suspicion counter — failed probes are
// strikes, successful probes clear strikes — so failures are detected (and
// transient flaps exonerated) even while the replica computes without
// communicating. Confirmations from the watchdog fire the same serialized
// OnDeath callbacks as training-loop reports. The returned stop function
// terminates the watchdog and waits for it.
func (m *Monitor) Watch(interval time.Duration) (stop func()) {
	done := make(chan struct{})
	finished := make(chan struct{})
	go func() {
		defer close(finished)
		ticker := time.NewTicker(interval)
		defer ticker.Stop()
		for {
			select {
			case <-done:
				return
			case <-ticker.C:
			}
			fab := m.group.fab
			if !fab.Alive(m.rank) {
				return // we are dead; nothing to watch
			}
			var suspects, healthy []int
			for r := 0; r < fab.Ranks(); r++ {
				if r == m.rank || !m.Alive(r) {
					continue
				}
				if err := fab.Ping(m.rank, r); err != nil {
					suspects = append(suspects, r)
				} else {
					healthy = append(healthy, r)
				}
			}
			if len(healthy) > 0 {
				m.ReportReachable(healthy)
			}
			if len(suspects) > 0 {
				m.ReportFailedWrites(suspects)
			}
		}
	}()
	return func() {
		close(done)
		<-finished
	}
}
