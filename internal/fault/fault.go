// Package fault implements MALT's fail-stop fault tolerance (paper §3.3).
//
// A Monitor runs on every rank. The training loop reports the peers whose
// one-sided writes failed; the monitor then performs a synchronous health
// check of the cluster together with the other monitors it can still
// reach. A suspect is confirmed dead only when no reachable healthy
// monitor can reach it either — a rank that others can still talk to is a
// transient link problem, not a failure. On confirmation, the survivors
// form a new group: registered callbacks rebuild send/receive lists and
// redistribute the dead rank's training data, group operations (barriers)
// skip the dead, and training resumes. Under a network partition each side
// independently confirms the other side dead and resumes training — the
// paper's documented behaviour.
//
// Monitors also trap local failures: Guard converts a panic in the
// training loop (the moral equivalent of the paper's processor exceptions:
// divide-by-zero, segfault) into a self-kill, and CheckModel detects
// numeric corruption (NaN/Inf) before it is scattered to peers. Byzantine
// failures — plausible-looking but wrong values — are explicitly out of
// scope, as in the paper.
package fault

import (
	"errors"
	"fmt"
	"sort"
	"sync"
	"time"

	"malt/internal/fabric"
	"malt/internal/ml/linalg"
)

// ErrCorruptModel is returned by CheckModel when the model contains
// non-finite values.
var ErrCorruptModel = errors.New("fault: model contains NaN or Inf")

// ErrLocalFailure wraps a trapped panic from Guard.
var ErrLocalFailure = errors.New("fault: local training failure")

// Group couples the monitors of one cluster so they can run joint health
// checks (in the paper the monitors talk over the network; here they share
// the fabric, and cross-monitor probes are fabric pings so partitions and
// death are respected).
type Group struct {
	fab      *fabric.Fabric
	monitors []*Monitor
}

// NewGroup creates one Monitor per fabric rank.
func NewGroup(fab *fabric.Fabric) *Group {
	g := &Group{fab: fab}
	g.monitors = make([]*Monitor, fab.Ranks())
	for i := range g.monitors {
		g.monitors[i] = &Monitor{group: g, rank: i, dead: make(map[int]bool)}
	}
	return g
}

// Monitor returns the fault monitor for a rank.
func (g *Group) Monitor(rank int) *Monitor { return g.monitors[rank] }

// Monitor is one rank's fault monitor.
type Monitor struct {
	group *Group
	rank  int

	mu      sync.Mutex
	dead    map[int]bool // this monitor's confirmed-dead set
	onDeath []func(rank int)
}

// Rank returns the monitor's rank.
func (m *Monitor) Rank() int { return m.rank }

// OnDeath registers a callback invoked (once per dead rank, on the
// goroutine that confirmed the death) after a failure is confirmed and the
// survivor group is formed. Callbacks rebuild send/receive lists and
// redistribute data.
func (m *Monitor) OnDeath(fn func(rank int)) {
	m.mu.Lock()
	defer m.mu.Unlock()
	m.onDeath = append(m.onDeath, fn)
}

// Alive reports this monitor's view of a rank (for consistency policies and
// survivor lists). A rank is alive until a health check confirms otherwise.
func (m *Monitor) Alive(rank int) bool {
	m.mu.Lock()
	defer m.mu.Unlock()
	return !m.dead[rank]
}

// Survivors returns the sorted ranks this monitor believes are alive,
// including itself.
func (m *Monitor) Survivors() []int {
	m.mu.Lock()
	defer m.mu.Unlock()
	var out []int
	for r := 0; r < m.group.fab.Ranks(); r++ {
		if !m.dead[r] {
			out = append(out, r)
		}
	}
	sort.Ints(out)
	return out
}

// ConfirmedDead returns the sorted ranks this monitor has confirmed dead.
func (m *Monitor) ConfirmedDead() []int {
	m.mu.Lock()
	defer m.mu.Unlock()
	out := make([]int, 0, len(m.dead))
	for r := range m.dead {
		out = append(out, r)
	}
	sort.Ints(out)
	return out
}

// ReportFailedWrites feeds the peers whose scatters failed into the
// monitor. For each suspect, a cluster health check runs synchronously;
// confirmed deaths fire the OnDeath callbacks. It returns the ranks newly
// confirmed dead.
func (m *Monitor) ReportFailedWrites(peers []int) []int {
	var confirmed []int
	for _, p := range peers {
		if m.confirmDeath(p) {
			confirmed = append(confirmed, p)
		}
	}
	return confirmed
}

// confirmDeath runs the health check for one suspect and, if death is
// confirmed, records it and fires callbacks. Returns true when the rank
// transitioned to dead in this monitor's view.
func (m *Monitor) confirmDeath(suspect int) bool {
	m.mu.Lock()
	if m.dead[suspect] || suspect == m.rank {
		m.mu.Unlock()
		return false
	}
	m.mu.Unlock()

	if !m.healthCheck(suspect) {
		return false // someone can still reach it: transient
	}

	m.mu.Lock()
	if m.dead[suspect] {
		m.mu.Unlock()
		return false
	}
	m.dead[suspect] = true
	callbacks := append([]func(int){}, m.onDeath...)
	m.mu.Unlock()
	for _, fn := range callbacks {
		fn(suspect)
	}
	return true
}

// healthCheck returns true when the suspect is unreachable from this rank
// AND from every healthy monitor this rank can reach. The probes are
// fabric pings, so they observe partitions exactly as data writes do.
func (m *Monitor) healthCheck(suspect int) bool {
	fab := m.group.fab
	if err := fab.Ping(m.rank, suspect); err == nil {
		return false
	}
	for r := 0; r < fab.Ranks(); r++ {
		if r == m.rank || r == suspect {
			continue
		}
		m.mu.Lock()
		knownDead := m.dead[r]
		m.mu.Unlock()
		if knownDead {
			continue
		}
		// Can we reach the helper monitor at all? If not it cannot vouch.
		if err := fab.Ping(m.rank, r); err != nil {
			continue
		}
		// Ask the helper to probe the suspect (its probe runs over the
		// fabric from its own rank, so it sees its own partition view).
		if err := fab.Ping(r, suspect); err == nil {
			return false
		}
	}
	return true
}

// Guard runs the training function, converting a panic (processor
// exception) into an error and terminating the local replica: the rank is
// killed on the fabric so peers detect it through failed writes, exactly
// as if the process had crashed.
func (m *Monitor) Guard(fn func() error) (err error) {
	defer func() {
		if r := recover(); r != nil {
			_ = m.group.fab.Kill(m.rank)
			err = fmt.Errorf("%w: rank %d: %v", ErrLocalFailure, m.rank, r)
		}
	}()
	return fn()
}

// CheckModel validates that a model or gradient is numerically sane. On
// corruption the local replica is terminated (self-killed on the fabric)
// and ErrCorruptModel returned: scalar corruption of values that remain
// finite cannot be detected — the paper's stated limitation.
func (m *Monitor) CheckModel(w []float64) error {
	if linalg.AllFinite(w) {
		return nil
	}
	_ = m.group.fab.Kill(m.rank)
	return fmt.Errorf("%w: rank %d", ErrCorruptModel, m.rank)
}

// Watch starts a background watchdog that probes every peer each interval
// and runs the confirmation protocol for unreachable ones, so failures are
// detected even while the replica computes without communicating (the
// paper's monitors run continuously, not only on failed writes). The
// returned stop function terminates the watchdog and waits for it.
func (m *Monitor) Watch(interval time.Duration) (stop func()) {
	done := make(chan struct{})
	finished := make(chan struct{})
	go func() {
		defer close(finished)
		ticker := time.NewTicker(interval)
		defer ticker.Stop()
		for {
			select {
			case <-done:
				return
			case <-ticker.C:
			}
			fab := m.group.fab
			if !fab.Alive(m.rank) {
				return // we are dead; nothing to watch
			}
			var suspects []int
			for r := 0; r < fab.Ranks(); r++ {
				if r == m.rank || !m.Alive(r) {
					continue
				}
				if err := fab.Ping(m.rank, r); err != nil {
					suspects = append(suspects, r)
				}
			}
			if len(suspects) > 0 {
				m.ReportFailedWrites(suspects)
			}
		}
	}()
	return func() {
		close(done)
		<-finished
	}
}
