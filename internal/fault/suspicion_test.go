package fault

import (
	"math/rand"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"malt/internal/fabric"
)

func newGroupCfg(t *testing.T, ranks int, cfg SuspicionConfig) (*fabric.Fabric, *Group) {
	t.Helper()
	f, err := fabric.New(fabric.Config{Ranks: ranks})
	if err != nil {
		t.Fatal(err)
	}
	return f, NewGroupWith(f, cfg)
}

func TestDefaultSuspicionConfig(t *testing.T) {
	cfg := SuspicionConfig{}.withDefaults()
	if cfg.Strikes != DefaultStrikes || cfg.Decay != DefaultDecay {
		t.Fatalf("defaults = %+v", cfg)
	}
}

func TestStrikesRequiredBeforeConfirmation(t *testing.T) {
	f, g := newGroupCfg(t, 3, SuspicionConfig{}) // defaults: 3 strikes
	if err := f.Kill(2); err != nil {
		t.Fatal(err)
	}
	m := g.Monitor(0)
	for i := 1; i <= 2; i++ {
		if confirmed := m.ReportFailedWrites([]int{2}); confirmed != nil {
			t.Fatalf("confirmed after %d strike(s): %v", i, confirmed)
		}
		if got := m.Suspicion(2); got != i {
			t.Fatalf("Suspicion = %d after %d report(s)", got, i)
		}
	}
	// No health check has run yet: the expensive protocol waits for K.
	if st := m.SuspicionStats(); st.HealthChecks != 0 {
		t.Fatalf("health check ran before threshold: %+v", st)
	}
	confirmed := m.ReportFailedWrites([]int{2})
	if len(confirmed) != 1 || confirmed[0] != 2 {
		t.Fatalf("third strike did not confirm: %v", confirmed)
	}
	st := m.SuspicionStats()
	if st.HealthChecks != 1 || st.Confirmed != 1 || st.Reports != 3 {
		t.Fatalf("stats = %+v", st)
	}
	if m.Suspicion(2) != 0 {
		t.Fatal("strikes should clear on confirmation")
	}
}

func TestRefutedHealthCheckResetsStrikes(t *testing.T) {
	_, g := newGroupCfg(t, 3, SuspicionConfig{Strikes: 2})
	m := g.Monitor(0)
	// Rank 2 is alive: two spurious reports reach the threshold, the health
	// check refutes, and the evidence is thrown out wholesale.
	m.ReportFailedWrites([]int{2})
	if confirmed := m.ReportFailedWrites([]int{2}); confirmed != nil {
		t.Fatalf("live rank confirmed: %v", confirmed)
	}
	st := m.SuspicionStats()
	if st.HealthChecks != 1 || st.Refuted != 1 || st.Confirmed != 0 {
		t.Fatalf("stats = %+v", st)
	}
	if m.Suspicion(2) != 0 {
		t.Fatalf("refuted suspect kept %d strikes", m.Suspicion(2))
	}
	// It takes K fresh strikes, not one, to trigger the next check.
	m.ReportFailedWrites([]int{2})
	if st := m.SuspicionStats(); st.HealthChecks != 1 {
		t.Fatalf("single post-refutation strike re-triggered the check: %+v", st)
	}
}

func TestReportReachableClearsStrikes(t *testing.T) {
	_, g := newGroupCfg(t, 3, SuspicionConfig{Strikes: 3})
	m := g.Monitor(0)
	m.ReportFailedWrites([]int{1, 2})
	m.ReportFailedWrites([]int{1, 2})
	m.ReportReachable([]int{1})
	if got := m.Suspicion(1); got != 0 {
		t.Fatalf("reachable peer kept %d strikes", got)
	}
	if got := m.Suspicion(2); got != 2 {
		t.Fatalf("unrelated suspect lost strikes: %d", got)
	}
}

func TestStrikeDecay(t *testing.T) {
	f, g := newGroupCfg(t, 2, SuspicionConfig{Strikes: 2, Decay: 5 * time.Millisecond})
	if err := f.Kill(1); err != nil {
		t.Fatal(err)
	}
	m := g.Monitor(0)
	m.ReportFailedWrites([]int{1})
	time.Sleep(15 * time.Millisecond) // strike goes stale
	if got := m.Suspicion(1); got != 0 {
		t.Fatalf("stale strike still visible: %d", got)
	}
	// The next report starts a fresh count of 1, so no confirmation yet...
	if confirmed := m.ReportFailedWrites([]int{1}); confirmed != nil {
		t.Fatalf("decayed evidence still confirmed: %v", confirmed)
	}
	// ...but two rapid reports do confirm the genuinely dead rank.
	if confirmed := m.ReportFailedWrites([]int{1}); len(confirmed) != 1 {
		t.Fatalf("fresh strikes did not confirm: %v", confirmed)
	}
}

func TestNegativeDecayDisablesExpiry(t *testing.T) {
	f, g := newGroupCfg(t, 2, SuspicionConfig{Strikes: 2, Decay: -1})
	if err := f.Kill(1); err != nil {
		t.Fatal(err)
	}
	m := g.Monitor(0)
	m.ReportFailedWrites([]int{1})
	time.Sleep(5 * time.Millisecond)
	if got := m.Suspicion(1); got != 1 {
		t.Fatalf("strike expired despite Decay<0: %d", got)
	}
}

// Satellite (a): whichever path confirms a death — watchdog goroutine or
// training-loop report — OnDeath callbacks never run concurrently.
func TestOnDeathCallbacksSerialized(t *testing.T) {
	f, g := newGroupCfg(t, 4, SuspicionConfig{Strikes: 1})
	if err := f.Kill(2); err != nil {
		t.Fatal(err)
	}
	if err := f.Kill(3); err != nil {
		t.Fatal(err)
	}
	m := g.Monitor(0)
	var inFlight, maxFlight, calls atomic.Int32
	m.OnDeath(func(r int) {
		cur := inFlight.Add(1)
		for {
			prev := maxFlight.Load()
			if cur <= prev || maxFlight.CompareAndSwap(prev, cur) {
				break
			}
		}
		time.Sleep(time.Millisecond) // widen any overlap window
		calls.Add(1)
		inFlight.Add(-1)
	})
	stop := m.Watch(time.Millisecond) // watchdog races the reports below
	var wg sync.WaitGroup
	for i := 0; i < 8; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			m.ReportFailedWrites([]int{2 + i%2})
		}(i)
	}
	wg.Wait()
	stop()
	if got := maxFlight.Load(); got > 1 {
		t.Fatalf("callbacks overlapped: max concurrency %d", got)
	}
	if got := calls.Load(); got != 2 {
		t.Fatalf("OnDeath fired %d times, want exactly once per dead rank (2)", got)
	}
}

// A monitor whose own links are blacked out must not confirm the (live)
// cluster dead: its probes fail transiently, which is evidence about the
// network, not about the peers.
func TestOwnBlackoutDoesNotConfirmPeers(t *testing.T) {
	f, g := newGroupCfg(t, 4, SuspicionConfig{Strikes: 1})
	if err := f.SetRankBlackout(0, true); err != nil {
		t.Fatal(err)
	}
	m := g.Monitor(0)
	if confirmed := m.ReportFailedWrites([]int{1, 2, 3}); confirmed != nil {
		t.Fatalf("blacked-out monitor confirmed live peers dead: %v", confirmed)
	}
	st := m.SuspicionStats()
	if st.Confirmed != 0 || st.Refuted != 3 {
		t.Fatalf("stats = %+v", st)
	}
	// Blackout lifts: a genuinely dead peer is still confirmable.
	if err := f.SetRankBlackout(0, false); err != nil {
		t.Fatal(err)
	}
	if err := f.Kill(3); err != nil {
		t.Fatal(err)
	}
	if confirmed := m.ReportFailedWrites([]int{3}); len(confirmed) != 1 {
		t.Fatalf("post-blackout real death not confirmed: %v", confirmed)
	}
}

// A suspect inside a blackout window is unreachable by everyone, but only
// transiently: no monitor may confirm it dead.
func TestSuspectBlackoutNotConfirmed(t *testing.T) {
	f, g := newGroupCfg(t, 3, SuspicionConfig{Strikes: 1})
	if err := f.SetRankBlackout(2, true); err != nil {
		t.Fatal(err)
	}
	m := g.Monitor(0)
	if confirmed := m.ReportFailedWrites([]int{2}); confirmed != nil {
		t.Fatalf("blacked-out suspect confirmed dead: %v", confirmed)
	}
	if !m.Alive(2) {
		t.Fatal("blacked-out rank marked dead")
	}
}

// reportingRound has every fabric-alive monitor probe every peer it still
// believes alive and feed the outcome into its detector — the same loop a
// training replica runs, but driven synchronously for determinism.
func reportingRound(f *fabric.Fabric, g *Group) {
	for _, r := range f.AliveRanks() {
		m := g.Monitor(r)
		var failed, healthy []int
		for p := 0; p < f.Ranks(); p++ {
			if p == r || !m.Alive(p) {
				continue
			}
			if f.Ping(r, p) != nil {
				failed = append(failed, p)
			} else {
				healthy = append(healthy, p)
			}
		}
		m.ReportReachable(healthy)
		m.ReportFailedWrites(failed)
	}
}

func equalInts(a, b []int) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

// Satellite (b): after a seeded schedule of kills and healed partition
// blips, once the cluster quiesces every survivor's Survivors() view is
// identical — and matches the fabric's ground truth. Partition blips heal
// before the next reporting round: the paper's split-brain semantics make
// divergent views *correct* while a partition persists, so agreement is
// asserted over the healed cluster.
func TestSurvivorViewsAgreeAfterChaos(t *testing.T) {
	for _, seed := range []int64{1, 7, 42, 1234} {
		rng := rand.New(rand.NewSource(seed))
		ranks := 5 + rng.Intn(4) // 5..8
		f, err := fabric.New(fabric.Config{Ranks: ranks})
		if err != nil {
			t.Fatal(err)
		}
		g := NewGroupWith(f, SuspicionConfig{}) // default 3 strikes

		for ev := 0; ev < 6; ev++ {
			switch alive := f.AliveRanks(); {
			case rng.Intn(2) == 0 && len(alive) > 3:
				// Permanent kill of a random live rank.
				victim := alive[rng.Intn(len(alive))]
				if err := f.Kill(victim); err != nil {
					t.Fatalf("seed %d: kill %d: %v", seed, victim, err)
				}
			default:
				// Partition blip: split, let everyone observe it for one
				// round (1 strike — below threshold), then heal. Strikes
				// against reachable peers are cleared by the healed rounds.
				mid := 1 + rng.Intn(f.Ranks()-1)
				var a, b []int
				for r := 0; r < f.Ranks(); r++ {
					if r < mid {
						a = append(a, r)
					} else {
						b = append(b, r)
					}
				}
				if err := f.Partition([][]int{a, b}); err != nil {
					t.Fatalf("seed %d: partition: %v", seed, err)
				}
				reportingRound(f, g)
				f.Heal()
			}
			reportingRound(f, g)
		}

		// Quiescence: strikes against dead ranks accumulate once per round,
		// so Strikes+1 healed rounds guarantee every survivor has confirmed
		// every death it can observe.
		for i := 0; i < DefaultStrikes+1; i++ {
			reportingRound(f, g)
		}

		truth := f.AliveRanks()
		for _, r := range truth {
			if got := g.Monitor(r).Survivors(); !equalInts(got, truth) {
				t.Fatalf("seed %d: rank %d view %v != fabric truth %v",
					seed, r, got, truth)
			}
			// Zero live ranks falsely confirmed dead.
			for _, d := range g.Monitor(r).ConfirmedDead() {
				if f.Alive(d) {
					t.Fatalf("seed %d: rank %d falsely confirmed live rank %d dead",
						seed, r, d)
				}
			}
		}
	}
}
