// Package dataflow describes which MALT replicas send model updates to
// which peers.
//
// A Graph is a directed adjacency over ranks 0..N-1: an edge A→B means that
// when A scatters a model update, B receives it in its per-sender queue for
// A. The paper (§3.4) ships two pre-built dataflows — ALL, where every node
// sends to every other node (O(N²) updates per iteration), and HALTON, where
// node i sends to the ⌈log₂ N⌉ peers selected by the Halton sequence
// (O(N log N) updates) — and lets developers pass arbitrary graphs as long
// as they are connected, so updates from every node eventually reach every
// other node directly or through intermediates.
package dataflow

import (
	"fmt"
	"sort"
)

// Kind names a pre-built dataflow.
type Kind int

const (
	// All sends every node's updates to every other node.
	All Kind = iota
	// Halton sends each node's updates to ~log2(N) peers chosen by the
	// Halton sequence, dispersing updates uniformly across the cluster.
	Halton
	// Ring sends each node's updates to its successor only (k=1). It is the
	// cheapest connected dataflow and the slowest to disseminate; used in
	// ablations.
	Ring
	// MasterSlave sends every worker's updates to rank 0 and rank 0's
	// updates to every worker, modeling a parameter-server-style star.
	MasterSlave
	// Custom marks a graph built from an explicit adjacency.
	Custom
)

// String returns the lower-case name used in flags and bench labels.
func (k Kind) String() string {
	switch k {
	case All:
		return "all"
	case Halton:
		return "halton"
	case Ring:
		return "ring"
	case MasterSlave:
		return "masterslave"
	case Custom:
		return "custom"
	default:
		return fmt.Sprintf("Kind(%d)", int(k))
	}
}

// ParseKind converts a flag string to a Kind.
func ParseKind(s string) (Kind, error) {
	switch s {
	case "all":
		return All, nil
	case "halton":
		return Halton, nil
	case "ring":
		return Ring, nil
	case "masterslave":
		return MasterSlave, nil
	default:
		return 0, fmt.Errorf("dataflow: unknown kind %q", s)
	}
}

// Graph is a directed communication graph over ranks 0..N-1.
// Graphs are immutable once built; rebuilding after a failure produces a
// new Graph over the survivor ranks.
type Graph struct {
	kind Kind
	n    int
	out  [][]int // out[i] = sorted ranks that i sends to
	in   [][]int // in[i] = sorted ranks that send to i
}

// New builds one of the pre-defined dataflows over n ranks.
func New(kind Kind, n int) (*Graph, error) {
	if n <= 0 {
		return nil, fmt.Errorf("dataflow: need at least 1 rank, got %d", n)
	}
	out := make([][]int, n)
	switch kind {
	case All:
		for i := 0; i < n; i++ {
			for j := 0; j < n; j++ {
				if j != i {
					out[i] = append(out[i], j)
				}
			}
		}
	case Halton:
		for i := 0; i < n; i++ {
			out[i] = haltonPeers(i, n)
		}
	case Ring:
		if n > 1 {
			for i := 0; i < n; i++ {
				out[i] = []int{(i + 1) % n}
			}
		}
	case MasterSlave:
		for i := 1; i < n; i++ {
			out[i] = []int{0}
			out[0] = append(out[0], i)
		}
	default:
		return nil, fmt.Errorf("dataflow: New does not build kind %v; use FromAdjacency", kind)
	}
	return build(kind, n, out)
}

// FromAdjacency builds a custom graph from an explicit out-neighbour list.
// adj[i] lists the ranks that rank i sends updates to. Self-edges and
// duplicate edges are rejected.
func FromAdjacency(adj [][]int) (*Graph, error) {
	n := len(adj)
	if n == 0 {
		return nil, fmt.Errorf("dataflow: empty adjacency")
	}
	out := make([][]int, n)
	for i, peers := range adj {
		seen := make(map[int]bool, len(peers))
		for _, p := range peers {
			if p < 0 || p >= n {
				return nil, fmt.Errorf("dataflow: rank %d has out-of-range peer %d (n=%d)", i, p, n)
			}
			if p == i {
				return nil, fmt.Errorf("dataflow: rank %d has a self-edge", i)
			}
			if seen[p] {
				return nil, fmt.Errorf("dataflow: rank %d lists peer %d twice", i, p)
			}
			seen[p] = true
			out[i] = append(out[i], p)
		}
	}
	return build(Custom, n, out)
}

func build(kind Kind, n int, out [][]int) (*Graph, error) {
	in := make([][]int, n)
	for i := range out {
		sort.Ints(out[i])
		for _, j := range out[i] {
			in[j] = append(in[j], i)
		}
	}
	for i := range in {
		sort.Ints(in[i])
	}
	return &Graph{kind: kind, n: n, out: out, in: in}, nil
}

// Kind reports which pre-built dataflow this graph is (Custom otherwise).
func (g *Graph) Kind() Kind { return g.kind }

// N returns the number of ranks.
func (g *Graph) N() int { return g.n }

// SendPeers returns the ranks that rank i scatters updates to.
// The returned slice must not be modified.
func (g *Graph) SendPeers(i int) []int { return g.out[i] }

// RecvPeers returns the ranks whose updates arrive at rank i.
// The returned slice must not be modified.
func (g *Graph) RecvPeers(i int) []int { return g.in[i] }

// Edges returns the total number of directed edges, i.e. the number of
// update messages transmitted per scatter round across the whole cluster.
func (g *Graph) Edges() int {
	total := 0
	for _, peers := range g.out {
		total += len(peers)
	}
	return total
}

// Connected reports whether the graph is strongly connected when treating
// each directed edge as reaching its receiver: every node's updates must be
// able to reach every other node directly or indirectly (the paper's
// "eventual dissemination" requirement). For n==1 it is trivially true.
func (g *Graph) Connected() bool {
	if g.n == 1 {
		return true
	}
	// Strong connectivity via two BFS passes: forward from 0 and along
	// reversed edges from 0.
	return g.reaches(g.out) && g.reaches(g.in)
}

func (g *Graph) reaches(adj [][]int) bool {
	seen := make([]bool, g.n)
	queue := []int{0}
	seen[0] = true
	count := 1
	for len(queue) > 0 {
		v := queue[0]
		queue = queue[1:]
		for _, w := range adj[v] {
			if !seen[w] {
				seen[w] = true
				count++
				queue = append(queue, w)
			}
		}
	}
	return count == g.n
}

// DisseminationRounds returns, for each rank, the maximum number of scatter
// rounds before that rank's update has reached all other ranks (the graph
// eccentricity), or -1 if some rank is unreachable. ALL graphs return 1;
// HALTON graphs return O(log N); rings return N-1.
func (g *Graph) DisseminationRounds() int {
	worst := 0
	for src := 0; src < g.n; src++ {
		dist := make([]int, g.n)
		for i := range dist {
			dist[i] = -1
		}
		dist[src] = 0
		queue := []int{src}
		for len(queue) > 0 {
			v := queue[0]
			queue = queue[1:]
			for _, w := range g.out[v] {
				if dist[w] < 0 {
					dist[w] = dist[v] + 1
					queue = append(queue, w)
				}
			}
		}
		for _, d := range dist {
			if d < 0 {
				return -1
			}
			if d > worst {
				worst = d
			}
		}
	}
	return worst
}

// RemoveRank returns a new graph over n-1 ranks with the given rank deleted
// and the remaining ranks renumbered densely (preserving order). Edges
// into or out of the failed rank are dropped; the dataflow kind is
// recomputed for the pre-built kinds so the survivor graph keeps the same
// communication structure (this mirrors MALT's recovery, which rebuilds
// send/receive lists over the survivors rather than patching the old graph).
func (g *Graph) RemoveRank(failed int) (*Graph, error) {
	if failed < 0 || failed >= g.n {
		return nil, fmt.Errorf("dataflow: RemoveRank %d out of range (n=%d)", failed, g.n)
	}
	if g.n == 1 {
		return nil, fmt.Errorf("dataflow: cannot remove the last rank")
	}
	if g.kind != Custom {
		return New(g.kind, g.n-1)
	}
	renum := make([]int, g.n)
	next := 0
	for i := 0; i < g.n; i++ {
		if i == failed {
			renum[i] = -1
			continue
		}
		renum[i] = next
		next++
	}
	adj := make([][]int, g.n-1)
	for i := 0; i < g.n; i++ {
		if i == failed {
			continue
		}
		for _, p := range g.out[i] {
			if p == failed {
				continue
			}
			adj[renum[i]] = append(adj[renum[i]], renum[p])
		}
	}
	return FromAdjacency(adj)
}
