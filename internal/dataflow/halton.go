package dataflow

import "math"

// HaltonSequence returns the first count elements of the Halton sequence
// with the given base (≥2): the radical inverse of 1, 2, 3, … in that base.
// Values lie in (0, 1) and fill the unit interval with low discrepancy,
// which is exactly the property MALT exploits to pick peer sets that
// disperse model updates uniformly across the cluster (§3.4: the base-2
// sequence N/2, N/4, 3N/4, N/8, 3N/8, …).
func HaltonSequence(base, count int) []float64 {
	if base < 2 {
		panic("dataflow: Halton base must be >= 2")
	}
	out := make([]float64, count)
	for i := 1; i <= count; i++ {
		out[i-1] = radicalInverse(i, base)
	}
	return out
}

func radicalInverse(i, base int) float64 {
	f := 1.0
	r := 0.0
	for i > 0 {
		f /= float64(base)
		r += f * float64(i%base)
		i /= base
	}
	return r
}

// HaltonFanout returns the per-node out-degree used by the HALTON dataflow:
// ⌈log₂ N⌉, with a floor of 1 so two-node clusters stay connected.
func HaltonFanout(n int) int {
	if n <= 2 {
		return 1
	}
	k := int(math.Ceil(math.Log2(float64(n))))
	if k >= n {
		k = n - 1
	}
	return k
}

// haltonOffsets returns the k ring offsets used by every rank in the HALTON
// dataflow over n ranks: round(h_j · n) mod n for successive base-2 Halton
// values h_j (1/2, 1/4, 3/4, 1/8, …), i.e. the paper's
// N/2, N/4, 3N/4, N/8, 3N/8, … sequence. Because every rank uses the same
// offsets, the graph is a circulant graph, which is connected iff
// gcd(n, offsets…) = 1; when the first k offsets share a factor with n
// (e.g. n=8 gives {4,2,6}, all even), we keep walking the Halton sequence —
// whose later terms are odd multiples of n/2^m — until the set is coprime,
// replacing the coarsest redundant offset. The developer-facing guarantee
// (paper §3.4) is that the pre-built dataflow is always connected.
func haltonOffsets(n int) []int {
	if n <= 1 {
		return nil
	}
	k := HaltonFanout(n)
	offsets := make([]int, 0, k)
	seen := make(map[int]bool)
	take := func(off int) bool {
		off %= n
		if off == 0 || seen[off] {
			return false
		}
		seen[off] = true
		offsets = append(offsets, off)
		return true
	}
	h := HaltonSequence(2, 8*k+16)
	i := 0
	for ; i < len(h) && len(offsets) < k; i++ {
		take(int(math.Round(h[i] * float64(n))))
	}
	// Connectivity: the circulant graph over these offsets is connected iff
	// gcd(n, offsets…) == 1. If not, swap the last offset for the next
	// Halton offset (or unit offset) that restores coprimality.
	for gcdAll(n, offsets) != 1 {
		replaced := false
		for ; i < len(h); i++ {
			cand := int(math.Round(h[i]*float64(n))) % n
			if cand == 0 || seen[cand] {
				continue
			}
			trial := append(append([]int(nil), offsets[:len(offsets)-1]...), cand)
			if gcdAll(n, trial) == 1 {
				seen[cand] = true
				offsets = trial
				replaced = true
				i++
				break
			}
		}
		if !replaced {
			// Degenerate tiny-n fallback: offset 1 always connects.
			if !seen[1] {
				offsets[len(offsets)-1] = 1
			}
			break
		}
	}
	return offsets
}

func gcdAll(n int, offs []int) int {
	g := n
	for _, o := range offs {
		g = gcd(g, o)
	}
	return g
}

func gcd(a, b int) int {
	for b != 0 {
		a, b = b, a%b
	}
	return a
}

// haltonPeers returns the sorted list of peers that rank i sends updates to
// in the HALTON dataflow over n ranks: (i + offset) mod n for each Halton
// offset. Offsetting by the sender's own rank makes the scheme symmetric:
// every node sends to and receives from exactly k peers.
func haltonPeers(i, n int) []int {
	offs := haltonOffsets(n)
	peers := make([]int, 0, len(offs))
	for _, off := range offs {
		peers = append(peers, (i+off)%n)
	}
	return peers
}
