package dataflow

import (
	"testing"
	"testing/quick"
)

func TestAllGraph(t *testing.T) {
	g, err := New(All, 6)
	if err != nil {
		t.Fatal(err)
	}
	if g.Edges() != 30 {
		t.Fatalf("All(6) edges = %d, want 30", g.Edges())
	}
	if !g.Connected() {
		t.Fatal("All graph must be connected")
	}
	if r := g.DisseminationRounds(); r != 1 {
		t.Fatalf("All dissemination = %d, want 1", r)
	}
	for i := 0; i < 6; i++ {
		if len(g.SendPeers(i)) != 5 || len(g.RecvPeers(i)) != 5 {
			t.Fatalf("rank %d peers: send=%v recv=%v", i, g.SendPeers(i), g.RecvPeers(i))
		}
	}
}

func TestHaltonGraphPaperExample(t *testing.T) {
	// Paper §3.4, Fig 3: N=6, each node sends to log2(6)≈3... the figure
	// shows 2 out-edges per node for N=6 (to N/2+i and N/4+i).
	g, err := New(Halton, 6)
	if err != nil {
		t.Fatal(err)
	}
	k := HaltonFanout(6)
	for i := 0; i < 6; i++ {
		if len(g.SendPeers(i)) != k {
			t.Fatalf("rank %d out-degree = %d, want %d", i, len(g.SendPeers(i)), k)
		}
	}
	// Node 0's first two peers follow the Halton offsets N/2=3, N/4≈2.
	p := g.SendPeers(0)
	has := func(x int) bool {
		for _, v := range p {
			if v == x {
				return true
			}
		}
		return false
	}
	if !has(3) {
		t.Fatalf("rank 0 should send to offset N/2=3, got %v", p)
	}
	if !g.Connected() {
		t.Fatal("Halton graph must be connected")
	}
}

func TestHaltonEdgeGrowth(t *testing.T) {
	// Total updates per round must be O(N log N), strictly below all-to-all.
	for _, n := range []int{4, 8, 16, 32, 64} {
		h, err := New(Halton, n)
		if err != nil {
			t.Fatal(err)
		}
		a, err := New(All, n)
		if err != nil {
			t.Fatal(err)
		}
		if n > 4 && h.Edges() >= a.Edges() {
			t.Fatalf("n=%d: Halton edges %d not below All edges %d", n, h.Edges(), a.Edges())
		}
		if h.Edges() != n*HaltonFanout(n) {
			t.Fatalf("n=%d: edges %d != n*k %d", n, h.Edges(), n*HaltonFanout(n))
		}
	}
}

func TestHaltonConnectedUpTo128(t *testing.T) {
	for n := 1; n <= 128; n++ {
		g, err := New(Halton, n)
		if err != nil {
			t.Fatalf("n=%d: %v", n, err)
		}
		if !g.Connected() {
			t.Fatalf("Halton(%d) not connected", n)
		}
		if r := g.DisseminationRounds(); r < 0 {
			t.Fatalf("Halton(%d) does not disseminate", n)
		}
	}
}

func TestRingGraph(t *testing.T) {
	g, err := New(Ring, 5)
	if err != nil {
		t.Fatal(err)
	}
	if g.Edges() != 5 {
		t.Fatalf("Ring(5) edges = %d", g.Edges())
	}
	if r := g.DisseminationRounds(); r != 4 {
		t.Fatalf("Ring(5) dissemination = %d, want 4", r)
	}
	if !g.Connected() {
		t.Fatal("ring must be connected")
	}
}

func TestMasterSlaveGraph(t *testing.T) {
	g, err := New(MasterSlave, 4)
	if err != nil {
		t.Fatal(err)
	}
	if len(g.SendPeers(0)) != 3 {
		t.Fatalf("master sends to %v", g.SendPeers(0))
	}
	for i := 1; i < 4; i++ {
		p := g.SendPeers(i)
		if len(p) != 1 || p[0] != 0 {
			t.Fatalf("worker %d sends to %v", i, p)
		}
	}
	if !g.Connected() {
		t.Fatal("master-slave must be connected")
	}
}

func TestSingleRankGraphs(t *testing.T) {
	for _, k := range []Kind{All, Halton, Ring, MasterSlave} {
		g, err := New(k, 1)
		if err != nil {
			t.Fatalf("%v: %v", k, err)
		}
		if g.Edges() != 0 {
			t.Fatalf("%v(1) edges = %d", k, g.Edges())
		}
		if !g.Connected() {
			t.Fatalf("%v(1) should be trivially connected", k)
		}
	}
}

func TestFromAdjacencyValidation(t *testing.T) {
	cases := map[string][][]int{
		"self edge":    {{0}},
		"out of range": {{5}, {0}},
		"duplicate":    {{1, 1}, {0}},
	}
	for name, adj := range cases {
		if _, err := FromAdjacency(adj); err == nil {
			t.Fatalf("%s: expected error", name)
		}
	}
	g, err := FromAdjacency([][]int{{1}, {2}, {0}})
	if err != nil {
		t.Fatal(err)
	}
	if !g.Connected() {
		t.Fatal("3-cycle should be connected")
	}
}

func TestDisconnectedGraphDetected(t *testing.T) {
	// Two isolated pairs.
	g, err := FromAdjacency([][]int{{1}, {0}, {3}, {2}})
	if err != nil {
		t.Fatal(err)
	}
	if g.Connected() {
		t.Fatal("disconnected graph reported connected")
	}
	if g.DisseminationRounds() != -1 {
		t.Fatal("dissemination should be -1 for disconnected graph")
	}
}

func TestRemoveRank(t *testing.T) {
	g, err := New(Halton, 8)
	if err != nil {
		t.Fatal(err)
	}
	s, err := g.RemoveRank(3)
	if err != nil {
		t.Fatal(err)
	}
	if s.N() != 7 {
		t.Fatalf("survivor graph N = %d", s.N())
	}
	if !s.Connected() {
		t.Fatal("survivor graph must remain connected")
	}
	if _, err := g.RemoveRank(99); err == nil {
		t.Fatal("out-of-range removal should fail")
	}
}

func TestRemoveRankCustom(t *testing.T) {
	g, err := FromAdjacency([][]int{{1, 2}, {2, 0}, {0, 1}})
	if err != nil {
		t.Fatal(err)
	}
	s, err := g.RemoveRank(1)
	if err != nil {
		t.Fatal(err)
	}
	if s.N() != 2 || !s.Connected() {
		t.Fatalf("custom survivor graph wrong: n=%d connected=%v", s.N(), s.Connected())
	}
}

func TestHaltonSequenceValues(t *testing.T) {
	h := HaltonSequence(2, 6)
	want := []float64{0.5, 0.25, 0.75, 0.125, 0.625, 0.375}
	for i, w := range want {
		if diff := h[i] - w; diff > 1e-12 || diff < -1e-12 {
			t.Fatalf("Halton[%d] = %v, want %v", i, h[i], w)
		}
	}
}

func TestHaltonSequenceProperty(t *testing.T) {
	// All values in (0,1), all distinct for a reasonable prefix.
	f := func(n uint8) bool {
		count := int(n%64) + 1
		h := HaltonSequence(2, count)
		seen := make(map[float64]bool)
		for _, v := range h {
			if v <= 0 || v >= 1 || seen[v] {
				return false
			}
			seen[v] = true
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestParseKind(t *testing.T) {
	for _, k := range []Kind{All, Halton, Ring, MasterSlave} {
		got, err := ParseKind(k.String())
		if err != nil || got != k {
			t.Fatalf("ParseKind(%q) = %v, %v", k.String(), got, err)
		}
	}
	if _, err := ParseKind("bogus"); err == nil {
		t.Fatal("ParseKind(bogus) should fail")
	}
}

func TestHaltonDisseminationLogarithmic(t *testing.T) {
	// Halton updates must reach every node within a handful of rounds —
	// the eventual-dissemination promise with low eccentricity.
	for _, n := range []int{8, 16, 32, 64, 128} {
		g, err := New(Halton, n)
		if err != nil {
			t.Fatal(err)
		}
		rounds := g.DisseminationRounds()
		// Generous bound: 3·log2(N) rounds.
		limit := 3 * HaltonFanout(n)
		if rounds <= 0 || rounds > limit {
			t.Fatalf("Halton(%d) disseminates in %d rounds, want (0,%d]", n, rounds, limit)
		}
	}
}

func TestEdgesSymmetricDegreesHalton(t *testing.T) {
	// Circulant construction: every rank has identical in- and out-degree.
	g, err := New(Halton, 24)
	if err != nil {
		t.Fatal(err)
	}
	k := HaltonFanout(24)
	for r := 0; r < 24; r++ {
		if len(g.SendPeers(r)) != k || len(g.RecvPeers(r)) != k {
			t.Fatalf("rank %d degrees: out=%d in=%d, want %d",
				r, len(g.SendPeers(r)), len(g.RecvPeers(r)), k)
		}
	}
}
