package lint

import (
	"go/ast"
	"go/token"
	"go/types"
	"strings"
)

// ErrIsCmp flags identity comparisons (==, !=, switch/case) against
// package-level sentinel errors. Every fabric and dstorm error reaches
// callers wrapped — fabric.Write returns fmt.Errorf("%w: rank %d -> rank
// %d", ErrUnreachable, ...) — so `err == fabric.ErrUnreachable` is always
// false at exactly the call sites that matter. The failure mode is silent:
// a retry loop that misclassifies ErrTransient as permanent (or vice versa)
// degrades convergence instead of crashing, which is why the check is
// machine-enforced. Use errors.Is.
var ErrIsCmp = &Analyzer{
	Name: "erriscmp",
	Doc:  "sentinel errors must be classified with errors.Is, not == / != / switch",
	Run:  runErrIsCmp,
}

func runErrIsCmp(pass *Pass) error {
	for _, f := range pass.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			switch n := n.(type) {
			case *ast.BinaryExpr:
				if n.Op != token.EQL && n.Op != token.NEQ {
					return true
				}
				for _, side := range []ast.Expr{n.X, n.Y} {
					if obj := sentinelErrorRef(pass.Info, side); obj != nil {
						pass.Reportf(n.Pos(),
							"comparison %s sentinel %s.%s breaks on wrapped errors; use errors.Is",
							n.Op, obj.Pkg().Name(), obj.Name())
						break
					}
				}
			case *ast.SwitchStmt:
				if n.Tag == nil {
					return true
				}
				tv, ok := pass.Info.Types[n.Tag]
				if !ok || !isErrorType(tv.Type) {
					return true
				}
				for _, clause := range n.Body.List {
					cc, ok := clause.(*ast.CaseClause)
					if !ok {
						continue
					}
					for _, e := range cc.List {
						if obj := sentinelErrorRef(pass.Info, e); obj != nil {
							pass.Reportf(e.Pos(),
								"switch case on sentinel %s.%s breaks on wrapped errors; use errors.Is chains",
								obj.Pkg().Name(), obj.Name())
						}
					}
				}
			}
			return true
		})
	}
	return nil
}

// sentinelErrorRef resolves e to a package-level error variable named
// Err*, the naming convention every sentinel in this module (and the
// standard library's errors doctrine) follows. Returns nil otherwise.
func sentinelErrorRef(info *types.Info, e ast.Expr) *types.Var {
	var id *ast.Ident
	switch e := unparen(e).(type) {
	case *ast.Ident:
		id = e
	case *ast.SelectorExpr:
		id = e.Sel
	default:
		return nil
	}
	obj, ok := info.Uses[id].(*types.Var)
	if !ok || obj.Pkg() == nil {
		return nil
	}
	if obj.Parent() != obj.Pkg().Scope() { // must be package-level
		return nil
	}
	if !strings.HasPrefix(obj.Name(), "Err") || !isErrorType(obj.Type()) {
		return nil
	}
	return obj
}
