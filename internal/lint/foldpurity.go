package lint

import (
	"go/ast"
	"go/token"
	"go/types"
)

// FoldPurity flags closures handed to gather folds and failure hooks that
// write variables captured from the enclosing scope without lock
// protection. A gather-fold UDF runs against per-sender queues that remote
// NICs (fabric senders) are concurrently depositing into; OnDeath and
// liveness callbacks fire from the fault watchdog goroutine or whichever
// training goroutine confirms a death first. A captured write inside such
// a closure is shared mutable state on a concurrency boundary — the
// paper-level symptom is not a crash but a silently corrupted model or
// statistic. Writes guarded by a mutex acquired inside the closure are
// accepted; anything else needs restructuring (return data through the
// fold's Local vector) or an audited //maltlint:allow annotation
// explaining why the capture is single-goroutine.
var FoldPurity = &Analyzer{
	Name: "foldpurity",
	Doc:  "gather-fold and failure-hook closures must not write unguarded captured state",
	Run:  runFoldPurity,
}

// hookMethods are the registration points whose closure arguments run on
// concurrency boundaries, keyed "pkgpath.Type.Method".
var hookMethods = map[string]bool{
	"malt/internal/vol.Vector.Gather":              true,
	"malt/internal/vol.Vector.GatherIf":            true,
	"malt/internal/vol.Vector.GatherLatest":        true,
	"malt/internal/vol.Vector.GatherWeak":          true,
	"malt/internal/core.Context.Gather":            true,
	"malt/internal/core.Context.GatherLatest":      true,
	"malt/internal/consistency.Controller.Gather":  true,
	"malt/internal/fault.Monitor.OnDeath":          true,
	"malt/internal/fabric.Fabric.OnLivenessChange": true,
}

func runFoldPurity(pass *Pass) error {
	for _, f := range pass.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok {
				return true
			}
			fn := funcFor(pass.Info, call)
			if fn == nil || fn.Pkg() == nil || !maltPackage(fn.Pkg().Path()) {
				return true
			}
			pkgPath, typeName, isMethod := recvTypeName(fn)
			if !isMethod || !hookMethods[pkgPath+"."+typeName+"."+fn.Name()] {
				return true
			}
			hook := typeName + "." + fn.Name()
			for _, arg := range call.Args {
				if lit, ok := unparen(arg).(*ast.FuncLit); ok {
					checkClosure(pass, hook, lit)
				}
			}
			return true
		})
	}
	return nil
}

// checkClosure reports unguarded writes to captured variables inside lit.
func checkClosure(pass *Pass, hook string, lit *ast.FuncLit) {
	// Positions of lock acquisitions inside the closure: a write after one
	// (in source order) is considered guarded. This is deliberately
	// generous — the matching Unlock is not tracked — because the analyzer
	// targets the "no locking at all" failure mode.
	var lockPositions []token.Pos
	ast.Inspect(lit.Body, func(n ast.Node) bool {
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		if fn := funcFor(pass.Info, call); fn != nil && fn.Pkg() != nil &&
			fn.Pkg().Path() == "sync" && (fn.Name() == "Lock" || fn.Name() == "RLock") {
			lockPositions = append(lockPositions, call.Pos())
		}
		return true
	})
	guarded := func(pos token.Pos) bool {
		for _, lp := range lockPositions {
			if lp < pos {
				return true
			}
		}
		return false
	}

	report := func(pos token.Pos, obj *types.Var) {
		if guarded(pos) {
			return
		}
		pass.Reportf(pos,
			"closure passed to %s writes captured %q without a lock; folds/hooks run concurrently with queue deposits — fold into Local, guard with a mutex, or annotate why it is single-goroutine",
			hook, obj.Name())
	}

	ast.Inspect(lit.Body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.AssignStmt:
			if n.Tok == token.DEFINE {
				return true // := declares closure-locals
			}
			for _, lhs := range n.Lhs {
				if obj := capturedTarget(pass.Info, lit, lhs); obj != nil {
					report(lhs.Pos(), obj)
				}
			}
		case *ast.IncDecStmt:
			if obj := capturedTarget(pass.Info, lit, n.X); obj != nil {
				report(n.X.Pos(), obj)
			}
		case *ast.CallExpr:
			// copy(captured, ...) writes through a captured slice.
			if id, ok := unparen(n.Fun).(*ast.Ident); ok {
				if _, isBuiltin := pass.Info.Uses[id].(*types.Builtin); isBuiltin && id.Name == "copy" && len(n.Args) > 0 {
					if obj := capturedTarget(pass.Info, lit, n.Args[0]); obj != nil {
						report(n.Args[0].Pos(), obj)
					}
				}
			}
		}
		return true
	})
}

// capturedTarget resolves the base variable a write target refers to and
// returns it when it is captured from outside the closure (including
// package-level state). It returns nil for closure parameters and locals,
// the blank identifier, and targets whose base is not a variable.
func capturedTarget(info *types.Info, lit *ast.FuncLit, target ast.Expr) *types.Var {
	e := unparen(target)
	for {
		switch t := e.(type) {
		case *ast.IndexExpr:
			e = unparen(t.X)
		case *ast.StarExpr:
			e = unparen(t.X)
		case *ast.SelectorExpr:
			e = unparen(t.X)
		case *ast.SliceExpr:
			e = unparen(t.X)
		default:
			goto resolved
		}
	}
resolved:
	id, ok := e.(*ast.Ident)
	if !ok || id.Name == "_" {
		return nil
	}
	obj, ok := info.Uses[id].(*types.Var)
	if !ok {
		return nil
	}
	if obj.Pos() >= lit.Pos() && obj.Pos() < lit.End() {
		return nil // declared inside the closure (param or local)
	}
	return obj
}
