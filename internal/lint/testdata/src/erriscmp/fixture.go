// Package erriscmp seeds sentinel-error identity comparisons for the
// erriscmp analyzer. Every fabric/dstorm error reaches callers wrapped, so
// each flagged line is a real misclassification bug, not a style nit.
package erriscmp

import (
	"errors"

	"malt/internal/dstorm"
	"malt/internal/fabric"
)

// ErrLocal is a same-package sentinel: the convention applies to local
// sentinels exactly as it does to imported ones.
var ErrLocal = errors.New("erriscmp: local sentinel")

func classify(err error) string {
	if err == fabric.ErrTransient { // want `use errors\.Is`
		return "transient"
	}
	if err != fabric.ErrUnreachable { // want `use errors\.Is`
		return "not-unreachable"
	}
	if fabric.ErrSenderDead == err { // want `use errors\.Is`
		return "dead-sender"
	}
	if err == ErrLocal { // want `use errors\.Is`
		return "local"
	}
	if errors.Is(err, fabric.ErrUnreachable) { // correct classification
		return "unreachable"
	}
	if err == nil { // nil comparisons are fine
		return "ok"
	}
	return "other"
}

func classifySwitch(err error) string {
	switch err {
	case nil:
		return "ok"
	case dstorm.ErrClosed: // want `use errors\.Is`
		return "closed"
	case dstorm.ErrTooLarge, fabric.ErrNotRegistered: // want `use errors\.Is` `use errors\.Is`
		return "payload"
	}
	return "other"
}

func notErrors(a, b int) bool {
	return a == b // non-error comparisons are not the analyzer's business
}
