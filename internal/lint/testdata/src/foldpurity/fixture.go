// Package foldpurity seeds impure fold/hook closures for the foldpurity
// analyzer, against the real vol/fault/fabric hook signatures.
package foldpurity

import (
	"sync"

	"malt/internal/fabric"
	"malt/internal/fault"
	"malt/internal/vol"
)

func impureFold(v *vol.Vector) {
	count := 0
	_, _ = v.Gather(func(f vol.Fold) {
		count++ // want `writes captured "count" without a lock`
		for i := range f.Local {
			f.Local[i] = 0 // writing through the Fold parameter is the job
		}
	})
	_ = count
}

func impureHook(m *fault.Monitor, f *fabric.Fabric) {
	var removed []int
	alive := map[int]bool{}
	m.OnDeath(func(rank int) {
		removed = append(removed, rank) // want `writes captured "removed" without a lock`
	})
	f.OnLivenessChange(func(rank int, up bool) {
		alive[rank] = up // want `writes captured "alive" without a lock`
	})
	_ = removed
}

func impureCopy(v *vol.Vector, snapshot []float64) {
	_, _ = v.GatherLatest(func(f vol.Fold) {
		copy(snapshot, f.Local) // want `writes captured "snapshot" without a lock`
	})
}

func guardedIsFine(v *vol.Vector) {
	var mu sync.Mutex
	count := 0
	_, _ = v.Gather(func(f vol.Fold) {
		mu.Lock()
		count++
		mu.Unlock()
	})
	_ = count
}

func closureLocalsAreFine(v *vol.Vector) {
	_, _ = v.GatherWeak(func(f vol.Fold) {
		seen := 0
		for range f.Updates {
			seen++
		}
		_ = seen
	})
}

func annotatedIsSuppressed(v *vol.Vector) {
	total := 0.0
	_, _ = v.Gather(func(f vol.Fold) {
		//maltlint:allow foldpurity -- fixture: single training goroutine owns total
		total += float64(len(f.Updates))
	})
	_ = total
}
