// Package queuelen seeds depth-1 receive-ring literals for the queuelen
// analyzer.
package queuelen

import (
	"malt/internal/compress"
	"malt/internal/vol"
)

func depthOne() vol.Options {
	return vol.Options{QueueLen: 1} // want `depth-1 receive ring`
}

func depthOneAmongOthers() vol.Options {
	return vol.Options{ChunkSize: 64, QueueLen: 1, MaxNNZ: 8} // want `depth-1 receive ring`
}

func depthOnePointer() *vol.Options {
	return &vol.Options{QueueLen: 1} // want `depth-1 receive ring`
}

func depthOnePositional() vol.Options {
	return vol.Options{1, 0, 0, 0, 0, compress.Options{}, false} // want `depth-1 receive ring`
}

// depthDefault and depthDeep are fine: only the pathological depth 1 is
// flagged.
func depthDefault() vol.Options {
	return vol.Options{ChunkSize: 64}
}

func depthDeep() vol.Options {
	return vol.Options{QueueLen: 16}
}

// otherStructOne: QueueLen fields of other types are not vol.Options.
type localOpts struct{ QueueLen int }

func otherStructOne() localOpts {
	return localOpts{QueueLen: 1}
}

// variableDepth: non-constant depths come from configuration; the analyzer
// only flags the literal constant 1.
func variableDepth(n int) vol.Options {
	return vol.Options{QueueLen: n}
}

func annotatedIsSuppressed() vol.Options {
	return vol.Options{QueueLen: 1} //maltlint:allow queuelen -- fixture: deliberate depth-1 ablation
}
