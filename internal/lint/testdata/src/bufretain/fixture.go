// Package bufretain seeds donated-buffer hazards for the bufretain
// analyzer, against the real fabric/dstorm APIs: a slice handed to the
// fabric is the transport's until the enclosing Drain/Flush/Barrier.
package bufretain

import (
	"malt/internal/dstorm"
	"malt/internal/fabric"
)

func mutateAfterScatter(s *dstorm.Segment, buf []byte) {
	_, _ = s.Scatter(buf, 1)
	buf[0] = 0xFF // want `buf was handed to the fabric .* and is mutated`
}

func doublePost(s *dstorm.Segment, buf []byte) {
	_, _ = s.Scatter(buf, 1)
	_, _ = s.Scatter(buf, 2) // want `re-scattered via Scatter`
}

func loopReuse(s *dstorm.Segment, buf []byte) {
	for i := uint64(0); i < 4; i++ {
		_, _ = s.Scatter(buf, i) // want `re-scattered via Scatter`
	}
}

func returnLive(s *dstorm.Segment, buf []byte) []byte {
	_, _ = s.Scatter(buf, 1)
	return buf // want `returned before a Drain/Flush/Barrier`
}

func copyInto(s *dstorm.Segment, buf, next []byte) {
	_, _ = s.Scatter(buf, 1)
	copy(buf, next) // want `copy writes through it`
}

func appendThrough(s *dstorm.Segment, buf []byte) []byte {
	_, _ = s.Scatter(buf, 1)
	out := append(buf, 0) // want `append may write its spare capacity in place`
	return out
}

func fabricDirect(f *fabric.Fabric, buf []byte) {
	_ = f.Write(0, 1, "k", buf)
	buf[0] = 1 // want `buf was handed to the fabric .* and is mutated`
}

// post funnels into Segment.Scatter, so the facts pass derives
// RetainsFact{0} for it; donating through it counts like donating to the
// fabric directly.
func post(s *dstorm.Segment, b []byte) {
	_, _ = s.Scatter(b, 1)
}

func viaHelper(s *dstorm.Segment, buf []byte) {
	post(s, buf)
	buf[0] = 1 // want `buf was handed to the fabric .* and is mutated`
}

// ---- negative cases: none of these may be flagged ----

// A Barrier closes the donation window.
func drainedThenMutated(s *dstorm.Segment, buf []byte) {
	_, _ = s.Scatter(buf, 1)
	_ = s.Barrier()
	buf[0] = 1
}

// Draining inside the loop makes per-iteration reuse safe.
func loopDrained(s *dstorm.Segment, buf []byte) {
	for i := uint64(0); i < 4; i++ {
		_, _ = s.Scatter(buf, i)
		_ = s.Barrier()
	}
}

// Re-pointing the variable stops tracking it; the donated memory lives on
// inside the fabric but this name no longer aliases it.
func swapBuffer(s *dstorm.Segment, buf []byte) {
	_, _ = s.Scatter(buf, 1)
	buf = make([]byte, 8)
	buf[0] = 1
	_, _ = s.Scatter(buf, 2)
}

// A fresh buffer every iteration never meets its own back edge.
func freshPerIteration(s *dstorm.Segment) {
	for i := uint64(0); i < 4; i++ {
		buf := make([]byte, 8)
		buf[0] = byte(i)
		_, _ = s.Scatter(buf, i)
	}
}

// Reading a donated buffer is fine; only writes race the transport.
func readBack(s *dstorm.Segment, buf []byte) byte {
	_, _ = s.Scatter(buf, 1)
	return buf[0]
}
