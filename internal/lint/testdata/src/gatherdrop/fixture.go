// Package gatherdrop seeds discarded scatter/gather errors for the
// gatherdrop analyzer, against the real dstorm/vol/core APIs.
package gatherdrop

import (
	"malt/internal/core"
	"malt/internal/dstorm"
	"malt/internal/vol"
)

type replica struct {
	seg *dstorm.Segment
	add *dstorm.AddSegment
	vec *vol.Vector
	buf []byte
}

// Bare call statements discard the whole result tuple.
func (r *replica) bareCalls(ctx *core.Context) {
	r.seg.Scatter(r.buf, 1)             // want `Segment\.Scatter error discarded`
	r.seg.ScatterTo([]int{1}, r.buf, 2) // want `Segment\.ScatterTo error discarded`
	r.add.Scatter([]float64{1}, 3)      // want `AddSegment\.Scatter error discarded`
	r.seg.Gather(dstorm.GatherLatest)   // want `Segment\.Gather error discarded`
	r.vec.GatherLatest(vol.Average)     // want `Vector\.GatherLatest error discarded`
	ctx.Scatter(r.vec)                  // want `Context\.Scatter error discarded`
}

// Blank assignments discard the error explicitly.
func (r *replica) blankAssignments() {
	_, _ = r.seg.Scatter(r.buf, 1)               // want `Segment\.Scatter error discarded`
	_, _ = r.vec.ScatterSparse(nil, 2)           // want `Vector\.ScatterSparse error discarded`
	_, _ = r.vec.GatherIf(vol.Average, nil)      // want `Vector\.GatherIf error discarded`
	_, _ = r.seg.GatherWeak(dstorm.GatherAllNew) // want `Segment\.GatherWeak error discarded`
}

// go/defer statements can never observe the result.
func (r *replica) asyncDrops() {
	go r.seg.Scatter(r.buf, 1)      // want `Segment\.Scatter error discarded`
	defer r.vec.Gather(vol.Average) // want `Vector\.Gather error discarded`
}

// Binding the error to a variable is handling it (even if checked later);
// binding only the failed-peers list to blank is fine too.
func (r *replica) handled() error {
	if _, err := r.seg.Scatter(r.buf, 1); err != nil {
		return err
	}
	_, err := r.vec.Scatter(2)
	return err
}

// Using the call in value position consumes the tuple; not a drop.
func (r *replica) valuePosition() ([]dstorm.Update, error) {
	return r.seg.Gather(dstorm.GatherLatest)
}

// A same-named method on a local type is not a MALT scatter.
type localSeg struct{}

func (localSeg) Scatter(b []byte, seq uint64) ([]int, error) { return nil, nil }

func localLookalike(s localSeg) {
	s.Scatter(nil, 1)
}

// An audited drop is suppressed with the standard annotation.
func (r *replica) annotatedDrop() {
	//maltlint:allow gatherdrop -- best-effort prefetch, loss is acceptable
	r.vec.GatherWeak(vol.Average)
}
