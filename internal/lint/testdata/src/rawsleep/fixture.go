// Package rawsleep seeds sleep-in-loop sites for the rawsleep analyzer.
package rawsleep

import "time"

func pollLoop(ready func() bool) {
	for !ready() {
		time.Sleep(time.Millisecond) // want `blessed backoff sites`
	}
}

func rangeLoop(xs []int) {
	for range xs {
		time.Sleep(time.Nanosecond) // want `blessed backoff sites`
	}
}

func nestedLoop() {
	for i := 0; i < 2; i++ {
		for j := 0; j < 2; j++ {
			time.Sleep(time.Microsecond) // want `blessed backoff sites`
		}
	}
}

func loopInClosure() func() {
	return func() {
		for {
			time.Sleep(time.Millisecond) // want `blessed backoff sites`
		}
	}
}

// oneShotDelay: a sleep outside any loop models a fixed delay, not a
// retry/poll policy, and is not flagged.
func oneShotDelay() {
	time.Sleep(time.Microsecond)
}

// closureInLoop: the sleep belongs to the closure (which may run once, on
// another goroutine, long after the loop); it is not a loop backoff.
func closureInLoop(run func(func())) {
	for i := 0; i < 3; i++ {
		run(func() {
			time.Sleep(time.Microsecond)
		})
	}
}

func annotatedIsSuppressed(ready func() bool) {
	for !ready() {
		time.Sleep(time.Millisecond) //maltlint:allow rawsleep -- fixture: deliberate pacing
	}
}
