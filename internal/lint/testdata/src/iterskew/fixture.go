// Package iterskew seeds non-monotonic iteration stamps for the iterskew
// analyzer.
package iterskew

import "malt/internal/dstorm"

const warmupIter = 3

func constantLiteral(seg *dstorm.Segment) {
	seg.SetIteration(1) // want `constant`
}

func constantConverted(seg *dstorm.Segment) {
	seg.SetIteration(uint64(42)) // want `constant`
}

func constantNamed(seg *dstorm.Segment) {
	seg.SetIteration(warmupIter) // want `constant`
}

func wraps(seg *dstorm.Segment, iter, ring uint64) {
	seg.SetIteration(iter % ring) // want `wraps`
}

func wrapsConverted(seg *dstorm.Segment, i, n int) {
	seg.SetIteration(uint64(i % n)) // want `wraps`
}

func decreases(seg *dstorm.Segment, iter uint64) {
	seg.SetIteration(iter - 1) // want `subtraction`
}

// advancing shapes are the intended usage and stay silent.
func advancing(seg *dstorm.Segment, iter uint64, round int) {
	seg.SetIteration(iter)
	seg.SetIteration(iter + 1)
	seg.SetIteration(uint64(round + 1))
}

// nested subtractions inside an advancing shape are fine: only the
// top-level operator decides whether the stamp can advance.
func nestedSubtraction(seg *dstorm.Segment, hi, lo uint64) {
	seg.SetIteration(hi + (hi - lo))
}

// otherSetIteration: same method name on a non-malt type is not the
// iteration stamp.
type localClock struct{ iter uint64 }

func (c *localClock) SetIteration(iter uint64) { c.iter = iter }

func otherSetIteration(c *localClock) {
	c.SetIteration(1)
}

func annotatedIsSuppressed(seg *dstorm.Segment) {
	seg.SetIteration(1) //maltlint:allow iterskew -- fixture: deliberate fixed stamp
}
