// Package allow seeds //maltlint:allow annotations: well-formed ones must
// suppress their finding, malformed ones must be hard errors that
// suppress nothing — a silently honored typo would disable the very check
// it names.
package allow

import "time"

// A well-formed annotation (known analyzer, `--`, non-empty reason)
// suppresses the finding on its own line and the line below.
func suppressed(ready func() bool) {
	for !ready() {
		//maltlint:allow rawsleep -- fixture: the poll cadence is the point
		time.Sleep(time.Millisecond)
	}
}

// An unknown analyzer name is a hard error and the sleep still reports.
func unknownName(ready func() bool) {
	for !ready() {
		//maltlint:allow rawsheep -- typo in the name // want `unknown analyzer "rawsheep"`
		time.Sleep(time.Millisecond) // want `blessed backoff sites`
	}
}

// A missing `-- reason` clause is a hard error and the sleep still reports.
func missingReason(ready func() bool) {
	for !ready() {
		//maltlint:allow rawsleep // want `missing the`
		time.Sleep(time.Millisecond) // want `blessed backoff sites`
	}
}

// Names are mandatory too: a reason with nothing to allow is an error.
func noNames(ready func() bool) {
	for !ready() {
		//maltlint:allow -- a reason with no analyzer // want `no analyzer names`
		time.Sleep(time.Millisecond) // want `blessed backoff sites`
	}
}
