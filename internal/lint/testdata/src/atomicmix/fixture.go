// Package atomicmix seeds mixed atomic/plain field access for the
// atomicmix analyzer.
package atomicmix

import "sync/atomic"

type counters struct {
	hits     uint64
	misses   uint64
	inflight int64
	safe     atomic.Uint64 // atomic-typed: plain access is impossible
}

func (c *counters) record() {
	atomic.AddUint64(&c.hits, 1)
	atomic.AddInt64(&c.inflight, 1)
	c.safe.Add(1)
}

func (c *counters) report() uint64 {
	total := c.hits // want `plain access to field hits`
	c.misses++      // plain-only fields are fine: misses is never atomic
	return total + c.misses + c.safe.Load()
}

func (c *counters) drain() {
	for atomic.LoadInt64(&c.inflight) > 0 {
	}
	c.inflight = 0 // want `plain access to field inflight`
}

func (c *counters) reset() {
	atomic.StoreUint64(&c.hits, 0) // atomic access is never flagged
}
