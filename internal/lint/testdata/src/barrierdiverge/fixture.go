// Package barrierdiverge seeds rank-divergent barrier entry for the
// barrierdiverge analyzer: a barrier releases only when every live rank
// enters it, so rank-conditional entry wedges the cluster.
package barrierdiverge

import (
	"fmt"

	"malt/internal/dstorm"
	"malt/internal/fabric/tcpnet"
)

func leaderOnly(s *dstorm.Segment, rank int) {
	if rank == 0 {
		_ = s.Barrier() // want `depends on a rank condition \(rank == 0\)`
	}
}

func elseOnly(s *dstorm.Segment, rank int) {
	if rank == 0 {
		fmt.Println("leader")
	} else {
		_ = s.Barrier() // want `depends on a rank condition`
	}
}

func splitNames(n *tcpnet.Net, rank int) {
	if rank%2 == 0 { // want `different names \(even vs odd\)`
		_ = n.Barrier("even", rank)
	} else {
		_ = n.Barrier("odd", rank)
	}
}

func perRankName(n *tcpnet.Net, rank int) {
	_ = n.Barrier(fmt.Sprintf("b-%d", rank), rank) // want `barrier name is rank-dependent`
}

// sync funnels into Segment.Barrier, so the facts pass derives a
// BarriersFact for it; reaching a barrier through a helper is recognized
// the same as calling it directly.
func sync(s *dstorm.Segment) {
	_ = s.Barrier()
}

func viaHelper(s *dstorm.Segment, rank int) {
	if rank == 0 {
		sync(s) // want `depends on a rank condition`
	}
}

// ---- negative cases: none of these may be flagged ----

// Both arms enter the same named barrier: symmetric.
func symmetric(n *tcpnet.Net, rank int) {
	if rank == 0 {
		_ = n.Barrier("sync", rank)
	} else {
		_ = n.Barrier("sync", rank)
	}
}

// The non-barrier arm leaves the function: that rank is visibly gone (the
// membership layer prunes it), not silently waiting elsewhere.
func deadRankExit(s *dstorm.Segment, rank, dead int) error {
	if rank == dead {
		return nil
	}
	return s.Barrier()
}

// The barrier arm returns; the other ranks continue to their own barrier
// below. Cross-statement pairing is out of scope, so this stays silent.
func leaderFastPath(s *dstorm.Segment, rank int) error {
	if rank == 0 {
		return s.Barrier()
	}
	fmt.Println("worker path")
	return s.Barrier()
}

// The condition is not rank-dependent.
func retryGuard(s *dstorm.Segment, attempt int) {
	if attempt < 3 {
		_ = s.Barrier()
	}
}

// A constant, shared name is fine even when other arguments mention rank.
func sharedName(n *tcpnet.Net, rank int) {
	_ = n.Barrier("epoch", rank)
}
