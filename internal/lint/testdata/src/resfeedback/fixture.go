// Package resfeedback seeds one-Begin-lifetime violations for the
// resfeedback analyzer, against the real compress API: Recon, Residual and
// EncodeRange results alias state the next Begin re-plans in place, and
// residuals are the codec's accumulator, not the caller's.
package resfeedback

import "malt/internal/compress"

func staleRecon(st *compress.State, a, b []float64) float64 {
	st.Begin(1, a, 0.5)
	recon := st.Recon()
	st.Begin(2, b, 0.5)
	return recon[0] // want `read after the Begin`
}

func staleResidual(st *compress.State, a []float64) float64 {
	st.Begin(1, a, 0.5)
	r := st.Residual(1)
	st.Begin(1, a, 0.5)
	return r[0] // want `read after the Begin`
}

func staleFrame(st *compress.State, a []float64, buf []byte) []byte {
	st.Begin(1, a, 0.5)
	frame := st.EncodeRange(buf[:0], 0, len(a))
	st.Begin(2, a, 0.5)
	return frame // want `read after the Begin`
}

// The per-peer scatter loop's back edge: recon obtained for peer N is
// still aliased when peer N+1's Begin re-plans; only the second loop-body
// walk sees the collision.
func backEdgeStale(st *compress.State, peers []int, a []float64) float64 {
	sum := 0.0
	var recon []float64
	for _, p := range peers {
		st.Begin(p, a, 0.5)
		if recon != nil { // want `read after the Begin`
			sum += recon[0] // want `read after the Begin`
		}
		recon = st.Recon()
	}
	return sum
}

func mutateResidual(st *compress.State, a []float64) {
	st.Begin(1, a, 0.5)
	r := st.Residual(1)
	r[0] = 0 // want `mutating it breaks conservation`
}

func decayResidual(st *compress.State, a []float64) {
	st.Begin(1, a, 0.5)
	r := st.Residual(1)
	r[3]++ // want `mutating it breaks conservation`
}

// ---- negative cases: none of these may be flagged ----

// Using scratch inside its Begin window is the intended pattern.
func usedInWindow(st *compress.State, a []float64) float64 {
	st.Begin(1, a, 0.5)
	recon := st.Recon()
	return recon[0]
}

// Copying out before the next Begin is the blessed escape.
func copiedOut(st *compress.State, a, b []float64) float64 {
	st.Begin(1, a, 0.5)
	keep := append([]float64(nil), st.Recon()...)
	st.Begin(2, b, 0.5)
	return keep[0]
}

// Re-pointing the name at the fresh plan starts a new lifetime.
func repointed(st *compress.State, a, b []float64) float64 {
	st.Begin(1, a, 0.5)
	recon := st.Recon()
	_ = recon
	st.Begin(2, b, 0.5)
	recon = st.Recon()
	return recon[0]
}

// Reading a residual (without writing it) inside the window is fine.
func readResidual(st *compress.State, a []float64) float64 {
	st.Begin(1, a, 0.5)
	r := st.Residual(1)
	return r[0]
}

// Re-obtaining scratch every iteration never meets the back edge.
func freshPerPeer(st *compress.State, peers []int, a []float64) float64 {
	sum := 0.0
	for _, p := range peers {
		st.Begin(p, a, 0.5)
		recon := st.Recon()
		sum += recon[0]
	}
	return sum
}
