// Package lockedscatter seeds scatter-under-lock hazards for the
// lockedscatter analyzer, against the real fabric/dstorm/vol APIs.
package lockedscatter

import (
	"sync"

	"malt/internal/dstorm"
	"malt/internal/fabric"
	"malt/internal/vol"
)

type replica struct {
	mu  sync.Mutex
	rw  sync.RWMutex
	seg *dstorm.Segment
	buf []byte
}

func (r *replica) scatterUnderLock() {
	r.mu.Lock()
	r.seg.Scatter(r.buf, 1) // want `Segment\.Scatter while r\.mu is still locked`
	r.mu.Unlock()
}

func (r *replica) scatterUnderDeferredUnlock() {
	r.mu.Lock()
	defer r.mu.Unlock()
	r.seg.ScatterTo([]int{1}, r.buf, 1) // want `Segment\.ScatterTo while r\.mu is still locked`
}

func (r *replica) writeUnderRLock(f *fabric.Fabric) {
	r.rw.RLock()
	defer r.rw.RUnlock()
	_ = f.Write(0, 1, "k", r.buf) // want `Fabric\.Write while r\.rw is still locked`
}

func (r *replica) vectorUnderLock(v *vol.Vector) {
	r.mu.Lock()
	defer r.mu.Unlock()
	v.Scatter(2) // want `Vector\.Scatter while r\.mu is still locked`
}

// snapshotThenScatter is the blessed discipline: copy under the lock,
// release, then send.
func (r *replica) snapshotThenScatter() {
	r.mu.Lock()
	payload := append([]byte(nil), r.buf...)
	r.mu.Unlock()
	r.seg.Scatter(payload, 1)
}

// earlyReturnKeepsTracking: the unlock on the early-return path must not
// make the analyzer forget the lock is held on the fallthrough path — and
// the final unlock before the scatter must clear it.
func (r *replica) earlyReturnKeepsTracking(closed bool) {
	r.mu.Lock()
	if closed {
		r.mu.Unlock()
		return
	}
	r.seg.Scatter(r.buf, 1) // want `Segment\.Scatter while r\.mu is still locked`
	r.mu.Unlock()
	r.seg.Scatter(r.buf, 1)
}

// conditionalUnlockStillHeld: released on only one non-terminating path
// means still (possibly) held afterwards.
func (r *replica) conditionalUnlockStillHeld(flaky bool) {
	r.mu.Lock()
	if flaky {
		r.mu.Unlock()
	}
	r.seg.Scatter(r.buf, 1) // want `Segment\.Scatter while r\.mu is still locked`
}

// closureIsItsOwnFunction: a closure body starts with an empty lock set
// (it runs later, on an unknown goroutine), and a lock taken inside a
// closure does not leak out.
func (r *replica) closureIsItsOwnFunction() func() {
	r.mu.Lock()
	defer r.mu.Unlock()
	fn := func() {
		r.seg.Scatter(r.buf, 1) // no lock acquired in *this* function
	}
	return fn
}

// lockInsideClosureFlagged: the same-function rule applies inside closures.
func (r *replica) lockInsideClosureFlagged() func() {
	return func() {
		r.mu.Lock()
		r.seg.Scatter(r.buf, 1) // want `Segment\.Scatter while r\.mu is still locked`
		r.mu.Unlock()
	}
}
