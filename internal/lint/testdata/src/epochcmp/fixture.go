// Package epochcmp seeds narrowed and stale membership-epoch comparisons
// for the epochcmp analyzer.
package epochcmp

import (
	"sync"

	"malt/internal/fabric"
	"malt/internal/fabric/tcpnet"
)

func narrowedInt(f *fabric.Fabric) int {
	return int(f.Epoch()) // want `converted to int`
}

func narrowedUint32(f *fabric.Fabric) uint32 {
	return uint32(f.Epoch()) // want `converted to uint32`
}

func signedGeneration(n *tcpnet.Net) int64 {
	return int64(n.Generation()) // want `converted to int64`
}

// A same-width unsigned conversion loses nothing and stays silent.
func fullWidth(f *fabric.Fabric) uint64 {
	return uint64(f.Epoch())
}

func staleAcrossJoin(f *fabric.Fabric, rank int) bool {
	e := f.Epoch()
	_, _ = f.Join(rank)
	return e == f.Epoch() // want `captured before a blocking`
}

func staleAcrossRendezvous(n *tcpnet.Net) bool {
	g := n.Generation()
	_ = n.Rendezvous()
	return g < n.Generation() // want `captured before a blocking`
}

// Comparing before the blocking call is fine: the capture is still fresh.
func freshBeforeBlocking(f *fabric.Fabric, rank int) {
	e := f.Epoch()
	if e == 0 {
		return
	}
	_, _ = f.Join(rank)
}

// Re-reading the epoch on both sides needs no capture at all.
func freshBothSides(f *fabric.Fabric, rank int) bool {
	_, _ = f.Join(rank)
	return f.Epoch() == f.Epoch()
}

// Blocking on a non-malt receiver (a WaitGroup) mints no epoch.
func nonMaltWait(f *fabric.Fabric) bool {
	e := f.Epoch()
	var wg sync.WaitGroup
	wg.Wait()
	return e == f.Epoch()
}

// Epoch methods on non-malt types are not the membership epoch.
type fakeClock struct{}

func (fakeClock) Epoch() uint64 { return 0 }

func otherEpoch(c fakeClock) int {
	return int(c.Epoch())
}

func annotatedIsSuppressed(f *fabric.Fabric, rank int) bool {
	e := f.Epoch()
	_, _ = f.Join(rank)
	return e == f.Epoch() //maltlint:allow epochcmp -- fixture: deliberate stale compare
}
