package lint

import (
	"go/ast"
	"path/filepath"
	"strings"
)

// RawSleep flags time.Sleep calls lexically inside for/range loops outside
// the two blessed backoff sites. A sleep in a retry or poll loop is policy:
// it decides how hard the node hammers a flaky link and how stale an SSP
// rank lets itself get. That policy belongs in exactly two places — the
// node's bounded-retry backoff (internal/dstorm/retry.go) and the SSP
// stall poll (internal/consistency/consistency.go) — where it is
// configurable, deadline-bounded, and counted in RetryStats/stall timers.
// A raw sleep anywhere else is an invisible, unconfigurable, untestable
// backoff. Sleeps that are not loop-driven (modeled network delay, injected
// compute jitter) are not flagged; a sleep inside a closure is attributed
// to the closure, not to a loop that happens to enclose the literal.
var RawSleep = &Analyzer{
	Name: "rawsleep",
	Doc:  "time.Sleep in retry/poll loops is reserved for the blessed backoff sites",
	Run:  runRawSleep,
}

// blessedSleepFiles may sleep inside loops: they are the two audited
// backoff implementations the rest of the module is supposed to reuse.
var blessedSleepFiles = []string{
	"internal/dstorm/retry.go",
	"internal/consistency/consistency.go",
}

func runRawSleep(pass *Pass) error {
	for _, f := range pass.Files {
		filename := filepath.ToSlash(pass.Fset.Position(f.Pos()).Filename)
		blessed := false
		for _, suffix := range blessedSleepFiles {
			if strings.HasSuffix(filename, suffix) {
				blessed = true
				break
			}
		}
		if blessed {
			continue
		}
		// Maintain the ancestor stack (ast.Inspect signals a pop with nil)
		// so loop depth can be measured up to the nearest function
		// boundary.
		var stack []ast.Node
		ast.Inspect(f, func(n ast.Node) bool {
			if n == nil {
				stack = stack[:len(stack)-1]
				return true
			}
			stack = append(stack, n)
			call, ok := n.(*ast.CallExpr)
			if !ok {
				return true
			}
			fn := funcFor(pass.Info, call)
			if fn == nil || fn.Pkg() == nil || fn.Pkg().Path() != "time" || fn.Name() != "Sleep" {
				return true
			}
			if loopDepth(stack) > 0 {
				pass.Reportf(call.Pos(),
					"time.Sleep in a loop outside the blessed backoff sites; route retries through dstorm.RetryPolicy or stalls through consistency.Policy.StallPoll")
			}
			return true
		})
	}
	return nil
}

// loopDepth counts enclosing for/range statements between the top of the
// stack and the nearest enclosing function literal or declaration.
func loopDepth(stack []ast.Node) int {
	depth := 0
	for i := len(stack) - 2; i >= 0; i-- { // -2: skip the call itself
		switch stack[i].(type) {
		case *ast.FuncLit, *ast.FuncDecl:
			return depth
		case *ast.ForStmt, *ast.RangeStmt:
			depth++
		}
	}
	return depth
}
