package lint

import (
	"go/ast"
	"go/token"
	"go/types"
	"sort"
	"strings"
)

// BarrierDiverge flags rank-divergent barrier entry. A cluster barrier
// releases only when every live rank of the group enters it, so any code
// path where entering the barrier depends on the caller's rank wedges the
// whole cluster: the ranks that entered wait forever for the ranks that
// never will. Three shapes are reported:
//
//   - a barrier-reaching call (directly, or through a callee carrying a
//     BarriersFact) under one arm of a rank-conditional branch with no
//     barrier on the sibling arm — unless that arm leaves the function,
//     in which case the rank is visibly gone rather than waiting elsewhere;
//   - rank-conditional arms that both reach barriers but with different
//     constant name sets — the ranks split across distinct barriers and
//     neither completes;
//   - a named-barrier call whose name argument is itself rank-dependent,
//     which puts every rank in a barrier of its own.
//
// Rank-dependence is syntactic: the branch condition (or name expression)
// mentions an identifier, field, or method whose name contains "rank".
var BarrierDiverge = &Analyzer{
	Name: "barrierdiverge",
	Doc:  "barrier entry must not depend on the caller's rank: every live rank must reach the same barrier",
	Run:  runBarrierDiverge,
}

func runBarrierDiverge(pass *Pass) error {
	for _, f := range pass.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			switch n := n.(type) {
			case *ast.IfStmt:
				checkRankBranch(pass, n)
			case *ast.CallExpr:
				checkRankName(pass, n)
			}
			return true
		})
	}
	return nil
}

// barrierSite is one barrier-reaching call found inside a branch arm.
type barrierSite struct {
	pos    token.Pos
	callee string
	names  []string // constant barrier names known for this site
}

// checkRankBranch analyzes one if statement whose condition is
// rank-dependent for asymmetric or divergently-named barrier entry.
func checkRankBranch(pass *Pass, ifs *ast.IfStmt) {
	if !rankDependent(pass.Info, ifs.Cond) {
		return
	}
	thenSites := barrierSitesIn(pass, ifs.Body)
	var elseSites []barrierSite
	var elseNode ast.Stmt = ifs.Else
	if elseNode != nil {
		elseSites = barrierSitesIn(pass, elseNode)
	}

	switch {
	case len(thenSites) > 0 && len(elseSites) == 0:
		// Skip when either arm leaves the function: a rank that exits is
		// visibly gone rather than waiting elsewhere, and when the barrier
		// arm itself returns the other ranks may pair with a barrier past
		// the if — cross-statement pairing is out of scope.
		if (elseNode == nil || !terminates(elseNode)) && !terminates(ifs.Body) {
			for _, s := range thenSites {
				pass.Reportf(s.pos,
					"barrier entry via %s depends on a rank condition (%s); ranks taking the other path never enter it and the barrier wedges — hoist the barrier out of the rank branch",
					s.callee, condString(pass, ifs.Cond))
			}
		}
	case len(elseSites) > 0 && len(thenSites) == 0:
		if !terminates(ifs.Body) && !terminates(elseNode) {
			for _, s := range elseSites {
				pass.Reportf(s.pos,
					"barrier entry via %s depends on a rank condition (%s); ranks taking the other path never enter it and the barrier wedges — hoist the barrier out of the rank branch",
					s.callee, condString(pass, ifs.Cond))
			}
		}
	case len(thenSites) > 0 && len(elseSites) > 0:
		tn, en := siteNames(thenSites), siteNames(elseSites)
		if len(tn) > 0 && len(en) > 0 && !sameStrings(tn, en) {
			pass.Reportf(ifs.Pos(),
				"rank-conditional branches enter barriers with different names (%s vs %s); the ranks split across distinct barriers and neither completes",
				strings.Join(tn, ","), strings.Join(en, ","))
		}
	}
}

// checkRankName flags a direct named-barrier call whose name argument is
// rank-dependent and non-constant.
func checkRankName(pass *Pass, call *ast.CallExpr) {
	fn := funcFor(pass.Info, call)
	if fn == nil || !barrierNames[fn.Name()] || fn.Pkg() == nil || !maltPackage(fn.Pkg().Path()) {
		return
	}
	sig, _ := fn.Type().(*types.Signature)
	if sig == nil || sig.Params().Len() == 0 || len(call.Args) == 0 {
		return
	}
	if b, ok := sig.Params().At(0).Type().Underlying().(*types.Basic); !ok || b.Info()&types.IsString == 0 {
		return
	}
	if _, isConst := constStringArg(pass.Info, call, 0); isConst {
		return
	}
	if rankDependent(pass.Info, call.Args[0]) {
		pass.Reportf(call.Args[0].Pos(),
			"barrier name is rank-dependent; every rank enters a barrier of its own and none completes — use one name shared by all ranks")
	}
}

// barrierSitesIn collects the barrier-reaching calls inside a branch arm,
// skipping goroutine and deferred closures (they run off this rank's
// barrier path) and nested rank-conditionals (reported on their own).
func barrierSitesIn(pass *Pass, arm ast.Stmt) []barrierSite {
	var sites []barrierSite
	inspectSkippingAsync(arm, func(n ast.Node) {
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return
		}
		fn := funcFor(pass.Info, call)
		if fn == nil {
			return
		}
		names, via, ok := barriersFn(fn, pass.Facts)
		if !ok {
			return
		}
		set := map[string]bool{}
		for _, nm := range names {
			set[nm] = true
		}
		if nm, isConst := constStringArg(pass.Info, call, 0); isConst && barrierNames[fn.Name()] {
			set = map[string]bool{nm: true} // the call site's own literal is exact
		}
		sorted := make([]string, 0, len(set))
		for nm := range set {
			sorted = append(sorted, nm)
		}
		sort.Strings(sorted)
		sites = append(sites, barrierSite{pos: call.Pos(), callee: shortKey(via), names: sorted})
	})
	return sites
}

// siteNames unions the constant names across sites; empty when any site
// has no known names (then the comparison would be guesswork).
func siteNames(sites []barrierSite) []string {
	set := map[string]bool{}
	for _, s := range sites {
		if len(s.names) == 0 {
			return nil
		}
		for _, nm := range s.names {
			set[nm] = true
		}
	}
	out := make([]string, 0, len(set))
	for nm := range set {
		out = append(out, nm)
	}
	sort.Strings(out)
	return out
}

func sameStrings(a, b []string) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

// rankDependent reports whether the expression mentions the caller's rank:
// an identifier, field, or method whose name contains "rank".
func rankDependent(info *types.Info, e ast.Expr) bool {
	found := false
	ast.Inspect(e, func(n ast.Node) bool {
		if found {
			return false
		}
		switch n := n.(type) {
		case *ast.Ident:
			if strings.Contains(strings.ToLower(n.Name), "rank") {
				found = true
			}
		case *ast.FuncLit:
			return false
		}
		return true
	})
	return found
}

// terminates reports whether a branch arm always leaves the enclosing
// scope — ends in return, panic, or an unconditional branch statement. A
// rank taking such an arm is visibly gone, not silently waiting elsewhere.
func terminates(s ast.Stmt) bool {
	switch s := s.(type) {
	case *ast.BlockStmt:
		return terminatesAll(s)
	case *ast.ReturnStmt, *ast.BranchStmt:
		return true
	case *ast.ExprStmt:
		if call, ok := s.X.(*ast.CallExpr); ok {
			if id, ok := unparen(call.Fun).(*ast.Ident); ok && id.Name == "panic" {
				return true
			}
		}
	case *ast.IfStmt:
		if s.Else == nil {
			return false
		}
		return terminates(s.Body) && terminates(s.Else)
	}
	return false
}

func terminatesAll(b *ast.BlockStmt) bool {
	if len(b.List) == 0 {
		return false
	}
	return terminates(b.List[len(b.List)-1])
}

// condString renders a branch condition compactly for diagnostics.
func condString(pass *Pass, e ast.Expr) string {
	return types.ExprString(e)
}

// shortKey trims the module prefix from an object key for readability:
// "malt/internal/dstorm.Cluster.Barrier" -> "dstorm.Cluster.Barrier".
func shortKey(key string) string {
	if i := strings.LastIndex(key, "/"); i >= 0 {
		return key[i+1:]
	}
	return key
}
