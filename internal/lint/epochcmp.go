package lint

import (
	"go/ast"
	"go/token"
	"go/types"
)

// EpochCmp guards the membership-epoch arithmetic that elastic membership
// rests on. Epochs are monotonically-increasing uint64 fence values: every
// frame carries one, receivers reject traffic below the sender's admission,
// and a rejoining rank is fenced from poisoning in-flight gathers only as
// long as epoch comparisons are exact and fresh. Two shapes defeat that
// silently:
//
//   - Narrowing or signing an Epoch()/Generation() value (int(e), uint32(e),
//     int64(e)): a truncated or sign-flipped epoch can compare below an
//     admission floor it actually exceeds, resurrecting zombie frames.
//   - Comparing an epoch captured *before* a blocking membership operation
//     (Barrier, Advance, Drain, Wait, Gather, GatherLatest, Commit,
//     Rendezvous, Join): any of these can span a death or a join, either of
//     which mints a new epoch, so the captured value is stale by the time
//     the comparison runs.
//
// Fresh comparisons (`n.Epoch() == want`) and full-width captures that are
// compared before any blocking call pass untouched.
var EpochCmp = &Analyzer{
	Name: "epochcmp",
	Doc:  "membership epochs must stay uint64 and must not be compared across blocking membership operations",
	Run:  runEpochCmp,
}

func runEpochCmp(pass *Pass) error {
	for _, f := range pass.Files {
		for _, decl := range f.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			checkEpochFunc(pass, fd.Body)
		}
	}
	return nil
}

func checkEpochFunc(pass *Pass, body *ast.BlockStmt) {
	// First sweep: narrowing conversions, epoch captures, blocking calls.
	captured := map[types.Object]token.Pos{} // epoch-valued local -> capture pos
	var blocking []token.Pos
	ast.Inspect(body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.CallExpr:
			if dst, ok := conversionTarget(pass, n); ok {
				if isEpochCall(pass, unparen(n.Args[0])) && !isUint64(dst) {
					pass.Reportf(n.Pos(),
						"membership epoch converted to %s; epochs are monotonically-increasing uint64 fences, and narrowing or signing one can resurrect stale-epoch traffic", dst)
				}
				return true
			}
			// Blocking detection is interprocedural: blessed membership
			// method names on malt types, plus any callee the facts pass
			// marked as transitively blocking (BlocksFact).
			if fn := funcFor(pass.Info, n); fn != nil {
				if _, blocks := blocksFn(fn, pass.Facts); blocks {
					blocking = append(blocking, n.Pos())
				}
			}
		case *ast.AssignStmt:
			if len(n.Lhs) != len(n.Rhs) {
				return true
			}
			for i, rhs := range n.Rhs {
				if !isEpochCall(pass, unparen(rhs)) {
					continue
				}
				if id, ok := n.Lhs[i].(*ast.Ident); ok {
					if obj := pass.Info.ObjectOf(id); obj != nil {
						captured[obj] = n.Pos()
					}
				}
			}
		}
		return true
	})
	if len(captured) == 0 || len(blocking) == 0 {
		return
	}
	// Second sweep: comparisons of a captured epoch after a blocking call.
	ast.Inspect(body, func(n ast.Node) bool {
		cmp, ok := n.(*ast.BinaryExpr)
		if !ok || !isComparisonOp(cmp.Op) {
			return true
		}
		for _, side := range []ast.Expr{cmp.X, cmp.Y} {
			id, ok := unparen(side).(*ast.Ident)
			if !ok {
				continue
			}
			capturedAt, ok := captured[pass.Info.ObjectOf(id)]
			if !ok {
				continue
			}
			for _, b := range blocking {
				if capturedAt < b && b < cmp.Pos() {
					pass.Reportf(cmp.Pos(),
						"epoch %s was captured before a blocking membership operation; a death or join may have minted a new epoch since — re-read Epoch() after the call", id.Name)
					return true
				}
			}
		}
		return true
	})
}

// isEpochCall reports whether e is a call to Epoch() or Generation() on a
// malt type (concrete transport or the fabric.Membership interface).
func isEpochCall(pass *Pass, e ast.Expr) bool {
	call, ok := e.(*ast.CallExpr)
	if !ok || len(call.Args) != 0 {
		return false
	}
	fn := funcFor(pass.Info, call)
	if fn == nil || (fn.Name() != "Epoch" && fn.Name() != "Generation") {
		return false
	}
	pkgPath, _, ok := recvTypeName(fn)
	return ok && maltPackage(pkgPath)
}

// conversionTarget returns the destination type when call is a type
// conversion with exactly one argument.
func conversionTarget(pass *Pass, call *ast.CallExpr) (types.Type, bool) {
	if len(call.Args) != 1 {
		return nil, false
	}
	if tv, ok := pass.Info.Types[call.Fun]; ok && tv.IsType() {
		return tv.Type, true
	}
	return nil, false
}

func isUint64(t types.Type) bool {
	b, ok := t.Underlying().(*types.Basic)
	return ok && (b.Kind() == types.Uint64 || b.Kind() == types.Uintptr)
}

func isComparisonOp(op token.Token) bool {
	switch op {
	case token.EQL, token.NEQ, token.LSS, token.GTR, token.LEQ, token.GEQ:
		return true
	}
	return false
}
