package lint

import (
	"go/ast"
	"go/constant"
	"go/types"
	"path/filepath"
	"strings"
)

// QueueLen flags vol.Options composite literals that pin the per-sender
// receive-queue depth to 1. A depth-1 ring holds exactly one update per
// sender, so every deposit overwrites the previous one: under ASP (or any
// gather that runs less often than peers scatter) GatherAllNew silently
// degrades to latest-only and the lost updates surface as ring overwrites,
// not errors. That trade is a legitimate *ablation* — quantifying queue
// depth is how the paper motivates its defaults — so files under the bench
// harness (internal/bench/) and files named like ablations are exempt;
// anywhere else the depth must come from configuration, or the site must
// carry an audited //maltlint:allow queuelen annotation.
var QueueLen = &Analyzer{
	Name: "queuelen",
	Doc:  "vol.Options{QueueLen: 1} outside ablation files silently drops updates",
	Run:  runQueueLen,
}

// queueLenExemptDirs are path fragments whose files may pin QueueLen: 1 —
// the ablation/benchmark harness, where depth-1 rings are the experiment.
var queueLenExemptDirs = []string{
	"internal/bench/",
}

func runQueueLen(pass *Pass) error {
	for _, f := range pass.Files {
		filename := filepath.ToSlash(pass.Fset.Position(f.Pos()).Filename)
		if queueLenExempt(filename) {
			continue
		}
		ast.Inspect(f, func(n ast.Node) bool {
			lit, ok := n.(*ast.CompositeLit)
			if !ok {
				return true
			}
			if !isVolOptions(pass, lit) {
				return true
			}
			if expr := queueLenField(lit); expr != nil && isConstOne(pass, expr) {
				pass.Reportf(expr.Pos(),
					"vol.Options{QueueLen: 1} gives each sender a depth-1 receive ring that overwrites all but the newest update; leave QueueLen at the default (or move this into an ablation under internal/bench)")
			}
			return true
		})
	}
	return nil
}

func queueLenExempt(filename string) bool {
	for _, dir := range queueLenExemptDirs {
		if strings.Contains(filename, dir) {
			return true
		}
	}
	return strings.Contains(filepath.Base(filename), "ablation")
}

// isVolOptions reports whether the composite literal's type is
// malt/internal/vol.Options (possibly through an alias or &-literal).
func isVolOptions(pass *Pass, lit *ast.CompositeLit) bool {
	tv, ok := pass.Info.Types[lit]
	if !ok || tv.Type == nil {
		return false
	}
	named, ok := derefNamed(tv.Type)
	if !ok || named.Obj().Pkg() == nil {
		return false
	}
	return named.Obj().Pkg().Path() == "malt/internal/vol" && named.Obj().Name() == "Options"
}

// derefNamed unwraps a pointer and returns the named type underneath.
func derefNamed(t types.Type) (*types.Named, bool) {
	if ptr, ok := t.(*types.Pointer); ok {
		t = ptr.Elem()
	}
	named, ok := types.Unalias(t).(*types.Named)
	return named, ok
}

// queueLenField returns the expression assigned to the QueueLen field, for
// both keyed and positional literals (QueueLen is field 0), or nil.
func queueLenField(lit *ast.CompositeLit) ast.Expr {
	for i, elt := range lit.Elts {
		kv, keyed := elt.(*ast.KeyValueExpr)
		if !keyed {
			if i == 0 {
				return elt
			}
			continue
		}
		if key, ok := kv.Key.(*ast.Ident); ok && key.Name == "QueueLen" {
			return kv.Value
		}
	}
	return nil
}

// isConstOne reports whether the expression is the integer constant 1.
func isConstOne(pass *Pass, expr ast.Expr) bool {
	tv, ok := pass.Info.Types[expr]
	if !ok || tv.Value == nil {
		return false
	}
	v, exact := constant.Int64Val(constant.ToInt(tv.Value))
	return exact && v == 1
}
