package lint

import (
	"bytes"
	"encoding/json"
	"fmt"
	"go/ast"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"io"
	"os"
	"os/exec"
	"path/filepath"
	"sort"
	"strings"
	"sync"
)

// Package is one parsed, type-checked analysis unit. A module package
// yields up to three units: the plain package, its test variant (non-test
// plus in-package _test.go files, compiled as one package the way `go
// test` does), and its external _test package.
type Package struct {
	// Path is the import path ("malt/internal/fabric"); external test
	// packages carry the conventional "_test" suffix.
	Path string
	// Dir is the package directory on disk.
	Dir string
	// Fset maps positions for Files.
	Fset *token.FileSet
	// Files are the parsed Go files of this unit.
	Files []*ast.File
	// Types is the type-checked package.
	Types *types.Package
	// Info holds the type information the analyzers consume.
	Info *types.Info
	// Test marks test units (the in-package variant or an external _test
	// package).
	Test bool
	// ReportFiles, when non-nil, restricts diagnostics to these files
	// (keyed by full filename). The test variant re-type-checks the plain
	// files for context but only its _test.go findings are new.
	ReportFiles map[string]bool
}

// listedPackage is the subset of `go list -json` output the loader needs.
type listedPackage struct {
	ImportPath   string
	Dir          string
	Export       string
	GoFiles      []string
	Imports      []string
	TestGoFiles  []string
	XTestGoFiles []string
}

// Loader type-checks packages of the enclosing module without any module
// downloads: dependencies are imported from compiler export data produced
// by `go list -export`, which works offline because this module has none
// outside the standard library. It deliberately avoids
// golang.org/x/tools/go/packages so that maltlint builds with the standard
// library alone.
type Loader struct {
	dir  string // module root (where go list runs)
	fset *token.FileSet
	imp  types.Importer // shared gc-export-data importer (identity cache)

	mu   sync.Mutex
	meta map[string]*listedPackage // import path -> metadata (with export data)
}

// NewLoader prepares a loader rooted at dir (the module root or any
// directory inside it). patterns name the packages whose dependency
// closure must be importable; "./..." covers the whole module.
func NewLoader(dir string, patterns ...string) (*Loader, error) {
	if len(patterns) == 0 {
		patterns = []string{"./..."}
	}
	l := &Loader{
		dir:  dir,
		fset: token.NewFileSet(),
		meta: map[string]*listedPackage{},
	}
	// A single importer instance so every package sees the same
	// *types.Package for each dependency (type identity is pointer
	// identity across go/types).
	l.imp = importer.ForCompiler(l.fset, "gc", func(p string) (io.ReadCloser, error) {
		meta, err := l.exportFor(p)
		if err != nil {
			return nil, err
		}
		return os.Open(meta.Export)
	})
	if err := l.list(patterns, true); err != nil {
		return nil, err
	}
	return l, nil
}

// Fset returns the loader's shared file set.
func (l *Loader) Fset() *token.FileSet { return l.fset }

// list runs `go list` and folds the results into l.meta. With deps it adds
// -deps -export so every transitive dependency gets export data.
func (l *Loader) list(patterns []string, deps bool) error {
	args := []string{"list", "-json=ImportPath,Dir,Export,GoFiles,Imports,TestGoFiles,XTestGoFiles"}
	if deps {
		args = append(args, "-deps", "-export")
	}
	args = append(args, patterns...)
	cmd := exec.Command("go", args...)
	cmd.Dir = l.dir
	var stderr bytes.Buffer
	cmd.Stderr = &stderr
	out, err := cmd.Output()
	if err != nil {
		return fmt.Errorf("lint: go %s: %v\n%s", strings.Join(args, " "), err, stderr.String())
	}
	dec := json.NewDecoder(bytes.NewReader(out))
	l.mu.Lock()
	defer l.mu.Unlock()
	for {
		var p listedPackage
		if err := dec.Decode(&p); err == io.EOF {
			break
		} else if err != nil {
			return fmt.Errorf("lint: decoding go list output: %w", err)
		}
		q := p
		if prev, ok := l.meta[p.ImportPath]; !ok || (prev.Export == "" && p.Export != "") {
			l.meta[q.ImportPath] = &q
		}
	}
	return nil
}

// Targets resolves package patterns (relative to the loader's root) to the
// sorted import paths of matching packages.
func (l *Loader) Targets(patterns ...string) ([]string, error) {
	if len(patterns) == 0 {
		patterns = []string{"./..."}
	}
	args := append([]string{"list"}, patterns...)
	cmd := exec.Command("go", args...)
	cmd.Dir = l.dir
	var stderr bytes.Buffer
	cmd.Stderr = &stderr
	out, err := cmd.Output()
	if err != nil {
		return nil, fmt.Errorf("lint: go list %s: %v\n%s", strings.Join(patterns, " "), err, stderr.String())
	}
	var paths []string
	for _, line := range strings.Split(strings.TrimSpace(string(out)), "\n") {
		if line = strings.TrimSpace(line); line != "" {
			paths = append(paths, line)
		}
	}
	sort.Strings(paths)
	return paths, nil
}

// Import implements types.Importer over export data, making Loader usable
// as the Importer for from-source type-checking of target packages.
func (l *Loader) Import(path string) (*types.Package, error) {
	if path == "unsafe" {
		return types.Unsafe, nil
	}
	return l.imp.Import(path)
}

// exportFor returns metadata with export data for an import path, listing
// it on demand when it was not in the initial closure (for example a
// standard-library package only a test fixture imports).
func (l *Loader) exportFor(path string) (*listedPackage, error) {
	l.mu.Lock()
	meta, ok := l.meta[path]
	l.mu.Unlock()
	if ok && meta.Export != "" {
		return meta, nil
	}
	if err := l.list([]string{path}, true); err != nil {
		return nil, err
	}
	l.mu.Lock()
	meta, ok = l.meta[path]
	l.mu.Unlock()
	if !ok || meta.Export == "" {
		return nil, fmt.Errorf("lint: no export data for %q", path)
	}
	return meta, nil
}

// LoadPackage parses and type-checks one module package by import path.
func (l *Loader) LoadPackage(importPath string) (*Package, error) {
	meta, err := l.metaFor(importPath)
	if err != nil {
		return nil, err
	}
	files := make([]string, len(meta.GoFiles))
	for i, f := range meta.GoFiles {
		files[i] = filepath.Join(meta.Dir, f)
	}
	return l.load(importPath, meta.Dir, files)
}

// meta returns the loader's metadata for an import path, listing it on
// demand.
func (l *Loader) metaFor(importPath string) (*listedPackage, error) {
	l.mu.Lock()
	m, ok := l.meta[importPath]
	l.mu.Unlock()
	if ok {
		return m, nil
	}
	if err := l.list([]string{importPath}, true); err != nil {
		return nil, err
	}
	l.mu.Lock()
	m, ok = l.meta[importPath]
	l.mu.Unlock()
	if !ok {
		return nil, fmt.Errorf("lint: unknown package %q", importPath)
	}
	return m, nil
}

// HasTests reports whether the package has in-package and/or external
// _test.go files.
func (l *Loader) HasTests(importPath string) (inPackage, external bool) {
	if m, err := l.metaFor(importPath); err == nil {
		return len(m.TestGoFiles) > 0, len(m.XTestGoFiles) > 0
	}
	return false, false
}

// Imports returns the import paths the package depends on.
func (l *Loader) Imports(importPath string) []string {
	if m, err := l.metaFor(importPath); err == nil {
		return m.Imports
	}
	return nil
}

// LoadPackageTest parses and type-checks a package's test variant: the
// plain Go files plus the in-package _test.go files, compiled together the
// way `go test` builds them. Imports (including test-only imports) resolve
// against export data. ReportFiles is set to the _test.go files — the
// plain files were already analyzed as the base unit.
func (l *Loader) LoadPackageTest(importPath string) (*Package, error) {
	meta, err := l.metaFor(importPath)
	if err != nil {
		return nil, err
	}
	if len(meta.TestGoFiles) == 0 {
		return nil, fmt.Errorf("lint: %s has no in-package test files", importPath)
	}
	files := make([]string, 0, len(meta.GoFiles)+len(meta.TestGoFiles))
	report := make(map[string]bool, len(meta.TestGoFiles))
	for _, f := range meta.GoFiles {
		files = append(files, filepath.Join(meta.Dir, f))
	}
	for _, f := range meta.TestGoFiles {
		name := filepath.Join(meta.Dir, f)
		files = append(files, name)
		report[name] = true
	}
	pkg, err := l.load(importPath, meta.Dir, files)
	if err != nil {
		return nil, err
	}
	pkg.Test = true
	pkg.ReportFiles = report
	return pkg, nil
}

// LoadXTest parses and type-checks a package's external test package (the
// "pkg_test" compilation unit). Its import of the base package resolves
// against the base package's export data; external test files that reach
// for test-variant-only identifiers (export_test.go helpers) are not
// supported by this loader and fail to type-check with a clear error.
func (l *Loader) LoadXTest(importPath string) (*Package, error) {
	meta, err := l.metaFor(importPath)
	if err != nil {
		return nil, err
	}
	if len(meta.XTestGoFiles) == 0 {
		return nil, fmt.Errorf("lint: %s has no external test files", importPath)
	}
	files := make([]string, 0, len(meta.XTestGoFiles))
	for _, f := range meta.XTestGoFiles {
		files = append(files, filepath.Join(meta.Dir, f))
	}
	pkg, err := l.load(importPath+"_test", meta.Dir, files)
	if err != nil {
		return nil, err
	}
	pkg.Test = true
	return pkg, nil
}

// LoadDir parses and type-checks every .go file in dir as a single package
// with the given import path. Test fixtures load through here; their
// imports resolve against the module's export data.
func (l *Loader) LoadDir(dir, importPath string) (*Package, error) {
	entries, err := os.ReadDir(dir)
	if err != nil {
		return nil, err
	}
	var files []string
	for _, e := range entries {
		if !e.IsDir() && strings.HasSuffix(e.Name(), ".go") {
			files = append(files, filepath.Join(dir, e.Name()))
		}
	}
	if len(files) == 0 {
		return nil, fmt.Errorf("lint: no Go files in %s", dir)
	}
	return l.load(importPath, dir, files)
}

func (l *Loader) load(importPath, dir string, filenames []string) (*Package, error) {
	var files []*ast.File
	for _, name := range filenames {
		f, err := parser.ParseFile(l.fset, name, nil, parser.ParseComments)
		if err != nil {
			return nil, err
		}
		files = append(files, f)
	}
	info := &types.Info{
		Types:      map[ast.Expr]types.TypeAndValue{},
		Defs:       map[*ast.Ident]types.Object{},
		Uses:       map[*ast.Ident]types.Object{},
		Selections: map[*ast.SelectorExpr]*types.Selection{},
		Scopes:     map[ast.Node]*types.Scope{},
	}
	conf := types.Config{Importer: l}
	pkg, err := conf.Check(importPath, l.fset, files, info)
	if err != nil {
		return nil, fmt.Errorf("lint: type-checking %s: %w", importPath, err)
	}
	return &Package{
		Path:  importPath,
		Dir:   dir,
		Fset:  l.fset,
		Files: files,
		Types: pkg,
		Info:  info,
	}, nil
}
