package lint

import (
	"go/ast"
	"go/token"
	"go/types"
)

// BufRetain enforces the one-sided donation contract: a slice handed to
// the fabric — directly via fabric.Write/WriteBatch, through a Scatter, or
// through ANY callee the facts pass marked as retaining that parameter —
// is the transport's to read until the enclosing Drain/Flush/Barrier. The
// paper's receiver never runs code, and with the async send pipeline the
// sender's transport may serialize the buffer microseconds after the call
// returns; today's simulated fabric happens to copy eagerly, but the
// contract (like a real RDMA post) does not promise it. In the donation
// window the analyzer flags:
//
//   - mutation: an element store (buf[i] = x), copy(buf, ...), or an
//     append through the buffer, any of which can interleave with the
//     transport's read and serialize a torn update;
//   - re-scatter: donating the same buffer again (including around a loop
//     back edge) without an intervening drain — every queued write then
//     races the next one's reuse;
//   - returning the buffer, which hands a live wire buffer to a caller
//     that has no way to know it must not touch it.
//
// A Drain, Flush, or Barrier on any malt value closes the window (the
// pipeline's explicit flush points and the BSP barrier both guarantee the
// fabric is done with every queued buffer). The analysis is per-function
// and flow-ordered like lockedscatter: branches are tracked separately and
// merged, loop bodies are walked twice so a donation reaching the back
// edge meets its own next iteration, and closures are their own functions.
var BufRetain = &Analyzer{
	Name: "bufretain",
	Doc:  "a slice handed to the fabric must not be mutated, re-scattered, or returned before the enclosing Drain/Flush/Barrier",
	Run:  runBufRetain,
}

// drainNames close every open donation window when invoked on a malt
// value: all of them guarantee the transport has consumed queued buffers.
var drainNames = map[string]bool{
	"Drain": true, "Flush": true, "Barrier": true, "creationBarrier": true,
}

func runBufRetain(pass *Pass) error {
	for _, f := range pass.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			switch n := n.(type) {
			case *ast.FuncDecl:
				if n.Body != nil {
					w := &retainWalker{pass: pass, reported: map[token.Pos]bool{}}
					w.block(n.Body.List, donationSet{})
				}
			case *ast.FuncLit:
				w := &retainWalker{pass: pass, reported: map[token.Pos]bool{}}
				w.block(n.Body.List, donationSet{})
			}
			return true
		})
	}
	return nil
}

// donationSet maps a donated buffer's base object to where it was donated.
type donationSet map[types.Object]token.Pos

func (ds donationSet) clone() donationSet {
	out := make(donationSet, len(ds))
	for k, v := range ds {
		out[k] = v
	}
	return out
}

type retainWalker struct {
	pass     *Pass
	reported map[token.Pos]bool // dedup across the second loop-body walk
}

func (w *retainWalker) reportf(pos token.Pos, format string, args ...any) {
	if w.reported[pos] {
		return
	}
	w.reported[pos] = true
	w.pass.Reportf(pos, format, args...)
}

// block walks stmts in source order threading the donation set through.
func (w *retainWalker) block(stmts []ast.Stmt, donated donationSet) donationSet {
	for _, s := range stmts {
		donated = w.stmt(s, donated)
	}
	return donated
}

func (w *retainWalker) stmt(s ast.Stmt, donated donationSet) donationSet {
	switch s := s.(type) {
	case *ast.ExprStmt:
		w.scan(s.X, donated)
	case *ast.AssignStmt:
		for _, e := range s.Rhs {
			w.scan(e, donated)
		}
		for i, lhs := range s.Lhs {
			w.checkWrite(lhs, donated)
			// Reassigning the variable itself re-points it: the donated
			// memory stays live inside the fabric, but this name no longer
			// aliases it — unless the RHS appends through it, which may
			// write the donated backing array in place (already reported
			// by scan). Either way the name stops being tracked.
			if obj := baseObject(w.pass.Info, lhs); obj != nil {
				if _, ok := donated[obj]; ok && isWholeVar(lhs) && i < len(s.Rhs) {
					delete(donated, obj)
				}
			}
		}
	case *ast.ReturnStmt:
		for _, e := range s.Results {
			w.scan(e, donated)
			if obj := baseObject(w.pass.Info, e); obj != nil && isWholeVar(e) {
				if pos, ok := donated[obj]; ok {
					w.reportf(e.Pos(),
						"%s was handed to the fabric at %s and is returned before a Drain/Flush/Barrier; the transport may still serialize it — drain first or return a copy",
						objName(obj), w.pass.Fset.Position(pos))
				}
			}
		}
		return donated
	case *ast.DeferStmt, *ast.GoStmt:
		// Deferred calls run at return time, spawned goroutines on their
		// own schedule; their closure bodies are walked separately.
	case *ast.DeclStmt:
		if gd, ok := s.Decl.(*ast.GenDecl); ok {
			for _, spec := range gd.Specs {
				if vs, ok := spec.(*ast.ValueSpec); ok {
					for _, e := range vs.Values {
						w.scan(e, donated)
					}
				}
			}
		}
	case *ast.LabeledStmt:
		return w.stmt(s.Stmt, donated)
	case *ast.BlockStmt:
		return w.block(s.List, donated)
	case *ast.IfStmt:
		if s.Init != nil {
			donated = w.stmt(s.Init, donated)
		}
		w.scan(s.Cond, donated)
		bodyOut := w.block(s.Body.List, donated.clone())
		elseOut := donated.clone()
		if s.Else != nil {
			elseOut = w.stmt(s.Else, donated.clone())
		}
		// Conservative union: a donation open on either path is open after.
		merged := bodyOut
		for k, v := range elseOut {
			if _, ok := merged[k]; !ok {
				merged[k] = v
			}
		}
		return merged
	case *ast.ForStmt:
		if s.Init != nil {
			donated = w.stmt(s.Init, donated)
		}
		if s.Cond != nil {
			w.scan(s.Cond, donated)
		}
		donated = w.loopBody(s, s.Body, donated)
	case *ast.RangeStmt:
		w.scan(s.X, donated)
		donated = w.loopBody(s, s.Body, donated)
	case *ast.SwitchStmt:
		if s.Init != nil {
			donated = w.stmt(s.Init, donated)
		}
		if s.Tag != nil {
			w.scan(s.Tag, donated)
		}
		return w.clauses(s.Body, donated)
	case *ast.TypeSwitchStmt:
		return w.clauses(s.Body, donated)
	case *ast.SelectStmt:
		return w.clauses(s.Body, donated)
	case *ast.SendStmt:
		w.scan(s.Chan, donated)
		w.scan(s.Value, donated)
	case *ast.IncDecStmt:
		w.checkWrite(s.X, donated)
	}
	return donated
}

// loopBody walks a loop body, then walks it once more when donations
// survive to the bottom: a buffer donated on iteration N is still live
// when iteration N+1 mutates or re-donates it, and only the second walk
// sees that back edge. Donations rooted in variables the loop itself
// declares (the range variable, a per-iteration local) do not ride the
// back edge — the next iteration rebinds them to fresh values. Reports
// are deduplicated by position.
func (w *retainWalker) loopBody(loop ast.Node, body *ast.BlockStmt, donated donationSet) donationSet {
	out := w.block(body.List, donated.clone())
	back := donationSet{}
	for obj, pos := range out {
		if obj.Pos() < loop.Pos() || obj.Pos() > loop.End() {
			back[obj] = pos
		}
	}
	if len(back) > 0 {
		w.block(body.List, back)
	}
	for k, v := range donated {
		if _, ok := out[k]; !ok {
			out[k] = v
		}
	}
	return out
}

func (w *retainWalker) clauses(body *ast.BlockStmt, donated donationSet) donationSet {
	merged := donated.clone()
	for _, clause := range body.List {
		var stmts []ast.Stmt
		switch c := clause.(type) {
		case *ast.CaseClause:
			stmts = c.Body
		case *ast.CommClause:
			stmts = c.Body
		}
		out := w.block(stmts, donated.clone())
		for k, v := range out {
			if _, ok := merged[k]; !ok {
				merged[k] = v
			}
		}
	}
	return merged
}

// checkWrite flags element stores through a donated buffer.
func (w *retainWalker) checkWrite(target ast.Expr, donated donationSet) {
	e := unparen(target)
	idx, ok := e.(*ast.IndexExpr)
	if !ok {
		return
	}
	obj := baseObject(w.pass.Info, idx.X)
	if obj == nil {
		return
	}
	if pos, ok := donated[obj]; ok {
		w.reportf(target.Pos(),
			"%s was handed to the fabric at %s and is mutated before a Drain/Flush/Barrier; the transport may serialize a torn update — drain first or write into a fresh buffer",
			objName(obj), w.pass.Fset.Position(pos))
	}
}

// scan inspects one expression for donations, drains, and mutating calls,
// without descending into closure literals.
func (w *retainWalker) scan(e ast.Expr, donated donationSet) {
	ast.Inspect(e, func(n ast.Node) bool {
		if _, ok := n.(*ast.FuncLit); ok {
			return false
		}
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		// Builtins that write through their slice argument.
		if id, isIdent := unparen(call.Fun).(*ast.Ident); isIdent {
			if _, isBuiltin := w.pass.Info.Uses[id].(*types.Builtin); isBuiltin {
				switch id.Name {
				case "copy":
					if len(call.Args) > 0 {
						w.checkMutatingArg(call.Args[0], donated, "copy writes through it")
					}
				case "append":
					if len(call.Args) > 0 {
						w.checkMutatingArg(call.Args[0], donated, "append may write its spare capacity in place")
					}
				}
				return true
			}
		}
		fn := funcFor(w.pass.Info, call)
		if fn == nil {
			return true
		}
		// A drain point closes every open window.
		if drainNames[fn.Name()] && fn.Pkg() != nil && maltPackage(fn.Pkg().Path()) {
			for k := range donated {
				delete(donated, k)
			}
			return true
		}
		// A donating call: arguments at retained positions enter the
		// window; if one is already in it, that is a re-scatter.
		for _, j := range retainedParams(fn, w.pass.Facts) {
			if j >= len(call.Args) {
				continue
			}
			obj := baseObject(w.pass.Info, call.Args[j])
			if obj == nil {
				continue
			}
			if pos, open := donated[obj]; open {
				w.reportf(call.Args[j].Pos(),
					"%s was already handed to the fabric at %s and is re-scattered via %s before a Drain/Flush/Barrier; queued writes race the reuse — drain between posts or double-buffer",
					objName(obj), w.pass.Fset.Position(pos), fn.Name())
			} else {
				donated[obj] = call.Args[j].Pos()
			}
		}
		return true
	})
}

func (w *retainWalker) checkMutatingArg(arg ast.Expr, donated donationSet, how string) {
	obj := baseObject(w.pass.Info, arg)
	if obj == nil {
		return
	}
	if pos, ok := donated[obj]; ok {
		w.reportf(arg.Pos(),
			"%s was handed to the fabric at %s and is mutated before a Drain/Flush/Barrier (%s); the transport may serialize a torn update",
			objName(obj), w.pass.Fset.Position(pos), how)
	}
}

// baseObject resolves the variable a slice expression is rooted in: the
// object behind `buf`, `buf[a:b]`, or `s.buf` (the field object). It
// returns nil for anything else — fresh call results, composite literals,
// conversions — which are untrackable and therefore never flagged.
func baseObject(info *types.Info, e ast.Expr) types.Object {
	e = unparen(e)
	for {
		switch t := e.(type) {
		case *ast.SliceExpr:
			e = unparen(t.X)
		default:
			goto resolved
		}
	}
resolved:
	switch t := e.(type) {
	case *ast.Ident:
		if t.Name == "_" {
			return nil
		}
		if v, ok := info.ObjectOf(t).(*types.Var); ok {
			return v
		}
	case *ast.SelectorExpr:
		if v, ok := info.ObjectOf(t.Sel).(*types.Var); ok {
			return v
		}
	}
	return nil
}

// isWholeVar reports whether e denotes a whole variable (possibly
// parenthesized), as opposed to an element, slice, or field of one.
func isWholeVar(e ast.Expr) bool {
	_, ok := unparen(e).(*ast.Ident)
	if !ok {
		_, ok = unparen(e).(*ast.SelectorExpr)
	}
	return ok
}

func objName(obj types.Object) string {
	return obj.Name()
}
