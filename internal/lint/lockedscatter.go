package lint

import (
	"go/ast"
	"go/token"
	"go/types"
)

// LockedScatter flags one-sided sends issued while a sync.Mutex/RWMutex
// acquired in the same function is still held. A scatter is a synchronous
// remote deposit: on the receiver it runs the segment's write handler,
// which takes the receiver's own locks, and under the TCP transport it
// blocks on the wire. Holding a local lock across it (a) serializes the
// fast path the one-sided design exists to keep lock-free, and (b) invites
// lock-order deadlock the moment the receiver's gather path or fault
// callbacks contend on the same lock. Every scatter implementation in this
// module snapshots state under its lock, unlocks, then writes — this
// analyzer holds user code (and future refactors of dstorm itself) to the
// same discipline.
//
// The tracking is lexical and per-function: locks acquired in branches are
// not propagated outward, unlocks in early-return branches do not leak,
// and closure bodies are analyzed with their own empty lock set (a closure
// runs later, on an unknown goroutine).
//
// Scatter recognition is interprocedural: a callee counts when it is a
// fabric write intrinsic or carries a ScattersFact derived by the facts
// pass — so a helper two packages away that eventually funnels into
// fabric.Write is caught under a lock just like a direct Segment.Scatter,
// with no hand-maintained method table.
var LockedScatter = &Analyzer{
	Name: "lockedscatter",
	Doc:  "one-sided scatters/writes must not run while a locally acquired mutex is held",
	Run:  runLockedScatter,
}

func runLockedScatter(pass *Pass) error {
	w := &lockWalker{pass: pass}
	for _, f := range pass.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			// Every function body starts with an empty lock set; nested
			// closures are picked up by this same traversal.
			switch n := n.(type) {
			case *ast.FuncDecl:
				if n.Body != nil {
					w.block(n.Body.List, lockSet{})
				}
			case *ast.FuncLit:
				w.block(n.Body.List, lockSet{})
			}
			return true
		})
	}
	return nil
}

// lockSet maps a lock receiver expression (as source text) to the position
// where it was acquired.
type lockSet map[string]token.Pos

func (ls lockSet) clone() lockSet {
	out := make(lockSet, len(ls))
	for k, v := range ls {
		out[k] = v
	}
	return out
}

type lockWalker struct {
	pass *Pass
}

// block walks stmts in source order threading the held-lock set through,
// and reports whether the block definitely terminates (returns/branches).
func (w *lockWalker) block(stmts []ast.Stmt, held lockSet) (lockSet, bool) {
	for _, s := range stmts {
		var terminated bool
		held, terminated = w.stmt(s, held)
		if terminated {
			return held, true
		}
	}
	return held, false
}

func (w *lockWalker) stmt(s ast.Stmt, held lockSet) (lockSet, bool) {
	switch s := s.(type) {
	case *ast.ExprStmt:
		w.scan(s.X, held)
	case *ast.AssignStmt:
		for _, e := range s.Rhs {
			w.scan(e, held)
		}
		for _, e := range s.Lhs {
			w.scan(e, held)
		}
	case *ast.DeclStmt:
		if gd, ok := s.Decl.(*ast.GenDecl); ok {
			for _, spec := range gd.Specs {
				if vs, ok := spec.(*ast.ValueSpec); ok {
					for _, e := range vs.Values {
						w.scan(e, held)
					}
				}
			}
		}
	case *ast.DeferStmt:
		// A deferred Unlock keeps the lock held for the rest of the
		// function, which is exactly what the held set already says; a
		// deferred scatter runs at return time when locks may differ, so
		// neither mutates the set. Closure bodies are walked separately.
	case *ast.GoStmt:
		// The spawned goroutine does not inherit the caller's critical
		// section; its closure body is walked separately with a fresh set.
	case *ast.ReturnStmt:
		for _, e := range s.Results {
			w.scan(e, held)
		}
		return held, true
	case *ast.BranchStmt:
		return held, true
	case *ast.LabeledStmt:
		return w.stmt(s.Stmt, held)
	case *ast.BlockStmt:
		return w.block(s.List, held)
	case *ast.IfStmt:
		if s.Init != nil {
			held, _ = w.stmt(s.Init, held)
		}
		w.scan(s.Cond, held)
		bodyHeld, bodyTerm := w.block(s.Body.List, held.clone())
		elseHeld, elseTerm := held.clone(), true
		if s.Else != nil {
			elseHeld, elseTerm = w.stmt(s.Else, held.clone())
		} else {
			elseTerm = false
		}
		// A lock released on every path we can still be on is released;
		// locks acquired inside branches are conservatively dropped.
		for key := range held {
			releasedBody := bodyTerm || !containsKey(bodyHeld, key)
			releasedElse := elseTerm || !containsKey(elseHeld, key)
			if releasedBody && releasedElse && !(bodyTerm && elseTerm) {
				delete(held, key)
			}
		}
		return held, bodyTerm && elseTerm
	case *ast.ForStmt:
		if s.Init != nil {
			held, _ = w.stmt(s.Init, held)
		}
		if s.Cond != nil {
			w.scan(s.Cond, held)
		}
		w.block(s.Body.List, held.clone())
	case *ast.RangeStmt:
		w.scan(s.X, held)
		w.block(s.Body.List, held.clone())
	case *ast.SwitchStmt:
		if s.Init != nil {
			held, _ = w.stmt(s.Init, held)
		}
		if s.Tag != nil {
			w.scan(s.Tag, held)
		}
		w.clauses(s.Body, held)
	case *ast.TypeSwitchStmt:
		w.clauses(s.Body, held)
	case *ast.SelectStmt:
		w.clauses(s.Body, held)
	case *ast.SendStmt:
		w.scan(s.Chan, held)
		w.scan(s.Value, held)
	case *ast.IncDecStmt:
		w.scan(s.X, held)
	}
	return held, false
}

func (w *lockWalker) clauses(body *ast.BlockStmt, held lockSet) {
	for _, clause := range body.List {
		switch c := clause.(type) {
		case *ast.CaseClause:
			w.block(c.Body, held.clone())
		case *ast.CommClause:
			w.block(c.Body, held.clone())
		}
	}
}

func containsKey(ls lockSet, key string) bool {
	_, ok := ls[key]
	return ok
}

// scan inspects one expression for lock transitions and scatter calls,
// without descending into closure literals.
func (w *lockWalker) scan(e ast.Expr, held lockSet) {
	ast.Inspect(e, func(n ast.Node) bool {
		if _, ok := n.(*ast.FuncLit); ok {
			return false
		}
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		fn := funcFor(w.pass.Info, call)
		if fn == nil {
			return true
		}
		if fn.Pkg() != nil && fn.Pkg().Path() == "sync" {
			sel, ok := unparen(call.Fun).(*ast.SelectorExpr)
			if !ok {
				return true
			}
			key := types.ExprString(sel.X)
			switch fn.Name() {
			case "Lock", "RLock":
				held[key] = call.Pos()
			case "Unlock", "RUnlock":
				delete(held, key)
			}
			return true
		}
		if len(held) == 0 {
			return true
		}
		if via, scatters := scattersFn(fn, w.pass.Facts); scatters {
			if _, typeName, isMethod := recvTypeName(fn); isMethod {
				for key, lockPos := range held {
					w.pass.Reportf(call.Pos(),
						"one-sided %s.%s while %s is still locked (acquired at %s); snapshot state, unlock, then scatter",
						typeName, fn.Name(), key, w.pass.Fset.Position(lockPos))
				}
			} else {
				for key, lockPos := range held {
					w.pass.Reportf(call.Pos(),
						"call to %s, which transitively scatters (via %s), while %s is still locked (acquired at %s); snapshot state, unlock, then scatter",
						fn.Name(), shortKey(via), key, w.pass.Fset.Position(lockPos))
				}
			}
		}
		return true
	})
}
