// Package lint is maltlint: a static-analysis suite that machine-checks the
// invariants MALT's correctness rests on but Go's type system cannot express.
//
// The eleven analyzers (see their files for details):
//
//   - erriscmp: sentinel fabric/dstorm/fault errors must be classified with
//     errors.Is, never == / != / switch — wrapped errors (every fabric error
//     is returned via fmt.Errorf("%w: ...")) make identity comparison a
//     silent misclassification.
//   - lockedscatter: one-sided scatters must not run while a mutex acquired
//     in the same function is still held — the receiver's gather path takes
//     its own locks, and a scatter is a synchronous remote deposit, so
//     holding local locks across it invites deadlock and reintroduces the
//     receiver-CPU involvement one-sided writes exist to avoid.
//   - atomicmix: a struct field is either always accessed through
//     sync/atomic or never — mixing atomic and plain loads/stores is a data
//     race the race detector only catches when the interleaving happens.
//   - foldpurity: gather-fold / OnDeath / liveness-hook closures run
//     concurrently with per-sender queue writes and other hooks; writes to
//     captured variables inside them must be lock-protected.
//   - rawsleep: time.Sleep inside retry/poll loops hides backoff policy
//     from the retry/staleness subsystems; only the two blessed backoff
//     sites (dstorm/retry.go, consistency.go's stall poll) may sleep raw.
//   - gatherdrop: scatter/gather error results must be handled — a bare
//     call, go/defer statement, or all-blank assignment silently severs the
//     failure detector from the wire errors that feed it.
//   - queuelen: vol.Options{QueueLen: 1} pins a depth-1 receive ring that
//     overwrites all but the newest update per sender; only ablation files
//     (internal/bench/) may do that deliberately.
//   - iterskew: SetIteration arguments must be able to advance — a
//     constant, a `%` wrap, or a top-level subtraction produces an
//     iteration stamp that SSP staleness and update ordering cannot trust.
//   - epochcmp: membership epochs (Epoch()/Generation()) must stay uint64 —
//     narrowing or signing one can resurrect stale-epoch traffic — and must
//     not be captured on one side of a blocking membership operation
//     (Barrier, Join, Rendezvous, ...) and compared on the other, where a
//     death or join may have minted a newer epoch. Blocking is recognized
//     interprocedurally through BlocksFact.
//   - bufretain: a slice handed to the fabric (fabric.Write/WriteBatch, a
//     Scatter, or any callee fact-marked as retaining it) is live until the
//     enclosing Drain/Flush/Barrier — mutating, re-scattering, or returning
//     it in that window lets the transport serialize a torn update.
//   - barrierdiverge: barrier reachability must be rank-symmetric — a
//     barrier (direct or via a fact-marked callee) under a rank-conditional
//     branch with no matching barrier on the other ranks' path, divergent
//     constant barrier names across the branches, or a barrier name computed
//     from the rank are the static signatures of a cross-rank wedge.
//
// The framework is intentionally dependency-free: it mirrors the shape of
// golang.org/x/tools/go/analysis (Analyzer, Pass, Diagnostic) — including
// its modular facts architecture (see facts.go) — on top of the standard
// library's go/ast + go/types, because this repository builds without
// third-party modules. Packages are analyzed in dependency order (see
// Runner in engine.go); each analysis both consumes facts about its imports
// and exports facts for its dependents, so interprocedural checks cross
// package boundaries without whole-program analysis. Test variants
// (in-package _test.go files and external _test packages) are loaded and
// analyzed too.
//
// False positives are suppressed with an explicit, audited annotation:
//
//	//maltlint:allow <analyzer>[,<analyzer>...] -- <reason>
//
// placed on the flagged line or the line directly above it. The analyzer
// name "all" suppresses every check for that line. Malformed annotations —
// an unknown analyzer name, or a missing "-- reason" clause — are hard
// maltlint errors and suppress nothing: a silently honored typo would
// disable the very check it names.
package lint

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"sort"
	"strings"
)

// An Analyzer describes one invariant check.
type Analyzer struct {
	// Name identifies the analyzer in diagnostics and allow annotations.
	Name string
	// Doc is a one-paragraph description of the invariant.
	Doc string
	// Run performs the check on one package, reporting findings via
	// pass.Reportf.
	Run func(pass *Pass) error
}

// A Diagnostic is one finding.
type Diagnostic struct {
	// Pos locates the finding.
	Pos token.Position
	// Message states the violation and the expected fix.
	Message string
	// Analyzer is the name of the analyzer that reported it.
	Analyzer string
}

func (d Diagnostic) String() string {
	return fmt.Sprintf("%s: %s (%s)", d.Pos, d.Message, d.Analyzer)
}

// A Pass connects one analyzer run to one type-checked package.
type Pass struct {
	Analyzer *Analyzer
	Fset     *token.FileSet
	Files    []*ast.File
	Pkg      *types.Package
	Info     *types.Info
	// Facts is the cross-package fact store shared by the whole run. The
	// built-in facts pass has already populated it for this package and
	// every malt dependency by the time an analyzer runs.
	Facts *FactStore

	reportFiles map[string]bool // nil = report everywhere
	diags       *[]Diagnostic
	allow       allowIndex
}

// ImportObjectFact copies the stored fact of fact's concrete type about obj
// into fact, reporting whether one existed.
func (p *Pass) ImportObjectFact(obj types.Object, fact Fact) bool {
	return p.Facts.Import(obj, fact)
}

// ExportObjectFact records fact about obj for downstream packages.
func (p *Pass) ExportObjectFact(obj types.Object, fact Fact) {
	p.Facts.Export(obj, fact)
}

// Reportf records a finding at pos unless an allow annotation suppresses it
// or the position falls in a file this pass only re-analyzes for context
// (non-test files of a test-variant unit, already reported by the base
// unit's pass).
func (p *Pass) Reportf(pos token.Pos, format string, args ...any) {
	position := p.Fset.Position(pos)
	if p.reportFiles != nil && !p.reportFiles[position.Filename] {
		return
	}
	if p.allow.allows(position, p.Analyzer.Name) {
		return
	}
	*p.diags = append(*p.diags, Diagnostic{
		Pos:      position,
		Message:  fmt.Sprintf(format, args...),
		Analyzer: p.Analyzer.Name,
	})
}

// Run applies every analyzer to the package and returns the surviving
// diagnostics sorted by position. facts carries analysis state across
// packages; nil gets a fresh store. The package's own facts are (re)derived
// first, so intra-package interprocedural checks work even in single-package
// runs, and malformed //maltlint:allow annotations are reported as hard
// errors.
func Run(pkg *Package, analyzers []*Analyzer, facts *FactStore) ([]Diagnostic, error) {
	if facts == nil {
		facts = NewFactStore()
	}
	ComputeFacts(pkg, facts)
	allow, diags := buildAllowIndex(pkg.Fset, pkg.Files)
	if pkg.ReportFiles != nil {
		kept := diags[:0]
		for _, d := range diags {
			if pkg.ReportFiles[d.Pos.Filename] {
				kept = append(kept, d)
			}
		}
		diags = kept
	}
	for _, a := range analyzers {
		pass := &Pass{
			Analyzer:    a,
			Fset:        pkg.Fset,
			Files:       pkg.Files,
			Pkg:         pkg.Types,
			Info:        pkg.Info,
			Facts:       facts,
			reportFiles: pkg.ReportFiles,
			diags:       &diags,
			allow:       allow,
		}
		if err := a.Run(pass); err != nil {
			return nil, fmt.Errorf("%s: %s: %w", a.Name, pkg.Path, err)
		}
	}
	sort.Slice(diags, func(i, j int) bool {
		a, b := diags[i].Pos, diags[j].Pos
		if a.Filename != b.Filename {
			return a.Filename < b.Filename
		}
		if a.Line != b.Line {
			return a.Line < b.Line
		}
		if a.Column != b.Column {
			return a.Column < b.Column
		}
		return diags[i].Analyzer < diags[j].Analyzer
	})
	return diags, nil
}

// All returns the maltlint analyzer suite.
func All() []*Analyzer {
	return []*Analyzer{ErrIsCmp, LockedScatter, AtomicMix, FoldPurity, RawSleep, GatherDrop, QueueLen, IterSkew, EpochCmp, BufRetain, BarrierDiverge, ResFeedback}
}

// analyzerNames returns the set of names an allow annotation may use.
func analyzerNames() map[string]bool {
	names := map[string]bool{"all": true}
	for _, a := range All() {
		names[a.Name] = true
	}
	return names
}

// allowIndex maps file -> line -> analyzer names suppressed on that line.
// An annotation suppresses its own line and the line below it, so both
// trailing comments and own-line comments work.
type allowIndex map[string]map[int]map[string]bool

func (ai allowIndex) allows(pos token.Position, analyzer string) bool {
	lines := ai[pos.Filename]
	if lines == nil {
		return false
	}
	for _, line := range []int{pos.Line, pos.Line - 1} {
		if set := lines[line]; set != nil && (set[analyzer] || set["all"]) {
			return true
		}
	}
	return false
}

const allowPrefix = "//maltlint:allow"

// allowDiagName is the pseudo-analyzer name malformed-annotation errors are
// reported under. It is not itself suppressible.
const allowDiagName = "allow"

// buildAllowIndex parses every //maltlint:allow annotation, returning the
// suppression index plus a hard-error diagnostic for each malformed
// annotation. Only well-formed annotations — every name known, a "--"
// separator, a non-empty reason — suppress anything: a typoed analyzer name
// or a bare allow silently honored would disable the very check it names
// with no audit trail.
func buildAllowIndex(fset *token.FileSet, files []*ast.File) (allowIndex, []Diagnostic) {
	ai := allowIndex{}
	var diags []Diagnostic
	valid := analyzerNames()
	badAllow := func(pos token.Position, format string, args ...any) {
		diags = append(diags, Diagnostic{
			Pos:      pos,
			Message:  fmt.Sprintf(format, args...),
			Analyzer: allowDiagName,
		})
	}
	for _, f := range files {
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				rest, ok := strings.CutPrefix(c.Text, allowPrefix)
				if !ok || (rest != "" && rest[0] != ' ' && rest[0] != '\t') {
					continue
				}
				pos := fset.Position(c.Pos())
				names, reason, hasReason := strings.Cut(strings.TrimSpace(rest), "--")
				names = strings.TrimSpace(names)
				reason = strings.TrimSpace(reason)
				if names == "" {
					badAllow(pos, "malformed //maltlint:allow: no analyzer names; write `//maltlint:allow <analyzer> -- <reason>`")
					continue
				}
				if !hasReason || reason == "" {
					badAllow(pos, "suppression without an audited reason: `//maltlint:allow %s` is missing the `-- <reason>` clause", names)
					continue
				}
				parsed, bad := []string{}, false
				for _, name := range strings.FieldsFunc(names, func(r rune) bool { return r == ',' || r == ' ' || r == '\t' }) {
					if !valid[name] {
						badAllow(pos, "//maltlint:allow names unknown analyzer %q (known: run `maltlint -list`); the suppression is NOT honored", name)
						bad = true
						continue
					}
					parsed = append(parsed, name)
				}
				if bad || len(parsed) == 0 {
					continue
				}
				lines := ai[pos.Filename]
				if lines == nil {
					lines = map[int]map[string]bool{}
					ai[pos.Filename] = lines
				}
				set := lines[pos.Line]
				if set == nil {
					set = map[string]bool{}
					lines[pos.Line] = set
				}
				for _, name := range parsed {
					set[name] = true
				}
			}
		}
	}
	return ai, diags
}

// maltPackage reports whether path is this module or one of its packages.
func maltPackage(path string) bool {
	return path == "malt" || strings.HasPrefix(path, "malt/")
}

// unparen strips redundant parentheses.
func unparen(e ast.Expr) ast.Expr {
	for {
		p, ok := e.(*ast.ParenExpr)
		if !ok {
			return e
		}
		e = p.X
	}
}

// funcFor resolves the *types.Func a call expression invokes, or nil for
// calls through function values, built-ins, and conversions.
func funcFor(info *types.Info, call *ast.CallExpr) *types.Func {
	switch fun := unparen(call.Fun).(type) {
	case *ast.SelectorExpr:
		if fn, ok := info.Uses[fun.Sel].(*types.Func); ok {
			return fn
		}
	case *ast.Ident:
		if fn, ok := info.Uses[fun].(*types.Func); ok {
			return fn
		}
	}
	return nil
}

// recvTypeName returns the (package path, type name) of a method's receiver,
// dereferencing a pointer receiver; ok is false for non-methods.
func recvTypeName(fn *types.Func) (pkgPath, typeName string, ok bool) {
	sig, _ := fn.Type().(*types.Signature)
	if sig == nil || sig.Recv() == nil {
		return "", "", false
	}
	t := sig.Recv().Type()
	if ptr, isPtr := t.(*types.Pointer); isPtr {
		t = ptr.Elem()
	}
	named, isNamed := t.(*types.Named)
	if !isNamed || named.Obj().Pkg() == nil {
		return "", "", false
	}
	return named.Obj().Pkg().Path(), named.Obj().Name(), true
}

var errorIface = types.Universe.Lookup("error").Type().Underlying().(*types.Interface)

// isErrorType reports whether t implements the error interface.
func isErrorType(t types.Type) bool {
	return t != nil && types.Implements(t, errorIface)
}
