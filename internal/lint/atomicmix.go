package lint

import (
	"go/ast"
	"go/token"
	"go/types"
)

// AtomicMix flags struct fields that the package accesses both through
// sync/atomic address-based calls (atomic.AddUint64(&s.n, 1)) and through
// plain loads/stores (s.n++). Mixed access is a data race that the race
// detector only reports when the racy interleaving actually happens in a
// test run; in MALT the symptom is worse than a crash — a torn or lost
// counter silently corrupts the traffic stats and retry accounting the
// convergence experiments key off. The fix is either the atomic.Uint64
// family (which makes plain access impossible) or a mutex; the analyzer
// exists to catch the transitional mistakes.
var AtomicMix = &Analyzer{
	Name: "atomicmix",
	Doc:  "struct fields must not mix sync/atomic and plain access",
	Run:  runAtomicMix,
}

func runAtomicMix(pass *Pass) error {
	// Pass 1: fields whose address feeds a sync/atomic call, and the exact
	// selector nodes consumed that way.
	atomicFields := map[*types.Var]token.Pos{}
	atomicNodes := map[*ast.SelectorExpr]bool{}
	for _, f := range pass.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok {
				return true
			}
			fn := funcFor(pass.Info, call)
			if fn == nil || fn.Pkg() == nil || fn.Pkg().Path() != "sync/atomic" {
				return true
			}
			if sig, _ := fn.Type().(*types.Signature); sig == nil || sig.Recv() != nil {
				// Methods of atomic.Int64 & friends: the field has an atomic
				// type, plain access is impossible, nothing to track.
				return true
			}
			if len(call.Args) == 0 {
				return true
			}
			// Every address-based sync/atomic function takes the address
			// first: atomic.AddUint64(&s.n, 1), atomic.LoadUint64(&s.n), ...
			unary, ok := unparen(call.Args[0]).(*ast.UnaryExpr)
			if !ok || unary.Op != token.AND {
				return true
			}
			sel, ok := unparen(unary.X).(*ast.SelectorExpr)
			if !ok {
				return true
			}
			if field := fieldOf(pass.Info, sel); field != nil {
				if _, seen := atomicFields[field]; !seen {
					atomicFields[field] = call.Pos()
				}
				atomicNodes[sel] = true
			}
			return true
		})
	}
	if len(atomicFields) == 0 {
		return nil
	}
	// Pass 2: any other access to those fields is a plain (racy) access.
	for _, f := range pass.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			sel, ok := n.(*ast.SelectorExpr)
			if !ok || atomicNodes[sel] {
				return true
			}
			field := fieldOf(pass.Info, sel)
			if field == nil {
				return true
			}
			if atomicPos, mixed := atomicFields[field]; mixed {
				pass.Reportf(sel.Pos(),
					"plain access to field %s, which is accessed atomically at %s; mixing is a data race — use the atomic.%s type or a mutex everywhere",
					field.Name(), pass.Fset.Position(atomicPos), suggestAtomicType(field.Type()))
			}
			return true
		})
	}
	return nil
}

// fieldOf returns the struct field object a selector expression denotes,
// or nil when the selector is not a field access.
func fieldOf(info *types.Info, sel *ast.SelectorExpr) *types.Var {
	if selection, ok := info.Selections[sel]; ok && selection.Kind() == types.FieldVal {
		if v, ok := selection.Obj().(*types.Var); ok {
			return v
		}
	}
	return nil
}

// suggestAtomicType names the sync/atomic wrapper type for a basic type.
func suggestAtomicType(t types.Type) string {
	if b, ok := t.Underlying().(*types.Basic); ok {
		switch b.Kind() {
		case types.Int32:
			return "Int32"
		case types.Int64, types.Int:
			return "Int64"
		case types.Uint32:
			return "Uint32"
		case types.Uint64, types.Uint, types.Uintptr:
			return "Uint64"
		case types.Bool:
			return "Bool"
		}
	}
	return "Value"
}
