package lint

import (
	"go/ast"
	"go/types"
)

// GatherDrop flags scatter/gather calls whose error result is discarded —
// a bare call statement, a go/defer statement, or an assignment that
// blanks every error position (`_, _ = seg.Scatter(...)`). A scatter or
// gather error is the failure detector's raw signal: a dropped one means a
// peer silently missed an update (or this rank folded a torn batch) and
// the K-strikes suspicion machinery never hears about it. With the async
// send pipeline the temptation grows — Scatter now returns after enqueue,
// so its error "never fires" — but the enqueue can still fail (closed
// pipeline, dead destination) and the sync fallback path still reports
// wire errors. Deliberate drops must be annotated with //maltlint:allow so
// the decision is visible at the call site.
var GatherDrop = &Analyzer{
	Name: "gatherdrop",
	Doc:  "scatter/gather error results must be handled, not discarded",
	Run:  runGatherDrop,
}

// gatherDropMethods are the scatter/gather entry points whose errors feed
// fault handling; matched by method name on any type in a malt package.
var gatherDropMethods = map[string]bool{
	"Scatter":       true,
	"ScatterTo":     true,
	"ScatterSparse": true,
	"Gather":        true,
	"GatherIf":      true,
	"GatherLatest":  true,
	"GatherWeak":    true,
}

func runGatherDrop(pass *Pass) error {
	for _, f := range pass.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			switch n := n.(type) {
			case *ast.ExprStmt:
				if call, ok := unparen(n.X).(*ast.CallExpr); ok {
					checkGatherDrop(pass, call, nil)
				}
			case *ast.GoStmt:
				checkGatherDrop(pass, n.Call, nil)
			case *ast.DeferStmt:
				checkGatherDrop(pass, n.Call, nil)
			case *ast.AssignStmt:
				if len(n.Rhs) == 1 {
					if call, ok := unparen(n.Rhs[0]).(*ast.CallExpr); ok {
						checkGatherDrop(pass, call, n.Lhs)
					}
				}
			}
			return true
		})
	}
	return nil
}

// checkGatherDrop reports call if it is a malt scatter/gather whose error
// results are all discarded. lhs is nil for statement-position calls
// (always a discard) and the assignment targets otherwise (a discard when
// every error-typed result position is the blank identifier).
func checkGatherDrop(pass *Pass, call *ast.CallExpr, lhs []ast.Expr) {
	fn := funcFor(pass.Info, call)
	if fn == nil || !gatherDropMethods[fn.Name()] {
		return
	}
	pkgPath, typeName, ok := recvTypeName(fn)
	if !ok || !maltPackage(pkgPath) {
		return
	}
	sig, _ := fn.Type().(*types.Signature)
	if sig == nil {
		return
	}
	results := sig.Results()
	errIdx := []int{}
	for i := 0; i < results.Len(); i++ {
		if isErrorType(results.At(i).Type()) {
			errIdx = append(errIdx, i)
		}
	}
	if len(errIdx) == 0 {
		return
	}
	if lhs != nil {
		// Single-value contexts (len mismatch) and partial assignments are
		// not this analyzer's business; only a full tuple assignment can
		// blank the error.
		if len(lhs) != results.Len() {
			return
		}
		for _, i := range errIdx {
			id, isIdent := unparen(lhs[i]).(*ast.Ident)
			if !isIdent || id.Name != "_" {
				return // the error is bound to a real variable
			}
		}
	}
	pass.Reportf(call.Pos(),
		"%s.%s error discarded; scatter/gather failures feed the suspicion machinery — handle the error or annotate the drop",
		typeName, fn.Name())
}
