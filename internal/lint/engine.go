package lint

import (
	"fmt"
	"sort"
	"strings"
)

// A Runner drives whole-module analysis: it resolves target patterns, walks
// the malt dependency closure in topological order, runs the built-in facts
// pass on every package (so downstream packages can import facts about
// their dependencies), runs the analyzers on the targets, and finally
// analyzes every target's test units — the in-package _test.go variant and
// the external _test package — against the completed fact universe.
//
// Dependencies outside the target set contribute facts only; diagnostics
// are reported for target packages (and their test files) alone.
type Runner struct {
	Loader    *Loader
	Analyzers []*Analyzer
	// Facts accumulates every fact exported during the run. It is created
	// on first use and can be inspected afterwards (tests assert on it).
	Facts *FactStore
	// SkipTests disables the test-variant and external-test units —
	// linttest uses this to build a facts-only universe cheaply.
	SkipTests bool
}

// NewRunner returns a Runner over the loader with the given analyzers.
func NewRunner(l *Loader, analyzers []*Analyzer) *Runner {
	return &Runner{Loader: l, Analyzers: analyzers, Facts: NewFactStore()}
}

// Run analyzes the packages matched by patterns plus, facts-only, their
// malt dependency closure, and returns the surviving diagnostics sorted by
// position.
func (r *Runner) Run(patterns ...string) ([]Diagnostic, error) {
	if r.Facts == nil {
		r.Facts = NewFactStore()
	}
	targets, err := r.Loader.Targets(patterns...)
	if err != nil {
		return nil, err
	}
	isTarget := map[string]bool{}
	for _, t := range targets {
		isTarget[t] = true
	}
	order, err := r.dependencyOrder(targets)
	if err != nil {
		return nil, err
	}

	var diags []Diagnostic
	run := func(pkg *Package) error {
		ds, err := Run(pkg, r.Analyzers, r.Facts)
		if err != nil {
			return err
		}
		diags = append(diags, ds...)
		return nil
	}

	// Phase 1: base packages in dependency order. Every package gets the
	// facts pass (Run calls ComputeFacts); only targets get analyzed.
	for _, path := range order {
		pkg, err := r.Loader.LoadPackage(path)
		if err != nil {
			return nil, err
		}
		if isTarget[path] {
			if err := run(pkg); err != nil {
				return nil, err
			}
		} else {
			ComputeFacts(pkg, r.Facts)
		}
	}

	// Phase 2: test units. They come after every base package — test code
	// may import any package in the module — and nothing imports them, so
	// their facts have no consumers and their order is irrelevant.
	if !r.SkipTests {
		for _, path := range targets {
			inPkg, external := r.Loader.HasTests(path)
			if inPkg {
				pkg, err := r.Loader.LoadPackageTest(path)
				if err != nil {
					return nil, err
				}
				if err := run(pkg); err != nil {
					return nil, err
				}
			}
			if external {
				pkg, err := r.Loader.LoadXTest(path)
				if err != nil {
					return nil, err
				}
				if err := run(pkg); err != nil {
					return nil, err
				}
			}
		}
	}

	sort.Slice(diags, func(i, j int) bool {
		a, b := diags[i].Pos, diags[j].Pos
		if a.Filename != b.Filename {
			return a.Filename < b.Filename
		}
		if a.Line != b.Line {
			return a.Line < b.Line
		}
		if a.Column != b.Column {
			return a.Column < b.Column
		}
		return diags[i].Analyzer < diags[j].Analyzer
	})
	return diags, nil
}

// dependencyOrder returns the targets plus their in-module dependency
// closure, topologically sorted so every package follows its imports.
func (r *Runner) dependencyOrder(targets []string) ([]string, error) {
	const (
		visiting = 1
		done     = 2
	)
	state := map[string]int{}
	var order []string
	var visit func(path string, chain []string) error
	visit = func(path string, chain []string) error {
		switch state[path] {
		case done:
			return nil
		case visiting:
			return fmt.Errorf("lint: import cycle: %s", strings.Join(append(chain, path), " -> "))
		}
		state[path] = visiting
		for _, imp := range r.Loader.Imports(path) {
			if samePackageUniverse(path, imp) {
				if err := visit(imp, append(chain, path)); err != nil {
					return err
				}
			}
		}
		state[path] = done
		order = append(order, path)
		return nil
	}
	for _, t := range targets {
		if err := visit(t, nil); err != nil {
			return nil, err
		}
	}
	return order, nil
}

// samePackageUniverse reports whether imp belongs to the same module
// universe as path — for the malt module proper, any malt package; for a
// foreign module under test (the loader also serves temp fixtures), any
// import sharing the first path element.
func samePackageUniverse(path, imp string) bool {
	if maltPackage(path) {
		return maltPackage(imp)
	}
	root, _, _ := strings.Cut(path, "/")
	iroot, _, _ := strings.Cut(imp, "/")
	return root != "" && root == iroot
}
