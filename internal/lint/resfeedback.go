package lint

import (
	"go/ast"
	"go/token"
	"go/types"
)

// ResFeedback guards the error-feedback compression contract
// (internal/compress): a compress.State owns one Plan and one residual
// vector per link, and Begin re-plans IN PLACE — it overwrites the Recon
// scratch and updates the destination's residual as a side effect. Slices
// obtained from the state therefore have a one-Begin lifetime:
//
//   - stale read: a Recon(), Residual(...) or EncodeRange(...) result read
//     after a later Begin aliases storage the re-plan already overwrote —
//     the reader sees the NEXT update's reconstruction (or a frame sliced
//     from it) and silently folds the wrong gradient;
//   - residual mutation: writing through a Residual(...) result edits the
//     live error-feedback accumulator behind the codec's back, breaking
//     the conservation invariant (shipped + residual == raw gradient) that
//     makes lossy compression converge — dropped mass must only ever move
//     between the residual and a frame, never vanish.
//
// The analysis is per-function and flow-ordered like bufretain: branches
// are tracked separately and merged, loop bodies are walked twice so
// scratch obtained before a back edge meets the next iteration's Begin,
// and re-pointing a variable stops tracking it. Copying out (copy(dst,
// recon), append([]float64(nil), recon...)) is the blessed escape and is
// never flagged.
var ResFeedback = &Analyzer{
	Name: "resfeedback",
	Doc:  "compression Recon/Residual/frame scratch is invalidated by the next Begin, and residuals are the codec's to mutate",
	Run:  runResFeedback,
}

const compressPkgPath = "malt/internal/compress"

// scratchKind distinguishes the three one-Begin-lifetime results.
type scratchInfo struct {
	kind     string    // "Recon", "Residual" or "EncodeRange"
	pos      token.Pos // where the scratch was obtained
	stale    bool      // a later Begin has re-planned the state
	beginPos token.Pos // the Begin that staled it
}

type scratchSet map[types.Object]scratchInfo

func (ss scratchSet) clone() scratchSet {
	out := make(scratchSet, len(ss))
	for k, v := range ss {
		out[k] = v
	}
	return out
}

func runResFeedback(pass *Pass) error {
	for _, f := range pass.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			switch n := n.(type) {
			case *ast.FuncDecl:
				if n.Body != nil {
					w := &scratchWalker{pass: pass, reported: map[token.Pos]bool{}}
					w.block(n.Body.List, scratchSet{})
				}
			case *ast.FuncLit:
				w := &scratchWalker{pass: pass, reported: map[token.Pos]bool{}}
				w.block(n.Body.List, scratchSet{})
			}
			return true
		})
	}
	return nil
}

type scratchWalker struct {
	pass     *Pass
	reported map[token.Pos]bool // dedup across the second loop-body walk
}

func (w *scratchWalker) reportf(pos token.Pos, format string, args ...any) {
	if w.reported[pos] {
		return
	}
	w.reported[pos] = true
	w.pass.Reportf(pos, format, args...)
}

// stateMethod returns the method name when call is a compress.State method
// from the scratch-producing or re-planning set.
func stateMethod(info *types.Info, call *ast.CallExpr) string {
	fn := funcFor(info, call)
	if fn == nil {
		return ""
	}
	switch fn.Name() {
	case "Begin", "Recon", "Residual", "EncodeRange":
	default:
		return ""
	}
	pkgPath, typeName, isMethod := recvTypeName(fn)
	if !isMethod || pkgPath != compressPkgPath || typeName != "State" {
		return ""
	}
	return fn.Name()
}

func (w *scratchWalker) block(stmts []ast.Stmt, scratch scratchSet) scratchSet {
	for _, s := range stmts {
		scratch = w.stmt(s, scratch)
	}
	return scratch
}

func (w *scratchWalker) stmt(s ast.Stmt, scratch scratchSet) scratchSet {
	switch s := s.(type) {
	case *ast.ExprStmt:
		w.scan(s.X, scratch)
	case *ast.AssignStmt:
		for _, e := range s.Rhs {
			w.scan(e, scratch)
		}
		for i, lhs := range s.Lhs {
			w.checkWrite(lhs, scratch)
			obj := baseObject(w.pass.Info, lhs)
			if obj == nil || !isWholeVar(lhs) {
				continue
			}
			// Re-pointing the name stops tracking it; re-pointing it at a
			// fresh scratch result starts a new one-Begin lifetime.
			delete(scratch, obj)
			if len(s.Rhs) == len(s.Lhs) {
				if call, ok := unparen(s.Rhs[i]).(*ast.CallExpr); ok {
					switch m := stateMethod(w.pass.Info, call); m {
					case "Recon", "Residual", "EncodeRange":
						scratch[obj] = scratchInfo{kind: m, pos: lhs.Pos()}
					}
				}
			}
		}
	case *ast.ReturnStmt:
		for _, e := range s.Results {
			w.scan(e, scratch)
		}
	case *ast.DeferStmt, *ast.GoStmt:
		// Closure bodies are walked as their own functions.
	case *ast.DeclStmt:
		if gd, ok := s.Decl.(*ast.GenDecl); ok {
			for _, spec := range gd.Specs {
				if vs, ok := spec.(*ast.ValueSpec); ok {
					for _, e := range vs.Values {
						w.scan(e, scratch)
					}
				}
			}
		}
	case *ast.LabeledStmt:
		return w.stmt(s.Stmt, scratch)
	case *ast.BlockStmt:
		return w.block(s.List, scratch)
	case *ast.IfStmt:
		if s.Init != nil {
			scratch = w.stmt(s.Init, scratch)
		}
		w.scan(s.Cond, scratch)
		bodyOut := w.block(s.Body.List, scratch.clone())
		elseOut := scratch.clone()
		if s.Else != nil {
			elseOut = w.stmt(s.Else, scratch.clone())
		}
		// Conservative union: stale on either path means stale after.
		merged := bodyOut
		for k, v := range elseOut {
			if prev, ok := merged[k]; !ok || (v.stale && !prev.stale) {
				merged[k] = v
			}
		}
		return merged
	case *ast.ForStmt:
		if s.Init != nil {
			scratch = w.stmt(s.Init, scratch)
		}
		if s.Cond != nil {
			w.scan(s.Cond, scratch)
		}
		scratch = w.loopBody(s, s.Body, scratch)
	case *ast.RangeStmt:
		w.scan(s.X, scratch)
		scratch = w.loopBody(s, s.Body, scratch)
	case *ast.SwitchStmt:
		if s.Init != nil {
			scratch = w.stmt(s.Init, scratch)
		}
		if s.Tag != nil {
			w.scan(s.Tag, scratch)
		}
		return w.clauses(s.Body, scratch)
	case *ast.TypeSwitchStmt:
		return w.clauses(s.Body, scratch)
	case *ast.SelectStmt:
		return w.clauses(s.Body, scratch)
	case *ast.SendStmt:
		w.scan(s.Chan, scratch)
		w.scan(s.Value, scratch)
	case *ast.IncDecStmt:
		w.checkWrite(s.X, scratch)
		w.scan(s.X, scratch)
	}
	return scratch
}

// loopBody walks a loop body twice when scratch rooted outside the loop
// survives to the bottom: only the second walk sees scratch from iteration
// N meet iteration N+1's Begin.
func (w *scratchWalker) loopBody(loop ast.Node, body *ast.BlockStmt, scratch scratchSet) scratchSet {
	out := w.block(body.List, scratch.clone())
	back := scratchSet{}
	for obj, info := range out {
		if obj.Pos() < loop.Pos() || obj.Pos() > loop.End() {
			back[obj] = info
		}
	}
	if len(back) > 0 {
		w.block(body.List, back)
	}
	for k, v := range scratch {
		if _, ok := out[k]; !ok {
			out[k] = v
		}
	}
	return out
}

func (w *scratchWalker) clauses(body *ast.BlockStmt, scratch scratchSet) scratchSet {
	merged := scratch.clone()
	for _, clause := range body.List {
		var stmts []ast.Stmt
		switch c := clause.(type) {
		case *ast.CaseClause:
			stmts = c.Body
		case *ast.CommClause:
			stmts = c.Body
		}
		out := w.block(stmts, scratch.clone())
		for k, v := range out {
			if prev, ok := merged[k]; !ok || (v.stale && !prev.stale) {
				merged[k] = v
			}
		}
	}
	return merged
}

// checkWrite flags element stores through a tracked Residual result: the
// residual is the codec's accumulator, not the caller's.
func (w *scratchWalker) checkWrite(target ast.Expr, scratch scratchSet) {
	idx, ok := unparen(target).(*ast.IndexExpr)
	if !ok {
		return
	}
	obj := baseObject(w.pass.Info, idx.X)
	if obj == nil {
		return
	}
	if info, tracked := scratch[obj]; tracked && info.kind == "Residual" {
		w.reportf(target.Pos(),
			"%s aliases the live error-feedback residual obtained at %s; mutating it breaks conservation (shipped + residual == raw gradient) — the residual is the codec's to update",
			objName(obj), w.pass.Fset.Position(info.pos))
	}
}

// scan inspects one expression for Begin re-plans and stale scratch reads,
// without descending into closure literals.
func (w *scratchWalker) scan(e ast.Expr, scratch scratchSet) {
	ast.Inspect(e, func(n ast.Node) bool {
		if _, ok := n.(*ast.FuncLit); ok {
			return false
		}
		if call, ok := n.(*ast.CallExpr); ok {
			if stateMethod(w.pass.Info, call) == "Begin" {
				for obj, info := range scratch {
					if !info.stale {
						info.stale = true
						info.beginPos = call.Pos()
						scratch[obj] = info
					}
				}
			}
			return true
		}
		id, ok := n.(*ast.Ident)
		if !ok {
			return true
		}
		obj, isVar := w.pass.Info.Uses[id].(*types.Var)
		if !isVar {
			return true
		}
		if info, tracked := scratch[obj]; tracked && info.stale {
			w.reportf(id.Pos(),
				"%s aliases compression scratch obtained at %s and is read after the Begin at %s re-planned the state; Begin overwrites the Recon/residual/frame storage in place — copy it out before the next Begin",
				objName(obj), w.pass.Fset.Position(info.pos), w.pass.Fset.Position(info.beginPos))
		}
		return true
	})
}
