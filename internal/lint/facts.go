package lint

import (
	"fmt"
	"go/ast"
	"go/constant"
	"go/types"
	"reflect"
	"sort"
	"sync"
)

// Facts are maltlint's cross-package currency, mirroring the modular facts
// architecture of golang.org/x/tools/go/analysis on the standard library
// alone. A fact is a durable, analyzer-independent statement about a
// package-level object ("this function transitively scatters", "this
// function retains its slice argument past return"), exported while a
// package is analyzed and imported by every downstream package that calls
// into it. Packages are analyzed in dependency order (see Runner), so by
// the time a consumer is checked, every fact about its imports exists.
//
// Where x/tools serializes facts alongside export data, maltlint keys them
// by stable object path (package path + receiver type + name) in an
// in-process store: the whole dependency closure is analyzed in one
// process, and string keys make facts immune to the pointer-identity split
// between source-checked packages and their export-data shadows.
//
// The built-in facts pass (ComputeFacts) runs before the analyzers on each
// package and derives four fact kinds bottom-up from a deliberately tiny
// intrinsic root set — the fabric write primitives and the documented
// scatter/blocking surface. Everything else, from dstorm.Segment.Scatter
// up through core.Context.Scatter, is derived, not hand-listed.

// A Fact is a durable statement about a package-level object. Concrete
// fact types are pointer-to-struct so ImportObjectFact can fill them in.
type Fact interface{ AFact() }

// ScattersFact marks a function that performs a one-sided scatter/write,
// directly or through any chain of callees. lockedscatter uses it to see a
// scatter two calls deep under a mutex; bufretain uses it to recognize
// re-scatters of a donated buffer.
type ScattersFact struct {
	// Via is the callee that made this function a scatterer — one step of
	// the derivation chain, for diagnostics.
	Via string
}

func (*ScattersFact) AFact() {}

func (f *ScattersFact) String() string { return "scatters(via " + f.Via + ")" }

// BlocksFact marks a function that can park its caller in a blocking
// membership operation (Barrier, Join, Gather, Drain, ...) — a window in
// which a death or join may mint a new membership epoch. epochcmp uses it
// to spot epoch comparisons that straddle such a call interprocedurally.
type BlocksFact struct {
	Via string
}

func (*BlocksFact) AFact() {}

func (f *BlocksFact) String() string { return "blocks(via " + f.Via + ")" }

// BarriersFact marks a function that transitively reaches a cluster
// barrier, with the constant barrier names observed on the way (empty for
// unnamed or dynamic names). barrierdiverge uses it to flag rank-conditional
// code that wedges some ranks in a barrier others never enter.
type BarriersFact struct {
	// Names are the constant barrier name literals reachable through this
	// function, sorted and deduplicated.
	Names []string
	Via   string
}

func (*BarriersFact) AFact() {}

func (f *BarriersFact) String() string { return fmt.Sprintf("barriers(%v via %s)", f.Names, f.Via) }

// RetainsFact marks a function that retains one or more of its slice
// parameters past return: the argument reaches the fabric (which may
// serialize it asynchronously under the one-sided contract) or is stored
// somewhere that outlives the call. bufretain treats passing a buffer to a
// retaining parameter exactly like passing it to fabric.Write.
type RetainsFact struct {
	// Params are the 0-based indices (receiver excluded) of the retained
	// slice parameters, sorted.
	Params []int
}

func (*RetainsFact) AFact() {}

func (f *RetainsFact) String() string { return fmt.Sprintf("retains(params %v)", f.Params) }

// ObjectKey returns the stable cross-package key for a package-level
// object: "pkgpath.Name" for functions and package-scope objects,
// "pkgpath.Type.Name" for methods. ok is false for objects facts cannot
// attach to (locals, closures, objects without a package).
func ObjectKey(obj types.Object) (key string, ok bool) {
	if obj == nil || obj.Pkg() == nil {
		return "", false
	}
	if fn, isFn := obj.(*types.Func); isFn {
		if pkgPath, typeName, isMethod := recvTypeName(fn); isMethod {
			return pkgPath + "." + typeName + "." + fn.Name(), true
		}
		return fn.Pkg().Path() + "." + fn.Name(), true
	}
	if obj.Parent() == obj.Pkg().Scope() {
		return obj.Pkg().Path() + "." + obj.Name(), true
	}
	return "", false
}

// A FactStore holds every fact exported so far, keyed by (object key, fact
// type). One store spans an entire Runner run; linttest shares one across
// all fixtures so fixture packages see facts about the real malt packages.
type FactStore struct {
	mu sync.RWMutex
	m  map[storeKey]Fact
}

type storeKey struct {
	obj string
	typ reflect.Type
}

// NewFactStore returns an empty store.
func NewFactStore() *FactStore {
	return &FactStore{m: map[storeKey]Fact{}}
}

// ExportKey records fact for the object key, merging with any previous
// fact of the same type, and reports whether the stored value changed —
// the fixed point in ComputeFacts iterates until no export changes
// anything. The merge must be monotone (information only accumulates) or
// the fixed point would not terminate: several declarations can share one
// key (every `func init()` in a package does), and if each overwrote the
// other's Via the store would flip forever.
func (s *FactStore) ExportKey(key string, fact Fact) bool {
	k := storeKey{key, reflect.TypeOf(fact)}
	s.mu.Lock()
	defer s.mu.Unlock()
	prev, ok := s.m[k]
	if !ok {
		s.m[k] = fact
		return true
	}
	merged, changed := mergeFacts(prev, fact)
	if changed {
		s.m[k] = merged
	}
	return changed
}

// mergeFacts folds next into prev monotonically. Existence facts
// (ScattersFact, BlocksFact) never change once present — Via is advisory,
// and the first derivation keeps it. Set-valued facts (BarriersFact names,
// RetainsFact params) grow by union and never shrink.
func mergeFacts(prev, next Fact) (Fact, bool) {
	switch p := prev.(type) {
	case *ScattersFact, *BlocksFact:
		return prev, false
	case *BarriersFact:
		n := next.(*BarriersFact)
		union, grew := unionSorted(p.Names, n.Names)
		if !grew {
			return prev, false
		}
		return &BarriersFact{Names: union, Via: p.Via}, true
	case *RetainsFact:
		n := next.(*RetainsFact)
		union, grew := unionSortedInts(p.Params, n.Params)
		if !grew {
			return prev, false
		}
		return &RetainsFact{Params: union}, true
	}
	if reflect.DeepEqual(prev, next) {
		return prev, false
	}
	return next, true
}

// unionSorted merges two sorted string slices, reporting whether the
// union exceeds a.
func unionSorted(a, b []string) ([]string, bool) {
	set := map[string]bool{}
	for _, s := range a {
		set[s] = true
	}
	grew := false
	for _, s := range b {
		if !set[s] {
			set[s] = true
			grew = true
		}
	}
	if !grew {
		return a, false
	}
	out := make([]string, 0, len(set))
	for s := range set {
		out = append(out, s)
	}
	sort.Strings(out)
	return out, true
}

func unionSortedInts(a, b []int) ([]int, bool) {
	set := map[int]bool{}
	for _, v := range a {
		set[v] = true
	}
	grew := false
	for _, v := range b {
		if !set[v] {
			set[v] = true
			grew = true
		}
	}
	if !grew {
		return a, false
	}
	out := make([]int, 0, len(set))
	for v := range set {
		out = append(out, v)
	}
	sort.Ints(out)
	return out, true
}

// ImportKey copies the stored fact of fact's type for the object key into
// fact, reporting whether one existed.
func (s *FactStore) ImportKey(key string, fact Fact) bool {
	k := storeKey{key, reflect.TypeOf(fact)}
	s.mu.RLock()
	stored, ok := s.m[k]
	s.mu.RUnlock()
	if !ok {
		return false
	}
	reflect.ValueOf(fact).Elem().Set(reflect.ValueOf(stored).Elem())
	return true
}

// Export records fact for obj when obj has a stable key.
func (s *FactStore) Export(obj types.Object, fact Fact) bool {
	key, ok := ObjectKey(obj)
	if !ok {
		return false
	}
	return s.ExportKey(key, fact)
}

// Import copies the stored fact of fact's type for obj into fact.
func (s *FactStore) Import(obj types.Object, fact Fact) bool {
	key, ok := ObjectKey(obj)
	if !ok {
		return false
	}
	return s.ImportKey(key, fact)
}

// Len returns the number of stored facts.
func (s *FactStore) Len() int {
	s.mu.RLock()
	defer s.mu.RUnlock()
	return len(s.m)
}

// Keys returns the sorted object keys carrying a fact of fact's concrete
// type — introspection for tests and debugging.
func (s *FactStore) Keys(fact Fact) []string {
	typ := reflect.TypeOf(fact)
	s.mu.RLock()
	var keys []string
	for k := range s.m {
		if k.typ == typ {
			keys = append(keys, k.obj)
		}
	}
	s.mu.RUnlock()
	sort.Strings(keys)
	return keys
}

// scatterIntrinsics are the root one-sided write primitives, keyed
// "pkgpath.Type.Method". Only the fabric layer is listed: every scatter in
// the module bottoms out in one of these, and the facts pass derives the
// rest (dstorm's funnels, vol's vectors, core's context) transitively.
var scatterIntrinsics = map[string]bool{
	"malt/internal/fabric.Fabric.Write":         true,
	"malt/internal/fabric.Fabric.WriteBatch":    true,
	"malt/internal/fabric.Transport.Write":      true,
	"malt/internal/fabric.Transport.WriteBatch": true,
}

// retainIntrinsics declare the 0-based parameter indices (receiver
// excluded) that the one-sided contract donates to the transport: the
// fabric primitives' payload, and the documented public scatter surface.
// The dstorm entries are contract statements, not implementation facts —
// today's Segment.Scatter copies into an encode buffer under its mutex,
// but the contract (like a real RDMA post) does not promise a copy, so
// callers must treat the buffer as live until drained.
var retainIntrinsics = map[string][]int{
	"malt/internal/fabric.Fabric.Write":         {3},
	"malt/internal/fabric.Fabric.WriteBatch":    {3},
	"malt/internal/fabric.Transport.Write":      {3},
	"malt/internal/fabric.Transport.WriteBatch": {3},
	"malt/internal/dstorm.Segment.Scatter":      {0},
	"malt/internal/dstorm.Segment.ScatterTo":    {1},
	"malt/internal/dstorm.AddSegment.Scatter":   {0},
	"malt/internal/dstorm.Node.write":           {2},
	"malt/internal/dstorm.Node.writeWithRetry":  {2},
	"malt/internal/dstorm.Node.writeMulti":      {2},
}

// blockingNames are method names that can span a death or a join (and
// therefore an epoch mint) when invoked on a malt type — the root set for
// BlocksFact derivation and epochcmp's direct check.
var blockingNames = map[string]bool{
	"Barrier": true, "Advance": true, "Drain": true, "Wait": true,
	"Gather": true, "GatherLatest": true, "Commit": true,
	"Rendezvous": true, "Join": true,
}

// barrierNames are the method/function names that enter a cluster barrier
// when defined in a malt package.
var barrierNames = map[string]bool{
	"Barrier": true, "creationBarrier": true,
}

// scattersFn reports whether a resolved callee scatters: an intrinsic
// primitive, or a function carrying a ScattersFact.
func scattersFn(fn *types.Func, store *FactStore) (via string, ok bool) {
	key, keyed := ObjectKey(fn)
	if !keyed {
		return "", false
	}
	if scatterIntrinsics[key] {
		return key, true
	}
	var f ScattersFact
	if store != nil && store.ImportKey(key, &f) {
		return key, true
	}
	return "", false
}

// retainedParams returns the parameter indices a resolved callee retains:
// intrinsic contract positions plus any RetainsFact.
func retainedParams(fn *types.Func, store *FactStore) []int {
	key, keyed := ObjectKey(fn)
	if !keyed {
		return nil
	}
	if idx, ok := retainIntrinsics[key]; ok {
		return idx
	}
	var f RetainsFact
	if store != nil && store.ImportKey(key, &f) {
		return f.Params
	}
	return nil
}

// blocksFn reports whether a resolved callee can block on membership: a
// blessed blocking method name on a malt type, or a BlocksFact carrier.
func blocksFn(fn *types.Func, store *FactStore) (via string, ok bool) {
	if blockingNames[fn.Name()] {
		if pkgPath, _, isMethod := recvTypeName(fn); isMethod && maltPackage(pkgPath) {
			key, _ := ObjectKey(fn)
			return key, true
		}
	}
	key, keyed := ObjectKey(fn)
	if !keyed {
		return "", false
	}
	var f BlocksFact
	if store != nil && store.ImportKey(key, &f) {
		return key, true
	}
	return "", false
}

// barriersFn reports whether a resolved callee reaches a cluster barrier,
// returning the constant barrier names known for it.
func barriersFn(fn *types.Func, store *FactStore) (names []string, via string, ok bool) {
	if barrierNames[fn.Name()] && fn.Pkg() != nil && maltPackage(fn.Pkg().Path()) {
		key, _ := ObjectKey(fn)
		return nil, key, true
	}
	key, keyed := ObjectKey(fn)
	if !keyed {
		return nil, "", false
	}
	var f BarriersFact
	if store != nil && store.ImportKey(key, &f) {
		return f.Names, key, true
	}
	return nil, "", false
}

// ComputeFacts runs the built-in facts pass over one package: every
// function declaration is scanned for scatter/blocking/barrier reachability
// and slice-parameter retention, iterating to a fixed point so that chains
// inside the package (a calls b calls fabric.Write) resolve regardless of
// declaration order. Cross-package chains resolve because the Runner calls
// this in dependency order, so callee facts are already in the store.
func ComputeFacts(pkg *Package, store *FactStore) {
	for changed := true; changed; {
		changed = false
		for _, f := range pkg.Files {
			for _, decl := range f.Decls {
				fd, ok := decl.(*ast.FuncDecl)
				if !ok || fd.Body == nil {
					continue
				}
				obj, isFn := pkg.Info.Defs[fd.Name].(*types.Func)
				if !isFn {
					continue
				}
				if computeFuncFacts(pkg, store, fd, obj) {
					changed = true
				}
			}
		}
	}
}

// computeFuncFacts derives and exports facts for one function declaration,
// reporting whether anything in the store changed.
func computeFuncFacts(pkg *Package, store *FactStore, fd *ast.FuncDecl, obj *types.Func) bool {
	var (
		scatVia, blockVia, barVia string
		scatters, blocks, barrier bool
		barNameSet                = map[string]bool{}
	)
	// Reachability scan: closure bodies are included (a closure passed to a
	// helper usually runs on the caller's chain) except when launched on
	// their own goroutine or deferred — those run outside this call's
	// critical path.
	inspectSkippingAsync(fd.Body, func(n ast.Node) {
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return
		}
		fn := funcFor(pkg.Info, call)
		if fn == nil || fn == obj {
			return
		}
		if !scatters {
			if via, ok := scattersFn(fn, store); ok {
				scatters, scatVia = true, via
			}
		}
		if !blocks {
			if via, ok := blocksFn(fn, store); ok {
				blocks, blockVia = true, via
			}
		}
		if names, via, ok := barriersFn(fn, store); ok {
			if !barrier {
				barrier, barVia = true, via
			}
			for _, nm := range names {
				barNameSet[nm] = true
			}
			if nm, ok := constStringArg(pkg.Info, call, 0); ok && barrierNames[fn.Name()] {
				barNameSet[nm] = true
			}
		}
	})
	retained := retainedParamsOf(pkg, store, fd, obj)

	changed := false
	if scatters && store.Export(obj, &ScattersFact{Via: scatVia}) {
		changed = true
	}
	if blocks && store.Export(obj, &BlocksFact{Via: blockVia}) {
		changed = true
	}
	if barrier {
		names := make([]string, 0, len(barNameSet))
		for nm := range barNameSet {
			names = append(names, nm)
		}
		sort.Strings(names)
		if store.Export(obj, &BarriersFact{Names: names, Via: barVia}) {
			changed = true
		}
	}
	if len(retained) > 0 && store.Export(obj, &RetainsFact{Params: retained}) {
		changed = true
	}
	return changed
}

// retainedParamsOf finds the slice parameters of fd that flow past return:
// into a retaining callee position, a store whose base outlives the call
// (package var, field, element of a non-local), or a channel send. All
// closure bodies are scanned — a parameter captured by a registered
// callback outlives the call no matter which goroutine runs it. Returning
// the parameter is deliberately not counted: ownership passes back to the
// caller, which sees the value flow.
func retainedParamsOf(pkg *Package, store *FactStore, fd *ast.FuncDecl, obj *types.Func) []int {
	sig, _ := obj.Type().(*types.Signature)
	if sig == nil {
		return nil
	}
	paramIdx := map[types.Object]int{}
	for i := 0; i < sig.Params().Len(); i++ {
		p := sig.Params().At(i)
		if _, isSlice := p.Type().Underlying().(*types.Slice); isSlice && p.Name() != "" && p.Name() != "_" {
			paramIdx[p] = i
		}
	}
	if len(paramIdx) == 0 {
		return nil
	}
	retained := map[int]bool{}
	paramOf := func(e ast.Expr) (int, bool) {
		e = unparen(e)
		if sl, ok := e.(*ast.SliceExpr); ok {
			e = unparen(sl.X)
		}
		id, ok := e.(*ast.Ident)
		if !ok {
			return 0, false
		}
		idx, ok := paramIdx[pkg.Info.ObjectOf(id)]
		return idx, ok
	}
	ast.Inspect(fd.Body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.AssignStmt:
			if len(n.Lhs) != len(n.Rhs) {
				return true
			}
			for i, rhs := range n.Rhs {
				if idx, ok := paramOf(rhs); ok && lhsOutlives(pkg, fd, n.Lhs[i]) {
					retained[idx] = true
				}
			}
		case *ast.SendStmt:
			if idx, ok := paramOf(n.Value); ok {
				retained[idx] = true
			}
		case *ast.CallExpr:
			fn := funcFor(pkg.Info, n)
			if fn == nil || fn == obj {
				return true
			}
			for _, j := range retainedParams(fn, store) {
				if j < len(n.Args) {
					if idx, ok := paramOf(n.Args[j]); ok {
						retained[idx] = true
					}
				}
			}
		}
		return true
	})
	out := make([]int, 0, len(retained))
	for i := range retained {
		out = append(out, i)
	}
	sort.Ints(out)
	return out
}

// lhsOutlives reports whether an assignment target's storage outlives the
// enclosing function call: a field or element of anything (conservative —
// the container may escape), or a variable not declared inside fd.
func lhsOutlives(pkg *Package, fd *ast.FuncDecl, lhs ast.Expr) bool {
	e := unparen(lhs)
	for {
		switch t := e.(type) {
		case *ast.SelectorExpr:
			return true
		case *ast.IndexExpr:
			e = unparen(t.X)
		case *ast.StarExpr:
			e = unparen(t.X)
		default:
			id, ok := e.(*ast.Ident)
			if !ok || id.Name == "_" {
				return false
			}
			obj := pkg.Info.ObjectOf(id)
			if obj == nil {
				return false
			}
			return obj.Pos() < fd.Pos() || obj.Pos() > fd.End()
		}
	}
}

// inspectSkippingAsync walks body like ast.Inspect but skips function
// literals that are the direct target of a go or defer statement: their
// bodies run outside the enclosing call's chain.
func inspectSkippingAsync(body ast.Node, visit func(ast.Node)) {
	skip := map[ast.Node]bool{}
	ast.Inspect(body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.GoStmt:
			if lit, ok := unparen(n.Call.Fun).(*ast.FuncLit); ok {
				skip[lit] = true
			}
		case *ast.DeferStmt:
			if lit, ok := unparen(n.Call.Fun).(*ast.FuncLit); ok {
				skip[lit] = true
			}
		}
		if skip[n] {
			return false
		}
		if n != nil {
			visit(n)
		}
		return true
	})
}

// constStringArg returns the constant string value of call's i-th argument
// when it has one.
func constStringArg(info *types.Info, call *ast.CallExpr, i int) (string, bool) {
	if i >= len(call.Args) {
		return "", false
	}
	tv, ok := info.Types[call.Args[i]]
	if !ok || tv.Value == nil || tv.Value.Kind() != constant.String {
		return "", false
	}
	return constant.StringVal(tv.Value), true
}
