package lint_test

import (
	"testing"

	"malt/internal/lint"
	"malt/internal/lint/linttest"
)

// Each analyzer must fail on its seeded-violation fixture (the `// want`
// expectations) and stay silent on the fixture's negative cases — the
// analysistest contract, enforced by linttest.

func TestErrIsCmp(t *testing.T)      { linttest.Run(t, lint.ErrIsCmp, "erriscmp") }
func TestLockedScatter(t *testing.T) { linttest.Run(t, lint.LockedScatter, "lockedscatter") }
func TestAtomicMix(t *testing.T)     { linttest.Run(t, lint.AtomicMix, "atomicmix") }
func TestFoldPurity(t *testing.T)    { linttest.Run(t, lint.FoldPurity, "foldpurity") }
func TestRawSleep(t *testing.T)      { linttest.Run(t, lint.RawSleep, "rawsleep") }
func TestGatherDrop(t *testing.T)    { linttest.Run(t, lint.GatherDrop, "gatherdrop") }
func TestQueueLen(t *testing.T)      { linttest.Run(t, lint.QueueLen, "queuelen") }
func TestIterSkew(t *testing.T)      { linttest.Run(t, lint.IterSkew, "iterskew") }
func TestEpochCmp(t *testing.T)      { linttest.Run(t, lint.EpochCmp, "epochcmp") }

// TestAll ensures the suite registry stays complete: cmd/maltlint and CI
// run All(), so an analyzer missing from it would silently stop gating.
func TestAll(t *testing.T) {
	want := map[string]bool{
		"erriscmp": true, "lockedscatter": true, "atomicmix": true,
		"foldpurity": true, "rawsleep": true, "gatherdrop": true,
		"queuelen": true, "iterskew": true, "epochcmp": true,
	}
	got := lint.All()
	if len(got) != len(want) {
		t.Fatalf("All() returned %d analyzers, want %d", len(got), len(want))
	}
	for _, a := range got {
		if !want[a.Name] {
			t.Errorf("unexpected analyzer %q in All()", a.Name)
		}
		if a.Doc == "" || a.Run == nil {
			t.Errorf("analyzer %q missing Doc or Run", a.Name)
		}
	}
}
