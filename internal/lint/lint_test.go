package lint_test

import (
	"os"
	"path/filepath"
	"testing"

	"malt/internal/lint"
	"malt/internal/lint/linttest"
)

// Each analyzer must fail on its seeded-violation fixture (the `// want`
// expectations) and stay silent on the fixture's negative cases — the
// analysistest contract, enforced by linttest.

func TestErrIsCmp(t *testing.T)       { linttest.Run(t, lint.ErrIsCmp, "erriscmp") }
func TestLockedScatter(t *testing.T)  { linttest.Run(t, lint.LockedScatter, "lockedscatter") }
func TestAtomicMix(t *testing.T)      { linttest.Run(t, lint.AtomicMix, "atomicmix") }
func TestFoldPurity(t *testing.T)     { linttest.Run(t, lint.FoldPurity, "foldpurity") }
func TestRawSleep(t *testing.T)       { linttest.Run(t, lint.RawSleep, "rawsleep") }
func TestGatherDrop(t *testing.T)     { linttest.Run(t, lint.GatherDrop, "gatherdrop") }
func TestQueueLen(t *testing.T)       { linttest.Run(t, lint.QueueLen, "queuelen") }
func TestIterSkew(t *testing.T)       { linttest.Run(t, lint.IterSkew, "iterskew") }
func TestEpochCmp(t *testing.T)       { linttest.Run(t, lint.EpochCmp, "epochcmp") }
func TestBufRetain(t *testing.T)      { linttest.Run(t, lint.BufRetain, "bufretain") }
func TestBarrierDiverge(t *testing.T) { linttest.Run(t, lint.BarrierDiverge, "barrierdiverge") }
func TestResFeedback(t *testing.T)    { linttest.Run(t, lint.ResFeedback, "resfeedback") }

// TestAllow runs an arbitrary analyzer over the allow fixture: well-formed
// annotations must suppress, malformed ones must surface as hard "allow"
// errors while the underlying finding still reports.
func TestAllow(t *testing.T) { linttest.Run(t, lint.RawSleep, "allow") }

// TestAll ensures the suite registry stays complete: cmd/maltlint and CI
// run All(), so an analyzer missing from it would silently stop gating.
func TestAll(t *testing.T) {
	want := map[string]bool{
		"erriscmp": true, "lockedscatter": true, "atomicmix": true,
		"foldpurity": true, "rawsleep": true, "gatherdrop": true,
		"queuelen": true, "iterskew": true, "epochcmp": true,
		"bufretain": true, "barrierdiverge": true, "resfeedback": true,
	}
	got := lint.All()
	if len(got) != len(want) {
		t.Fatalf("All() returned %d analyzers, want %d", len(got), len(want))
	}
	for _, a := range got {
		if !want[a.Name] {
			t.Errorf("unexpected analyzer %q in All()", a.Name)
		}
		if a.Doc == "" || a.Run == nil {
			t.Errorf("analyzer %q missing Doc or Run", a.Name)
		}
	}
}

// TestFactsCrossPackage is the facts round-trip check over the real
// module: only the fabric primitives are intrinsic scatterers, so a
// ScattersFact on vol.Vector.Scatter proves vol consumed dstorm's derived
// facts, and one on core.Context.Scatter proves core consumed vol's — an
// export-in-A, consume-in-B chain across two real package boundaries.
func TestFactsCrossPackage(t *testing.T) {
	_, facts := linttest.Universe(t)

	chain := []string{
		"malt/internal/dstorm.Segment.Scatter",
		"malt/internal/vol.Vector.Scatter",
		"malt/internal/core.Context.Scatter",
	}
	for _, key := range chain {
		var sf lint.ScattersFact
		if !facts.ImportKey(key, &sf) {
			t.Errorf("no ScattersFact derived for %s", key)
			continue
		}
		if sf.Via == "" {
			t.Errorf("ScattersFact for %s has empty Via", key)
		}
	}

	// Blocking and retention facts propagate the same way.
	var bf lint.BlocksFact
	if !facts.ImportKey("malt/internal/core.Context.Barrier", &bf) {
		t.Error("no BlocksFact derived for core.Context.Barrier")
	}
	// writeBatchWithRetry is not in the intrinsic table; its RetainsFact
	// exists only because its payload parameter flows into the fabric
	// batch primitive.
	var rf lint.RetainsFact
	if !facts.ImportKey("malt/internal/dstorm.Node.writeBatchWithRetry", &rf) {
		t.Error("no RetainsFact derived for dstorm.Node.writeBatchWithRetry")
	} else if len(rf.Params) == 0 {
		t.Error("RetainsFact for dstorm.Node.writeBatchWithRetry has no params")
	}
}

// TestTestFilesAnalyzed is the regression guard for _test.go coverage: a
// violation seeded in an in-package test file and one in an external test
// package must both be reported by a Runner over a scratch module.
func TestTestFilesAnalyzed(t *testing.T) {
	dir := t.TempDir()
	writeFile := func(name, src string) {
		t.Helper()
		if err := os.WriteFile(filepath.Join(dir, name), []byte(src), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	writeFile("go.mod", "module scratch\n\ngo 1.22\n")
	writeFile("scratch.go", `package scratch

func Ready() bool { return true }
`)
	writeFile("scratch_test.go", `package scratch

import (
	"testing"
	"time"
)

func TestPoll(t *testing.T) {
	for !Ready() {
		time.Sleep(time.Millisecond)
	}
}
`)
	writeFile("scratch_x_test.go", `package scratch_test

import (
	"testing"
	"time"

	"scratch"
)

func TestPollExternal(t *testing.T) {
	for !scratch.Ready() {
		time.Sleep(time.Millisecond)
	}
}
`)

	loader, err := lint.NewLoader(dir)
	if err != nil {
		t.Fatalf("NewLoader: %v", err)
	}
	runner := lint.NewRunner(loader, []*lint.Analyzer{lint.RawSleep})
	diags, err := runner.Run("./...")
	if err != nil {
		t.Fatalf("Run: %v", err)
	}
	found := map[string]int{}
	for _, d := range diags {
		found[filepath.Base(d.Pos.Filename)]++
	}
	if found["scratch_test.go"] != 1 {
		t.Errorf("in-package test file: got %d rawsleep findings, want 1 (diags: %v)", found["scratch_test.go"], diags)
	}
	if found["scratch_x_test.go"] != 1 {
		t.Errorf("external test package: got %d rawsleep findings, want 1 (diags: %v)", found["scratch_x_test.go"], diags)
	}
	if len(diags) != 2 {
		t.Errorf("got %d diagnostics, want exactly 2: %v", len(diags), diags)
	}
}
