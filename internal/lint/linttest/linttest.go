// Package linttest is the fixture harness for maltlint analyzers, modeled
// on golang.org/x/tools/go/analysis/analysistest but built on the
// dependency-free loader in internal/lint.
//
// A fixture is a directory under internal/lint/testdata/src/<name>
// containing one Go package seeded with violations. Expected diagnostics
// are declared in the fixture source with trailing comments:
//
//	err == fabric.ErrTransient // want `use errors\.Is`
//
// Each `// want` comment carries one or more backquoted or double-quoted
// regular expressions; every regexp must match a diagnostic reported on
// that line, and every diagnostic must be matched by some expectation.
// Fixtures may import real malt packages — they resolve against the
// module's compiled export data, so seeded violations are type-checked
// against the actual fabric/dstorm/vol APIs, not mocks.
package linttest

import (
	"fmt"
	"os"
	"path/filepath"
	"regexp"
	"strings"
	"sync"
	"testing"

	"malt/internal/lint"
)

var (
	loaderOnce sync.Once
	loader     *lint.Loader
	facts      *lint.FactStore
	loaderErr  error
)

// sharedLoader builds one loader and one fact universe for the whole test
// binary: go list and export-data loading are the expensive part, and a
// facts-only pass over the malt module lets fixtures exercise derived
// facts (a fixture calling vol.Vector.Scatter sees the same ScattersFact
// the real tool derives). Every fixture shares both.
func sharedLoader(t *testing.T) (*lint.Loader, *lint.FactStore) {
	t.Helper()
	loaderOnce.Do(func() {
		root, err := moduleRoot()
		if err != nil {
			loaderErr = err
			return
		}
		loader, loaderErr = lint.NewLoader(root)
		if loaderErr != nil {
			return
		}
		r := lint.NewRunner(loader, nil)
		r.SkipTests = true
		if _, err := r.Run("./..."); err != nil {
			loaderErr = fmt.Errorf("building fact universe: %w", err)
			return
		}
		facts = r.Facts
	})
	if loaderErr != nil {
		t.Fatalf("linttest: building loader: %v", loaderErr)
	}
	return loader, facts
}

// Universe returns the shared loader and the fact store built by the
// facts-only pass over the whole malt module. Tests use it to assert on
// derived cross-package facts without re-running the analysis.
func Universe(t *testing.T) (*lint.Loader, *lint.FactStore) {
	t.Helper()
	return sharedLoader(t)
}

// moduleRoot walks up from the working directory to the go.mod.
func moduleRoot() (string, error) {
	dir, err := os.Getwd()
	if err != nil {
		return "", err
	}
	for {
		if _, err := os.Stat(filepath.Join(dir, "go.mod")); err == nil {
			return dir, nil
		}
		parent := filepath.Dir(dir)
		if parent == dir {
			return "", fmt.Errorf("linttest: no go.mod above %s", dir)
		}
		dir = parent
	}
}

// expectation is one `// want` regexp at a file:line.
type expectation struct {
	file    string
	line    int
	pattern *regexp.Regexp
	matched bool
}

// Run loads testdata/src/<fixture> (relative to the calling test's
// package directory), runs the analyzer, and compares diagnostics against
// the fixture's `// want` expectations.
func Run(t *testing.T, analyzer *lint.Analyzer, fixture string) {
	t.Helper()
	dir, err := filepath.Abs(filepath.Join("testdata", "src", fixture))
	if err != nil {
		t.Fatal(err)
	}
	l, universe := sharedLoader(t)
	pkg, err := l.LoadDir(dir, "fixture/"+fixture)
	if err != nil {
		t.Fatalf("linttest: loading fixture %s: %v", fixture, err)
	}
	expectations := collectWants(t, pkg)

	diags, err := lint.Run(pkg, []*lint.Analyzer{analyzer}, universe)
	if err != nil {
		t.Fatalf("linttest: running %s: %v", analyzer.Name, err)
	}

	for _, d := range diags {
		if !matchExpectation(expectations, d.Pos.Filename, d.Pos.Line, d.Message) {
			t.Errorf("%s: unexpected diagnostic: %s", d.Pos, d.Message)
		}
	}
	for _, e := range expectations {
		if !e.matched {
			t.Errorf("%s:%d: expected diagnostic matching %q, got none",
				e.file, e.line, e.pattern)
		}
	}
}

func matchExpectation(exps []*expectation, file string, line int, message string) bool {
	for _, e := range exps {
		if !e.matched && e.file == file && e.line == line && e.pattern.MatchString(message) {
			e.matched = true
			return true
		}
	}
	return false
}

var wantRE = regexp.MustCompile("`([^`]*)`|\"((?:[^\"\\\\]|\\\\.)*)\"")

func collectWants(t *testing.T, pkg *lint.Package) []*expectation {
	t.Helper()
	var exps []*expectation
	for _, f := range pkg.Files {
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				// The marker usually starts the comment, but may follow
				// other text — a malformed //maltlint:allow annotation is
				// itself the diagnostic site, so its expectation has to ride
				// inside the same comment.
				idx := strings.Index(c.Text, "// want ")
				if idx < 0 {
					continue
				}
				rest := c.Text[idx+len("// want "):]
				pos := pkg.Fset.Position(c.Pos())
				for _, m := range wantRE.FindAllStringSubmatch(rest, -1) {
					raw := m[1]
					if raw == "" {
						raw = m[2]
					}
					re, err := regexp.Compile(raw)
					if err != nil {
						t.Fatalf("%s: bad want pattern %q: %v", pos, raw, err)
					}
					exps = append(exps, &expectation{
						file:    pos.Filename,
						line:    pos.Line,
						pattern: re,
					})
				}
			}
		}
	}
	return exps
}
