package lint

import (
	"go/ast"
	"go/token"
)

// IterSkew flags SetIteration calls whose argument shape cannot be
// monotonically increasing. The iteration stamp is load-bearing: scatters
// carry it on the wire, SSP's staleness bound compares it across ranks, and
// the gather path uses it to order per-sender updates. A stamp that stays
// constant (a literal, a named constant), wraps (a `%` expression), or
// decreases (a top-level subtraction) silently defeats all three — SSP
// never stalls because nobody appears to advance, and "new since last
// gather" is computed against a clock that runs backwards. The analyzer
// looks through conversions (`uint64(i % n)` is still a wrap) and flags the
// shapes that are wrong by construction; genuinely advancing arguments
// (`iter`, `iter+1`, `uint64(round+1)`) pass untouched.
var IterSkew = &Analyzer{
	Name: "iterskew",
	Doc:  "SetIteration arguments must be able to advance: no constants, wraps (%), or subtractions",
	Run:  runIterSkew,
}

func runIterSkew(pass *Pass) error {
	for _, f := range pass.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok || len(call.Args) != 1 {
				return true
			}
			fn := funcFor(pass.Info, call)
			if fn == nil || fn.Name() != "SetIteration" {
				return true
			}
			if pkgPath, _, ok := recvTypeName(fn); !ok || !maltPackage(pkgPath) {
				return true
			}
			arg := call.Args[0]
			switch shape := unwrapConversions(pass, unparen(arg)); {
			case pass.Info.Types[arg].Value != nil:
				pass.Reportf(arg.Pos(),
					"SetIteration argument is a constant; the iteration stamp must advance every round (SSP staleness and update ordering compare it across ranks)")
			case isBinaryOp(shape, token.REM):
				pass.Reportf(arg.Pos(),
					"SetIteration argument wraps (modulo); a wrapped iteration stamp runs backwards at each wrap, breaking SSP staleness and update ordering")
			case isBinaryOp(shape, token.SUB):
				pass.Reportf(arg.Pos(),
					"SetIteration argument is a subtraction; a decreasing iteration stamp breaks SSP staleness and update ordering")
			}
			return true
		})
	}
	return nil
}

// unwrapConversions strips type conversions (uint64(x), MyIter(x)) and
// parentheses so the underlying argument shape is judged, not its cast.
func unwrapConversions(pass *Pass, e ast.Expr) ast.Expr {
	for {
		call, ok := unparen(e).(*ast.CallExpr)
		if !ok || len(call.Args) != 1 {
			return unparen(e)
		}
		if tv, ok := pass.Info.Types[call.Fun]; !ok || !tv.IsType() {
			return unparen(e)
		}
		e = call.Args[0]
	}
}

func isBinaryOp(e ast.Expr, op token.Token) bool {
	b, ok := e.(*ast.BinaryExpr)
	return ok && b.Op == op
}
