// Package data provides the training data substrate: synthetic dataset
// generators shaped like the paper's workloads (Table 2), a libsvm-format
// reader/writer for real data, and the shard assignment used to split
// examples across replicas (including re-sharding after a failure, when a
// dead rank's portion is redistributed to the survivors).
//
// The paper trains on RCV1, PASCAL alpha/DNA/webspam, splice-site, Netflix
// and KDD12 — datasets up to 250 GB that we cannot ship. The generators
// instead match each dataset's *shape*: feature dimensionality, sparsity,
// example counts (scaled down ~1000×), and label noise, because those are
// the properties that drive convergence behaviour and communication volume.
package data

import (
	"fmt"
	"math"
	"math/rand"

	"malt/internal/ml/linalg"
)

// Example is one training or test instance: sparse features and a label.
// Classification labels are ±1; regression-style labels are free values.
type Example struct {
	Features *linalg.SparseVector
	Label    float64
}

// Dataset is an in-memory labelled dataset.
type Dataset struct {
	// Name identifies the workload ("rcv1", "webspam", …).
	Name string
	// Dim is the feature dimensionality (the model size for linear models).
	Dim int
	// Train and Test hold the examples.
	Train, Test []Example
}

// ClassificationSpec parameterizes a synthetic binary-classification
// dataset drawn from a sparse linear teacher: a hidden weight vector w* is
// sampled, each example gets NNZ active features, and the label is
// sign(x·w*) flipped with probability Noise.
type ClassificationSpec struct {
	Name  string
	Dim   int     // feature dimensionality
	Train int     // number of training examples
	Test  int     // number of test examples
	NNZ   int     // active features per example
	Noise float64 // label flip probability
	Seed  int64   // RNG seed (deterministic generation)
}

// Validate checks the spec for inconsistencies.
func (s *ClassificationSpec) Validate() error {
	if s.Dim <= 0 || s.Train <= 0 || s.NNZ <= 0 {
		return fmt.Errorf("data: spec %q needs positive Dim/Train/NNZ, got %d/%d/%d", s.Name, s.Dim, s.Train, s.NNZ)
	}
	if s.NNZ > s.Dim {
		return fmt.Errorf("data: spec %q NNZ %d exceeds Dim %d", s.Name, s.NNZ, s.Dim)
	}
	if s.Noise < 0 || s.Noise >= 0.5 {
		return fmt.Errorf("data: spec %q noise %v outside [0, 0.5)", s.Name, s.Noise)
	}
	return nil
}

// GenerateClassification builds the dataset described by spec. Generation
// is deterministic in the seed.
func GenerateClassification(spec ClassificationSpec) (*Dataset, error) {
	if err := spec.Validate(); err != nil {
		return nil, err
	}
	rng := rand.New(rand.NewSource(spec.Seed))

	// Hidden teacher: dense Gaussian weights. A mild decay makes low
	// indices more informative, mimicking frequency-sorted text features.
	teacher := make([]float64, spec.Dim)
	for i := range teacher {
		teacher[i] = rng.NormFloat64() / math.Sqrt(1+float64(i)/float64(spec.Dim)*4)
	}

	ds := &Dataset{Name: spec.Name, Dim: spec.Dim}
	ds.Train = generateExamples(rng, teacher, spec, spec.Train)
	ds.Test = generateExamples(rng, teacher, spec, spec.Test)
	return ds, nil
}

func generateExamples(rng *rand.Rand, teacher []float64, spec ClassificationSpec, n int) []Example {
	out := make([]Example, 0, n)
	idxBuf := make([]int32, 0, spec.NNZ)
	for i := 0; i < n; i++ {
		idxBuf = idxBuf[:0]
		seen := make(map[int32]bool, spec.NNZ)
		// Skewed index distribution: text-like features follow a power law,
		// so draw half the indices from the low-frequency head.
		for len(idxBuf) < spec.NNZ {
			var idx int32
			if rng.Float64() < 0.5 {
				head := spec.Dim / 10
				if head == 0 {
					head = 1
				}
				idx = int32(rng.Intn(head))
			} else {
				idx = int32(rng.Intn(spec.Dim))
			}
			if !seen[idx] {
				seen[idx] = true
				idxBuf = append(idxBuf, idx)
			}
		}
		sortInt32(idxBuf)
		sv := &linalg.SparseVector{
			Idx: append([]int32(nil), idxBuf...),
			Val: make([]float64, len(idxBuf)),
		}
		for j := range sv.Val {
			sv.Val[j] = rng.NormFloat64()
		}
		// Normalize feature vectors, standard for SVM text workloads.
		if norm := sv.Norm2(); norm > 0 {
			sv.ScaleSparse(1 / norm)
		}
		label := 1.0
		if sv.DotDense(teacher) < 0 {
			label = -1.0
		}
		if rng.Float64() < spec.Noise {
			label = -label
		}
		out = append(out, Example{Features: sv, Label: label})
	}
	return out
}

func sortInt32(s []int32) {
	for i := 1; i < len(s); i++ {
		for j := i; j > 0 && s[j] < s[j-1]; j-- {
			s[j], s[j-1] = s[j-1], s[j]
		}
	}
}

// Shuffle permutes the training examples deterministically in the seed.
// The paper randomizes input data before assigning subsets to nodes.
func (d *Dataset) Shuffle(seed int64) {
	rng := rand.New(rand.NewSource(seed))
	rng.Shuffle(len(d.Train), func(i, j int) {
		d.Train[i], d.Train[j] = d.Train[j], d.Train[i]
	})
}

// Stats summarizes a dataset for Table 2-style reporting.
type Stats struct {
	Name         string
	Dim          int
	Train, Test  int
	AvgNNZ       float64
	Density      float64 // AvgNNZ / Dim
	PositiveFrac float64
}

// Stats computes summary statistics over the training split.
func (d *Dataset) Stats() Stats {
	s := Stats{Name: d.Name, Dim: d.Dim, Train: len(d.Train), Test: len(d.Test)}
	if len(d.Train) == 0 {
		return s
	}
	var nnz, pos int
	for _, ex := range d.Train {
		nnz += ex.Features.NNZ()
		if ex.Label > 0 {
			pos++
		}
	}
	s.AvgNNZ = float64(nnz) / float64(len(d.Train))
	s.Density = s.AvgNNZ / float64(d.Dim)
	s.PositiveFrac = float64(pos) / float64(len(d.Train))
	return s
}
