package data

import (
	"math"
	"testing"
)

func TestGenerateClustersValidation(t *testing.T) {
	bad := []ClusterSpec{
		{K: 0, Dim: 2, Train: 10},
		{K: 2, Dim: 0, Train: 10},
		{K: 2, Dim: 2, Train: 0},
	}
	for i, spec := range bad {
		if _, _, err := GenerateClusters(spec); err == nil {
			t.Fatalf("spec %d should fail: %+v", i, spec)
		}
	}
}

func TestGenerateClustersDense(t *testing.T) {
	spec := ClusterSpec{Name: "c", K: 3, Dim: 6, Train: 600, Spread: 0.05, Seed: 5}
	ds, centers, err := GenerateClusters(spec)
	if err != nil {
		t.Fatal(err)
	}
	if len(centers) != 3 || len(ds.Train) != 600 || ds.Dim != 6 {
		t.Fatalf("shape: %d centers, %d examples, dim %d", len(centers), len(ds.Train), ds.Dim)
	}
	// Every example must lie near its generating center (label = cluster id).
	for i, ex := range ds.Train {
		c := int(ex.Label)
		if c < 0 || c >= 3 {
			t.Fatalf("example %d label %v out of range", i, ex.Label)
		}
		dense := ex.Features.ToDense(6)
		var d float64
		for j, v := range dense {
			diff := v - centers[c][j]
			d += diff * diff
		}
		// 6 dims at σ=0.05: E[d] = 6·0.0025 = 0.015; 1.0 is a >10σ bound.
		if d > 1.0 {
			t.Fatalf("example %d is %.3f away from its center", i, math.Sqrt(d))
		}
	}
}

func TestGenerateClustersSparse(t *testing.T) {
	spec := ClusterSpec{Name: "c", K: 2, Dim: 100, Train: 50, NNZ: 7, Seed: 9}
	ds, _, err := GenerateClusters(spec)
	if err != nil {
		t.Fatal(err)
	}
	for i, ex := range ds.Train {
		if ex.Features.NNZ() != 7 {
			t.Fatalf("example %d nnz = %d, want 7", i, ex.Features.NNZ())
		}
		for j := 1; j < ex.Features.NNZ(); j++ {
			if ex.Features.Idx[j-1] >= ex.Features.Idx[j] {
				t.Fatalf("example %d indices not strictly increasing", i)
			}
		}
	}
}

func TestGenerateClustersDeterministic(t *testing.T) {
	spec := ClusterSpec{Name: "c", K: 2, Dim: 4, Train: 30, Seed: 7}
	a, ca, _ := GenerateClusters(spec)
	b, cb, _ := GenerateClusters(spec)
	for i := range ca {
		for j := range ca[i] {
			if ca[i][j] != cb[i][j] {
				t.Fatal("centers not deterministic")
			}
		}
	}
	for i := range a.Train {
		if a.Train[i].Label != b.Train[i].Label {
			t.Fatal("labels not deterministic")
		}
	}
}
