package data

import "fmt"

// Shape names a paper workload whose synthetic equivalent this package can
// generate. Dimensions and example counts follow Table 2 of the paper,
// with example counts scaled down (and the two extreme dimensionalities,
// webspam and splice-site, reduced) so experiments run on one machine; the
// relative ordering — webspam is the high-dimensional model, splice-site
// the big-data workload, alpha the small dense one — is preserved.
type Shape string

// The paper's SVM workloads (Table 2).
const (
	// RCV1Shape: document classification; 47,152 features, sparse.
	RCV1Shape Shape = "rcv1"
	// AlphaShape: PASCAL alpha image classification; 500 dense features.
	AlphaShape Shape = "alpha"
	// DNAShape: PASCAL DNA; 800 features, large example count.
	DNAShape Shape = "dna"
	// WebspamShape: webspam detection; the high-dimensional model
	// (16.6M features in the paper, 200k here).
	WebspamShape Shape = "webspam"
	// SpliceShape: splice-site detection; the paper's 250 GB workload that
	// does not fit on one machine (11M parameters there, 100k here, but
	// still the largest example count).
	SpliceShape Shape = "splice"
)

// Spec returns the synthetic generator spec for a named shape at the given
// scale. scale=1 produces the standard scaled-down benchmark size; larger
// scales multiply the example counts (not the dimensionality).
func (s Shape) Spec(scale int) (ClassificationSpec, error) {
	if scale <= 0 {
		scale = 1
	}
	base := map[Shape]ClassificationSpec{
		RCV1Shape:    {Name: "rcv1", Dim: 47152, Train: 8000, Test: 2000, NNZ: 75, Noise: 0.05, Seed: 101},
		AlphaShape:   {Name: "alpha", Dim: 500, Train: 10000, Test: 2500, NNZ: 500, Noise: 0.10, Seed: 102},
		DNAShape:     {Name: "dna", Dim: 800, Train: 20000, Test: 2500, NNZ: 200, Noise: 0.08, Seed: 103},
		WebspamShape: {Name: "webspam", Dim: 200000, Train: 4000, Test: 1000, NNZ: 150, Noise: 0.05, Seed: 104},
		SpliceShape:  {Name: "splice", Dim: 100000, Train: 30000, Test: 3000, NNZ: 120, Noise: 0.10, Seed: 105},
	}
	spec, ok := base[s]
	if !ok {
		return ClassificationSpec{}, fmt.Errorf("data: unknown shape %q", s)
	}
	spec.Train *= scale
	spec.Test *= scale
	return spec, nil
}

// Generate builds the shaped dataset at the given scale.
func (s Shape) Generate(scale int) (*Dataset, error) {
	spec, err := s.Spec(scale)
	if err != nil {
		return nil, err
	}
	return GenerateClassification(spec)
}

// Shapes lists all predefined classification shapes.
func Shapes() []Shape {
	return []Shape{RCV1Shape, AlphaShape, DNAShape, WebspamShape, SpliceShape}
}
