package data

import (
	"fmt"
	"math"
	"math/rand"
	"sort"

	"malt/internal/ml/linalg"
)

// ClickSpec parameterizes a synthetic click-through-rate dataset shaped
// like the KDD Cup 2012 (Tencent) workload the paper trains its SSI neural
// network on: sparse query/ad features, binary click labels, heavy class
// imbalance. Labels come from a *nonlinear* two-layer teacher so a neural
// network has an edge over a linear model.
type ClickSpec struct {
	Name   string
	Dim    int // sparse input dimensionality
	Hidden int // teacher hidden units
	Train  int
	Test   int
	NNZ    int     // active features per example
	CTR    float64 // target positive (click) fraction
	Seed   int64
}

// KDD12Spec returns the scaled-down KDD12-shaped spec. The paper's model
// has 12.8M parameters over 150M examples; scale=1 gives a 10k-dim input
// (≈ 1.3M parameters with the default SSI layer sizes) and 40k examples.
func KDD12Spec(scale int) ClickSpec {
	if scale <= 0 {
		scale = 1
	}
	return ClickSpec{
		Name: "kdd12", Dim: 10000, Hidden: 32,
		Train: 40000 * scale, Test: 8000,
		NNZ: 30, CTR: 0.25, Seed: 301,
	}
}

// GenerateClicks builds the click dataset described by spec. Labels are +1
// (click) and -1 (no click).
func GenerateClicks(spec ClickSpec) (*Dataset, error) {
	if spec.Dim <= 0 || spec.Hidden <= 0 || spec.Train <= 0 || spec.NNZ <= 0 {
		return nil, fmt.Errorf("data: click spec needs positive Dim/Hidden/Train/NNZ: %+v", spec)
	}
	if spec.NNZ > spec.Dim {
		return nil, fmt.Errorf("data: click spec NNZ %d exceeds Dim %d", spec.NNZ, spec.Dim)
	}
	rng := rand.New(rand.NewSource(spec.Seed))

	// Two-layer teacher: W1 (Hidden×Dim, sparse random), w2 (Hidden).
	w1 := make([]map[int32]float64, spec.Hidden)
	for h := range w1 {
		w1[h] = make(map[int32]float64)
		// Each hidden unit attends to a random subset of features.
		for k := 0; k < spec.Dim/20+4; k++ {
			w1[h][int32(rng.Intn(spec.Dim))] = rng.NormFloat64()
		}
	}
	w2 := make([]float64, spec.Hidden)
	for h := range w2 {
		w2[h] = rng.NormFloat64()
	}

	score := func(sv *linalg.SparseVector) float64 {
		var out float64
		for h := 0; h < spec.Hidden; h++ {
			var act float64
			for i, idx := range sv.Idx {
				if w, ok := w1[h][idx]; ok {
					act += w * sv.Val[i]
				}
			}
			out += w2[h] * math.Tanh(act)
		}
		return out
	}

	// Calibrate a threshold giving the target CTR on a sample.
	sample := make([]float64, 0, 2000)
	mkExample := func() *linalg.SparseVector {
		seen := make(map[int32]bool, spec.NNZ)
		idx := make([]int32, 0, spec.NNZ)
		for len(idx) < spec.NNZ {
			i := int32(rng.Intn(spec.Dim))
			if !seen[i] {
				seen[i] = true
				idx = append(idx, i)
			}
		}
		sortInt32(idx)
		sv := &linalg.SparseVector{Idx: idx, Val: make([]float64, len(idx))}
		for j := range sv.Val {
			sv.Val[j] = math.Abs(rng.NormFloat64())
		}
		if n := sv.Norm2(); n > 0 {
			sv.ScaleSparse(1 / n)
		}
		return sv
	}
	for i := 0; i < 2000; i++ {
		sample = append(sample, score(mkExample()))
	}
	threshold := quantile(sample, 1-spec.CTR)

	gen := func(n int) []Example {
		out := make([]Example, 0, n)
		for i := 0; i < n; i++ {
			sv := mkExample()
			label := -1.0
			if score(sv) > threshold {
				label = 1.0
			}
			// 5% label noise: clicks are noisy.
			if rng.Float64() < 0.05 {
				label = -label
			}
			out = append(out, Example{Features: sv, Label: label})
		}
		return out
	}
	return &Dataset{
		Name:  spec.Name,
		Dim:   spec.Dim,
		Train: gen(spec.Train),
		Test:  gen(spec.Test),
	}, nil
}

func quantile(sample []float64, q float64) float64 {
	s := append([]float64(nil), sample...)
	sort.Float64s(s)
	i := int(q * float64(len(s)))
	if i >= len(s) {
		i = len(s) - 1
	}
	if i < 0 {
		i = 0
	}
	return s[i]
}
