package data

import "fmt"

// Shard returns the half-open [Lo, Hi) range of examples assigned to one
// rank when n examples are split evenly across total ranks. The first
// n%total ranks receive one extra example, so every example is assigned
// exactly once and shard sizes differ by at most one.
func Shard(n, rank, total int) (lo, hi int) {
	if total <= 0 || rank < 0 || rank >= total {
		panic(fmt.Sprintf("data: Shard(n=%d, rank=%d, total=%d) out of range", n, rank, total))
	}
	base := n / total
	extra := n % total
	lo = rank*base + min(rank, extra)
	size := base
	if rank < extra {
		size++
	}
	return lo, lo + size
}

// ShardOver assigns a range to rank when only the ranks listed in alive
// remain: the dead ranks' data is redistributed across the survivors
// (paper §3.3: "a failed replica is removed from the parameter mixing step
// and its data is redistributed to other replicas"). rank must appear in
// alive; alive must be sorted ascending.
func ShardOver(n, rank int, alive []int) (lo, hi int, err error) {
	pos := -1
	for i, r := range alive {
		if i > 0 && alive[i-1] >= r {
			return 0, 0, fmt.Errorf("data: ShardOver alive list not sorted: %v", alive)
		}
		if r == rank {
			pos = i
		}
	}
	if pos < 0 {
		return 0, 0, fmt.Errorf("data: rank %d not in alive list %v", rank, alive)
	}
	lo, hi = Shard(n, pos, len(alive))
	return lo, hi, nil
}

func min(a, b int) int {
	if a < b {
		return a
	}
	return b
}
