package data

import (
	"bufio"
	"fmt"
	"io"
	"strconv"
	"strings"

	"malt/internal/ml/linalg"
)

// ReadLibSVM parses examples in libsvm format — "label idx:val idx:val …",
// one example per line, 1-based feature indices, '#' comments stripped —
// the interchange format of the paper's SVM datasets (RCV1, PASCAL suite).
// dim caps the dimensionality; pass 0 to infer it from the data.
func ReadLibSVM(r io.Reader, name string, dim int) (*Dataset, error) {
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 1<<20), 1<<24)
	ds := &Dataset{Name: name, Dim: dim}
	lineNo := 0
	maxIdx := int32(-1)
	for sc.Scan() {
		lineNo++
		line := sc.Text()
		if i := strings.IndexByte(line, '#'); i >= 0 {
			line = line[:i]
		}
		fields := strings.Fields(line)
		if len(fields) == 0 {
			continue
		}
		label, err := strconv.ParseFloat(fields[0], 64)
		if err != nil {
			return nil, fmt.Errorf("data: line %d: bad label %q: %v", lineNo, fields[0], err)
		}
		sv := &linalg.SparseVector{}
		for _, f := range fields[1:] {
			colon := strings.IndexByte(f, ':')
			if colon <= 0 {
				return nil, fmt.Errorf("data: line %d: bad feature %q", lineNo, f)
			}
			idx, err := strconv.Atoi(f[:colon])
			if err != nil || idx < 1 {
				return nil, fmt.Errorf("data: line %d: bad index %q", lineNo, f[:colon])
			}
			val, err := strconv.ParseFloat(f[colon+1:], 64)
			if err != nil {
				return nil, fmt.Errorf("data: line %d: bad value %q: %v", lineNo, f[colon+1:], err)
			}
			zeroIdx := int32(idx - 1) // libsvm is 1-based
			if zeroIdx > maxIdx {
				maxIdx = zeroIdx
			}
			sv.Append(zeroIdx, val)
		}
		ds.Train = append(ds.Train, Example{Features: sv, Label: label})
	}
	if err := sc.Err(); err != nil {
		return nil, fmt.Errorf("data: reading libsvm input: %w", err)
	}
	if ds.Dim == 0 {
		ds.Dim = int(maxIdx) + 1
	} else if int(maxIdx) >= ds.Dim {
		return nil, fmt.Errorf("data: feature index %d exceeds declared dimension %d", maxIdx+1, ds.Dim)
	}
	return ds, nil
}

// WriteLibSVM writes examples in libsvm format (1-based indices).
func WriteLibSVM(w io.Writer, examples []Example) error {
	bw := bufio.NewWriter(w)
	for _, ex := range examples {
		if _, err := fmt.Fprintf(bw, "%g", ex.Label); err != nil {
			return err
		}
		for i, idx := range ex.Features.Idx {
			if _, err := fmt.Fprintf(bw, " %d:%g", idx+1, ex.Features.Val[i]); err != nil {
				return err
			}
		}
		if err := bw.WriteByte('\n'); err != nil {
			return err
		}
	}
	return bw.Flush()
}

// ReadLibSVMShard parses a libsvm stream but keeps only this rank's shard:
// example i is kept when i % total == rank. This is how MALT replicas load
// a dataset that exceeds any single machine's memory from the shared file
// system — each process streams the whole file but materializes 1/total of
// it (§3: "each process loads a portion of data depending on the number of
// processes").
func ReadLibSVMShard(r io.Reader, name string, dim, rank, total int) (*Dataset, error) {
	if total <= 0 || rank < 0 || rank >= total {
		return nil, fmt.Errorf("data: shard rank %d of %d out of range", rank, total)
	}
	full, err := ReadLibSVM(r, name, dim)
	if err != nil {
		return nil, err
	}
	shard := &Dataset{Name: name, Dim: full.Dim}
	for i, ex := range full.Train {
		if i%total == rank {
			shard.Train = append(shard.Train, ex)
		}
	}
	return shard, nil
}
