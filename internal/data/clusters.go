package data

import (
	"fmt"
	"math/rand"

	"malt/internal/ml/linalg"
)

// ClusterSpec parameterizes a synthetic Gaussian-mixture dataset for the
// k-means workload: K well-separated centers in Dim dimensions, Spread
// standard deviation around each.
type ClusterSpec struct {
	Name   string
	K      int // true cluster count
	Dim    int
	Train  int
	Spread float64 // intra-cluster stddev; centers are ~unit-separated
	Seed   int64
	NNZ    int // non-zeros per example (sparse clusters); 0 = dense
}

// GenerateClusters builds the mixture. Example labels carry the generating
// cluster id (useful for diagnostics; k-means itself ignores them).
func GenerateClusters(spec ClusterSpec) (*Dataset, [][]float64, error) {
	if spec.K <= 0 || spec.Dim <= 0 || spec.Train <= 0 {
		return nil, nil, fmt.Errorf("data: cluster spec needs positive K/Dim/Train: %+v", spec)
	}
	if spec.Spread == 0 {
		spec.Spread = 0.15
	}
	nnz := spec.NNZ
	if nnz <= 0 || nnz > spec.Dim {
		nnz = spec.Dim
	}
	rng := rand.New(rand.NewSource(spec.Seed))

	centers := make([][]float64, spec.K)
	for c := range centers {
		center := make([]float64, spec.Dim)
		for i := range center {
			center[i] = rng.NormFloat64()
		}
		centers[c] = center
	}

	ds := &Dataset{Name: spec.Name, Dim: spec.Dim}
	for i := 0; i < spec.Train; i++ {
		c := rng.Intn(spec.K)
		center := centers[c]
		sv := &linalg.SparseVector{}
		if nnz == spec.Dim {
			for j := 0; j < spec.Dim; j++ {
				sv.Append(int32(j), center[j]+rng.NormFloat64()*spec.Spread)
			}
		} else {
			// Sparse points: perturb a random subset of coordinates; the
			// rest stay at the center's value of zero-ish (dropped).
			seen := make(map[int]bool, nnz)
			idxs := make([]int, 0, nnz)
			for len(idxs) < nnz {
				j := rng.Intn(spec.Dim)
				if !seen[j] {
					seen[j] = true
					idxs = append(idxs, j)
				}
			}
			sortInts(idxs)
			for _, j := range idxs {
				sv.Append(int32(j), center[j]+rng.NormFloat64()*spec.Spread)
			}
		}
		ds.Train = append(ds.Train, Example{Features: sv, Label: float64(c)})
	}
	return ds, centers, nil
}

func sortInts(s []int) {
	for i := 1; i < len(s); i++ {
		for j := i; j > 0 && s[j] < s[j-1]; j-- {
			s[j], s[j-1] = s[j-1], s[j]
		}
	}
}
